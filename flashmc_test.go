package flashmc_test

import (
	"strings"
	"testing"

	"flashmc"
)

const demoChecker = `
{ #include "flash-includes.h" }
sm wait_for_db {
	decl { scalar } addr, buf;
	start:
	{ WAIT_FOR_DB_FULL(addr); } ==> stop
	| { MISCBUS_READ_DB(addr, buf); } ==>
		{ err("Buffer not synchronized"); }
	;
}
`

func demoFiles(body string) map[string]string {
	files := flashmc.FlashHeader()
	files["main.c"] = "#include \"flash-includes.h\"\n" + body
	return files
}

func TestPublicQuickstart(t *testing.T) {
	prog, err := flashmc.LoadFiles("demo", demoFiles(`
void handler(void) {
	unsigned a;
	unsigned v;
	v = MISCBUS_READ_DB(a, 0);
}`), []string{"main.c"})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := flashmc.RunMetal(prog, demoChecker)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "not synchronized") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestPublicCompileMetal(t *testing.T) {
	mp, err := flashmc.CompileMetal(demoChecker, flashmc.FlashHeader())
	if err != nil {
		t.Fatal(err)
	}
	if mp.Name != "wait_for_db" || mp.LOC < 5 {
		t.Errorf("program %q loc %d", mp.Name, mp.LOC)
	}
}

func TestPublicCorpusAndCheckers(t *testing.T) {
	corpus := flashmc.GenerateCorpus(5)
	p := corpus.Protocol("sci")
	if p == nil {
		t.Fatal("no sci protocol")
	}
	prog, err := flashmc.LoadFiles(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, chk := range flashmc.FlashCheckers() {
		total += len(chk.Check(prog, p.Spec))
	}
	if total == 0 {
		t.Error("checker suite found nothing in a corpus with seeded defects")
	}
}

func TestPublicFuzz(t *testing.T) {
	corpus := flashmc.GenerateCorpus(5)
	p := corpus.Protocol("sci")
	prog, err := flashmc.LoadFiles(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	res := flashmc.Fuzz(prog, p.Spec, 30, 9)
	if res.Handlers == 0 {
		t.Fatal("no handlers fuzzed")
	}
}
