// Package flashmc is a meta-level compilation (MC) toolkit: it lets
// system implementors write small, system-specific checkers — as metal
// state-machine programs or as Go rule sets — and apply them down every
// path of C systems code, reproducing "Using Meta-level Compilation to
// Check FLASH Protocol Code" (Chou, Chelf, Engler, Heinrich —
// ASPLOS 2000).
//
// The package is a facade over the implementation packages:
//
//	cc/*      protocol-C frontend (preprocessor, parser, types)
//	cfg,paths control-flow graphs and path statistics
//	metal     the checker DSL (Figures 2 and 3 of the paper compile
//	          and run verbatim)
//	engine    state-machine execution down every path
//	checkers  the paper's eight FLASH checkers
//	flashgen  the synthetic FLASH protocol corpus + ground truth
//	flashsim  the FlashLite-style dynamic simulator
//	paper     table-by-table reproduction drivers
//
// Quick start:
//
//	prog, _ := flashmc.LoadFiles("demo", files, []string{"main.c"})
//	reports, _ := flashmc.RunMetal(prog, checkerSource)
//	for _, r := range reports {
//	    fmt.Println(r)
//	}
package flashmc

import (
	"fmt"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
	"flashmc/internal/flashsim"
	"flashmc/internal/metal"
	"flashmc/internal/paper"
)

// Program is a loaded, type-checked set of C translation units with
// control-flow graphs (see internal/core).
type Program = core.Program

// Report is one checker diagnostic.
type Report = engine.Report

// Checker is one system-rule checker (see internal/checkers).
type Checker = checkers.Checker

// Spec is a FLASH protocol specification: handler inventory, lane
// allowances, and the buffer-behaviour tables checkers consult.
type Spec = flash.Spec

// MetalProgram is a compiled metal checker.
type MetalProgram = metal.Program

// Corpus is the generated FLASH protocol code base with its
// ground-truth manifest.
type Corpus = flashgen.Corpus

// FuzzResult is a dynamic-testing campaign summary.
type FuzzResult = flashsim.FuzzResult

// LoadFiles loads a program from an in-memory file set. roots are the
// translation units to compile; include files are resolved against the
// same map.
func LoadFiles(name string, files map[string]string, roots []string) (*Program, error) {
	return core.Load(name, cpp.MapSource(files), roots)
}

// LoadDir loads a program whose translation units live on disk under
// dir.
func LoadDir(name, dir string, roots []string, includeDirs ...string) (*Program, error) {
	return core.Load(name, cpp.OSSource{Dir: dir}, roots, includeDirs...)
}

// CompileMetal compiles metal checker source. The includes map (may be
// nil) resolves the prologue's #include directives; pass
// FlashHeader() to compile checkers against the FLASH environment.
func CompileMetal(src string, includes map[string]string) (*MetalProgram, error) {
	var opts metal.Options
	if includes != nil {
		opts.Include = cpp.MapSource(includes)
	}
	return metal.Compile(src, opts)
}

// RunMetal compiles a metal checker and applies it to every function
// of the program.
func RunMetal(prog *Program, metalSrc string) ([]Report, error) {
	mp, err := prog.CompileChecker(metalSrc)
	if err != nil {
		return nil, fmt.Errorf("compile checker: %w", err)
	}
	return prog.RunSM(mp.SM), nil
}

// FlashHeader returns the flash-includes.h programming environment as
// a file map usable with LoadFiles and CompileMetal.
func FlashHeader() map[string]string {
	return map[string]string{"flash-includes.h": flash.IncludesH}
}

// FlashCheckers returns the paper's eight checkers (plus the no-float
// sub-checker) in Table 7 order.
func FlashCheckers() []Checker { return checkers.All() }

// GenerateCorpus synthesizes the five FLASH protocols plus common code
// with the paper's seeded defect distribution.
func GenerateCorpus(seed int64) *Corpus {
	return flashgen.Generate(flashgen.Options{Seed: seed})
}

// Fuzz runs the dynamic simulator over every dispatchable handler of a
// loaded protocol for the given number of randomized trials each.
func Fuzz(prog *Program, spec *Spec, trials int, seed int64) *FuzzResult {
	return flashsim.Fuzz(prog, spec, trials, seed)
}

// Reproduction gives access to the table-by-table evaluation drivers.
type Reproduction = paper.Corpus

// LoadReproduction generates and loads the corpus for reproducing the
// paper's tables (see internal/paper).
func LoadReproduction(seed int64) (*Reproduction, error) {
	return paper.LoadCorpus(flashgen.Options{Seed: seed})
}
