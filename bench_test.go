// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. The companion
// cmd/paperbench binary prints the paper-vs-measured rows these
// benchmarks time.
package flashmc_test

import (
	"sync"
	"testing"

	"flashmc/internal/cc/parser"
	"flashmc/internal/cfg"
	"flashmc/internal/checkers"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flashgen"
	"flashmc/internal/flashsim"
	"flashmc/internal/metal"
	"flashmc/internal/paper"
	"flashmc/internal/paths"
	"flashmc/internal/sched"
)

var (
	benchOnce sync.Once
	benchC    *paper.Corpus
	benchErr  error
)

func benchCorpus(b *testing.B) *paper.Corpus {
	b.Helper()
	benchOnce.Do(func() {
		benchC, benchErr = paper.LoadCorpus(flashgen.Options{Seed: 1})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchC
}

// BenchmarkCorpusGeneration times synthesizing the five protocols plus
// common code (~80K lines of protocol C).
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flashgen.Generate(flashgen.Options{Seed: int64(i + 1)})
	}
}

// BenchmarkFrontend times the full compile pipeline (cpp, lex, parse,
// typecheck, CFG) over the corpus — xg++'s per-build cost.
func BenchmarkFrontend(b *testing.B) {
	gen := flashgen.Generate(flashgen.Options{Seed: 1})
	var loc int
	for _, p := range gen.Protocols {
		for _, f := range p.Files {
			loc += len(f)
		}
	}
	b.SetBytes(int64(loc))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paper.LoadCorpus(flashgen.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 times the protocol-size statistics (path-count DP
// over every function).
func BenchmarkTable1(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Table1()
	}
}

// BenchmarkTable2 times the buffer race checker over all protocols.
func BenchmarkTable2(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Table2()
	}
}

// BenchmarkTable3 times the message-length checker.
func BenchmarkTable3(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Table3()
	}
}

// BenchmarkTable4 times the buffer-management checker.
func BenchmarkTable4(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Table4()
	}
}

// BenchmarkLanes times the inter-procedural lane checker (local
// summaries + linked global traversal).
func BenchmarkLanes(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lanes()
	}
}

// BenchmarkTable5 times the execution-restriction passes.
func BenchmarkTable5(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Table5()
	}
}

// BenchmarkTable6 times the three §9 checkers.
func BenchmarkTable6(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Table6()
	}
}

// BenchmarkTable7 times the whole-suite summary (every checker over
// every protocol).
func BenchmarkTable7(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Table7()
	}
}

// BenchmarkStaticVsDynamic times the §2/§11 experiment at 10 trials
// per handler (the full 120-trial campaign runs in the tests).
func BenchmarkStaticVsDynamic(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StaticVsDynamic(10, int64(i+1))
	}
}

// BenchmarkMetalCompile times compiling the Figure 2 checker.
func BenchmarkMetalCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := metal.Compile(checkers.WaitForDBSource, metal.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationGraph builds one many-branch function for the
// dataflow-vs-path-walk comparison.
func ablationGraph(b *testing.B, branches int) *cfg.Graph {
	src := "void h(int c) {\nint a;\nint v;\n"
	for i := 0; i < branches; i++ {
		src += "if (c) { v = 1; } else { v = 2; }\n"
	}
	src += "v = MISCBUS_READ_DB(a, 0);\n}\n"
	f, errs := parser.ParseText("bench.c", src)
	if len(errs) != 0 {
		b.Fatalf("parse: %v", errs)
	}
	return cfg.Build(f.Funcs()[0])
}

func ablationSM(b *testing.B) *engine.SM {
	w := map[string]string{"x": "", "y": ""}
	read, err := parser.ParseStmtPattern("MISCBUS_READ_DB(x, y);", parser.PatternContext{Wildcards: w})
	if err != nil {
		b.Fatal(err)
	}
	wait, err := parser.ParseStmtPattern("WAIT_FOR_DB_FULL(x);", parser.PatternContext{Wildcards: w})
	if err != nil {
		b.Fatal(err)
	}
	return &engine.SM{
		Name:  "bench",
		Start: "start",
		Rules: []*engine.Rule{
			{State: "start", Patterns: []engine.Pattern{{Stmt: wait}}, Target: engine.Stop},
			{State: "start", Patterns: []engine.Pattern{{Stmt: read}},
				Action: func(c *engine.Ctx) { c.Report("race") }},
		},
	}
}

// BenchmarkAblationDataflow16 runs the configuration-set executor on a
// function with 2^16 paths; compare with BenchmarkAblationPathWalk16
// (the paper's literal every-path traversal) to see why the default
// executor matters.
func BenchmarkAblationDataflow16(b *testing.B) {
	g := ablationGraph(b, 16)
	sm := ablationSM(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := engine.Run(g, sm); len(got) != 1 {
			b.Fatalf("reports %d", len(got))
		}
	}
}

// BenchmarkAblationPathWalk16 is the exponential every-path walk on
// the same function (bounded at 100k paths, which 2^16 exceeds only
// slightly; the trend against Dataflow16 is the point).
func BenchmarkAblationPathWalk16(b *testing.B) {
	g := ablationGraph(b, 16)
	sm := ablationSM(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := engine.RunPaths(g, sm, 100000); len(got) != 1 {
			b.Fatalf("reports %d", len(got))
		}
	}
}

// BenchmarkAblationPruning measures the correlated-branch pruner's
// cost on the buffer-management checker (DESIGN.md §6.2); the
// companion test quantifies the 22 reports it removes.
func BenchmarkAblationPruning(b *testing.B) {
	c := benchCorpus(b)
	chk := checkers.NewBufferMgmtPruned()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range c.Gen.Protocols {
			chk.Check(c.Programs[p.Name], p.Spec)
		}
	}
}

// BenchmarkSystemDeadlock measures the §6 low-grade-leak experiment:
// how long the multi-node system runs before the sci protocol's
// rare-path buffer leak drains the pools.
func BenchmarkSystemDeadlock(b *testing.B) {
	c := benchCorpus(b)
	p := c.Gen.Protocol("sci")
	prog := c.Programs["sci"]
	var leaky string
	for _, s := range p.Manifest {
		if s.Checker == "buffer_mgmt" && s.Note == "buffer leak in in-progress code" {
			for _, fn := range prog.Fns {
				if fn.Pos().File == s.File && fn.Pos().Line <= s.Line && s.Line <= fn.EndPos.Line {
					leaky = fn.Name
				}
			}
		}
	}
	if leaky == "" {
		b.Fatal("leak handler not found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := flashsim.NewSystem(prog, p.Spec, []string{leaky}, int64(i+3))
		res := sys.Run(50000)
		if !res.Deadlocked {
			b.Fatalf("no deadlock: %s", res)
		}
	}
}

// BenchmarkWarmVsColdCheck measures the artifact depot's point: the
// same full-suite analysis of one protocol with an empty depot (cold)
// versus a fully populated one (warm). A warm run skips every checker
// execution and pays only AST fingerprinting plus cache reads, so it
// should beat cold by well over 3x.
func BenchmarkWarmVsColdCheck(b *testing.B) {
	c := benchCorpus(b)
	const proto = "bitvector"
	prog := c.Programs[proto]
	spec := c.Gen.Protocol(proto).Spec
	req := sched.Request{Prog: prog, Spec: spec, Jobs: sched.FlashJobs(spec)}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an := &sched.Analyzer{} // nil depot: a fresh in-memory one per call
			if _, err := an.Check(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		store, err := depot.Open("")
		if err != nil {
			b.Fatal(err)
		}
		an := &sched.Analyzer{Depot: store}
		if _, err := an.Check(req); err != nil { // populate the depot
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := an.Check(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPathStats times the Table 1 path DP alone over the largest
// protocol.
func BenchmarkPathStats(b *testing.B) {
	c := benchCorpus(b)
	prog := c.Programs["dyn_ptr"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range prog.Graphs {
			paths.Analyze(g)
		}
	}
}
