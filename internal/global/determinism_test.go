package global

import (
	"bytes"
	"testing"
)

// fixtureSummaries builds a small summary set exercising every field.
func fixtureSummaries() []*Summary {
	return []*Summary{
		{
			Fn: "h_reply", File: "proto.c", Entry: 0, Exit: 2,
			Nodes: []Node{
				{ID: 0, Anns: []string{"send:1", "space:2"}, Calls: []string{"sub_b", "sub_a"},
					File: "proto.c", Line: 10, Succs: []int{1}, Back: []bool{false}},
				{ID: 1, File: "proto.c", Line: 11, Succs: []int{2, 0}, Back: []bool{false, true}},
				{ID: 2, File: "proto.c", Line: 12},
			},
		},
		{Fn: "sub_a", File: "common.c", Entry: 0, Exit: 0, Nodes: []Node{{ID: 0}}},
	}
}

// golden is the pinned canonical encoding of fixtureSummaries. If
// this test fails after an intentional format change, every depot
// content hash changes with it: bump the lane checker's version so
// cached artifacts are invalidated, then update the constant.
const golden = `[{"fn":"h_reply","file":"proto.c","entry":0,"exit":2,` +
	`"nodes":[{"id":0,"anns":["send:1","space:2"],"calls":["sub_b","sub_a"],` +
	`"file":"proto.c","line":10,"succs":[1],"back":[false]},` +
	`{"id":1,"file":"proto.c","line":11,"succs":[2,0],"back":[false,true]},` +
	`{"id":2,"file":"proto.c","line":12}]},` +
	`{"fn":"sub_a","file":"common.c","entry":0,"exit":0,"nodes":[{"id":0}]}]`

func TestMarshalGolden(t *testing.T) {
	b, err := Marshal(fixtureSummaries())
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != golden {
		t.Errorf("canonical form drifted:\n got %s\nwant %s", b, golden)
	}
}

// TestMarshalDeterministic marshals the same summaries (and the same
// linked program) twice and compares bytes. Program.Funcs is a map;
// linking in different orders must still serialize identically.
func TestMarshalDeterministic(t *testing.T) {
	a, err := Marshal(fixtureSummaries())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(fixtureSummaries())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("summary marshal not reproducible:\n%s\n%s", a, b)
	}

	fwd := fixtureSummaries()
	rev := fixtureSummaries()
	rev[0], rev[1] = rev[1], rev[0]
	p1, errs := Link(fwd)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	p2, errs := Link(rev)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	b1, err := p1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("program marshal depends on link order:\n%s\n%s", b1, b2)
	}
}

func TestFingerprint(t *testing.T) {
	s := fixtureSummaries()[0]
	if s.Fingerprint() != s.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	changed := fixtureSummaries()[0]
	changed.Nodes[0].Line++
	if s.Fingerprint() == changed.Fingerprint() {
		t.Fatal("fingerprint ignores node positions")
	}
}
