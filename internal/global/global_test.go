package global

import (
	"bytes"
	"strings"
	"testing"

	"flashmc/internal/cc/parser"
	"flashmc/internal/cfg"
)

func summarize(t *testing.T, src string, annotate Annotator) []*Summary {
	t.Helper()
	f, errs := parser.ParseText("g.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	var out []*Summary
	for _, fn := range f.Funcs() {
		out = append(out, FromCFG(cfg.Build(fn), annotate))
	}
	return out
}

const twoFns = `
void callee(int n) {
	if (n) {
		callee(n - 1);
	}
}
void root(void) {
	callee(3);
	helper_extern();
}
`

func TestFromCFGRecordsCalls(t *testing.T) {
	sums := summarize(t, twoFns, nil)
	if len(sums) != 2 {
		t.Fatalf("summaries %d", len(sums))
	}
	root := sums[1]
	if root.Fn != "root" {
		t.Fatalf("order: %s", root.Fn)
	}
	callees := root.Callees()
	if strings.Join(callees, ",") != "callee,helper_extern" {
		t.Errorf("callees %v", callees)
	}
}

func TestBackEdgesMarked(t *testing.T) {
	sums := summarize(t, `void loopy(int n) { while (n) { n--; } }`, nil)
	found := false
	for _, n := range sums[0].Nodes {
		for i := range n.Succs {
			if n.Back[i] {
				found = true
			}
		}
	}
	if !found {
		t.Error("no back edge recorded for the loop")
	}
}

func TestAnnotatorApplied(t *testing.T) {
	sums := summarize(t, `void f(void) { SEND_THING(2); }`, func(n *cfg.Node) []string {
		if n.Kind == cfg.KindStmt && strings.Contains(n.String(), "SEND_THING") {
			return []string{"send:2"}
		}
		return nil
	})
	count := 0
	for _, n := range sums[0].Nodes {
		for _, a := range n.Anns {
			if a == "send:2" {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("annotations %d", count)
	}
}

func TestLinkDetectsDuplicates(t *testing.T) {
	sums := summarize(t, twoFns, nil)
	dup := append(sums, sums[0])
	p, errs := Link(dup)
	if len(errs) != 1 {
		t.Fatalf("link errors %v", errs)
	}
	if len(p.Funcs) != 2 {
		t.Errorf("funcs %d", len(p.Funcs))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sums := summarize(t, twoFns, func(n *cfg.Node) []string {
		if n.Kind == cfg.KindBranch {
			return []string{"branch"}
		}
		return nil
	})
	var buf bytes.Buffer
	if err := Write(&buf, sums); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sums) {
		t.Fatalf("round trip count %d", len(got))
	}
	for i := range sums {
		if got[i].Fn != sums[i].Fn || got[i].Entry != sums[i].Entry ||
			got[i].Exit != sums[i].Exit || len(got[i].Nodes) != len(sums[i].Nodes) {
			t.Errorf("summary %d differs after round trip", i)
		}
	}
	// Annotations survive.
	anns := 0
	for _, n := range got[0].Nodes {
		anns += len(n.Anns)
	}
	if anns == 0 {
		t.Error("annotations lost in serialization")
	}
}

func TestReachable(t *testing.T) {
	sums := summarize(t, `
void leaf(void) { }
void mid(void) { leaf(); }
void top(void) { mid(); }
void island(void) { }
`, nil)
	p, _ := Link(sums)
	r := p.Reachable([]string{"top"})
	if !r["top"] || !r["mid"] || !r["leaf"] {
		t.Errorf("reachable %v", r)
	}
	if r["island"] {
		t.Error("island reachable")
	}
}

func TestReachableIgnoresExternals(t *testing.T) {
	sums := summarize(t, `void top(void) { some_macro(); }`, nil)
	p, _ := Link(sums)
	r := p.Reachable([]string{"top"})
	if len(r) != 1 {
		t.Errorf("reachable %v", r)
	}
}
