// Package global implements the paper's inter-procedural framework
// (§3.2, §7): checkers run a local pass that emits client-annotated
// flow graphs for every function, then a global pass links the emitted
// graphs into a whole-protocol call graph and traverses it.
//
// Summaries are plain data (JSON-serializable), mirroring xg++'s
// emit-to-file/read-back design, so the local and global passes can
// run in separate processes (cmd/mcheck --emit / --link) or in one.
package global

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cfg"
)

// Node is one node of a summarized flow graph.
type Node struct {
	ID int `json:"id"`
	// Anns carries client annotations attached by the local pass
	// (e.g. "send lane=1").
	Anns []string `json:"anns,omitempty"`
	// Calls lists callees invoked at this node, in source order.
	Calls []string `json:"calls,omitempty"`
	// File and Line locate the node for backtraces and report joins.
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	// Succs are successor node IDs.
	Succs []int `json:"succs,omitempty"`
	// Back flags successors reached via back edges (loops), parallel
	// to Succs.
	Back []bool `json:"back,omitempty"`
}

// Summary is the annotated flow graph of one function.
type Summary struct {
	Fn    string `json:"fn"`
	File  string `json:"file,omitempty"`
	Entry int    `json:"entry"`
	Exit  int    `json:"exit"`
	Nodes []Node `json:"nodes"`
}

// Annotator attaches client annotations to a CFG node during the
// local pass; nil or empty means no annotation.
type Annotator func(n *cfg.Node) []string

// FromCFG summarizes one function's CFG, recording call sites and the
// client's annotations.
func FromCFG(g *cfg.Graph, annotate Annotator) *Summary {
	s := &Summary{
		Fn:    g.Fn.Name,
		File:  g.Fn.Pos().File,
		Entry: g.Entry.ID,
		Exit:  g.Exit.ID,
		Nodes: make([]Node, len(g.Nodes)),
	}
	back := g.BackEdges()
	for i, n := range g.Nodes {
		sn := Node{ID: n.ID, File: n.Pos().File, Line: n.Pos().Line}
		if annotate != nil {
			sn.Anns = annotate(n)
		}
		var root ast.Node
		switch n.Kind {
		case cfg.KindStmt:
			root = n.Stmt
		case cfg.KindBranch:
			root = n.Cond
		}
		if root != nil {
			ast.Inspect(root, func(x ast.Node) bool {
				if call, ok := x.(*ast.Call); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						sn.Calls = append(sn.Calls, id.Name)
					}
				}
				return true
			})
		}
		for _, e := range n.Succs {
			sn.Succs = append(sn.Succs, e.To.ID)
			sn.Back = append(sn.Back, back[e])
		}
		s.Nodes[i] = sn
	}
	return s
}

// Program is a linked whole-protocol call graph.
type Program struct {
	Funcs map[string]*Summary `json:"funcs"`
}

// Link combines per-function summaries. Duplicate function names keep
// the first definition and report the collision.
func Link(summaries []*Summary) (*Program, []error) {
	p := &Program{Funcs: map[string]*Summary{}}
	var errs []error
	for _, s := range summaries {
		if prev, ok := p.Funcs[s.Fn]; ok {
			errs = append(errs, fmt.Errorf("duplicate definition of %s (kept %s, dropped %s)",
				s.Fn, prev.File, s.File))
			continue
		}
		p.Funcs[s.Fn] = s
	}
	return p, errs
}

// Write serializes summaries (the local pass's emit step).
func Write(w io.Writer, summaries []*Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	return enc.Encode(summaries)
}

// Marshal returns the canonical byte serialization of summaries. The
// encoding is deterministic — struct fields emit in declaration
// order, summaries in input order, and no maps participate — so equal
// summary sets marshal to equal bytes. The depot's content addresses
// are computed over these bytes; TestMarshalDeterministic pins the
// format against incidental drift (a future map-backed field, a
// randomized ordering) that would silently invalidate every cache.
func Marshal(summaries []*Summary) ([]byte, error) {
	return json.Marshal(summaries)
}

// Fingerprint is the content hash of the summary's canonical form.
func (s *Summary) Fingerprint() string {
	b, err := Marshal([]*Summary{s})
	if err != nil {
		// Summary contains only marshalable fields; reaching here
		// means the type grew an unmarshalable one.
		panic(fmt.Sprintf("global: marshal summary: %v", err))
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Marshal returns the canonical serialization of the linked program.
// The Funcs map marshals with sorted keys (encoding/json's map rule),
// so equal programs marshal to equal bytes regardless of insertion
// or link order.
func (p *Program) Marshal() ([]byte, error) {
	return json.Marshal(p)
}

// Read deserializes summaries written by Write.
func Read(r io.Reader) ([]*Summary, error) {
	var out []*Summary
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Callees returns the distinct functions a summary calls, sorted.
func (s *Summary) Callees() []string {
	set := map[string]bool{}
	for _, n := range s.Nodes {
		for _, c := range n.Calls {
			set[c] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Reachable returns all functions transitively callable from roots
// (functions missing from the program — externals/macros — are
// ignored).
func (p *Program) Reachable(roots []string) map[string]bool {
	seen := map[string]bool{}
	var stack []string
	for _, r := range roots {
		if p.Funcs[r] != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range p.Funcs[fn].Callees() {
			if p.Funcs[c] != nil && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}
