package obs

import (
	"bytes"
	"strings"
	"testing"
)

// parseExposition parses one worker's /metrics text for federation
// tests.
func parseExposition(t *testing.T, text string) map[string]*PromFamily {
	t.Helper()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("source exposition invalid: %v", err)
	}
	return fams
}

const workerExposition = `# HELP fleet_worker_tasks_total task requests received by this worker
# TYPE fleet_worker_tasks_total counter
fleet_worker_tasks_total 4
# HELP fleet_worker_exec_seconds task execution latency on this worker
# TYPE fleet_worker_exec_seconds histogram
fleet_worker_exec_seconds_bucket{kind="sm",le="0.1"} 1
fleet_worker_exec_seconds_bucket{kind="sm",le="1"} 3
fleet_worker_exec_seconds_bucket{kind="sm",le="+Inf"} 4
fleet_worker_exec_seconds_sum{kind="sm"} 2.5
fleet_worker_exec_seconds_count{kind="sm"} 4
fleet_worker_exec_seconds_bucket{kind="glob",le="0.1"} 0
fleet_worker_exec_seconds_bucket{kind="glob",le="1"} 1
fleet_worker_exec_seconds_bucket{kind="glob",le="+Inf"} 1
fleet_worker_exec_seconds_sum{kind="glob"} 0.9
fleet_worker_exec_seconds_count{kind="glob"} 1
`

// TestFederatedDuplicateFamiliesParse: two workers exposing the same
// family names federate into one exposition that the repo's own parser
// accepts — one HELP/TYPE per family, series distinguished by the
// injected worker label. This is the exact shape mcheckd's /metrics
// serves for a fleet, so the parser is the CI gate on it.
func TestFederatedDuplicateFamiliesParse(t *testing.T) {
	sources := map[string]map[string]*PromFamily{
		"127.0.0.1:18286": parseExposition(t, workerExposition),
		"127.0.0.1:18287": parseExposition(t, workerExposition),
	}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, sources, "worker", nil); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("federated output does not parse: %v\n%s", err, buf.String())
	}
	ctr := fams["fleet_worker_tasks_total"]
	if ctr == nil || len(ctr.Samples) != 2 {
		t.Fatalf("fleet_worker_tasks_total = %+v", ctr)
	}
	seen := map[string]bool{}
	for _, s := range ctr.Samples {
		if s.Value != 4 {
			t.Fatalf("sample %+v, want value 4", s)
		}
		seen[s.Labels["worker"]] = true
	}
	if !seen["127.0.0.1:18286"] || !seen["127.0.0.1:18287"] {
		t.Fatalf("worker labels = %v", seen)
	}
}

// TestFederatedHistogramSeriesOrdering: a HistogramVec family with
// several label series keeps each series' le buckets in ascending
// order through federation — the parser's bucket-order check is the
// assertion.
func TestFederatedHistogramSeriesOrdering(t *testing.T) {
	sources := map[string]map[string]*PromFamily{
		"w1": parseExposition(t, workerExposition),
		"w2": parseExposition(t, workerExposition),
	}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, sources, "worker", func(n string) bool {
		return strings.HasPrefix(n, "fleet_worker_exec_seconds")
	}); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("federated histogram does not parse: %v\n%s", err, buf.String())
	}
	// 2 workers × 2 kind series × (3 buckets + sum + count) = 20.
	hist := fams["fleet_worker_exec_seconds"]
	if hist == nil || hist.Type != "histogram" || len(hist.Samples) != 20 {
		t.Fatalf("fleet_worker_exec_seconds = %+v", hist)
	}
	if tasks := fams["fleet_worker_tasks_total"]; tasks != nil {
		t.Fatalf("keep filter leaked: %+v", tasks)
	}
}

// TestFederatedEscapedLabelValues: label values containing quotes,
// backslashes, and newlines — in both the source key and the source's
// own labels — survive the aggregator unmangled.
func TestFederatedEscapedLabelValues(t *testing.T) {
	hairy := "y \"z\" \\ \nw"
	sources := map[string]map[string]*PromFamily{
		hairy: {
			"fleet_worker_tasks_total": {
				Name: "fleet_worker_tasks_total", Type: "counter",
				Samples: []Sample{{
					Name:   "fleet_worker_tasks_total",
					Labels: map[string]string{"path": hairy},
					Value:  1,
				}},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, sources, "worker", nil); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped output does not parse: %v\n%s", err, buf.String())
	}
	samples := fams["fleet_worker_tasks_total"].Samples
	if len(samples) != 1 {
		t.Fatalf("samples = %+v", samples)
	}
	if samples[0].Labels["worker"] != hairy || samples[0].Labels["path"] != hairy {
		t.Fatalf("labels did not round-trip: %+v", samples[0].Labels)
	}
}

// TestFederatedSkipsPrelabeledSamples: a sample that already carries
// the injected label name is dropped instead of rendered with a
// duplicate label — the in-process-fleet case where a worker's
// registry already saw a federated scrape.
func TestFederatedSkipsPrelabeledSamples(t *testing.T) {
	sources := map[string]map[string]*PromFamily{
		"w1": {
			"fleet_worker_tasks_total": {
				Name: "fleet_worker_tasks_total", Type: "counter",
				Samples: []Sample{
					{Name: "fleet_worker_tasks_total", Labels: map[string]string{"worker": "older"}, Value: 9},
					{Name: "fleet_worker_tasks_total", Value: 2},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, sources, "worker", nil); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("federated output does not parse: %v\n%s", err, buf.String())
	}
	samples := fams["fleet_worker_tasks_total"].Samples
	if len(samples) != 1 || samples[0].Value != 2 || samples[0].Labels["worker"] != "w1" {
		t.Fatalf("samples = %+v", samples)
	}
}
