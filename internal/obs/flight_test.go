package obs

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// TestFlightRecorderRing: the recorder keeps the last n events
// oldest-first, and Total counts everything ever recorded.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	if got := f.Events(); len(got) != 0 {
		t.Fatalf("fresh recorder has events: %+v", got)
	}
	for i := 0; i < 5; i++ {
		f.Record("dispatched", fmt.Sprintf("task-%d", i), "w0", "", "")
	}
	got := f.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, want := range []string{"task-2", "task-3", "task-4"} {
		if got[i].Task != want {
			t.Fatalf("event %d task = %q, want %q (oldest-first)", i, got[i].Task, want)
		}
		if got[i].Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
	if f.Total() != 5 {
		t.Fatalf("total = %d, want 5", f.Total())
	}
}

// TestFlightRecorderBelowCapacity: before the buffer wraps, events
// come back in insertion order without phantom zero entries.
func TestFlightRecorderBelowCapacity(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("dispatched", "a", "w0", "", "")
	f.Record("completed", "a", "w0", "200", "")
	got := f.Events()
	if len(got) != 2 || got[0].Kind != "dispatched" || got[1].Kind != "completed" {
		t.Fatalf("events = %+v", got)
	}
	if got[1].Detail != "200" {
		t.Fatalf("detail = %q", got[1].Detail)
	}
}

// TestFlightRecorderNilAndTiny: a nil recorder is a no-op; capacity
// below one is raised to one.
func TestFlightRecorderNilAndTiny(t *testing.T) {
	var f *FlightRecorder
	f.Record("dispatched", "a", "w0", "", "")
	if f.Events() != nil || f.Total() != 0 {
		t.Fatal("nil recorder not a no-op")
	}
	tiny := NewFlightRecorder(0)
	tiny.Record("a", "", "", "", "")
	tiny.Record("b", "", "", "", "")
	got := tiny.Events()
	if len(got) != 1 || got[0].Kind != "b" {
		t.Fatalf("tiny recorder events = %+v", got)
	}
}

// TestFlightRecorderConcurrentWraparound: many writers wrapping a
// small ring must stay race-clean and evict oldest-first. Each
// goroutine writes an increasing sequence; because the ring evicts in
// insertion order, the retained events of any one goroutine must be a
// contiguous suffix of its sequence ending at its last write.
func TestFlightRecorderConcurrentWraparound(t *testing.T) {
	const (
		ring       = 64
		goroutines = 8
		perG       = 100
	)
	f := NewFlightRecorder(ring)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; seq < perG; seq++ {
				f.Record("dispatched", fmt.Sprintf("g%d", g), "w0", fmt.Sprintf("%d", seq), "t1")
			}
		}()
	}
	wg.Wait()

	if got := f.Total(); got != goroutines*perG {
		t.Fatalf("Total = %d, want %d", got, goroutines*perG)
	}
	events := f.Events()
	if len(events) != ring {
		t.Fatalf("retained %d events, ring holds %d", len(events), ring)
	}
	seqs := map[string][]int{}
	for _, e := range events {
		if e.Trace != "t1" {
			t.Fatalf("event lost its trace id: %+v", e)
		}
		n, err := strconv.Atoi(e.Detail)
		if err != nil {
			t.Fatalf("bad detail %q", e.Detail)
		}
		seqs[e.Task] = append(seqs[e.Task], n)
	}
	for task, s := range seqs {
		for i := 1; i < len(s); i++ {
			if s[i] != s[i-1]+1 {
				t.Fatalf("%s: retained seqs not a contiguous suffix (oldest not evicted first): %v", task, s)
			}
		}
		if s[len(s)-1] != perG-1 {
			t.Fatalf("%s: newest write evicted before older ones: %v", task, s)
		}
	}
}
