package obs

import (
	"fmt"
	"testing"
)

// TestFlightRecorderRing: the recorder keeps the last n events
// oldest-first, and Total counts everything ever recorded.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	if got := f.Events(); len(got) != 0 {
		t.Fatalf("fresh recorder has events: %+v", got)
	}
	for i := 0; i < 5; i++ {
		f.Record("dispatched", fmt.Sprintf("task-%d", i), "w0", "")
	}
	got := f.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, want := range []string{"task-2", "task-3", "task-4"} {
		if got[i].Task != want {
			t.Fatalf("event %d task = %q, want %q (oldest-first)", i, got[i].Task, want)
		}
		if got[i].Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
	if f.Total() != 5 {
		t.Fatalf("total = %d, want 5", f.Total())
	}
}

// TestFlightRecorderBelowCapacity: before the buffer wraps, events
// come back in insertion order without phantom zero entries.
func TestFlightRecorderBelowCapacity(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("dispatched", "a", "w0", "")
	f.Record("completed", "a", "w0", "200")
	got := f.Events()
	if len(got) != 2 || got[0].Kind != "dispatched" || got[1].Kind != "completed" {
		t.Fatalf("events = %+v", got)
	}
	if got[1].Detail != "200" {
		t.Fatalf("detail = %q", got[1].Detail)
	}
}

// TestFlightRecorderNilAndTiny: a nil recorder is a no-op; capacity
// below one is raised to one.
func TestFlightRecorderNilAndTiny(t *testing.T) {
	var f *FlightRecorder
	f.Record("dispatched", "a", "w0", "")
	if f.Events() != nil || f.Total() != 0 {
		t.Fatal("nil recorder not a no-op")
	}
	tiny := NewFlightRecorder(0)
	tiny.Record("a", "", "", "")
	tiny.Record("b", "", "", "")
	got := tiny.Events()
	if len(got) != 1 || got[0].Kind != "b" {
		t.Fatalf("tiny recorder events = %+v", got)
	}
}
