package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is a tiny, dependency-free parser for the Prometheus text
// exposition format (version 0.0.4) — just enough to gate, in CI,
// that what /metrics and `mcheck -metrics` emit is well-formed: names
// are legal, HELP/TYPE comments are coherent, every sample line
// parses, histogram series belong to a declared histogram family, and
// no sample is duplicated.

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: its TYPE, HELP, and samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// baseFamily maps a sample name to the family it belongs to, folding
// histogram/summary series suffixes onto their parent when the parent
// is declared with a compatible TYPE.
func baseFamily(families map[string]*PromFamily, name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return name
}

// parseValue accepts Prometheus sample values: Go float syntax plus
// +Inf/-Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN", "nan":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `{k="v",...}` starting at s (which must begin
// with '{'), returning the labels and the rest of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	rest := s[1:]
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		var val strings.Builder
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch rest[i+1] {
				case '\\', '"':
					val.WriteByte(rest[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", rest[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		rest = strings.TrimLeft(rest[i:], " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %s", name)
	}
}

// labelsKey canonicalizes a label set for duplicate detection.
func labelsKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+"="+v)
	}
	// Insertion-order independence matters, not speed.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// ParsePrometheus parses text exposition format, returning the
// families keyed by name. It rejects malformed comment lines, invalid
// metric or label names, unparsable values, samples whose histogram
// series have no declared parent family, re-declared TYPE lines, and
// duplicate samples.
func ParsePrometheus(r io.Reader) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fail := func(format string, args ...any) (map[string]*PromFamily, error) {
			return nil, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return fail("malformed HELP: %q", line)
				}
				f := ensureFamily(families, fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 || !validMetricName(fields[2]) {
					return fail("malformed TYPE: %q", line)
				}
				if !promTypes[fields[3]] {
					return fail("unknown metric type %q", fields[3])
				}
				f := ensureFamily(families, fields[2])
				if f.Type != "" {
					return fail("TYPE re-declared for %s", fields[2])
				}
				if len(f.Samples) > 0 {
					return fail("TYPE for %s after its samples", fields[2])
				}
				f.Type = fields[3]
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		nameEnd := strings.IndexAny(line, "{ \t")
		if nameEnd < 0 {
			return fail("sample without value: %q", line)
		}
		name := line[:nameEnd]
		if !validMetricName(name) {
			return fail("bad metric name %q", name)
		}
		rest := line[nameEnd:]
		labels := map[string]string{}
		if strings.HasPrefix(rest, "{") {
			var err error
			labels, rest, err = parseLabels(rest)
			if err != nil {
				return fail("%v in %q", err, line)
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fail("expected value [timestamp], got %q", rest)
		}
		value, err := parseValue(fields[0])
		if err != nil {
			return fail("bad value %q: %v", fields[0], err)
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return fail("bad timestamp %q", fields[1])
			}
		}
		famName := baseFamily(families, name)
		f := ensureFamily(families, famName)
		dupKey := name + "{" + labelsKey(labels) + "}"
		if seen[dupKey] {
			return fail("duplicate sample %s", dupKey)
		}
		seen[dupKey] = true
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, f := range families {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", name, err)
			}
		}
	}
	return families, nil
}

func ensureFamily(families map[string]*PromFamily, name string) *PromFamily {
	if f, ok := families[name]; ok {
		return f
	}
	f := &PromFamily{Name: name}
	families[name] = f
	return f
}

// histSeries accumulates one labeled series of a histogram family
// (one set of non-le labels).
type histSeries struct {
	lastLE    float64
	lastCount float64
	buckets   int
	infCount  float64
	count     float64
}

// checkHistogram enforces the histogram series contract per series
// (series = one set of labels excluding "le"): a +Inf bucket whose
// count equals name_count, and cumulative, ascending bucket counts.
// Labeled families — one series per label value, like the fleet's
// per-worker latencies — validate each series independently.
func checkHistogram(f *PromFamily) error {
	series := map[string]*histSeries{}
	get := func(labels map[string]string) *histSeries {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := labelsKey(rest)
		h, ok := series[key]
		if !ok {
			h = &histSeries{infCount: -1, count: -1}
			series[key] = h
		}
		return h
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			h := get(s.Labels)
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket without le label")
			}
			v, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("bad le %q", le)
			}
			if h.buckets > 0 && v <= h.lastLE {
				return fmt.Errorf("buckets not ascending at le=%q", le)
			}
			if s.Value < h.lastCount {
				return fmt.Errorf("bucket counts not cumulative at le=%q", le)
			}
			h.lastLE, h.lastCount = v, s.Value
			h.buckets++
			if le == "+Inf" {
				h.infCount = s.Value
			}
		case f.Name + "_count":
			get(s.Labels).count = s.Value
		}
	}
	if len(series) == 0 {
		return fmt.Errorf("no buckets")
	}
	for key, h := range series {
		at := ""
		if key != "" {
			at = fmt.Sprintf(" in series {%s}", key)
		}
		if h.buckets == 0 {
			return fmt.Errorf("no buckets%s", at)
		}
		if h.infCount < 0 {
			return fmt.Errorf("missing +Inf bucket%s", at)
		}
		if h.count >= 0 && h.infCount != h.count {
			return fmt.Errorf("+Inf bucket %v != count %v%s", h.infCount, h.count, at)
		}
	}
	return nil
}
