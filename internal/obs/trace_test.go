package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestSetProcessNamesLane: SetProcess stamps subsequent events with
// the pid and records exactly one process_name metadata event per pid.
func TestSetProcessNamesLane(t *testing.T) {
	tr := NewTracer()
	tr.SetProcess(7, "mcheckd")
	tr.SetProcess(7, "mcheckd") // dedup: second call records nothing new
	sp := tr.StartSpan("work", 3)
	time.Sleep(time.Millisecond)
	sp.End()

	events := tr.Events()
	metas, spans := 0, 0
	for _, e := range events {
		switch e.Ph {
		case "M":
			metas++
			if e.Name != "process_name" || e.PID != 7 {
				t.Fatalf("metadata event = %+v", e)
			}
			if name, _ := e.Args["name"].(string); name != "mcheckd" {
				t.Fatalf("process_name args = %v", e.Args)
			}
		case "X":
			spans++
			if e.PID != 7 || e.TID != 3 {
				t.Fatalf("span lane = (pid=%d,tid=%d), want (7,3)", e.PID, e.TID)
			}
		}
	}
	if metas != 1 || spans != 1 {
		t.Fatalf("metas=%d spans=%d, want 1 and 1", metas, spans)
	}
}

// TestProcessMetaForeignLane: ProcessMeta names a lane the tracer's
// own events never use — how the leader labels merged worker pids.
func TestProcessMetaForeignLane(t *testing.T) {
	tr := NewTracer()
	tr.ProcessMeta(4, "mcheckworker 127.0.0.1:9999")
	events := tr.Events()
	if len(events) != 1 || events[0].Ph != "M" || events[0].PID != 4 {
		t.Fatalf("events = %+v", events)
	}
}

// TestMergeRemoteRewritesAndShifts: merged remote events land on the
// assigned (pid, tid) lane with timestamps shifted onto the leader's
// clock, metadata dropped, and negative results clamped to zero.
func TestMergeRemoteRewritesAndShifts(t *testing.T) {
	tr := NewTracer()
	remote := []Event{
		{Name: "process_name", Ph: "M", PID: 12345, Args: map[string]any{"name": "worker"}},
		{Name: "frontend", Ph: "X", TS: 10, Dur: 5, PID: 12345, TID: 0},
		{Name: "run", Ph: "X", TS: 20, Dur: 30, PID: 12345, TID: 0},
	}
	tr.MergeRemote(remote, 1000, 3, 42)

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("merged %d events, want 2 (metadata dropped): %+v", len(events), events)
	}
	for i, want := range []struct{ name string; ts float64 }{{"frontend", 1010}, {"run", 1020}} {
		e := events[i]
		if e.Name != want.name || e.TS != want.ts || e.PID != 3 || e.TID != 42 {
			t.Fatalf("event %d = %+v, want name=%s ts=%v pid=3 tid=42", i, e, want.name, want.ts)
		}
	}

	// A pathological negative offset must not produce negative
	// timestamps — ValidateTrace rejects those.
	tr2 := NewTracer()
	tr2.MergeRemote([]Event{{Name: "x", Ph: "X", TS: 5, Dur: 1}}, -100, 2, 1)
	if ts := tr2.Events()[0].TS; ts != 0 {
		t.Fatalf("clamped TS = %v, want 0", ts)
	}
}

// TestWriteTraceJSONSortsLanes: events recorded out of lane order come
// out grouped per (pid, tid) with monotone timestamps, so a merged
// multi-process trace passes validation no matter the arrival order of
// worker replies.
func TestWriteTraceJSONSortsLanes(t *testing.T) {
	tr := NewTracer()
	tr.SetProcess(1, "leader")
	sp := tr.StartSpan("dispatch", 0)
	time.Sleep(time.Millisecond)
	sp.End()
	// Worker spans arrive after the leader span but started earlier on
	// their own lane; a second worker merges before the first.
	tr.ProcessMeta(3, "worker-b")
	tr.MergeRemote([]Event{{Name: "run-b", Ph: "X", TS: 0, Dur: 2}}, 50, 3, 1)
	tr.ProcessMeta(2, "worker-a")
	tr.MergeRemote([]Event{{Name: "run-a", Ph: "X", TS: 0, Dur: 2}}, 10, 2, 1)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateTraceStats(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if stats.Spans != 3 {
		t.Fatalf("spans = %d, want 3", stats.Spans)
	}
	want := []ProcessStats{
		{PID: 1, Name: "leader", Spans: 1},
		{PID: 2, Name: "worker-a", Spans: 1},
		{PID: 3, Name: "worker-b", Spans: 1},
	}
	if len(stats.Processes) != len(want) {
		t.Fatalf("processes = %+v", stats.Processes)
	}
	for i, w := range want {
		if stats.Processes[i] != w {
			t.Fatalf("process %d = %+v, want %+v", i, stats.Processes[i], w)
		}
	}
}

// TestValidateTraceStatsRejects: the lane discipline is enforced —
// out-of-order timestamps within one (pid, tid) lane and negative
// timestamps both fail, while the same timestamps on different lanes
// pass.
func TestValidateTraceStatsRejects(t *testing.T) {
	bad := `[{"name":"a","ph":"X","ts":100,"dur":1,"pid":1,"tid":1},
	        {"name":"b","ph":"X","ts":50,"dur":1,"pid":1,"tid":1}]`
	if _, err := ValidateTraceStats(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-order lane timestamps validated")
	}

	neg := `[{"name":"a","ph":"X","ts":-5,"dur":1,"pid":1,"tid":1}]`
	if _, err := ValidateTraceStats(strings.NewReader(neg)); err == nil {
		t.Fatal("negative timestamp validated")
	}

	ok := `[{"name":"a","ph":"X","ts":100,"dur":1,"pid":1,"tid":1},
	       {"name":"b","ph":"X","ts":50,"dur":1,"pid":2,"tid":1}]`
	if _, err := ValidateTraceStats(strings.NewReader(ok)); err != nil {
		t.Fatalf("cross-lane ordering rejected: %v", err)
	}

	// Metadata events are exempt from the monotonicity walk (they carry
	// ts 0 wherever they sort) but still name processes.
	meta := `[{"name":"process_name","ph":"M","pid":9,"args":{"name":"w"}},
	         {"name":"a","ph":"X","ts":1,"dur":1,"pid":9,"tid":0}]`
	stats, err := ValidateTraceStats(strings.NewReader(meta))
	if err != nil {
		t.Fatalf("metadata trace rejected: %v", err)
	}
	if len(stats.Processes) != 1 || stats.Processes[0].Name != "w" {
		t.Fatalf("processes = %+v", stats.Processes)
	}
}
