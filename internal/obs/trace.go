package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one Chrome trace_event record. Complete spans use phase
// "X" with a microsecond timestamp and duration; chrome://tracing and
// Perfetto render them as nested bars per (pid, tid). Phase "M"
// carries process metadata (process_name), which is how a merged
// multi-process trace renders one named lane per worker.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records hierarchical timed spans. A nil *Tracer is a valid
// no-op recorder, so instrumented code paths never need to test
// whether tracing is on:
//
//	sp := tracer.StartSpan("parse", 0)   // tracer may be nil
//	defer sp.End()
type Tracer struct {
	mu     sync.Mutex
	t0     time.Time
	pid    int
	procs  map[int]bool // pids a process_name metadata event was emitted for
	events []Event
}

// NewTracer returns a tracer whose timestamps are relative to now and
// whose events carry process id 1 until SetProcess changes it.
func NewTracer() *Tracer { return &Tracer{t0: time.Now(), pid: 1} }

// SetProcess names this tracer's own process: subsequent events carry
// pid, and a process_name metadata ("M") event is recorded so trace
// viewers label the lane. Call it before recording spans.
func (t *Tracer) SetProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pid = pid
	t.mu.Unlock()
	t.ProcessMeta(pid, name)
}

// ProcessMeta records a process_name metadata event for an arbitrary
// pid lane (deduplicated per tracer) — the leader uses it to name the
// lanes it merges remote worker spans into.
func (t *Tracer) ProcessMeta(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.procs == nil {
		t.procs = map[int]bool{}
	}
	if t.procs[pid] {
		return
	}
	t.procs[pid] = true
	t.events = append(t.events, Event{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// NowUS returns microseconds elapsed since the tracer's start — the
// time base remote spans are aligned against.
func (t *Tracer) NowUS() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.t0)) / float64(time.Microsecond)
}

// Span is one in-flight span; End records it.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
	args  map[string]any
}

// StartSpan opens a span on logical thread tid. Spans on the same tid
// whose intervals nest render hierarchically in the trace viewer.
func (t *Tracer) StartSpan(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: tid, start: time.Now()}
}

// Arg attaches a key/value argument shown in the viewer's detail pane.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
	return s
}

// Cat sets the span's category, which viewers use for filtering (and
// ci.sh greps for to prove dispatcher spans exist).
func (s *Span) Cat(cat string) *Span {
	if s == nil {
		return nil
	}
	s.cat = cat
	return s
}

// End closes the span, recording a complete ("X") event.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.record(Event{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   float64(s.start.Sub(s.t.t0)) / float64(time.Microsecond),
		Dur:  float64(time.Since(s.start)) / float64(time.Microsecond),
		TID:  s.tid,
		Args: s.args,
	})
}

// Instant records a zero-duration instant event (phase "i").
func (t *Tracer) Instant(name string, tid int) {
	t.Mark(name, "", tid, nil)
}

// Mark records an instant event (phase "i") with a category and
// arguments — the dispatcher uses it for enqueue/steal/retry marks.
func (t *Tracer) Mark(name, cat string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.record(Event{
		Name: name, Cat: cat, Ph: "i",
		TS:   float64(time.Since(t.t0)) / float64(time.Microsecond),
		TID:  tid,
		Args: args,
	})
}

// RecordSpan records a complete ("X") span for an interval measured
// outside the Span helper — e.g. a queue wait whose start predates the
// claim that observes it.
func (t *Tracer) RecordSpan(name, cat string, tid int, start time.Time, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ts := float64(start.Sub(t.t0)) / float64(time.Microsecond)
	if ts < 0 {
		ts = 0
	}
	if dur < 0 {
		dur = 0
	}
	t.record(Event{
		Name: name, Cat: cat, Ph: "X",
		TS: ts, Dur: float64(dur) / float64(time.Microsecond),
		TID: tid, Args: args,
	})
}

// MergeRemote appends spans recorded by another process's tracer,
// shifting their timestamps by offsetUS (the estimated position of the
// remote tracer's t0 on this tracer's clock) and rewriting their
// process/thread ids so each remote task gets its own lane. Metadata
// events are dropped — the merging side names the lanes it assigns.
func (t *Tracer) MergeRemote(events []Event, offsetUS float64, pid, tid int) {
	if t == nil || len(events) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range events {
		if e.Ph == "M" {
			continue
		}
		e.PID, e.TID = pid, tid
		e.TS += offsetUS
		if e.TS < 0 {
			e.TS = 0
		}
		t.events = append(t.events, e)
	}
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	if e.PID == 0 {
		e.PID = t.pid
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// traceFile is the Chrome trace_event JSON object form.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// sortEvents orders events the way ValidateTrace checks them: by
// (pid, tid), then timestamp; metadata first and longer spans before
// the spans they enclose at equal timestamps.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.Dur > b.Dur
	})
}

// WriteTraceJSON writes events in Chrome trace_event JSON object
// format, loadable by chrome://tracing and ui.perfetto.dev. Events are
// sorted per (pid, tid) lane, which is the order ValidateTrace asserts
// timestamps are monotone in.
func WriteTraceJSON(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	sortEvents(sorted)
	if sorted == nil {
		sorted = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: sorted, DisplayTimeUnit: "ms"})
}

// WriteJSON writes the trace in Chrome trace_event JSON object format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	return WriteTraceJSON(w, t.Events())
}

// ProcessStats is one process's slice of a validated trace.
type ProcessStats struct {
	PID   int
	Name  string
	Spans int
}

// TraceStats summarizes a validated trace: total complete spans plus
// the per-process breakdown (processes sorted by pid; names come from
// process_name metadata events when present).
type TraceStats struct {
	Spans     int
	Processes []ProcessStats
}

// ValidateTrace checks that r holds Chrome trace_event JSON (object
// form or bare array) containing at least one complete ("X") span,
// returning the complete-span count. cmd/obscheck uses it as the CI
// gate on -trace output.
func ValidateTrace(r io.Reader) (int, error) {
	st, err := ValidateTraceStats(r)
	if st == nil {
		return 0, err
	}
	return st.Spans, err
}

// ValidateTraceStats validates a trace like ValidateTrace and returns
// the per-process breakdown. Beyond well-formedness it asserts the
// timestamp discipline merged multi-process traces rely on: every
// timestamp non-negative, every complete span's duration non-negative,
// and timestamps monotone per (pid, tid) lane in file order (the order
// WriteTraceJSON emits).
func ValidateTraceStats(r io.Reader) (*TraceStats, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var events []Event
	var obj traceFile
	if err := json.Unmarshal(raw, &obj); err != nil {
		if aerr := json.Unmarshal(raw, &events); aerr != nil {
			return nil, fmt.Errorf("obs: trace is not valid JSON: %w", err)
		}
	} else {
		events = obj.TraceEvents
	}
	type lane struct{ pid, tid int }
	lastTS := map[lane]float64{}
	names := map[int]string{}
	spans := map[int]int{}
	total := 0
	for _, e := range events {
		if e.Name == "" || e.Ph == "" {
			return nil, fmt.Errorf("obs: trace event missing name or phase: %+v", e)
		}
		if e.TS < 0 {
			return nil, fmt.Errorf("obs: event %q has negative timestamp %v", e.Name, e.TS)
		}
		if e.Ph == "M" {
			if e.Name == "process_name" {
				if n, ok := e.Args["name"].(string); ok {
					names[e.PID] = n
				}
			}
			continue
		}
		l := lane{e.PID, e.TID}
		if last, ok := lastTS[l]; ok && e.TS < last {
			return nil, fmt.Errorf("obs: timestamps not monotone in lane (pid=%d,tid=%d): %q at %v after %v",
				e.PID, e.TID, e.Name, e.TS, last)
		}
		lastTS[l] = e.TS
		if e.Ph == "X" {
			if e.Dur < 0 {
				return nil, fmt.Errorf("obs: complete event %q has negative duration", e.Name)
			}
			spans[e.PID]++
			total++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("obs: trace contains no complete (ph=X) span")
	}
	st := &TraceStats{Spans: total}
	pids := make([]int, 0, len(spans))
	for pid := range spans {
		pids = append(pids, pid)
	}
	for pid := range names {
		if _, ok := spans[pid]; !ok {
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)
	for _, pid := range pids {
		st.Processes = append(st.Processes, ProcessStats{PID: pid, Name: names[pid], Spans: spans[pid]})
	}
	return st, nil
}
