package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one Chrome trace_event record. Complete spans use phase
// "X" with a microsecond timestamp and duration; chrome://tracing and
// Perfetto render them as nested bars per (pid, tid).
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records hierarchical timed spans. A nil *Tracer is a valid
// no-op recorder, so instrumented code paths never need to test
// whether tracing is on:
//
//	sp := tracer.StartSpan("parse", 0)   // tracer may be nil
//	defer sp.End()
type Tracer struct {
	mu     sync.Mutex
	t0     time.Time
	events []Event
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{t0: time.Now()} }

// Span is one in-flight span; End records it.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	start time.Time
	args  map[string]any
}

// StartSpan opens a span on logical thread tid. Spans on the same tid
// whose intervals nest render hierarchically in the trace viewer.
func (t *Tracer) StartSpan(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: tid, start: time.Now()}
}

// Arg attaches a key/value argument shown in the viewer's detail pane.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
	return s
}

// End closes the span, recording a complete ("X") event.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.record(Event{
		Name: s.name,
		Ph:   "X",
		TS:   float64(s.start.Sub(s.t.t0)) / float64(time.Microsecond),
		Dur:  float64(time.Since(s.start)) / float64(time.Microsecond),
		PID:  1,
		TID:  s.tid,
		Args: s.args,
	})
}

// Instant records a zero-duration instant event (phase "i").
func (t *Tracer) Instant(name string, tid int) {
	if t == nil {
		return
	}
	t.record(Event{
		Name: name, Ph: "i",
		TS:  float64(time.Since(t.t0)) / float64(time.Microsecond),
		PID: 1, TID: tid,
	})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// traceFile is the Chrome trace_event JSON object form.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteJSON writes the trace in Chrome trace_event JSON object format,
// loadable by chrome://tracing and ui.perfetto.dev.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateTrace checks that r holds Chrome trace_event JSON (object
// form or bare array) containing at least one complete ("X") span
// with a non-negative duration, returning the complete-span count.
// cmd/obscheck uses it as the CI gate on -trace output.
func ValidateTrace(r io.Reader) (int, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	var events []Event
	var obj traceFile
	if err := json.Unmarshal(raw, &obj); err != nil {
		if aerr := json.Unmarshal(raw, &events); aerr != nil {
			return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
		}
	} else {
		events = obj.TraceEvents
	}
	complete := 0
	for _, e := range events {
		if e.Name == "" || e.Ph == "" {
			return complete, fmt.Errorf("obs: trace event missing name or phase: %+v", e)
		}
		if e.Ph == "X" {
			if e.Dur < 0 {
				return complete, fmt.Errorf("obs: complete event %q has negative duration", e.Name)
			}
			complete++
		}
	}
	if complete == 0 {
		return 0, fmt.Errorf("obs: trace contains no complete (ph=X) span")
	}
	return complete, nil
}
