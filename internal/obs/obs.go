// Package obs is the unified observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with Prometheus text
// exposition) and a span tracer that exports Chrome trace_event JSON.
//
// The paper's workflow is inspection-heavy — every Table 7 bug was
// found by a human ranking and reading reports — and §11's
// blinded-checker incident shows how silently an analysis pipeline can
// degrade. Package lint guards against that statically; obs observes
// it dynamically: the engine counts the paths and configurations it
// explores, the scheduler times every task, the depot counts its
// cache traffic, and mcheckd exposes all of it at /metrics. A checker
// that stops matching shows up as engine_rules_fired_total going flat,
// not as a mysteriously clean run.
//
// Everything is safe for concurrent use. Metric registration is
// idempotent: asking a registry for a counter that already exists
// returns the existing one, so package-level metric variables and
// repeated test setups coexist.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increases the counter by d (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (which may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram buckets, tuned for analysis
// task latencies: 100µs through 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a cumulative-bucket histogram of observed values
// (typically seconds).
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the bucket that holds
// the target rank, the same estimator Prometheus's histogram_quantile
// uses. The lowest bucket interpolates from 0; ranks that land in the
// +Inf overflow bucket clamp to the highest finite bound (the true
// value is unbounded, so this is a floor, not an estimate). Returns
// NaN when the histogram is empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, b := range h.bounds {
		in := float64(h.buckets[i].Load())
		if cum+in >= rank {
			lo := float64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if in == 0 {
				return b
			}
			return lo + (b-lo)*(rank-cum)/in
		}
		cum += in
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// GaugeVec is a family of gauges split by one label — the depot's
// per-shard byte gauges, for example. Children render as
// name{label="value"} sample lines, sorted by label value.
type GaugeVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*Gauge
}

// With returns the child gauge for one label value, creating it if
// needed.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

// snapshot returns the child label values (sorted) and gauges.
func (v *GaugeVec) snapshot() ([]string, map[string]*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.children))
	out := make(map[string]*Gauge, len(v.children))
	for val, g := range v.children {
		vals = append(vals, val)
		out[val] = g
	}
	sort.Strings(vals)
	return vals, out
}

// CounterVec is a family of counters split by one label — the
// scheduler's per-reason cache-decision counters, for example.
// Children render as name{label="value"} sample lines, sorted by
// label value.
type CounterVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for one label value, creating it if
// needed.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// snapshot returns the child label values (sorted) and counters.
func (v *CounterVec) snapshot() ([]string, map[string]*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.children))
	out := make(map[string]*Counter, len(v.children))
	for val, c := range v.children {
		vals = append(vals, val)
		out[val] = c
	}
	sort.Strings(vals)
	return vals, out
}

// HistogramVec is a family of histograms split by one label — the
// fleet's per-worker task latencies, for example. Children render as
// name_bucket{label="value",le="bound"} series, sorted by label value.
type HistogramVec struct {
	label   string
	buckets []float64
	mu      sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for one label value, creating it
// if needed.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = MakeHistogram(v.buckets)
		v.children[value] = h
	}
	return h
}

// snapshot returns the child label values (sorted) and histograms.
func (v *HistogramVec) snapshot() ([]string, map[string]*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.children))
	out := make(map[string]*Histogram, len(v.children))
	for val, h := range v.children {
		vals = append(vals, val)
		out[val] = h
	}
	sort.Strings(vals)
	return vals, out
}

// metric kinds for registry bookkeeping.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one registered metric and its metadata.
type family struct {
	name, help, kind string

	counter      *Counter
	counterVec   *CounterVec
	gauge        *Gauge
	gaugeFn      func() float64
	gaugeVec     *GaugeVec
	histogram    *Histogram
	histogramVec *HistogramVec
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format (version 0.0.4).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry that package-level metrics
// (engine, sched, depot) register into.
var Default = NewRegistry()

// lookup returns the family under name, creating it with mk if absent.
// A name registered under a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help, kind string, mk func(*family)) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	mk(f)
	r.families[name] = f
	return f
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, func(f *family) { f.counter = &Counter{} })
	if f.counter == nil {
		panic(fmt.Sprintf("obs: metric %s re-registered as plain counter (was labeled)", name))
	}
	return f.counter
}

// CounterVec returns the labeled counter family registered under name,
// creating it with the given label name if needed. Registering a name
// already held by a plain counter (or vice versa) panics — mixing
// labeled and unlabeled samples in one family is malformed exposition.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.lookup(name, help, kindCounter, func(f *family) {
		f.counterVec = &CounterVec{label: label, children: map[string]*Counter{}}
	})
	if f.counterVec == nil {
		panic(fmt.Sprintf("obs: metric %s re-registered as labeled counter (was plain)", name))
	}
	return f.counterVec
}

// Gauge returns the gauge registered under name, creating it if
// needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, func(f *family) { f.gauge = &Gauge{} })
	if f.gauge == nil {
		panic(fmt.Sprintf("obs: metric %s re-registered as plain gauge (was labeled or scrape-time)", name))
	}
	return f.gauge
}

// GaugeVec returns the labeled gauge family registered under name,
// creating it with the given label name if needed. Registering a name
// already held by a plain gauge (or vice versa) panics — mixing
// labeled and unlabeled samples in one family is malformed exposition.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	f := r.lookup(name, help, kindGauge, func(f *family) {
		f.gaugeVec = &GaugeVec{label: label, children: map[string]*Gauge{}}
	})
	if f.gaugeVec == nil {
		panic(fmt.Sprintf("obs: metric %s re-registered as labeled gauge (was plain)", name))
	}
	return f.gaugeVec
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGauge, func(f *family) {})
	r.mu.Lock()
	f.gaugeFn = fn
	f.gauge = nil
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it
// with the given buckets if needed (nil buckets use DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, kindHistogram, func(f *family) {
		f.histogram = MakeHistogram(buckets)
	})
	if f.histogram == nil {
		panic(fmt.Sprintf("obs: metric %s re-registered as plain histogram (was labeled)", name))
	}
	return f.histogram
}

// HistogramVec returns the labeled histogram family registered under
// name, creating it with the given label name and buckets if needed
// (nil buckets use DefBuckets). Registering a name already held by a
// plain histogram (or vice versa) panics — mixing labeled and
// unlabeled samples in one family is malformed exposition.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	f := r.lookup(name, help, kindHistogram, func(f *family) {
		f.histogramVec = &HistogramVec{label: label, buckets: buckets, children: map[string]*Histogram{}}
	})
	if f.histogramVec == nil {
		panic(fmt.Sprintf("obs: metric %s re-registered as labeled histogram (was plain)", name))
	}
	return f.histogramVec
}

// MakeHistogram returns a standalone histogram that is not registered
// anywhere (nil buckets use DefBuckets). For accumulators that manage
// their own histogram lifetimes, like per-checker timing in
// internal/cover.
func MakeHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewCounterVec registers a labeled counter family in the Default
// registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default.CounterVec(name, help, label)
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewGaugeFunc registers a scrape-time gauge in the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) { Default.GaugeFunc(name, help, fn) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family in the Default
// registry.
func NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return Default.HistogramVec(name, help, label, buckets)
}

// formatFloat renders a sample value the way Prometheus does.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders every registered metric in text exposition
// format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusFiltered(w, nil)
}

// WritePrometheusFiltered renders the registered metrics whose family
// name passes keep (nil keeps everything). mcheckd uses it to exclude
// the families its metrics federation re-exports with a worker label —
// emitting both would re-declare the TYPE.
func (r *Registry) WritePrometheusFiltered(w io.Writer, keep func(name string) bool) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		if keep != nil && !keep(n) {
			continue
		}
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		// A labeled histogram with no children yet has no series to
		// render; emitting its TYPE line alone would be a histogram
		// family with no buckets, so the family is omitted entirely
		// until a child exists (as the Prometheus client does).
		var vecVals []string
		var vecChildren map[string]*Histogram
		if f.histogramVec != nil {
			vecVals, vecChildren = f.histogramVec.snapshot()
			if len(vecVals) == 0 {
				continue
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		switch {
		case f.counter != nil:
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.counter.Value()))
		case f.counterVec != nil:
			vals, children := f.counterVec.snapshot()
			for _, v := range vals {
				fmt.Fprintf(w, "%s{%s=%q} %s\n", f.name, f.counterVec.label, v, formatFloat(children[v].Value()))
			}
		case f.gaugeFn != nil:
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		case f.gaugeVec != nil:
			vals, children := f.gaugeVec.snapshot()
			for _, v := range vals {
				fmt.Fprintf(w, "%s{%s=%q} %s\n", f.name, f.gaugeVec.label, v, formatFloat(children[v].Value()))
			}
		case f.gauge != nil:
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
		case f.histogramVec != nil:
			for _, v := range vecVals {
				h := vecChildren[v]
				cum := uint64(0)
				for i, b := range h.bounds {
					cum += h.buckets[i].Load()
					fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", f.name, f.histogramVec.label, v, formatFloat(b), cum)
				}
				cum += h.buckets[len(h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", f.name, f.histogramVec.label, v, cum)
				fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", f.name, f.histogramVec.label, v, formatFloat(h.Sum()))
				if _, err := fmt.Fprintf(w, "%s_count{%s=%q} %d\n", f.name, f.histogramVec.label, v, h.count.Load()); err != nil {
					return err
				}
			}
		case f.histogram != nil:
			h := f.histogram
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, formatFloat(b), cum)
			}
			cum += h.buckets[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", f.name, formatFloat(h.Sum()))
			if _, err := fmt.Fprintf(w, "%s_count %d\n", f.name, h.count.Load()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns every metric's current value keyed by name;
// histograms contribute name_count and name_sum. It backs
// `mcheck -stats`.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	out := make(map[string]float64, len(fams))
	for _, f := range fams {
		switch {
		case f.counter != nil:
			out[f.name] = f.counter.Value()
		case f.counterVec != nil:
			vals, children := f.counterVec.snapshot()
			for _, v := range vals {
				out[fmt.Sprintf("%s{%s=%q}", f.name, f.counterVec.label, v)] = children[v].Value()
			}
		case f.gaugeFn != nil:
			out[f.name] = f.gaugeFn()
		case f.gaugeVec != nil:
			vals, children := f.gaugeVec.snapshot()
			for _, v := range vals {
				out[fmt.Sprintf("%s{%s=%q}", f.name, f.gaugeVec.label, v)] = children[v].Value()
			}
		case f.gauge != nil:
			out[f.name] = f.gauge.Value()
		case f.histogramVec != nil:
			vals, children := f.histogramVec.snapshot()
			for _, v := range vals {
				series := fmt.Sprintf("{%s=%q}", f.histogramVec.label, v)
				out[f.name+"_count"+series] = float64(children[v].Count())
				out[f.name+"_sum"+series] = children[v].Sum()
			}
		case f.histogram != nil:
			out[f.name+"_count"] = float64(f.histogram.Count())
			out[f.name+"_sum"] = f.histogram.Sum()
			if f.histogram.Count() > 0 {
				out[f.name+"_p50"] = f.histogram.Quantile(0.50)
				out[f.name+"_p95"] = f.histogram.Quantile(0.95)
				out[f.name+"_p99"] = f.histogram.Quantile(0.99)
			}
		}
	}
	return out
}
