package obs

import (
	"sync"
	"time"
)

// FlightEvent is one task-lifecycle observation in the flight
// recorder: what happened, to which task, on which worker.
type FlightEvent struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Task   string    `json:"task,omitempty"`
	Worker string    `json:"worker,omitempty"`
	Detail string    `json:"detail,omitempty"`
	// Trace is the request trace id the event belongs to, so one
	// request's flight can be filtered out of the shared ring
	// (/debug/fleet?trace=<id>). Lifecycle events that belong to no
	// request (worker-down, worker-up) leave it empty.
	Trace string `json:"trace,omitempty"`
}

// FlightRecorder is a fixed-size ring buffer of FlightEvents — the
// first place to look when a distributed system misbehaves. Unlike
// counters it keeps the *sequence* of recent decisions (dispatched,
// stolen, retried, fell back, worker died) with timestamps and
// identities, and unlike logs it is bounded, structured, and servable
// as JSON from a debug endpoint. A nil *FlightRecorder is a valid
// no-op recorder.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent
	next  int
	total uint64
}

// NewFlightRecorder returns a recorder keeping the last n events
// (n < 1 is raised to 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, n)}
}

// Record appends one event, evicting the oldest when full. trace is
// the request trace id the event belongs to ("" for events outside
// any request).
func (f *FlightRecorder) Record(kind, task, worker, detail, trace string) {
	if f == nil {
		return
	}
	e := FlightEvent{Time: time.Now(), Kind: kind, Task: task, Worker: worker, Detail: detail, Trace: trace}
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % len(f.buf)
	}
	f.total++
	f.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Total returns how many events were ever recorded (retained or not).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
