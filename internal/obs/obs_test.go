package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeArithmetic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 6 {
		t.Fatalf("SetMax lowered gauge to %v", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax(9) = %v, want 9", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	tr.Instant("x", 0)
	sp := tr.StartSpan("x", 0)
	sp.Arg("k", "v")
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric returned non-zero value")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "durations", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("par_total", "")
	h := r.Histogram("par_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestExpositionRoundTrip is the contract behind the ci.sh gate: what
// WritePrometheus emits must satisfy ParsePrometheus.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_requests_total", "requests served").Add(42)
	r.Gauge("rt_queue_depth", "current queue depth").Set(3)
	r.GaugeFunc("rt_hit_rate", "cache hit rate", func() float64 { return 0.75 })
	h := r.Histogram("rt_latency_seconds", "request latency", nil)
	h.Observe(0.002)
	h.Observe(1.7)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, buf.String())
	}
	if f := fams["rt_requests_total"]; f == nil || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("rt_requests_total parsed wrong: %+v", f)
	}
	if f := fams["rt_hit_rate"]; f == nil || f.Samples[0].Value != 0.75 {
		t.Fatalf("rt_hit_rate parsed wrong: %+v", f)
	}
	f := fams["rt_latency_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("rt_latency_seconds parsed wrong: %+v", f)
	}
	// All bucket/sum/count series folded onto the parent family.
	var sawCount bool
	for _, s := range f.Samples {
		if s.Name == "rt_latency_seconds_count" && s.Value == 2 {
			sawCount = true
		}
	}
	if !sawCount {
		t.Fatalf("histogram count series missing: %+v", f.Samples)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":          "9bad_total 1\n",
		"no value":          "just_a_name\n",
		"bad value":         "m_total notafloat\n",
		"unquoted label":    "m{l=v} 1\n",
		"bad label name":    `m{9l="v"} 1` + "\n",
		"unterminated":      `m{l="v} 1` + "\n",
		"dup sample":        "m_total 1\nm_total 2\n",
		"dup TYPE":          "# TYPE m counter\n# TYPE m gauge\nm 1\n",
		"unknown type":      "# TYPE m widget\nm 1\n",
		"type after sample": "m 1\n# TYPE m counter\n",
		"bad escape":        `m{l="a\q"} 1` + "\n",
		"no Inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\nh_sum 1\nh_count 2\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
		"non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
	}
	for name, input := range cases {
		if _, err := ParsePrometheus(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parser accepted %q", name, input)
		}
	}
}

func TestParseAcceptsValid(t *testing.T) {
	input := "# some free-form comment\n" +
		"# HELP m_total requests \"quoted\" help\n" +
		"# TYPE m_total counter\n" +
		"m_total 12\n" +
		`lab{a="x",b="y \"z\" \\ \n"} +Inf` + "\n" +
		"ts_metric 3.5 1700000000000\n"
	fams, err := ParsePrometheus(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	lab := fams["lab"]
	if lab == nil || len(lab.Samples) != 1 {
		t.Fatalf("lab parsed wrong: %+v", lab)
	}
	if got := lab.Samples[0].Labels["b"]; got != "y \"z\" \\ \n" {
		t.Fatalf("label escape handling wrong: %q", got)
	}
	if !math.IsInf(lab.Samples[0].Value, 1) {
		t.Fatalf("value = %v, want +Inf", lab.Samples[0].Value)
	}
}

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("parse", 0).Arg("file", "proto.go")
	inner := tr.StartSpan("sm-run", 1)
	inner.End()
	sp.End()
	tr.Instant("gc", 0)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own trace does not validate: %v\n%s", err, buf.String())
	}
	if n != 2 {
		t.Fatalf("complete spans = %d, want 2", n)
	}

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	// End-ordering: inner span completed first.
	if events[0].Name != "sm-run" || events[1].Name != "parse" {
		t.Fatalf("unexpected event order: %q, %q", events[0].Name, events[1].Name)
	}
	if events[1].Args["file"] != "proto.go" {
		t.Fatalf("span arg lost: %+v", events[1].Args)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      "garbage",
		"no spans":      `{"traceEvents":[{"name":"i1","ph":"i","ts":0,"pid":1,"tid":0}]}`,
		"empty":         `{"traceEvents":[]}`,
		"missing phase": `[{"name":"x","ts":0,"pid":1,"tid":0}]`,
	}
	for name, input := range cases {
		if _, err := ValidateTrace(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ValidateTrace accepted %q", name, input)
		}
	}
	// Bare-array form with one complete span is valid.
	n, err := ValidateTrace(strings.NewReader(
		`[{"name":"x","ph":"X","ts":0,"dur":5,"pid":1,"tid":0}]`))
	if err != nil || n != 1 {
		t.Fatalf("bare array: n=%d err=%v", n, err)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "").Add(7)
	h := r.Histogram("s_seconds", "", nil)
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap["s_total"] != 7 {
		t.Fatalf("snapshot s_total = %v", snap["s_total"])
	}
	if snap["s_seconds_count"] != 1 || snap["s_seconds_sum"] != 0.5 {
		t.Fatalf("snapshot histogram = %v / %v", snap["s_seconds_count"], snap["s_seconds_sum"])
	}
}

// TestGaugeVecExposition: a labeled gauge family renders one sample
// per label value, sorted, parses with the repo's own parser, and
// lands in Snapshot under name{label="value"} keys.
func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	vec := r.GaugeVec("gv_shard_bytes", "bytes per shard", "shard")
	vec.With("1").Set(2048)
	vec.With("0").Set(1024)
	if got := r.GaugeVec("gv_shard_bytes", "bytes per shard", "shard"); got != vec {
		t.Fatal("re-registration returned a different vec")
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	i0 := strings.Index(text, `gv_shard_bytes{shard="0"} 1024`)
	i1 := strings.Index(text, `gv_shard_bytes{shard="1"} 2048`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Fatalf("labeled samples missing or unsorted:\n%s", text)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("labeled exposition does not parse: %v\n%s", err, text)
	}
	f := fams["gv_shard_bytes"]
	if f == nil || f.Type != "gauge" || len(f.Samples) != 2 {
		t.Fatalf("gv_shard_bytes parsed wrong: %+v", f)
	}
	for _, s := range f.Samples {
		if s.Labels["shard"] == "" {
			t.Fatalf("sample lost its label: %+v", s)
		}
	}

	snap := r.Snapshot()
	if snap[`gv_shard_bytes{shard="0"}`] != 1024 || snap[`gv_shard_bytes{shard="1"}`] != 2048 {
		t.Fatalf("snapshot keys wrong: %v", snap)
	}

	// Mixing a plain gauge into a labeled family is a programming
	// error and must panic, like any kind mismatch.
	defer func() {
		if recover() == nil {
			t.Fatal("plain Gauge on a labeled family did not panic")
		}
	}()
	var g *Gauge = r.Gauge("gv_shard_bytes", "bytes per shard")
	_ = g
}

// TestCounterVecExposition: a labeled counter family renders one
// sample per label value, sorted, parses with the repo's own parser,
// and lands in Snapshot under name{label="value"} keys.
func TestCounterVecExposition(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("cv_decisions_total", "cache decisions by reason", "reason")
	vec.With("new").Add(3)
	vec.With("hit").Add(7)
	if got := r.CounterVec("cv_decisions_total", "cache decisions by reason", "reason"); got != vec {
		t.Fatal("re-registration returned a different vec")
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	i0 := strings.Index(text, `cv_decisions_total{reason="hit"} 7`)
	i1 := strings.Index(text, `cv_decisions_total{reason="new"} 3`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Fatalf("labeled samples missing or unsorted:\n%s", text)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("labeled exposition does not parse: %v\n%s", err, text)
	}
	f := fams["cv_decisions_total"]
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("cv_decisions_total parsed wrong: %+v", f)
	}
	for _, s := range f.Samples {
		if s.Labels["reason"] == "" {
			t.Fatalf("sample lost its label: %+v", s)
		}
	}

	snap := r.Snapshot()
	if snap[`cv_decisions_total{reason="hit"}`] != 7 || snap[`cv_decisions_total{reason="new"}`] != 3 {
		t.Fatalf("snapshot keys wrong: %v", snap)
	}

	// Mixing a plain counter into a labeled family is a programming
	// error and must panic, like any kind mismatch.
	defer func() {
		if recover() == nil {
			t.Fatal("plain Counter on a labeled family did not panic")
		}
	}()
	var c *Counter = r.Counter("cv_decisions_total", "cache decisions by reason")
	_ = c
}
