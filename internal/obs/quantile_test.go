package obs

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4})
	// 10 observations in (1,2]: ranks spread linearly across the bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %v, want 1.5 (midpoint of (1,2])", got)
	}
	if got := h.Quantile(1.0); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("p100 = %v, want 2.0 (bucket upper bound)", got)
	}
	// First bucket interpolates from zero.
	h2 := r.Histogram("q2_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h2.Observe(0.5)
	}
	if got := h2.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 in first bucket = %v, want 0.5", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qa_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 50; i++ {
		h.Observe(3) // bucket (2,4]
	}
	if got := h.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p25 = %v, want 0.5", got)
	}
	// p75 is the midpoint of the (2,4] bucket: rank 75 of 100, with 50
	// below the bucket and 50 inside it.
	if got := h.Quantile(0.75); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("p75 = %v, want 3.0", got)
	}
}

func TestQuantileOverflowClampsToTopBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qo_seconds", "", []float64{1, 2})
	h.Observe(100) // lands in +Inf overflow bucket
	h.Observe(100)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qe_seconds", "", []float64{1})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %v, want NaN", got)
	}
	h.Observe(0.5)
	if got := h.Quantile(-0.1); !math.IsNaN(got) {
		t.Errorf("q<0 = %v, want NaN", got)
	}
	if got := h.Quantile(1.5); !math.IsNaN(got) {
		t.Errorf("q>1 = %v, want NaN", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil histogram quantile = %v, want NaN", got)
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sq_seconds", "", []float64{1, 2, 4})
	snap := r.Snapshot()
	if _, ok := snap["sq_seconds_p50"]; ok {
		t.Error("empty histogram should not publish quantiles")
	}
	for i := 0; i < 8; i++ {
		h.Observe(1.5)
	}
	snap = r.Snapshot()
	for _, k := range []string{"sq_seconds_p50", "sq_seconds_p95", "sq_seconds_p99"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %s: %v", k, snap)
		}
	}
	if got := snap["sq_seconds_p50"]; math.Abs(got-1.5) > 1e-9 {
		t.Errorf("snapshot p50 = %v, want 1.5", got)
	}
}

// Satellite: escaped label values must round-trip exactly, and each
// escape must be rejected when malformed.
func TestParseEscapedLabelValues(t *testing.T) {
	cases := map[string]string{
		`m{l="a\"b"} 1` + "\n":   "a\"b",
		`m{l="a\\b"} 1` + "\n":   `a\b`,
		`m{l="a\nb"} 1` + "\n":   "a\nb",
		`m{l="\\\"\n"} 1` + "\n": "\\\"\n",
	}
	for input, want := range cases {
		fams, err := ParsePrometheus(strings.NewReader(input))
		if err != nil {
			t.Errorf("%q: %v", input, err)
			continue
		}
		if got := fams["m"].Samples[0].Labels["l"]; got != want {
			t.Errorf("%q: label = %q, want %q", input, got, want)
		}
	}
	bad := []string{
		`m{l="a\tb"} 1` + "\n", // \t is not a legal escape
		`m{l="a\"} 1` + "\n",   // escape eats the closing quote
		`m{l="a` + "\n",        // unterminated value
	}
	for _, input := range bad {
		if _, err := ParsePrometheus(strings.NewReader(input)); err == nil {
			t.Errorf("parser accepted malformed escape %q", input)
		}
	}
}

// Satellite: histogram bucket bounds must be strictly ascending.
func TestParseRejectsBadBucketOrder(t *testing.T) {
	cases := map[string]string{
		"non-ascending le": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
		"duplicate le": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
		"unparsable le": "# TYPE h histogram\n" +
			`h_bucket{le="wide"} 1` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
	}
	for name, input := range cases {
		if _, err := ParsePrometheus(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parser accepted %q", name, input)
		}
	}
}
