package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file re-exports scraped metric families under a source label —
// mcheckd's metrics federation: the leader scrapes each worker's
// /metrics, parses it with ParsePrometheus, and re-renders the
// fleet_worker_* families with a worker="addr" label injected, so one
// scrape of the leader shows the whole fleet without a separate
// aggregation service.

// escapeLabelValue escapes a label value per the text exposition
// format (backslash, quote, newline).
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// FederatedNames returns the family names WriteFederated would emit
// for the same sources and keep filter — the leader excludes exactly
// these from its own exposition so the merged output declares each
// TYPE once.
func FederatedNames(sources map[string]map[string]*PromFamily, keep func(name string) bool) map[string]bool {
	names := map[string]bool{}
	for _, fams := range sources {
		for name := range fams {
			if keep == nil || keep(name) {
				names[name] = true
			}
		}
	}
	return names
}

// WriteFederated renders families gathered from several sources in
// text exposition format, with `label="sourceKey"` injected into every
// sample so same-named families from different sources stay distinct
// series. Families are sorted by name; within a family, sources by
// key and samples in their parsed order (preserving each histogram
// series' le ordering). Samples that already carry the label are
// skipped — they would otherwise render a duplicate label name.
func WriteFederated(w io.Writer, sources map[string]map[string]*PromFamily, label string, keep func(name string) bool) error {
	keys := make([]string, 0, len(sources))
	for k := range sources {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	names := FederatedNames(sources, keep)
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		help, typ := "", ""
		for _, k := range keys {
			if f, ok := sources[k][name]; ok {
				if help == "" {
					help = f.Help
				}
				if typ == "" {
					typ = f.Type
				}
			}
		}
		if typ == "" {
			typ = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ); err != nil {
			return err
		}
		for _, k := range keys {
			f, ok := sources[k][name]
			if !ok {
				continue
			}
			for _, s := range f.Samples {
				if _, clash := s.Labels[label]; clash {
					continue
				}
				parts := []string{label + `="` + escapeLabelValue(k) + `"`}
				lnames := make([]string, 0, len(s.Labels))
				for ln := range s.Labels {
					lnames = append(lnames, ln)
				}
				sort.Strings(lnames)
				for _, ln := range lnames {
					parts = append(parts, ln+`="`+escapeLabelValue(s.Labels[ln])+`"`)
				}
				if _, err := fmt.Fprintf(w, "%s{%s} %s\n", s.Name, strings.Join(parts, ","), formatFloat(s.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
