package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"flashmc/internal/obs"
)

// Fleet metrics live in the process-global registry, so mcheckd's
// /metrics exposes them next to the engine/sched/depot families.
// Dispatcher-side families deliberately avoid the fleet_worker_*
// prefix: that namespace belongs to the worker processes themselves,
// and mcheckd re-exports it via metrics federation with a
// worker="addr" label (see ScrapeWorkers).
var (
	mDispatched  = obs.NewCounter("fleet_tasks_dispatched_total", "tasks submitted to the remote worker fleet")
	mStolen      = obs.NewCounter("fleet_tasks_stolen_total", "tasks executed by a worker other than the one they were queued on")
	mRetried     = obs.NewCounter("fleet_tasks_retried_total", "task attempts re-dispatched after a worker failure")
	mFallback    = obs.NewCounter("fleet_tasks_fallback_total", "tasks that fell back to local execution")
	mBadArtifact = obs.NewCounter("fleet_tasks_bad_artifact_total", "worker replies rejected for a wrong key or corrupt artifact")
	mWorkersUp   = obs.NewGauge("fleet_workers_up", "remote workers currently considered live")
	mRPCSecs     = obs.Default.HistogramVec("fleet_rpc_seconds", "remote task round-trip latency per worker", "worker", nil)
	mScrapeFails = obs.NewCounterVec("fleet_scrape_failures_total",
		"federation scrapes of a worker's /metrics that failed (its families silently drop from the leader's exposition)", "worker")
)

// flightRec is the process-wide task flight recorder: a bounded ring
// of recent fleet lifecycle events (dispatched, stolen, retried,
// rejected, completed, fell-back, worker liveness flips). It is
// package-level like the fleet counters — there is one fleet per
// process — and served by mcheckd at /debug/fleet.
var flightRec = obs.NewFlightRecorder(512)

// FlightEvents returns the recent fleet lifecycle events, oldest
// first.
func FlightEvents() []obs.FlightEvent { return flightRec.Events() }

// FlightTotal returns how many lifecycle events were ever recorded
// (the ring keeps only the most recent ones).
func FlightTotal() uint64 { return flightRec.Total() }

// CountFallback records one task that the caller ran locally after
// the fleet could not produce its artifact. It lives here (rather
// than on Dispatcher) because fallback is the caller's act: the
// dispatcher only reports failure.
func CountFallback(task, trace string) {
	mFallback.Inc()
	flightRec.Record("fell-back", task, "", "", trace)
}

// ErrNoWorkers is returned by Do when every worker is down (or the
// dispatcher is closed): the caller should run the task locally. It
// is returned without waiting on queues or timeouts, so a fully
// degraded fleet costs nothing over plain local execution.
var ErrNoWorkers = errors.New("fleet: no workers available")

// Options tunes a Dispatcher. The zero value picks the defaults noted
// on each field.
type Options struct {
	// TaskTimeout bounds one attempt of one task (default 2m).
	TaskTimeout time.Duration
	// MaxAttempts is the total number of attempts per task across
	// workers before the task is reported failed (default 3).
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per
	// attempt (default 100ms).
	Backoff time.Duration
	// Slots is how many tasks one worker executes concurrently
	// (default 4).
	Slots int
	// ProbeInterval is how often worker /healthz is probed to flip
	// liveness (default 5s).
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive task failures mark a
	// worker down between probes (default 2).
	FailThreshold int
}

func (o Options) withDefaults() Options {
	if o.TaskTimeout <= 0 {
		o.TaskTimeout = 2 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.Slots <= 0 {
		o.Slots = 4
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 5 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	return o
}

// task is one in-flight descriptor plus its routing state.
type task struct {
	desc     *Descriptor
	body     []byte
	tr       *obs.Tracer // leader-side tracer (nil: untraced)
	enqueued time.Time   // when the task last entered a queue
	attempts int
	origin   int // worker index the task was last queued on
	last     int // worker index of the last failed attempt
	done     chan outcome
}

// label names the task in spans and flight events: the scheduler task
// id when the descriptor carries one, else the output key id.
func (t *task) label() string {
	if t.desc.ParentSpan != "" {
		return t.desc.ParentSpan
	}
	id := t.desc.Output.ID()
	if len(id) > 12 {
		id = id[:12]
	}
	return id
}

type outcome struct {
	artifact []byte
	err      error
}

// worker is the dispatcher's view of one remote worker. All mutable
// fields are guarded by the dispatcher's mutex.
type worker struct {
	addr    string // base URL, e.g. http://10.0.0.7:8290
	queue   []*task
	up      bool
	fails   int
	busy    int // tasks currently executing on this worker
	lastErr string
	// lastScrapeErr is the most recent metrics-federation scrape
	// failure ("" once a scrape succeeds again): a worker can serve
	// tasks fine while its /metrics is unreachable, and that gap would
	// otherwise be invisible everywhere but the missing families.
	lastScrapeErr string
	seq           int // traced tasks merged from this worker (tid allocator)
	hist          *obs.Histogram
}

// Dispatcher fans tasks out over a fixed set of remote workers.
// Each worker owns a queue; Do enqueues on the least-loaded live
// worker, and an idle worker steals from the longest queue — so a
// slow or dying worker never strands the tasks behind it. Failed
// attempts are retried on other workers with exponential backoff;
// terminal failures (and an all-down fleet) surface as errors so the
// caller can fall back to local execution.
type Dispatcher struct {
	opts   Options
	client *http.Client

	mu      sync.Mutex
	cond    *sync.Cond
	workers []*worker
	upCount int
	closed  bool
	rr      int // rotating start index for least-loaded ties

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a dispatcher over the given worker addresses (host:port
// or full http URLs). Workers start optimistically live; the health
// prober and task failures adjust liveness from there.
func New(addrs []string, opts Options) *Dispatcher {
	opts = opts.withDefaults()
	d := &Dispatcher{
		opts:   opts,
		client: &http.Client{},
		stop:   make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		a = strings.TrimSuffix(a, "/")
		d.workers = append(d.workers, &worker{
			addr: a,
			up:   true,
			hist: mRPCSecs.With(a),
		})
	}
	d.upCount = len(d.workers)
	mWorkersUp.Set(float64(d.upCount))
	for wi := range d.workers {
		for s := 0; s < opts.Slots; s++ {
			d.wg.Add(1)
			go d.pump(wi, s)
		}
	}
	d.wg.Add(1)
	go d.probe()
	return d
}

// Workers returns how many workers the dispatcher was built with.
func (d *Dispatcher) Workers() int { return len(d.workers) }

// Close stops the pumps and prober and fails every queued task with
// ErrNoWorkers. In-flight HTTP attempts are left to finish.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.drainLocked(ErrNoWorkers)
	d.cond.Broadcast()
	d.mu.Unlock()
	close(d.stop)
	d.wg.Wait()
}

// WorkerStatus is one worker's liveness snapshot, for readiness
// endpoints.
type WorkerStatus struct {
	Addr    string `json:"addr"`
	Up      bool   `json:"up"`
	Queued  int    `json:"queued"`
	Busy    int    `json:"busy"`
	LastErr string `json:"last_error,omitempty"`
	// LastScrapeErr is the worker's most recent failed metrics-
	// federation scrape; empty when the last scrape succeeded.
	LastScrapeErr string `json:"last_scrape_error,omitempty"`
}

// Status reports every worker's current liveness and load.
func (d *Dispatcher) Status() []WorkerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]WorkerStatus, len(d.workers))
	for i, w := range d.workers {
		out[i] = WorkerStatus{Addr: w.addr, Up: w.up, Queued: len(w.queue), Busy: w.busy,
			LastErr: w.lastErr, LastScrapeErr: w.lastScrapeErr}
	}
	return out
}

// Do executes desc on the fleet and returns the artifact bytes the
// worker produced (already verified to echo desc's output address and
// to be well-formed JSON). Any error means the fleet did not produce
// the artifact and the caller should execute the task locally. A
// non-nil tracer records the dispatch-side spans (enqueue, queue
// wait, steal, retry, HTTP round trip) and receives the worker's
// execution spans merged onto the leader's time base.
func (d *Dispatcher) Do(ctx context.Context, desc *Descriptor, tr *obs.Tracer) ([]byte, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(desc)
	if err != nil {
		return nil, fmt.Errorf("fleet: marshal descriptor: %w", err)
	}
	t := &task{desc: desc, body: body, tr: tr, origin: -1, last: -1, done: make(chan outcome, 1)}
	d.mu.Lock()
	if d.closed || d.upCount == 0 {
		d.mu.Unlock()
		return nil, ErrNoWorkers
	}
	d.enqueueLocked(t, -1)
	origin := t.origin
	d.mu.Unlock()
	mDispatched.Inc()
	flightRec.Record("dispatched", t.label(), d.workerAddr(origin), "", t.desc.TraceID)
	select {
	case out := <-t.done:
		return out.artifact, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// workerAddr returns worker wi's address ("" when out of range).
func (d *Dispatcher) workerAddr(wi int) string {
	if wi < 0 || wi >= len(d.workers) {
		return ""
	}
	return d.workers[wi].addr
}

// enqueueLocked queues t on the least-loaded live worker (queue depth
// plus busy slots), skipping `avoid` when another live worker exists.
func (d *Dispatcher) enqueueLocked(t *task, avoid int) {
	best := -1
	bestLoad := 0
	// Scan from a rotating start so equal loads do not always resolve
	// to the same worker: a leader dispatching one task at a time (all
	// loads zero) would otherwise pin every task to one worker.
	n := len(d.workers)
	start := d.rr
	if n > 0 {
		d.rr = (d.rr + 1) % n
	}
	for k := 0; k < n; k++ {
		i := (start + k) % n
		w := d.workers[i]
		if !w.up {
			continue
		}
		if i == avoid && d.upCount > 1 {
			continue
		}
		load := len(w.queue) + w.busy
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best == -1 {
		// No live worker to queue on: fail the task now rather than
		// strand it.
		t.done <- outcome{err: ErrNoWorkers}
		return
	}
	t.origin = best
	t.enqueued = time.Now()
	d.workers[best].queue = append(d.workers[best].queue, t)
	t.tr.Mark("enqueue", "fleet", 0, map[string]any{
		"task": t.label(), "worker": d.workers[best].addr,
	})
	// Broadcast, not Signal: a single wakeup can land on a pump of a
	// down worker, which finds nothing runnable and sleeps again —
	// stranding the task just queued.
	d.cond.Broadcast()
}

// claimLocked hands worker wi its next task: the front of its own
// queue, or — when that is empty — a steal from the back of the
// longest other queue. Only strandable queues are victims: the owner
// is down or all its slots are busy. An up worker with an idle slot
// will claim its own queue imminently, so stealing from it just
// reshuffles the task (and races the owner's first attempt — the
// retry tests depend on a queued task reaching its owner). A steal
// also skips tasks whose last failed attempt was on this worker:
// retry placed them elsewhere on purpose, and snatching one back
// would burn its remaining attempts on the worker already known to
// fail it. Returns nil when there is nothing to run.
func (d *Dispatcher) claimLocked(wi int) (*task, bool) {
	w := d.workers[wi]
	if !w.up {
		return nil, false
	}
	if len(w.queue) > 0 {
		t := w.queue[0]
		w.queue = w.queue[1:]
		return t, false
	}
	victim, vidx := -1, -1
	for i, v := range d.workers {
		if i == wi {
			continue
		}
		if v.up && v.busy < d.opts.Slots {
			continue // owner has an idle slot; it will claim this itself
		}
		idx := -1
		for j := len(v.queue) - 1; j >= 0; j-- {
			if v.queue[j].last != wi {
				idx = j
				break
			}
		}
		if idx < 0 {
			continue
		}
		if victim == -1 || len(v.queue) > len(d.workers[victim].queue) {
			victim, vidx = i, idx
		}
	}
	if victim == -1 {
		return nil, false
	}
	v := d.workers[victim]
	t := v.queue[vidx]
	v.queue = append(v.queue[:vidx], v.queue[vidx+1:]...)
	return t, true
}

// pump is one execution slot of one worker: claim (or steal) a task,
// run it, repeat.
func (d *Dispatcher) pump(wi, slot int) {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		var t *task
		var stolen bool
		for {
			if d.closed {
				d.mu.Unlock()
				return
			}
			t, stolen = d.claimLocked(wi)
			if t != nil {
				break
			}
			d.cond.Wait()
		}
		d.workers[wi].busy++
		d.mu.Unlock()
		if stolen {
			mStolen.Inc()
			flightRec.Record("stolen", t.label(), d.workers[wi].addr, "", t.desc.TraceID)
		}
		d.execute(wi, slot, t, stolen)
		d.mu.Lock()
		d.workers[wi].busy--
		d.mu.Unlock()
	}
}

// execute runs one attempt of t on worker wi and routes the outcome:
// success resolves the task, terminal failures resolve it with an
// error, retryable failures re-enqueue it elsewhere after a backoff.
func (d *Dispatcher) execute(wi, slot int, t *task, stolen bool) {
	w := d.workers[wi]
	// One trace lane per (worker, slot): concurrent attempts on one
	// worker render side by side instead of stacking in one row.
	tid := 100*(wi+1) + slot
	t.tr.RecordSpan("queue-wait", "fleet", tid, t.enqueued, time.Since(t.enqueued), map[string]any{
		"task": t.label(), "worker": w.addr,
	})
	if stolen {
		t.tr.Mark("steal", "fleet", tid, map[string]any{"task": t.label(), "worker": w.addr})
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.opts.TaskTimeout)
	defer cancel()
	start := time.Now()
	sendStartUS := t.tr.NowUS()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+"/task", bytes.NewReader(t.body))
	if err != nil {
		t.done <- outcome{err: fmt.Errorf("fleet: %w", err)}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if t.desc.TraceID != "" {
		req.Header.Set("X-Request-Id", t.desc.TraceID)
	}
	rpc := t.tr.StartSpan("rpc "+t.label(), tid).Cat("fleet").
		Arg("task", t.label()).Arg("out", t.desc.Output.ID()).
		Arg("worker", w.addr).Arg("attempt", t.attempts+1)
	resp, err := d.client.Do(req)
	if err != nil {
		rpc.Arg("error", err.Error()).End()
		d.recordFailure(wi, err)
		d.retry(t, wi, fmt.Errorf("fleet: worker %s: %w", w.addr, err))
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		rpc.Arg("error", err.Error()).End()
		d.recordFailure(wi, err)
		d.retry(t, wi, fmt.Errorf("fleet: worker %s: %w", w.addr, err))
		return
	}
	rpc.Arg("status", resp.StatusCode).End()
	rtt := time.Since(start)
	switch {
	case resp.StatusCode == http.StatusOK:
		// fall through to result validation
	case resp.StatusCode >= 500:
		err := fmt.Errorf("fleet: worker %s: %s: %s", w.addr, resp.Status, firstLine(raw))
		d.recordFailure(wi, err)
		d.retry(t, wi, err)
		return
	default:
		// 4xx: the worker understood the request and refused it —
		// every same-version worker would answer identically, so the
		// failure is terminal and the caller runs the task locally.
		flightRec.Record("rejected", t.label(), w.addr, resp.Status, t.desc.TraceID)
		t.done <- outcome{err: fmt.Errorf("fleet: worker %s rejected task: %s: %s", w.addr, resp.Status, firstLine(raw))}
		return
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		mBadArtifact.Inc()
		flightRec.Record("bad-artifact", t.label(), w.addr, "corrupt reply", t.desc.TraceID)
		t.done <- outcome{err: fmt.Errorf("fleet: worker %s: corrupt reply: %v", w.addr, err)}
		return
	}
	if want := t.desc.Output.ID(); res.ID != want {
		mBadArtifact.Inc()
		flightRec.Record("bad-artifact", t.label(), w.addr, "wrong output key", t.desc.TraceID)
		t.done <- outcome{err: fmt.Errorf("fleet: worker %s answered key %.12s, want %.12s", w.addr, res.ID, want)}
		return
	}
	if len(res.Artifact) == 0 || !json.Valid(res.Artifact) {
		mBadArtifact.Inc()
		flightRec.Record("bad-artifact", t.label(), w.addr, "corrupt artifact", t.desc.TraceID)
		t.done <- outcome{err: fmt.Errorf("fleet: worker %s returned a corrupt artifact", w.addr)}
		return
	}
	d.recordSuccess(wi)
	w.hist.ObserveDuration(rtt)
	d.mergeWorkerSpans(wi, t, res, sendStartUS, rtt)
	flightRec.Record("completed", t.label(), w.addr, "", t.desc.TraceID)
	t.done <- outcome{artifact: res.Artifact}
}

// mergeWorkerSpans aligns the worker's execution spans onto the
// leader's clock and appends them to the task's tracer. Worker span
// timestamps are relative to when the worker began handling the
// request; the classic midpoint estimate places that instant at
// send-start plus half the network delay, i.e. half of what is left
// of the round trip after the worker's own handling time.
func (d *Dispatcher) mergeWorkerSpans(wi int, t *task, res Result, sendStartUS float64, rtt time.Duration) {
	if t.tr == nil || len(res.Spans) == 0 {
		return
	}
	w := d.workers[wi]
	// The leader is pid 1; workers get one pid lane each, in worker
	// order, so merged traces from an in-process test fleet still show
	// distinct "processes".
	pid := wi + 2
	t.tr.ProcessMeta(pid, "mcheckworker "+w.addr)
	rttUS := float64(rtt) / float64(time.Microsecond)
	netUS := (rttUS - res.ElapsedUS) / 2
	if netUS < 0 {
		netUS = 0
	}
	d.mu.Lock()
	w.seq++
	lane := w.seq
	d.mu.Unlock()
	t.tr.MergeRemote(res.Spans, sendStartUS+netUS, pid, lane)
}

// retry re-dispatches t after a failed attempt, preferring a worker
// other than the one that just failed; attempts exhausted (or fleet
// empty) resolves the task with the last error.
func (d *Dispatcher) retry(t *task, failedOn int, err error) {
	t.attempts++
	t.last = failedOn
	if t.attempts >= d.opts.MaxAttempts {
		t.done <- outcome{err: err}
		return
	}
	d.mu.Lock()
	if d.closed || d.upCount == 0 {
		d.mu.Unlock()
		t.done <- outcome{err: err}
		return
	}
	d.mu.Unlock()
	mRetried.Inc()
	flightRec.Record("retried", t.label(), d.workerAddr(failedOn), firstLine([]byte(err.Error())), t.desc.TraceID)
	t.tr.Mark("retry", "fleet", 0, map[string]any{
		"task": t.label(), "failed_on": d.workerAddr(failedOn), "attempt": t.attempts,
	})
	backoff := d.opts.Backoff << (t.attempts - 1)
	time.AfterFunc(backoff, func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.closed {
			t.done <- outcome{err: ErrNoWorkers}
			return
		}
		d.enqueueLocked(t, failedOn)
	})
}

// recordFailure counts one failed attempt against worker wi, marking
// it down past the threshold. Losing the last live worker fails every
// queued task so callers fall back to local execution immediately.
func (d *Dispatcher) recordFailure(wi int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[wi]
	w.fails++
	w.lastErr = err.Error()
	if w.up && w.fails >= d.opts.FailThreshold {
		w.up = false
		d.upCount--
		mWorkersUp.Set(float64(d.upCount))
		flightRec.Record("worker-down", "", w.addr, firstLine([]byte(err.Error())), "")
		if d.upCount == 0 {
			d.drainLocked(ErrNoWorkers)
		}
	}
}

func (d *Dispatcher) recordSuccess(wi int) {
	d.mu.Lock()
	w := d.workers[wi]
	w.fails = 0
	w.lastErr = ""
	d.mu.Unlock()
}

// drainLocked fails every queued task.
func (d *Dispatcher) drainLocked(err error) {
	for _, w := range d.workers {
		for _, t := range w.queue {
			t.done <- outcome{err: err}
		}
		w.queue = nil
	}
}

// probe periodically GETs every worker's /healthz and flips liveness
// from the answer — down workers revive, silently dead ones are
// discovered even between tasks.
func (d *Dispatcher) probe() {
	defer d.wg.Done()
	tick := time.NewTicker(d.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
		}
		for wi := range d.workers {
			d.probeOne(wi)
		}
	}
}

func (d *Dispatcher) probeOne(wi int) {
	w := d.workers[wi]
	timeout := d.opts.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.addr+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := d.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case ok && !w.up:
		w.up = true
		w.fails = 0
		w.lastErr = ""
		d.upCount++
		mWorkersUp.Set(float64(d.upCount))
		flightRec.Record("worker-up", "", w.addr, "healthz recovered", "")
		d.cond.Broadcast()
	case !ok && w.up:
		if err != nil {
			w.lastErr = err.Error()
		} else {
			w.lastErr = fmt.Sprintf("healthz: %s", resp.Status)
		}
		w.up = false
		d.upCount--
		mWorkersUp.Set(float64(d.upCount))
		flightRec.Record("worker-down", "", w.addr, w.lastErr, "")
		if d.upCount == 0 {
			d.drainLocked(ErrNoWorkers)
		}
	}
}

// ScrapeWorkers GETs every worker's /metrics concurrently and parses
// the expositions, returning families keyed by worker address — the
// raw material of mcheckd's metrics federation. Unreachable or
// malformed workers are reported in errs and omitted from the result;
// a scrape is best-effort and never fails the caller's own exposition.
// A failed scrape is no longer silent, though: it is counted under
// fleet_scrape_failures_total{worker=} and the error is pinned on the
// worker's status (/debug/fleet), because the only other symptom is
// families quietly missing from the leader's exposition.
func (d *Dispatcher) ScrapeWorkers(ctx context.Context) (map[string]map[string]*obs.PromFamily, map[string]error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var (
		mu   sync.Mutex
		out  = map[string]map[string]*obs.PromFamily{}
		errs = map[string]error{}
		wg   sync.WaitGroup
	)
	for _, w := range d.workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			fams, err := d.scrapeOne(ctx, w.addr)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[w.addr] = err
				mScrapeFails.With(w.addr).Inc()
				d.mu.Lock()
				w.lastScrapeErr = err.Error()
				d.mu.Unlock()
				return
			}
			out[w.addr] = fams
			d.mu.Lock()
			w.lastScrapeErr = ""
			d.mu.Unlock()
		}()
	}
	wg.Wait()
	return out, errs
}

func (d *Dispatcher) scrapeOne(ctx context.Context, addr string) (map[string]*obs.PromFamily, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	return obs.ParsePrometheus(io.LimitReader(resp.Body, 8<<20))
}

// firstLine trims a worker error body to its first line for error
// messages.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
