// Package fleet distributes the scheduler's analysis tasks over a
// pool of stateless remote workers. The paper's premise is that
// system-specific checks are cheap enough to run routinely; running
// them routinely for many users means one mcheckd process is no
// longer the unit of compute. The depot already names every unit of
// work machine-independently — program fingerprint × checker ×
// version × options — so a task can be shipped as a small descriptor
// instead of a closure: the worker reads its inputs from the shared
// depot, recomputes the artifact, writes it back, and echoes it to
// the dispatcher.
//
// The package has three halves:
//
//   - the wire format (this file): Descriptor, the serializable task
//     form, versioned like depot artifact kinds so a mixed-version
//     fleet refuses work it does not understand instead of producing
//     wrong artifacts; Bundle, the per-request source snapshot workers
//     parse from; and Result, the worker's reply.
//
//   - a Dispatcher (dispatch.go): per-worker queues with
//     work-stealing, retry with exponential backoff across workers,
//     per-task deadlines, and failure-driven health tracking. A task
//     the fleet cannot finish is returned as an error so the caller
//     can fall back to local execution — a degraded fleet is never
//     worse than running with -j N.
//
//   - the worker HTTP surface (worker.go): TaskHandler serves POST
//     /task for cmd/mcheckworker, classifying executor errors into
//     retryable (another worker may succeed) and terminal (every
//     worker would reject the same descriptor).
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"

	"flashmc/internal/depot"
	"flashmc/internal/flash"
	"flashmc/internal/obs"
)

const (
	// DescFormat versions the descriptor wire format. A worker that
	// receives a descriptor in an unknown format must refuse it:
	// fields it does not understand could silently change what the
	// output key is supposed to contain. v2 added the optional
	// trace_id/parent_span correlation fields; they change nothing
	// about what is computed, so v1 descriptors stay accepted (see
	// descFormatV1 in Validate) and a v1-era worker asked to run a v2
	// descriptor refuses it — exactly the mixed-fleet behavior the
	// version field exists for.
	DescFormat = "task/v2"
	// descFormatV1 is the previous wire format, still accepted: v2 is
	// a compatible extension.
	descFormatV1 = "task/v1"
	// BundleKind is the depot artifact kind of request source bundles.
	BundleKind = "bundle/v1"
)

// Task kinds, mirroring the scheduler pipeline's three task layers
// plus the whole-program passes.
const (
	// KindSM runs one state-machine checker over one function.
	KindSM = "sm"
	// KindSummary builds one function's inter-procedural summary.
	KindSummary = "summary"
	// KindLanes runs the inter-procedural lane pass for one handler.
	KindLanes = "lanes"
	// KindGlobal runs a whole-program checker pass.
	KindGlobal = "glob"
)

// Descriptor is one schedulable unit of analysis in serializable
// form: everything a stateless worker needs to locate its inputs in
// the shared depot, recompute the artifact, and store it under the
// output key the dispatcher expects. Descriptors deliberately carry
// redundant identity (function name, checker version, spec hash) so
// the worker can cross-check its own parse against the dispatcher's
// before writing anything under the output address.
type Descriptor struct {
	// Format is the wire-format version (DescFormat).
	Format string `json:"format"`
	// Kind selects the task layer: KindSM, KindSummary, KindLanes, or
	// KindGlobal.
	Kind string `json:"kind"`
	// SrcHash addresses the request's source Bundle in the depot
	// (sched.SourceHash of the file set and roots).
	SrcHash string `json:"src_hash"`
	// SpecOpt is the protocol-spec hash the bundle must match
	// (sched.SpecHash); it also salts the bundle's depot key.
	SpecOpt string `json:"spec_opt"`
	// Output is the depot key the artifact must be stored under. Its
	// Source field doubles as an integrity check: the worker's own
	// fingerprint of the task's unit must reproduce it.
	Output depot.Key `json:"output"`
	// Checker is the registry name of the checker ("lanes" for
	// summary and lane tasks; empty only for ad-hoc SM tasks).
	Checker string `json:"checker,omitempty"`
	// CheckerVersion pins the checker revision the dispatcher keyed
	// the artifact with; a worker running another revision refuses.
	CheckerVersion string `json:"checker_version,omitempty"`
	// FnIndex and Fn name the function for KindSM and KindSummary
	// (index into the parsed program's definition list, plus the name
	// for cross-checking).
	FnIndex int    `json:"fn_index,omitempty"`
	Fn      string `json:"fn,omitempty"`
	// Handler names the root handler for KindLanes.
	Handler string `json:"handler,omitempty"`
	// AdhocSrc carries the metal source of an ad-hoc checker; when
	// set, the worker compiles it instead of consulting the registry.
	AdhocSrc string `json:"adhoc_src,omitempty"`
	// TraceID correlates this task with the /check request that spawned
	// it (derived from the leader's X-Request-Id). When set, the worker
	// records its own execution spans and returns them in the Result so
	// the leader can merge one end-to-end trace.
	TraceID string `json:"trace_id,omitempty"`
	// ParentSpan names the leader-side scheduler task this descriptor
	// executes (e.g. "sm:3:17"), tying worker spans back to the
	// dispatch spans for the same task.
	ParentSpan string `json:"parent_span,omitempty"`
}

// Validate checks the fields every descriptor needs before it can be
// dispatched or executed.
func (d *Descriptor) Validate() error {
	if d.Format != DescFormat && d.Format != descFormatV1 {
		return fmt.Errorf("fleet: descriptor format %q, want %q", d.Format, DescFormat)
	}
	switch d.Kind {
	case KindSM, KindSummary, KindLanes, KindGlobal:
	default:
		return fmt.Errorf("fleet: unknown task kind %q", d.Kind)
	}
	if d.SrcHash == "" {
		return errors.New("fleet: descriptor without src_hash")
	}
	if d.Output.Kind == "" || d.Output.Source == "" {
		return errors.New("fleet: descriptor without output key")
	}
	if d.Kind == KindLanes && d.Handler == "" {
		return errors.New("fleet: lanes descriptor without handler")
	}
	if (d.Kind == KindSM || d.Kind == KindSummary) && d.Fn == "" {
		return errors.New("fleet: function descriptor without fn")
	}
	return nil
}

// Bundle is the per-request source snapshot workers parse from: the
// exact file set and root ordering the dispatcher loaded, plus the
// protocol spec the jobs were built under. It is stored once per
// request in the shared depot under BundleKey.
type Bundle struct {
	Files map[string]string `json:"files"`
	Roots []string          `json:"roots"`
	Spec  *flash.Spec       `json:"spec"`
}

// BundleKey is the depot address of a request's source bundle.
func BundleKey(srcHash, specOpt string) depot.Key {
	return depot.Key{Kind: BundleKind, Source: srcHash, Options: specOpt}
}

// Result is the worker's reply to one executed descriptor: the id of
// the output key it stored the artifact under (echoed so the
// dispatcher can verify the worker computed the task it was sent) and
// the artifact bytes themselves, so the caller does not race a
// read-after-write through the depot. For traced descriptors
// (TraceID set) it also carries the worker's execution spans, with
// timestamps relative to when the worker started handling the
// request, and the worker's own handling time — the dispatcher
// estimates the clock offset from its round-trip time minus ElapsedUS
// and shifts the spans onto the leader's time base.
type Result struct {
	ID        string          `json:"id"`
	Artifact  json.RawMessage `json:"artifact"`
	Spans     []obs.Event     `json:"spans,omitempty"`
	ElapsedUS float64         `json:"elapsed_us,omitempty"`
}

// ErrReject marks a terminal executor failure: the descriptor is
// well-formed HTTP-wise but this fleet cannot legitimately execute it
// (checker version skew, fingerprint mismatch against the worker's own
// parse, unknown checker). Retrying on another same-version worker
// would fail identically, so the dispatcher falls straight back to
// local execution.
var ErrReject = errors.New("fleet: descriptor rejected")
