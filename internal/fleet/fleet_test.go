package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flashmc/internal/depot"
	"flashmc/internal/obs"
)

// testDesc is a minimal valid whole-program descriptor; the fake
// workers below never execute it, they only echo its output address.
func testDesc() *Descriptor {
	return &Descriptor{
		Format:  DescFormat,
		Kind:    KindGlobal,
		SrcHash: "srchash", SpecOpt: "specopt",
		Output: depot.Key{Kind: "reports/v3", Source: "progfp",
			Checker: "params", Version: "v1", Options: "specopt"},
		Checker: "params", CheckerVersion: "v1",
	}
}

// okWorker answers every task with a well-formed artifact under the
// descriptor's own output address.
func okWorker() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var d Descriptor
		if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(Result{ID: d.Output.ID(), Artifact: json.RawMessage(`{"reports":[]}`)})
	})
}

// quickOpts makes retries immediate and keeps the prober out of the
// way so tests drive liveness deterministically.
func quickOpts() Options {
	return Options{
		TaskTimeout:   5 * time.Second,
		Backoff:       time.Millisecond,
		ProbeInterval: time.Hour,
		FailThreshold: 100,
	}
}

func TestDescriptorValidate(t *testing.T) {
	if err := testDesc().Validate(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	break1 := func(f func(*Descriptor)) error {
		d := testDesc()
		f(d)
		return d.Validate()
	}
	cases := []struct {
		name   string
		mutate func(*Descriptor)
	}{
		{"wrong format", func(d *Descriptor) { d.Format = "task/v0" }},
		{"unknown kind", func(d *Descriptor) { d.Kind = "mystery" }},
		{"no src hash", func(d *Descriptor) { d.SrcHash = "" }},
		{"no output", func(d *Descriptor) { d.Output = depot.Key{} }},
		{"lanes without handler", func(d *Descriptor) { d.Kind = KindLanes }},
		{"sm without fn", func(d *Descriptor) { d.Kind = KindSM }},
	}
	for _, tc := range cases {
		if err := break1(tc.mutate); err == nil {
			t.Errorf("%s: Validate accepted it", tc.name)
		}
	}
}

func TestDispatchRoundTrip(t *testing.T) {
	ts := httptest.NewServer(okWorker())
	defer ts.Close()
	d := New([]string{ts.URL}, quickOpts())
	defer d.Close()

	art, err := d.Do(context.Background(), testDesc(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(art) != `{"reports":[]}` {
		t.Fatalf("artifact = %s", art)
	}
}

// TestRetryFailsOver: the first worker 500s every task; the retry must
// land on the second worker and succeed.
func TestRetryFailsOver(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "disk on fire", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(okWorker())
	defer good.Close()

	retriedBefore := mRetried.Value()
	// Both workers idle: Do queues on the first (lowest index), which
	// fails; the retry avoids it.
	d := New([]string{bad.URL, good.URL}, quickOpts())
	defer d.Close()
	art, err := d.Do(context.Background(), testDesc(), nil)
	if err != nil {
		t.Fatalf("retry did not fail over: %v", err)
	}
	if string(art) != `{"reports":[]}` {
		t.Fatalf("artifact = %s", art)
	}
	if got := mRetried.Value() - retriedBefore; got < 1 {
		t.Fatalf("retried counter delta = %v, want >= 1", got)
	}
}

// TestDeadlineExpiry: a worker slower than TaskTimeout fails the
// attempt with the context deadline, not a hang.
func TestDeadlineExpiry(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		okWorker().ServeHTTP(w, r)
	}))
	defer slow.Close()

	opts := quickOpts()
	opts.TaskTimeout = 20 * time.Millisecond
	opts.MaxAttempts = 1
	d := New([]string{slow.URL}, opts)
	defer d.Close()

	_, err := d.Do(context.Background(), testDesc(), nil)
	if err == nil {
		t.Fatal("slow worker did not time out")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestAllWorkersDownFastFail: once every worker is marked down, Do
// fails with ErrNoWorkers immediately instead of queueing into a void.
func TestAllWorkersDownFastFail(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	addr1, addr2 := dead1.URL, dead2.URL
	dead1.Close()
	dead2.Close()

	opts := quickOpts()
	opts.FailThreshold = 1
	opts.MaxAttempts = 4
	d := New([]string{addr1, addr2}, opts)
	defer d.Close()

	// First task burns through both workers and marks them down.
	if _, err := d.Do(context.Background(), testDesc(), nil); err == nil {
		t.Fatal("Do succeeded against closed servers")
	}

	start := time.Now()
	_, err := d.Do(context.Background(), testDesc(), nil)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("degraded-fleet fast fail took %s", elapsed)
	}
}

// TestBadArtifactTerminal: replies carrying the wrong output key or
// corrupt bytes are rejected without a retry — the worker answered,
// it just answered wrongly, and trusting a retry would risk caching
// a wrong artifact.
func TestBadArtifactTerminal(t *testing.T) {
	cases := []struct {
		name  string
		reply func(w http.ResponseWriter, d *Descriptor)
	}{
		{"wrong key", func(w http.ResponseWriter, d *Descriptor) {
			json.NewEncoder(w).Encode(Result{ID: "0000deadbeef", Artifact: json.RawMessage(`{"reports":[]}`)})
		}},
		{"corrupt reply", func(w http.ResponseWriter, d *Descriptor) {
			fmt.Fprint(w, "}} not json {{")
		}},
		{"missing artifact", func(w http.ResponseWriter, d *Descriptor) {
			// Right key, no artifact: the one corrupt-artifact shape
			// that survives Result unmarshaling.
			fmt.Fprintf(w, `{"id":%q}`, d.Output.ID())
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				var d Descriptor
				json.NewDecoder(r.Body).Decode(&d)
				tc.reply(w, &d)
			}))
			defer ts.Close()

			badBefore := mBadArtifact.Value()
			retriedBefore := mRetried.Value()
			d := New([]string{ts.URL}, quickOpts())
			defer d.Close()
			if _, err := d.Do(context.Background(), testDesc(), nil); err == nil {
				t.Fatal("bad reply accepted")
			}
			if got := mBadArtifact.Value() - badBefore; got != 1 {
				t.Fatalf("bad-artifact counter delta = %v, want 1", got)
			}
			if got := mRetried.Value() - retriedBefore; got != 0 {
				t.Fatalf("bad artifact was retried (%v times); must be terminal", got)
			}
		})
	}
}

// TestRejectTerminal: a 4xx refusal (version skew on the worker) is
// terminal — every same-version worker would refuse identically.
func TestRejectTerminal(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "fleet: descriptor rejected: version skew", http.StatusUnprocessableEntity)
	}))
	defer ts.Close()

	d := New([]string{ts.URL}, quickOpts())
	defer d.Close()
	_, err := d.Do(context.Background(), testDesc(), nil)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v, want a rejection", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("worker saw %d attempts, want 1 (422 is terminal)", n)
	}
}

// TestWorkStealing: tasks stranded on a down worker's queue are stolen
// and completed by the live one.
func TestWorkStealing(t *testing.T) {
	down := httptest.NewServer(http.NotFoundHandler())
	defer down.Close()
	live := httptest.NewServer(okWorker())
	defer live.Close()

	opts := quickOpts()
	opts.Slots = 2
	d := New([]string{down.URL, live.URL}, opts)
	defer d.Close()

	stolenBefore := mStolen.Value()
	const n = 8
	desc := testDesc()
	body, _ := json.Marshal(desc)
	tasks := make([]*task, n)
	d.mu.Lock()
	// Strand n tasks on worker 0's queue, then take it down. Worker 0
	// must not run them (it is down); worker 1's own queue stays empty,
	// so every completion below is a steal.
	for i := range tasks {
		tasks[i] = &task{desc: desc, body: body, origin: 0, last: -1, done: make(chan outcome, 1)}
		d.workers[0].queue = append(d.workers[0].queue, tasks[i])
	}
	d.workers[0].up = false
	d.upCount--
	d.cond.Broadcast()
	d.mu.Unlock()

	for i, tk := range tasks {
		select {
		case out := <-tk.done:
			if out.err != nil {
				t.Fatalf("task %d: %v", i, out.err)
			}
			if string(out.artifact) != `{"reports":[]}` {
				t.Fatalf("task %d artifact = %s", i, out.artifact)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("task %d never completed (steal stuck)", i)
		}
	}
	if got := mStolen.Value() - stolenBefore; got != n {
		t.Fatalf("stolen counter delta = %v, want %d", got, n)
	}
}

// TestProbeRevivesWorker: a worker marked down by failures comes back
// once its /healthz answers again.
func TestProbeRevivesWorker(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if healthy.Load() {
				fmt.Fprintln(w, "ok")
			} else {
				http.Error(w, "warming up", http.StatusServiceUnavailable)
			}
			return
		}
		okWorker().ServeHTTP(w, r)
	}))
	defer ts.Close()

	opts := quickOpts()
	opts.ProbeInterval = 10 * time.Millisecond
	opts.FailThreshold = 1
	opts.MaxAttempts = 1
	d := New([]string{ts.URL}, opts)
	defer d.Close()

	// The prober sees the unhealthy answer and marks the worker down.
	deadline := time.Now().Add(5 * time.Second)
	for d.Status()[0].Up {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the unhealthy worker down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := d.Do(context.Background(), testDesc(), nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("down fleet: err = %v, want ErrNoWorkers", err)
	}

	healthy.Store(true)
	for !d.Status()[0].Up {
		if time.Now().After(deadline) {
			t.Fatal("prober never revived the healthy worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := d.Do(context.Background(), testDesc(), nil); err != nil {
		t.Fatalf("revived fleet: %v", err)
	}
}

// TestTaskHandler covers the worker HTTP surface's error contract:
// malformed requests 400, rejections 422, transient failures 500.
func TestTaskHandler(t *testing.T) {
	exec := func(ctx context.Context, d *Descriptor, tr *obs.Tracer) ([]byte, error) {
		switch d.Checker {
		case "reject-me":
			return nil, fmt.Errorf("%w: version skew", ErrReject)
		case "explode":
			return nil, errors.New("depot io error")
		}
		return []byte(`{"ok":true}`), nil
	}
	h := TaskHandler(exec)

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/task", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	mustBody := func(d *Descriptor) string {
		b, _ := json.Marshal(d)
		return string(b)
	}

	if rec := post(mustBody(testDesc())); rec.Code != http.StatusOK {
		t.Fatalf("ok task: %d %s", rec.Code, rec.Body)
	} else {
		var res Result
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if res.ID != testDesc().Output.ID() || string(res.Artifact) != `{"ok":true}` {
			t.Fatalf("result = %+v", res)
		}
	}

	get := httptest.NewRequest(http.MethodGet, "/task", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, get)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /task: %d", rec.Code)
	}
	if rec := post("{not json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", rec.Code)
	}
	bad := testDesc()
	bad.Format = "task/v0"
	if rec := post(mustBody(bad)); rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong format: %d", rec.Code)
	}
	rej := testDesc()
	rej.Checker = "reject-me"
	if rec := post(mustBody(rej)); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("rejected task: %d, want 422", rec.Code)
	}
	boom := testDesc()
	boom.Checker = "explode"
	if rec := post(mustBody(boom)); rec.Code != http.StatusInternalServerError {
		t.Fatalf("transient failure: %d, want 500", rec.Code)
	}
}

// reviveAt rebinds an unstarted test server to an address a previous
// server vacated, so a "worker restart" keeps its fleet identity.
func reviveAt(ts *httptest.Server, addr string) error {
	l, err := net.Listen("tcp", strings.TrimPrefix(addr, "http://"))
	if err != nil {
		return err
	}
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	return nil
}

// TestScrapeFailureVisible: a metrics-federation scrape of a dead
// worker must leave a visible trace — the per-worker
// fleet_scrape_failures_total counter and the worker's
// last_scrape_error in Status (/debug/fleet) — instead of the
// worker's families just silently vanishing from the leader's
// exposition. A later successful scrape clears the pinned error.
func TestScrapeFailureVisible(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "# HELP fleet_worker_tasks_total tasks executed")
		fmt.Fprintln(w, "# TYPE fleet_worker_tasks_total counter")
		fmt.Fprintln(w, "fleet_worker_tasks_total 7")
	}))
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := dead.URL
	dead.Close() // connection refused from here on

	d := New([]string{live.URL, deadAddr}, quickOpts())
	defer d.Close()

	key := fmt.Sprintf("fleet_scrape_failures_total{worker=%q}", deadAddr)
	before := obs.Default.Snapshot()[key]
	fams, errs := d.ScrapeWorkers(context.Background())
	if _, ok := fams[live.URL]; !ok {
		t.Fatalf("live worker missing from scrape: %v", fams)
	}
	if _, ok := errs[deadAddr]; !ok {
		t.Fatalf("dead worker missing from errs: %v", errs)
	}
	if got := obs.Default.Snapshot()[key] - before; got != 1 {
		t.Fatalf("scrape failure counter moved by %v, want 1", got)
	}
	liveKey := fmt.Sprintf("fleet_scrape_failures_total{worker=%q}", live.URL)
	if obs.Default.Snapshot()[liveKey] != 0 {
		t.Fatalf("live worker's failure counter is non-zero")
	}

	byAddr := map[string]WorkerStatus{}
	for _, ws := range d.Status() {
		byAddr[ws.Addr] = ws
	}
	if byAddr[deadAddr].LastScrapeErr == "" {
		t.Fatal("dead worker's status carries no scrape error")
	}
	if byAddr[live.URL].LastScrapeErr != "" {
		t.Fatalf("live worker's status carries a scrape error: %q", byAddr[live.URL].LastScrapeErr)
	}

	// The dead worker comes back: the next scrape clears its pinned
	// error (the counter, being a counter, keeps its history).
	revived := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "# HELP fleet_worker_tasks_total tasks executed")
		fmt.Fprintln(w, "# TYPE fleet_worker_tasks_total counter")
		fmt.Fprintln(w, "fleet_worker_tasks_total 0")
	}))
	if err := reviveAt(revived, deadAddr); err != nil {
		t.Skipf("cannot rebind %s: %v", deadAddr, err)
	}
	defer revived.Close()
	d.ScrapeWorkers(context.Background())
	for _, ws := range d.Status() {
		if ws.Addr == deadAddr && ws.LastScrapeErr != "" {
			t.Fatalf("revived worker's scrape error not cleared: %q", ws.LastScrapeErr)
		}
	}
}
