package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"time"

	"flashmc/internal/obs"
)

var (
	mWorkerTasks  = obs.NewCounter("fleet_worker_tasks_total", "task requests received by this worker")
	mWorkerByKind = obs.NewCounterVec("fleet_worker_tasks_by_kind_total", "task requests received by this worker, by descriptor kind", "kind")
	mWorkerErrors = obs.NewCounter("fleet_worker_task_errors_total", "task requests this worker failed or refused")
	mWorkerExec   = obs.NewHistogram("fleet_worker_exec_seconds", "task execution latency on this worker", nil)
)

// ExecFunc executes one descriptor and returns the artifact bytes it
// stored under the descriptor's output key, recording its execution
// spans on tr (nil when the descriptor is untraced). Returning an
// error that wraps ErrReject means every same-version worker would
// refuse this descriptor (version skew, fingerprint mismatch); any
// other error is transient and worth retrying elsewhere.
type ExecFunc func(ctx context.Context, d *Descriptor, tr *obs.Tracer) ([]byte, error)

// TaskHandler serves POST /task for cmd/mcheckworker: decode and
// validate the descriptor, execute it, reply with a Result. Status
// codes carry the retry contract: 400/422 are terminal (the
// dispatcher falls back to local execution), 5xx is retryable. For
// descriptors carrying a trace id, the reply includes the worker's
// execution spans (timestamps relative to the start of handling) and
// the handling time, so the dispatcher can align them onto the
// leader's clock.
func TaskHandler(exec ExecFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		mWorkerTasks.Inc()
		var desc Descriptor
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&desc); err != nil {
			mWorkerErrors.Inc()
			http.Error(w, "bad descriptor: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := desc.Validate(); err != nil {
			mWorkerErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mWorkerByKind.With(desc.Kind).Inc()
		var tr *obs.Tracer
		if desc.TraceID != "" {
			tr = obs.NewTracer()
			tr.SetProcess(os.Getpid(), "mcheckworker")
		}
		start := time.Now()
		art, err := exec(r.Context(), &desc, tr)
		elapsed := time.Since(start)
		mWorkerExec.ObserveDuration(elapsed)
		if err != nil {
			mWorkerErrors.Inc()
			status := http.StatusInternalServerError
			if errors.Is(err, ErrReject) {
				status = http.StatusUnprocessableEntity
			}
			http.Error(w, err.Error(), status)
			return
		}
		res := Result{ID: desc.Output.ID(), Artifact: art}
		if tr != nil {
			res.Spans = tr.Events()
			res.ElapsedUS = float64(elapsed) / float64(time.Microsecond)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	})
}
