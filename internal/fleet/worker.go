package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"flashmc/internal/obs"
)

var (
	mWorkerTasks  = obs.NewCounter("fleet_worker_tasks_total", "task requests received by this worker")
	mWorkerErrors = obs.NewCounter("fleet_worker_task_errors_total", "task requests this worker failed or refused")
	mWorkerExec   = obs.NewHistogram("fleet_worker_exec_seconds", "task execution latency on this worker", nil)
)

// ExecFunc executes one descriptor and returns the artifact bytes it
// stored under the descriptor's output key. Returning an error that
// wraps ErrReject means every same-version worker would refuse this
// descriptor (version skew, fingerprint mismatch); any other error is
// transient and worth retrying elsewhere.
type ExecFunc func(ctx context.Context, d *Descriptor) ([]byte, error)

// TaskHandler serves POST /task for cmd/mcheckworker: decode and
// validate the descriptor, execute it, reply with a Result. Status
// codes carry the retry contract: 400/422 are terminal (the
// dispatcher falls back to local execution), 5xx is retryable.
func TaskHandler(exec ExecFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		mWorkerTasks.Inc()
		var desc Descriptor
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&desc); err != nil {
			mWorkerErrors.Inc()
			http.Error(w, "bad descriptor: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := desc.Validate(); err != nil {
			mWorkerErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		art, err := exec(r.Context(), &desc)
		mWorkerExec.ObserveDuration(time.Since(start))
		if err != nil {
			mWorkerErrors.Inc()
			status := http.StatusInternalServerError
			if errors.Is(err, ErrReject) {
				status = http.StatusUnprocessableEntity
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Result{ID: desc.Output.ID(), Artifact: art})
	})
}
