package ast

import (
	"fmt"
	"strings"

	"flashmc/internal/cc/token"
)

// ExprString renders an expression back to compact C source. It is
// used in diagnostics ("data send, zero len at NI_SEND(...)") and by
// round-trip tests. Wildcards render as $name.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Ident:
		b.WriteString(x.Name)
	case *IntLit:
		b.WriteString(x.Text)
	case *FloatLit:
		b.WriteString(x.Text)
	case *CharLit:
		b.WriteString(x.Text)
	case *StringLit:
		b.WriteString(x.Text)
	case *Paren:
		b.WriteByte('(')
		writeExpr(b, x.X)
		b.WriteByte(')')
	case *Unary:
		if x.Postfix {
			writeExpr(b, x.X)
			b.WriteString(x.Op.String())
		} else {
			b.WriteString(x.Op.String())
			if x.Op == token.KwSizeof {
				b.WriteByte(' ')
			}
			writeExpr(b, x.X)
		}
	case *Binary:
		writeExpr(b, x.X)
		if x.Op == token.Comma {
			b.WriteString(", ")
		} else {
			b.WriteByte(' ')
			b.WriteString(x.Op.String())
			b.WriteByte(' ')
		}
		writeExpr(b, x.Y)
	case *Assign:
		writeExpr(b, x.LHS)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		writeExpr(b, x.RHS)
	case *Cond:
		writeExpr(b, x.C)
		b.WriteString(" ? ")
		writeExpr(b, x.Then)
		b.WriteString(" : ")
		writeExpr(b, x.Else)
	case *Call:
		writeExpr(b, x.Fun)
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	case *Index:
		writeExpr(b, x.X)
		b.WriteByte('[')
		writeExpr(b, x.Idx)
		b.WriteByte(']')
	case *Member:
		writeExpr(b, x.X)
		if x.Arrow {
			b.WriteString("->")
		} else {
			b.WriteByte('.')
		}
		b.WriteString(x.Name)
	case *Cast:
		b.WriteByte('(')
		b.WriteString(x.To.String())
		b.WriteByte(')')
		writeExpr(b, x.X)
	case *SizeofExpr:
		b.WriteString("sizeof ")
		writeExpr(b, x.X)
	case *SizeofType:
		b.WriteString("sizeof(")
		b.WriteString(x.Of.String())
		b.WriteByte(')')
	case *InitList:
		b.WriteByte('{')
		for i, e := range x.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, e)
		}
		b.WriteByte('}')
	case *Wildcard:
		fmt.Fprintf(b, "$%s", x.Name)
	default:
		fmt.Fprintf(b, "<?expr %T>", e)
	}
}

// StmtString renders a statement to single-line C-ish text, used in
// diagnostics and engine traces.
func StmtString(s Stmt) string {
	switch x := s.(type) {
	case nil:
		return "<nil>"
	case *ExprStmt:
		return ExprString(x.X) + ";"
	case *DeclStmt:
		d := x.Decl
		out := d.T.String() + " " + d.Name
		if d.Init != nil {
			out += " = " + ExprString(d.Init)
		}
		return out + ";"
	case *Block:
		return fmt.Sprintf("{ ...%d stmts... }", len(x.Stmts))
	case *If:
		return "if (" + ExprString(x.Cond) + ") ..."
	case *While:
		return "while (" + ExprString(x.Cond) + ") ..."
	case *DoWhile:
		return "do ... while (" + ExprString(x.Cond) + ")"
	case *For:
		return "for (...) ..."
	case *Switch:
		return "switch (" + ExprString(x.Tag) + ") ..."
	case *Case:
		if x.Value == nil {
			return "default:"
		}
		return "case " + ExprString(x.Value) + ":"
	case *Break:
		return "break;"
	case *Continue:
		return "continue;"
	case *Return:
		if x.X == nil {
			return "return;"
		}
		return "return " + ExprString(x.X) + ";"
	case *Goto:
		return "goto " + x.Label + ";"
	case *Labeled:
		return x.Label + ": " + StmtString(x.Stmt)
	case *Empty:
		return ";"
	default:
		return fmt.Sprintf("<?stmt %T>", s)
	}
}
