package ast

// Inspect traverses the tree rooted at n in depth-first pre-order,
// calling f for every non-nil node. If f returns false, children of
// that node are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *Paren:
		Inspect(x.X, f)
	case *Unary:
		Inspect(x.X, f)
	case *Binary:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *Assign:
		Inspect(x.LHS, f)
		Inspect(x.RHS, f)
	case *Cond:
		Inspect(x.C, f)
		Inspect(x.Then, f)
		Inspect(x.Else, f)
	case *Call:
		Inspect(x.Fun, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *Index:
		Inspect(x.X, f)
		Inspect(x.Idx, f)
	case *Member:
		Inspect(x.X, f)
	case *Cast:
		Inspect(x.X, f)
	case *SizeofExpr:
		Inspect(x.X, f)
	case *InitList:
		for _, e := range x.Elems {
			Inspect(e, f)
		}

	case *ExprStmt:
		Inspect(x.X, f)
	case *DeclStmt:
		Inspect(x.Decl, f)
	case *Block:
		for _, s := range x.Stmts {
			Inspect(s, f)
		}
	case *If:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *While:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *DoWhile:
		Inspect(x.Body, f)
		Inspect(x.Cond, f)
	case *For:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *Switch:
		Inspect(x.Tag, f)
		Inspect(x.Body, f)
	case *Case:
		if x.Value != nil {
			Inspect(x.Value, f)
		}
	case *Return:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *Labeled:
		Inspect(x.Stmt, f)

	case *VarDecl:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
	case *FuncDecl:
		if x.Body != nil {
			Inspect(x.Body, f)
		}
	case *File:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	}
}
