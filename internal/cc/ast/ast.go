// Package ast defines the abstract syntax tree for the protocol-C
// subset. The same node types serve two roles: trees produced by
// parsing protocol source, and pattern trees produced by compiling
// metal patterns (which may additionally contain Wildcard nodes that
// match and bind arbitrary sub-expressions; see package match).
package ast

import (
	"flashmc/internal/cc/token"
	"flashmc/internal/cc/types"
)

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	// Type returns the type assigned by the checker, or nil before
	// checking (pattern trees are never checked).
	Type() types.Type
	exprNode()
}

// exprBase carries position and checker-assigned type for expressions.
type exprBase struct {
	P token.Pos
	T types.Type
}

func (e *exprBase) Pos() token.Pos   { return e.P }
func (e *exprBase) Type() types.Type { return e.T }

// SetType records the checker-assigned type of an expression. It lives
// on the embedded base so the checker can set types generically.
func (e *exprBase) SetType(t types.Type) { e.T = t }

// Typed is the interface the checker uses to record expression types.
type Typed interface{ SetType(types.Type) }

// Ident is a use of a name.
type Ident struct {
	exprBase
	Name string
}

// IntLit is an integer literal (decimal, octal or hex, with optional
// suffixes). Value holds the parsed value.
type IntLit struct {
	exprBase
	Text  string
	Value int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Text  string
	Value float64
}

// CharLit is a character literal; Value is its integer value.
type CharLit struct {
	exprBase
	Text  string
	Value int64
}

// StringLit is a string literal; Value is the unquoted contents.
type StringLit struct {
	exprBase
	Text  string
	Value string
}

// Paren is a parenthesized expression.
type Paren struct {
	exprBase
	X Expr
}

// Unary is a prefix operator application (!x, -x, *p, &v, ~x, ++x,
// --x) or, when Postfix is set, x++ / x--.
type Unary struct {
	exprBase
	Op      token.Kind
	X       Expr
	Postfix bool
}

// Binary is a binary operator application, including the comma
// operator (Op == token.Comma).
type Binary struct {
	exprBase
	Op   token.Kind
	X, Y Expr
}

// Assign is an assignment, simple (=) or compound (+=, <<=, ...).
type Assign struct {
	exprBase
	Op       token.Kind
	LHS, RHS Expr
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Call is a function call. In FLASH code the callee is almost always
// an Ident (possibly naming a macro kept unexpanded).
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Index is array subscripting x[i].
type Index struct {
	exprBase
	X, Idx Expr
}

// Member is field selection x.f (Arrow false) or x->f (Arrow true).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// Cast is an explicit conversion (T)x.
type Cast struct {
	exprBase
	To types.Type
	X  Expr
}

// SizeofExpr is sizeof expr.
type SizeofExpr struct {
	exprBase
	X Expr
}

// SizeofType is sizeof(T).
type SizeofType struct {
	exprBase
	Of types.Type
}

// InitList is a brace initializer list { e1, e2, ... } used in
// declarations (protocol tables of lane allowances, opcode maps, ...).
type InitList struct {
	exprBase
	Elems []Expr
}

// Wildcard appears only in pattern trees. It matches any expression
// satisfying Constraint ("" or "expr" = anything, "scalar" = integer
// or pointer type, "unsigned"/"int"/... = that basic type family,
// "const" = any literal, "id" = any identifier) and binds it under
// Name in the match environment.
type Wildcard struct {
	exprBase
	Name       string
	Constraint string
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*CharLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*Paren) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Cast) exprNode()       {}
func (*SizeofExpr) exprNode() {}
func (*SizeofType) exprNode() {}
func (*InitList) exprNode()   {}
func (*Wildcard) exprNode()   {}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

type stmtBase struct{ P token.Pos }

func (s *stmtBase) Pos() token.Pos { return s.P }

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt is a local declaration; one statement per declarator.
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
}

// Block is a brace-enclosed statement list.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// If is an if/else statement (Else may be nil).
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile is a do { } while loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For is a for loop; Init may be a declaration or expression statement
// and any of the three clauses may be nil.
type For struct {
	stmtBase
	Init Stmt // *DeclStmt, *ExprStmt or nil
	Cond Expr
	Post Expr
	Body Stmt
}

// Switch is a switch statement; its Body contains Case labels.
type Switch struct {
	stmtBase
	Tag  Expr
	Body *Block
}

// Case is a case or (Value == nil) default label inside a switch body.
type Case struct {
	stmtBase
	Value Expr // nil for default
}

// Break is a break statement.
type Break struct{ stmtBase }

// Continue is a continue statement.
type Continue struct{ stmtBase }

// Return is a return statement; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Goto is a goto statement.
type Goto struct {
	stmtBase
	Label string
}

// Labeled is a labeled statement target for goto.
type Labeled struct {
	stmtBase
	Label string
	Stmt  Stmt
}

// Empty is a lone semicolon.
type Empty struct{ stmtBase }

func (*ExprStmt) stmtNode() {}
func (*DeclStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*Switch) stmtNode()   {}
func (*Case) stmtNode()     {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Return) stmtNode()   {}
func (*Goto) stmtNode()     {}
func (*Labeled) stmtNode()  {}
func (*Empty) stmtNode()    {}

// Storage classes for declarations.
type Storage int

// Storage class values.
const (
	StorageNone Storage = iota
	StorageExtern
	StorageStatic
	StorageTypedef
	StorageRegister
	StorageAuto
)

// Decl is implemented by top-level declarations.
type Decl interface {
	Node
	declNode()
}

type declBase struct{ P token.Pos }

func (d *declBase) Pos() token.Pos { return d.P }

// VarDecl declares one variable (global or local).
type VarDecl struct {
	declBase
	Name    string
	T       types.Type
	Init    Expr // nil if none
	Storage Storage
	Const   bool
}

// Param is one function parameter.
type Param struct {
	Name string
	T    types.Type
	P    token.Pos
}

// FuncDecl is a function prototype (Body == nil) or definition.
type FuncDecl struct {
	declBase
	Name     string
	Ret      types.Type
	Params   []Param
	Variadic bool
	Body     *Block
	Storage  Storage
	Inline   bool

	// EndPos is the position of the closing brace of the body (valid
	// for definitions); used for span/line accounting.
	EndPos token.Pos
}

// TypeDecl declares a typedef, or a named struct/union/enum at file
// scope (Name empty for bare "struct S { ... };" where the tag lives
// in the type).
type TypeDecl struct {
	declBase
	Name string // typedef name; "" for bare tag declarations
	T    types.Type
}

func (*VarDecl) declNode()  {}
func (*FuncDecl) declNode() {}
func (*TypeDecl) declNode() {}

// File is one translation unit after preprocessing.
type File struct {
	Name  string
	Decls []Decl
}

// Pos implements Node; it is the position of the first declaration.
func (f *File) Pos() token.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return token.Pos{File: f.Name}
}

// Funcs returns the function definitions (not prototypes) in the file,
// in source order.
func (f *File) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
