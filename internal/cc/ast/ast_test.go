package ast_test

import (
	"strings"
	"testing"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/parser"
)

func parseFile(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := parser.ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return f
}

func TestInspectVisitsEverything(t *testing.T) {
	f := parseFile(t, `
int g = 3;
void fn(int p) {
	int loc = g + p;
	if (loc > 0) {
		while (loc) {
			loc--;
		}
	} else {
		switch (p) {
		case 1:
			loc = f2(p, "s") ? 1 : 2;
			break;
		default:
			loc = arr[p].field->next;
		}
	}
	do { loc += sizeof(int); } while (0);
	for (loc = 0; loc < 3; loc++) {
		continue;
	}
	goto end;
end:
	return;
}`)
	var kinds = map[string]int{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.If:
			kinds["if"]++
		case *ast.While:
			kinds["while"]++
		case *ast.DoWhile:
			kinds["do"]++
		case *ast.For:
			kinds["for"]++
		case *ast.Switch:
			kinds["switch"]++
		case *ast.Case:
			kinds["case"]++
		case *ast.Cond:
			kinds["cond"]++
		case *ast.Call:
			kinds["call"]++
		case *ast.Index:
			kinds["index"]++
		case *ast.Member:
			kinds["member"]++
		case *ast.Goto:
			kinds["goto"]++
		case *ast.Labeled:
			kinds["label"]++
		case *ast.Return:
			kinds["return"]++
		case *ast.SizeofType:
			kinds["sizeof"]++
		case *ast.Ident:
			kinds["ident"]++
		}
		return true
	})
	for _, k := range []string{"if", "while", "do", "for", "switch", "cond",
		"call", "index", "member", "goto", "label", "return", "sizeof"} {
		if kinds[k] == 0 {
			t.Errorf("Inspect never visited %s", k)
		}
	}
	if kinds["case"] != 2 {
		t.Errorf("cases %d", kinds["case"])
	}
}

func TestInspectPruning(t *testing.T) {
	f := parseFile(t, `void fn(void) { outer(inner(1)); }`)
	var calls []string
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.Call); ok {
			calls = append(calls, ast.ExprString(c.Fun))
			return false // do not descend into arguments
		}
		return true
	})
	if len(calls) != 1 || calls[0] != "outer" {
		t.Errorf("calls %v (pruning broken)", calls)
	}
}

func TestExprStringOperators(t *testing.T) {
	cases := []string{
		"a + b * c",
		"(a + b) * c",
		"x <<= 2",
		"p->f.g[3]",
		"f(1, 'c', \"s\")",
		"-x++",
		"!done && ready",
		"cond ? t : e",
		"(unsigned)n",
		"sizeof(int)",
	}
	for _, src := range cases {
		e, err := parser.ParseExprPattern(src, parser.PatternContext{})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got := ast.ExprString(e)
		// Re-parse the rendering; it must round-trip to itself.
		e2, err := parser.ParseExprPattern(got, parser.PatternContext{})
		if err != nil {
			t.Fatalf("re-parse %q: %v", got, err)
		}
		if got2 := ast.ExprString(e2); got2 != got {
			t.Errorf("%q: unstable rendering %q -> %q", src, got, got2)
		}
	}
}

func TestStmtStringShapes(t *testing.T) {
	f := parseFile(t, `
void fn(int c) {
	c = 1;
	if (c) { }
	while (c) { }
	do { } while (c);
	switch (c) { case 1: break; default: ; }
	return;
}`)
	var rendered []string
	ast.Inspect(f, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			rendered = append(rendered, ast.StmtString(s))
		}
		return true
	})
	joined := strings.Join(rendered, "\n")
	for _, want := range []string{"c = 1;", "if (c) ...", "while (c) ...",
		"do ... while (c)", "switch (c) ...", "case 1:", "default:", "break;", "return;"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in renderings:\n%s", want, joined)
		}
	}
}

func TestFuncsFiltersPrototypes(t *testing.T) {
	f := parseFile(t, `
void proto(int x);
void def(void) { }
int other(void);
`)
	fns := f.Funcs()
	if len(fns) != 1 || fns[0].Name != "def" {
		t.Errorf("Funcs: %v", fns)
	}
}

func TestFilePos(t *testing.T) {
	f := parseFile(t, "\n\nint x;\n")
	if f.Pos().Line != 3 {
		t.Errorf("file pos %v", f.Pos())
	}
	empty := &ast.File{Name: "e.c"}
	if empty.Pos().File != "e.c" {
		t.Errorf("empty file pos %v", empty.Pos())
	}
}
