// Package types models the C type system of the protocol subset and
// provides size/alignment computation under the 32-bit MIPS-like model
// the FLASH protocol processor uses (int/long/pointer = 4 bytes).
//
// The execution-restriction checker (paper §8) depends on two
// judgments implemented here: whether an expression's type involves
// floating point, and whether a local variable's type exceeds 64 bits
// (too large to live in registers for "no stack" handlers).
package types

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all C types.
type Type interface {
	String() string
	// Size returns the size in bytes, or -1 when unknown (incomplete
	// arrays, void, functions).
	Size() int64
}

// BasicKind enumerates the built-in scalar types.
type BasicKind int

// Basic type kinds.
const (
	Void BasicKind = iota
	Char
	UChar
	Short
	UShort
	Int
	UInt
	Long
	ULong
	LongLong
	ULongLong
	Float
	Double
	LongDouble
)

var basicNames = [...]string{
	Void: "void", Char: "char", UChar: "unsigned char",
	Short: "short", UShort: "unsigned short",
	Int: "int", UInt: "unsigned int",
	Long: "long", ULong: "unsigned long",
	LongLong: "long long", ULongLong: "unsigned long long",
	Float: "float", Double: "double", LongDouble: "long double",
}

var basicSizes = [...]int64{
	Void: -1, Char: 1, UChar: 1, Short: 2, UShort: 2,
	Int: 4, UInt: 4, Long: 4, ULong: 4,
	LongLong: 8, ULongLong: 8,
	Float: 4, Double: 8, LongDouble: 8,
}

// Basic is a built-in scalar type.
type Basic struct{ Kind BasicKind }

func (b *Basic) String() string { return basicNames[b.Kind] }

// Size implements Type.
func (b *Basic) Size() int64 { return basicSizes[b.Kind] }

// Singleton basic types; types compare by pointer identity for basics.
var (
	VoidType       = &Basic{Void}
	CharType       = &Basic{Char}
	UCharType      = &Basic{UChar}
	ShortType      = &Basic{Short}
	UShortType     = &Basic{UShort}
	IntType        = &Basic{Int}
	UIntType       = &Basic{UInt}
	LongType       = &Basic{Long}
	ULongType      = &Basic{ULong}
	LongLongType   = &Basic{LongLong}
	ULongLongType  = &Basic{ULongLong}
	FloatType      = &Basic{Float}
	DoubleType     = &Basic{Double}
	LongDoubleType = &Basic{LongDouble}
)

// Pointer is a pointer type.
type Pointer struct{ Elem Type }

func (p *Pointer) String() string { return p.Elem.String() + "*" }

// Size implements Type; pointers are 4 bytes in the MAGIC model.
func (p *Pointer) Size() int64 { return 4 }

// Array is an array type; Len < 0 means incomplete ([]).
type Array struct {
	Elem Type
	Len  int64
}

func (a *Array) String() string {
	if a.Len < 0 {
		return a.Elem.String() + "[]"
	}
	return fmt.Sprintf("%s[%d]", a.Elem, a.Len)
}

// Size implements Type.
func (a *Array) Size() int64 {
	if a.Len < 0 {
		return -1
	}
	es := a.Elem.Size()
	if es < 0 {
		return -1
	}
	return es * a.Len
}

// Field is one struct or union member.
type Field struct {
	Name string
	T    Type
}

// Struct is a struct or union type. Tag may be empty for anonymous
// types. Incomplete (forward-declared) structs have Fields == nil and
// Complete == false.
type Struct struct {
	Tag      string
	Union    bool
	Fields   []Field
	Complete bool
}

func (s *Struct) String() string {
	kw := "struct"
	if s.Union {
		kw = "union"
	}
	if s.Tag != "" {
		return kw + " " + s.Tag
	}
	return kw + " <anon>"
}

// Size implements Type (no padding model beyond 4-byte rounding, which
// is all the checkers need).
func (s *Struct) Size() int64 {
	if !s.Complete {
		return -1
	}
	var total int64
	for _, f := range s.Fields {
		fs := f.T.Size()
		if fs < 0 {
			return -1
		}
		if s.Union {
			if fs > total {
				total = fs
			}
		} else {
			total += fs
		}
	}
	// Round to 4-byte multiple like the MIPS ABI would.
	if r := total % 4; r != 0 {
		total += 4 - r
	}
	return total
}

// Find returns the field with the given name, or nil.
func (s *Struct) Find(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Enum is an enumerated type; enumerators are ints.
type Enum struct {
	Tag     string
	Members []string
}

func (e *Enum) String() string {
	if e.Tag != "" {
		return "enum " + e.Tag
	}
	return "enum <anon>"
}

// Size implements Type.
func (e *Enum) Size() int64 { return 4 }

// Func is a function type.
type Func struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

func (f *Func) String() string {
	var b strings.Builder
	b.WriteString(f.Ret.String())
	b.WriteString(" (")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if f.Variadic {
		if len(f.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	return b.String()
}

// Size implements Type.
func (f *Func) Size() int64 { return -1 }

// Named is a typedef.
type Named struct {
	Name       string
	Underlying Type
}

func (n *Named) String() string { return n.Name }

// Size implements Type.
func (n *Named) Size() int64 { return n.Underlying.Size() }

// Unwrap strips typedef layers, returning the underlying type.
func Unwrap(t Type) Type {
	for {
		n, ok := t.(*Named)
		if !ok {
			return t
		}
		t = n.Underlying
	}
}

// IsFloat reports whether t involves a floating-point scalar directly
// (after stripping typedefs). Aggregates are inspected member-wise by
// ContainsFloat.
func IsFloat(t Type) bool {
	b, ok := Unwrap(t).(*Basic)
	return ok && (b.Kind == Float || b.Kind == Double || b.Kind == LongDouble)
}

// ContainsFloat reports whether t is or contains a floating-point
// component (array elements, struct fields).
func ContainsFloat(t Type) bool {
	switch u := Unwrap(t).(type) {
	case *Basic:
		return IsFloat(u)
	case *Array:
		return ContainsFloat(u.Elem)
	case *Struct:
		for _, f := range u.Fields {
			if ContainsFloat(f.T) {
				return true
			}
		}
	}
	return false
}

// IsInteger reports whether t is an integer scalar (including char and
// enum) after stripping typedefs.
func IsInteger(t Type) bool {
	switch u := Unwrap(t).(type) {
	case *Basic:
		return u.Kind != Void && !IsFloat(u)
	case *Enum:
		return true
	}
	return false
}

// IsUnsigned reports whether t is an unsigned integer type.
func IsUnsigned(t Type) bool {
	b, ok := Unwrap(t).(*Basic)
	if !ok {
		return false
	}
	switch b.Kind {
	case UChar, UShort, UInt, ULong, ULongLong:
		return true
	}
	return false
}

// IsScalar reports whether t is an integer, enum, float, or pointer
// type — the set the metal "scalar" wildcard constraint accepts.
func IsScalar(t Type) bool {
	switch Unwrap(t).(type) {
	case *Pointer:
		return true
	case *Enum:
		return true
	case *Basic:
		return Unwrap(t).(*Basic).Kind != Void
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := Unwrap(t).(*Pointer)
	return ok
}

// IsVoid reports whether t is void.
func IsVoid(t Type) bool {
	b, ok := Unwrap(t).(*Basic)
	return ok && b.Kind == Void
}

// Equal reports structural type equality (typedefs transparent).
func Equal(a, b Type) bool {
	a, b = Unwrap(a), Unwrap(b)
	switch x := a.(type) {
	case *Basic:
		y, ok := b.(*Basic)
		return ok && x.Kind == y.Kind
	case *Pointer:
		y, ok := b.(*Pointer)
		return ok && Equal(x.Elem, y.Elem)
	case *Array:
		y, ok := b.(*Array)
		return ok && x.Len == y.Len && Equal(x.Elem, y.Elem)
	case *Struct:
		return a == b // nominal identity
	case *Enum:
		return a == b
	case *Func:
		y, ok := b.(*Func)
		if !ok || x.Variadic != y.Variadic || len(x.Params) != len(y.Params) || !Equal(x.Ret, y.Ret) {
			return false
		}
		for i := range x.Params {
			if !Equal(x.Params[i], y.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Promote returns the usual-arithmetic-conversion result of combining
// two scalar operand types; it is deliberately approximate (the
// checkers need float-ness and signedness, not exact C semantics).
func Promote(a, b Type) Type {
	ua, ub := Unwrap(a), Unwrap(b)
	if IsFloat(ua) || IsFloat(ub) {
		if isKind(ua, LongDouble) || isKind(ub, LongDouble) {
			return LongDoubleType
		}
		if isKind(ua, Double) || isKind(ub, Double) {
			return DoubleType
		}
		return FloatType
	}
	if IsPointer(ua) {
		return ua
	}
	if IsPointer(ub) {
		return ub
	}
	if isKind(ua, ULongLong) || isKind(ub, ULongLong) {
		return ULongLongType
	}
	if isKind(ua, LongLong) || isKind(ub, LongLong) {
		return LongLongType
	}
	if IsUnsigned(ua) || IsUnsigned(ub) {
		return UIntType
	}
	return IntType
}

func isKind(t Type, k BasicKind) bool {
	b, ok := Unwrap(t).(*Basic)
	return ok && b.Kind == k
}
