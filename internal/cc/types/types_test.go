package types

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	cases := map[Type]int64{
		CharType: 1, UCharType: 1, ShortType: 2, UShortType: 2,
		IntType: 4, UIntType: 4, LongType: 4, ULongType: 4,
		LongLongType: 8, FloatType: 4, DoubleType: 8,
	}
	for ty, want := range cases {
		if got := ty.Size(); got != want {
			t.Errorf("%v size %d want %d", ty, got, want)
		}
	}
	if VoidType.Size() != -1 {
		t.Error("void has a size")
	}
}

func TestPointerIs32Bit(t *testing.T) {
	p := &Pointer{Elem: DoubleType}
	if p.Size() != 4 {
		t.Errorf("MAGIC pointers are 4 bytes, got %d", p.Size())
	}
}

func TestArraySizes(t *testing.T) {
	a := &Array{Elem: UIntType, Len: 6}
	if a.Size() != 24 {
		t.Errorf("size %d", a.Size())
	}
	inc := &Array{Elem: UIntType, Len: -1}
	if inc.Size() != -1 {
		t.Error("incomplete array has a size")
	}
	nested := &Array{Elem: &Array{Elem: CharType, Len: 3}, Len: 4}
	if nested.Size() != 12 {
		t.Errorf("nested size %d", nested.Size())
	}
}

func TestStructSizeAndUnion(t *testing.T) {
	s := &Struct{Tag: "s", Complete: true, Fields: []Field{
		{"a", CharType}, {"b", UIntType},
	}}
	// 1 + 4 = 5, rounded up to 8.
	if s.Size() != 8 {
		t.Errorf("struct size %d", s.Size())
	}
	u := &Struct{Tag: "u", Union: true, Complete: true, Fields: []Field{
		{"a", CharType}, {"b", DoubleType},
	}}
	if u.Size() != 8 {
		t.Errorf("union size %d", u.Size())
	}
	fwd := &Struct{Tag: "fwd"}
	if fwd.Size() != -1 {
		t.Error("incomplete struct has a size")
	}
}

func TestStructFind(t *testing.T) {
	s := &Struct{Tag: "hdr", Complete: true, Fields: []Field{
		{"len", UIntType}, {"type", UShortType},
	}}
	if f := s.Find("len"); f == nil || !Equal(f.T, UIntType) {
		t.Error("Find(len)")
	}
	if s.Find("nope") != nil {
		t.Error("Find(nope) non-nil")
	}
}

func TestUnwrapNamedChains(t *testing.T) {
	inner := &Named{Name: "u32", Underlying: UIntType}
	outer := &Named{Name: "word_t", Underlying: inner}
	if Unwrap(outer) != UIntType {
		t.Errorf("unwrap %v", Unwrap(outer))
	}
	if outer.Size() != 4 {
		t.Errorf("named size %d", outer.Size())
	}
}

func TestFloatPredicates(t *testing.T) {
	if !IsFloat(FloatType) || !IsFloat(DoubleType) || !IsFloat(LongDoubleType) {
		t.Error("float kinds")
	}
	if IsFloat(IntType) || IsFloat(&Pointer{Elem: FloatType}) {
		t.Error("non-floats reported as float")
	}
	named := &Named{Name: "real_t", Underlying: DoubleType}
	if !IsFloat(named) {
		t.Error("typedef to double not float")
	}
}

func TestContainsFloat(t *testing.T) {
	s := &Struct{Tag: "v", Complete: true, Fields: []Field{
		{"n", IntType},
		{"samples", &Array{Elem: FloatType, Len: 4}},
	}}
	if !ContainsFloat(s) {
		t.Error("struct with float array")
	}
	clean := &Struct{Tag: "c", Complete: true, Fields: []Field{{"n", IntType}}}
	if ContainsFloat(clean) {
		t.Error("int-only struct contains float")
	}
}

func TestScalarAndIntegerPredicates(t *testing.T) {
	if !IsScalar(IntType) || !IsScalar(&Pointer{Elem: VoidType}) || !IsScalar(&Enum{Tag: "e"}) {
		t.Error("scalars")
	}
	if IsScalar(VoidType) {
		t.Error("void is scalar")
	}
	st := &Struct{Tag: "s", Complete: true}
	if IsScalar(st) || IsInteger(st) {
		t.Error("struct is scalar/integer")
	}
	if !IsInteger(CharType) || !IsInteger(&Enum{Tag: "e"}) {
		t.Error("integers")
	}
	if IsInteger(FloatType) {
		t.Error("float is integer")
	}
}

func TestUnsigned(t *testing.T) {
	for _, ty := range []Type{UCharType, UShortType, UIntType, ULongType, ULongLongType} {
		if !IsUnsigned(ty) {
			t.Errorf("%v not unsigned", ty)
		}
	}
	for _, ty := range []Type{CharType, IntType, LongType, FloatType} {
		if IsUnsigned(ty) {
			t.Errorf("%v unsigned", ty)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(&Pointer{Elem: UIntType}, &Pointer{Elem: UIntType}) {
		t.Error("pointer equality")
	}
	if Equal(&Pointer{Elem: UIntType}, &Pointer{Elem: IntType}) {
		t.Error("distinct pointees equal")
	}
	if !Equal(&Array{Elem: IntType, Len: 3}, &Array{Elem: IntType, Len: 3}) {
		t.Error("array equality")
	}
	if Equal(&Array{Elem: IntType, Len: 3}, &Array{Elem: IntType, Len: 4}) {
		t.Error("different lengths equal")
	}
	// Structs are nominal.
	a := &Struct{Tag: "s", Complete: true}
	b := &Struct{Tag: "s", Complete: true}
	if Equal(a, b) {
		t.Error("distinct struct instances equal")
	}
	if !Equal(a, a) {
		t.Error("struct not self-equal")
	}
	// Typedefs are transparent.
	if !Equal(&Named{Name: "u", Underlying: UIntType}, UIntType) {
		t.Error("typedef not transparent")
	}
	f1 := &Func{Ret: IntType, Params: []Type{UIntType}}
	f2 := &Func{Ret: IntType, Params: []Type{UIntType}}
	if !Equal(f1, f2) {
		t.Error("func equality")
	}
	f3 := &Func{Ret: IntType, Params: []Type{UIntType}, Variadic: true}
	if Equal(f1, f3) {
		t.Error("variadic equal to non-variadic")
	}
}

func TestPromote(t *testing.T) {
	cases := []struct {
		a, b, want Type
	}{
		{IntType, IntType, IntType},
		{CharType, ShortType, IntType},
		{IntType, UIntType, UIntType},
		{IntType, FloatType, FloatType},
		{FloatType, DoubleType, DoubleType},
		{DoubleType, LongDoubleType, LongDoubleType},
		{IntType, LongLongType, LongLongType},
		{UIntType, ULongLongType, ULongLongType},
	}
	for _, c := range cases {
		if got := Promote(c.a, c.b); !Equal(got, c.want) {
			t.Errorf("Promote(%v, %v) = %v want %v", c.a, c.b, got, c.want)
		}
	}
	p := &Pointer{Elem: CharType}
	if got := Promote(p, IntType); !IsPointer(got) {
		t.Errorf("pointer arithmetic result %v", got)
	}
}

// Property: Promote is symmetric for the scalar lattice.
func TestPromoteSymmetricProperty(t *testing.T) {
	scalars := []Type{CharType, UCharType, ShortType, UShortType,
		IntType, UIntType, LongType, ULongType, LongLongType,
		ULongLongType, FloatType, DoubleType, LongDoubleType}
	f := func(i, j uint8) bool {
		a := scalars[int(i)%len(scalars)]
		b := scalars[int(j)%len(scalars)]
		return Equal(Promote(a, b), Promote(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: promoting with float always yields float; with only
// integers never does.
func TestPromoteFloatClosureProperty(t *testing.T) {
	ints := []Type{CharType, ShortType, IntType, UIntType, LongType, ULongType}
	floats := []Type{FloatType, DoubleType, LongDoubleType}
	f := func(i, j uint8, pickFloat bool) bool {
		a := ints[int(i)%len(ints)]
		if pickFloat {
			b := floats[int(j)%len(floats)]
			return IsFloat(Promote(a, b))
		}
		b := ints[int(j)%len(ints)]
		return !IsFloat(Promote(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
