package cpp

import (
	"strings"
	"testing"
	"testing/quick"
)

// pp preprocesses the files map starting at "main.c" and returns output
// with line markers stripped (for content assertions) plus errors.
func pp(t *testing.T, files map[string]string) (string, []error) {
	t.Helper()
	p := New(MapSource(files))
	out := p.Process("main.c")
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "# ") || strings.TrimSpace(l) == "" {
			continue
		}
		lines = append(lines, strings.TrimSpace(l))
	}
	return strings.Join(lines, "\n"), p.Errors()
}

func TestObjectMacro(t *testing.T) {
	out, errs := pp(t, map[string]string{
		"main.c": "#define N 4\nint a[N];\n",
	})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int a[4];" {
		t.Errorf("got %q", out)
	}
}

func TestFunctionMacro(t *testing.T) {
	out, errs := pp(t, map[string]string{
		"main.c": "#define MAX(a,b) ((a)>(b)?(a):(b))\nx = MAX(p+1, q*2);\n",
	})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	want := "x = ((p+1)>(q*2)?(p+1):(q*2));"
	if strings.ReplaceAll(out, " ", "") != strings.ReplaceAll(want, " ", "") {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestFunctionMacroNotInvokedWithoutParens(t *testing.T) {
	out, _ := pp(t, map[string]string{
		"main.c": "#define F(x) x+1\nint y = F;\n",
	})
	if out != "int y = F;" {
		t.Errorf("got %q", out)
	}
}

func TestNestedExpansion(t *testing.T) {
	out, errs := pp(t, map[string]string{
		"main.c": "#define A B\n#define B C\n#define C 7\nint v = A;\n",
	})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int v = 7;" {
		t.Errorf("got %q", out)
	}
}

func TestRecursiveMacroTerminates(t *testing.T) {
	out, _ := pp(t, map[string]string{
		"main.c": "#define X X+1\nint v = X;\n",
	})
	if !strings.Contains(out, "X") {
		t.Errorf("self-reference must survive: %q", out)
	}
}

func TestMutuallyRecursiveMacrosTerminate(t *testing.T) {
	out, _ := pp(t, map[string]string{
		"main.c": "#define A B\n#define B A\nint v = A;\n",
	})
	if out != "int v = A;" && out != "int v = B;" {
		t.Errorf("got %q", out)
	}
}

func TestStringize(t *testing.T) {
	out, errs := pp(t, map[string]string{
		"main.c": "#define S(x) #x\nchar *p = S(a + b);\n",
	})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if !strings.Contains(out, `"a + b"`) {
		t.Errorf("got %q", out)
	}
}

func TestPaste(t *testing.T) {
	out, errs := pp(t, map[string]string{
		"main.c": "#define GLUE(a,b) a##b\nint GLUE(foo,bar) = 1;\n",
	})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int foobar = 1;" {
		t.Errorf("got %q", out)
	}
}

func TestConditionals(t *testing.T) {
	src := `#define MODE 2
#if MODE == 1
int a;
#elif MODE == 2
int b;
#else
int c;
#endif
#ifdef MODE
int d;
#endif
#ifndef MODE
int e;
#endif
`
	out, errs := pp(t, map[string]string{"main.c": src})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int b;\nint d;" {
		t.Errorf("got %q", out)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#if 0
#if 1
int a;
#endif
#else
#if defined(X)
int b;
#else
int c;
#endif
#endif
`
	out, errs := pp(t, map[string]string{"main.c": src})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int c;" {
		t.Errorf("got %q", out)
	}
}

func TestCondExpressionOperators(t *testing.T) {
	cases := map[string]bool{
		"1 + 2 == 3":              true,
		"(1 << 4) == 16":          true,
		"7 / 2 == 3 && 7 % 2":     true,
		"!0 && ~0 == -1":          true,
		"1 ? 10 : 20":             true,
		"0 ? 10 : 0":              false,
		"UNDEFINED_THING":         false,
		"defined(FOO)":            false,
		"'A' == 65":               true,
		"0x10 == 16":              true,
		"2 > 1 || 1 > 2":          true,
		"5 >= 5 && 4 <= 5":        true,
		"(3 ^ 1) == 2 && (3 | 4)": true,
	}
	for expr, want := range cases {
		src := "#if " + expr + "\nint yes;\n#else\nint no;\n#endif\n"
		out, errs := pp(t, map[string]string{"main.c": src})
		if len(errs) != 0 {
			t.Errorf("%q: errors %v", expr, errs)
			continue
		}
		got := out == "int yes;"
		if got != want {
			t.Errorf("%q: got %v want %v", expr, got, want)
		}
	}
}

func TestInclude(t *testing.T) {
	files := map[string]string{
		"main.c": "#include \"defs.h\"\nint x = VAL;\n",
		"defs.h": "#define VAL 99\n",
	}
	out, errs := pp(t, files)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int x = 99;" {
		t.Errorf("got %q", out)
	}
}

func TestIncludeGuard(t *testing.T) {
	files := map[string]string{
		"main.c": "#include \"g.h\"\n#include \"g.h\"\nint x = N;\n",
		"g.h":    "#ifndef G_H\n#define G_H\n#define N 5\nint decl;\n#endif\n",
	}
	out, errs := pp(t, files)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int decl;\nint x = 5;" {
		t.Errorf("got %q", out)
	}
}

func TestIncludeSearchPath(t *testing.T) {
	files := MapSource{
		"main.c":         "#include <sys/defs.h>\nint x = V;\n",
		"inc/sys/defs.h": "#define V 3\n",
	}
	p := New(files, "inc")
	out := p.Process("main.c")
	if len(p.Errors()) != 0 {
		t.Fatal(p.Errors())
	}
	if !strings.Contains(out, "int x = 3;") {
		t.Errorf("got %q", out)
	}
}

func TestMissingInclude(t *testing.T) {
	_, errs := pp(t, map[string]string{"main.c": "#include \"nope.h\"\n"})
	if len(errs) == 0 {
		t.Fatal("expected error")
	}
}

func TestErrorDirective(t *testing.T) {
	_, errs := pp(t, map[string]string{"main.c": "#if 0\n#error hidden\n#endif\n#error visible\n"})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "visible") {
		t.Fatalf("got %v", errs)
	}
}

func TestUndef(t *testing.T) {
	out, _ := pp(t, map[string]string{
		"main.c": "#define A 1\n#undef A\n#ifdef A\nint yes;\n#else\nint no;\n#endif\n",
	})
	if out != "int no;" {
		t.Errorf("got %q", out)
	}
}

func TestLineContinuation(t *testing.T) {
	out, errs := pp(t, map[string]string{
		"main.c": "#define LONG(a) \\\n  (a + 1)\nint x = LONG(2);\n",
	})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if strings.ReplaceAll(out, " ", "") != "intx=(2+1);" {
		t.Errorf("got %q", out)
	}
}

func TestKeepMacros(t *testing.T) {
	p := New(MapSource{
		"main.c": "#define WAIT_FOR_DB_FULL(x) do_wait(x)\nWAIT_FOR_DB_FULL(addr);\n",
	})
	p.KeepMacros["WAIT_FOR_DB_FULL"] = true
	out := p.Process("main.c")
	if !strings.Contains(out, "WAIT_FOR_DB_FULL(addr);") {
		t.Errorf("kept macro was expanded: %q", out)
	}
}

func TestPredefine(t *testing.T) {
	p := New(MapSource{"main.c": "#ifdef SIM\nint s;\n#endif\n"})
	p.Define("SIM", "1")
	out := p.Process("main.c")
	if !strings.Contains(out, "int s;") {
		t.Errorf("got %q", out)
	}
}

func TestCommentsStrippedBeforeDirectives(t *testing.T) {
	out, errs := pp(t, map[string]string{
		"main.c": "/* comment \n#define HIDDEN 1\n*/\nint x;\n",
	})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if out != "int x;" {
		t.Errorf("got %q", out)
	}
}

func TestStringLiteralsNotExpanded(t *testing.T) {
	out, _ := pp(t, map[string]string{
		"main.c": "#define FOO 1\nchar *s = \"FOO\";\n",
	})
	if !strings.Contains(out, `"FOO"`) {
		t.Errorf("macro expanded inside string: %q", out)
	}
}

func TestUnterminatedIf(t *testing.T) {
	_, errs := pp(t, map[string]string{"main.c": "#if 1\nint x;\n"})
	if len(errs) == 0 {
		t.Fatal("expected unterminated #if error")
	}
}

func TestElifWithoutIf(t *testing.T) {
	_, errs := pp(t, map[string]string{"main.c": "#elif 1\n"})
	if len(errs) == 0 {
		t.Fatal("expected error")
	}
}

// Property: evaluating integer arithmetic in #if matches Go semantics.
func TestCondArithmeticProperty(t *testing.T) {
	f := func(a, b int16, c uint8) bool {
		// Build an expression with known value.
		want := int64(a)+int64(b)*int64(c%16+1) != 0
		expr := "" // (a + b*(c%16+1)) != 0
		expr = "(" + itoa(int64(a)) + " + " + itoa(int64(b)) + "*" + itoa(int64(c%16+1)) + ") != 0"
		src := "#if " + expr + "\nint yes;\n#else\nint no;\n#endif\n"
		p := New(MapSource{"main.c": src})
		out := p.Process("main.c")
		if len(p.Errors()) != 0 {
			return false
		}
		got := strings.Contains(out, "int yes;")
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "(0 - " + itoa(-v) + ")"
	}
	s := ""
	if v == 0 {
		return "0"
	}
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}

// Property: preprocessing never panics on arbitrary directive soup.
func TestNoCrashProperty(t *testing.T) {
	f := func(body string) bool {
		p := New(MapSource{"main.c": body})
		p.Process("main.c")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLayeredSource(t *testing.T) {
	primary := MapSource{"a.h": "int from_primary;\n"}
	fallback := MapSource{"a.h": "int shadowed;\n", "b.h": "int from_fallback;\n"}
	src := Layered(primary, fallback)
	if text, err := src.ReadFile("a.h"); err != nil || !strings.Contains(text, "from_primary") {
		t.Errorf("primary not preferred: %q %v", text, err)
	}
	if text, err := src.ReadFile("b.h"); err != nil || !strings.Contains(text, "from_fallback") {
		t.Errorf("fallback not consulted: %q %v", text, err)
	}
	if _, err := src.ReadFile("missing.h"); err == nil {
		t.Error("missing file found")
	}
}
