package cpp

import (
	"fmt"
	"strconv"
	"strings"
)

// ppTok is a minimal preprocessing token: enough structure for macro
// expansion; the real lexer runs later on the expanded text.
type ppTok struct {
	kind        ppKind
	text        string
	spaceBefore bool
	noExpand    map[string]bool // hide set: macros not expandable in this token
}

type ppKind int

const (
	tkIdent ppKind = iota
	tkNumber
	tkString
	tkChar
	tkPunct
)

func isIdentB(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// scanAll tokenizes a single logical line into preprocessing tokens.
func scanAll(s string) []ppTok {
	var out []ppTok
	i := 0
	space := false
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			space = true
			i++
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(s) && isIdentB(s[j]) {
				j++
			}
			out = append(out, ppTok{kind: tkIdent, text: s[i:j], spaceBefore: space})
			space = false
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (isIdentB(s[j]) || s[j] == '.' ||
				((s[j] == '+' || s[j] == '-') && j > i && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			out = append(out, ppTok{kind: tkNumber, text: s[i:j], spaceBefore: space})
			space = false
			i = j
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(s) && s[j] != c {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				j++
			}
			if j < len(s) {
				j++
			}
			kind := tkString
			if c == '\'' {
				kind = tkChar
			}
			out = append(out, ppTok{kind: kind, text: s[i:j], spaceBefore: space})
			space = false
			i = j
		default:
			// Multi-char puncts that matter to cpp: ## and the usual ops.
			n := 1
			if i+1 < len(s) {
				two := s[i : i+2]
				switch two {
				case "##", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
					"->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
					"|=", "^=":
					n = 2
				}
				if i+2 < len(s) && (s[i:i+3] == "<<=" || s[i:i+3] == ">>=" || s[i:i+3] == "...") {
					n = 3
				}
			}
			out = append(out, ppTok{kind: tkPunct, text: s[i : i+n], spaceBefore: space})
			space = false
			i += n
		}
	}
	return out
}

// render converts tokens back to text, inserting spaces where needed to
// keep adjacent tokens from gluing into different tokens.
func render(toks []ppTok) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && needSpace(toks[i-1], t) {
			b.WriteByte(' ')
		}
		b.WriteString(t.text)
	}
	return b.String()
}

func needSpace(a, b ppTok) bool {
	if b.spaceBefore {
		return true
	}
	if a.text == "" || b.text == "" {
		return false
	}
	al, bf := a.text[len(a.text)-1], b.text[0]
	// identifier/number adjacency
	if isIdentB(al) && isIdentB(bf) {
		return true
	}
	// Operator gluing hazards: separate puncts only when concatenating
	// their boundary characters would lex as a longer operator.
	if a.kind == tkPunct && b.kind == tkPunct && glueHazard[string(al)+string(bf)] {
		return true
	}
	return false
}

// glueHazard lists character pairs that would fuse into a different
// operator if rendered without a separating space.
var glueHazard = map[string]bool{
	"++": true, "--": true, "<<": true, ">>": true, "&&": true,
	"||": true, "==": true, "<=": true, ">=": true, "!=": true,
	"+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "->": true, "//": true,
	"/*": true, "*/": true, "##": true, "..": true,
}

// expandLine macro-expands one logical source line.
func (p *Preprocessor) expandLine(file string, line int, text string) string {
	toks := scanAll(text)
	out := p.expand(file, line, toks)
	return render(out)
}

// expand performs macro replacement over toks until no replaceable
// macro invocation remains. Recursion is prevented with per-token hide
// sets (a simplification of Prosser's algorithm sufficient in practice).
func (p *Preprocessor) expand(file string, line int, toks []ppTok) []ppTok {
	var out []ppTok
	i := 0
	for i < len(toks) {
		t := toks[i]
		if t.kind != tkIdent {
			out = append(out, t)
			i++
			continue
		}
		m := p.macros[t.text]
		if m == nil || (t.noExpand != nil && t.noExpand[t.text]) || p.KeepMacros[t.text] {
			out = append(out, t)
			i++
			continue
		}
		if !m.FuncLike {
			rep := p.substitute(file, line, m, nil)
			rep = hide(rep, m.Name, t.noExpand)
			rep = p.expand(file, line, rep)
			if len(rep) > 0 {
				rep[0].spaceBefore = t.spaceBefore
			}
			out = append(out, rep...)
			i++
			continue
		}
		// Function-like: need '(' next.
		if i+1 >= len(toks) || toks[i+1].text != "(" {
			out = append(out, t)
			i++
			continue
		}
		args, next, ok := collectArgs(toks, i+1)
		if !ok {
			p.errorf(file, line, "unterminated invocation of macro %s", m.Name)
			out = append(out, t)
			i++
			continue
		}
		if len(args) == 1 && len(args[0]) == 0 && len(m.Params) == 0 {
			args = nil
		}
		if len(args) != len(m.Params) {
			p.errorf(file, line, "macro %s expects %d arguments, got %d", m.Name, len(m.Params), len(args))
		}
		rep := p.substitute(file, line, m, args)
		rep = hide(rep, m.Name, t.noExpand)
		rep = p.expand(file, line, rep)
		if len(rep) > 0 {
			rep[0].spaceBefore = t.spaceBefore
		}
		out = append(out, rep...)
		i = next
	}
	return out
}

// hide adds name (plus inherited hide set) to every token's hide set.
func hide(toks []ppTok, name string, inherited map[string]bool) []ppTok {
	out := make([]ppTok, len(toks))
	for i, t := range toks {
		ns := make(map[string]bool, len(t.noExpand)+len(inherited)+1)
		for k := range t.noExpand {
			ns[k] = true
		}
		for k := range inherited {
			ns[k] = true
		}
		ns[name] = true
		t.noExpand = ns
		out[i] = t
	}
	return out
}

// collectArgs parses a macro argument list starting at the '(' token at
// index open. It returns the arguments, the index just past the ')',
// and whether the list was closed.
func collectArgs(toks []ppTok, open int) (args [][]ppTok, next int, ok bool) {
	depth := 0
	var cur []ppTok
	for i := open; i < len(toks); i++ {
		t := toks[i]
		switch t.text {
		case "(":
			depth++
			if depth > 1 {
				cur = append(cur, t)
			}
		case ")":
			depth--
			if depth == 0 {
				args = append(args, cur)
				return args, i + 1, true
			}
			cur = append(cur, t)
		case ",":
			if depth == 1 {
				args = append(args, cur)
				cur = nil
			} else {
				cur = append(cur, t)
			}
		default:
			if depth >= 1 {
				cur = append(cur, t)
			}
		}
	}
	return nil, open, false
}

// substitute replaces parameters in the macro body with (pre-expanded)
// arguments, handling # stringize and ## paste.
func (p *Preprocessor) substitute(file string, line int, m *Macro, args [][]ppTok) []ppTok {
	paramIdx := func(name string) int {
		for i, p := range m.Params {
			if p == name {
				return i
			}
		}
		return -1
	}
	argFor := func(i int) []ppTok {
		if i < len(args) {
			return args[i]
		}
		return nil
	}

	var out []ppTok
	body := m.Body
	for i := 0; i < len(body); i++ {
		t := body[i]
		// # param -> string literal
		if t.text == "#" && m.FuncLike && i+1 < len(body) && body[i+1].kind == tkIdent {
			if pi := paramIdx(body[i+1].text); pi >= 0 {
				out = append(out, ppTok{kind: tkString,
					text:        strconv.Quote(render(argFor(pi))),
					spaceBefore: t.spaceBefore})
				i++
				continue
			}
		}
		// token ## token
		if i+1 < len(body) && body[i+1].text == "##" {
			left := expandParam(t, paramIdx, argFor)
			for i+1 < len(body) && body[i+1].text == "##" {
				if i+2 >= len(body) {
					p.errorf(file, line, "## at end of macro %s", m.Name)
					i++
					break
				}
				right := expandParam(body[i+2], paramIdx, argFor)
				left = paste(left, right)
				i += 2
			}
			out = append(out, left...)
			continue
		}
		if t.kind == tkIdent {
			if pi := paramIdx(t.text); pi >= 0 {
				// Arguments are macro-expanded before substitution
				// (except for #/## operands, handled above).
				rep := p.expand(file, line, argFor(pi))
				if len(rep) > 0 {
					rep[0].spaceBefore = t.spaceBefore
				}
				out = append(out, rep...)
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

// expandParam returns the raw (unexpanded) tokens for a parameter
// reference, or the token itself.
func expandParam(t ppTok, paramIdx func(string) int, argFor func(int) []ppTok) []ppTok {
	if t.kind == tkIdent {
		if pi := paramIdx(t.text); pi >= 0 {
			arg := argFor(pi)
			cp := make([]ppTok, len(arg))
			copy(cp, arg)
			return cp
		}
	}
	return []ppTok{t}
}

// paste glues the last token of left to the first token of right.
func paste(left, right []ppTok) []ppTok {
	if len(left) == 0 {
		return right
	}
	if len(right) == 0 {
		return left
	}
	glued := left[len(left)-1].text + right[0].text
	toks := scanAll(glued)
	out := append([]ppTok{}, left[:len(left)-1]...)
	out = append(out, toks...)
	out = append(out, right[1:]...)
	return out
}

// evalCond evaluates a #if/#elif expression after macro expansion and
// defined() substitution. Undefined identifiers evaluate to 0, per C.
func (p *Preprocessor) evalCond(file string, line int, expr string) bool {
	toks := scanAll(expr)
	// Replace defined X / defined(X) before macro expansion.
	var pre []ppTok
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.kind == tkIdent && t.text == "defined" {
			name := ""
			if i+1 < len(toks) && toks[i+1].kind == tkIdent {
				name = toks[i+1].text
				i++
			} else if i+3 < len(toks) && toks[i+1].text == "(" && toks[i+2].kind == tkIdent && toks[i+3].text == ")" {
				name = toks[i+2].text
				i += 3
			} else {
				p.errorf(file, line, "malformed defined()")
			}
			val := "0"
			if p.macros[name] != nil {
				val = "1"
			}
			pre = append(pre, ppTok{kind: tkNumber, text: val, spaceBefore: t.spaceBefore})
			continue
		}
		pre = append(pre, t)
	}
	expanded := p.expand(file, line, pre)
	ev := condEval{toks: expanded}
	v := ev.ternary()
	if ev.err != "" {
		p.errorf(file, line, "bad #if expression: %s", ev.err)
		return false
	}
	return v != 0
}

// condEval is a tiny recursive-descent evaluator over preprocessing
// tokens producing int64 values.
type condEval struct {
	toks []ppTok
	pos  int
	err  string
}

func (e *condEval) peek() string {
	if e.pos < len(e.toks) {
		return e.toks[e.pos].text
	}
	return ""
}

func (e *condEval) next() ppTok {
	if e.pos < len(e.toks) {
		t := e.toks[e.pos]
		e.pos++
		return t
	}
	return ppTok{}
}

func (e *condEval) fail(msg string) int64 {
	if e.err == "" {
		e.err = msg
	}
	return 0
}

func (e *condEval) ternary() int64 {
	c := e.lor()
	if e.peek() == "?" {
		e.next()
		a := e.ternary()
		if e.peek() != ":" {
			return e.fail("expected :")
		}
		e.next()
		b := e.ternary()
		if c != 0 {
			return a
		}
		return b
	}
	return c
}

func (e *condEval) lor() int64 {
	v := e.land()
	for e.peek() == "||" {
		e.next()
		r := e.land()
		if v != 0 || r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) land() int64 {
	v := e.bitor()
	for e.peek() == "&&" {
		e.next()
		r := e.bitor()
		if v != 0 && r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) bitor() int64 {
	v := e.bitxor()
	for e.peek() == "|" {
		e.next()
		v |= e.bitxor()
	}
	return v
}

func (e *condEval) bitxor() int64 {
	v := e.bitand()
	for e.peek() == "^" {
		e.next()
		v ^= e.bitand()
	}
	return v
}

func (e *condEval) bitand() int64 {
	v := e.equality()
	for e.peek() == "&" {
		e.next()
		v &= e.equality()
	}
	return v
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (e *condEval) equality() int64 {
	v := e.relational()
	for {
		switch e.peek() {
		case "==":
			e.next()
			v = b2i(v == e.relational())
		case "!=":
			e.next()
			v = b2i(v != e.relational())
		default:
			return v
		}
	}
}

func (e *condEval) relational() int64 {
	v := e.shift()
	for {
		switch e.peek() {
		case "<":
			e.next()
			v = b2i(v < e.shift())
		case ">":
			e.next()
			v = b2i(v > e.shift())
		case "<=":
			e.next()
			v = b2i(v <= e.shift())
		case ">=":
			e.next()
			v = b2i(v >= e.shift())
		default:
			return v
		}
	}
}

func (e *condEval) shift() int64 {
	v := e.additive()
	for {
		switch e.peek() {
		case "<<":
			e.next()
			v <<= uint64(e.additive()) & 63
		case ">>":
			e.next()
			v >>= uint64(e.additive()) & 63
		default:
			return v
		}
	}
}

func (e *condEval) additive() int64 {
	v := e.multiplicative()
	for {
		switch e.peek() {
		case "+":
			e.next()
			v += e.multiplicative()
		case "-":
			e.next()
			v -= e.multiplicative()
		default:
			return v
		}
	}
}

func (e *condEval) multiplicative() int64 {
	v := e.unary()
	for {
		switch e.peek() {
		case "*":
			e.next()
			v *= e.unary()
		case "/":
			e.next()
			d := e.unary()
			if d == 0 {
				return e.fail("division by zero")
			}
			v /= d
		case "%":
			e.next()
			d := e.unary()
			if d == 0 {
				return e.fail("modulo by zero")
			}
			v %= d
		default:
			return v
		}
	}
}

func (e *condEval) unary() int64 {
	switch e.peek() {
	case "!":
		e.next()
		return b2i(e.unary() == 0)
	case "~":
		e.next()
		return ^e.unary()
	case "-":
		e.next()
		return -e.unary()
	case "+":
		e.next()
		return e.unary()
	}
	return e.primary()
}

func (e *condEval) primary() int64 {
	t := e.next()
	switch t.kind {
	case tkNumber:
		text := strings.TrimRight(t.text, "uUlL")
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			// Try unsigned range.
			u, err2 := strconv.ParseUint(text, 0, 64)
			if err2 != nil {
				return e.fail(fmt.Sprintf("bad number %q", t.text))
			}
			return int64(u)
		}
		return v
	case tkChar:
		s := t.text
		if len(s) >= 3 {
			if s[1] == '\\' && len(s) >= 4 {
				switch s[2] {
				case 'n':
					return '\n'
				case 't':
					return '\t'
				case '0':
					return 0
				case 'r':
					return '\r'
				}
				return int64(s[2])
			}
			return int64(s[1])
		}
		return e.fail("bad char literal")
	case tkIdent:
		return 0 // undefined identifiers are 0 in #if
	case tkPunct:
		if t.text == "(" {
			v := e.ternary()
			if e.peek() != ")" {
				return e.fail("missing )")
			}
			e.next()
			return v
		}
	}
	return e.fail(fmt.Sprintf("unexpected token %q", t.text))
}
