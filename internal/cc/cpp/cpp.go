// Package cpp implements the C preprocessor subset needed for FLASH
// protocol code: #include with search paths, object- and function-like
// #define (including # stringize and ## paste), #undef, the full
// conditional family (#if/#ifdef/#ifndef/#elif/#else/#endif) with
// constant-expression evaluation and defined(), #error, and #pragma
// (ignored).
//
// Output is a single preprocessed text buffer in which include
// boundaries are recorded as line markers
//
//	# <line> "<file>"
//
// which package lexer interprets, so downstream positions refer to the
// original files.
//
// Files are read through the Source interface so corpora can live
// purely in memory (package flashgen) or on disk (cmd/mcheck).
package cpp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Source resolves include files.
type Source interface {
	// ReadFile returns the contents of the named file.
	ReadFile(name string) (string, error)
}

// OSSource reads files from the operating system, rooted at Dir (or
// the process working directory if Dir is empty).
type OSSource struct{ Dir string }

// ReadFile implements Source.
func (s OSSource) ReadFile(name string) (string, error) {
	if s.Dir != "" && !filepath.IsAbs(name) {
		name = filepath.Join(s.Dir, name)
	}
	b, err := os.ReadFile(name)
	return string(b), err
}

// MapSource serves files from an in-memory map of name -> contents.
type MapSource map[string]string

// ReadFile implements Source.
func (m MapSource) ReadFile(name string) (string, error) {
	if s, ok := m[name]; ok {
		return s, nil
	}
	return "", fmt.Errorf("file %q not found", name)
}

// Layered combines sources: each lookup tries them in order. It lets
// the command-line tools overlay the built-in FLASH header under
// on-disk protocol sources.
func Layered(srcs ...Source) Source { return layered(srcs) }

type layered []Source

// ReadFile implements Source.
func (l layered) ReadFile(name string) (string, error) {
	var firstErr error
	for _, s := range l {
		text, err := s.ReadFile(name)
		if err == nil {
			return text, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("file %q not found", name)
	}
	return "", firstErr
}

// Error is a preprocessing error with its source location.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	FuncLike bool
	Params   []string
	Body     []ppTok
}

// Preprocessor holds preprocessing state across files.
type Preprocessor struct {
	src         Source
	includeDirs []string
	macros      map[string]*Macro
	out         strings.Builder
	errs        []error
	depth       int

	// KeepMacros lists function-like macro names that must NOT be
	// expanded even if defined; the FLASH checkers pattern-match their
	// invocations (the paper's xg++ workaround, §11).
	KeepMacros map[string]bool
}

// New returns a Preprocessor reading includes from src and the given
// search directories (used for both "..." and <...> includes; for
// quoted includes the including file's directory is tried first).
func New(src Source, includeDirs ...string) *Preprocessor {
	return &Preprocessor{
		src:         src,
		includeDirs: includeDirs,
		macros:      make(map[string]*Macro),
		KeepMacros:  make(map[string]bool),
	}
}

// Define installs an object-like macro, e.g. Define("SIMULATION", "1").
// An empty body defines the name with no tokens (as in -DNAME).
func (p *Preprocessor) Define(name, body string) {
	p.macros[name] = &Macro{Name: name, Body: scanAll(body)}
}

// Errors returns all errors accumulated so far.
func (p *Preprocessor) Errors() []error { return p.errs }

func (p *Preprocessor) errorf(file string, line int, format string, args ...any) {
	p.errs = append(p.errs, &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// Process preprocesses the named top-level file and returns the
// preprocessed text. Errors are available via Errors; processing
// continues past recoverable errors.
func (p *Preprocessor) Process(name string) string {
	text, err := p.src.ReadFile(name)
	if err != nil {
		p.errorf(name, 0, "cannot read: %v", err)
		return ""
	}
	p.out.Reset()
	p.processText(name, text)
	return p.out.String()
}

// ProcessText preprocesses the given text as though it were file name.
func (p *Preprocessor) ProcessText(name, text string) string {
	p.out.Reset()
	p.processText(name, text)
	return p.out.String()
}

const maxIncludeDepth = 64

// condState tracks one #if nesting level.
type condState struct {
	taken    bool // some branch at this level has been taken
	active   bool // current branch is active
	sawElse  bool
	wasLive  bool // enclosing context was active when #if was seen
	openLine int
}

func (p *Preprocessor) processText(file, text string) {
	if p.depth >= maxIncludeDepth {
		p.errorf(file, 0, "include depth exceeds %d (cycle?)", maxIncludeDepth)
		return
	}
	p.depth++
	defer func() { p.depth-- }()

	fmt.Fprintf(&p.out, "# %d %q\n", 1, file)
	lines := splitLogicalLines(text)
	var conds []condState

	live := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	for _, ln := range lines {
		trim := strings.TrimSpace(ln.text)
		if strings.HasPrefix(trim, "#") {
			p.directive(file, ln, trim, &conds, live)
			continue
		}
		if !live() {
			continue
		}
		expanded := p.expandLine(file, ln.line, ln.text)
		fmt.Fprintf(&p.out, "# %d %q\n", ln.line, file)
		p.out.WriteString(expanded)
		p.out.WriteByte('\n')
	}
	for _, c := range conds {
		p.errorf(file, c.openLine, "unterminated #if")
	}
}

type logicalLine struct {
	line int // starting physical line
	text string
}

// splitLogicalLines splits text into lines, joining backslash
// continuations and stripping comments that could hide directives.
func splitLogicalLines(text string) []logicalLine {
	text = stripBlockComments(text)
	raw := strings.Split(text, "\n")
	var out []logicalLine
	for i := 0; i < len(raw); i++ {
		start := i + 1
		line := raw[i]
		for strings.HasSuffix(line, "\\") && i+1 < len(raw) {
			line = line[:len(line)-1] + raw[i+1]
			i++
		}
		out = append(out, logicalLine{line: start, text: line})
	}
	return out
}

// stripBlockComments replaces /*...*/ comments with spaces (preserving
// newlines so line numbers stay accurate) and removes // comments.
// String and character literals are respected.
func stripBlockComments(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '/' && i+1 < len(text) && text[i+1] == '*':
			i += 2
			b.WriteString("  ")
			for i < len(text) {
				if text[i] == '*' && i+1 < len(text) && text[i+1] == '/' {
					i += 2
					b.WriteString("  ")
					break
				}
				if text[i] == '\n' {
					b.WriteByte('\n')
				} else {
					b.WriteByte(' ')
				}
				i++
			}
		case c == '/' && i+1 < len(text) && text[i+1] == '/':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			b.WriteByte(c)
			i++
			for i < len(text) && text[i] != quote && text[i] != '\n' {
				if text[i] == '\\' && i+1 < len(text) {
					b.WriteByte(text[i])
					i++
				}
				b.WriteByte(text[i])
				i++
			}
			if i < len(text) {
				b.WriteByte(text[i])
				i++
			}
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

func (p *Preprocessor) directive(file string, ln logicalLine, trim string, conds *[]condState, live func() bool) {
	body := strings.TrimSpace(trim[1:])
	name := body
	rest := ""
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		name, rest = body[:i], strings.TrimSpace(body[i+1:])
	}
	switch name {
	case "if", "ifdef", "ifndef":
		wasLive := live()
		active := false
		if wasLive {
			switch name {
			case "ifdef":
				active = p.macros[rest] != nil
			case "ifndef":
				active = p.macros[rest] == nil
			default:
				active = p.evalCond(file, ln.line, rest)
			}
		}
		*conds = append(*conds, condState{taken: active, active: active, wasLive: wasLive, openLine: ln.line})
	case "elif":
		if len(*conds) == 0 {
			p.errorf(file, ln.line, "#elif without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		if c.sawElse {
			p.errorf(file, ln.line, "#elif after #else")
			return
		}
		if c.wasLive && !c.taken && p.evalCond(file, ln.line, rest) {
			c.active, c.taken = true, true
		} else {
			c.active = false
		}
	case "else":
		if len(*conds) == 0 {
			p.errorf(file, ln.line, "#else without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		if c.sawElse {
			p.errorf(file, ln.line, "duplicate #else")
			return
		}
		c.sawElse = true
		c.active = c.wasLive && !c.taken
		c.taken = true
	case "endif":
		if len(*conds) == 0 {
			p.errorf(file, ln.line, "#endif without #if")
			return
		}
		*conds = (*conds)[:len(*conds)-1]
	case "include":
		if live() {
			p.include(file, ln.line, rest)
		}
	case "define":
		if live() {
			p.define(file, ln.line, rest)
		}
	case "undef":
		if live() {
			delete(p.macros, strings.TrimSpace(rest))
		}
	case "error":
		if live() {
			p.errorf(file, ln.line, "#error %s", rest)
		}
	case "pragma", "line":
		// ignored
	case "":
		// null directive
	default:
		if live() {
			p.errorf(file, ln.line, "unknown directive #%s", name)
		}
	}
}

func (p *Preprocessor) include(file string, line int, arg string) {
	arg = strings.TrimSpace(arg)
	var name string
	var quoted bool
	switch {
	case len(arg) >= 2 && arg[0] == '"':
		end := strings.IndexByte(arg[1:], '"')
		if end < 0 {
			p.errorf(file, line, "malformed #include %s", arg)
			return
		}
		name, quoted = arg[1:1+end], true
	case len(arg) >= 2 && arg[0] == '<':
		end := strings.IndexByte(arg, '>')
		if end < 0 {
			p.errorf(file, line, "malformed #include %s", arg)
			return
		}
		name = arg[1:end]
	default:
		p.errorf(file, line, "malformed #include %s", arg)
		return
	}

	var candidates []string
	if quoted {
		candidates = append(candidates, filepath.Join(filepath.Dir(file), name))
	}
	for _, d := range p.includeDirs {
		candidates = append(candidates, filepath.Join(d, name))
	}
	candidates = append(candidates, name)
	for _, c := range candidates {
		text, err := p.src.ReadFile(c)
		if err == nil {
			p.processText(c, text)
			fmt.Fprintf(&p.out, "# %d %q\n", line+1, file)
			return
		}
	}
	p.errorf(file, line, "include file %q not found", name)
}

func (p *Preprocessor) define(file string, line int, rest string) {
	toks := scanAll(rest)
	if len(toks) == 0 || toks[0].kind != tkIdent {
		p.errorf(file, line, "malformed #define")
		return
	}
	m := &Macro{Name: toks[0].text}
	i := 1
	// Function-like only if '(' immediately follows the name (no space);
	// scanAll records adjacency.
	if i < len(toks) && toks[i].text == "(" && !toks[i].spaceBefore {
		m.FuncLike = true
		i++
		for i < len(toks) && toks[i].text != ")" {
			if toks[i].kind == tkIdent {
				m.Params = append(m.Params, toks[i].text)
			} else if toks[i].text != "," {
				p.errorf(file, line, "malformed macro parameter list")
				return
			}
			i++
		}
		if i >= len(toks) {
			p.errorf(file, line, "unterminated macro parameter list")
			return
		}
		i++ // ')'
	}
	m.Body = toks[i:]
	p.macros[m.Name] = m
}
