package parser

import (
	"strconv"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cc/types"
)

// expr parses a full expression including the comma operator.
func (p *Parser) expr() ast.Expr {
	e := p.assignExpr()
	for p.at(token.Comma) {
		pos := p.next().Pos
		rhs := p.assignExpr()
		b := &ast.Binary{Op: token.Comma, X: e, Y: rhs}
		b.P = pos
		e = b
	}
	return e
}

// assignExpr parses assignment expressions (right associative).
func (p *Parser) assignExpr() ast.Expr {
	lhs := p.condExpr()
	if p.kind().IsAssign() {
		op := p.next()
		rhs := p.assignExpr()
		a := &ast.Assign{Op: op.Kind, LHS: lhs, RHS: rhs}
		a.P = op.Pos
		return a
	}
	return lhs
}

// condExpr parses ternary conditionals.
func (p *Parser) condExpr() ast.Expr {
	c := p.binaryExpr(1)
	if p.at(token.Question) {
		pos := p.next().Pos
		then := p.expr()
		p.expect(token.Colon)
		els := p.condExpr()
		e := &ast.Cond{C: c, Then: then, Else: els}
		e.P = pos
		return e
	}
	return c
}

// binary operator precedence, C levels 1 (||) .. 10 (* / %).
func precOf(k token.Kind) int {
	switch k {
	case token.LogicalOr:
		return 1
	case token.LogicalAnd:
		return 2
	case token.BitOr:
		return 3
	case token.BitXor:
		return 4
	case token.BitAnd:
		return 5
	case token.Eq, token.NotEq:
		return 6
	case token.Less, token.Greater, token.LessEq, token.GreaterEq:
		return 7
	case token.Shl, token.Shr:
		return 8
	case token.Add, token.Sub:
		return 9
	case token.Star, token.Div, token.Mod:
		return 10
	}
	return 0
}

// binaryExpr implements precedence climbing above minPrec.
func (p *Parser) binaryExpr(minPrec int) ast.Expr {
	lhs := p.unaryExpr()
	for {
		prec := precOf(p.kind())
		if prec < minPrec {
			return lhs
		}
		op := p.next()
		rhs := p.binaryExpr(prec + 1)
		b := &ast.Binary{Op: op.Kind, X: lhs, Y: rhs}
		b.P = op.Pos
		lhs = b
	}
}

// unaryExpr parses prefix operators, casts and sizeof.
func (p *Parser) unaryExpr() ast.Expr {
	pos := p.cur().Pos
	switch p.kind() {
	case token.Not, token.Tilde, token.Sub, token.Add, token.Star, token.BitAnd:
		op := p.next()
		x := p.unaryExpr()
		u := &ast.Unary{Op: op.Kind, X: x}
		u.P = pos
		return u
	case token.Inc, token.Dec:
		op := p.next()
		x := p.unaryExpr()
		u := &ast.Unary{Op: op.Kind, X: x}
		u.P = pos
		return u
	case token.KwSizeof:
		p.next()
		if p.at(token.LParen) && p.isTypeName(1) {
			p.next()
			t := p.typeName()
			p.expect(token.RParen)
			e := &ast.SizeofType{Of: t}
			e.P = pos
			return e
		}
		x := p.unaryExpr()
		e := &ast.SizeofExpr{X: x}
		e.P = pos
		return e
	case token.LParen:
		// Cast if a type name follows.
		if p.isTypeName(1) {
			p.next()
			t := p.typeName()
			p.expect(token.RParen)
			x := p.unaryExpr()
			c := &ast.Cast{To: t, X: x}
			c.P = pos
			return c
		}
		return p.postfixExpr()
	default:
		return p.postfixExpr()
	}
}

// typeName parses an abstract type name (in casts and sizeof): decl
// specifiers plus pointer/array derivations without a declared name.
func (p *Parser) typeName() types.Type {
	_, _, base, _ := p.declSpecifiers()
	if base == nil {
		p.errorf(p.cur().Pos, "expected type name")
		return types.IntType
	}
	t := base
	for p.accept(token.Star) {
		for p.accept(token.KwConst) || p.accept(token.KwVolatile) {
		}
		t = &types.Pointer{Elem: t}
	}
	for p.at(token.LBracket) {
		p.next()
		ln := int64(-1)
		if !p.at(token.RBracket) {
			e := p.condExpr()
			if v, ok := p.constEval(e); ok {
				ln = v
			}
		}
		p.expect(token.RBracket)
		t = &types.Array{Elem: t, Len: ln}
	}
	return t
}

// postfixExpr parses primary expressions followed by postfix
// operators: calls, indexing, member access, post-inc/dec.
func (p *Parser) postfixExpr() ast.Expr {
	e := p.primaryExpr()
	for {
		pos := p.cur().Pos
		switch p.kind() {
		case token.LParen:
			p.next()
			c := &ast.Call{Fun: e}
			c.P = e.Pos()
			for !p.at(token.RParen) && !p.at(token.EOF) {
				c.Args = append(c.Args, p.assignExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.RParen)
			e = c
		case token.LBracket:
			p.next()
			idx := p.expr()
			p.expect(token.RBracket)
			ix := &ast.Index{X: e, Idx: idx}
			ix.P = pos
			e = ix
		case token.Dot, token.Arrow:
			arrow := p.next().Kind == token.Arrow
			name := p.expect(token.Ident).Text
			m := &ast.Member{X: e, Name: name, Arrow: arrow}
			m.P = pos
			e = m
		case token.Inc, token.Dec:
			op := p.next()
			u := &ast.Unary{Op: op.Kind, X: e, Postfix: true}
			u.P = pos
			e = u
		default:
			return e
		}
	}
}

// primaryExpr parses identifiers, literals, and parenthesized
// expressions. Identifiers registered as wildcards (metal pattern
// compilation) become Wildcard nodes.
func (p *Parser) primaryExpr() ast.Expr {
	tk := p.cur()
	switch tk.Kind {
	case token.Ident:
		p.next()
		if c, ok := p.cfg.Wildcards[tk.Text]; ok {
			w := &ast.Wildcard{Name: tk.Text, Constraint: c}
			w.P = tk.Pos
			return w
		}
		id := &ast.Ident{Name: tk.Text}
		id.P = tk.Pos
		return id
	case token.IntLit:
		p.next()
		l := &ast.IntLit{Text: tk.Text, Value: parseIntText(tk.Text)}
		l.P = tk.Pos
		return l
	case token.FloatLit:
		p.next()
		v, _ := strconv.ParseFloat(trimFloatSuffix(tk.Text), 64)
		l := &ast.FloatLit{Text: tk.Text, Value: v}
		l.P = tk.Pos
		return l
	case token.CharLit:
		p.next()
		l := &ast.CharLit{Text: tk.Text, Value: parseCharText(tk.Text)}
		l.P = tk.Pos
		return l
	case token.StringLit:
		p.next()
		text, val := tk.Text, unquoteString(tk.Text)
		// Adjacent string literals concatenate.
		for p.at(token.StringLit) {
			nt := p.next()
			text += " " + nt.Text
			val += unquoteString(nt.Text)
		}
		l := &ast.StringLit{Text: text, Value: val}
		l.P = tk.Pos
		return l
	case token.LParen:
		p.next()
		inner := p.expr()
		p.expect(token.RParen)
		e := &ast.Paren{X: inner}
		e.P = tk.Pos
		return e
	default:
		p.errorf(tk.Pos, "expected expression, found %s", tk)
		p.next()
		id := &ast.Ident{Name: "<error>"}
		id.P = tk.Pos
		return id
	}
}

func trimFloatSuffix(s string) string {
	for len(s) > 0 {
		switch s[len(s)-1] {
		case 'f', 'F', 'l', 'L':
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}
