package parser

import (
	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
)

// block parses a brace-enclosed statement list.
func (p *Parser) block() *ast.Block {
	b := &ast.Block{}
	b.P = p.expect(token.LBrace).Pos
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		start := p.pos
		s := p.stmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == start {
			p.next() // guarantee progress on malformed input
		}
	}
	p.expect(token.RBrace)
	return b
}

// stmt parses one statement. Local declarations yield one or more
// DeclStmt nodes wrapped in a Block when a single declaration declares
// several names (keeps Stmt cardinality simple for the CFG).
func (p *Parser) stmt() ast.Stmt {
	pos := p.cur().Pos
	switch p.kind() {
	case token.LBrace:
		return p.block()
	case token.Semi:
		p.next()
		e := &ast.Empty{}
		e.P = pos
		return e
	case token.KwIf:
		p.next()
		p.expect(token.LParen)
		cond := p.expr()
		p.expect(token.RParen)
		s := &ast.If{Cond: cond, Then: p.stmt()}
		s.P = pos
		if p.accept(token.KwElse) {
			s.Else = p.stmt()
		}
		return s
	case token.KwWhile:
		p.next()
		p.expect(token.LParen)
		cond := p.expr()
		p.expect(token.RParen)
		s := &ast.While{Cond: cond, Body: p.stmt()}
		s.P = pos
		return s
	case token.KwDo:
		p.next()
		body := p.stmt()
		p.expect(token.KwWhile)
		p.expect(token.LParen)
		cond := p.expr()
		p.expect(token.RParen)
		p.expect(token.Semi)
		s := &ast.DoWhile{Body: body, Cond: cond}
		s.P = pos
		return s
	case token.KwFor:
		p.next()
		p.expect(token.LParen)
		s := &ast.For{}
		s.P = pos
		if !p.at(token.Semi) {
			if p.isTypeName(0) {
				s.Init = p.localDecl()
			} else {
				es := &ast.ExprStmt{X: p.expr()}
				es.P = pos
				s.Init = es
				p.expect(token.Semi)
			}
		} else {
			p.next()
		}
		if !p.at(token.Semi) {
			s.Cond = p.expr()
		}
		p.expect(token.Semi)
		if !p.at(token.RParen) {
			s.Post = p.expr()
		}
		p.expect(token.RParen)
		s.Body = p.stmt()
		return s
	case token.KwSwitch:
		p.next()
		p.expect(token.LParen)
		tag := p.expr()
		p.expect(token.RParen)
		s := &ast.Switch{Tag: tag, Body: p.block()}
		s.P = pos
		return s
	case token.KwCase:
		p.next()
		v := p.condExpr()
		p.expect(token.Colon)
		s := &ast.Case{Value: v}
		s.P = pos
		return s
	case token.KwDefault:
		p.next()
		p.expect(token.Colon)
		s := &ast.Case{}
		s.P = pos
		return s
	case token.KwBreak:
		p.next()
		p.expect(token.Semi)
		s := &ast.Break{}
		s.P = pos
		return s
	case token.KwContinue:
		p.next()
		p.expect(token.Semi)
		s := &ast.Continue{}
		s.P = pos
		return s
	case token.KwReturn:
		p.next()
		s := &ast.Return{}
		s.P = pos
		if !p.at(token.Semi) {
			s.X = p.expr()
		}
		p.expect(token.Semi)
		return s
	case token.KwGoto:
		p.next()
		s := &ast.Goto{Label: p.expect(token.Ident).Text}
		s.P = pos
		p.expect(token.Semi)
		return s
	case token.Ident:
		// label?
		if p.peekKind(1) == token.Colon {
			name := p.next().Text
			p.next() // ':'
			s := &ast.Labeled{Label: name, Stmt: p.stmt()}
			s.P = pos
			return s
		}
		if p.isTypeName(0) && p.declFollows(1) {
			return p.localDecl()
		}
		return p.exprStmt()
	default:
		if p.isTypeName(0) {
			return p.localDecl()
		}
		return p.exprStmt()
	}
}

// declFollows disambiguates "T x" (declaration) from "t * x" style
// expressions when T is a typedef name at offset 0. Offset n is the
// token after the typedef name.
func (p *Parser) declFollows(n int) bool {
	for p.peekKind(n) == token.Star {
		n++
	}
	return p.peekKind(n) == token.Ident
}

func (p *Parser) exprStmt() ast.Stmt {
	pos := p.cur().Pos
	e := p.expr()
	p.expect(token.Semi)
	s := &ast.ExprStmt{X: e}
	s.P = pos
	return s
}

// localDecl parses a local declaration statement; multiple declarators
// become a Block of DeclStmts (transparent to the CFG builder).
func (p *Parser) localDecl() ast.Stmt {
	pos := p.cur().Pos
	storage, _, base, isConst := p.declSpecifiers()
	var stmts []ast.Stmt
	for {
		dpos := p.cur().Pos
		name, t, _, _, isFunc := p.declarator(base)
		if isFunc {
			// Local function prototype; model as a no-op declaration.
			vd := &ast.VarDecl{Name: name, T: t, Storage: storage}
			vd.P = dpos
			ds := &ast.DeclStmt{Decl: vd}
			ds.P = dpos
			stmts = append(stmts, ds)
		} else {
			vd := &ast.VarDecl{Name: name, T: t, Storage: storage, Const: isConst}
			vd.P = dpos
			if p.accept(token.Assign) {
				vd.Init = p.initializer()
			}
			ds := &ast.DeclStmt{Decl: vd}
			ds.P = dpos
			stmts = append(stmts, ds)
		}
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Semi)
	if len(stmts) == 1 {
		return stmts[0]
	}
	b := &ast.Block{Stmts: stmts}
	b.P = pos
	return b
}
