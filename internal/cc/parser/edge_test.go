package parser

import (
	"strings"
	"testing"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/types"
)

func TestPointerToPointer(t *testing.T) {
	f := parse(t, `unsigned **pp;`)
	pt := f.Decls[0].(*ast.VarDecl).T
	p1, ok := pt.(*types.Pointer)
	if !ok {
		t.Fatalf("outer %v", pt)
	}
	if _, ok := p1.Elem.(*types.Pointer); !ok {
		t.Fatalf("inner %v", p1.Elem)
	}
}

func TestConstPlacements(t *testing.T) {
	f := parse(t, `
const unsigned a = 1;
unsigned const b = 2;
const char *s;
char * const p;
`)
	if !f.Decls[0].(*ast.VarDecl).Const || !f.Decls[1].(*ast.VarDecl).Const {
		t.Error("const qualifier lost")
	}
	// Pointer-level const is accepted (and discarded) without error.
	if len(f.Decls) != 4 {
		t.Errorf("decls %d", len(f.Decls))
	}
}

func TestAnonymousStructVar(t *testing.T) {
	f := parse(t, `struct { unsigned a; unsigned b; } pair;`)
	vd := f.Decls[0].(*ast.VarDecl)
	st := types.Unwrap(vd.T).(*types.Struct)
	if len(st.Fields) != 2 || st.Tag != "" {
		t.Errorf("struct %v", st)
	}
}

func TestForwardStructPointer(t *testing.T) {
	f := parse(t, `
struct node;
struct node *head;
struct node { struct node *next; unsigned v; };
void g(void) { head->next->v = 1; }
`)
	// The forward tag and the completed definition must be the same
	// type object so member access through head resolves.
	head := f.Decls[1].(*ast.VarDecl)
	st := types.Unwrap(head.T).(*types.Pointer).Elem.(*types.Struct)
	if !st.Complete || st.Find("next") == nil {
		t.Errorf("forward tag not unified: %v complete=%v", st, st.Complete)
	}
}

func TestEnumNegativeAndExpr(t *testing.T) {
	f, errs := ParseText("t.c", `enum e { A = -1, B = 1 << 4, C };`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	p := New(nil, Config{})
	_ = p
	f2, _ := ParseText("t2.c", `enum e { A = -1, B = 1 << 4, C }; int arr[C];`)
	arr := f2.Decls[1].(*ast.VarDecl).T.(*types.Array)
	if arr.Len != 17 {
		t.Errorf("C = %d want 17", arr.Len)
	}
	_ = f
}

func TestDoWhileMissingSemicolonDiagnosed(t *testing.T) {
	_, errs := ParseText("t.c", `void g(void) { do { } while (1) }`)
	if len(errs) == 0 {
		t.Fatal("missing ; after do-while accepted silently")
	}
}

func TestDanglingElseBindsInner(t *testing.T) {
	f := parse(t, `void g(int a, int b) { if (a) if (b) f1(); else f2(); }`)
	outer := f.Funcs()[0].Body.Stmts[0].(*ast.If)
	if outer.Else != nil {
		t.Fatal("else bound to outer if")
	}
	inner := outer.Then.(*ast.If)
	if inner.Else == nil {
		t.Fatal("else lost")
	}
}

func TestNestedTernary(t *testing.T) {
	f := parse(t, `int v = a ? b : c ? d : e;`)
	top := f.Decls[0].(*ast.VarDecl).Init.(*ast.Cond)
	if _, ok := top.Else.(*ast.Cond); !ok {
		t.Errorf("right associativity: %s", ast.ExprString(top))
	}
}

func TestChainedRelationalLeftAssoc(t *testing.T) {
	f := parse(t, `int v = a < b < c;`)
	top := f.Decls[0].(*ast.VarDecl).Init.(*ast.Binary)
	l, ok := top.X.(*ast.Binary)
	if !ok || ast.ExprString(l) != "a < b" {
		t.Errorf("assoc: %s", ast.ExprString(top))
	}
}

func TestUnaryPrecedence(t *testing.T) {
	f := parse(t, `int v = -a * !b;`)
	got := ast.ExprString(f.Decls[0].(*ast.VarDecl).Init)
	if got != "-a * !b" {
		t.Errorf("got %q", got)
	}
	top := f.Decls[0].(*ast.VarDecl).Init.(*ast.Binary)
	if _, ok := top.X.(*ast.Unary); !ok {
		t.Error("unary does not bind tighter than *")
	}
}

func TestSizeofPrecedence(t *testing.T) {
	f := parse(t, `unsigned v = sizeof x + 1;`)
	// sizeof x + 1 parses as (sizeof x) + 1.
	top, ok := f.Decls[0].(*ast.VarDecl).Init.(*ast.Binary)
	if !ok {
		t.Fatalf("top %s", ast.ExprString(f.Decls[0].(*ast.VarDecl).Init))
	}
	if _, ok := top.X.(*ast.SizeofExpr); !ok {
		t.Errorf("got %s", ast.ExprString(top))
	}
}

func TestCastOfCast(t *testing.T) {
	f := parse(t, `long v = (long)(unsigned)x;`)
	c1 := f.Decls[0].(*ast.VarDecl).Init.(*ast.Cast)
	if _, ok := c1.X.(*ast.Cast); !ok {
		t.Errorf("nested cast: %s", ast.ExprString(c1))
	}
}

func TestVariadicPrototype(t *testing.T) {
	f := parse(t, `int printk(char *fmt, ...);`)
	fd := f.Decls[0].(*ast.FuncDecl)
	if !fd.Variadic || len(fd.Params) != 1 {
		t.Errorf("variadic=%v params=%d", fd.Variadic, len(fd.Params))
	}
}

func TestArrayParamDecays(t *testing.T) {
	f := parse(t, `void g(unsigned tbl[4]) { }`)
	fd := f.Funcs()[0]
	if !types.IsPointer(fd.Params[0].T) {
		t.Errorf("param type %v", fd.Params[0].T)
	}
}

func TestStaticInlineFunctions(t *testing.T) {
	f := parse(t, `
static inline unsigned bump(unsigned v) { return v + 1; }
static unsigned counter;
`)
	fd := f.Funcs()[0]
	if fd.Storage != ast.StorageStatic || !fd.Inline {
		t.Errorf("storage=%v inline=%v", fd.Storage, fd.Inline)
	}
}

func TestErrorFloodBounded(t *testing.T) {
	bad := strings.Repeat("@#$ ", 5000)
	_, errs := ParseText("t.c", bad)
	// Lexer and parser each cap at ~200 diagnostics on garbage input.
	if len(errs) > 500 {
		t.Errorf("error flood: %d errors", len(errs))
	}
}
