package parser

import (
	"errors"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/lexer"
	"flashmc/internal/cc/token"
	"flashmc/internal/cc/types"
)

// PatternContext supplies ambient names for compiling metal patterns:
// the wildcard variables declared by the checker and any typedef names
// the pattern text mentions.
type PatternContext struct {
	// Wildcards maps wildcard variable names to constraints
	// ("scalar", "unsigned", "", ...).
	Wildcards map[string]string
	// Typedefs names protocol types used in casts within patterns.
	Typedefs map[string]types.Type
}

// ParseStmtPattern compiles metal pattern text (one statement, with or
// without trailing semicolon, or a bare expression) into a pattern
// tree. Identifiers named in ctx.Wildcards become ast.Wildcard nodes.
func ParseStmtPattern(text string, ctx PatternContext) (ast.Stmt, error) {
	lx := lexer.New("<pattern>", text)
	toks := lx.All()
	if len(lx.Errors()) > 0 {
		return nil, lx.Errors()[0]
	}
	// Allow omitted trailing semicolon by appending one when the last
	// real token isn't ; or }.
	if n := len(toks); n >= 2 {
		last := toks[n-2]
		if last.Kind != token.Semi && last.Kind != token.RBrace {
			semi := token.Token{Kind: token.Semi, Pos: last.Pos, Text: ";"}
			toks = append(toks[:n-1], semi, toks[n-1])
		}
	}
	p := New(toks, Config{Wildcards: ctx.Wildcards, Typedefs: ctx.Typedefs})
	s := p.stmt()
	if len(p.Errors()) > 0 {
		return nil, p.Errors()[0]
	}
	if !p.at(token.EOF) {
		return nil, errors.New("pattern has trailing tokens after statement")
	}
	return s, nil
}

// ParseExprPattern compiles metal pattern text as an expression.
func ParseExprPattern(text string, ctx PatternContext) (ast.Expr, error) {
	lx := lexer.New("<pattern>", text)
	toks := lx.All()
	if len(lx.Errors()) > 0 {
		return nil, lx.Errors()[0]
	}
	p := New(toks, Config{Wildcards: ctx.Wildcards, Typedefs: ctx.Typedefs})
	e := p.expr()
	if len(p.Errors()) > 0 {
		return nil, p.Errors()[0]
	}
	if !p.at(token.EOF) {
		return nil, errors.New("pattern has trailing tokens after expression")
	}
	return e, nil
}
