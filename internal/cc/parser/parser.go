// Package parser builds ASTs for the protocol-C subset from token
// streams produced by the lexer (which in turn consumes preprocessed
// text from package cpp).
//
// The grammar covers the C used by FLASH protocol handlers: typedefs,
// struct/union/enum declarations, global and local variables with
// initializers (including brace lists), function prototypes and
// definitions, the full statement set (if/else, while, do, for,
// switch/case, goto/label, break/continue, return), and the complete
// expression grammar with C precedence. Omissions relative to ANSI C —
// bitfields, K&R parameter declarations, and declarators of
// function-pointer arrays — are diagnosed, not silently accepted.
//
// The parser is reused to compile metal patterns: Config.Wildcards
// maps identifier spellings to constraint names, and occurrences of
// those identifiers parse as ast.Wildcard nodes.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/lexer"
	"flashmc/internal/cc/token"
	"flashmc/internal/cc/types"
)

// Error is a parse error at a position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Config adjusts parser behaviour.
type Config struct {
	// Wildcards maps identifier spellings to wildcard constraints for
	// metal pattern compilation. Nil for ordinary parsing.
	Wildcards map[string]string
	// Typedefs pre-seeds typedef names (pattern fragments reference
	// protocol types without their declarations in scope).
	Typedefs map[string]types.Type
}

// Parser parses one token stream.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error
	cfg  Config

	typedefs map[string]types.Type
	tags     map[string]types.Type // struct/union/enum tags

	// enumConsts records enumerator names and values discovered while
	// parsing; the checker uses them for constant evaluation.
	enumConsts map[string]int64
}

// New returns a parser over toks.
func New(toks []token.Token, cfg Config) *Parser {
	p := &Parser{
		toks:       toks,
		cfg:        cfg,
		typedefs:   make(map[string]types.Type),
		tags:       make(map[string]types.Type),
		enumConsts: make(map[string]int64),
	}
	for k, v := range cfg.Typedefs {
		p.typedefs[k] = v
	}
	return p
}

// ParseText preprocesses nothing; it lexes and parses source text
// directly (the text is assumed already preprocessed or free of
// directives other than line markers).
func ParseText(name, text string) (*ast.File, []error) {
	lx := lexer.New(name, text)
	toks := lx.All()
	p := New(toks, Config{})
	f := p.File(name)
	errs := append(lx.Errors(), p.Errors()...)
	return f, errs
}

// Errors returns accumulated parse errors.
func (p *Parser) Errors() []error { return p.errs }

// EnumConsts returns enumerator values discovered during parsing.
func (p *Parser) EnumConsts() map[string]int64 { return p.enumConsts }

// Typedefs returns the typedef table (including discovered ones), so a
// later parse (e.g. of pattern text) can share protocol type names.
func (p *Parser) Typedefs() map[string]types.Type { return p.typedefs }

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) > 200 {
		return // avoid error floods on badly broken input
	}
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *Parser) cur() token.Token     { return p.toks[p.pos] }
func (p *Parser) kind() token.Kind     { return p.toks[p.pos].Kind }
func (p *Parser) at(k token.Kind) bool { return p.toks[p.pos].Kind == k }

func (p *Parser) peekKind(n int) token.Kind {
	if p.pos+n >= len(p.toks) {
		return token.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) peekTok(n int) token.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *Parser) sync() {
	depth := 0
	for !p.at(token.EOF) {
		switch p.kind() {
		case token.Semi:
			if depth == 0 {
				p.next()
				return
			}
		case token.LBrace:
			depth++
		case token.RBrace:
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

// isTypeName reports whether the token at offset n begins a type.
func (p *Parser) isTypeName(n int) bool {
	t := p.peekTok(n)
	if t.Kind.IsTypeStart() {
		return true
	}
	if t.Kind == token.Ident {
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

// File parses a whole translation unit.
func (p *Parser) File(name string) *ast.File {
	f := &ast.File{Name: name}
	for !p.at(token.EOF) {
		d := p.topDecl()
		if d != nil {
			f.Decls = append(f.Decls, d...)
		}
	}
	return f
}

// topDecl parses one top-level declaration, which may declare several
// variables (int a, b;) and therefore returns a slice.
func (p *Parser) topDecl() []ast.Decl {
	start := p.pos
	pos := p.cur().Pos
	storage, inline, base, isConst := p.declSpecifiers()
	if base == nil {
		p.errorf(pos, "expected declaration, found %s", p.cur())
		p.sync()
		if p.pos == start {
			p.next() // guarantee progress
		}
		return nil
	}
	// Bare tag declaration: "struct S { ... };" or "enum E {...};"
	if p.accept(token.Semi) {
		return []ast.Decl{&ast.TypeDecl{T: base}}
	}

	var out []ast.Decl
	for {
		dpos := p.cur().Pos
		name, t, params, variadic, isFunc := p.declarator(base)
		if name == "" {
			p.errorf(dpos, "expected declarator")
			p.sync()
			return out
		}
		if storage == ast.StorageTypedef {
			named := &types.Named{Name: name, Underlying: t}
			p.typedefs[name] = named
			out = append(out, &ast.TypeDecl{Name: name, T: named})
		} else if isFunc {
			fd := &ast.FuncDecl{Name: name, Ret: t, Params: params,
				Variadic: variadic, Storage: storage, Inline: inline}
			fd.P = dpos
			if p.at(token.LBrace) {
				p.pushParamTypedefs()
				fd.Body = p.block()
				fd.EndPos = p.prevPos()
				out = append(out, fd)
				return out // no comma after function body
			}
			out = append(out, fd)
		} else {
			vd := &ast.VarDecl{Name: name, T: t, Storage: storage, Const: isConst}
			vd.P = dpos
			if p.accept(token.Assign) {
				vd.Init = p.initializer()
			}
			out = append(out, vd)
		}
		if len(out) > 0 {
			if last, ok := out[len(out)-1].(*ast.TypeDecl); ok && last.Pos().Line == 0 {
				// give typedefs a position too
			}
		}
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Semi)
	return out
}

func (p *Parser) pushParamTypedefs() {} // placeholder: params aren't typedefs

func (p *Parser) prevPos() token.Pos {
	if p.pos > 0 {
		return p.toks[p.pos-1].Pos
	}
	return token.Pos{}
}

// declSpecifiers parses storage class + type specifiers. Returns a nil
// type if no specifier is present.
func (p *Parser) declSpecifiers() (storage ast.Storage, inline bool, t types.Type, isConst bool) {
	var (
		sawUnsigned, sawSigned bool
		longCount              int
		sawShort               bool
		baseKind               = -1 // types.BasicKind, -1 unset
		result                 types.Type
	)
	setBasic := func(k types.BasicKind) {
		if baseKind != -1 || result != nil {
			p.errorf(p.cur().Pos, "duplicate type specifier")
		}
		baseKind = int(k)
	}
loop:
	for {
		switch p.kind() {
		case token.KwTypedef:
			storage = ast.StorageTypedef
			p.next()
		case token.KwExtern:
			storage = ast.StorageExtern
			p.next()
		case token.KwStatic:
			storage = ast.StorageStatic
			p.next()
		case token.KwRegister:
			storage = ast.StorageRegister
			p.next()
		case token.KwAuto:
			storage = ast.StorageAuto
			p.next()
		case token.KwInline:
			inline = true
			p.next()
		case token.KwConst:
			isConst = true
			p.next()
		case token.KwVolatile:
			p.next()
		case token.KwVoid:
			setBasic(types.Void)
			p.next()
		case token.KwChar:
			setBasic(types.Char)
			p.next()
		case token.KwShort:
			sawShort = true
			p.next()
		case token.KwInt:
			if baseKind == -1 {
				baseKind = int(types.Int)
			}
			p.next()
		case token.KwLong:
			longCount++
			p.next()
		case token.KwFloat:
			setBasic(types.Float)
			p.next()
		case token.KwDouble:
			setBasic(types.Double)
			p.next()
		case token.KwSigned:
			sawSigned = true
			p.next()
		case token.KwUnsigned:
			sawUnsigned = true
			p.next()
		case token.KwStruct, token.KwUnion:
			result = p.structOrUnion()
		case token.KwEnum:
			result = p.enum()
		case token.Ident:
			if result == nil && baseKind == -1 && !sawUnsigned && !sawSigned &&
				longCount == 0 && !sawShort {
				if td, ok := p.typedefs[p.cur().Text]; ok {
					result = td
					p.next()
					continue
				}
			}
			break loop
		default:
			break loop
		}
	}
	_ = sawSigned
	if result != nil {
		return storage, inline, result, isConst
	}
	if baseKind == -1 && !sawUnsigned && longCount == 0 && !sawShort {
		if storage != ast.StorageNone || isConst {
			// "extern x;" style implicit int — accepted leniently.
			return storage, inline, types.IntType, isConst
		}
		return storage, inline, nil, isConst
	}
	// Combine modifiers into a basic type.
	k := types.Int
	if baseKind != -1 {
		k = types.BasicKind(baseKind)
	}
	switch {
	case sawShort:
		k = types.Short
		if sawUnsigned {
			k = types.UShort
		}
	case longCount >= 2:
		k = types.LongLong
		if sawUnsigned {
			k = types.ULongLong
		}
	case longCount == 1 && k == types.Double:
		k = types.LongDouble
	case longCount == 1:
		k = types.Long
		if sawUnsigned {
			k = types.ULong
		}
	case sawUnsigned:
		switch k {
		case types.Char:
			k = types.UChar
		case types.Int:
			k = types.UInt
		default:
			p.errorf(p.cur().Pos, "cannot apply unsigned to %v", k)
		}
	}
	return storage, inline, basicFor(k), isConst
}

func basicFor(k types.BasicKind) *types.Basic {
	switch k {
	case types.Void:
		return types.VoidType
	case types.Char:
		return types.CharType
	case types.UChar:
		return types.UCharType
	case types.Short:
		return types.ShortType
	case types.UShort:
		return types.UShortType
	case types.Int:
		return types.IntType
	case types.UInt:
		return types.UIntType
	case types.Long:
		return types.LongType
	case types.ULong:
		return types.ULongType
	case types.LongLong:
		return types.LongLongType
	case types.ULongLong:
		return types.ULongLongType
	case types.Float:
		return types.FloatType
	case types.Double:
		return types.DoubleType
	case types.LongDouble:
		return types.LongDoubleType
	}
	return types.IntType
}

// structOrUnion parses struct/union specifiers, registering tags.
func (p *Parser) structOrUnion() types.Type {
	isUnion := p.kind() == token.KwUnion
	p.next()
	tag := ""
	if p.at(token.Ident) {
		tag = p.next().Text
	}
	key := "s " + tag
	if isUnion {
		key = "u " + tag
	}
	var st *types.Struct
	if tag != "" {
		if existing, ok := p.tags[key]; ok {
			st = existing.(*types.Struct)
		}
	}
	if st == nil {
		st = &types.Struct{Tag: tag, Union: isUnion}
		if tag != "" {
			p.tags[key] = st
		}
	}
	if !p.at(token.LBrace) {
		return st
	}
	p.next()
	if st.Complete {
		// Redefinition: make a fresh type to keep going.
		st = &types.Struct{Tag: tag, Union: isUnion}
		if tag != "" {
			p.tags[key] = st
		}
	}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		_, _, base, _ := p.declSpecifiers()
		if base == nil {
			p.errorf(p.cur().Pos, "expected field type in %s", st)
			p.sync()
			continue
		}
		for {
			name, t, _, _, isFunc := p.declarator(base)
			if isFunc {
				p.errorf(p.cur().Pos, "function field not supported")
			}
			if p.accept(token.Colon) { // bitfield: parse and flag
				p.errorf(p.cur().Pos, "bitfields are not in the protocol-C subset")
				p.condExpr()
			}
			st.Fields = append(st.Fields, types.Field{Name: name, T: t})
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.Semi)
	}
	p.expect(token.RBrace)
	st.Complete = true
	return st
}

// enum parses enum specifiers, recording enumerator constants.
func (p *Parser) enum() types.Type {
	p.next() // enum
	tag := ""
	if p.at(token.Ident) {
		tag = p.next().Text
	}
	key := "e " + tag
	var et *types.Enum
	if tag != "" {
		if existing, ok := p.tags[key]; ok {
			et = existing.(*types.Enum)
		}
	}
	if et == nil {
		et = &types.Enum{Tag: tag}
		if tag != "" {
			p.tags[key] = et
		}
	}
	if !p.at(token.LBrace) {
		return et
	}
	p.next()
	val := int64(0)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		name := p.expect(token.Ident).Text
		if p.accept(token.Assign) {
			e := p.condExpr()
			if v, ok := p.constEval(e); ok {
				val = v
			} else {
				p.errorf(p.prevPos(), "enumerator value must be constant")
			}
		}
		if name != "" {
			et.Members = append(et.Members, name)
			p.enumConsts[name] = val
		}
		val++
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RBrace)
	return et
}

// declarator parses pointer stars, the name, and array/function
// suffixes, producing the declared type. For function declarators it
// returns the parameter list.
func (p *Parser) declarator(base types.Type) (name string, t types.Type, params []ast.Param, variadic bool, isFunc bool) {
	t = base
	for p.accept(token.Star) {
		// const/volatile after * bind to the pointer; skip.
		for p.accept(token.KwConst) || p.accept(token.KwVolatile) {
		}
		t = &types.Pointer{Elem: t}
	}
	if p.at(token.Ident) {
		tk := p.next()
		name = tk.Text
	} else if p.at(token.LParen) && p.peekKind(1) == token.Star {
		p.errorf(p.cur().Pos, "function-pointer declarators are not in the protocol-C subset")
		p.sync()
		return "", t, nil, false, false
	}
	// suffixes
	for {
		switch {
		case p.at(token.LBracket):
			p.next()
			ln := int64(-1)
			if !p.at(token.RBracket) {
				e := p.condExpr()
				if v, ok := p.constEval(e); ok {
					ln = v
				} else {
					// Array sized by extern const "variable-ized macro
					// constants" (paper §11); treat as unknown length.
					ln = -1
				}
			}
			p.expect(token.RBracket)
			t = &types.Array{Elem: t, Len: ln}
		case p.at(token.LParen):
			p.next()
			isFunc = true
			params, variadic = p.paramList()
			p.expect(token.RParen)
		default:
			return name, t, params, variadic, isFunc
		}
	}
}

// paramList parses function parameters up to (but not including) ')'.
func (p *Parser) paramList() (params []ast.Param, variadic bool) {
	if p.at(token.RParen) {
		return nil, false
	}
	// (void)
	if p.at(token.KwVoid) && p.peekKind(1) == token.RParen {
		p.next()
		return nil, false
	}
	for {
		if p.accept(token.Ellipsis) {
			variadic = true
			break
		}
		pos := p.cur().Pos
		_, _, base, _ := p.declSpecifiers()
		if base == nil {
			// K&R style or error; accept bare identifiers leniently.
			if p.at(token.Ident) {
				params = append(params, ast.Param{Name: p.next().Text, T: types.IntType, P: pos})
			} else {
				p.errorf(pos, "expected parameter")
				break
			}
		} else {
			name, t, _, _, _ := p.declarator(base)
			// Arrays decay to pointers in parameters.
			if arr, ok := t.(*types.Array); ok {
				t = &types.Pointer{Elem: arr.Elem}
			}
			params = append(params, ast.Param{Name: name, T: t, P: pos})
		}
		if !p.accept(token.Comma) {
			break
		}
	}
	return params, variadic
}

// initializer parses an initializer: assignment expression or brace
// list (possibly nested).
func (p *Parser) initializer() ast.Expr {
	if p.at(token.LBrace) {
		pos := p.next().Pos
		il := &ast.InitList{}
		il.P = pos
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			il.Elems = append(il.Elems, p.initializer())
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RBrace)
		return il
	}
	return p.assignExpr()
}

// constEval evaluates constant integer expressions (literals, unary
// +/-/~/!, binary arithmetic, enum constants, parens).
func (p *Parser) constEval(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.CharLit:
		return x.Value, true
	case *ast.Ident:
		v, ok := p.enumConsts[x.Name]
		return v, ok
	case *ast.Paren:
		return p.constEval(x.X)
	case *ast.Unary:
		v, ok := p.constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.Sub:
			return -v, true
		case token.Add:
			return v, true
		case token.Tilde:
			return ^v, true
		case token.Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Binary:
		a, ok1 := p.constEval(x.X)
		b, ok2 := p.constEval(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.Add:
			return a + b, true
		case token.Sub:
			return a - b, true
		case token.Star:
			return a * b, true
		case token.Div:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.Mod:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.Shl:
			return a << (uint64(b) & 63), true
		case token.Shr:
			return a >> (uint64(b) & 63), true
		case token.BitOr:
			return a | b, true
		case token.BitAnd:
			return a & b, true
		case token.BitXor:
			return a ^ b, true
		}
		return 0, false
	}
	return 0, false
}

// parseIntText parses a C integer literal spelling.
func parseIntText(text string) int64 {
	s := strings.TrimRight(text, "uUlL")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		u, err2 := strconv.ParseUint(s, 0, 64)
		if err2 != nil {
			return 0
		}
		return int64(u)
	}
	return v
}

// parseCharText evaluates a character literal spelling.
func parseCharText(text string) int64 {
	if len(text) < 3 {
		return 0
	}
	body := text[1 : len(text)-1]
	if body[0] != '\\' {
		return int64(body[0])
	}
	if len(body) < 2 {
		return 0
	}
	switch body[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		if len(body) == 2 {
			return 0
		}
		v, _ := strconv.ParseInt(body[1:], 8, 64)
		return v
	case 'x':
		v, _ := strconv.ParseInt(body[2:], 16, 64)
		return v
	case '\\', '\'', '"', '?':
		return int64(body[1])
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	}
	if body[1] >= '0' && body[1] <= '7' {
		v, _ := strconv.ParseInt(body[1:], 8, 64)
		return v
	}
	return int64(body[1])
}

// unquoteString decodes a C string literal's contents.
func unquoteString(text string) string {
	if len(text) < 2 {
		return ""
	}
	body := text[1 : len(text)-1]
	if !strings.ContainsRune(body, '\\') {
		return body
	}
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' || i+1 >= len(body) {
			b.WriteByte(c)
			continue
		}
		i++
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\', '"', '\'':
			b.WriteByte(body[i])
		default:
			b.WriteByte('\\')
			b.WriteByte(body[i])
		}
	}
	return b.String()
}
