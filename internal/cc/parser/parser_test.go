package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cc/types"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func TestGlobalVarDecls(t *testing.T) {
	f := parse(t, `
int a;
unsigned int b = 4;
extern const unsigned LEN_NODATA;
static char *msg = "hello";
long x, y = 2, *z;
`)
	var names []string
	for _, d := range f.Decls {
		vd := d.(*ast.VarDecl)
		names = append(names, vd.Name)
	}
	want := []string{"a", "b", "LEN_NODATA", "msg", "x", "y", "z"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("names %v", names)
	}
	// Check a couple of types.
	b := f.Decls[1].(*ast.VarDecl)
	if !types.Equal(b.T, types.UIntType) {
		t.Errorf("b type %v", b.T)
	}
	z := f.Decls[6].(*ast.VarDecl)
	if !types.IsPointer(z.T) {
		t.Errorf("z type %v", z.T)
	}
	ln := f.Decls[2].(*ast.VarDecl)
	if !ln.Const || ln.Storage != ast.StorageExtern {
		t.Errorf("LEN_NODATA const=%v storage=%v", ln.Const, ln.Storage)
	}
}

func TestTypedefAndStruct(t *testing.T) {
	f := parse(t, `
typedef unsigned long nodeid_t;
struct header {
	nodeid_t src;
	nodeid_t dest;
	unsigned len;
};
typedef struct header header_t;
header_t h;
struct header *hp;
`)
	h := f.Decls[len(f.Decls)-2].(*ast.VarDecl)
	st := types.Unwrap(h.T)
	s, ok := st.(*types.Struct)
	if !ok || s.Tag != "header" {
		t.Fatalf("h type %v", h.T)
	}
	if len(s.Fields) != 3 || s.Fields[2].Name != "len" {
		t.Errorf("fields %v", s.Fields)
	}
	if !types.Equal(s.Fields[0].T, types.ULongType) {
		t.Errorf("src type %v", s.Fields[0].T)
	}
}

func TestEnum(t *testing.T) {
	f := parse(t, `
enum opcode { OP_GET, OP_PUT = 5, OP_ACK };
enum opcode op;
int table[OP_ACK];
`)
	_ = f
	p := New(nil, Config{})
	_ = p
	// Re-parse to inspect enum constants.
	f2, errs := ParseText("t.c", `enum opcode { OP_GET, OP_PUT = 5, OP_ACK };`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	td := f2.Decls[0].(*ast.TypeDecl)
	e := td.T.(*types.Enum)
	if len(e.Members) != 3 {
		t.Fatalf("members %v", e.Members)
	}
	// Array sized by enum constant OP_ACK == 6.
	arr := f.Decls[2].(*ast.VarDecl).T.(*types.Array)
	if arr.Len != 6 {
		t.Errorf("array len %d", arr.Len)
	}
}

func TestFunctionDefinition(t *testing.T) {
	f := parse(t, `
void handler(void) {
	int i;
	for (i = 0; i < 10; i++) {
		if (i == 5) break;
	}
	return;
}
int add(int a, int b) { return a + b; }
unsigned *find(struct entry *e, unsigned key);
`)
	funcs := f.Funcs()
	if len(funcs) != 2 {
		t.Fatalf("got %d definitions", len(funcs))
	}
	h := funcs[0]
	if h.Name != "handler" || !types.IsVoid(h.Ret) || len(h.Params) != 0 {
		t.Errorf("handler sig: %s %v %d", h.Name, h.Ret, len(h.Params))
	}
	add := funcs[1]
	if len(add.Params) != 2 || add.Params[1].Name != "b" {
		t.Errorf("add params %v", add.Params)
	}
	// prototype present as third decl
	var protos int
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body == nil {
			protos++
		}
	}
	if protos != 1 {
		t.Errorf("prototypes %d", protos)
	}
}

func TestAllStatements(t *testing.T) {
	f := parse(t, `
void all_stmts(int n) {
	int i = 0;
	while (n > 0) { n--; }
	do { i++; } while (i < 3);
	switch (n) {
	case 0:
		i = 1;
		break;
	case 1:
	case 2:
		i = 2;
		break;
	default:
		i = 3;
	}
	if (i) goto done;
	for (;;) { break; }
	;
done:
	return;
}
`)
	body := f.Funcs()[0].Body
	if len(body.Stmts) < 7 {
		t.Fatalf("got %d stmts", len(body.Stmts))
	}
	kinds := []string{}
	for _, s := range body.Stmts {
		kinds = append(kinds, ast.StmtString(s))
	}
	joined := strings.Join(kinds, " | ")
	for _, want := range []string{"while", "do", "switch", "if", "for", "done:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %s", want, joined)
		}
	}
}

func TestExpressionPrecedence(t *testing.T) {
	f := parse(t, `int v = 1 + 2 * 3 == 7 && 4 | 2;`)
	e := f.Decls[0].(*ast.VarDecl).Init
	// Top must be &&.
	b, ok := e.(*ast.Binary)
	if !ok || b.Op != token.LogicalAnd {
		t.Fatalf("top op: %s", ast.ExprString(e))
	}
	l, ok := b.X.(*ast.Binary)
	if !ok || l.Op != token.Eq {
		t.Fatalf("lhs: %s", ast.ExprString(b.X))
	}
	if got := ast.ExprString(e); got != "1 + 2 * 3 == 7 && 4 | 2" {
		t.Errorf("render %q", got)
	}
}

func TestAssignmentRightAssoc(t *testing.T) {
	f := parse(t, `void g(void) { int a; int b; a = b = 3; a += 2; a <<= 1; }`)
	body := f.Funcs()[0].Body
	s := body.Stmts[2].(*ast.ExprStmt)
	outer := s.X.(*ast.Assign)
	if _, ok := outer.RHS.(*ast.Assign); !ok {
		t.Errorf("not right assoc: %s", ast.ExprString(s.X))
	}
	if body.Stmts[3].(*ast.ExprStmt).X.(*ast.Assign).Op != token.AddAssign {
		t.Error("compound assign op")
	}
}

func TestPostfixChain(t *testing.T) {
	f := parse(t, `void g(struct s *p) { p->f[2].g(1, 2)++; }`)
	s := f.Funcs()[0].Body.Stmts[0].(*ast.ExprStmt)
	got := ast.ExprString(s.X)
	if got != "p->f[2].g(1, 2)++" {
		t.Errorf("got %q", got)
	}
}

func TestCastVsParen(t *testing.T) {
	f := parse(t, `
typedef unsigned u32;
void g(void) {
	int x;
	long a = (long) x;
	u32 b = (u32) x;
	int c = (x) + 1;
}
`)
	body := f.Funcs()[0].Body
	a := body.Stmts[1].(*ast.DeclStmt).Decl.Init
	if _, ok := a.(*ast.Cast); !ok {
		t.Errorf("a init not cast: %s", ast.ExprString(a))
	}
	b := body.Stmts[2].(*ast.DeclStmt).Decl.Init
	if c, ok := b.(*ast.Cast); !ok || c.To.String() != "u32" {
		t.Errorf("b init: %s", ast.ExprString(b))
	}
	c := body.Stmts[3].(*ast.DeclStmt).Decl.Init
	if _, ok := c.(*ast.Binary); !ok {
		t.Errorf("c init: %s", ast.ExprString(c))
	}
}

func TestSizeof(t *testing.T) {
	f := parse(t, `void g(void) { int a; unsigned s = sizeof(int); unsigned r = sizeof a; unsigned q = sizeof(struct tag *); }`)
	body := f.Funcs()[0].Body
	if _, ok := body.Stmts[1].(*ast.DeclStmt).Decl.Init.(*ast.SizeofType); !ok {
		t.Error("sizeof(int) not SizeofType")
	}
	if _, ok := body.Stmts[2].(*ast.DeclStmt).Decl.Init.(*ast.SizeofExpr); !ok {
		t.Error("sizeof a not SizeofExpr")
	}
}

func TestTernaryAndComma(t *testing.T) {
	f := parse(t, `void g(int a, int b) { int v = a ? b : a + 1; a = 1, b = 2; }`)
	body := f.Funcs()[0].Body
	if _, ok := body.Stmts[0].(*ast.DeclStmt).Decl.Init.(*ast.Cond); !ok {
		t.Error("ternary")
	}
	cx := body.Stmts[1].(*ast.ExprStmt).X.(*ast.Binary)
	if cx.Op != token.Comma {
		t.Error("comma operator")
	}
}

func TestInitLists(t *testing.T) {
	f := parse(t, `int lanes[4] = {1, 2, 0, 1}; struct p q = { 1, {2, 3} };`)
	il := f.Decls[0].(*ast.VarDecl).Init.(*ast.InitList)
	if len(il.Elems) != 4 {
		t.Errorf("lanes elems %d", len(il.Elems))
	}
	nested := f.Decls[1].(*ast.VarDecl).Init.(*ast.InitList)
	if _, ok := nested.Elems[1].(*ast.InitList); !ok {
		t.Error("nested init list")
	}
}

func TestArrayDecl(t *testing.T) {
	f := parse(t, `int grid[3][4]; char buf[];`)
	g := f.Decls[0].(*ast.VarDecl).T.(*types.Array)
	// int grid[3][4] parses as ((int grid[3])[4]) — C semantics are
	// grid : array 3 of array 4 of int; our declarator appends
	// suffixes left-to-right so outermost Len is 3.
	if g.Size() != 48 {
		t.Errorf("grid size %d (%v)", g.Size(), g)
	}
	b := f.Decls[1].(*ast.VarDecl).T.(*types.Array)
	if b.Len != -1 {
		t.Errorf("buf len %d", b.Len)
	}
}

func TestStringConcat(t *testing.T) {
	f := parse(t, `char *s = "a" "b" "c";`)
	sl := f.Decls[0].(*ast.VarDecl).Init.(*ast.StringLit)
	if sl.Value != "abc" {
		t.Errorf("value %q", sl.Value)
	}
}

func TestParseErrorsRecover(t *testing.T) {
	f, errs := ParseText("t.c", `
int ok1;
int @@@;
int ok2;
void g(void) { int x = ; x = 1; }
int ok3;
`)
	if len(errs) == 0 {
		t.Fatal("expected errors")
	}
	var names []string
	for _, d := range f.Decls {
		if vd, ok := d.(*ast.VarDecl); ok {
			names = append(names, vd.Name)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "ok1") || !strings.Contains(joined, "ok3") {
		t.Errorf("recovery lost decls: %v", names)
	}
}

func TestBitfieldDiagnosed(t *testing.T) {
	_, errs := ParseText("t.c", `struct s { int a : 3; };`)
	if len(errs) == 0 {
		t.Fatal("expected bitfield diagnostic")
	}
	if !strings.Contains(errs[0].Error(), "bitfield") {
		t.Errorf("got %v", errs[0])
	}
}

func TestWildcardParsing(t *testing.T) {
	ctx := PatternContext{Wildcards: map[string]string{"addr": "scalar", "buf": "scalar"}}
	s, err := ParseStmtPattern("MISCBUS_READ_DB(addr, buf);", ctx)
	if err != nil {
		t.Fatal(err)
	}
	call := s.(*ast.ExprStmt).X.(*ast.Call)
	if len(call.Args) != 2 {
		t.Fatalf("args %d", len(call.Args))
	}
	w0, ok := call.Args[0].(*ast.Wildcard)
	if !ok || w0.Name != "addr" || w0.Constraint != "scalar" {
		t.Errorf("arg0 %v", ast.ExprString(call.Args[0]))
	}
}

func TestPatternOmittedSemicolon(t *testing.T) {
	ctx := PatternContext{Wildcards: map[string]string{"x": ""}}
	if _, err := ParseStmtPattern("free_buffer(x)", ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPatternAssignToCall(t *testing.T) {
	// The msglen checker's pattern assigns through a macro call:
	// HANDLER_GLOBALS(header.nh.len) = LEN_NODATA. Our parser must
	// accept call-expression LHS (lenient lvalue rules).
	s, err := ParseStmtPattern("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;", PatternContext{})
	if err != nil {
		t.Fatal(err)
	}
	a := s.(*ast.ExprStmt).X.(*ast.Assign)
	if _, ok := a.LHS.(*ast.Call); !ok {
		t.Errorf("LHS %s", ast.ExprString(a.LHS))
	}
}

func TestDeclVsExprDisambiguation(t *testing.T) {
	f := parse(t, `
typedef int T;
void g(void) {
	T x;      /* decl */
	int y;
	T * y;    /* expression: T times y? no - T is typedef, T* y is decl of y */
	x = 2;
}
`)
	_ = f // primarily checks no parse error
}

func TestLabeledAndGoto(t *testing.T) {
	f := parse(t, `void g(int n) { top: if (n) goto top; }`)
	l := f.Funcs()[0].Body.Stmts[0].(*ast.Labeled)
	if l.Label != "top" {
		t.Errorf("label %q", l.Label)
	}
}

func TestFuncPos(t *testing.T) {
	f := parse(t, "int a;\nvoid g(void)\n{\nint x;\n}\n")
	fd := f.Funcs()[0]
	if fd.Pos().Line != 2 {
		t.Errorf("func pos %v", fd.Pos())
	}
	if fd.EndPos.Line != 5 {
		t.Errorf("end pos %v", fd.EndPos)
	}
}

// Property: ExprString of a parsed expression re-parses to the same
// rendering (idempotent round trip).
func TestExprRoundTripProperty(t *testing.T) {
	exprs := []string{
		"a + b * c",
		"f(x, y + 1)",
		"p->next->val",
		"a[i][j] = b ? c : d",
		"(a + b) << 2 | mask",
		"!done && count++ < limit",
		"*p++ = -x",
		"s.hdr.len = 0",
		"g(h(1), 'c', \"str\")",
		"~bits ^ (a % 3)",
	}
	f := func(idx uint8) bool {
		src := exprs[int(idx)%len(exprs)]
		e1, err := ParseExprPattern(src, PatternContext{})
		if err != nil {
			return false
		}
		r1 := ast.ExprString(e1)
		e2, err := ParseExprPattern(r1, PatternContext{})
		if err != nil {
			return false
		}
		return ast.ExprString(e2) == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: parser terminates without panicking on arbitrary input.
func TestParserNoCrashProperty(t *testing.T) {
	f := func(src string) bool {
		ParseText("fuzz.c", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
