// Package lexer converts preprocessed C source text into a stream of
// tokens. It understands all of ANSI C's lexical grammar used by FLASH
// protocol code: line and block comments, decimal/octal/hex integer
// literals with suffixes, floating literals, character and string
// literals with escapes, and every operator.
//
// The lexer never calls the preprocessor; package cpp runs first and
// hands the lexer a single logical file. Line markers of the form
//
//	# <line> "<file>"
//
// (emitted by cpp at include boundaries) are honoured so token
// positions refer to the original files.
package lexer

import (
	"fmt"
	"strings"

	"flashmc/internal/cc/token"
)

// Error is a lexical error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer tokenizes a single logical source buffer.
type Lexer struct {
	src  string
	off  int
	file string
	line int
	col  int

	errs []error
}

// New returns a Lexer for src. The file name seeds token positions and
// may be overridden by cpp line markers embedded in src.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	if len(l.errs) > 200 {
		return // bound error floods on binary/garbage input
	}
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpace consumes whitespace, comments, and cpp line markers.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		case c == '#' && l.col == 1:
			l.lineMarker()
		default:
			return
		}
	}
}

// lineMarker parses "# line "file"" directives emitted by cpp. Any
// other directive reaching the lexer is an error (cpp should have
// consumed it); it is reported and the line skipped.
func (l *Lexer) lineMarker() {
	pos := l.pos()
	start := l.off
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
	text := l.src[start:l.off]
	var lineNo int
	var file string
	n, _ := fmt.Sscanf(text, "# %d %q", &lineNo, &file)
	if n == 2 {
		l.file = file
		l.line = lineNo
		l.col = 1
		if l.off < len(l.src) {
			l.off++ // consume '\n' without bumping line (marker sets it)
		}
		return
	}
	l.errorf(pos, "unexpected preprocessor directive %q (cpp should have removed it)", strings.TrimSpace(text))
}

// Next returns the next token. At end of input it returns an EOF token
// forever.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.ident(pos)
	case isDigit(c):
		return l.number(pos)
	case c == '.' && isDigit(l.peek2()):
		return l.number(pos)
	case c == '\'':
		return l.charLit(pos)
	case c == '"':
		return l.stringLit(pos)
	default:
		return l.operator(pos)
	}
}

// All tokenizes the remaining input, always ending with an EOF token.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) ident(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isIdent(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	return token.Token{Kind: token.Lookup(text), Pos: pos, Text: text}
}

func (l *Lexer) number(pos token.Pos) token.Token {
	start := l.off
	kind := token.IntLit
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHex(l.peek()) {
			l.errorf(pos, "malformed hex literal")
		}
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			kind = token.FloatLit
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			next := l.peek2()
			if isDigit(next) || next == '+' || next == '-' {
				kind = token.FloatLit
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	// Suffixes: u/U/l/L for ints, f/F/l/L for floats.
	for l.off < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
			continue
		case 'f', 'F':
			if kind == token.FloatLit {
				l.advance()
				continue
			}
		}
		break
	}
	return token.Token{Kind: kind, Pos: pos, Text: l.src[start:l.off]}
}

func (l *Lexer) escape(pos token.Pos) {
	l.advance() // backslash
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated escape")
		return
	}
	c := l.advance()
	switch c {
	case 'n', 't', 'r', '0', '\\', '\'', '"', 'a', 'b', 'f', 'v', '?':
	case 'x':
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
	default:
		if c >= '1' && c <= '7' { // octal
			for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '7' {
				l.advance()
			}
		} else {
			l.errorf(pos, "unknown escape \\%c", c)
		}
	}
}

func (l *Lexer) charLit(pos token.Pos) token.Token {
	start := l.off
	l.advance() // opening quote
	for l.off < len(l.src) && l.peek() != '\'' && l.peek() != '\n' {
		if l.peek() == '\\' {
			l.escape(pos)
		} else {
			l.advance()
		}
	}
	if l.peek() != '\'' {
		l.errorf(pos, "unterminated character literal")
	} else {
		l.advance()
	}
	return token.Token{Kind: token.CharLit, Pos: pos, Text: l.src[start:l.off]}
}

func (l *Lexer) stringLit(pos token.Pos) token.Token {
	start := l.off
	l.advance() // opening quote
	for l.off < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
		if l.peek() == '\\' {
			l.escape(pos)
		} else {
			l.advance()
		}
	}
	if l.peek() != '"' {
		l.errorf(pos, "unterminated string literal")
	} else {
		l.advance()
	}
	return token.Token{Kind: token.StringLit, Pos: pos, Text: l.src[start:l.off]}
}

// operator tables, longest match first.
var ops3 = map[string]token.Kind{
	"<<=": token.ShlAssign,
	">>=": token.ShrAssign,
	"...": token.Ellipsis,
}

var ops2 = map[string]token.Kind{
	"->": token.Arrow,
	"++": token.Inc,
	"--": token.Dec,
	"<<": token.Shl,
	">>": token.Shr,
	"<=": token.LessEq,
	">=": token.GreaterEq,
	"==": token.Eq,
	"!=": token.NotEq,
	"&&": token.LogicalAnd,
	"||": token.LogicalOr,
	"+=": token.AddAssign,
	"-=": token.SubAssign,
	"*=": token.MulAssign,
	"/=": token.DivAssign,
	"%=": token.ModAssign,
	"&=": token.AndAssign,
	"|=": token.OrAssign,
	"^=": token.XorAssign,
}

var ops1 = map[byte]token.Kind{
	'(': token.LParen, ')': token.RParen,
	'{': token.LBrace, '}': token.RBrace,
	'[': token.LBracket, ']': token.RBracket,
	';': token.Semi, ',': token.Comma, '.': token.Dot,
	'=': token.Assign, '?': token.Question, ':': token.Colon,
	'|': token.BitOr, '^': token.BitXor, '&': token.BitAnd,
	'<': token.Less, '>': token.Greater,
	'+': token.Add, '-': token.Sub, '*': token.Star,
	'/': token.Div, '%': token.Mod,
	'!': token.Not, '~': token.Tilde,
}

func (l *Lexer) operator(pos token.Pos) token.Token {
	if l.off+3 <= len(l.src) {
		if k, ok := ops3[l.src[l.off:l.off+3]]; ok {
			text := l.src[l.off : l.off+3]
			l.advance()
			l.advance()
			l.advance()
			return token.Token{Kind: k, Pos: pos, Text: text}
		}
	}
	if l.off+2 <= len(l.src) {
		if k, ok := ops2[l.src[l.off:l.off+2]]; ok {
			text := l.src[l.off : l.off+2]
			l.advance()
			l.advance()
			return token.Token{Kind: k, Pos: pos, Text: text}
		}
	}
	c := l.advance()
	if k, ok := ops1[c]; ok {
		return token.Token{Kind: k, Pos: pos, Text: string(c)}
	}
	l.errorf(pos, "illegal character %q", c)
	// Return something the parser can resynchronize on.
	return token.Token{Kind: token.Semi, Pos: pos, Text: string(c)}
}
