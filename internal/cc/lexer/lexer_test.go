package lexer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"flashmc/internal/cc/token"
)

func kinds(src string) []token.Kind {
	l := New("t.c", src)
	var ks []token.Kind
	for _, t := range l.All() {
		ks = append(ks, t.Kind)
	}
	return ks
}

func TestBasicTokens(t *testing.T) {
	src := `int x = 42; /* block */ // line
char *p = "hi\n"; x += 0x1f;`
	want := []token.Kind{
		token.KwInt, token.Ident, token.Assign, token.IntLit, token.Semi,
		token.KwChar, token.Star, token.Ident, token.Assign, token.StringLit, token.Semi,
		token.Ident, token.AddAssign, token.IntLit, token.Semi,
		token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestOperatorsLongestMatch(t *testing.T) {
	cases := map[string]token.Kind{
		"<<=": token.ShlAssign,
		">>=": token.ShrAssign,
		"...": token.Ellipsis,
		"->":  token.Arrow,
		"++":  token.Inc,
		"--":  token.Dec,
		"==":  token.Eq,
		"!=":  token.NotEq,
		"&&":  token.LogicalAnd,
		"||":  token.LogicalOr,
		"<<":  token.Shl,
		">>":  token.Shr,
		"%=":  token.ModAssign,
		"^=":  token.XorAssign,
	}
	for src, want := range cases {
		got := kinds(src)
		if got[0] != want {
			t.Errorf("%q: got %v want %v", src, got[0], want)
		}
		if got[1] != token.EOF {
			t.Errorf("%q: expected single token, got %v", src, got)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"0", token.IntLit},
		{"123", token.IntLit},
		{"0x1F", token.IntLit},
		{"0xdeadBEEF", token.IntLit},
		{"077", token.IntLit},
		{"42u", token.IntLit},
		{"42UL", token.IntLit},
		{"1.5", token.FloatLit},
		{".5", token.FloatLit},
		{"1e10", token.FloatLit},
		{"1.5e-3", token.FloatLit},
		{"2.0f", token.FloatLit},
		{"3E+4", token.FloatLit},
	}
	for _, c := range cases {
		l := New("t.c", c.src)
		tok := l.Next()
		if tok.Kind != c.kind {
			t.Errorf("%q: got %v want %v", c.src, tok.Kind, c.kind)
		}
		if tok.Text != c.src {
			t.Errorf("%q: text %q", c.src, tok.Text)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("%q: unexpected errors %v", c.src, l.Errors())
		}
	}
}

func TestEnotFloatWithoutExponentDigits(t *testing.T) {
	// "1e" followed by an identifier char is int then ident ("1" "e").
	got := kinds("3ex")
	// 3 lexes as IntLit with (possibly empty) suffix scan; "ex" is ident.
	if got[0] != token.IntLit || got[1] != token.Ident {
		t.Errorf("got %v", got)
	}
}

func TestCharAndStringEscapes(t *testing.T) {
	cases := []string{`'a'`, `'\n'`, `'\0'`, `'\x1f'`, `'\\'`, `"abc"`, `"a\"b"`, `"\t\x41\101"`}
	for _, src := range cases {
		l := New("t.c", src)
		tok := l.Next()
		if tok.Text != src {
			t.Errorf("%q: got text %q", src, tok.Text)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("%q: errors %v", src, l.Errors())
		}
	}
}

func TestUnterminatedLiterals(t *testing.T) {
	for _, src := range []string{`"abc`, `'a`, "/* never closed"} {
		l := New("t.c", src)
		l.All()
		if len(l.Errors()) == 0 {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	src := "int\n  x;\n"
	l := New("f.c", src)
	toks := l.All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v", toks[1].Pos)
	}
	if toks[1].Pos.File != "f.c" {
		t.Errorf("file %q", toks[1].Pos.File)
	}
}

func TestLineMarkers(t *testing.T) {
	src := "# 10 \"inc.h\"\nint x;\n# 3 \"main.c\"\nint y;\n"
	l := New("t.c", src)
	toks := l.All()
	if toks[0].Pos.File != "inc.h" || toks[0].Pos.Line != 10 {
		t.Errorf("x decl at %v", toks[0].Pos)
	}
	if toks[3].Pos.File != "main.c" || toks[3].Pos.Line != 3 {
		t.Errorf("y decl at %v", toks[3].Pos)
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	got := kinds("while whiles struct structx if iffy")
	want := []token.Kind{token.KwWhile, token.Ident, token.KwStruct,
		token.Ident, token.KwIf, token.Ident, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("t.c", "int @ x;")
	l.All()
	if len(l.Errors()) == 0 {
		t.Fatal("expected illegal character error")
	}
	if !strings.Contains(l.Errors()[0].Error(), "illegal character") {
		t.Errorf("got %v", l.Errors()[0])
	}
}

// Property: lexing the concatenation of token texts separated by spaces
// reproduces the token kinds (round-trip stability).
func TestRoundTripProperty(t *testing.T) {
	vocab := []string{"x", "y0", "_tmp", "42", "0x1f", "1.5", "'c'",
		`"s"`, "+", "-", "*", "/", "==", "<=", "<<=", "->", "++", "while",
		"if", "struct", "(", ")", "{", "}", ";", ",", "...", "&&", "||"}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		var parts []string
		for i := 0; i < count; i++ {
			parts = append(parts, vocab[rng.Intn(len(vocab))])
		}
		src := strings.Join(parts, " ")
		l1 := New("a.c", src)
		toks := l1.All()
		if len(l1.Errors()) != 0 {
			return false
		}
		if len(toks) != count+1 {
			return false
		}
		// Re-lex from spellings.
		var spell []string
		for _, tok := range toks[:len(toks)-1] {
			spell = append(spell, tok.Text)
		}
		l2 := New("b.c", strings.Join(spell, " "))
		toks2 := l2.All()
		if len(toks2) != len(toks) {
			return false
		}
		for i := range toks {
			if toks[i].Kind != toks2[i].Kind || toks[i].Text != toks2[i].Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the lexer terminates and never panics on arbitrary input.
func TestNoCrashProperty(t *testing.T) {
	f := func(src string) bool {
		l := New("fuzz.c", src)
		toks := l.All()
		return toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCommentsDoNotNest(t *testing.T) {
	got := kinds("a /* x /* y */ b")
	want := []token.Kind{token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}
