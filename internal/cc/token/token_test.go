package token

import "testing"

func TestLookup(t *testing.T) {
	if Lookup("while") != KwWhile {
		t.Error("while")
	}
	if Lookup("whileX") != Ident {
		t.Error("whileX")
	}
	if Lookup("") != Ident {
		t.Error("empty")
	}
}

func TestKeywordRange(t *testing.T) {
	for k := KwAuto; k <= KwWhile; k++ {
		if !k.IsKeyword() {
			t.Errorf("%v not keyword", k)
		}
		if Lookup(k.String()) != k {
			t.Errorf("Lookup(%q) != %v", k.String(), k)
		}
	}
	if Ident.IsKeyword() || Add.IsKeyword() {
		t.Error("non-keywords report as keywords")
	}
}

func TestIsAssign(t *testing.T) {
	for k := Assign; k <= ShrAssign; k++ {
		if !k.IsAssign() {
			t.Errorf("%v not assign", k)
		}
	}
	if Eq.IsAssign() || Add.IsAssign() {
		t.Error("non-assign ops report as assign")
	}
}

func TestIsTypeStart(t *testing.T) {
	for _, k := range []Kind{KwVoid, KwChar, KwInt, KwUnsigned, KwStruct, KwEnum, KwConst} {
		if !k.IsTypeStart() {
			t.Errorf("%v not type start", k)
		}
	}
	for _, k := range []Kind{KwReturn, Ident, KwIf, KwTypedef} {
		if k.IsTypeStart() {
			t.Errorf("%v is type start", k)
		}
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "f.c", Line: 3, Col: 7}
	if p.String() != "f.c:3:7" {
		t.Errorf("%q", p.String())
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos valid")
	}
	if (Pos{}).String() != "-" {
		t.Errorf("%q", (Pos{}).String())
	}
	noFile := Pos{Line: 2, Col: 1}
	if noFile.String() != "2:1" {
		t.Errorf("%q", noFile.String())
	}
}

func TestKindStrings(t *testing.T) {
	if Arrow.String() != "->" || Ellipsis.String() != "..." || ShlAssign.String() != "<<=" {
		t.Error("operator spellings")
	}
	if Ident.String() != "identifier" {
		t.Error("ident name")
	}
	if Kind(9999).String() == "" {
		t.Error("out-of-range kind")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Text: "foo"}
	if tok.String() != `identifier "foo"` {
		t.Errorf("%q", tok.String())
	}
	op := Token{Kind: Add, Text: "+"}
	if op.String() != "+" {
		t.Errorf("%q", op.String())
	}
}
