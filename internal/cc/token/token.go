// Package token defines the lexical tokens of the protocol-C subset
// understood by the flashmc frontend, along with source positions.
//
// The token vocabulary covers ANSI C as used by FLASH protocol code:
// all operators and punctuation, keywords, identifiers, and integer,
// floating, character and string literals. The preprocessor directives
// are not tokens; they are handled textually by package cpp before the
// lexer output reaches the parser.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The operator block is ordered so that related operators
// are adjacent; the parser relies only on identity, never on ordering.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Ellipsis // ...

	Assign     // =
	AddAssign  // +=
	SubAssign  // -=
	MulAssign  // *=
	DivAssign  // /=
	ModAssign  // %=
	AndAssign  // &=
	OrAssign   // |=
	XorAssign  // ^=
	ShlAssign  // <<=
	ShrAssign  // >>=
	Question   // ?
	Colon      // :
	LogicalOr  // ||
	LogicalAnd // &&
	BitOr      // |
	BitXor     // ^
	BitAnd     // &
	Eq         // ==
	NotEq      // !=
	Less       // <
	Greater    // >
	LessEq     // <=
	GreaterEq  // >=
	Shl        // <<
	Shr        // >>
	Add        // +
	Sub        // -
	Star       // *
	Div        // /
	Mod        // %
	Not        // !
	Tilde      // ~
	Inc        // ++
	Dec        // --

	// Keywords.
	KwAuto
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFloat
	KwFor
	KwGoto
	KwIf
	KwInline
	KwInt
	KwLong
	KwRegister
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwVolatile
	KwWhile

	numKinds
)

var kindNames = [...]string{
	EOF:       "EOF",
	Ident:     "identifier",
	IntLit:    "integer literal",
	FloatLit:  "float literal",
	CharLit:   "char literal",
	StringLit: "string literal",

	LParen:   "(",
	RParen:   ")",
	LBrace:   "{",
	RBrace:   "}",
	LBracket: "[",
	RBracket: "]",
	Semi:     ";",
	Comma:    ",",
	Dot:      ".",
	Arrow:    "->",
	Ellipsis: "...",

	Assign:     "=",
	AddAssign:  "+=",
	SubAssign:  "-=",
	MulAssign:  "*=",
	DivAssign:  "/=",
	ModAssign:  "%=",
	AndAssign:  "&=",
	OrAssign:   "|=",
	XorAssign:  "^=",
	ShlAssign:  "<<=",
	ShrAssign:  ">>=",
	Question:   "?",
	Colon:      ":",
	LogicalOr:  "||",
	LogicalAnd: "&&",
	BitOr:      "|",
	BitXor:     "^",
	BitAnd:     "&",
	Eq:         "==",
	NotEq:      "!=",
	Less:       "<",
	Greater:    ">",
	LessEq:     "<=",
	GreaterEq:  ">=",
	Shl:        "<<",
	Shr:        ">>",
	Add:        "+",
	Sub:        "-",
	Star:       "*",
	Div:        "/",
	Mod:        "%",
	Not:        "!",
	Tilde:      "~",
	Inc:        "++",
	Dec:        "--",

	KwAuto:     "auto",
	KwBreak:    "break",
	KwCase:     "case",
	KwChar:     "char",
	KwConst:    "const",
	KwContinue: "continue",
	KwDefault:  "default",
	KwDo:       "do",
	KwDouble:   "double",
	KwElse:     "else",
	KwEnum:     "enum",
	KwExtern:   "extern",
	KwFloat:    "float",
	KwFor:      "for",
	KwGoto:     "goto",
	KwIf:       "if",
	KwInline:   "inline",
	KwInt:      "int",
	KwLong:     "long",
	KwRegister: "register",
	KwReturn:   "return",
	KwShort:    "short",
	KwSigned:   "signed",
	KwSizeof:   "sizeof",
	KwStatic:   "static",
	KwStruct:   "struct",
	KwSwitch:   "switch",
	KwTypedef:  "typedef",
	KwUnion:    "union",
	KwUnsigned: "unsigned",
	KwVoid:     "void",
	KwVolatile: "volatile",
	KwWhile:    "while",
}

// String returns the canonical spelling of the kind ("+=", "while") or
// a descriptive name for variable-spelling classes ("identifier").
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) || kindNames[k] == "" {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// keywords maps keyword spellings to their token kinds.
var keywords = map[string]Kind{}

func init() {
	for k := KwAuto; k <= KwWhile; k++ {
		keywords[kindNames[k]] = k
	}
}

// Lookup returns the keyword kind for an identifier spelling, or Ident
// if the spelling is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether k is a C keyword.
func (k Kind) IsKeyword() bool { return k >= KwAuto && k <= KwWhile }

// IsAssign reports whether k is an assignment operator (= and the
// compound assignments).
func (k Kind) IsAssign() bool { return k >= Assign && k <= ShrAssign }

// IsTypeStart reports whether k can begin a type specifier. Typedef
// names also begin types but are Ident tokens; the parser resolves
// those against its symbol table.
func (k Kind) IsTypeStart() bool {
	switch k {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwStruct, KwUnion, KwEnum, KwConst,
		KwVolatile:
		return true
	}
	return false
}

// Pos is a source position. Positions compare meaningfully only within
// one logical translation unit. The zero Pos is "no position".
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// IsValid reports whether the position carries location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token with its position and spelling.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // raw spelling as it appeared in the source
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, FloatLit, CharLit, StringLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
