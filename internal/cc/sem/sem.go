// Package sem performs name resolution and expression typing over
// protocol-C ASTs. It is deliberately lenient in the way the paper's
// xg++ had to be: undeclared identifiers (macros kept unexpanded,
// externs declared in headers not in the compile set) are given type
// int with a warning rather than an error, and call expressions may
// appear as assignment targets (FLASH macro idioms like
// HANDLER_GLOBALS(f) = v).
//
// The results feed three consumers: the metal "scalar"/"unsigned"
// wildcard constraints, the no-float execution restriction (paper §8),
// and the no-stack size checks.
package sem

import (
	"fmt"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cc/types"
)

// Warning is a non-fatal semantic diagnostic.
type Warning struct {
	Pos token.Pos
	Msg string
}

func (w *Warning) Error() string { return fmt.Sprintf("%s: warning: %s", w.Pos, w.Msg) }

// Env accumulates cross-file symbol information for one protocol
// (globals and function signatures from headers and earlier files).
type Env struct {
	Globals    map[string]types.Type
	Funcs      map[string]*types.Func
	EnumConsts map[string]int64
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{
		Globals:    make(map[string]types.Type),
		Funcs:      make(map[string]*types.Func),
		EnumConsts: make(map[string]int64),
	}
}

// Checker types one file against an Env.
type Checker struct {
	env      *Env
	scopes   []map[string]types.Type
	warnings []error

	// WarnUndeclared controls whether unknown identifiers produce
	// warnings (off for pattern fragments).
	WarnUndeclared bool
}

// NewChecker returns a Checker over env.
func NewChecker(env *Env) *Checker {
	return &Checker{env: env, WarnUndeclared: true}
}

// Warnings returns diagnostics accumulated across Check calls.
func (c *Checker) Warnings() []error { return c.warnings }

func (c *Checker) warnf(pos token.Pos, format string, args ...any) {
	if len(c.warnings) > 500 {
		return
	}
	c.warnings = append(c.warnings, &Warning{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Check resolves and types every declaration in f, updating the Env
// with globals and function signatures as it goes.
func (c *Checker) Check(f *ast.File) {
	// First pass: register all top-level names (headers declare
	// prototypes after use sites in some protocol files).
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *ast.VarDecl:
			c.env.Globals[x.Name] = x.T
		case *ast.FuncDecl:
			ft := &types.Func{Ret: x.Ret, Variadic: x.Variadic}
			for _, p := range x.Params {
				ft.Params = append(ft.Params, p.T)
			}
			c.env.Funcs[x.Name] = ft
		}
	}
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *ast.VarDecl:
			if x.Init != nil {
				c.expr(x.Init)
			}
		case *ast.FuncDecl:
			if x.Body == nil {
				continue
			}
			c.push()
			for _, p := range x.Params {
				c.declare(p.Name, p.T)
			}
			c.stmt(x.Body)
			c.pop()
		}
	}
}

func (c *Checker) push() { c.scopes = append(c.scopes, map[string]types.Type{}) }
func (c *Checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *Checker) declare(name string, t types.Type) {
	if len(c.scopes) == 0 {
		c.push()
	}
	c.scopes[len(c.scopes)-1][name] = t
}

// lookup resolves a name through local scopes, globals, functions and
// enum constants.
func (c *Checker) lookup(name string) (types.Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	if t, ok := c.env.Globals[name]; ok {
		return t, true
	}
	if ft, ok := c.env.Funcs[name]; ok {
		return ft, true
	}
	if _, ok := c.env.EnumConsts[name]; ok {
		return types.IntType, true
	}
	return nil, false
}

func (c *Checker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		c.expr(x.X)
	case *ast.DeclStmt:
		if x.Decl.Init != nil {
			c.expr(x.Decl.Init)
		}
		c.declare(x.Decl.Name, x.Decl.T)
	case *ast.Block:
		c.push()
		for _, st := range x.Stmts {
			c.stmt(st)
		}
		c.pop()
	case *ast.If:
		c.expr(x.Cond)
		c.stmt(x.Then)
		c.stmt(x.Else)
	case *ast.While:
		c.expr(x.Cond)
		c.stmt(x.Body)
	case *ast.DoWhile:
		c.stmt(x.Body)
		c.expr(x.Cond)
	case *ast.For:
		c.push()
		c.stmt(x.Init)
		if x.Cond != nil {
			c.expr(x.Cond)
		}
		if x.Post != nil {
			c.expr(x.Post)
		}
		c.stmt(x.Body)
		c.pop()
	case *ast.Switch:
		c.expr(x.Tag)
		c.stmt(x.Body)
	case *ast.Case:
		if x.Value != nil {
			c.expr(x.Value)
		}
	case *ast.Return:
		if x.X != nil {
			c.expr(x.X)
		}
	case *ast.Labeled:
		c.stmt(x.Stmt)
	}
}

// expr types e, records the type on the node, and returns it.
func (c *Checker) expr(e ast.Expr) types.Type {
	t := c.exprType(e)
	if t == nil {
		t = types.IntType
	}
	if typed, ok := e.(ast.Typed); ok {
		typed.SetType(t)
	}
	return t
}

func (c *Checker) exprType(e ast.Expr) types.Type {
	switch x := e.(type) {
	case nil:
		return types.IntType
	case *ast.Ident:
		if t, ok := c.lookup(x.Name); ok {
			return t
		}
		if c.WarnUndeclared {
			c.warnf(x.Pos(), "undeclared identifier %q (assuming int)", x.Name)
		}
		return types.IntType
	case *ast.IntLit:
		return types.IntType
	case *ast.FloatLit:
		return types.DoubleType
	case *ast.CharLit:
		return types.CharType
	case *ast.StringLit:
		return &types.Pointer{Elem: types.CharType}
	case *ast.Paren:
		return c.expr(x.X)
	case *ast.Unary:
		xt := c.expr(x.X)
		switch x.Op {
		case token.Star:
			if p, ok := types.Unwrap(xt).(*types.Pointer); ok {
				return p.Elem
			}
			if a, ok := types.Unwrap(xt).(*types.Array); ok {
				return a.Elem
			}
			c.warnf(x.Pos(), "dereference of non-pointer %v", xt)
			return types.IntType
		case token.BitAnd:
			return &types.Pointer{Elem: xt}
		case token.Not:
			return types.IntType
		default:
			return xt
		}
	case *ast.Binary:
		xt := c.expr(x.X)
		yt := c.expr(x.Y)
		switch x.Op {
		case token.LogicalAnd, token.LogicalOr, token.Eq, token.NotEq,
			token.Less, token.Greater, token.LessEq, token.GreaterEq:
			return types.IntType
		case token.Comma:
			return yt
		default:
			return types.Promote(xt, yt)
		}
	case *ast.Assign:
		lt := c.expr(x.LHS)
		c.expr(x.RHS)
		return lt
	case *ast.Cond:
		c.expr(x.C)
		tt := c.expr(x.Then)
		et := c.expr(x.Else)
		return types.Promote(tt, et)
	case *ast.Call:
		for _, a := range x.Args {
			c.expr(a)
		}
		if id, ok := x.Fun.(*ast.Ident); ok {
			if ft, ok := c.env.Funcs[id.Name]; ok {
				if typed, ok2 := x.Fun.(ast.Typed); ok2 {
					typed.SetType(ft)
				}
				return ft.Ret
			}
			// Unexpanded FLASH macro or undeclared function: assume a
			// function returning int (the paper's leniency).
			if typed, ok2 := x.Fun.(ast.Typed); ok2 {
				typed.SetType(&types.Func{Ret: types.IntType})
			}
			return types.IntType
		}
		ft := c.expr(x.Fun)
		if f, ok := types.Unwrap(ft).(*types.Func); ok {
			return f.Ret
		}
		return types.IntType
	case *ast.Index:
		xt := c.expr(x.X)
		c.expr(x.Idx)
		switch u := types.Unwrap(xt).(type) {
		case *types.Array:
			return u.Elem
		case *types.Pointer:
			return u.Elem
		}
		return types.IntType
	case *ast.Member:
		xt := c.expr(x.X)
		base := types.Unwrap(xt)
		if x.Arrow {
			if p, ok := base.(*types.Pointer); ok {
				base = types.Unwrap(p.Elem)
			}
		}
		if st, ok := base.(*types.Struct); ok {
			if f := st.Find(x.Name); f != nil {
				return f.T
			}
			c.warnf(x.Pos(), "no field %q in %v", x.Name, st)
		}
		return types.IntType
	case *ast.Cast:
		c.expr(x.X)
		return x.To
	case *ast.SizeofExpr:
		c.expr(x.X)
		return types.UIntType
	case *ast.SizeofType:
		return types.UIntType
	case *ast.InitList:
		for _, el := range x.Elems {
			c.expr(el)
		}
		return types.IntType
	case *ast.Wildcard:
		return types.IntType
	}
	return types.IntType
}
