package sem

import (
	"strings"
	"testing"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/parser"
	"flashmc/internal/cc/types"
)

func checkSrc(t *testing.T, src string) (*ast.File, *Checker) {
	t.Helper()
	f, errs := parser.ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	c := NewChecker(NewEnv())
	c.Check(f)
	return f, c
}

// exprOfLastStmt digs the expression out of the last statement of the
// first function.
func exprOfLastStmt(f *ast.File) ast.Expr {
	body := f.Funcs()[0].Body
	last := body.Stmts[len(body.Stmts)-1]
	return last.(*ast.ExprStmt).X
}

func TestLocalTyping(t *testing.T) {
	f, _ := checkSrc(t, `
void g(void) {
	unsigned u;
	int i;
	u + i;
}`)
	e := exprOfLastStmt(f)
	if !types.IsUnsigned(e.Type()) {
		t.Errorf("u+i type %v", e.Type())
	}
}

func TestFloatDetection(t *testing.T) {
	f, _ := checkSrc(t, `
void g(void) {
	double d;
	int i;
	d * i;
}`)
	e := exprOfLastStmt(f)
	if !types.IsFloat(e.Type()) {
		t.Errorf("d*i type %v", e.Type())
	}
}

func TestStructMemberTyping(t *testing.T) {
	f, _ := checkSrc(t, `
struct hdr { unsigned len; struct hdr *next; };
void g(struct hdr *h) {
	h->next->len;
}`)
	e := exprOfLastStmt(f)
	if !types.IsUnsigned(e.Type()) {
		t.Errorf("h->next->len type %v", e.Type())
	}
}

func TestArrayIndexTyping(t *testing.T) {
	f, _ := checkSrc(t, `
float samples[8];
void g(int i) {
	samples[i];
}`)
	e := exprOfLastStmt(f)
	if !types.IsFloat(e.Type()) {
		t.Errorf("samples[i] type %v", e.Type())
	}
}

func TestFunctionReturnTyping(t *testing.T) {
	f, _ := checkSrc(t, `
unsigned long get_addr(void);
void g(void) {
	get_addr();
}`)
	e := exprOfLastStmt(f)
	if !types.Equal(e.Type(), types.ULongType) {
		t.Errorf("call type %v", e.Type())
	}
}

func TestUndeclaredWarnsAndDefaultsToInt(t *testing.T) {
	f, c := checkSrc(t, `
void g(void) {
	MYSTERY_MACRO(1, 2);
}`)
	e := exprOfLastStmt(f)
	if !types.IsInteger(e.Type()) {
		t.Errorf("macro call type %v", e.Type())
	}
	// The callee identifier itself warns.
	found := false
	for _, w := range c.Warnings() {
		if strings.Contains(w.Error(), "MYSTERY_MACRO") {
			found = true
		}
	}
	// Call through unknown ident is treated as implicit function, not
	// a warning on the name.
	_ = found
}

func TestComparisonIsInt(t *testing.T) {
	f, _ := checkSrc(t, `
void g(void) {
	double a;
	double b;
	a < b;
}`)
	e := exprOfLastStmt(f)
	if types.IsFloat(e.Type()) {
		t.Errorf("a<b type %v", e.Type())
	}
}

func TestPointerDerefTyping(t *testing.T) {
	f, _ := checkSrc(t, `
void g(unsigned *p) {
	*p;
}`)
	e := exprOfLastStmt(f)
	if !types.IsUnsigned(e.Type()) {
		t.Errorf("*p type %v", e.Type())
	}
}

func TestAddressOfTyping(t *testing.T) {
	f, _ := checkSrc(t, `
void g(void) {
	int x;
	&x;
}`)
	e := exprOfLastStmt(f)
	if !types.IsPointer(e.Type()) {
		t.Errorf("&x type %v", e.Type())
	}
}

func TestCastTyping(t *testing.T) {
	f, _ := checkSrc(t, `
void g(int x) {
	(float) x;
}`)
	e := exprOfLastStmt(f)
	if !types.IsFloat(e.Type()) {
		t.Errorf("(float)x type %v", e.Type())
	}
}

func TestScopesShadow(t *testing.T) {
	f, _ := checkSrc(t, `
void g(void) {
	int x;
	{
		double x;
		x;
	}
	x;
}`)
	body := f.Funcs()[0].Body
	inner := body.Stmts[1].(*ast.Block).Stmts[1].(*ast.ExprStmt).X
	if !types.IsFloat(inner.Type()) {
		t.Errorf("inner x type %v", inner.Type())
	}
	outer := body.Stmts[2].(*ast.ExprStmt).X
	if types.IsFloat(outer.Type()) {
		t.Errorf("outer x type %v", outer.Type())
	}
}

func TestEnumConstTyping(t *testing.T) {
	env := NewEnv()
	env.EnumConsts["LEN_WORD"] = 4
	f, errs := parser.ParseText("t.c", `void g(void) { LEN_WORD; }`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	c := NewChecker(env)
	c.Check(f)
	e := exprOfLastStmt(f)
	if !types.IsInteger(e.Type()) {
		t.Errorf("enum const type %v", e.Type())
	}
	if len(c.Warnings()) != 0 {
		t.Errorf("warnings %v", c.Warnings())
	}
}

func TestCrossFileEnv(t *testing.T) {
	env := NewEnv()
	c := NewChecker(env)
	f1, _ := parser.ParseText("a.c", `unsigned long global_dir;`)
	c.Check(f1)
	f2, errs := parser.ParseText("b.c", `void g(void) { global_dir; }`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	c.Check(f2)
	e := exprOfLastStmt(f2)
	if !types.Equal(e.Type(), types.ULongType) {
		t.Errorf("global type %v", e.Type())
	}
}

func TestContainsFloatStruct(t *testing.T) {
	f, _ := checkSrc(t, `
struct v { int a; float f; };
struct v vec;
void g(void) {
	vec;
}`)
	e := exprOfLastStmt(f)
	if !types.ContainsFloat(e.Type()) {
		t.Errorf("struct with float member: ContainsFloat false")
	}
	if types.IsFloat(e.Type()) {
		t.Errorf("struct itself reported as float scalar")
	}
}
