package flashsim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/core"
	"flashmc/internal/flash"
)

// exprNode is a tiny random expression tree mirrored in Go so the
// interpreter's arithmetic can be checked against the host language.
type exprNode struct {
	op   string // "a","b","c", "lit", or an operator
	lit  int64
	l, r *exprNode
}

var binOps = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">", "<=", ">="}

func genExpr(rng *rand.Rand, depth int) *exprNode {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &exprNode{op: "a"}
		case 1:
			return &exprNode{op: "b"}
		case 2:
			return &exprNode{op: "c"}
		default:
			return &exprNode{op: "lit", lit: int64(rng.Intn(31))}
		}
	}
	return &exprNode{
		op: binOps[rng.Intn(len(binOps))],
		l:  genExpr(rng, depth-1),
		r:  genExpr(rng, depth-1),
	}
}

func (e *exprNode) render() string {
	switch e.op {
	case "a", "b", "c":
		return e.op
	case "lit":
		return fmt.Sprint(e.lit)
	}
	return "(" + e.l.render() + " " + e.op + " " + e.r.render() + ")"
}

func (e *exprNode) eval(a, b, c int64) int64 {
	switch e.op {
	case "a":
		return a
	case "b":
		return b
	case "c":
		return c
	case "lit":
		return e.lit
	}
	l, r := e.l.eval(a, b, c), e.r.eval(a, b, c)
	btoi := func(x bool) int64 {
		if x {
			return 1
		}
		return 0
	}
	switch e.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		if r == 0 {
			return 0
		}
		return l / r
	case "%":
		if r == 0 {
			return 0
		}
		return l % r
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<<":
		return l << (uint64(r) & 63)
	case ">>":
		return l >> (uint64(r) & 63)
	case "==":
		return btoi(l == r)
	case "!=":
		return btoi(l != r)
	case "<":
		return btoi(l < r)
	case ">":
		return btoi(l > r)
	case "<=":
		return btoi(l <= r)
	case ">=":
		return btoi(l >= r)
	}
	return 0
}

// TestInterpArithmeticProperty drives random expressions through the
// interpreter and compares against the Go mirror: the handler double
// frees iff the computed value disagrees.
func TestInterpArithmeticProperty(t *testing.T) {
	f := func(seed int64, a8, b8, c8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		a, b, c := int64(a8%32), int64(b8%32)+1, int64(c8%32)
		want := e.eval(a, b, c)

		body := fmt.Sprintf(`
void h_prop(void) {
	long a;
	long b;
	long c;
	long got;
	a = %d;
	b = %d;
	c = %d;
	got = %s;
	if (got != %d) {
		DEC_DB_REF(0);
		DEC_DB_REF(0); /* mismatch marker */
		return;
	}
	DEC_DB_REF(0);
}`, a, b, c, e.render(), want)

		src := cpp.MapSource{
			"flash-includes.h": flash.IncludesH,
			"p.c":              "#include \"flash-includes.h\"\n" + body,
		}
		prog, err := core.Load("prop", src, []string{"p.c"})
		if err != nil || len(prog.ParseErrors) != 0 {
			t.Logf("expr %s: load failed", e.render())
			return false
		}
		spec := &flash.Spec{Hardware: []string{"h_prop"},
			Allowance: map[string]flash.LaneVector{"h_prop": {4, 4, 4, 4}}}
		m := NewMachine(prog, spec, 1)
		findings, err := m.RunHandler("h_prop")
		if err != nil {
			t.Logf("expr %s: %v", e.render(), err)
			return false
		}
		if len(findings) != 0 {
			t.Logf("expr %s with a=%d b=%d c=%d: interpreter disagrees with Go (want %d)",
				e.render(), a, b, c, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMachineDeterministic verifies identical seeds give identical
// findings across repeated campaigns.
func TestMachineDeterministic(t *testing.T) {
	body := `
void h_mix(void) {
	unsigned t0;
	if (t0 > 2) {
		DEC_DB_REF(0);
	}
	DEC_DB_REF(0);
}`
	p, spec := loadSim(t, body)
	run := func() string {
		m := NewMachine(p, spec, 42)
		out := ""
		for i := 0; i < 30; i++ {
			fs, err := m.RunHandler("h_mix")
			if err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprint(len(fs))
		}
		return out
	}
	if run() != run() {
		t.Error("same seed produced different campaigns")
	}
}

// TestShortCircuitEvaluation verifies && / || do not evaluate their
// right operands when short-circuited (observable through macro side
// effects).
func TestShortCircuitEvaluation(t *testing.T) {
	body := `
void h_sc(void) {
	unsigned zero;
	unsigned one;
	zero = 0;
	one = 1;
	if (zero && MISCBUS_READ_DB(0, 0)) {
		zero = 2;
	}
	if (one || MISCBUS_READ_DB(0, 0)) {
		one = 2;
	}
	DEC_DB_REF(0);
}`
	// The reads are unsynchronized; if either executed, we'd get an
	// unsync-read finding.
	if f := runOnce(t, body, "h_sc", 1); len(f) != 0 {
		t.Fatalf("short-circuit broken: %s", kinds(f))
	}
}

// TestCompoundAssignOps checks the compound assignment operators the
// corpus's filler uses.
func TestCompoundAssignOps(t *testing.T) {
	body := `
void h_ca(void) {
	long v;
	v = 10;
	v += 5;
	v -= 3;
	v *= 2;
	v /= 4;   /* 24/4 = 6 */
	v <<= 2;  /* 24 */
	v >>= 1;  /* 12 */
	v |= 1;   /* 13 */
	v &= 14;  /* 12 */
	v ^= 5;   /* 9 */
	v %= 4;   /* 1 */
	if (v != 1) {
		DEC_DB_REF(0);
		DEC_DB_REF(0);
		return;
	}
	DEC_DB_REF(0);
}`
	if f := runOnce(t, body, "h_ca", 1); len(f) != 0 {
		t.Fatalf("compound assignment broken: %s", kinds(f))
	}
}

// TestIncDecSemantics checks pre/post increment value semantics.
func TestIncDecSemantics(t *testing.T) {
	body := `
void h_id(void) {
	long v;
	long got;
	v = 5;
	got = v++;
	if (got != 5 || v != 6) { DEC_DB_REF(0); DEC_DB_REF(0); return; }
	got = ++v;
	if (got != 7 || v != 7) { DEC_DB_REF(0); DEC_DB_REF(0); return; }
	got = v--;
	if (got != 7 || v != 6) { DEC_DB_REF(0); DEC_DB_REF(0); return; }
	got = --v;
	if (got != 5 || v != 5) { DEC_DB_REF(0); DEC_DB_REF(0); return; }
	DEC_DB_REF(0);
}`
	if f := runOnce(t, body, "h_id", 1); len(f) != 0 {
		t.Fatalf("inc/dec broken: %s", kinds(f))
	}
}

// TestTernaryAndComma checks the remaining expression forms.
func TestTernaryAndComma(t *testing.T) {
	body := `
void h_tc(void) {
	long v;
	long w;
	v = 1 ? 10 : 20;
	w = (v = v + 1, v * 2);
	if (v != 11 || w != 22) {
		DEC_DB_REF(0);
		DEC_DB_REF(0);
		return;
	}
	DEC_DB_REF(0);
}`
	if f := runOnce(t, body, "h_tc", 1); len(f) != 0 {
		t.Fatalf("ternary/comma broken: %s", kinds(f))
	}
}
