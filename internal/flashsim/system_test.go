package flashsim

import (
	"testing"

	"flashmc/internal/core"
	"flashmc/internal/flashgen"
)

// loadSci loads the generated sci protocol (it contains the seeded
// rare-path buffer leak) and returns the program plus the name of the
// leaking handler, located via the ground-truth manifest.
func loadSci(t *testing.T) (*core.Program, *flashgen.Protocol, string) {
	t.Helper()
	gen := flashgen.Generate(flashgen.Options{Seed: 1})
	p := gen.Protocol("sci")
	prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Manifest {
		if s.Checker == "buffer_mgmt" && s.Class == flashgen.ClassError &&
			s.Note == "buffer leak in in-progress code" {
			for _, fn := range prog.Fns {
				if fn.Pos().File == s.File && fn.Pos().Line <= s.Line && s.Line <= fn.EndPos.Line {
					return prog, p, fn.Name
				}
			}
		}
	}
	t.Fatal("sci leak handler not found in manifest")
	return nil, nil, ""
}

// TestLowGradeLeakDeadlocksEventually reproduces the paper's §6
// phenomenon: the leak fires only on a rare path, so the system
// survives hundreds of activations before its buffer pools drain and
// it deadlocks — the scaled-down version of "only deadlocks the
// system after several days".
func TestLowGradeLeakDeadlocksEventually(t *testing.T) {
	prog, p, leaky := loadSci(t)
	sys := NewSystem(prog, p.Spec, []string{leaky}, 3)
	res := sys.Run(20000)
	if !res.Deadlocked {
		t.Fatalf("leaky system never deadlocked: %s", res)
	}
	// The pool is 4 nodes x 8 buffers = 32; with the ~1-in-7 leak rate
	// deadlock needs well over 32 activations (low-grade), but must
	// arrive well before the budget.
	if res.DeadlockActivation < 50 {
		t.Errorf("deadlock too fast (%s) — the leak is not low-grade", res)
	}
	if res.Leaks != sys.Nodes*sys.BuffersPerNode {
		t.Errorf("leak count %d != pool size %d at deadlock", res.Leaks, sys.Nodes*sys.BuffersPerNode)
	}
	t.Logf("sci leaky handler: %s", res)
}

// TestCleanHandlersNeverDeadlock runs the same system over handlers
// with no seeded buffer bugs: the pools must never drain.
func TestCleanHandlersNeverDeadlock(t *testing.T) {
	prog, p, leaky := loadSci(t)
	var clean []string
	for _, h := range p.Spec.Hardware {
		if h == leaky || prog.Fn(h) == nil {
			continue
		}
		// Skip all seeded buffer-management shapes; "h_miss" is the
		// clean-handler prefix.
		if len(h) >= 6 && h[:6] == "h_miss" {
			clean = append(clean, h)
		}
		if len(clean) == 10 {
			break
		}
	}
	if len(clean) < 3 {
		t.Fatal("not enough clean handlers")
	}
	sys := NewSystem(prog, p.Spec, clean, 4)
	res := sys.Run(5000)
	if res.Deadlocked {
		t.Fatalf("clean system deadlocked: %s", res)
	}
	if res.Leaks != 0 || res.Corruptions != 0 {
		t.Errorf("clean system misbehaved: %s", res)
	}
}

// TestDoubleFreeCorruptionCounted verifies the corruption channel: a
// double-freeing handler never deadlocks the system (buffers are not
// lost) but racks up corruption events.
func TestDoubleFreeCorruptionCounted(t *testing.T) {
	gen := flashgen.Generate(flashgen.Options{Seed: 1})
	p := gen.Protocol("bitvector")
	prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	var dfHandler string
	for _, s := range p.Manifest {
		if s.Checker == "buffer_mgmt" && s.Class == flashgen.ClassError {
			for _, fn := range prog.Fns {
				if fn.Pos().File == s.File && fn.Pos().Line <= s.Line && s.Line <= fn.EndPos.Line {
					dfHandler = fn.Name
				}
			}
		}
	}
	if dfHandler == "" {
		t.Fatal("no double-free handler found")
	}
	sys := NewSystem(prog, p.Spec, []string{dfHandler}, 5)
	res := sys.Run(2000)
	if res.Deadlocked {
		t.Fatalf("double-free handler deadlocked the system: %s", res)
	}
	if res.Corruptions == 0 {
		t.Errorf("no corruption observed over 2000 activations: %s", res)
	}
}
