package flashsim

import (
	"fmt"
	"sort"
	"strings"

	"flashmc/internal/core"
	"flashmc/internal/flash"
)

// Detection records when a dynamic finding first appeared.
type Detection struct {
	Finding
	FirstTrial int // 1-based trial index of first detection
	Count      int // total trials that reproduced it
}

// FuzzResult aggregates a fuzzing campaign over one protocol.
type FuzzResult struct {
	Trials     int
	Handlers   int
	Detections []Detection
}

// ByLine returns detections keyed "file:line" (any kind).
func (r *FuzzResult) ByLine() map[string]Detection {
	out := map[string]Detection{}
	for _, d := range r.Detections {
		k := fmt.Sprintf("%s:%d", d.Pos.File, d.Pos.Line)
		if prev, ok := out[k]; !ok || d.FirstTrial < prev.FirstTrial {
			out[k] = d
		}
	}
	return out
}

func (r *FuzzResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz: %d handlers x %d trials, %d distinct findings\n",
		r.Handlers, r.Trials, len(r.Detections))
	for _, d := range r.Detections {
		fmt.Fprintf(&b, "  %-20s %s (first at trial %d, seen %dx)\n",
			d.Kind, d.Pos, d.FirstTrial, d.Count)
	}
	return b.String()
}

// Fuzz drives every dispatchable handler of the protocol for the given
// number of trials each, collecting dynamic findings. Handlers the
// dispatch table does not reference (the corpus's "unreachable"
// handlers) are skipped — exactly why their bugs survive testing.
func Fuzz(prog *core.Program, spec *flash.Spec, trials int, seed int64) *FuzzResult {
	m := NewMachine(prog, spec, seed)
	var handlers []string
	for _, h := range append(append([]string{}, spec.Hardware...), spec.Software...) {
		if strings.Contains(h, "unreachable") {
			continue
		}
		if prog.Fn(h) != nil {
			handlers = append(handlers, h)
		}
	}
	sort.Strings(handlers)

	type key struct {
		kind string
		pos  string
	}
	first := map[key]*Detection{}
	for trial := 1; trial <= trials; trial++ {
		for _, h := range handlers {
			findings, err := m.RunHandler(h)
			if err != nil {
				continue // interpreter limit; treated as an aborted run
			}
			seen := map[key]bool{}
			for _, f := range findings {
				k := key{f.Kind, f.Pos.String()}
				if seen[k] {
					continue
				}
				seen[k] = true
				if d, ok := first[k]; ok {
					d.Count++
				} else {
					first[k] = &Detection{Finding: f, FirstTrial: trial, Count: 1}
				}
			}
		}
	}

	res := &FuzzResult{Trials: trials, Handlers: len(handlers)}
	for _, d := range first {
		res.Detections = append(res.Detections, *d)
	}
	sort.Slice(res.Detections, func(i, j int) bool {
		a, b := res.Detections[i], res.Detections[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Kind < b.Kind
	})
	return res
}
