package flashsim

import (
	"fmt"
	"math/rand"

	"flashmc/internal/core"
	"flashmc/internal/flash"
)

// System models a small FLASH machine: several MAGIC nodes, each with
// a finite data-buffer pool, executing handler activations driven by
// an external workload. Its purpose is the paper's §6 phenomenon: a
// handler that leaks a buffer on a rare path causes "the system to
// have a low-grade buffer leak that only deadlocks the system after
// several days" — here, after thousands of activations, and only once
// the workload has hit the rare path often enough to drain a pool.
type System struct {
	machine  *Machine
	rng      *rand.Rand
	handlers []string

	// BuffersPerNode is each node's data-buffer pool size.
	BuffersPerNode int
	// Nodes is the machine size.
	Nodes int

	free []int // free buffers per node
}

// SystemResult summarizes one system run.
type SystemResult struct {
	// Activations executed before deadlock or budget exhaustion.
	Activations int
	// Deadlocked reports whether every node's pool drained.
	Deadlocked bool
	// DeadlockActivation is when that happened (0 if never).
	DeadlockActivation int
	// Leaks counts activations that permanently lost a buffer.
	Leaks int
	// Corruptions counts double frees observed (two owners for one
	// buffer: silent data corruption on real hardware).
	Corruptions int
}

func (r SystemResult) String() string {
	if r.Deadlocked {
		return fmt.Sprintf("DEADLOCK after %d activations (%d leaks, %d corruptions)",
			r.DeadlockActivation, r.Leaks, r.Corruptions)
	}
	return fmt.Sprintf("survived %d activations (%d leaks, %d corruptions)",
		r.Activations, r.Leaks, r.Corruptions)
}

// NewSystem builds a system over the protocol restricted to the given
// handlers (nil = all dispatchable handlers of the spec).
func NewSystem(prog *core.Program, spec *flash.Spec, handlers []string, seed int64) *System {
	if handlers == nil {
		for _, h := range append(append([]string{}, spec.Hardware...), spec.Software...) {
			if prog.Fn(h) != nil {
				handlers = append(handlers, h)
			}
		}
	}
	return &System{
		machine:        NewMachine(prog, spec, seed),
		rng:            rand.New(rand.NewSource(seed ^ 0x5f5f)),
		handlers:       handlers,
		BuffersPerNode: 8,
		Nodes:          4,
	}
}

// Run executes up to budget handler activations, dispatching each to a
// random node, and returns when the machine deadlocks or the budget is
// spent.
func (s *System) Run(budget int) SystemResult {
	s.free = make([]int, s.Nodes)
	for i := range s.free {
		s.free[i] = s.BuffersPerNode
	}
	var res SystemResult
	for res.Activations = 1; res.Activations <= budget; res.Activations++ {
		// The workload (cache misses, network arrivals) targets a
		// node; if it has no free buffer the message cannot be
		// accepted. When no node can accept, the machine is dead.
		node := s.pickNode()
		if node < 0 {
			res.Deadlocked = true
			res.DeadlockActivation = res.Activations
			return res
		}
		h := s.handlers[s.rng.Intn(len(s.handlers))]
		s.free[node]-- // hardware hands the handler a buffer
		findings, err := s.machine.RunHandler(h)
		returned := 1
		if err == nil {
			for _, f := range findings {
				switch f.Kind {
				case "buffer-leak":
					res.Leaks++
					returned = 0 // the buffer is gone for good
				case "double-free":
					res.Corruptions++
				}
			}
		}
		s.free[node] += returned
	}
	res.Activations = budget
	return res
}

// pickNode returns a random node with a free buffer, or -1 if none.
func (s *System) pickNode() int {
	start := s.rng.Intn(s.Nodes)
	for i := 0; i < s.Nodes; i++ {
		n := (start + i) % s.Nodes
		if s.free[n] > 0 {
			return n
		}
	}
	return -1
}
