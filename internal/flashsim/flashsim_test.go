package flashsim

import (
	"strings"
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/core"
	"flashmc/internal/flash"
)

func loadSim(t *testing.T, body string) (*core.Program, *flash.Spec) {
	t.Helper()
	src := cpp.MapSource{
		"flash-includes.h": flash.IncludesH,
		"proto.c":          "#include \"flash-includes.h\"\n" + body,
	}
	p, err := core.Load("simtest", src, []string{"proto.c"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(p.ParseErrors) != 0 {
		t.Fatalf("parse: %v", p.ParseErrors)
	}
	spec := &flash.Spec{
		Protocol:      "simtest",
		Allowance:     map[string]flash.LaneVector{},
		NoStack:       map[string]bool{},
		BufferFreeFns: map[string]bool{},
		BufferUseFns:  map[string]bool{},
		CondFreeFns:   map[string]bool{},
	}
	for _, fn := range p.Fns {
		if flash.ClassifyName(fn.Name) == flash.HardwareHandler {
			spec.Hardware = append(spec.Hardware, fn.Name)
			spec.Allowance[fn.Name] = flash.LaneVector{4, 4, 4, 4}
		}
	}
	return p, spec
}

// runOnce executes one handler with a fixed seed and returns findings.
func runOnce(t *testing.T, body, handler string, seed int64) []Finding {
	t.Helper()
	p, spec := loadSim(t, body)
	m := NewMachine(p, spec, seed)
	f, err := m.RunHandler(handler)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return f
}

func kinds(fs []Finding) string {
	var parts []string
	for _, f := range fs {
		parts = append(parts, f.Kind)
	}
	return strings.Join(parts, ",")
}

func TestCleanHandlerNoFindings(t *testing.T) {
	body := `
void h_clean(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(1);
	unsigned t0;
	t0 = 1;
	HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
	NI_SEND(2, F_DATA, 1, 0, 1, 0);
	DEC_DB_REF(0);
}`
	for seed := int64(1); seed <= 20; seed++ {
		if f := runOnce(t, body, "h_clean", seed); len(f) != 0 {
			t.Fatalf("seed %d: findings %s", seed, kinds(f))
		}
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	body := `
void h_df(void) {
	DEC_DB_REF(0);
	DEC_DB_REF(0);
}`
	f := runOnce(t, body, "h_df", 1)
	if kinds(f) != "double-free" {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestLeakDetected(t *testing.T) {
	body := `
void h_leak(void) {
	unsigned x;
	x = 1;
}`
	f := runOnce(t, body, "h_leak", 1)
	if kinds(f) != "buffer-leak" {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestLenMismatchDetected(t *testing.T) {
	body := `
void h_len(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	NI_SEND(2, F_DATA, 1, 0, 1, 0);
	DEC_DB_REF(0);
}`
	f := runOnce(t, body, "h_len", 1)
	if kinds(f) != "len-mismatch" {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestUnsyncReadDetected(t *testing.T) {
	body := `
void h_read(void) {
	unsigned v;
	v = MISCBUS_READ_DB(0, 0);
	DEC_DB_REF(0);
}`
	f := runOnce(t, body, "h_read", 1)
	if kinds(f) != "unsync-read" {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestSyncReadClean(t *testing.T) {
	body := `
void h_read(void) {
	unsigned v;
	WAIT_FOR_DB_FULL(0);
	v = MISCBUS_READ_DB(0, 0);
	DEC_DB_REF(0);
}`
	if f := runOnce(t, body, "h_read", 1); len(f) != 0 {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestUnwaitedSendDetected(t *testing.T) {
	body := `
void h_w(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
	DEC_DB_REF(0);
}`
	f := runOnce(t, body, "h_w", 1)
	if kinds(f) != "unwaited-send" {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestRawStatusPollingActuallyWaits(t *testing.T) {
	// The send-wait checker's false-positive shape must NOT be a
	// dynamic bug: busy-waiting on the status register is a real wait.
	body := `
void h_poll(void) {
	unsigned t0;
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
	while (PI_STATUS_REG == 0) {
		t0 = t0 + 1;
	}
	DEC_DB_REF(0);
}`
	for seed := int64(1); seed <= 20; seed++ {
		if f := runOnce(t, body, "h_poll", seed); len(f) != 0 {
			t.Fatalf("seed %d: findings %s", seed, kinds(f))
		}
	}
}

func TestDirStaleDetected(t *testing.T) {
	body := `
void h_dir(void) {
	DIR_LOAD(DIR_ADDR(4));
	DIR_SET_STATE(2);
	DEC_DB_REF(0);
}`
	f := runOnce(t, body, "h_dir", 1)
	if kinds(f) != "dir-stale" {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestNakSuppressesDirStale(t *testing.T) {
	body := `
void h_dir(void) {
	DIR_LOAD(DIR_ADDR(4));
	DIR_SET_STATE(2);
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	NI_SEND_RPLY(MSG_NAK, F_NODATA, 1, 0, 1, 0);
	DEC_DB_REF(0);
}`
	if f := runOnce(t, body, "h_dir", 1); len(f) != 0 {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestLaneOverflowDetected(t *testing.T) {
	p, spec := loadSim(t, `
void h_lane(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	DEC_DB_REF(0);
}`)
	spec.Allowance["h_lane"] = flash.LaneVector{1, 1, 1, 1}
	m := NewMachine(p, spec, 1)
	f, err := m.RunHandler("h_lane")
	if err != nil {
		t.Fatal(err)
	}
	if kinds(f) != "lane-overflow" {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestOwnershipTransferSuppressesLeak(t *testing.T) {
	body := `
void h_handoff(void) {
	no_free_needed();
}`
	if f := runOnce(t, body, "h_handoff", 1); len(f) != 0 {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestAllocFailureGrantsNoBuffer(t *testing.T) {
	// Software handler pattern: even when ALLOC_DB fails, the
	// unconditional DEC_DB_REF(db) must not produce a double free
	// (freeing the error handle is a no-op).
	body := `
void sw_t(void) {
	unsigned db;
	db = ALLOC_DB();
	if (db != BUFFER_ERROR) {
		HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
		NI_SEND(2, F_DATA, 1, 0, 1, 0);
	}
	DEC_DB_REF(db);
}`
	p, spec := loadSim(t, body)
	spec.Software = append(spec.Software, "sw_t")
	spec.Allowance["sw_t"] = flash.LaneVector{4, 4, 4, 4}
	m := NewMachine(p, spec, 3)
	for trial := 0; trial < 50; trial++ {
		f, err := m.RunHandler("sw_t")
		if err != nil {
			t.Fatal(err)
		}
		if len(f) != 0 {
			t.Fatalf("trial %d: findings %s", trial, kinds(f))
		}
	}
}

func TestInterpreterControlFlow(t *testing.T) {
	// A handler computing with loops and switch must terminate and
	// behave deterministically given the machine's inputs.
	body := `
void h_cf(void) {
	unsigned i;
	unsigned acc;
	acc = 0;
	for (i = 0; i < 10; i++) {
		acc += i;
	}
	if (acc != 45) {
		DEC_DB_REF(0);
		DEC_DB_REF(0); /* would double free if arithmetic broke */
		return;
	}
	switch (acc % 4) {
	case 0:
		acc = 1;
		break;
	case 1:
		acc = 2;
		break;
	default:
		acc = 3;
	}
	while (acc > 0) {
		acc--;
	}
	do {
		acc++;
	} while (acc < 3);
	DEC_DB_REF(0);
}`
	f := runOnce(t, body, "h_cf", 1)
	if len(f) != 0 {
		t.Fatalf("findings %s (interpreter arithmetic broken?)", kinds(f))
	}
}

func TestCallsIntoSubroutines(t *testing.T) {
	body := `
unsigned helper(unsigned n) {
	return n * 2;
}
void h_call(void) {
	unsigned v;
	v = helper(21);
	if (v != 42) {
		DEC_DB_REF(0);
		DEC_DB_REF(0);
		return;
	}
	DEC_DB_REF(0);
}`
	if f := runOnce(t, body, "h_call", 1); len(f) != 0 {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestRecursionTerminates(t *testing.T) {
	body := `
void spin(unsigned n) {
	if (n > 0) {
		spin(n - 1);
	}
}
void h_rec(void) {
	spin(50);
	DEC_DB_REF(0);
}`
	if f := runOnce(t, body, "h_rec", 1); len(f) != 0 {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestStepBudgetHangDetection(t *testing.T) {
	body := `
void h_hang(void) {
	unsigned one;
	one = 1;
	while (one) {
		one = 1;
	}
	DEC_DB_REF(0);
}`
	p, spec := loadSim(t, body)
	m := NewMachine(p, spec, 1)
	m.StepLimit = 5000
	f, err := m.RunHandler("h_hang")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(kinds(f), "hang") {
		t.Fatalf("findings %s", kinds(f))
	}
}

func TestCornerCaseBugIsRare(t *testing.T) {
	// The central dynamic-testing phenomenon: a bug guarded by an
	// uncommon input value escapes most trials.
	body := `
void h_corner(void) {
	unsigned t0;
	if (t0 > 2) {
		DEC_DB_REF(0);
	}
	DEC_DB_REF(0);
}`
	p, spec := loadSim(t, body)
	m := NewMachine(p, spec, 7)
	found := 0
	trials := 200
	for i := 0; i < trials; i++ {
		f, err := m.RunHandler("h_corner")
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(kinds(f), "double-free") {
			found++
		}
	}
	if found == 0 {
		t.Fatal("corner case never triggered in 200 trials (workload too narrow)")
	}
	if found > trials/2 {
		t.Fatalf("corner case triggered in %d/%d trials — not rare", found, trials)
	}
}

func TestFuzzDriver(t *testing.T) {
	body := `
void h_ok(void) {
	DEC_DB_REF(0);
}
void h_bug(void) {
	unsigned t0;
	if (t0 > 2) {
		DEC_DB_REF(0);
	}
	DEC_DB_REF(0);
}
void h_unreachable_old(void) {
	DEC_DB_REF(0);
	DEC_DB_REF(0);
}`
	p, spec := loadSim(t, body)
	res := Fuzz(p, spec, 100, 3)
	if res.Handlers != 2 {
		t.Fatalf("handlers %d (unreachable not skipped?)", res.Handlers)
	}
	var sawBug, sawUnreachable bool
	for _, d := range res.Detections {
		if d.Fn == "h_bug" && d.Kind == "double-free" {
			sawBug = true
			if d.FirstTrial == 1 {
				t.Log("corner bug found on first trial (lucky seed)")
			}
		}
		if d.Fn == "h_unreachable_old" {
			sawUnreachable = true
		}
	}
	if !sawBug {
		t.Error("fuzz missed the corner-case double free in 100 trials")
	}
	if sawUnreachable {
		t.Error("fuzz drove an unreachable handler")
	}
}
