// Package flashsim is the dynamic-testing counterpart to the static
// checkers: a FlashLite-style simulator that executes protocol
// handlers on a model of the MAGIC node (data buffers with reference
// counts, four outgoing lanes with allowances, the decoupled
// message-length register, the directory image, and the PI/IO reply
// interfaces) while watching for the same bug classes the checkers
// find statically.
//
// The paper's motivation (§2) is that such bugs "almost always [hide]
// in rare corner cases ... that either never show up in simulation
// because of a lack of cycles or because the simulator itself omits
// certain behavior". The Fuzz driver reproduces that: handlers run
// under randomized inputs drawn from a mostly-small-values workload,
// and each seeded defect is only detected when the workload happens to
// drive its corner-case path — whereas the static checkers pinpoint
// every one on the first try.
package flashsim

import (
	"fmt"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
)

// Value is the interpreter's scalar type (everything in protocol C is
// integral on MAGIC).
type Value = int64

// control signals propagated by statement execution.
type control int

const (
	ctlNext control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// hostEnv supplies the machine semantics of FLASH macros and the
// random workload. The Machine in machine.go implements it.
type hostEnv interface {
	// Call handles a call to a FLASH macro or unknown external; handled
	// reports whether the name was intercepted.
	Call(name string, args []Value, pos token.Pos) (result Value, handled bool)
	// AssignThroughCall handles "MACRO(arg) = v" assignment targets.
	AssignThroughCall(name string, argText string, v Value, pos token.Pos)
	// FreshValue draws an input value (uninitialized local, parameter,
	// unknown global read).
	FreshValue() Value
	// ReadGlobal reads a named global/constant; ok=false defers to
	// FreshValue with memoization by the interpreter.
	ReadGlobal(name string) (Value, bool)
}

// interp executes one function activation tree.
type interp struct {
	env    hostEnv
	fns    map[string]*ast.FuncDecl
	steps  int
	limit  int
	depth  int
	failed error

	globals map[string]Value // memoized fuzz values for unknown names
}

// errBudget is returned when a run exceeds its step budget (a hang in
// dynamic testing terms).
type errBudget struct{ pos token.Pos }

func (e errBudget) Error() string { return fmt.Sprintf("%s: step budget exhausted (hang?)", e.pos) }

const maxDepth = 200

func newInterp(env hostEnv, fns map[string]*ast.FuncDecl, stepLimit int) *interp {
	return &interp{env: env, fns: fns, limit: stepLimit, globals: map[string]Value{}}
}

// frame is one activation record.
type frame struct {
	locals map[string]Value
}

// run executes fn with the given argument values.
func (ip *interp) run(fn *ast.FuncDecl, args []Value) (Value, error) {
	if ip.depth >= maxDepth {
		return 0, fmt.Errorf("%s: call depth exceeded", fn.Name)
	}
	ip.depth++
	defer func() { ip.depth-- }()
	f := &frame{locals: map[string]Value{}}
	for i, p := range fn.Params {
		if i < len(args) {
			f.locals[p.Name] = args[i]
		} else {
			f.locals[p.Name] = ip.env.FreshValue()
		}
	}
	var ret Value
	ctl, err := ip.stmt(f, fn.Body, &ret)
	if err != nil {
		return 0, err
	}
	_ = ctl
	return ret, nil
}

func (ip *interp) tick(pos token.Pos) error {
	ip.steps++
	if ip.steps > ip.limit {
		return errBudget{pos}
	}
	return nil
}

func (ip *interp) stmt(f *frame, s ast.Stmt, ret *Value) (control, error) {
	if s == nil {
		return ctlNext, nil
	}
	if err := ip.tick(s.Pos()); err != nil {
		return ctlNext, err
	}
	switch x := s.(type) {
	case *ast.Block:
		for _, st := range x.Stmts {
			c, err := ip.stmt(f, st, ret)
			if err != nil || c != ctlNext {
				return c, err
			}
		}
		return ctlNext, nil
	case *ast.ExprStmt:
		_, err := ip.expr(f, x.X)
		return ctlNext, err
	case *ast.DeclStmt:
		var v Value
		if x.Decl.Init != nil {
			var err error
			v, err = ip.expr(f, x.Decl.Init)
			if err != nil {
				return ctlNext, err
			}
		} else {
			v = ip.env.FreshValue()
		}
		f.locals[x.Decl.Name] = v
		return ctlNext, nil
	case *ast.If:
		c, err := ip.expr(f, x.Cond)
		if err != nil {
			return ctlNext, err
		}
		if c != 0 {
			return ip.stmt(f, x.Then, ret)
		}
		return ip.stmt(f, x.Else, ret)
	case *ast.While:
		for {
			c, err := ip.expr(f, x.Cond)
			if err != nil {
				return ctlNext, err
			}
			if c == 0 {
				return ctlNext, nil
			}
			cc, err := ip.stmt(f, x.Body, ret)
			if err != nil {
				return ctlNext, err
			}
			if cc == ctlBreak {
				return ctlNext, nil
			}
			if cc == ctlReturn {
				return ctlReturn, nil
			}
			if err := ip.tick(x.Pos()); err != nil {
				return ctlNext, err
			}
		}
	case *ast.DoWhile:
		for {
			cc, err := ip.stmt(f, x.Body, ret)
			if err != nil {
				return ctlNext, err
			}
			if cc == ctlBreak {
				return ctlNext, nil
			}
			if cc == ctlReturn {
				return ctlReturn, nil
			}
			c, err := ip.expr(f, x.Cond)
			if err != nil {
				return ctlNext, err
			}
			if c == 0 {
				return ctlNext, nil
			}
			if err := ip.tick(x.Pos()); err != nil {
				return ctlNext, err
			}
		}
	case *ast.For:
		if x.Init != nil {
			if c, err := ip.stmt(f, x.Init, ret); err != nil || c == ctlReturn {
				return c, err
			}
		}
		for {
			if x.Cond != nil {
				c, err := ip.expr(f, x.Cond)
				if err != nil {
					return ctlNext, err
				}
				if c == 0 {
					return ctlNext, nil
				}
			}
			cc, err := ip.stmt(f, x.Body, ret)
			if err != nil {
				return ctlNext, err
			}
			if cc == ctlBreak {
				return ctlNext, nil
			}
			if cc == ctlReturn {
				return ctlReturn, nil
			}
			if x.Post != nil {
				if _, err := ip.expr(f, x.Post); err != nil {
					return ctlNext, err
				}
			}
			if err := ip.tick(x.Pos()); err != nil {
				return ctlNext, err
			}
		}
	case *ast.Switch:
		tag, err := ip.expr(f, x.Tag)
		if err != nil {
			return ctlNext, err
		}
		// Find the matching case (or default), then execute with
		// fallthrough until break/end.
		start := -1
		defaultIdx := -1
		for i, st := range x.Body.Stmts {
			cs, ok := st.(*ast.Case)
			if !ok {
				continue
			}
			if cs.Value == nil {
				defaultIdx = i
				continue
			}
			v, err := ip.expr(f, cs.Value)
			if err != nil {
				return ctlNext, err
			}
			if v == tag {
				start = i
				break
			}
		}
		if start < 0 {
			start = defaultIdx
		}
		if start < 0 {
			return ctlNext, nil
		}
		for _, st := range x.Body.Stmts[start:] {
			if _, ok := st.(*ast.Case); ok {
				continue
			}
			c, err := ip.stmt(f, st, ret)
			if err != nil {
				return ctlNext, err
			}
			if c == ctlBreak {
				return ctlNext, nil
			}
			if c == ctlReturn {
				return ctlReturn, nil
			}
		}
		return ctlNext, nil
	case *ast.Case:
		return ctlNext, nil
	case *ast.Break:
		return ctlBreak, nil
	case *ast.Continue:
		return ctlContinue, nil
	case *ast.Return:
		if x.X != nil {
			v, err := ip.expr(f, x.X)
			if err != nil {
				return ctlNext, err
			}
			*ret = v
		}
		return ctlReturn, nil
	case *ast.Labeled:
		return ip.stmt(f, x.Stmt, ret)
	case *ast.Goto:
		// The synthetic corpus does not use goto; treat as early exit.
		return ctlReturn, nil
	case *ast.Empty:
		return ctlNext, nil
	}
	return ctlNext, nil
}

func (ip *interp) expr(f *frame, e ast.Expr) (Value, error) {
	if e == nil {
		return 0, nil
	}
	if err := ip.tick(e.Pos()); err != nil {
		return 0, err
	}
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, nil
	case *ast.CharLit:
		return x.Value, nil
	case *ast.FloatLit:
		return int64(x.Value), nil
	case *ast.StringLit:
		return 0, nil
	case *ast.Paren:
		return ip.expr(f, x.X)
	case *ast.Ident:
		return ip.readName(f, x.Name), nil
	case *ast.Member:
		return ip.readLValue(f, e), nil
	case *ast.Index:
		return ip.readLValue(f, e), nil
	case *ast.Unary:
		return ip.unary(f, x)
	case *ast.Binary:
		return ip.binary(f, x)
	case *ast.Assign:
		return ip.assign(f, x)
	case *ast.Cond:
		c, err := ip.expr(f, x.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return ip.expr(f, x.Then)
		}
		return ip.expr(f, x.Else)
	case *ast.Call:
		return ip.call(f, x)
	case *ast.Cast:
		return ip.expr(f, x.X)
	case *ast.SizeofExpr:
		return 4, nil
	case *ast.SizeofType:
		if sz := x.Of.Size(); sz > 0 {
			return sz, nil
		}
		return 4, nil
	}
	return 0, nil
}

// readName resolves an identifier: local, host global, or memoized
// fuzz value.
func (ip *interp) readName(f *frame, name string) Value {
	if v, ok := f.locals[name]; ok {
		return v
	}
	if v, ok := ip.env.ReadGlobal(name); ok {
		return v
	}
	if v, ok := ip.globals[name]; ok {
		return v
	}
	v := ip.env.FreshValue()
	ip.globals[name] = v
	return v
}

// readLValue reads compound lvalues (members, array cells) through a
// rendered-path store, which is all the corpus's flat accesses need.
func (ip *interp) readLValue(f *frame, e ast.Expr) Value {
	key := ast.ExprString(e)
	if v, ok := ip.env.ReadGlobal(key); ok {
		return v
	}
	if v, ok := ip.globals[key]; ok {
		return v
	}
	v := ip.env.FreshValue()
	ip.globals[key] = v
	return v
}

func (ip *interp) unary(f *frame, x *ast.Unary) (Value, error) {
	if x.Op == token.Inc || x.Op == token.Dec {
		old, err := ip.expr(f, x.X)
		if err != nil {
			return 0, err
		}
		nv := old + 1
		if x.Op == token.Dec {
			nv = old - 1
		}
		ip.writeLValue(f, x.X, nv)
		if x.Postfix {
			return old, nil
		}
		return nv, nil
	}
	v, err := ip.expr(f, x.X)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case token.Sub:
		return -v, nil
	case token.Add:
		return v, nil
	case token.Not:
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case token.Tilde:
		return ^v, nil
	case token.Star, token.BitAnd:
		return v, nil // flat memory model
	}
	return v, nil
}

func (ip *interp) binary(f *frame, x *ast.Binary) (Value, error) {
	if x.Op == token.LogicalAnd || x.Op == token.LogicalOr {
		l, err := ip.expr(f, x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == token.LogicalAnd && l == 0 {
			return 0, nil
		}
		if x.Op == token.LogicalOr && l != 0 {
			return 1, nil
		}
		r, err := ip.expr(f, x.Y)
		if err != nil {
			return 0, err
		}
		if r != 0 {
			return 1, nil
		}
		return 0, nil
	}
	l, err := ip.expr(f, x.X)
	if err != nil {
		return 0, err
	}
	r, err := ip.expr(f, x.Y)
	if err != nil {
		return 0, err
	}
	return applyOp(x.Op, l, r), nil
}

func applyOp(op token.Kind, l, r Value) Value {
	switch op {
	case token.Add:
		return l + r
	case token.Sub:
		return l - r
	case token.Star:
		return l * r
	case token.Div:
		if r == 0 {
			return 0
		}
		return l / r
	case token.Mod:
		if r == 0 {
			return 0
		}
		return l % r
	case token.Shl:
		return l << (uint64(r) & 63)
	case token.Shr:
		return l >> (uint64(r) & 63)
	case token.BitAnd:
		return l & r
	case token.BitOr:
		return l | r
	case token.BitXor:
		return l ^ r
	case token.Eq:
		return b2v(l == r)
	case token.NotEq:
		return b2v(l != r)
	case token.Less:
		return b2v(l < r)
	case token.Greater:
		return b2v(l > r)
	case token.LessEq:
		return b2v(l <= r)
	case token.GreaterEq:
		return b2v(l >= r)
	case token.Comma:
		return r
	}
	return 0
}

func b2v(b bool) Value {
	if b {
		return 1
	}
	return 0
}

func (ip *interp) assign(f *frame, x *ast.Assign) (Value, error) {
	rhs, err := ip.expr(f, x.RHS)
	if err != nil {
		return 0, err
	}
	if x.Op != token.Assign {
		old, err := ip.expr(f, x.LHS)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.AddAssign:
			rhs = old + rhs
		case token.SubAssign:
			rhs = old - rhs
		case token.MulAssign:
			rhs = old * rhs
		case token.DivAssign:
			rhs = applyOp(token.Div, old, rhs)
		case token.ModAssign:
			rhs = applyOp(token.Mod, old, rhs)
		case token.AndAssign:
			rhs = old & rhs
		case token.OrAssign:
			rhs = old | rhs
		case token.XorAssign:
			rhs = old ^ rhs
		case token.ShlAssign:
			rhs = applyOp(token.Shl, old, rhs)
		case token.ShrAssign:
			rhs = applyOp(token.Shr, old, rhs)
		}
	}
	ip.writeLValue(f, x.LHS, rhs)
	return rhs, nil
}

// writeLValue stores through an lvalue expression.
func (ip *interp) writeLValue(f *frame, lhs ast.Expr, v Value) {
	switch t := lhs.(type) {
	case *ast.Paren:
		ip.writeLValue(f, t.X, v)
	case *ast.Ident:
		if _, ok := f.locals[t.Name]; ok {
			f.locals[t.Name] = v
			return
		}
		ip.globals[t.Name] = v
	case *ast.Call:
		// FLASH idiom: HANDLER_GLOBALS(field) = v.
		if id, ok := t.Fun.(*ast.Ident); ok && len(t.Args) == 1 {
			ip.env.AssignThroughCall(id.Name, ast.ExprString(t.Args[0]), v, t.Pos())
			return
		}
	case *ast.Unary:
		// *p = v in the flat model: store by rendered path.
		ip.globals[ast.ExprString(lhs)] = v
	default:
		ip.globals[ast.ExprString(lhs)] = v
	}
}

func (ip *interp) call(f *frame, x *ast.Call) (Value, error) {
	id, ok := x.Fun.(*ast.Ident)
	if !ok {
		return 0, nil
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ip.expr(f, a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	if v, handled := ip.env.Call(id.Name, args, x.Pos()); handled {
		return v, nil
	}
	if callee, ok := ip.fns[id.Name]; ok && callee.Body != nil {
		return ip.run(callee, args)
	}
	return 0, nil
}
