package flashsim

import (
	"fmt"
	"math/rand"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/core"
	"flashmc/internal/flash"
)

// Constant values the machine gives the header's extern const
// variables (the hardware's actual encodings are irrelevant; only
// zero/non-zero distinctions and identities matter).
const (
	valLenNoData    = 0
	valLenWord      = 4
	valLenCacheline = 128
	valFNoData      = 0
	valFData        = 1
	valMsgNak       = 7
	valBufferError  = 0xffff
	valBufferHandle = 0x1000
)

// Finding is one dynamically detected protocol failure.
type Finding struct {
	Kind string // bug-class identifier, e.g. "double-free"
	Fn   string
	Pos  token.Pos
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s in %s", f.Pos, f.Kind, f.Fn)
}

// Machine models one MAGIC node executing a single handler activation:
// the incoming data buffer's refcount, the four outgoing lanes against
// the handler's allowance, the message-length register, the directory
// image, and the reply interfaces. It implements hostEnv.
type Machine struct {
	prog *core.Program
	spec *flash.Spec
	fns  map[string]*ast.FuncDecl
	rng  *rand.Rand

	// per-run state
	handler        string
	bufRef         int
	laneUse        flash.LaneVector
	allow          flash.LaneVector
	msgLen         Value
	dbWaited       bool
	dirLoaded      bool
	dirModified    bool
	nakSent        bool
	pendingWait    string // "", "PI", "IO"
	ownershipMoved bool   // no_free_needed: buffer handed onward
	findings       []Finding

	// StepLimit bounds one activation (hang detection).
	StepLimit int
}

// NewMachine builds a machine for a loaded protocol.
func NewMachine(prog *core.Program, spec *flash.Spec, seed int64) *Machine {
	fns := map[string]*ast.FuncDecl{}
	for _, fn := range prog.Fns {
		fns[fn.Name] = fn
	}
	return &Machine{prog: prog, spec: spec, fns: fns,
		rng: rand.New(rand.NewSource(seed)), StepLimit: 200000}
}

func (m *Machine) report(kind string, pos token.Pos) {
	m.findings = append(m.findings, Finding{Kind: kind, Fn: m.handler, Pos: pos})
}

// FreshValue draws from the workload distribution: overwhelmingly the
// small values a warm protocol sees, occasionally a corner-case one —
// the regime that hides corner-case bugs from dynamic testing.
func (m *Machine) FreshValue() Value {
	switch m.rng.Intn(20) {
	case 0: // rare: arbitrary word
		return Value(m.rng.Intn(1 << 16))
	case 1, 2: // uncommon: small but nonzero
		return Value(2 + m.rng.Intn(14))
	default: // common case: 0 or 1
		return Value(m.rng.Intn(2))
	}
}

// ReadGlobal implements hostEnv for named constants and status
// registers (which are fresh on every read, like volatile hardware).
func (m *Machine) ReadGlobal(name string) (Value, bool) {
	switch name {
	case flash.ConstLenNoData:
		return valLenNoData, true
	case flash.ConstLenWord:
		return valLenWord, true
	case flash.ConstLenCacheline:
		return valLenCacheline, true
	case flash.ConstFData:
		return valFData, true
	case flash.ConstFNoData:
		return valFNoData, true
	case flash.ConstNakReply:
		return valMsgNak, true
	case flash.MacroBufferError:
		return valBufferError, true
	case "PI_STATUS_REG":
		// Volatile reply-status register: observing it nonzero IS the
		// reply arriving, so raw polling (the abstraction-breaking
		// send-wait false positives) genuinely waits.
		v := Value(m.rng.Intn(2))
		if v != 0 && m.pendingWait == "PI" {
			m.pendingWait = ""
		}
		return v, true
	case "IO_STATUS_REG":
		v := Value(m.rng.Intn(2))
		if v != 0 && m.pendingWait == "IO" {
			m.pendingWait = ""
		}
		return v, true
	}
	return 0, false
}

// AssignThroughCall implements the HANDLER_GLOBALS(field) = v idiom.
func (m *Machine) AssignThroughCall(name, argText string, v Value, pos token.Pos) {
	if name == flash.MacroHandlerGlobals && argText == "header.nh.len" {
		m.msgLen = v
	}
}

// Call implements the FLASH macro semantics with inline detectors.
func (m *Machine) Call(name string, args []Value, pos token.Pos) (Value, bool) {
	arg := func(i int) Value {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch name {
	case flash.MacroWaitForDBFull:
		m.dbWaited = true
		return 0, true
	case flash.MacroMiscbusReadDB, flash.MacroDeprecatedOp:
		if !m.dbWaited {
			m.report("unsync-read", pos)
		}
		return m.FreshValue(), true
	case "MISCBUS_WRITE_DB":
		if arg(0) == valBufferError {
			m.report("bad-write", pos)
		}
		return 0, true
	case flash.MacroAllocDB:
		if m.bufRef > 0 {
			m.report("alloc-leak", pos)
		}
		if m.rng.Intn(10) == 0 {
			return valBufferError, true // allocation failed: no buffer
		}
		m.bufRef++
		return valBufferHandle, true
	case flash.MacroIncDB:
		// The hardware tracks real counts, so the §11 double-increment
		// pattern is dynamically fine — which is why testing never
		// caught the misunderstanding around it.
		m.bufRef++
		return 0, true
	case flash.MacroFreeDB:
		if arg(0) == valBufferError {
			return 0, true // freeing the error handle is a no-op
		}
		m.bufRef--
		if m.bufRef < 0 {
			m.report("double-free", pos)
		}
		return 0, true
	case flash.AnnotNoFreeNeeded:
		// Ownership transferred to a subsequent handler: the buffer is
		// intentionally not freed here.
		m.ownershipMoved = true
		return 0, true
	case flash.AnnotHasBuffer, "DEBUG_PRINT",
		flash.MacroHandlerDefs, flash.MacroHandlerPrologue,
		flash.MacroSubrPrologue, flash.MacroSetStackPtr,
		flash.MacroNoStackDecl:
		return 0, true
	case flash.MacroHandlerGlobals:
		return m.msgLen, true
	case flash.MacroPISend:
		m.send(0, arg(0), arg(3), "PI", pos)
		return 0, true
	case flash.MacroIOSend:
		m.send(1, arg(0), arg(3), "IO", pos)
		return 0, true
	case flash.MacroNISend:
		if arg(0) == valMsgNak {
			m.nakSent = true
		}
		m.send(2, arg(1), arg(3), "", pos)
		return 0, true
	case flash.MacroNISendRply:
		if arg(0) == valMsgNak {
			m.nakSent = true
		}
		m.send(3, arg(1), arg(3), "", pos)
		return 0, true
	case flash.MacroWaitForSpace:
		l := int(arg(0))
		if l >= 0 && l < flash.NumLanes {
			m.laneUse[l] = 0
		}
		return 0, true
	case flash.MacroWaitPIReply:
		if m.pendingWait == "IO" {
			m.report("wrong-wait", pos)
		}
		m.pendingWait = ""
		return 0, true
	case flash.MacroWaitIOReply:
		if m.pendingWait == "PI" {
			m.report("wrong-wait", pos)
		}
		m.pendingWait = ""
		return 0, true
	case flash.MacroDirLoad:
		m.dirLoaded = true
		m.dirModified = false
		return 0, true
	case "DIR_ADDR":
		return arg(0), true
	case flash.MacroDirRead:
		if !m.dirLoaded {
			m.report("dir-unloaded", pos)
		}
		return m.FreshValue(), true
	case flash.MacroDirSetState, flash.MacroDirSetVector:
		if !m.dirLoaded {
			m.report("dir-unloaded", pos)
		}
		m.dirModified = true
		return 0, true
	case flash.MacroDirWriteback:
		m.dirModified = false
		return 0, true
	}
	return 0, false
}

// send models one message transmission.
func (m *Machine) send(lane int, hasData, wait Value, iface string, pos token.Pos) {
	if m.bufRef <= 0 {
		m.report("send-without-buffer", pos)
	}
	if m.pendingWait != "" {
		m.report("send-before-wait", pos)
	}
	if hasData == valFData && m.msgLen == valLenNoData {
		m.report("len-mismatch", pos)
	}
	if hasData == valFNoData && m.msgLen != valLenNoData {
		m.report("len-mismatch", pos)
	}
	m.laneUse = m.laneUse.Add(lane)
	if m.laneUse[lane] > m.allow[lane] {
		m.report("lane-overflow", pos)
	}
	if wait == 1 {
		m.pendingWait = iface
	}
}

// RunHandler executes one activation of the named handler under fresh
// random inputs and returns the findings.
func (m *Machine) RunHandler(name string) ([]Finding, error) {
	fn := m.fns[name]
	if fn == nil || fn.Body == nil {
		return nil, fmt.Errorf("no such handler %q", name)
	}
	kind := m.spec.Classify(name)

	// Reset per-run state.
	m.handler = name
	m.findings = nil
	m.laneUse = flash.LaneVector{}
	m.msgLen = Value(valLenNoData)
	m.dbWaited = false
	m.dirLoaded = false
	m.dirModified = false
	m.nakSent = false
	m.pendingWait = ""
	m.ownershipMoved = false
	m.bufRef = 0
	if kind == flash.HardwareHandler || m.spec.BufferFreeFns[name] || m.spec.BufferUseFns[name] {
		m.bufRef = 1 // hardware delivered a buffer
	}
	if a, ok := m.spec.Allowance[name]; ok {
		m.allow = a
	} else {
		m.allow = flash.LaneVector{1, 1, 1, 1}
	}

	ip := newInterp(m, m.fns, m.StepLimit)
	_, err := ip.run(fn, nil)
	if err != nil {
		if _, isHang := err.(errBudget); isHang {
			m.report("hang", fn.Pos())
		} else {
			return m.findings, err
		}
	}

	// End-of-activation invariants.
	end := fn.EndPos
	switch {
	case m.spec.BufferUseFns[name]:
		if m.bufRef <= 0 {
			m.report("callee-freed-buffer", end)
		}
	case kind != flash.Subroutine || m.spec.BufferFreeFns[name]:
		if m.bufRef > 0 && !m.ownershipMoved {
			m.report("buffer-leak", end)
		}
	}
	if m.pendingWait != "" {
		m.report("unwaited-send", end)
	}
	if m.dirModified && !m.nakSent {
		m.report("dir-stale", end)
	}
	return m.findings, nil
}
