package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/parser"
	"flashmc/internal/cc/sem"
)

func pat(t *testing.T, src string, wild map[string]string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExprPattern(src, parser.PatternContext{Wildcards: wild})
	if err != nil {
		t.Fatalf("pattern %q: %v", src, err)
	}
	return e
}

func subj(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExprPattern(src, parser.PatternContext{})
	if err != nil {
		t.Fatalf("subject %q: %v", src, err)
	}
	return e
}

func TestExactMatch(t *testing.T) {
	p := pat(t, "WAIT_FOR_DB_FULL(addr)", map[string]string{"addr": "scalar"})
	s := subj(t, "WAIT_FOR_DB_FULL(hdr + 4)")
	env, ok := Expr(p, s, nil)
	if !ok {
		t.Fatal("no match")
	}
	if ast.ExprString(env["addr"]) != "hdr + 4" {
		t.Errorf("bound %q", ast.ExprString(env["addr"]))
	}
}

func TestArityMismatch(t *testing.T) {
	p := pat(t, "F(a, b)", map[string]string{"a": "", "b": ""})
	if _, ok := Expr(p, subj(t, "F(1)"), nil); ok {
		t.Error("matched wrong arity")
	}
	if _, ok := Expr(p, subj(t, "F(1, 2, 3)"), nil); ok {
		t.Error("matched wrong arity")
	}
}

func TestCalleeMustAgree(t *testing.T) {
	p := pat(t, "PI_SEND(x)", map[string]string{"x": ""})
	if _, ok := Expr(p, subj(t, "NI_SEND(1)"), nil); ok {
		t.Error("different callee matched")
	}
}

func TestRepeatedWildcardRequiresEquality(t *testing.T) {
	p := pat(t, "cmp(x, x)", map[string]string{"x": ""})
	if _, ok := Expr(p, subj(t, "cmp(a + 1, a + 1)"), nil); !ok {
		t.Error("equal args should match")
	}
	if _, ok := Expr(p, subj(t, "cmp(a, b)"), nil); ok {
		t.Error("unequal args matched")
	}
}

func TestParensTransparent(t *testing.T) {
	p := pat(t, "f(x)", map[string]string{"x": ""})
	if _, ok := Expr(p, subj(t, "(f((y + 2)))"), nil); !ok {
		t.Error("parens blocked match")
	}
}

func TestLiteralValueMatching(t *testing.T) {
	p := pat(t, "g(16)", nil)
	if _, ok := Expr(p, subj(t, "g(0x10)"), nil); !ok {
		t.Error("hex 0x10 should equal 16")
	}
	if _, ok := Expr(p, subj(t, "g(17)"), nil); ok {
		t.Error("17 matched 16")
	}
}

func TestMemberAndAssignPatterns(t *testing.T) {
	p := pat(t, "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA", nil)
	s := subj(t, "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA")
	if _, ok := Expr(p, s, nil); !ok {
		t.Error("no match")
	}
	s2 := subj(t, "HANDLER_GLOBALS(header.nh.len) = LEN_WORD")
	if _, ok := Expr(p, s2, nil); ok {
		t.Error("different RHS matched")
	}
	s3 := subj(t, "HANDLER_GLOBALS(header.nh.cnt) = LEN_NODATA")
	if _, ok := Expr(p, s3, nil); ok {
		t.Error("different member matched")
	}
}

func TestArrowVsDot(t *testing.T) {
	p := pat(t, "h.len", nil)
	if _, ok := Expr(p, subj(t, "h->len"), nil); ok {
		t.Error("-> matched .")
	}
}

func TestConstraintConst(t *testing.T) {
	p := pat(t, "set_len(k)", map[string]string{"k": "const"})
	if _, ok := Expr(p, subj(t, "set_len(4)"), nil); !ok {
		t.Error("literal should satisfy const")
	}
	if _, ok := Expr(p, subj(t, "set_len(n)"), nil); ok {
		t.Error("identifier satisfied const")
	}
}

func TestConstraintID(t *testing.T) {
	p := pat(t, "free_buf(v)", map[string]string{"v": "id"})
	if _, ok := Expr(p, subj(t, "free_buf(buf)"), nil); !ok {
		t.Error("ident should satisfy id")
	}
	if _, ok := Expr(p, subj(t, "free_buf(buf + 1)"), nil); ok {
		t.Error("expression satisfied id")
	}
}

func TestConstraintFloatUsesTypes(t *testing.T) {
	// Type-check a real function so expressions carry types.
	f, errs := parser.ParseText("t.c", `
void g(void) {
	double d;
	int i;
	use(d);
	use(i);
}`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	c := sem.NewChecker(sem.NewEnv())
	c.Check(f)
	body := f.Funcs()[0].Body
	useD := body.Stmts[2].(*ast.ExprStmt).X
	useI := body.Stmts[3].(*ast.ExprStmt).X
	p := pat(t, "use(v)", map[string]string{"v": "float"})
	if _, ok := Expr(p, useD, nil); !ok {
		t.Error("use(d) should match float wildcard")
	}
	if _, ok := Expr(p, useI, nil); ok {
		t.Error("use(i) matched float wildcard")
	}
}

func TestEnvNotMutatedOnFailure(t *testing.T) {
	p := pat(t, "f(x, x)", map[string]string{"x": ""})
	base := Env{"pre": subj(t, "kept")}
	_, ok := Expr(p, subj(t, "f(1, 2)"), base)
	if ok {
		t.Fatal("should not match")
	}
	if len(base) != 1 {
		t.Errorf("env mutated: %v", base)
	}
	env2, ok := Expr(p, subj(t, "f(3, 3)"), base)
	if !ok {
		t.Fatal("should match")
	}
	if _, exists := env2["pre"]; !exists {
		t.Error("prior bindings lost")
	}
	if _, exists := base["x"]; exists {
		t.Error("success mutated the input env")
	}
}

func TestFindSubexpressions(t *testing.T) {
	f, errs := parser.ParseText("t.c", `
void g(void) {
	int v;
	v = MISCBUS_READ_DB(a, b) + MISCBUS_READ_DB(c, d);
}`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	p := pat(t, "MISCBUS_READ_DB(x, y)", map[string]string{"x": "", "y": ""})
	results := Find(p, f.Funcs()[0].Body, nil)
	if len(results) != 2 {
		t.Fatalf("found %d", len(results))
	}
	if ast.ExprString(results[0].Env["x"]) != "a" || ast.ExprString(results[1].Env["x"]) != "c" {
		t.Errorf("bindings %v %v", results[0].Env, results[1].Env)
	}
}

func TestStmtPatterns(t *testing.T) {
	retPat, err := parser.ParseStmtPattern("return;", parser.PatternContext{})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := parser.ParseText("t.c", `void g(int c) { if (c) return; c = 1; }`)
	var matched int
	ast.Inspect(f, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			if _, ok := Stmt(retPat, s, nil); ok {
				matched++
			}
		}
		return true
	})
	if matched != 1 {
		t.Errorf("return; matched %d times", matched)
	}
}

func TestStmtReturnValuePattern(t *testing.T) {
	p, err := parser.ParseStmtPattern("return v;", parser.PatternContext{
		Wildcards: map[string]string{"v": ""}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := parser.ParseStmtPattern("return x + 1;", parser.PatternContext{})
	if err != nil {
		t.Fatal(err)
	}
	env, ok := Stmt(p, s, nil)
	if !ok || ast.ExprString(env["v"]) != "x + 1" {
		t.Errorf("ok=%v env=%v", ok, env)
	}
	// return; must not match return v;
	bare, _ := parser.ParseStmtPattern("return;", parser.PatternContext{})
	if _, ok := Stmt(p, bare, nil); ok {
		t.Error("return v matched bare return")
	}
}

// randExprSrc builds random expression source from a small grammar.
func randExprSrc(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		atoms := []string{"a", "b", "buf", "42", "0x1f", "'c'", `"s"`, "hdr.len", "p->next"}
		return atoms[rng.Intn(len(atoms))]
	}
	switch rng.Intn(5) {
	case 0:
		ops := []string{"+", "-", "*", "&", "|", "==", "<<"}
		return "(" + randExprSrc(rng, depth-1) + " " + ops[rng.Intn(len(ops))] + " " + randExprSrc(rng, depth-1) + ")"
	case 1:
		return "f(" + randExprSrc(rng, depth-1) + ", " + randExprSrc(rng, depth-1) + ")"
	case 2:
		return "!" + randExprSrc(rng, depth-1)
	case 3:
		return randExprSrc(rng, depth-1) + "[" + randExprSrc(rng, depth-1) + "]"
	default:
		return "(" + randExprSrc(rng, depth-1) + ")"
	}
}

// Property: every expression matches itself as a pattern (identity
// patterns have no wildcards), and EqualExpr is reflexive.
func TestSelfMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randExprSrc(rng, 4)
		e1, err := parser.ParseExprPattern(src, parser.PatternContext{})
		if err != nil {
			return false
		}
		e2, err := parser.ParseExprPattern(src, parser.PatternContext{})
		if err != nil {
			return false
		}
		if !EqualExpr(e1, e2) {
			t.Logf("not self-equal: %s", src)
			return false
		}
		if _, ok := Expr(e1, e2, nil); !ok {
			t.Logf("no self-match: %s", src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a single wildcard pattern matches anything and binds the
// whole subject.
func TestWildcardMatchesAnythingProperty(t *testing.T) {
	w := map[string]string{"hole": ""}
	p := pat(t, "hole", w)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randExprSrc(rng, 3)
		subj, err := parser.ParseExprPattern(src, parser.PatternContext{})
		if err != nil {
			return false
		}
		env, ok := Expr(p, subj, nil)
		if !ok {
			return false
		}
		return EqualExpr(env["hole"], subj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: wrapping the subject in parentheses never changes whether
// a pattern matches.
func TestParenInvarianceProperty(t *testing.T) {
	w := map[string]string{"x": "", "y": ""}
	p := pat(t, "f(x, y)", w)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inner := randExprSrc(rng, 2)
		bare, err1 := parser.ParseExprPattern("f("+inner+", b)", parser.PatternContext{})
		wrapped, err2 := parser.ParseExprPattern("((f((("+inner+")), (b))))", parser.PatternContext{})
		if err1 != nil || err2 != nil {
			return false
		}
		_, ok1 := Expr(p, bare, nil)
		_, ok2 := Expr(p, wrapped, nil)
		return ok1 && ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnderscoreWildcardDoesNotBind(t *testing.T) {
	p := pat(t, "f(_, _)", map[string]string{"_": ""})
	env, ok := Expr(p, subj(t, "f(1, 2)"), nil)
	if !ok {
		t.Fatal("underscore should match without equality requirement")
	}
	if _, bound := env["_"]; bound {
		t.Error("underscore bound")
	}
}
