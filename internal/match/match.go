// Package match implements structural AST pattern matching with
// wildcard binding — the mechanism behind metal patterns. A pattern is
// an ordinary protocol-C AST in which ast.Wildcard nodes act as typed
// holes: they match any expression satisfying their constraint and
// bind it by name. Repeated wildcards must bind structurally equal
// expressions, so a pattern like "memcpy(dst, dst, n)" only matches
// calls whose first two arguments coincide.
//
// Parentheses are transparent on both sides: the pattern "f(x)"
// matches the subject "(f((x)))", mirroring xg++'s source-level
// matching behaviour.
package match

import (
	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/types"
)

// Env carries wildcard bindings accumulated during a match. A nil Env
// is a valid empty environment.
type Env map[string]ast.Expr

// clone copies e so failed alternatives don't leak bindings.
func (e Env) clone() Env {
	out := make(Env, len(e)+2)
	for k, v := range e {
		out[k] = v
	}
	return out
}

// stripParens removes Paren wrappers.
func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Expr matches pattern pat against subject subj under env. On success
// it returns the extended environment (a copy; env is not mutated).
func Expr(pat, subj ast.Expr, env Env) (Env, bool) {
	out := env.clone()
	if exprInto(pat, subj, out) {
		return out, true
	}
	return nil, false
}

func exprInto(pat, subj ast.Expr, env Env) bool {
	pat = stripParens(pat)
	subj = stripParens(subj)
	if w, ok := pat.(*ast.Wildcard); ok {
		return bindWildcard(w, subj, env)
	}
	switch p := pat.(type) {
	case *ast.Ident:
		s, ok := subj.(*ast.Ident)
		return ok && s.Name == p.Name
	case *ast.IntLit:
		s, ok := subj.(*ast.IntLit)
		return ok && s.Value == p.Value
	case *ast.FloatLit:
		s, ok := subj.(*ast.FloatLit)
		return ok && s.Value == p.Value
	case *ast.CharLit:
		s, ok := subj.(*ast.CharLit)
		return ok && s.Value == p.Value
	case *ast.StringLit:
		s, ok := subj.(*ast.StringLit)
		return ok && s.Value == p.Value
	case *ast.Unary:
		s, ok := subj.(*ast.Unary)
		return ok && s.Op == p.Op && s.Postfix == p.Postfix && exprInto(p.X, s.X, env)
	case *ast.Binary:
		s, ok := subj.(*ast.Binary)
		return ok && s.Op == p.Op && exprInto(p.X, s.X, env) && exprInto(p.Y, s.Y, env)
	case *ast.Assign:
		s, ok := subj.(*ast.Assign)
		return ok && s.Op == p.Op && exprInto(p.LHS, s.LHS, env) && exprInto(p.RHS, s.RHS, env)
	case *ast.Cond:
		s, ok := subj.(*ast.Cond)
		return ok && exprInto(p.C, s.C, env) && exprInto(p.Then, s.Then, env) && exprInto(p.Else, s.Else, env)
	case *ast.Call:
		s, ok := subj.(*ast.Call)
		if !ok || len(s.Args) != len(p.Args) || !exprInto(p.Fun, s.Fun, env) {
			return false
		}
		for i := range p.Args {
			if !exprInto(p.Args[i], s.Args[i], env) {
				return false
			}
		}
		return true
	case *ast.Index:
		s, ok := subj.(*ast.Index)
		return ok && exprInto(p.X, s.X, env) && exprInto(p.Idx, s.Idx, env)
	case *ast.Member:
		s, ok := subj.(*ast.Member)
		return ok && s.Name == p.Name && s.Arrow == p.Arrow && exprInto(p.X, s.X, env)
	case *ast.Cast:
		s, ok := subj.(*ast.Cast)
		return ok && types.Equal(s.To, p.To) && exprInto(p.X, s.X, env)
	case *ast.SizeofExpr:
		s, ok := subj.(*ast.SizeofExpr)
		return ok && exprInto(p.X, s.X, env)
	case *ast.SizeofType:
		s, ok := subj.(*ast.SizeofType)
		return ok && types.Equal(s.Of, p.Of)
	case *ast.InitList:
		s, ok := subj.(*ast.InitList)
		if !ok || len(s.Elems) != len(p.Elems) {
			return false
		}
		for i := range p.Elems {
			if !exprInto(p.Elems[i], s.Elems[i], env) {
				return false
			}
		}
		return true
	}
	return false
}

// bindWildcard checks w's constraint against subj and records or
// verifies the binding.
func bindWildcard(w *ast.Wildcard, subj ast.Expr, env Env) bool {
	if !constraintOK(w.Constraint, subj) {
		return false
	}
	if w.Name == "" || w.Name == "_" {
		return true
	}
	if prev, ok := env[w.Name]; ok {
		return EqualExpr(prev, subj)
	}
	env[w.Name] = subj
	return true
}

// constraintOK implements the wildcard constraint vocabulary. Unknown
// subject types (unchecked pattern fragments, lenient frontend) are
// accepted for type-based constraints, matching the paper's permissive
// matching of macro-heavy code.
func constraintOK(c string, subj ast.Expr) bool {
	switch c {
	case "", "expr", "any", "node":
		return true
	case "scalar":
		t := subj.Type()
		return t == nil || types.IsScalar(t)
	case "unsigned", "int", "integer":
		t := subj.Type()
		return t == nil || types.IsInteger(t)
	case "float":
		t := subj.Type()
		return t != nil && types.IsFloat(t)
	case "ptr", "pointer":
		t := subj.Type()
		return t == nil || types.IsPointer(t)
	case "const":
		switch subj.(type) {
		case *ast.IntLit, *ast.FloatLit, *ast.CharLit, *ast.StringLit:
			return true
		}
		return false
	case "id":
		_, ok := subj.(*ast.Ident)
		return ok
	default:
		// Unknown constraint names are permissive; metal's compiler
		// validates them at checker-compile time.
		return true
	}
}

// EqualExpr reports structural equality of two expressions (parens
// transparent, wildcards compare by name).
func EqualExpr(a, b ast.Expr) bool {
	a, b = stripParens(a), stripParens(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.IntLit:
		y, ok := b.(*ast.IntLit)
		return ok && x.Value == y.Value
	case *ast.FloatLit:
		y, ok := b.(*ast.FloatLit)
		return ok && x.Value == y.Value
	case *ast.CharLit:
		y, ok := b.(*ast.CharLit)
		return ok && x.Value == y.Value
	case *ast.StringLit:
		y, ok := b.(*ast.StringLit)
		return ok && x.Value == y.Value
	case *ast.Unary:
		y, ok := b.(*ast.Unary)
		return ok && x.Op == y.Op && x.Postfix == y.Postfix && EqualExpr(x.X, y.X)
	case *ast.Binary:
		y, ok := b.(*ast.Binary)
		return ok && x.Op == y.Op && EqualExpr(x.X, y.X) && EqualExpr(x.Y, y.Y)
	case *ast.Assign:
		y, ok := b.(*ast.Assign)
		return ok && x.Op == y.Op && EqualExpr(x.LHS, y.LHS) && EqualExpr(x.RHS, y.RHS)
	case *ast.Cond:
		y, ok := b.(*ast.Cond)
		return ok && EqualExpr(x.C, y.C) && EqualExpr(x.Then, y.Then) && EqualExpr(x.Else, y.Else)
	case *ast.Call:
		y, ok := b.(*ast.Call)
		if !ok || len(x.Args) != len(y.Args) || !EqualExpr(x.Fun, y.Fun) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *ast.Index:
		y, ok := b.(*ast.Index)
		return ok && EqualExpr(x.X, y.X) && EqualExpr(x.Idx, y.Idx)
	case *ast.Member:
		y, ok := b.(*ast.Member)
		return ok && x.Name == y.Name && x.Arrow == y.Arrow && EqualExpr(x.X, y.X)
	case *ast.Cast:
		y, ok := b.(*ast.Cast)
		return ok && types.Equal(x.To, y.To) && EqualExpr(x.X, y.X)
	case *ast.SizeofExpr:
		y, ok := b.(*ast.SizeofExpr)
		return ok && EqualExpr(x.X, y.X)
	case *ast.SizeofType:
		y, ok := b.(*ast.SizeofType)
		return ok && types.Equal(x.Of, y.Of)
	case *ast.Wildcard:
		y, ok := b.(*ast.Wildcard)
		return ok && x.Name == y.Name
	case *ast.InitList:
		y, ok := b.(*ast.InitList)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !EqualExpr(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Stmt matches a statement pattern against a subject statement. An
// ExprStmt pattern also matches Return-with-value subjects only when
// the pattern itself is a Return; statement kinds otherwise must
// agree.
func Stmt(pat, subj ast.Stmt, env Env) (Env, bool) {
	switch p := pat.(type) {
	case *ast.ExprStmt:
		s, ok := subj.(*ast.ExprStmt)
		if !ok {
			return nil, false
		}
		return Expr(p.X, s.X, env)
	case *ast.Return:
		s, ok := subj.(*ast.Return)
		if !ok {
			return nil, false
		}
		if p.X == nil {
			if s.X == nil {
				return env.clone(), true
			}
			return nil, false
		}
		if s.X == nil {
			return nil, false
		}
		return Expr(p.X, s.X, env)
	case *ast.Break:
		if _, ok := subj.(*ast.Break); ok {
			return env.clone(), true
		}
	case *ast.Continue:
		if _, ok := subj.(*ast.Continue); ok {
			return env.clone(), true
		}
	case *ast.Goto:
		if s, ok := subj.(*ast.Goto); ok && s.Label == p.Label {
			return env.clone(), true
		}
	case *ast.Empty:
		if _, ok := subj.(*ast.Empty); ok {
			return env.clone(), true
		}
	}
	return nil, false
}

// Result is one successful sub-expression match.
type Result struct {
	Expr ast.Expr
	Env  Env
}

// Find collects every sub-expression of root that matches pat. root
// may be any AST node (statement, expression or declaration); the
// search recurses through all expressions it contains.
func Find(pat ast.Expr, root ast.Node, env Env) []Result {
	var out []Result
	ast.Inspect(root, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if got, matched := Expr(pat, e, env); matched {
			out = append(out, Result{Expr: e, Env: got})
		}
		return true
	})
	return out
}
