// Package paths computes the per-function path statistics reported in
// Table 1 of the paper: the number of unique entry-to-exit paths and
// the average and maximum path length. Cycles are handled the way the
// paper's counts imply: back edges are excluded, so each loop
// contributes its not-taken and taken-once shapes.
//
// Counting uses dynamic programming over the acyclic subgraph, so it
// stays exact (with saturation) even for functions whose path count
// would be infeasible to enumerate; a bounded enumerator is provided
// for differential testing against the DP.
package paths

import (
	"math"

	"flashmc/internal/cfg"
)

// Stats summarizes the paths of one function.
type Stats struct {
	// Count is the number of entry-to-exit paths (saturating).
	Count int64
	// AvgLen is the mean path length in statement-lines.
	AvgLen float64
	// MaxLen is the maximum path length in statement-lines.
	MaxLen int64
}

// satAdd adds with saturation at MaxInt64.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// satMul multiplies with saturation at MaxInt64.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// Analyze computes path statistics for g.
func Analyze(g *cfg.Graph) Stats {
	back := g.BackEdges()

	// Topological order of the acyclic subgraph via post-order DFS.
	order := make([]*cfg.Node, 0, len(g.Nodes))
	seen := make([]bool, len(g.Nodes))
	var dfs func(n *cfg.Node)
	dfs = func(n *cfg.Node) {
		seen[n.ID] = true
		for _, e := range n.Succs {
			if back[e] || seen[e.To.ID] {
				continue
			}
			dfs(e.To)
		}
		order = append(order, n) // post-order: successors first
	}
	dfs(g.Entry)

	// DP from exit backward. P(n): #paths n->exit. S(n): total length
	// over those paths counting node weights from n inclusive.
	// M(n): max length.
	p := make([]int64, len(g.Nodes))
	s := make([]int64, len(g.Nodes))
	m := make([]int64, len(g.Nodes))
	for _, n := range order { // successors already processed
		if n == g.Exit {
			p[n.ID] = 1
			s[n.ID] = n.Weight()
			m[n.ID] = n.Weight()
			continue
		}
		var pc, sc, mc int64
		mc = -1
		for _, e := range n.Succs {
			if back[e] {
				continue
			}
			t := e.To.ID
			if p[t] == 0 {
				continue
			}
			pc = satAdd(pc, p[t])
			sc = satAdd(sc, s[t])
			if m[t] > mc {
				mc = m[t]
			}
		}
		if pc == 0 {
			continue // no way to exit from here (infinite loop body)
		}
		w := n.Weight()
		p[n.ID] = pc
		s[n.ID] = satAdd(sc, satMul(w, pc))
		m[n.ID] = mc + w
	}

	st := Stats{Count: p[g.Entry.ID], MaxLen: m[g.Entry.ID]}
	if st.Count > 0 {
		st.AvgLen = float64(s[g.Entry.ID]) / float64(st.Count)
	}
	return st
}

// Enumerate lists up to limit entry-to-exit paths (back edges skipped)
// as node sequences. It exists to cross-check Analyze in tests.
func Enumerate(g *cfg.Graph, limit int) [][]*cfg.Node {
	back := g.BackEdges()
	var out [][]*cfg.Node
	var cur []*cfg.Node
	var walk func(n *cfg.Node) bool
	walk = func(n *cfg.Node) bool {
		cur = append(cur, n)
		defer func() { cur = cur[:len(cur)-1] }()
		if n == g.Exit {
			cp := make([]*cfg.Node, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return len(out) < limit
		}
		for _, e := range n.Succs {
			if back[e] {
				continue
			}
			if !walk(e.To) {
				return false
			}
		}
		return true
	}
	walk(g.Entry)
	return out
}

// Len returns the weight sum of a path produced by Enumerate.
func Len(path []*cfg.Node) int64 {
	var total int64
	for _, n := range path {
		total += n.Weight()
	}
	return total
}
