package paths

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"flashmc/internal/cc/parser"
	"flashmc/internal/cfg"
)

func analyze(t *testing.T, src string) Stats {
	t.Helper()
	f, errs := parser.ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return Analyze(cfg.Build(f.Funcs()[0]))
}

func TestLinearOnePath(t *testing.T) {
	st := analyze(t, `void f(void) { int a; a = 1; a = 2; }`)
	if st.Count != 1 {
		t.Errorf("count %d", st.Count)
	}
	if st.MaxLen != 3 || st.AvgLen != 3 {
		t.Errorf("len avg=%v max=%v", st.AvgLen, st.MaxLen)
	}
}

func TestIfElseTwoPaths(t *testing.T) {
	st := analyze(t, `void f(int c) { if (c) c = 1; else c = 2; }`)
	if st.Count != 2 {
		t.Errorf("count %d", st.Count)
	}
}

func TestSequentialBranchesMultiply(t *testing.T) {
	st := analyze(t, `
void f(int a, int b, int c) {
	if (a) a = 1;
	if (b) b = 1;
	if (c) c = 1;
}`)
	if st.Count != 8 {
		t.Errorf("count %d", st.Count)
	}
}

func TestEarlyReturnPaths(t *testing.T) {
	st := analyze(t, `
void f(int a) {
	if (a) return;
	a = 1;
}`)
	if st.Count != 2 {
		t.Errorf("count %d", st.Count)
	}
}

func TestLoopCountsOnce(t *testing.T) {
	// Back edge excluded: while contributes entered-or-not = the
	// condition node is shared; paths = 1 (condition false) +
	// 1 (one iteration then false) but the second re-enters the
	// branch... with back edges removed the body path dead-ends at the
	// back edge, so only paths that exit remain.
	st := analyze(t, `void f(int n) { while (n) { n--; } n = 1; }`)
	if st.Count < 1 {
		t.Errorf("count %d", st.Count)
	}
}

func TestSwitchPaths(t *testing.T) {
	st := analyze(t, `
void f(int op) {
	switch (op) {
	case 1: op = 1; break;
	case 2: op = 2; break;
	default: op = 3;
	}
}`)
	if st.Count != 3 {
		t.Errorf("count %d", st.Count)
	}
}

func TestMaxLenLongestArm(t *testing.T) {
	st := analyze(t, `
void f(int c) {
	if (c) {
		c = 1; c = 2; c = 3; c = 4;
	} else {
		c = 9;
	}
}`)
	// branch(1) + 4 stmts = 5 vs branch + 1 = 2.
	if st.MaxLen != 5 {
		t.Errorf("max %d", st.MaxLen)
	}
	if st.AvgLen != 3.5 {
		t.Errorf("avg %v", st.AvgLen)
	}
}

// genFn emits a random function made of sequential if/else and
// straight-line statements, for the DP-vs-enumeration property test.
func genFn(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("void f(int a, int b, int c) {\n")
	n := rng.Intn(6) + 1
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			b.WriteString("a = a + 1;\n")
		case 1:
			b.WriteString("if (a) { b = 1; } else { b = 2; }\n")
		case 2:
			b.WriteString("if (b) { c = 1; c = 2; }\n")
		case 3:
			b.WriteString("switch (c) { case 1: a = 1; break; case 2: a = 2; break; default: a = 0; }\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Property: DP statistics agree with explicit path enumeration on
// random acyclic functions.
func TestDPMatchesEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genFn(rng)
		file, errs := parser.ParseText("t.c", src)
		if len(errs) != 0 {
			return false
		}
		g := cfg.Build(file.Funcs()[0])
		st := Analyze(g)
		paths := Enumerate(g, 100000)
		if int64(len(paths)) != st.Count {
			t.Logf("src:\n%s\ncount dp=%d enum=%d", src, st.Count, len(paths))
			return false
		}
		var total, max int64
		for _, p := range paths {
			l := Len(p)
			total += l
			if l > max {
				max = l
			}
		}
		if max != st.MaxLen {
			t.Logf("src:\n%s\nmax dp=%d enum=%d", src, st.MaxLen, max)
			return false
		}
		avg := float64(total) / float64(len(paths))
		if avg-st.AvgLen > 1e-9 || st.AvgLen-avg > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSaturationDoesNotOverflow(t *testing.T) {
	// 70 sequential branches = 2^70 paths; must saturate, not wrap.
	var b strings.Builder
	b.WriteString("void f(int a) {\n")
	for i := 0; i < 70; i++ {
		b.WriteString("if (a) { a = 1; }\n")
	}
	b.WriteString("}\n")
	st := analyze(t, b.String())
	if st.Count <= 0 {
		t.Errorf("count %d (overflow?)", st.Count)
	}
}
