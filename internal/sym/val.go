package sym

// The abstract value domain: an integer interval crossed with a
// known-bits congruence (value & Mask == Bits, the classic congruence
// domain over powers of two) plus a small set of excluded constants
// (disequalities against literals). Values model the int64
// representation of a C scalar: a signed int holds its mathematical
// value, an unsigned holds its value as a non-negative integer.
// Within either encoding, comparisons, &, | and ^ over the int64
// representation agree with the C operation, which is what keeps
// refutation sound. Operations whose C result depends on the operand
// width or signedness (wrapping +,-,*; ~; shifts; division) go to top
// unless the operands provably stay inside [0, 2^31), where every
// 32-bit-or-wider C type computes the mathematical result.

import "math"

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
	// exactMax bounds the range inside which arithmetic is evaluated
	// exactly: results in [0, exactMax] cannot have wrapped for any
	// >= 32-bit C type, signed or unsigned.
	exactMax = math.MaxInt32
)

// maxNotEq caps the per-value disequality set; beyond it new
// exclusions are dropped (conservative: fewer constraints).
const maxNotEq = 8

// Val is one abstract value.
type Val struct {
	Lo, Hi int64 // inclusive interval; Lo > Hi encodes the empty value
	// Known bits: for every bit where Mask is 1, the value's int64
	// representation has the corresponding bit of Bits.
	Mask, Bits uint64
	// NotEq lists constants the value provably differs from (kept
	// small and sorted).
	NotEq []int64
}

// top is the unconstrained value.
func top() Val { return Val{Lo: negInf, Hi: posInf} }

// exact is the single-point value c.
func exact(c int64) Val {
	return Val{Lo: c, Hi: c, Mask: ^uint64(0), Bits: uint64(c)}
}

// isTop reports whether v carries no constraint at all.
func (v Val) isTop() bool {
	return v.Lo == negInf && v.Hi == posInf && v.Mask == 0 && len(v.NotEq) == 0
}

// point returns the value's single concrete point, if it has one.
func (v Val) point() (int64, bool) {
	if v.Lo == v.Hi {
		return v.Lo, true
	}
	return 0, false
}

// empty reports whether no concrete value satisfies v. It is the
// refutation test, so every branch must be a proof: interval
// emptiness, a point contradicting the known bits, or a point hitting
// a recorded disequality.
func (v Val) empty() bool {
	if v.Lo > v.Hi {
		return true
	}
	if p, ok := v.point(); ok {
		if v.Mask != 0 && uint64(p)&v.Mask != v.Bits&v.Mask {
			return true
		}
		for _, c := range v.NotEq {
			if c == p {
				return true
			}
		}
	}
	// A fully-known bit pattern is a point; check it against the
	// interval (this is how mask-correlated branches refute: the
	// pattern says 2, the branch demands [0,0]).
	if v.Mask == ^uint64(0) {
		p := int64(v.Bits)
		if p < v.Lo || p > v.Hi {
			return true
		}
	}
	// Known low bits give a congruence floor: for a non-negative
	// value, at least the known-one bits must fit under Hi.
	if v.Lo >= 0 && v.Mask != 0 {
		minBits := int64(v.Bits & v.Mask & math.MaxInt64)
		if minBits > v.Hi {
			return true
		}
	}
	return false
}

// normalize tightens the interval from the bit pattern when it is
// fully known, and prunes disequalities outside the interval.
func (v Val) normalize() Val {
	if v.Mask == ^uint64(0) {
		p := int64(v.Bits)
		if p >= v.Lo && p <= v.Hi {
			v.Lo, v.Hi = p, p
		}
	}
	if p, ok := v.point(); ok && v.Mask != ^uint64(0) {
		v.Mask, v.Bits = ^uint64(0), uint64(p)
	}
	if len(v.NotEq) > 0 {
		kept := v.NotEq[:0]
		for _, c := range v.NotEq {
			if c >= v.Lo && c <= v.Hi {
				kept = append(kept, c)
			}
		}
		v.NotEq = kept
		// Disequalities at the interval boundary shrink it.
		for changed := true; changed; {
			changed = false
			for _, c := range v.NotEq {
				if c == v.Lo && v.Lo < v.Hi {
					v.Lo++
					changed = true
				}
				if c == v.Hi && v.Lo < v.Hi {
					v.Hi--
					changed = true
				}
			}
		}
	}
	return v
}

// meet intersects two abstract values. The known-bit planes must
// agree; conflicting planes yield an empty value.
func meet(a, b Val) Val {
	r := Val{Lo: maxi(a.Lo, b.Lo), Hi: mini(a.Hi, b.Hi)}
	if conflict := (a.Bits ^ b.Bits) & a.Mask & b.Mask; conflict != 0 {
		r.Lo, r.Hi = 1, 0 // empty
		return r
	}
	r.Mask = a.Mask | b.Mask
	r.Bits = (a.Bits & a.Mask) | (b.Bits & b.Mask)
	r.NotEq = mergeNotEq(a.NotEq, b.NotEq)
	return r.normalize()
}

// withNotEq returns v excluding constant c.
func (v Val) withNotEq(c int64) Val {
	for _, x := range v.NotEq {
		if x == c {
			return v
		}
	}
	if len(v.NotEq) >= maxNotEq {
		return v // conservative: drop the new fact, not an old one
	}
	ne := make([]int64, 0, len(v.NotEq)+1)
	inserted := false
	for _, x := range v.NotEq {
		if !inserted && c < x {
			ne = append(ne, c)
			inserted = true
		}
		ne = append(ne, x)
	}
	if !inserted {
		ne = append(ne, c)
	}
	v.NotEq = ne
	return v.normalize()
}

func mergeNotEq(a, b []int64) []int64 {
	if len(a) == 0 {
		return append([]int64(nil), b...)
	}
	out := append([]int64(nil), a...)
	for _, c := range b {
		dup := false
		for _, x := range out {
			if x == c {
				dup = true
				break
			}
		}
		if !dup && len(out) < maxNotEq {
			out = append(out, c)
		}
	}
	// Keep sorted for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// inExactRange reports whether v provably lies in [0, exactMax],
// where C arithmetic of every >= 32-bit type is exact.
func (v Val) inExactRange() bool { return v.Lo >= 0 && v.Hi <= exactMax }

// knownZeros / knownOnes split the bit planes.
func (v Val) knownZeros() uint64 { return v.Mask &^ v.Bits }
func (v Val) knownOnes() uint64  { return v.Mask & v.Bits }

// addVals is the abstract +. Exact only inside the wrap-free range.
func addVals(a, b Val) Val {
	if a.inExactRange() && b.inExactRange() && a.Hi+b.Hi <= exactMax {
		return Val{Lo: a.Lo + b.Lo, Hi: a.Hi + b.Hi}.normalize()
	}
	return top()
}

// subVals is the abstract -. Exact only when the result provably
// stays non-negative (an unsigned subtraction that borrows wraps; a
// possibly-negative result is only exact for signed operands, which
// we cannot tell apart without types).
func subVals(a, b Val) Val {
	if a.inExactRange() && b.inExactRange() && a.Lo-b.Hi >= 0 {
		return Val{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo}.normalize()
	}
	return top()
}

// mulVals is the abstract *.
func mulVals(a, b Val) Val {
	if a.inExactRange() && b.inExactRange() && a.Hi*b.Hi <= exactMax {
		return Val{Lo: a.Lo * b.Lo, Hi: a.Hi * b.Hi}.normalize()
	}
	return top()
}

// andVals is the abstract &. Bitwise ops over the int64 representation
// agree with the C op in either encoding, so the bit planes transfer
// unconditionally; the interval does when both sides are non-negative.
func andVals(a, b Val) Val {
	r := Val{Lo: negInf, Hi: posInf}
	zeros := a.knownZeros() | b.knownZeros()
	ones := a.knownOnes() & b.knownOnes()
	r.Mask = zeros | ones
	r.Bits = ones
	if a.Lo >= 0 || b.Lo >= 0 {
		r.Lo = 0
		r.Hi = posInf
		if a.Lo >= 0 {
			r.Hi = a.Hi
		}
		if b.Lo >= 0 && b.Hi < r.Hi {
			r.Hi = b.Hi
		}
	}
	return r.normalize()
}

// orVals is the abstract |.
func orVals(a, b Val) Val {
	r := Val{Lo: negInf, Hi: posInf}
	ones := a.knownOnes() | b.knownOnes()
	zeros := a.knownZeros() & b.knownZeros()
	r.Mask = zeros | ones
	r.Bits = ones
	if a.inExactRange() && b.inExactRange() {
		// x|y is bounded by x+y for non-negative operands.
		r.Lo = maxi(a.Lo, b.Lo)
		r.Hi = mini(a.Hi+b.Hi, exactMax)
	}
	return r.normalize()
}

// xorVals is the abstract ^.
func xorVals(a, b Val) Val {
	r := Val{Lo: negInf, Hi: posInf}
	both := a.Mask & b.Mask
	r.Mask = both
	r.Bits = (a.Bits ^ b.Bits) & both
	if a.inExactRange() && b.inExactRange() {
		r.Lo = 0
		r.Hi = mini(a.Hi+b.Hi, exactMax)
	}
	return r.normalize()
}

// tri is a three-valued truth: the outcome of an abstract comparison.
type tri int

const (
	unknown tri = iota
	defTrue
	defFalse
)

func triOf(b bool) tri {
	if b {
		return defTrue
	}
	return defFalse
}

// cmpLess: a < b over the abstract values.
func cmpLess(a, b Val) tri {
	switch {
	case a.Hi < b.Lo:
		return defTrue
	case a.Lo >= b.Hi:
		return defFalse
	}
	return unknown
}

// cmpEq: a == b.
func cmpEq(a, b Val) tri {
	if a.Hi < b.Lo || b.Hi < a.Lo {
		return defFalse
	}
	if conflict := (a.Bits ^ b.Bits) & a.Mask & b.Mask; conflict != 0 {
		return defFalse
	}
	ap, aok := a.point()
	bp, bok := b.point()
	if aok && bok {
		return triOf(ap == bp)
	}
	if bok {
		for _, c := range a.NotEq {
			if c == bp {
				return defFalse
			}
		}
	}
	if aok {
		for _, c := range b.NotEq {
			if c == ap {
				return defFalse
			}
		}
	}
	return unknown
}

// truth: v != 0 as a three-valued outcome.
func (v Val) truth() tri {
	if v.Lo > 0 || v.Hi < 0 {
		return defTrue
	}
	if v.knownOnes() != 0 {
		return defTrue
	}
	if p, ok := v.point(); ok {
		return triOf(p != 0)
	}
	for _, c := range v.NotEq {
		if c == 0 && v.Lo >= 0 {
			// Non-negative and != 0 means > 0.
			return defTrue
		}
	}
	return unknown
}

func (t tri) not() tri {
	switch t {
	case defTrue:
		return defFalse
	case defFalse:
		return defTrue
	}
	return unknown
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
