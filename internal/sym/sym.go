// Package sym is a bounded symbolic evaluator over the protocol-C
// subset. It walks one loop-bounded CFG path at a time, maintaining a
// per-path constraint store over the function's scalar locals
// (intervals, known-bits congruences, equalities via shared value
// cells, and disequalities), and declares the path Infeasible only
// when the store is provably unsatisfiable. Everything it cannot
// model — calls, pointer writes, side-effecting conditions, values
// outside the wrap-free range — is handled by conservative havoc, so
// a refutation is a proof while Feasible/Undecided are merely the
// absence of one. The lint triage layer builds on that asymmetry: a
// report is demoted only when every path it fires on is refuted.
package sym

import (
	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
	"flashmc/internal/obs"
)

// Verdict is the outcome of evaluating one path.
type Verdict int

// Verdicts. Only Infeasible is a proof; the other two mean "no proof".
const (
	// Feasible: the walk completed and the store stayed satisfiable.
	// The path may still be infeasible for reasons outside the domain.
	Feasible Verdict = iota
	// Infeasible: the constraint store became unsatisfiable — no
	// concrete execution can follow this path.
	Infeasible
	// Undecided: the walk gave up (back edge on the path, or budget
	// exhausted) before reaching a conclusion.
	Undecided
)

func (v Verdict) String() string {
	switch v {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Undecided:
		return "undecided"
	}
	return "?"
}

// Options bounds one evaluator.
type Options struct {
	// MaxSteps caps evaluation steps per path (default 4096); an
	// exhausted budget yields Undecided, never Infeasible.
	MaxSteps int
	// MaxConstraints caps tracked store entries (cells plus
	// disequalities, default 256); beyond it new facts are dropped.
	MaxConstraints int
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4096
	}
	if o.MaxConstraints <= 0 {
		o.MaxConstraints = 256
	}
	return o
}

// Evaluator metrics (registered on the default observability registry).
var (
	mRefuted = obs.NewCounter("sym_paths_refuted_total",
		"paths proven infeasible by the symbolic evaluator")
	mFeasible = obs.NewCounter("sym_paths_feasible_total",
		"paths the symbolic evaluator completed without refuting")
	mUndecided = obs.NewCounter("sym_paths_undecided_total",
		"paths the symbolic evaluator gave up on (back edge or budget)")
	mStoreSize = obs.NewHistogram("sym_store_constraints",
		"constraint-store entries at end of one path walk",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
)

// Evaluator evaluates paths through one function's CFG. It is not
// safe for concurrent use; each walk mutates a fresh store but shares
// the precomputed function facts.
type Evaluator struct {
	g   *cfg.Graph
	opt Options
	// tracked names: scalar locals and parameters. Reads of anything
	// else are top; writes to anything else are ignored (sound: the
	// store simply says nothing about them).
	tracked map[string]bool
	// addrTaken locals can be written through pointers; they are
	// havocked at every call and pointer store.
	addrTaken map[string]bool
	back      map[*cfg.Edge]bool
}

// NewEvaluator prepares an evaluator for g.
func NewEvaluator(g *cfg.Graph, opt Options) *Evaluator {
	ev := &Evaluator{
		g:         g,
		opt:       opt.withDefaults(),
		tracked:   map[string]bool{},
		addrTaken: map[string]bool{},
		back:      g.BackEdges(),
	}
	for _, p := range g.Fn.Params {
		ev.tracked[p.Name] = true
	}
	for _, n := range g.Nodes {
		var x ast.Node
		switch n.Kind {
		case cfg.KindStmt:
			x = n.Stmt
		case cfg.KindBranch:
			x = n.Cond
		default:
			continue
		}
		ast.Inspect(x, func(nd ast.Node) bool {
			switch d := nd.(type) {
			case *ast.DeclStmt:
				ev.tracked[d.Decl.Name] = true
			case *ast.Unary:
				if d.Op == token.BitAnd {
					if id, ok := unparen(d.X).(*ast.Ident); ok {
						ev.addrTaken[id.Name] = true
					}
				}
			}
			return true
		})
	}
	return ev
}

// Path walks one edge sequence starting at the function entry (the
// shape produced by the lint path enumerator) and returns its verdict.
func (ev *Evaluator) Path(path []*cfg.Edge) Verdict {
	// Paths that cross a back edge re-enter loop bodies the bounded
	// enumeration unrolled; the store stays sound along them, but the
	// enumeration itself under-approximates loop behavior, so refuting
	// an unrolled path must not demote a report. Give up early.
	for _, e := range path {
		if ev.back[e] {
			mUndecided.Inc()
			return Undecided
		}
	}

	w := &walk{ev: ev, st: newStore(ev.opt.MaxConstraints)}
	v := w.run(path)
	mStoreSize.Observe(float64(w.st.size()))
	switch v {
	case Infeasible:
		mRefuted.Inc()
	case Undecided:
		mUndecided.Inc()
	default:
		mFeasible.Inc()
	}
	return v
}

// walk is the per-path evaluation state.
type walk struct {
	ev    *Evaluator
	st    *store
	steps int
	over  bool // budget exhausted
	unsat bool
}

func (w *walk) tick() bool {
	w.steps++
	if w.steps > w.ev.opt.MaxSteps {
		w.over = true
	}
	return !w.over
}

func (w *walk) run(path []*cfg.Edge) Verdict {
	for _, e := range path {
		// Commit to the branch outcome this edge encodes.
		if e.From.Kind == cfg.KindBranch {
			w.assumeEdge(e)
		}
		if w.unsat {
			return Infeasible
		}
		if w.over {
			return Undecided
		}
		// Apply the effects of the node the edge enters.
		switch e.To.Kind {
		case cfg.KindStmt:
			w.execStmt(e.To.Stmt)
		case cfg.KindBranch:
			// A side-effecting condition executes when reached; the
			// outgoing edge then skips refinement (assumeEdge checks
			// purity itself).
			if !pure(e.To.Cond) {
				w.exec(e.To.Cond)
			}
		}
		if w.unsat {
			// Effects alone never falsify the store (writes rebind);
			// this only trips via refinement inside an impure-cond
			// exec, which cannot happen — but stay defensive.
			return Infeasible
		}
		if w.over {
			return Undecided
		}
	}
	return Feasible
}

// assumeEdge refines the store with the branch outcome edge e commits
// to, and flags unsat when the outcome is provably impossible.
func (w *walk) assumeEdge(e *cfg.Edge) {
	cond := e.From.Cond
	if cond == nil || !pure(cond) {
		return
	}
	switch e.Label {
	case cfg.True, cfg.False:
		want := e.Label == cfg.True
		v := w.exec(cond)
		switch v.truth() {
		case defTrue:
			if !want {
				w.unsat = true
				return
			}
		case defFalse:
			if want {
				w.unsat = true
				return
			}
		}
		w.refineTruth(cond, want)
	case cfg.CaseEq:
		if e.CaseVal == nil || !pure(e.CaseVal) {
			return
		}
		cv := w.exec(e.CaseVal)
		tag := w.exec(cond)
		if bothNonNeg(tag, cv) && cmpEq(tag, cv) == defFalse {
			w.unsat = true
			return
		}
		w.refineVal(cond, cv)
	case cfg.Default:
		// The default edge excludes every sibling case constant.
		for _, sib := range e.From.Succs {
			if sib.Label != cfg.CaseEq || sib.CaseVal == nil || !pure(sib.CaseVal) {
				continue
			}
			if c, ok := w.exec(sib.CaseVal).point(); ok {
				w.refineNotEq(cond, c)
			}
		}
	}
	if w.st.checkUnsat() {
		w.unsat = true
	}
}

// execStmt applies a statement's effects to the store.
func (w *walk) execStmt(s ast.Stmt) {
	if !w.tick() {
		return
	}
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.exec(x.X)
	case *ast.DeclStmt:
		d := x.Decl
		if d.Init != nil {
			if id, ok := pureTrackedIdent(w.ev, d.Init); ok {
				w.st.alias(d.Name, id)
				return
			}
			v := w.exec(d.Init)
			w.st.bind(d.Name, v)
			return
		}
		w.st.bind(d.Name, top())
	case *ast.Return:
		if x.X != nil {
			w.exec(x.X)
		}
	}
	// Break/Continue/Goto/Case/Empty/Labeled carry no value effects.
}

// exec evaluates an expression, applying its side effects, and
// returns its abstract value.
func (w *walk) exec(e ast.Expr) Val {
	if !w.tick() {
		return top()
	}
	switch x := e.(type) {
	case *ast.Ident:
		if w.ev.tracked[x.Name] {
			return w.st.value(x.Name)
		}
		return top()
	case *ast.IntLit:
		return litVal(x.Value)
	case *ast.CharLit:
		return litVal(x.Value)
	case *ast.Paren:
		return w.exec(x.X)
	case *ast.Unary:
		return w.execUnary(x)
	case *ast.Binary:
		return w.execBinary(x)
	case *ast.Assign:
		return w.execAssign(x)
	case *ast.Cond:
		w.exec(x.C)
		// Either arm may or may not run: havoc what they write.
		w.havocAssigned(x.Then)
		w.havocAssigned(x.Else)
		return top()
	case *ast.Call:
		for _, a := range x.Args {
			w.exec(a)
		}
		// The callee can write through any pointer it can reach:
		// address-taken locals and everything untracked.
		w.havocAddrTaken()
		return top()
	case *ast.Index:
		w.exec(x.X)
		w.exec(x.Idx)
		return top()
	case *ast.Member:
		w.exec(x.X)
		return top()
	case *ast.Cast:
		w.exec(x.X)
		return top()
	}
	return top()
}

func (w *walk) execUnary(x *ast.Unary) Val {
	switch x.Op {
	case token.Not:
		v := w.exec(x.X)
		return triVal(v.truth().not())
	case token.Add:
		return w.exec(x.X)
	case token.Inc, token.Dec:
		old := w.exec(x.X)
		var nv Val
		if x.Op == token.Inc {
			nv = addVals(old, exact(1))
		} else {
			nv = subVals(old, exact(1))
		}
		w.writeLValue(x.X, nv)
		if x.Postfix {
			return old
		}
		return nv
	case token.Star:
		w.exec(x.X)
		return top() // read through a pointer
	case token.BitAnd:
		return top() // an address
	default:
		// -x wraps for unsigned operands, ~x flips unknown high bits:
		// both depend on the operand width we do not model.
		w.exec(x.X)
		return top()
	}
}

func (w *walk) execBinary(x *ast.Binary) Val {
	switch x.Op {
	case token.LogicalAnd, token.LogicalOr:
		xv := w.exec(x.X)
		// Y runs conditionally. Evaluate it first — its value is only
		// consulted on outcomes where Y actually ran, so executing it
		// against the post-X store is exact there — then weaken
		// whatever it wrote, because on the short-circuit outcome
		// those stores never happened. (Havocking before exec would
		// leave Y's writes in the store as strong updates.)
		yv := w.exec(x.Y)
		w.havocAssigned(x.Y)
		xt, yt := xv.truth(), yv.truth()
		if x.Op == token.LogicalAnd {
			switch {
			case xt == defFalse || yt == defFalse:
				return exact(0)
			case xt == defTrue && yt == defTrue:
				return exact(1)
			}
		} else {
			switch {
			case xt == defTrue || yt == defTrue:
				return exact(1)
			case xt == defFalse && yt == defFalse:
				return exact(0)
			}
		}
		return boolRange()
	case token.Comma:
		w.exec(x.X)
		return w.exec(x.Y)
	}
	a := w.exec(x.X)
	b := w.exec(x.Y)
	switch x.Op {
	case token.Add:
		return addVals(a, b)
	case token.Sub:
		return subVals(a, b)
	case token.Star:
		return mulVals(a, b)
	case token.BitAnd:
		return andVals(a, b)
	case token.BitOr:
		return orVals(a, b)
	case token.BitXor:
		return xorVals(a, b)
	case token.Eq, token.NotEq, token.Less, token.LessEq, token.Greater, token.GreaterEq:
		return triVal(compare(x.Op, a, b))
	default:
		// Div, Mod, Shl, Shr: width- and signedness-dependent.
		return top()
	}
}

func (w *walk) execAssign(x *ast.Assign) Val {
	if x.Op == token.Assign {
		// Plain copy of a tracked local: share the value cell, so the
		// two names stay provably equal until one is rewritten.
		if dst, ok := unparen(x.LHS).(*ast.Ident); ok && w.ev.tracked[dst.Name] {
			if src, ok := pureTrackedIdent(w.ev, x.RHS); ok {
				w.st.alias(dst.Name, src)
				return w.st.value(dst.Name)
			}
		}
		v := w.exec(x.RHS)
		w.writeLValue(x.LHS, v)
		return v
	}
	// Compound assignment: x op= y.
	old := w.exec(x.LHS)
	rhs := w.exec(x.RHS)
	var nv Val
	switch x.Op {
	case token.AddAssign:
		nv = addVals(old, rhs)
	case token.SubAssign:
		nv = subVals(old, rhs)
	case token.MulAssign:
		nv = mulVals(old, rhs)
	case token.AndAssign:
		nv = andVals(old, rhs)
	case token.OrAssign:
		nv = orVals(old, rhs)
	case token.XorAssign:
		nv = xorVals(old, rhs)
	default:
		nv = top()
	}
	w.writeLValue(x.LHS, nv)
	return nv
}

// writeLValue stores v into an lvalue. Tracked idents rebind; writes
// through pointers havoc every address-taken local; anything else
// (globals, struct fields, array slots) is simply not tracked.
func (w *walk) writeLValue(lhs ast.Expr, v Val) {
	switch t := unparen(lhs).(type) {
	case *ast.Ident:
		if w.ev.tracked[t.Name] {
			w.st.bind(t.Name, v)
		}
	case *ast.Unary:
		if t.Op == token.Star {
			w.exec(t.X)
			w.havocAddrTaken()
		}
	case *ast.Index, *ast.Member:
		// Could alias an address-taken local through a pointer base.
		w.havocAddrTaken()
	}
}

// havocAddrTaken forgets everything about address-taken locals.
func (w *walk) havocAddrTaken() {
	for name := range w.ev.addrTaken {
		if w.ev.tracked[name] {
			w.st.bind(name, top())
		}
	}
}

// havocAssigned forgets every local the expression might write
// (used for conditionally-executed subexpressions).
func (w *walk) havocAssigned(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.Assign:
			w.writeLValue(x.LHS, top())
		case *ast.Unary:
			if x.Op == token.Inc || x.Op == token.Dec {
				w.writeLValue(x.X, top())
			}
		case *ast.Call:
			w.havocAddrTaken()
		}
		return true
	})
}

// refineTruth narrows the store assuming cond's truth equals outcome.
// Refinement may only shrink concretizations of path-reachable states;
// anything it cannot interpret it leaves alone.
func (w *walk) refineTruth(cond ast.Expr, outcome bool) {
	if !w.tick() {
		return
	}
	switch x := cond.(type) {
	case *ast.Paren:
		w.refineTruth(x.X, outcome)
	case *ast.Ident:
		if !w.ev.tracked[x.Name] {
			return
		}
		if outcome {
			w.st.update(x.Name, w.st.value(x.Name).withNotEq(0))
		} else {
			w.st.update(x.Name, meet(w.st.value(x.Name), exact(0)))
		}
	case *ast.Unary:
		if x.Op == token.Not {
			w.refineTruth(x.X, !outcome)
		}
	case *ast.Binary:
		w.refineBinaryTruth(x, outcome)
	}
	if w.st.checkUnsat() {
		w.unsat = true
	}
}

func (w *walk) refineBinaryTruth(x *ast.Binary, outcome bool) {
	switch x.Op {
	case token.LogicalAnd:
		if outcome { // both conjuncts hold
			w.refineTruth(x.X, true)
			w.refineTruth(x.Y, true)
		}
	case token.LogicalOr:
		if !outcome { // both disjuncts fail
			w.refineTruth(x.X, false)
			w.refineTruth(x.Y, false)
		}
	case token.Eq, token.NotEq:
		eq := (x.Op == token.Eq) == outcome
		a := w.exec(x.X)
		b := w.exec(x.Y)
		if eq {
			w.refineVal(x.X, b)
			w.refineVal(x.Y, a)
			w.st.diseqOrEq(w.ev, x.X, x.Y, true)
		} else {
			if c, ok := b.point(); ok {
				w.refineNotEq(x.X, c)
			}
			if c, ok := a.point(); ok {
				w.refineNotEq(x.Y, c)
			}
			w.st.diseqOrEq(w.ev, x.X, x.Y, false)
		}
	case token.Less, token.LessEq, token.Greater, token.GreaterEq:
		w.refineRelational(x, outcome)
	case token.BitAnd:
		// (e & c): false means every bit of c is clear in e; true with
		// a single-bit c means that bit is set.
		sub, c, ok := maskedOperand(w, x)
		if !ok || c <= 0 {
			return
		}
		if !outcome {
			w.refineVal(sub, Val{Lo: negInf, Hi: posInf, Mask: uint64(c)})
		} else if c&(c-1) == 0 {
			w.refineVal(sub, Val{Lo: negInf, Hi: posInf, Mask: uint64(c), Bits: uint64(c)})
		}
	}
}

// refineRelational handles <, <=, >, >= under the non-negative guard:
// interval refinement relies on int64 order agreeing with the C
// comparison, which holds within either encoding but not across a
// mixed signed/unsigned compare — provable non-negativity of both
// sides sidesteps the mismatch entirely.
func (w *walk) refineRelational(x *ast.Binary, outcome bool) {
	a := w.exec(x.X)
	b := w.exec(x.Y)
	if !bothNonNeg(a, b) {
		return
	}
	op := x.Op
	if !outcome {
		// !(a < b) is a >= b, etc.
		switch op {
		case token.Less:
			op = token.GreaterEq
		case token.LessEq:
			op = token.Greater
		case token.Greater:
			op = token.LessEq
		case token.GreaterEq:
			op = token.Less
		}
	}
	// Normalize to left-op-right with op in {<, <=}.
	lhs, rhs, lv, rv := x.X, x.Y, a, b
	if op == token.Greater || op == token.GreaterEq {
		lhs, rhs, lv, rv = x.Y, x.X, b, a
		if op == token.Greater {
			op = token.Less
		} else {
			op = token.LessEq
		}
	}
	// Now lhs < rhs or lhs <= rhs.
	strict := int64(0)
	if op == token.Less {
		strict = 1
	}
	if rv.Hi < posInf {
		w.refineVal(lhs, Val{Lo: negInf, Hi: rv.Hi - strict})
	}
	if lv.Lo > negInf {
		w.refineVal(rhs, Val{Lo: lv.Lo + strict, Hi: posInf})
	}
}

// refineVal narrows the value of expression e with constraint v,
// looking through parens and constant bit masks to a tracked ident.
func (w *walk) refineVal(e ast.Expr, v Val) {
	if !w.tick() {
		return
	}
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if w.ev.tracked[x.Name] {
			w.st.update(x.Name, meet(w.st.value(x.Name), v))
		}
	case *ast.Binary:
		switch x.Op {
		case token.BitAnd:
			// (sub & c) == v fixes sub's bits covered by both c and
			// v's known plane.
			if sub, c, ok := maskedOperand(w, x); ok && c >= 0 {
				m := uint64(c) & v.Mask
				w.refineVal(sub, Val{Lo: negInf, Hi: posInf, Mask: m, Bits: v.Bits & m})
			}
		case token.BitOr:
			// (sub | c) == v fixes sub's bits outside c where v is
			// known.
			if sub, c, ok := maskedOperand(w, x); ok && c >= 0 {
				m := v.Mask &^ uint64(c)
				w.refineVal(sub, Val{Lo: negInf, Hi: posInf, Mask: m, Bits: v.Bits & m})
			}
		}
	}
}

// refineNotEq records e != c.
func (w *walk) refineNotEq(e ast.Expr, c int64) {
	if id, ok := unparen(e).(*ast.Ident); ok && w.ev.tracked[id.Name] {
		w.st.update(id.Name, w.st.value(id.Name).withNotEq(c))
	}
}

// maskedOperand decomposes a bitwise binary whose one side is a
// constant, returning the variable side and the constant.
func maskedOperand(w *walk, x *ast.Binary) (sub ast.Expr, c int64, ok bool) {
	if p, isLit := constValue(x.Y); isLit {
		return x.X, p, true
	}
	if p, isLit := constValue(x.X); isLit {
		return x.Y, p, true
	}
	return nil, 0, false
}

func constValue(e ast.Expr) (int64, bool) {
	switch x := unparen(e).(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.CharLit:
		return x.Value, true
	}
	return 0, false
}

// compare evaluates a comparison under the non-negative guard (see
// refineRelational for why the guard is load-bearing).
func compare(op token.Kind, a, b Val) tri {
	if !bothNonNeg(a, b) {
		return unknown
	}
	switch op {
	case token.Eq:
		return cmpEq(a, b)
	case token.NotEq:
		return cmpEq(a, b).not()
	case token.Less:
		return cmpLess(a, b)
	case token.GreaterEq:
		return cmpLess(a, b).not()
	case token.Greater:
		return cmpLess(b, a)
	case token.LessEq:
		return cmpLess(b, a).not()
	}
	return unknown
}

func bothNonNeg(a, b Val) bool { return a.Lo >= 0 && b.Lo >= 0 }

// litVal maps a literal to an abstract value. Literals outside the
// wrap-free range (e.g. 0xFFFFFFFF) depend on the type they are read
// at, which the domain does not model.
func litVal(c int64) Val {
	if c < 0 || c > exactMax {
		return top()
	}
	return exact(c)
}

// triVal embeds a three-valued truth as an abstract 0/1 value.
func triVal(t tri) Val {
	switch t {
	case defTrue:
		return exact(1)
	case defFalse:
		return exact(0)
	}
	return boolRange()
}

func boolRange() Val {
	return Val{Lo: 0, Hi: 1, Mask: ^uint64(1), Bits: 0}
}

// pure reports whether evaluating e has no side effects.
func pure(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.Assign, *ast.Call:
			ok = false
		case *ast.Unary:
			if x.Op == token.Inc || x.Op == token.Dec {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// pureTrackedIdent unwraps e to a tracked bare identifier.
func pureTrackedIdent(ev *Evaluator, e ast.Expr) (string, bool) {
	if id, ok := unparen(e).(*ast.Ident); ok && ev.tracked[id.Name] {
		return id.Name, true
	}
	return "", false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}
