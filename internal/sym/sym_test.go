package sym

import (
	"strings"
	"testing"

	"flashmc/internal/cc/parser"
	"flashmc/internal/cfg"
)

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	f, errs := parser.ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return cfg.Build(f.Funcs()[0])
}

// allPaths enumerates entry-to-exit edge sequences with each edge
// visited at most twice (the same loop bound the lint triage uses).
func allPaths(g *cfg.Graph) [][]*cfg.Edge {
	var paths [][]*cfg.Edge
	var cur []*cfg.Edge
	visits := map[*cfg.Edge]int{}
	var dfs func(n *cfg.Node)
	dfs = func(n *cfg.Node) {
		if n == g.Exit {
			paths = append(paths, append([]*cfg.Edge(nil), cur...))
			return
		}
		for _, e := range n.Succs {
			if visits[e] >= 2 {
				continue
			}
			visits[e]++
			cur = append(cur, e)
			dfs(e.To)
			cur = cur[:len(cur)-1]
			visits[e]--
		}
	}
	dfs(g.Entry)
	return paths
}

// labelsOf renders the branch outcomes a path commits to, e.g. "TF".
func labelsOf(path []*cfg.Edge) string {
	var b strings.Builder
	for _, e := range path {
		switch e.Label {
		case cfg.True:
			b.WriteByte('T')
		case cfg.False:
			b.WriteByte('F')
		case cfg.CaseEq:
			b.WriteByte('C')
		case cfg.Default:
			b.WriteByte('D')
		}
	}
	return b.String()
}

// verdictsByLabels maps each path's branch signature to its verdict.
func verdictsByLabels(t *testing.T, src string) map[string]Verdict {
	t.Helper()
	g := buildGraph(t, src)
	ev := NewEvaluator(g, Options{})
	out := map[string]Verdict{}
	for _, p := range allPaths(g) {
		out[labelsOf(p)] = ev.Path(p)
	}
	return out
}

func wantVerdict(t *testing.T, got map[string]Verdict, labels string, want Verdict) {
	t.Helper()
	v, ok := got[labels]
	if !ok {
		t.Fatalf("no path with branch signature %q; have %v", labels, got)
	}
	if v != want {
		t.Errorf("path %q: verdict %v, want %v", labels, v, want)
	}
}

// The value-correlated mask shape: after t0 |= 2, the branch on
// t0 & 2 can only go one way. Refuting the else path needs known-bits
// reasoning — syntactic correlation sees a single unrepeated branch.
func TestMaskCorrelatedElseRefuted(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	t0 = t0 | 2;
	if (t0 & 2) {
		DEC_DB_REF(0);
	} else {
		no_free_needed();
	}
}`)
	wantVerdict(t, got, "T", Feasible)
	wantVerdict(t, got, "F", Infeasible)
}

// The paper's duplicated-condition shape: a flag tested positively,
// an unrelated write, then the negated test. Only the consistent
// outcome pairs are feasible.
func TestDuplicatedConditionRefuted(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	unsigned t1;
	t1 = t0 & 1;
	if (t1) {
		DEC_DB_REF(0);
	}
	t0 = t0 + 1;
	if (!t1) {
		DEC_DB_REF(0);
	}
}`)
	wantVerdict(t, got, "TT", Infeasible)
	wantVerdict(t, got, "TF", Feasible)
	wantVerdict(t, got, "FT", Feasible)
	wantVerdict(t, got, "FF", Infeasible)
}

// A branch on an unconstrained local can go either way: no path may
// be refuted (this is the seeded true-error shape, which must stay
// certain downstream).
func TestUnconstrainedBranchStaysFeasible(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	if (t0 > 2) {
		DEC_DB_REF(0);
	}
	if (t0 > 2) {
		DEC_DB_REF(0);
	}
}`)
	for labels, v := range got {
		if labels == "TF" || labels == "FT" {
			// Repeated-condition contradictions refute only when the
			// comparison is decidable in the domain; t0 is top, so
			// even these stay unproven — and that is the point:
			// slicing catches them, sym stays conservative.
			continue
		}
		if v == Infeasible {
			t.Errorf("path %q refuted; unconstrained branches must stay feasible", labels)
		}
	}
}

// A known-zero local is resurrected by a call that can write it
// through its taken address; without the call the branch is refuted.
func TestCallHavocsAddressTakenLocal(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	t0 = 0;
	poke(&t0);
	if (t0) {
		DEC_DB_REF(0);
	}
}`)
	wantVerdict(t, got, "T", Feasible)

	got = verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	t0 = 0;
	if (t0) {
		DEC_DB_REF(0);
	}
}`)
	wantVerdict(t, got, "T", Infeasible)
	wantVerdict(t, got, "F", Feasible)
}

// A call must not resurrect a local whose address is never taken: the
// callee cannot name it.
func TestCallKeepsUntouchableLocal(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	t0 = 0;
	poke(1);
	if (t0) {
		DEC_DB_REF(0);
	}
}`)
	wantVerdict(t, got, "T", Infeasible)
}

// Equality via aliasing: after t1 = t0, refining t0 refines t1.
func TestCopyPropagatesRefinement(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	unsigned t1;
	t1 = t0;
	if (t0 == 1) {
		if (t1 == 2) {
			DEC_DB_REF(0);
		}
	}
}`)
	wantVerdict(t, got, "TT", Infeasible)
	wantVerdict(t, got, "TF", Feasible)
}

// Disequality: t0 != t1 survives refinement of both sides to the same
// point.
func TestDisequalityRefutes(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	unsigned t1;
	if (t0 != t1) {
		if (t0 == 5) {
			if (t1 == 5) {
				DEC_DB_REF(0);
			}
		}
	}
}`)
	wantVerdict(t, got, "TTT", Infeasible)
	wantVerdict(t, got, "TTF", Feasible)
}

// A write to one alias must break the equality, not follow it.
func TestWriteBreaksAlias(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	unsigned t1;
	t1 = t0;
	t0 = 7;
	if (t1 == 7) {
		if (t0 == 3) {
			DEC_DB_REF(0);
		}
	}
}`)
	// t1 == 7 is undecided (t1 kept the old value), t0 == 3 is
	// decidable false.
	wantVerdict(t, got, "TT", Infeasible)
	wantVerdict(t, got, "TF", Feasible)
}

// Switch dispatch: a case edge that contradicts the tag's value is
// refuted, as is the default edge when some case must match.
func TestSwitchCaseRefinement(t *testing.T) {
	g := buildGraph(t, `
void h(void) {
	unsigned t0;
	t0 = 3;
	switch (t0) {
	case 1:
		DEC_DB_REF(0);
		break;
	case 3:
		break;
	}
}`)
	ev := NewEvaluator(g, Options{})
	sawCase1, sawCase3, sawDefault := false, false, false
	for _, p := range allPaths(g) {
		v := ev.Path(p)
		for _, e := range p {
			switch {
			case e.Label == cfg.CaseEq && litOf(e) == 1:
				sawCase1 = true
				if v != Infeasible {
					t.Errorf("case 1 path with tag 3: verdict %v, want infeasible", v)
				}
			case e.Label == cfg.CaseEq && litOf(e) == 3:
				sawCase3 = true
				if v != Feasible {
					t.Errorf("case 3 path with tag 3: verdict %v, want feasible", v)
				}
			case e.Label == cfg.Default:
				sawDefault = true
				if v != Infeasible {
					t.Errorf("default path with tag 3: verdict %v, want infeasible", v)
				}
			}
		}
	}
	if !sawCase1 || !sawCase3 || !sawDefault {
		t.Fatalf("missing switch arms: case1=%v case3=%v default=%v",
			sawCase1, sawCase3, sawDefault)
	}
}

func litOf(e *cfg.Edge) int64 {
	if v, ok := constValue(e.CaseVal); ok {
		return v
	}
	return -1
}

// Paths that cross a loop back edge are never refuted: the bounded
// enumeration under-approximates loop behavior.
func TestBackEdgePathsUndecided(t *testing.T) {
	g := buildGraph(t, `
void h(void) {
	unsigned i;
	for (i = 0; i < 2; i = i + 1) {
		DEC_DB_REF(0);
	}
}`)
	ev := NewEvaluator(g, Options{})
	back := g.BackEdges()
	sawLoop := false
	for _, p := range allPaths(g) {
		crosses := false
		for _, e := range p {
			if back[e] {
				crosses = true
			}
		}
		v := ev.Path(p)
		if crosses {
			sawLoop = true
			if v != Undecided {
				t.Errorf("back-edge path %q: verdict %v, want undecided", labelsOf(p), v)
			}
		}
	}
	if !sawLoop {
		t.Fatal("no path crossed the back edge")
	}
}

// An exhausted step budget yields Undecided, never Infeasible.
func TestBudgetExhaustionUndecided(t *testing.T) {
	g := buildGraph(t, `
void h(void) {
	unsigned t0;
	t0 = 0;
	t0 = t0 + 1;
	t0 = t0 + 1;
	if (t0 == 0) {
		DEC_DB_REF(0);
	}
}`)
	ev := NewEvaluator(g, Options{MaxSteps: 1})
	for _, p := range allPaths(g) {
		if v := ev.Path(p); v != Undecided {
			t.Errorf("path %q under MaxSteps=1: verdict %v, want undecided", labelsOf(p), v)
		}
	}
}

// Side-effecting conditions apply their effects but never refine.
func TestImpureConditionNotRefined(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	t0 = 0;
	if ((t0 = frob())) {
		if (t0 == 0) {
			DEC_DB_REF(0);
		}
	}
}`)
	// After the impure condition t0 is havocked (assigned the call's
	// unknown result), so both inner outcomes stay open.
	wantVerdict(t, got, "TT", Feasible)
	wantVerdict(t, got, "TF", Feasible)
}

// A short-circuited RHS's stores may never happen: with t1 == 0 the
// assignment is skipped and t0 keeps 3, so the t0 == 3 outcome is
// concretely executable and must not be refuted (regression: the
// evaluator used to havoc t0 and then apply t0 = 5 as a strong
// update, proving the true path "infeasible").
func TestShortCircuitStoreStaysWeak(t *testing.T) {
	got := verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	unsigned t1;
	t0 = 3;
	t1 && (t0 = 5);
	if (t0 == 3) {
		DEC_DB_REF(0);
	}
}`)
	wantVerdict(t, got, "T", Feasible)
	wantVerdict(t, got, "F", Feasible)

	// The || dual: with t1 != 0 the RHS is skipped.
	got = verdictsByLabels(t, `
void h(void) {
	unsigned t0;
	unsigned t1;
	t0 = 3;
	t1 || (t0 = 5);
	if (t0 == 3) {
		DEC_DB_REF(0);
	}
}`)
	wantVerdict(t, got, "T", Feasible)
	wantVerdict(t, got, "F", Feasible)
}
