package sym

import (
	"fmt"
	"strings"
	"testing"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/parser"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
)

// FuzzSymEval is the soundness fuzzer: generate a random branchy
// function over four unsigned locals, execute it concretely with
// 32-bit wraparound semantics from fuzz-chosen initial values, record
// the CFG path the execution takes, and demand the symbolic evaluator
// never calls that concretely-executed path infeasible (and never
// panics on any path). A failure here means a refutation rule is not
// a proof.
func FuzzSymEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 5, 7, 0, 2, 1, 1, 14})
	f.Add([]byte{4, 0, 0, 2, 9, 0, 2, 13, 14})
	f.Add([]byte{3, 1, 0, 1, 10, 1, 1, 0, 2, 7, 13, 8, 1, 14, 14})
	f.Add([]byte{12, 0, 1, 10, 0, 5, 10, 1, 5, 14, 14, 14})
	// t0 = 3; t1 && (t0 = 5); if (t0 == 3) — with t1 == 0 the store is
	// skipped, so the true path is concretely executable (regression
	// for the havoc-before-exec short-circuit bug).
	f.Add([]byte{3, 0, 0, 0, 0, 0, 3, 16, 1, 0, 5, 10, 0, 3, 14})
	// t0 += 9; ++t1; if (t0 < 20) — compound assignment and inc.
	f.Add([]byte{1, 2, 0, 0, 18, 0, 0, 9, 19, 1, 2, 11, 0, 20, 14})
	// Ternary, ||/&& as values, and a short-circuit branch condition.
	f.Add([]byte{0, 0, 0, 0, 20, 0, 1, 2, 7, 17, 3, 0, 1, 2, 21, 2, 1, 3, 30, 14})
	f.Fuzz(func(t *testing.T, data []byte) {
		src, inits := genFunc(data)
		file, errs := parser.ParseText("fuzz.c", src)
		if len(errs) != 0 || len(file.Funcs()) == 0 {
			t.Fatalf("generator emitted unparseable source:\n%s\n%v", src, errs)
		}
		g := cfg.Build(file.Funcs()[0])
		ev := NewEvaluator(g, Options{})

		path, ok := concreteWalk(g, inits)
		if ok {
			if v := ev.Path(path); v == Infeasible {
				t.Fatalf("refuted a concretely executable path (inits %v):\n%s", inits, src)
			}
		}

		// Panic-safety over a bounded sample of paths, executable or
		// not (sequential branches make the full set exponential).
		for _, p := range pathsBounded(g, 256) {
			ev.Path(p)
		}
	})
}

// pathsBounded enumerates entry-to-exit paths like allPaths but stops
// after max paths, keeping fuzz iterations linear-ish.
func pathsBounded(g *cfg.Graph, max int) [][]*cfg.Edge {
	var paths [][]*cfg.Edge
	var cur []*cfg.Edge
	visits := map[*cfg.Edge]int{}
	var dfs func(n *cfg.Node)
	dfs = func(n *cfg.Node) {
		if len(paths) >= max {
			return
		}
		if n == g.Exit {
			paths = append(paths, append([]*cfg.Edge(nil), cur...))
			return
		}
		for _, e := range n.Succs {
			if visits[e] >= 2 {
				continue
			}
			visits[e]++
			cur = append(cur, e)
			dfs(e.To)
			cur = cur[:len(cur)-1]
			visits[e]--
		}
	}
	dfs(g.Entry)
	return paths
}

// genFunc renders fuzz bytes as one protocol-C function over locals
// t0..t3, plus the initial values the concrete run starts from. Only
// constructs the symbolic evaluator models are emitted; every program
// is loop-free, so the concrete walk terminates.
func genFunc(data []byte) (string, [4]uint32) {
	var inits [4]uint32
	for i := range inits {
		if len(data) > 0 {
			inits[i] = uint32(data[0]) | uint32(data[0])<<8
			data = data[1:]
		}
	}
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}

	var b strings.Builder
	b.WriteString("void h(void) {\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "\tunsigned t%d;\n", i)
	}
	// elseOK[d] records whether the open block at depth d can still
	// grow an else arm. Ops and nesting are capped so the rendered
	// source stays small no matter how large the fuzz input grows.
	const maxOps, maxDepth = 256, 24
	var elseOK []bool
	emit := func(s string) {
		b.WriteByte('\t')
		b.WriteString(s)
		b.WriteByte('\n')
	}
	for ops := 0; len(data) > 0 && ops < maxOps; ops++ {
		op := next() % 22
		a := next() % 4
		if (op >= 7 && op <= 12 || op == 21) && len(elseOK) >= maxDepth {
			op = 0 // too deep: degrade branch ops to a plain store
		}
		switch op {
		case 0:
			emit(fmt.Sprintf("t%d = %d;", a, next()%64))
		case 1:
			emit(fmt.Sprintf("t%d = t%d;", a, next()%4))
		case 2:
			emit(fmt.Sprintf("t%d = t%d + %d;", a, next()%4, next()%64))
		case 3:
			emit(fmt.Sprintf("t%d = t%d & %d;", a, next()%4, next()%64))
		case 4:
			emit(fmt.Sprintf("t%d = t%d | %d;", a, next()%4, next()%64))
		case 5:
			emit(fmt.Sprintf("t%d = t%d ^ %d;", a, next()%4, next()%64))
		case 6:
			emit(fmt.Sprintf("t%d = t%d - %d;", a, next()%4, next()%64))
		case 7:
			emit(fmt.Sprintf("if (t%d) {", a))
			elseOK = append(elseOK, true)
		case 8:
			emit(fmt.Sprintf("if (!t%d) {", a))
			elseOK = append(elseOK, true)
		case 9:
			emit(fmt.Sprintf("if (t%d & %d) {", a, next()%64))
			elseOK = append(elseOK, true)
		case 10:
			emit(fmt.Sprintf("if (t%d == %d) {", a, next()%64))
			elseOK = append(elseOK, true)
		case 11:
			emit(fmt.Sprintf("if (t%d < %d) {", a, next()%64))
			elseOK = append(elseOK, true)
		case 12:
			emit(fmt.Sprintf("if (t%d != t%d) {", a, next()%4))
			elseOK = append(elseOK, true)
		case 13:
			if n := len(elseOK); n > 0 && elseOK[n-1] {
				elseOK[n-1] = false
				b.WriteString("\t} else {\n")
			}
		case 14:
			if n := len(elseOK); n > 0 {
				elseOK = elseOK[:n-1]
				b.WriteString("\t}\n")
			}
		case 15:
			emit(fmt.Sprintf("t%d = t%d + t%d;", a, next()%4, next()%4))
		case 16:
			// The conditional-store shape: the RHS runs only when the
			// guard is true, so its write must stay weak.
			emit(fmt.Sprintf("t%d && (t%d = %d);", a, next()%4, next()%64))
		case 17:
			emit(fmt.Sprintf("t%d = (t%d || t%d) && t%d;", a, next()%4, next()%4, next()%4))
		case 18:
			compound := [...]string{"+=", "-=", "&=", "|=", "^="}
			emit(fmt.Sprintf("t%d %s %d;", a, compound[next()%5], next()%64))
		case 19:
			forms := [...]string{"t%d++;", "t%d--;", "++t%d;", "--t%d;"}
			emit(fmt.Sprintf(forms[next()%4], a))
		case 20:
			emit(fmt.Sprintf("t%d = t%d ? t%d : %d;", a, next()%4, next()%4, next()%64))
		case 21:
			oper := "&&"
			if next()%2 == 1 {
				oper = "||"
			}
			emit(fmt.Sprintf("if (t%d %s t%d < %d) {", a, oper, next()%4, next()%64))
			elseOK = append(elseOK, true)
		}
	}
	for n := len(elseOK); n > 0; n-- {
		b.WriteString("\t}\n")
	}
	b.WriteString("}\n")
	return b.String(), inits
}

// concreteWalk executes g with C unsigned-32 semantics from the given
// initial values and returns the edge path taken.
func concreteWalk(g *cfg.Graph, inits [4]uint32) ([]*cfg.Edge, bool) {
	env := map[string]uint32{}
	var path []*cfg.Edge
	cur := g.Entry
	for steps := 0; cur != g.Exit; steps++ {
		if steps > 100000 {
			return nil, false // defensive; generated code is loop-free
		}
		var edge *cfg.Edge
		if cur.Kind == cfg.KindBranch {
			want := cfg.False
			if cEval(cur.Cond, env) != 0 {
				want = cfg.True
			}
			for _, e := range cur.Succs {
				if e.Label == want {
					edge = e
					break
				}
			}
		} else if len(cur.Succs) > 0 {
			edge = cur.Succs[0]
		}
		if edge == nil {
			return nil, false
		}
		path = append(path, edge)
		cur = edge.To
		if cur.Kind == cfg.KindStmt {
			switch s := cur.Stmt.(type) {
			case *ast.ExprStmt:
				cEval(s.X, env)
			case *ast.DeclStmt:
				// Uninitialized locals start from the fuzz-chosen
				// values: every concrete choice is a legal execution.
				idx := int(s.Decl.Name[len(s.Decl.Name)-1] - '0')
				env[s.Decl.Name] = inits[idx%4]
			}
		}
	}
	return path, true
}

// cEval is the concrete reference interpreter for the generated
// subset: unsigned 32-bit wraparound arithmetic.
func cEval(e ast.Expr, env map[string]uint32) uint32 {
	switch x := e.(type) {
	case *ast.Ident:
		return env[x.Name]
	case *ast.IntLit:
		return uint32(x.Value)
	case *ast.Paren:
		return cEval(x.X, env)
	case *ast.Unary:
		switch x.Op {
		case token.Not:
			if cEval(x.X, env) == 0 {
				return 1
			}
			return 0
		case token.Inc, token.Dec:
			name := x.X.(*ast.Ident).Name
			old := env[name]
			nv := old + 1
			if x.Op == token.Dec {
				nv = old - 1
			}
			env[name] = nv
			if x.Postfix {
				return old
			}
			return nv
		}
		panic(fmt.Sprintf("cEval: unary op %v not in generated subset", x.Op))
	case *ast.Assign:
		r := cEval(x.RHS, env)
		name := x.LHS.(*ast.Ident).Name
		var v uint32
		switch x.Op {
		case token.Assign:
			v = r
		case token.AddAssign:
			v = env[name] + r
		case token.SubAssign:
			v = env[name] - r
		case token.AndAssign:
			v = env[name] & r
		case token.OrAssign:
			v = env[name] | r
		case token.XorAssign:
			v = env[name] ^ r
		default:
			panic(fmt.Sprintf("cEval: assign op %v not in generated subset", x.Op))
		}
		env[name] = v
		return v
	case *ast.Cond:
		if cEval(x.C, env) != 0 {
			return cEval(x.Then, env)
		}
		return cEval(x.Else, env)
	case *ast.Binary:
		// Short-circuit before the eager operand evaluation below:
		// the RHS (and its side effects) must be skipped exactly when
		// C skips it, or the reference diverges from C semantics.
		switch x.Op {
		case token.LogicalAnd:
			if cEval(x.X, env) == 0 {
				return 0
			}
			return b2u(cEval(x.Y, env) != 0)
		case token.LogicalOr:
			if cEval(x.X, env) != 0 {
				return 1
			}
			return b2u(cEval(x.Y, env) != 0)
		}
		a := cEval(x.X, env)
		bb := cEval(x.Y, env)
		switch x.Op {
		case token.Add:
			return a + bb
		case token.Sub:
			return a - bb
		case token.BitAnd:
			return a & bb
		case token.BitOr:
			return a | bb
		case token.BitXor:
			return a ^ bb
		case token.Eq:
			return b2u(a == bb)
		case token.NotEq:
			return b2u(a != bb)
		case token.Less:
			return b2u(a < bb)
		}
	}
	panic(fmt.Sprintf("cEval: node %T not in generated subset", e))
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
