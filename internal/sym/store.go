package sym

import "flashmc/internal/cc/ast"

// The constraint store binds local names to value cells. A cell is
// one SSA-like path value: assignment rebinds the name to a fresh
// cell, so facts recorded about the old cell (refinements,
// disequalities) keep describing the old value and never leak onto
// the new one. Equality is represented by aliasing — `x = y` binds
// both names to one shared cell, so refining x through a later branch
// refines y for free until either is rewritten.
type cell struct{ v Val }

type store struct {
	max   int
	cells map[string]*cell
	// diseq records pairs of cells whose values are proven unequal.
	diseq [][2]*cell
}

func newStore(max int) *store {
	return &store{max: max, cells: map[string]*cell{}}
}

// value reads a name's current abstract value (top when unbound).
func (s *store) value(name string) Val {
	if c := s.cells[name]; c != nil {
		return c.v
	}
	return top()
}

// bind rebinds name to a fresh cell holding v (a strong update).
func (s *store) bind(name string, v Val) {
	if len(s.cells) >= s.max {
		if _, exists := s.cells[name]; !exists {
			return // over budget: drop the fact, stay conservative
		}
	}
	s.cells[name] = &cell{v: v}
}

// alias binds dst to src's cell, making them provably equal.
func (s *store) alias(dst, src string) {
	c := s.cells[src]
	if c == nil {
		if len(s.cells) >= s.max {
			s.cells[dst] = nil
			delete(s.cells, dst)
			return
		}
		c = &cell{v: top()}
		s.cells[src] = c
	}
	s.cells[dst] = c
}

// update refines name's current cell in place, which also refines
// every alias of the same value.
func (s *store) update(name string, v Val) {
	c := s.cells[name]
	if c == nil {
		s.bind(name, v)
		return
	}
	c.v = v
}

// diseqOrEq records an (in)equality between two expressions when both
// are tracked bare identifiers. Equality merges the abstract values
// in place (both cells narrow to the meet); disequality records the
// cell pair.
func (s *store) diseqOrEq(ev *Evaluator, x, y ast.Expr, equal bool) {
	xn, ok1 := pureTrackedIdent(ev, x)
	yn, ok2 := pureTrackedIdent(ev, y)
	if !ok1 || !ok2 || xn == yn {
		return
	}
	cx, cy := s.cells[xn], s.cells[yn]
	if cx == nil {
		cx = &cell{v: top()}
		s.cells[xn] = cx
	}
	if cy == nil {
		cy = &cell{v: top()}
		s.cells[yn] = cy
	}
	if cx == cy {
		if !equal {
			// x != y on a shared cell: the values are identical, so
			// the path is contradictory. Empty the cell.
			cx.v = Val{Lo: 1, Hi: 0}
		}
		return
	}
	if equal {
		m := meet(cx.v, cy.v)
		cx.v = m
		cy.v = m
	} else if len(s.diseq) < s.max {
		s.diseq = append(s.diseq, [2]*cell{cx, cy})
	}
}

// checkUnsat reports whether the store is provably unsatisfiable:
// some cell has an empty concretization, or a disequality pins two
// cells to the same single point.
func (s *store) checkUnsat() bool {
	for _, c := range s.cells {
		if c != nil && c.v.empty() {
			return true
		}
	}
	for _, pair := range s.diseq {
		if pair[0].v.empty() || pair[1].v.empty() {
			return true
		}
		a, aok := pair[0].v.point()
		b, bok := pair[1].v.point()
		if aok && bok && a == b {
			return true
		}
	}
	return false
}

// size counts store entries carrying information (non-top cells plus
// disequalities); feeds the constraint-store histogram.
func (s *store) size() int {
	seen := map[*cell]bool{}
	n := 0
	for _, c := range s.cells {
		if c != nil && !seen[c] && !c.v.isTop() {
			seen[c] = true
			n++
		}
	}
	return n + len(s.diseq)
}
