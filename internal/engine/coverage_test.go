package engine

import (
	"encoding/json"
	"strings"
	"testing"

	"flashmc/internal/cc/ast"
)

func TestCoverageCounts(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
}`)
	reports, cov := RunCov(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	if cov.SM != "wait_for_db" || cov.Fn != "handler" {
		t.Errorf("identity: %+v", cov)
	}
	if cov.Rules["race"] != 1 {
		t.Errorf("race rule count: %v", cov.Rules)
	}
	if cov.Patterns["race/alt0"] != 1 {
		t.Errorf("pattern alternative: %v", cov.Patterns)
	}
	if cov.States["start"] == 0 {
		t.Errorf("start state never admitted: %v", cov.States)
	}
	if cov.Empty() {
		t.Error("coverage reported Empty after rule fired")
	}
	if cov.Elapsed <= 0 {
		t.Errorf("elapsed not recorded: %v", cov.Elapsed)
	}
	if cov.RuleSeconds["race"] <= 0 {
		t.Errorf("rule timing not attributed: %v", cov.RuleSeconds)
	}
}

func TestCoverageSkippedFunction(t *testing.T) {
	g := buildGraph(t, `void other(void) { int a; }`)
	sm := waitForDBSM(t)
	sm.StartFor = func(fn *ast.FuncDecl) string { return "" }
	reports, cov := RunCov(g, sm)
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
	if cov == nil || !cov.Empty() {
		t.Errorf("skipped function should yield empty coverage: %+v", cov)
	}
}

func TestCoverageCondRules(t *testing.T) {
	freeCond := mkExprPattern(t, "conditional_free(b)", map[string]string{"b": ""})
	use := mkPattern(t, "use_buffer(b);", map[string]string{"b": ""})
	sm := &SM{
		Name:  "valsense",
		Start: "has_buffer",
		Rules: []*Rule{
			{State: "no_buffer", Patterns: []Pattern{use}, Tag: "uaf",
				Action: func(c *Ctx) { c.Report("use after free") }},
		},
		Cond: []*CondRule{
			{State: "has_buffer", Pattern: freeCond, TrueTarget: "no_buffer"},
		},
	}
	g := buildGraph(t, `
void handler(void) {
	if (conditional_free(0)) {
		use_buffer(0);
	} else {
		use_buffer(0);
	}
}`)
	_, cov := RunCov(g, sm)
	// The condition matches on both outgoing edges of the branch.
	if cov.Conds["cond#0"] != 2 {
		t.Errorf("cond firings: %v", cov.Conds)
	}
	if cov.Rules["uaf"] != 1 {
		t.Errorf("uaf firings: %v", cov.Rules)
	}
}

func TestCoverageJSONExcludesTiming(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
}`)
	_, cov := RunCov(g, waitForDBSM(t))
	raw, err := json.Marshal(cov)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"RuleSeconds", "Elapsed", "elapsed", "seconds"} {
		if strings.Contains(string(raw), banned) {
			t.Errorf("timing leaked into JSON: %s", raw)
		}
	}
	var back Coverage
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rules["race"] != cov.Rules["race"] || back.SM != cov.SM {
		t.Errorf("round trip lost counts: %+v vs %+v", back, cov)
	}
}

func TestRuleKeyMatchesUntaggedLabel(t *testing.T) {
	sm := waitForDBSM(t)
	// Rule 0 has no tag: key is "state#index", the label lint uses.
	if got := RuleKey(sm, 0); got != "start#0" {
		t.Errorf("untagged key: %q", got)
	}
	if got := RuleKey(sm, 1); got != "race" {
		t.Errorf("tagged key: %q", got)
	}
	if got := CondKey(sm, 3); got != "cond#3" {
		t.Errorf("cond key: %q", got)
	}
}

func TestReportCoverage(t *testing.T) {
	cov := ReportCoverage("exec_restrict", []Report{
		{Rule: "deprecated"}, {Rule: "deprecated"}, {Rule: ""},
	})
	if cov.Rules["deprecated"] != 2 {
		t.Errorf("report coverage: %v", cov.Rules)
	}
	if len(cov.Rules) != 1 {
		t.Errorf("empty rule keys should be skipped: %v", cov.Rules)
	}
}
