// Fused execution: several SMs compiled into one product automaton
// that checks a function in a single pass.
//
// The product deliberately does NOT merge the members' worklists. Each
// member still runs its own fixed-point schedule, because everything
// observable — report rank order, which configuration donates a
// witness trace, per-rule and per-pattern coverage tallies — depends
// on that schedule, and the fused mode's contract is byte-identical
// output to the sequential engine (ISSUE 10). What the members share
// is the expensive part: pattern matching. CompileFused interns every
// rule alternative and branch-cond pattern of every member into one
// union vocabulary (structurally identical patterns collapse to one
// slot), and a per-function match index memoizes each evaluation by
// (CFG node, vocabulary slot, binding-environment render). A node is
// thus matched once against the union vocabulary instead of once per
// checker per configuration per worklist revisit.
//
// Caching by environment *render* is exactly as sound as the engine's
// own config.key(), which already merges configurations whose
// environments render equal; and match.Expr/match.Find never mutate
// the environments they return, so cached Env maps can be handed to
// several members safely (keepTracked/envFor always build fresh maps).
package engine

import (
	"sort"
	"strings"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
	"flashmc/internal/match"
)

// smPlan is the compile-time shape of one SM: its rules partitioned by
// owning state (the partition transfer() previously rebuilt on every
// call), plus — in a fused product — the interned vocabulary slot of
// each pattern alternative.
type smPlan struct {
	byState  map[string][]*Rule
	allRules []*Rule
	// ruleAlts[rule][i] is the vocabulary slot of rule.Patterns[i];
	// condAlts[ci] that of SM.Cond[ci].Pattern. Both are nil outside a
	// fused product.
	ruleAlts map[*Rule][]int32
	condAlts []int32
}

// buildPlan partitions an SM's rules by owning state. All-state rules
// go to allRules; transfer fires byState first, then allRules, which
// preserves the sequential engine's firing order (including the
// degenerate case of a rule literally owned by state "all").
func buildPlan(sm *SM) *smPlan {
	p := &smPlan{byState: map[string][]*Rule{}}
	for _, rule := range sm.Rules {
		if rule.State == All {
			p.allRules = append(p.allRules, rule)
		} else {
			p.byState[rule.State] = append(p.byState[rule.State], rule)
		}
	}
	return p
}

// vocabAlt is one interned pattern alternative. Exactly one of pat
// (rule alternative, evaluated against the node event) and cond
// (branch-cond pattern, evaluated against the stripped condition) is
// set; the two spaces never share slots because they evaluate against
// different targets.
type vocabAlt struct {
	pat  Pattern
	cond ast.Expr
}

// Fused is a product automaton over several member SMs.
type Fused struct {
	Members []*SM
	plans   []*smPlan
	vocab   []vocabAlt
	nAlts   int
}

// VocabSize is the number of distinct pattern alternatives in the
// union vocabulary; AltCount the total before interning. The gap is
// the cross-checker pattern overlap the shared index exploits.
func (f *Fused) VocabSize() int { return len(f.vocab) }
func (f *Fused) AltCount() int  { return f.nAlts }

// patIntern builds the canonical key a pattern alternative is interned
// under: a kind tag, the pattern's source render, and every wildcard's
// name and constraint in traversal order (the printer renders a
// wildcard as "$name" only, so constraints must be appended for two
// same-shaped patterns with different constraints to stay distinct).
func patIntern(kind byte, render string, root ast.Node) string {
	var b strings.Builder
	b.WriteByte(kind)
	b.WriteByte(0)
	b.WriteString(render)
	ast.Inspect(root, func(n ast.Node) bool {
		if w, ok := n.(*ast.Wildcard); ok {
			b.WriteByte(0)
			b.WriteString(w.Name)
			b.WriteByte(':')
			b.WriteString(w.Constraint)
		}
		return true
	})
	return b.String()
}

// CompileFused compiles member SMs into a product automaton with a
// shared, structurally deduplicated pattern vocabulary. Member order
// is the order reports are later concatenated in, so callers pass the
// same order they would run sequentially.
func CompileFused(members ...*SM) *Fused {
	f := &Fused{Members: members}
	slots := map[string]int32{}
	intern := func(key string, alt vocabAlt) int32 {
		f.nAlts++
		if id, ok := slots[key]; ok {
			return id
		}
		id := int32(len(f.vocab))
		slots[key] = id
		f.vocab = append(f.vocab, alt)
		return id
	}
	for _, sm := range members {
		plan := buildPlan(sm)
		plan.ruleAlts = make(map[*Rule][]int32, len(sm.Rules))
		for _, rule := range sm.Rules {
			ids := make([]int32, len(rule.Patterns))
			for i, p := range rule.Patterns {
				if p.Stmt != nil {
					ids[i] = intern(patIntern('s', ast.StmtString(p.Stmt), p.Stmt), vocabAlt{pat: p})
				} else {
					ids[i] = intern(patIntern('e', ast.ExprString(p.Expr), p.Expr), vocabAlt{pat: p})
				}
			}
			plan.ruleAlts[rule] = ids
		}
		plan.condAlts = make([]int32, len(sm.Cond))
		for ci, cr := range sm.Cond {
			plan.condAlts[ci] = intern(patIntern('c', ast.ExprString(cr.Pattern), cr.Pattern), vocabAlt{cond: cr.Pattern})
		}
		f.plans = append(f.plans, plan)
	}
	return f
}

// envKeyOf renders a binding environment for index keys. Environments
// that render equal are already merged by config.key(), so this loses
// no precision the sequential engine had.
func envKeyOf(env match.Env) string {
	if len(env) == 0 {
		return ""
	}
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(ast.ExprString(env[n]))
		b.WriteByte('|')
	}
	return b.String()
}

type mval struct {
	env match.Env
	pos token.Pos
	ok  bool
}

type visitKey struct {
	node int
	env  string
}

// Empty-env answer states in matchIndex.zero.
const (
	zUnknown = uint8(iota)
	zFail
	zMatch
)

// matchIndex is the shared memo table of one fused function run. It
// is deliberately per-(product, function): positions and AST pointers
// in cached results are only meaningful within one graph.
//
// The empty-environment answer of every (node, alternative) pair lives
// in a dense array — one byte each, filled on first demand — with the
// (rare) successful results in a side map. Environment-carrying
// questions are not cached: they are pre-filtered through the
// empty-env table (see eval) and otherwise evaluated directly, because
// a binding environment rarely recurs but the pre-filter answers most
// asks for free.
type matchIndex struct {
	vocab []vocabAlt
	// zero[node*len(vocab)+alt] is the empty-env answer at that node.
	zero    []uint8
	zeroRes map[int32]mval // empty-env match results, keyed like zero
	// visit accounting: a dense bitmap for the common empty-env sweeps,
	// a map for environment-carrying ones.
	visitedZero []bool
	nVisitZero  int
	visited     map[visitKey]struct{}
	nEvals      int
}

func newMatchIndex(vocab []vocabAlt, nNodes int) *matchIndex {
	return &matchIndex{
		vocab:       vocab,
		zero:        make([]uint8, nNodes*len(vocab)),
		zeroRes:     map[int32]mval{},
		visitedZero: make([]bool, nNodes),
		visited:     map[visitKey]struct{}{},
	}
}

// visit records one (node, environment) sweep for the visits metric;
// transfer calls it once per invocation, however many alternatives the
// member then asks about.
func (mi *matchIndex) visit(node int, ek string) {
	if ek == "" {
		if !mi.visitedZero[node] {
			mi.visitedZero[node] = true
			mi.nVisitZero++
		}
		return
	}
	mi.visited[visitKey{node: node, env: ek}] = struct{}{}
}

// eval answers "does vocabulary slot alt match target under env at
// node?". The target is a pure function of (node, slot kind) — the
// node's event for rule alternatives, the node's stripped branch
// condition for cond patterns — so it is not part of the key; ek is
// the caller's precomputed envKeyOf(env).
//
// Environment-carrying questions go through a monotone pre-filter: a
// binding can only constrain a match (bindWildcard with a prior
// binding demands structural equality, every other matcher case
// ignores the environment), so a pattern that finds nothing under the
// empty environment finds nothing under any environment. The empty-env
// answer is computed once per (node, alt) and shared by every member,
// configuration and environment that asks.
func (mi *matchIndex) eval(alt int32, node int, target ast.Node, env match.Env, ek string) (match.Env, token.Pos, bool) {
	idx := int32(node)*int32(len(mi.vocab)) + alt
	st := mi.zero[idx]
	if st == zUnknown {
		mi.nEvals++
		v := evalAlt(mi.vocab[alt], target, nil)
		st = zFail
		if v.ok {
			st = zMatch
			mi.zeroRes[idx] = v
		}
		mi.zero[idx] = st
	}
	if st == zFail {
		return nil, token.Pos{}, false
	}
	if ek == "" {
		v := mi.zeroRes[idx]
		return v.env, v.pos, v.ok
	}
	mi.nEvals++
	v := evalAlt(mi.vocab[alt], target, env)
	return v.env, v.pos, v.ok
}

// evalAlt performs one actual pattern evaluation.
func evalAlt(a vocabAlt, target ast.Node, env match.Env) mval {
	if a.cond != nil {
		if results := match.Find(a.cond, target, env); len(results) > 0 {
			return mval{env: results[0].Env, pos: results[0].Expr.Pos(), ok: true}
		}
		return mval{}
	}
	if env2, pos, ok := evalPattern(a.pat, target, env); ok {
		return mval{env: env2, pos: pos, ok: true}
	}
	return mval{}
}

// flush publishes the index's visit/eval tallies: one node visit per
// distinct (node, environment) the product swept, however many members
// and worklist revisits asked about it.
func (mi *matchIndex) flush() {
	mVisits.Add(float64(mi.nVisitZero + len(mi.visited)))
	mEvals.Add(float64(mi.nEvals))
}

// RunCov runs every active member over g, in member order, through one
// shared match index, and returns per-member reports and coverage.
// active==nil runs every member; an inactive member is skipped
// entirely (nil coverage). Each member's reports, witness traces and
// coverage are byte-identical to a sequential RunCov of that member
// alone: the members share only the match index, never a schedule.
func (f *Fused) RunCov(g *cfg.Graph, active []bool) ([][]Report, []*Coverage) {
	mi := newMatchIndex(f.vocab, len(g.Nodes))
	reports := make([][]Report, len(f.Members))
	covs := make([]*Coverage, len(f.Members))
	for m, sm := range f.Members {
		if active != nil && !active[m] {
			continue
		}
		cov := &Coverage{SM: sm.Name, Fn: g.Fn.Name}
		covs[m] = cov
		if startState(sm, g.Fn) == "" {
			continue
		}
		r := newRunner(sm, g)
		r.cov = cov
		r.plan = f.plans[m]
		r.mi = mi
		r.runToFixpoint()
		reports[m] = r.reports
	}
	mi.flush()
	return reports, covs
}
