package engine

import (
	"fmt"
	"time"
)

// Coverage tallies which parts of one state machine actually fired
// during a run: rules (and which pattern alternative matched), states
// configurations were admitted to, and branch-condition refinements.
// It is the dynamic complement of package lint's static passes — a
// rule lint considers live but that never appears in any Coverage is
// dead on the corpus, the paper's §11 failure mode measured instead
// of inferred.
//
// The count maps serialize to JSON (encoding/json sorts map keys), so
// a Coverage stored in the artifact depot is byte-stable and a warm
// (cached) run reconstructs exactly the coverage the cold run
// measured. The timing fields are excluded from JSON: wall time is
// not deterministic and must never leak into depot artifacts.
type Coverage struct {
	// SM is the state machine name (which can differ from the checker
	// registry name — buffer_race runs the wait_for_db machine).
	SM string `json:"sm"`
	// Fn is the function the run covered ("" for whole-program passes).
	Fn string `json:"fn,omitempty"`
	// Rules counts firings per rule key (RuleKey).
	Rules map[string]uint64 `json:"rules,omitempty"`
	// States counts configurations admitted per state.
	States map[string]uint64 `json:"states,omitempty"`
	// Patterns counts matches per pattern alternative ("rule/altN").
	Patterns map[string]uint64 `json:"patterns,omitempty"`
	// Conds counts branch refinements per CondRule key (CondKey).
	Conds map[string]uint64 `json:"conds,omitempty"`

	// RuleSeconds attributes wall time to the rule that fired: the
	// span from event dispatch to the end of the rule's action,
	// including the match attempts of earlier same-state rules.
	RuleSeconds map[string]float64 `json:"-"`
	// Elapsed is the wall time of the whole run (zero for coverage
	// replayed from a depot artifact).
	Elapsed time.Duration `json:"-"`
}

// RuleKey names rule i of sm in coverage maps and diagnostics: the
// rule's tag when set, else "state#i" — the same label package lint
// uses, so static and dynamic views of a rule join on one key.
func RuleKey(sm *SM, i int) string {
	r := sm.Rules[i]
	if r.Tag != "" {
		return r.Tag
	}
	return fmt.Sprintf("%s#%d", r.State, i)
}

// CondKey names branch-condition rule i of sm.
func CondKey(sm *SM, i int) string {
	return fmt.Sprintf("cond#%d", i)
}

// Empty reports whether nothing fired: no rules, states, patterns, or
// refinements. Empty coverages are not stored in depot artifacts, so
// warm and cold runs skip them identically.
func (c *Coverage) Empty() bool {
	if c == nil {
		return true
	}
	return len(c.Rules) == 0 && len(c.States) == 0 &&
		len(c.Patterns) == 0 && len(c.Conds) == 0
}

// bump increments m[k], allocating the map on first use so empty
// sections marshal as absent rather than "{}".
func bump(m *map[string]uint64, k string, n uint64) {
	if *m == nil {
		*m = map[string]uint64{}
	}
	(*m)[k] += n
}

func (c *Coverage) hitRule(key string)    { bump(&c.Rules, key, 1) }
func (c *Coverage) hitState(state string) { bump(&c.States, state, 1) }
func (c *Coverage) hitPattern(rule string, alt int) {
	bump(&c.Patterns, fmt.Sprintf("%s/alt%d", rule, alt), 1)
}
func (c *Coverage) hitCond(key string) { bump(&c.Conds, key, 1) }

func (c *Coverage) addRuleSeconds(key string, d time.Duration) {
	if c.RuleSeconds == nil {
		c.RuleSeconds = map[string]float64{}
	}
	c.RuleSeconds[key] += d.Seconds()
}

// ReportCoverage synthesizes rule coverage for passes that do not run
// an SM (AST walks, the lane traversal): one firing per report, keyed
// by the report's rule. The counterpart of Witness for coverage.
func ReportCoverage(sm string, reports []Report) *Coverage {
	c := &Coverage{SM: sm}
	for _, r := range reports {
		if r.Rule != "" {
			c.hitRule(r.Rule)
		}
	}
	return c
}
