package engine

import (
	"flashmc/internal/cc/ast"
	"flashmc/internal/cfg"
	"flashmc/internal/match"
)

// Sim is a single-configuration stepper exposing the engine's
// refinement hooks: the same transfer and branch-refinement logic Run
// and RunPaths use, driven one node or edge at a time by an external
// path enumerator. Package lint's report-triage passes use it to
// replay a state machine along individual sliced paths and decide
// whether a report can arise on any feasible one.
//
// A Sim accumulates reports across steps exactly like a run does
// (deduplicated by rule, position and message); create one Sim per
// replayed path to observe per-path reports.
type Sim struct {
	r     *runner
	start string
}

// Config is one SM configuration held by an external driver. The zero
// Config is invalid; obtain one from Start.
type Config struct {
	c config
}

// State returns the configuration's SM state.
func (c Config) State() string { return c.c.state }

// Env returns the configuration's tracked wildcard bindings.
func (c Config) Env() match.Env { return c.c.env }

// NewSim prepares a stepper for sm over g.
func NewSim(g *cfg.Graph, sm *SM) *Sim {
	start := sm.Start
	if sm.StartFor != nil {
		start = sm.StartFor(g.Fn)
	}
	return &Sim{r: newRunner(sm, g), start: start}
}

// Start returns the initial configuration. ok is false when the SM
// skips this function entirely (StartFor returned "").
func (s *Sim) Start() (Config, bool) {
	if s.start == "" {
		return Config{}, false
	}
	return Config{config{state: s.start, env: match.Env{}}}, true
}

// Transfer processes node n's event for c, firing rule actions. ok is
// false when the configuration was killed (a rule moved it to Stop).
func (s *Sim) Transfer(n *cfg.Node, c Config) (Config, bool) {
	out := s.r.transfer(n, c.c)
	if len(out) == 0 {
		return Config{}, false
	}
	return Config{out[0]}, true
}

// Refine applies branch-condition rules (and the SM's own
// correlated-branch pruner, when enabled) to c crossing edge e. ok is
// false when the configuration was pruned or stopped.
func (s *Sim) Refine(e *cfg.Edge, c Config) (Config, bool) {
	out, keep := s.r.refine(c.c, e)
	return Config{out}, keep
}

// AtExit runs the SM's at-exit hook (if any) for a configuration that
// reached the function exit.
func (s *Sim) AtExit(c Config) {
	if s.r.sm.AtExit == nil {
		return
	}
	g := s.r.g
	ctx := &Ctx{Env: c.c.env, Node: g.Exit, MatchPos: g.Exit.Pos(),
		State: c.c.state, eng: s.r, ruleTag: "at-exit", trace: c.c.trace}
	s.r.sm.AtExit(ctx)
}

// Reports returns the reports fired so far.
func (s *Sim) Reports() []Report { return s.r.reports }

// StripNegation removes parentheses and top-level logical negations
// from a branch condition, reporting whether an odd number of
// negations was stripped. It is the normalization Refine applies to
// branch conditions, exported so analyses layered on the engine (the
// lint triage passes) correlate conditions the same way.
func StripNegation(e ast.Expr) (ast.Expr, bool) { return stripNot(e) }
