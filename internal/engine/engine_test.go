package engine

import (
	"strings"
	"testing"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/parser"
	"flashmc/internal/cfg"
)

// mkPattern compiles a statement pattern with the given wildcards.
func mkPattern(t *testing.T, src string, wild map[string]string) Pattern {
	t.Helper()
	s, err := parser.ParseStmtPattern(src, parser.PatternContext{Wildcards: wild})
	if err != nil {
		t.Fatalf("pattern %q: %v", src, err)
	}
	return Pattern{Stmt: s}
}

func mkExprPattern(t *testing.T, src string, wild map[string]string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExprPattern(src, parser.PatternContext{Wildcards: wild})
	if err != nil {
		t.Fatalf("pattern %q: %v", src, err)
	}
	return e
}

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	f, errs := parser.ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return cfg.Build(f.Funcs()[0])
}

// waitForDBSM reproduces Figure 2 of the paper.
func waitForDBSM(t *testing.T) *SM {
	w := map[string]string{"addr": "scalar", "buf": "scalar"}
	return &SM{
		Name:  "wait_for_db",
		Start: "start",
		Rules: []*Rule{
			{State: "start", Patterns: []Pattern{mkPattern(t, "WAIT_FOR_DB_FULL(addr);", w)}, Target: Stop},
			{State: "start", Patterns: []Pattern{mkPattern(t, "MISCBUS_READ_DB(addr, buf);", w)},
				Tag: "race",
				Action: func(c *Ctx) {
					c.Report("Buffer not synchronized")
				}},
		},
	}
}

func TestBufferRaceDetected(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	if !strings.Contains(reports[0].Msg, "not synchronized") {
		t.Errorf("msg %q", reports[0].Msg)
	}
}

func TestWaitBeforeReadOK(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	WAIT_FOR_DB_FULL(a);
	MISCBUS_READ_DB(a, b);
}`)
	if reports := Run(g, waitForDBSM(t)); len(reports) != 0 {
		t.Fatalf("unexpected reports: %v", reports)
	}
}

func TestRaceOnOnePathOnly(t *testing.T) {
	// The wait happens only on the then-arm; the else path reads
	// unsynchronized.
	g := buildGraph(t, `
void handler(int c) {
	int a;
	int b;
	if (c) {
		WAIT_FOR_DB_FULL(a);
	}
	MISCBUS_READ_DB(a, b);
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestReadInsideConditionDetected(t *testing.T) {
	g := buildGraph(t, `
void handler(int c) {
	int a;
	int b;
	if (MISCBUS_READ_DB(a, b) == 0) {
		c = 1;
	}
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestReadInsideLargerExpression(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	int v;
	v = MISCBUS_READ_DB(a, b) + 1;
}`)
	if reports := Run(g, waitForDBSM(t)); len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestStopKillsPathNotSiblings(t *testing.T) {
	// Wait on one arm stops checking there, but the other arm's read
	// still reports.
	g := buildGraph(t, `
void handler(int c) {
	int a;
	int b;
	if (c) {
		WAIT_FOR_DB_FULL(a);
		MISCBUS_READ_DB(a, b);
	} else {
		MISCBUS_READ_DB(a, b);
	}
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	if reports[0].Pos.Line != 9 {
		t.Errorf("wrong site: %v", reports[0].Pos)
	}
}

// msglenSM reproduces Figure 3's shape with a reduced pattern set.
func msglenSM(t *testing.T) *SM {
	w := map[string]string{"k": "", "s": "", "wt": "", "d": "", "n": ""}
	return &SM{
		Name:  "msglen",
		Start: All, // start in the neutral all state
		Rules: []*Rule{
			{State: All, Patterns: []Pattern{mkPattern(t, "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;", nil)}, Target: "zero_len"},
			{State: All, Patterns: []Pattern{
				mkPattern(t, "HANDLER_GLOBALS(header.nh.len) = LEN_WORD;", nil),
				mkPattern(t, "HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;", nil),
			}, Target: "nonzero_len"},
			{State: "zero_len", Patterns: []Pattern{mkPattern(t, "PI_SEND(F_DATA, k, s, wt, d, n);", w)},
				Tag: "zero-data",
				Action: func(c *Ctx) {
					c.Report("data send, zero len")
				}},
			{State: "nonzero_len", Patterns: []Pattern{mkPattern(t, "PI_SEND(F_NODATA, k, s, wt, d, n);", w)},
				Tag: "nonzero-nodata",
				Action: func(c *Ctx) {
					c.Report("nodata send, nonzero len")
				}},
		},
	}
}

func TestMsglenInconsistency(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	PI_SEND(F_DATA, 1, 0, 1, 1, 0);
}`)
	reports := Run(g, msglenSM(t))
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "data send, zero len") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestMsglenConsistentOK(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
	PI_SEND(F_DATA, 1, 0, 1, 1, 0);
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
}`)
	if reports := Run(g, msglenSM(t)); len(reports) != 0 {
		t.Fatalf("unexpected: %v", reports)
	}
}

func TestMsglenNeutralStartIgnoresSends(t *testing.T) {
	// Sends before any length assignment are ignored (checker starts
	// in 'all').
	g := buildGraph(t, `
void handler(void) {
	PI_SEND(F_DATA, 1, 0, 1, 1, 0);
}`)
	if reports := Run(g, msglenSM(t)); len(reports) != 0 {
		t.Fatalf("unexpected: %v", reports)
	}
}

func TestAllRulesApplyInNamedStates(t *testing.T) {
	// A reassignment to nonzero after zero must move states (the all
	// rule fires while in zero_len).
	g := buildGraph(t, `
void handler(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
	PI_SEND(F_DATA, 1, 0, 1, 1, 0);
}`)
	if reports := Run(g, msglenSM(t)); len(reports) != 0 {
		t.Fatalf("unexpected: %v", reports)
	}
}

func TestAtExitLeakDetection(t *testing.T) {
	free := mkPattern(t, "MISCBUS_DEC_DB(b);", map[string]string{"b": ""})
	sm := &SM{
		Name:  "leak",
		Start: "has_buffer",
		Rules: []*Rule{
			{State: "has_buffer", Patterns: []Pattern{free}, Target: "no_buffer"},
		},
		AtExit: func(c *Ctx) {
			if c.State == "has_buffer" {
				c.Report("buffer leaked")
			}
		},
	}
	g := buildGraph(t, `
void handler(int c) {
	if (c) {
		MISCBUS_DEC_DB(0);
	}
}`)
	reports := Run(g, sm)
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "leaked") {
		t.Fatalf("reports: %v", reports)
	}
	// Freeing on both paths silences it.
	g2 := buildGraph(t, `
void handler(int c) {
	if (c) {
		MISCBUS_DEC_DB(0);
	} else {
		MISCBUS_DEC_DB(0);
	}
}`)
	if reports := Run(g2, sm); len(reports) != 0 {
		t.Fatalf("unexpected: %v", reports)
	}
}

func TestStartForSkipsFunctions(t *testing.T) {
	sm := waitForDBSM(t)
	sm.StartFor = func(fn *ast.FuncDecl) string {
		if fn.Name == "handler" {
			return "start"
		}
		return ""
	}
	g := buildGraph(t, `
void helper(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
}`)
	if reports := Run(g, sm); len(reports) != 0 {
		t.Fatalf("skipped function still reported: %v", reports)
	}
}

func TestCondRuleValueSensitivity(t *testing.T) {
	// conditional_free(b) returns 1 when it freed the buffer; the
	// checker must take the freed state only on the true edge
	// (paper §6's value-sensitivity refinement).
	freeCond := mkExprPattern(t, "conditional_free(b)", map[string]string{"b": ""})
	use := mkPattern(t, "use_buffer(b);", map[string]string{"b": ""})
	sm := &SM{
		Name:  "valsense",
		Start: "has_buffer",
		Rules: []*Rule{
			{State: "no_buffer", Patterns: []Pattern{use},
				Tag: "uaf",
				Action: func(c *Ctx) {
					c.Report("use after free")
				}},
		},
		Cond: []*CondRule{
			{State: "has_buffer", Pattern: freeCond, TrueTarget: "no_buffer"},
		},
	}
	g := buildGraph(t, `
void handler(void) {
	if (conditional_free(0)) {
		use_buffer(0);
	} else {
		use_buffer(0);
	}
}`)
	reports := Run(g, sm)
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	if reports[0].Pos.Line != 4 {
		t.Errorf("wrong arm flagged: %v", reports[0].Pos)
	}
}

func TestCondRuleNegation(t *testing.T) {
	freeCond := mkExprPattern(t, "conditional_free(b)", map[string]string{"b": ""})
	use := mkPattern(t, "use_buffer(b);", map[string]string{"b": ""})
	sm := &SM{
		Name:  "valsense",
		Start: "has_buffer",
		Rules: []*Rule{
			{State: "no_buffer", Patterns: []Pattern{use}, Tag: "uaf",
				Action: func(c *Ctx) { c.Report("use after free") }},
		},
		Cond: []*CondRule{
			{State: "has_buffer", Pattern: freeCond, TrueTarget: "no_buffer"},
		},
	}
	g := buildGraph(t, `
void handler(void) {
	if (!conditional_free(0)) {
		use_buffer(0);
	} else {
		use_buffer(0);
	}
}`)
	reports := Run(g, sm)
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	if reports[0].Pos.Line != 6 {
		t.Errorf("wrong arm flagged under negation: %v", reports[0].Pos)
	}
}

func TestLoopTermination(t *testing.T) {
	g := buildGraph(t, `
void handler(int n) {
	int a;
	int b;
	while (n > 0) {
		if (n == 3) {
			WAIT_FOR_DB_FULL(a);
		}
		MISCBUS_READ_DB(a, b);
		n--;
	}
}`)
	reports := Run(g, waitForDBSM(t))
	// The read is reachable with the wait not yet executed.
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestRunMatchesRunPaths(t *testing.T) {
	srcs := []string{
		`void h(int c) { int a; int b; if (c) WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); }`,
		`void h(int c) { int a; int b; WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); }`,
		`void h(int c) { int a; int b; MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(b, a); }`,
		`void h(int c) { int a; int b; if (c) { MISCBUS_READ_DB(a, b); } else { WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); } }`,
		`void h(int c) { int a; int b; switch (c) { case 1: WAIT_FOR_DB_FULL(a); break; default: break; } MISCBUS_READ_DB(a, b); }`,
	}
	for _, src := range srcs {
		g := buildGraph(t, src)
		r1 := Run(g, waitForDBSM(t))
		r2 := RunPaths(g, waitForDBSM(t), 10000)
		if len(r1) != len(r2) {
			t.Errorf("%s:\ndataflow %v\npaths %v", src, r1, r2)
		}
	}
}

func TestCountApplied(t *testing.T) {
	f, errs := parser.ParseText("t.c", `
void a(void) { int x; int y; MISCBUS_READ_DB(x, y); }
void b(void) { int x; int y; int v; v = MISCBUS_READ_DB(x, y) + MISCBUS_READ_DB(y, x); }
`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	pat := mkExprPattern(t, "MISCBUS_READ_DB(x, y)", map[string]string{"x": "", "y": ""})
	if got := Count(f.Funcs(), pat); got != 3 {
		t.Errorf("applied %d", got)
	}
}

func TestFreshBindingPerRule(t *testing.T) {
	// Paper semantics: wildcards bind fresh at each rule match. Two
	// reads of different buffers must BOTH report; a persistent-env
	// engine would silently skip the second because addr/buf were
	// already bound.
	g := buildGraph(t, `
void handler(void) {
	int a1;
	int a2;
	int b;
	MISCBUS_READ_DB(a1, b);
	MISCBUS_READ_DB(a2, b);
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 2 {
		t.Fatalf("fresh binding broken, reports: %v", reports)
	}
}

func TestTrackedBindingPersists(t *testing.T) {
	// With Track, the created object's binding must persist so that
	// only operations on THAT object advance the SM.
	w := map[string]string{"o": "", "x": ""}
	sm := &SM{
		Name:  "obj",
		Start: "start",
		Track: []string{"o"},
		Rules: []*Rule{
			{State: "start", Patterns: []Pattern{mkPattern(t, "o = create();", w)}, Target: "live"},
			{State: "live", Patterns: []Pattern{mkPattern(t, "destroy(o);", w)}, Target: "start"},
			{State: "live", Patterns: []Pattern{mkPattern(t, "use_after(o);", w)}, Tag: "late",
				Action: func(c *Ctx) { c.Report("used while live: %s", c.Bound("o")) }},
		},
	}
	g := buildGraph(t, `
void handler(void) {
	int p;
	int q;
	p = create();
	use_after(q); /* different object: must NOT fire */
	use_after(p); /* tracked object: must fire */
	destroy(p);
	q = create();  /* re-entering start must rebind */
	use_after(q);  /* now q is the tracked object */
}`)
	reports := Run(g, sm)
	if len(reports) != 2 {
		t.Fatalf("reports: %v", reports)
	}
	if !strings.Contains(reports[0].Msg, "p") || !strings.Contains(reports[1].Msg, "q") {
		t.Errorf("bindings: %v", reports)
	}
}

func TestReportDeduplication(t *testing.T) {
	// The same read reachable along two paths reports once.
	g := buildGraph(t, `
void handler(int c) {
	int a;
	int b;
	if (c) { c = 1; } else { c = 2; }
	MISCBUS_READ_DB(a, b);
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}
