package engine

import (
	"strings"
	"testing"
)

func TestAtExitUnreachableExit(t *testing.T) {
	// A handler that never terminates has no exit configurations; the
	// at-exit hook must not fire.
	sm := &SM{
		Name:  "exitcheck",
		Start: "s",
		AtExit: func(c *Ctx) {
			c.Report("reached exit")
		},
	}
	g := buildGraph(t, `void h(void) { for (;;) { } }`)
	if reports := Run(g, sm); len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSwitchDispatchStates(t *testing.T) {
	// Each switch arm independently advances the SM; the merged exit
	// carries all resulting states.
	free := mkPattern(t, "DEC_DB_REF(b);", map[string]string{"b": ""})
	sm := &SM{
		Name:  "sw",
		Start: "has",
		Rules: []*Rule{
			{State: "has", Patterns: []Pattern{free}, Target: "no"},
			{State: "no", Patterns: []Pattern{free}, Tag: "df",
				Action: func(c *Ctx) { c.Report("double free") }},
		},
		AtExit: func(c *Ctx) {
			if c.State == "has" {
				c.Report("leak")
			}
		},
	}
	g := buildGraph(t, `
void h(int op) {
	switch (op) {
	case 1:
		DEC_DB_REF(0);
		break;
	case 2:
		break;
	default:
		DEC_DB_REF(0);
	}
}`)
	reports := Run(g, sm)
	// case 2 leaks; cases 1 and default are fine.
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "leak") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSwitchFallthroughDoubleFree(t *testing.T) {
	free := mkPattern(t, "DEC_DB_REF(b);", map[string]string{"b": ""})
	sm := &SM{
		Name:  "sw2",
		Start: "has",
		Rules: []*Rule{
			{State: "has", Patterns: []Pattern{free}, Target: "no"},
			{State: "no", Patterns: []Pattern{free}, Tag: "df",
				Action: func(c *Ctx) { c.Report("double free") }},
		},
	}
	g := buildGraph(t, `
void h(int op) {
	switch (op) {
	case 1:
		DEC_DB_REF(0);
	case 2:
		DEC_DB_REF(0); /* reached by fallthrough from case 1: double free */
		break;
	}
}`)
	reports := Run(g, sm)
	if len(reports) != 1 {
		t.Fatalf("fallthrough path not explored: %v", reports)
	}
}

func TestGotoLoopTermination(t *testing.T) {
	// Backward gotos form cycles the configuration-set executor must
	// survive.
	g := buildGraph(t, `
void h(int n) {
	int a;
	int b;
top:
	MISCBUS_READ_DB(a, b);
	if (n > 0) {
		goto top;
	}
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestDoWhileBodyChecked(t *testing.T) {
	g := buildGraph(t, `
void h(int n) {
	int a;
	int b;
	do {
		MISCBUS_READ_DB(a, b);
	} while (n > 0);
}`)
	if reports := Run(g, waitForDBSM(t)); len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestCommaOperatorEventsProcessed(t *testing.T) {
	g := buildGraph(t, `
void h(void) {
	int a;
	int b;
	int v;
	v = (WAIT_FOR_DB_FULL(a), MISCBUS_READ_DB(a, b));
}`)
	// Both calls live in one statement event. The wait rule fires
	// first (rule order), transitioning to stop before the read rule
	// is consulted — a single event advances the SM at most one step,
	// matching the paper's one-transition-per-event model.
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestFirstRuleWinsWithinEvent(t *testing.T) {
	// When two rules in the same state match one event, the first
	// listed rule fires.
	any := map[string]string{"x": ""}
	sm := &SM{
		Name:  "order",
		Start: "s",
		Rules: []*Rule{
			{State: "s", Patterns: []Pattern{mkPattern(t, "f(x);", any)}, Tag: "first",
				Action: func(c *Ctx) { c.Report("first") }},
			{State: "s", Patterns: []Pattern{mkPattern(t, "f(1);", nil)}, Tag: "second",
				Action: func(c *Ctx) { c.Report("second") }},
		},
	}
	g := buildGraph(t, `void h(void) { f(1); }`)
	reports := Run(g, sm)
	if len(reports) != 1 || reports[0].Msg != "first" {
		t.Fatalf("reports: %v", reports)
	}
}

func TestStateSpecificBeatsAll(t *testing.T) {
	any := map[string]string{"x": ""}
	sm := &SM{
		Name:  "prio",
		Start: "s",
		Rules: []*Rule{
			{State: All, Patterns: []Pattern{mkPattern(t, "f(x);", any)}, Tag: "all",
				Action: func(c *Ctx) { c.Report("all") }},
			{State: "s", Patterns: []Pattern{mkPattern(t, "f(x);", any)}, Tag: "specific",
				Action: func(c *Ctx) { c.Report("specific") }},
		},
	}
	g := buildGraph(t, `void h(void) { f(2); }`)
	reports := Run(g, sm)
	if len(reports) != 1 || reports[0].Msg != "specific" {
		t.Fatalf("state-specific rules must be consulted before 'all': %v", reports)
	}
}

func TestEmptyFunctionNoPanic(t *testing.T) {
	g := buildGraph(t, `void h(void) { }`)
	leaked := false
	sm := &SM{Name: "e", Start: "s", AtExit: func(c *Ctx) { leaked = true }}
	Run(g, sm)
	if !leaked {
		t.Error("at-exit did not run for an empty function")
	}
}
