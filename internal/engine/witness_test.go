package engine

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"flashmc/internal/cc/token"
)

// checkWitness asserts the report-trace invariant: non-empty, final
// step at the report position.
func checkWitness(t *testing.T, r Report) {
	t.Helper()
	if len(r.Trace) == 0 {
		t.Fatalf("report %s has no witness trace", r)
	}
	last := r.Trace[len(r.Trace)-1]
	if last.Pos != r.Pos {
		t.Fatalf("final witness step at %s, report at %s", last.Pos, r.Pos)
	}
}

func TestWitnessTraceOnReport(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
}`)
	reports := Run(g, waitForDBSM(t))
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	r := reports[0]
	checkWitness(t, r)
	// The firing step precedes the synthesized final step and carries
	// the matched event text plus the wildcard bindings.
	if len(r.Trace) < 2 {
		t.Fatalf("trace = %+v, want firing step + final step", r.Trace)
	}
	fire := r.Trace[len(r.Trace)-2]
	if !strings.Contains(fire.Event, "MISCBUS_READ_DB") {
		t.Errorf("firing step event = %q", fire.Event)
	}
	if fire.Bindings["addr"] != "a" || fire.Bindings["buf"] != "b" {
		t.Errorf("firing step bindings = %v", fire.Bindings)
	}
	if fire.Rule != "race" {
		t.Errorf("firing step rule = %q", fire.Rule)
	}
	last := r.Trace[len(r.Trace)-1]
	if last.Event != r.Msg {
		t.Errorf("final step event = %q, want the report message", last.Event)
	}
}

func TestWitnessTraceRecordsTransitions(t *testing.T) {
	w := map[string]string{"b": "scalar"}
	sm := &SM{
		Name:  "leak",
		Start: "start",
		Track: []string{"b"},
		Rules: []*Rule{
			{State: "start", Patterns: []Pattern{mkPattern(t, "b = alloc();", w)},
				Target: "held", Tag: "alloc"},
			{State: "held", Patterns: []Pattern{mkPattern(t, "free(b);", w)},
				Target: "start", Tag: "free"},
		},
		AtExit: func(c *Ctx) {
			if c.State == "held" {
				c.Report("leaked %s", c.Bound("b"))
			}
		},
	}
	g := buildGraph(t, `
void handler(void) {
	int p;
	p = alloc();
}`)
	reports := Run(g, sm)
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	r := reports[0]
	checkWitness(t, r)
	var sawTransition bool
	for _, s := range r.Trace {
		if s.From == "start" && s.To == "held" && s.Rule == "alloc" {
			sawTransition = true
		}
	}
	if !sawTransition {
		t.Fatalf("no start->held step in trace: %+v", r.Trace)
	}
}

func TestWitnessTraceCondRule(t *testing.T) {
	w := map[string]string{"b": "scalar"}
	sm := &SM{
		Name:  "condsm",
		Start: "start",
		Cond: []*CondRule{{
			State:       "start",
			Pattern:     mkExprPattern(t, "freed(b)", w),
			TrueTarget:  "gone",
			FalseTarget: "",
		}},
		Rules: []*Rule{
			{State: "gone", Patterns: []Pattern{mkPattern(t, "use(b);", w)},
				Tag: "use-after-free",
				Action: func(c *Ctx) {
					c.Report("use after free")
				}},
		},
	}
	g := buildGraph(t, `
void handler(void) {
	int p;
	if (freed(p)) {
		use(p);
	}
}`)
	reports := Run(g, sm)
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	r := reports[0]
	checkWitness(t, r)
	var sawBranch bool
	for _, s := range r.Trace {
		if s.Rule == "cond" && strings.Contains(s.Event, "freed") && s.To == "gone" {
			sawBranch = true
		}
	}
	if !sawBranch {
		t.Fatalf("no branch-refinement step in trace: %+v", r.Trace)
	}
}

func TestWitnessDeterministic(t *testing.T) {
	// Two joining paths reach the same configuration; which path
	// donates the witness must not depend on map iteration order.
	src := `
void handler(void) {
	int a;
	int b;
	if (x) {
		y = 1;
	} else {
		y = 2;
	}
	MISCBUS_READ_DB(a, b);
}`
	g := buildGraph(t, src)
	sm := waitForDBSM(t)
	first := Run(g, sm)
	for i := 0; i < 20; i++ {
		g2 := buildGraph(t, src)
		again := Run(g2, waitForDBSM(t))
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d produced a different witness:\n%+v\nvs\n%+v", i, first, again)
		}
	}
}

func TestWitnessJSONRoundTrip(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
}`)
	reports := Run(g, waitForDBSM(t))
	raw, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reports, back) {
		t.Fatalf("reports changed across JSON round-trip:\n%+v\nvs\n%+v", reports, back)
	}
}

func TestWitnessHelper(t *testing.T) {
	pos := token.Pos{File: "f.c", Line: 3, Col: 1}
	tr := Witness(pos, "lane", "exceeds cache space")
	if len(tr) != 1 || tr[0].Pos != pos || tr[0].Rule != "lane" {
		t.Fatalf("Witness = %+v", tr)
	}
}

func TestRunPathsWitness(t *testing.T) {
	g := buildGraph(t, `
void handler(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
}`)
	reports := RunPaths(g, waitForDBSM(t), 100)
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	checkWitness(t, reports[0])
}
