package engine

import (
	"testing"
)

// pruneSM is a two-state free/no-free machine used to observe path
// feasibility through duplicated conditions.
func pruneSM(t *testing.T, correlate bool) *SM {
	free := mkPattern(t, "DEC_DB_REF(b);", map[string]string{"b": ""})
	sm := &SM{
		Name:              "prune",
		Start:             "has",
		CorrelateBranches: correlate,
		Rules: []*Rule{
			{State: "has", Patterns: []Pattern{free}, Target: "no"},
			{State: "no", Patterns: []Pattern{free}, Tag: "df",
				Action: func(c *Ctx) { c.Report("double free") }},
		},
		AtExit: func(c *Ctx) {
			if c.State == "has" {
				c.Report("leak")
			}
		},
	}
	return sm
}

const dupCondSrc = `
void h(int m) {
	if (m) {
		DEC_DB_REF(0);
	}
	if (m) {
		;
	} else {
		DEC_DB_REF(0);
	}
}`

func TestDuplicatedConditionWithoutPruning(t *testing.T) {
	g := buildGraph(t, dupCondSrc)
	reports := Run(g, pruneSM(t, false))
	// Naive analysis explores the two impossible combinations:
	// (true,false-arm) double-frees, (false,true-arm) leaks.
	if len(reports) != 2 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestDuplicatedConditionWithPruning(t *testing.T) {
	g := buildGraph(t, dupCondSrc)
	reports := Run(g, pruneSM(t, true))
	if len(reports) != 0 {
		t.Fatalf("pruner left reports: %v", reports)
	}
}

func TestPruningRespectsReassignment(t *testing.T) {
	// The condition variable is written between the branches, so the
	// second branch is genuinely independent: pruning must NOT drop
	// the double-free on the now-feasible path.
	src := `
void h(int m) {
	if (m) {
		DEC_DB_REF(0);
	}
	m = m + 1;
	if (m) {
		;
	} else {
		DEC_DB_REF(0);
	}
}`
	g := buildGraph(t, src)
	with := Run(g, pruneSM(t, true))
	without := Run(g, pruneSM(t, false))
	if len(with) != len(without) {
		t.Fatalf("pruning changed results across a reassignment: with=%v without=%v", with, without)
	}
	if len(with) != 2 {
		t.Fatalf("reports: %v", with)
	}
}

func TestPruningHandlesNegation(t *testing.T) {
	src := `
void h(int m) {
	if (m) {
		DEC_DB_REF(0);
	}
	if (!m) {
		DEC_DB_REF(0);
	}
}`
	g := buildGraph(t, src)
	reports := Run(g, pruneSM(t, true))
	// Feasible paths free exactly once; with pruning there must be no
	// double free and no leak.
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestPruningIgnoresComplexConditions(t *testing.T) {
	// Non-identifier conditions are not correlated (key-space bound);
	// behaviour must match the unpruned engine.
	src := `
void h(int m) {
	if (m > 2) {
		DEC_DB_REF(0);
	}
	if (m > 2) {
		;
	} else {
		DEC_DB_REF(0);
	}
}`
	g := buildGraph(t, src)
	with := Run(g, pruneSM(t, true))
	without := Run(g, pruneSM(t, false))
	if len(with) != len(without) || len(with) != 2 {
		t.Fatalf("with=%v without=%v", with, without)
	}
}
