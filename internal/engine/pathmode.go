package engine

import (
	"flashmc/internal/cc/ast"
	"flashmc/internal/cfg"
	"flashmc/internal/match"
	"flashmc/internal/paths"
)

// RunPaths executes sm the way the paper describes xg++ literally
// doing it: walking every entry-to-exit path (loops taken at most
// once) and advancing one configuration along each. It exists for
// differential testing against Run and for the ablation benchmark; on
// functions with many sequential branches it is exponentially slower.
// At most limit paths are walked.
func RunPaths(g *cfg.Graph, sm *SM, limit int) []Report {
	start := sm.Start
	if sm.StartFor != nil {
		start = sm.StartFor(g.Fn)
	}
	if start == "" {
		return nil
	}
	r := newRunner(sm, g)
	for _, path := range paths.Enumerate(g, limit) {
		r.nPaths++
		c := config{state: start, env: match.Env{}}
		alive := true
		for i, n := range path {
			if !alive {
				break
			}
			// Branch refinement applies on the edge taken from the
			// previous node when it was a branch.
			if i > 0 && path[i-1].Kind == cfg.KindBranch {
				var edge *cfg.Edge
				for _, e := range path[i-1].Succs {
					if e.To == n {
						edge = e
						break
					}
				}
				if edge != nil {
					var keep bool
					c, keep = r.refine(c, edge)
					if !keep {
						alive = false
						break
					}
				}
			}
			next := r.transfer(n, c)
			if len(next) == 0 {
				alive = false
				break
			}
			c = next[0]
		}
		if alive && sm.AtExit != nil {
			ctx := &Ctx{Env: c.env, Node: g.Exit, MatchPos: g.Exit.Pos(),
				State: c.state, eng: r, ruleTag: "at-exit", trace: c.trace}
			sm.AtExit(ctx)
		}
	}
	r.flushMetrics()
	return r.reports
}

// MustPattern compiles rule pattern text or panics; a convenience for
// checkers whose pattern text is a compile-time constant.
func MustPattern(stmt ast.Stmt, err error) Pattern {
	if err != nil {
		panic(err)
	}
	return Pattern{Stmt: stmt}
}

// MustExpr compiles an expression pattern or panics.
func MustExpr(e ast.Expr, err error) Pattern {
	if err != nil {
		panic(err)
	}
	return Pattern{Expr: e}
}
