package engine

import (
	"strings"
	"testing"
)

// TestSameStateRuleDeclarationOrder pins down the semantics the
// shadowed-rule lint (package lint) documents: when several rules of
// the same state match one event, the engine fires the one declared
// first and only that one. Checkers rely on this to write
// specific-before-general rule pairs (e.g. the directory checker's
// DIR_LOAD(DIR_ADDR(x)) before DIR_LOAD(x)); reordering such rules
// changes behaviour, which is exactly what the lint warns about.
func TestSameStateRuleDeclarationOrder(t *testing.T) {
	specific := mkPattern(t, "DIR_LOAD(DIR_ADDR(x));", map[string]string{"x": ""})
	general := mkPattern(t, "DIR_LOAD(x);", map[string]string{"x": ""})

	build := func(first, second Pattern, firstTag, secondTag string) *SM {
		report := func(tag string) func(*Ctx) {
			return func(c *Ctx) { c.Report("%s", tag) }
		}
		return &SM{
			Name:  "order",
			Start: "s",
			Rules: []*Rule{
				{State: "s", Patterns: []Pattern{first}, Tag: firstTag, Action: report(firstTag)},
				{State: "s", Patterns: []Pattern{second}, Tag: secondTag, Action: report(secondTag)},
			},
		}
	}

	g := buildGraph(t, `
void h(unsigned a) {
	DIR_LOAD(DIR_ADDR(a));
}`)

	// Specific first: the specific rule fires, the general one is
	// masked for this event.
	reports := Run(g, build(specific, general, "specific", "general"))
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "specific") {
		t.Fatalf("specific-first: got %v, want exactly the specific rule", reports)
	}

	// General first: the general rule masks the specific one — rule
	// order within a state is load-bearing.
	reports = Run(g, build(general, specific, "general", "specific"))
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "general") {
		t.Fatalf("general-first: got %v, want exactly the general rule", reports)
	}
}

// TestAllStateRulesRunAfterStateRules pins the other ordering clause
// (paper §5): state-specific rules are tried before all-state rules.
func TestAllStateRulesRunAfterStateRules(t *testing.T) {
	pat := mkPattern(t, "DEC_DB_REF(x);", map[string]string{"x": ""})
	sm := &SM{
		Name:  "order-all",
		Start: "s",
		Rules: []*Rule{
			{State: All, Patterns: []Pattern{pat}, Tag: "all",
				Action: func(c *Ctx) { c.Report("all") }},
			{State: "s", Patterns: []Pattern{pat}, Tag: "state",
				Action: func(c *Ctx) { c.Report("state") }},
		},
	}
	g := buildGraph(t, `
void h(void) {
	DEC_DB_REF(0);
}`)
	reports := Run(g, sm)
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "state") {
		t.Fatalf("got %v, want the state rule to win over the all rule", reports)
	}
}
