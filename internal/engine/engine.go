// Package engine executes metal state machines over control-flow
// graphs. It is the analogue of xg++'s extension driver: an SM is
// applied "down every path in each function" (paper §3.2).
//
// Rather than literally enumerating the (exponentially many) paths,
// the default executor propagates sets of SM configurations — a
// (state, bindings) pair — over the CFG to a fixed point. For err()
// style idempotent actions this produces exactly the reports the
// every-path walk would, while always terminating; a bounded
// every-path executor (RunPaths) is kept for differential testing and
// for the ablation benchmark quantifying the difference.
//
// Two refinements the paper calls out are supported directly:
//
//   - Branch-condition rules (CondRule) let a checker move to
//     different states on the true and false edges of a branch whose
//     condition matches a pattern — the paper's "twelve lines ...
//     sensitive to the value of four routines that returned a 0 or 1
//     depending on whether or not they freed a buffer" (§6).
//   - At-exit hooks let a checker flag configurations that reach the
//     function exit in a bad state (buffer leaks).
package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
	"flashmc/internal/match"
	"flashmc/internal/obs"
)

// Path-exploration metrics. Runners count locally and flush once per
// run, so the hot loops touch no atomics.
var (
	mRuns    = obs.NewCounter("engine_runs_total", "state-machine executions over a CFG")
	mConfigs = obs.NewCounter("engine_configs_explored_total", "distinct SM configurations reached during runs")
	mRules   = obs.NewCounter("engine_rules_fired_total", "SM rule firings (including rules with no action)")
	mPruned  = obs.NewCounter("engine_infeasible_pruned_total", "configurations dropped by the correlated-branch pruner")
	mReports = obs.NewCounter("engine_reports_total", "diagnostics emitted by runs")
	mPaths   = obs.NewCounter("engine_paths_walked_total", "paths enumerated by the every-path executor")
	mVisits  = obs.NewCounter("engine_node_visits_total", "node events swept against a rule vocabulary (a fused run sweeps each node once per distinct binding environment; a sequential run sweeps once per configuration per worklist visit)")
	mEvals   = obs.NewCounter("engine_pattern_evals_total", "pattern alternatives evaluated against node events (fused runs serve repeated evaluations from the shared match index)")
)

// Stop is the reserved target state that kills a configuration (stops
// checking along the current path).
const Stop = "stop"

// All is the reserved rule-owner state whose rules apply in every
// state (paper §5: "rules in the special 'all' state are always run").
const All = "all"

// Pattern is one code pattern: either a statement pattern or an
// expression pattern. Expression patterns (and the expressions inside
// expression-statement patterns) match any sub-expression of the event
// so that e.g. a read macro inside a larger assignment still triggers.
type Pattern struct {
	Stmt ast.Stmt
	Expr ast.Expr
}

// Ctx is passed to rule actions.
type Ctx struct {
	// Env holds the wildcard bindings of the match.
	Env match.Env
	// Node is the CFG node at which the rule fired.
	Node *cfg.Node
	// MatchPos is the position of the matched construct.
	MatchPos token.Pos
	// State is the SM state the configuration was in.
	State string

	eng     *runner
	ruleTag string
	trace   *traceNode
}

// Report emits a diagnostic attributed to the matched construct.
// Repeated firings of the same rule at the same position with the same
// message are deduplicated.
func (c *Ctx) Report(format string, args ...any) {
	c.eng.report(c.ruleTag, c.MatchPos, c.State, fmt.Sprintf(format, args...), c.trace)
}

// FnName returns the name of the function being checked.
func (c *Ctx) FnName() string { return c.eng.g.Fn.Name }

// Bound renders a wildcard binding as source text ("" if unbound).
func (c *Ctx) Bound(name string) string {
	if e, ok := c.Env[name]; ok {
		return ast.ExprString(e)
	}
	return ""
}

// Rule is one SM transition rule.
type Rule struct {
	// State owns the rule; All applies in every state.
	State string
	// Patterns are alternatives; the rule fires on the first that
	// matches the event.
	Patterns []Pattern
	// Target is the destination state; "" stays, Stop kills the
	// configuration.
	Target string
	// Action runs when the rule fires (may be nil).
	Action func(*Ctx)
	// Tag labels the rule in reports (defaults to the rule index).
	Tag string
}

// CondRule refines configurations across branch edges: when a branch
// node's condition contains a sub-expression matching Pattern, the
// configuration's state becomes TrueTarget on the true edge and
// FalseTarget on the false edge ("" keeps the state, Stop prunes).
type CondRule struct {
	State       string
	Pattern     ast.Expr
	TrueTarget  string
	FalseTarget string
	// Negated marks patterns that appear under an odd number of
	// logical negations; the engine swaps the targets then.
	// (Handled automatically for top-level '!'.)
}

// SM is a compiled state machine.
type SM struct {
	Name string
	// Start is the initial state. StartFor (if non-nil) overrides it
	// per function and may return "" to skip the function entirely.
	Start    string
	StartFor func(fn *ast.FuncDecl) string
	// Starts optionally enumerates every state StartFor can return,
	// for static analyses that need the start set without a function
	// in hand (package lint's reachability pass). Run ignores it.
	Starts []string
	Rules  []*Rule
	Cond   []*CondRule
	// AtExit runs for every configuration that reaches the function
	// exit node (after all statements and returns).
	AtExit func(*Ctx)
	// Track names the wildcard variables whose bindings persist in the
	// configuration across rules (the checker "tracks" that object,
	// e.g. a specific buffer variable). All other wildcards bind fresh
	// at every rule match, which is the paper's semantics — in Figure
	// 2 each read re-binds addr/buf independently.
	Track []string
	// CorrelateBranches enables the infeasible-path pruner the paper
	// deliberately omitted (§6: "we do not prune simple impossible
	// paths. The most common case was protocol code that had an
	// 'if-else' branch on a condition ... and then did another
	// 'if-else' branch on the same condition"). When on, outcomes of
	// bare-identifier branch conditions are remembered per
	// configuration and contradictory paths are dropped. It exists for
	// the ablation quantifying how many useless annotations it removes.
	CorrelateBranches bool
}

// keepTracked filters a match environment down to the SM's tracked
// variables; with no Track list configurations carry no bindings.
func (sm *SM) keepTracked(env match.Env) match.Env {
	if len(sm.Track) == 0 || len(env) == 0 {
		return match.Env{}
	}
	out := match.Env{}
	for _, name := range sm.Track {
		if e, ok := env[name]; ok {
			out[name] = e
		}
	}
	return out
}

// envFor computes the configuration environment after a transition to
// target. Re-entering the SM's start state resets tracking: the
// checked object's lifetime is over and the next creation site must
// bind fresh.
func (sm *SM) envFor(target string, env match.Env) match.Env {
	if target == sm.Start {
		return match.Env{}
	}
	return sm.keepTracked(env)
}

// Report is one diagnostic produced by a run.
type Report struct {
	SM    string
	Rule  string
	Fn    string
	Pos   token.Pos
	State string
	Msg   string
	// Trace is the witness: the ordered rule firings and branch
	// refinements along the path that led to this report. The final
	// step is always at the report's own position. Never empty.
	Trace []TraceStep `json:",omitempty"`
}

func (r Report) String() string {
	return fmt.Sprintf("%s: [%s] %s (fn %s, state %s)", r.Pos, r.SM, r.Msg, r.Fn, r.State)
}

// TraceStep is one step of a report's witness trace: where the
// configuration was, what event it saw, and how its state changed.
// Bindings is nil (not empty) when the match bound nothing, so reports
// survive a JSON round-trip through the depot byte-identically.
type TraceStep struct {
	Pos      token.Pos         `json:"pos"`
	Rule     string            `json:"rule,omitempty"`
	From     string            `json:"from,omitempty"`
	To       string            `json:"to,omitempty"`
	Event    string            `json:"event,omitempty"`
	Bindings map[string]string `json:"bindings,omitempty"`
}

func (s TraceStep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", s.Pos)
	if s.From != "" || s.To != "" {
		if s.From == s.To {
			fmt.Fprintf(&b, "[%s] ", s.From)
		} else {
			fmt.Fprintf(&b, "[%s -> %s] ", s.From, s.To)
		}
	}
	if s.Rule != "" {
		fmt.Fprintf(&b, "(%s) ", s.Rule)
	}
	b.WriteString(s.Event)
	if len(s.Bindings) > 0 {
		names := make([]string, 0, len(s.Bindings))
		for k := range s.Bindings {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString(" {")
		for i, n := range names {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", n, s.Bindings[n])
		}
		b.WriteString("}")
	}
	return b.String()
}

// Witness builds a single-step trace for diagnostics produced outside
// an SM run (AST passes, the lane walker, link errors), satisfying the
// invariant that every Report carries a trace ending at its position.
func Witness(pos token.Pos, rule, event string) []TraceStep {
	return []TraceStep{{Pos: pos, Rule: rule, Event: event}}
}

// TracePositions returns the ordered source positions the report's
// witness trace visits. Triage uses them to seed path exploration:
// CFG paths touching the witness positions are replayed first, so the
// common feasible case short-circuits before the full enumeration.
func (r Report) TracePositions() []token.Pos {
	out := make([]token.Pos, 0, len(r.Trace))
	for _, s := range r.Trace {
		out = append(out, s.Pos)
	}
	return out
}

// traceNode is a persistent (shared-tail) list of witness steps hung
// off a configuration. It is deliberately NOT part of config.key():
// configurations that differ only in how they got somewhere still
// merge, which is what keeps the fixed point terminating. The first
// configuration to reach a key donates the witness (first-writer
// wins), and ordered iteration below makes that choice deterministic.
type traceNode struct {
	step TraceStep
	prev *traceNode
}

func (t *traceNode) push(step TraceStep) *traceNode {
	return &traceNode{step: step, prev: t}
}

// materialize returns the steps oldest-first.
func (t *traceNode) materialize() []TraceStep {
	n := 0
	for x := t; x != nil; x = x.prev {
		n++
	}
	out := make([]TraceStep, n)
	for x := t; x != nil; x = x.prev {
		n--
		out[n] = x.step
	}
	return out
}

// eventText renders a CFG event for a witness step.
func eventText(n ast.Node) string {
	switch x := n.(type) {
	case ast.Stmt:
		return ast.StmtString(x)
	case ast.Expr:
		return ast.ExprString(x)
	}
	return ""
}

// bindingsText renders a match environment for a witness step,
// returning nil when empty.
func bindingsText(env match.Env) map[string]string {
	if len(env) == 0 {
		return nil
	}
	out := make(map[string]string, len(env))
	for k, e := range env {
		out[k] = ast.ExprString(e)
	}
	return out
}

// config is one SM configuration.
type config struct {
	state string
	env   match.Env
	// conds remembers branch outcomes of bare-identifier conditions
	// when the SM's CorrelateBranches pruner is on.
	conds map[string]bool
	// trace is the witness of how this configuration got here. It is
	// excluded from key() — see traceNode.
	trace *traceNode
}

func (c config) key() string {
	if len(c.env) == 0 && len(c.conds) == 0 {
		return c.state
	}
	names := make([]string, 0, len(c.env))
	for k := range c.env {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(c.state)
	for _, n := range names {
		b.WriteByte('|')
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(ast.ExprString(c.env[n]))
	}
	if len(c.conds) > 0 {
		cnames := make([]string, 0, len(c.conds))
		for k := range c.conds {
			cnames = append(cnames, k)
		}
		sort.Strings(cnames)
		for _, n := range cnames {
			b.WriteByte('|')
			b.WriteByte('?')
			b.WriteString(n)
			if c.conds[n] {
				b.WriteString("=T")
			} else {
				b.WriteString("=F")
			}
		}
	}
	return b.String()
}

// withCond returns a copy of c recording cond name=outcome.
func (c config) withCond(name string, outcome bool) config {
	nc := config{state: c.state, env: c.env, conds: make(map[string]bool, len(c.conds)+1), trace: c.trace}
	for k, v := range c.conds {
		nc.conds[k] = v
	}
	nc.conds[name] = outcome
	return nc
}

// withoutCond drops a recorded condition (its variable was written).
func (c config) withoutCond(name string) config {
	if _, ok := c.conds[name]; !ok {
		return c
	}
	nc := config{state: c.state, env: c.env, conds: make(map[string]bool, len(c.conds)), trace: c.trace}
	for k, v := range c.conds {
		if k != name {
			nc.conds[k] = v
		}
	}
	return nc
}

// configSet holds configurations deduplicated by key in insertion
// order. The fixed-point loop iterates sets only through configs(), so
// which configuration first claims a key — and hence which witness
// trace a report carries — is as deterministic as the insertion
// sequence, which is: the work list is a slice, predecessor edges are
// slices, and every iteration below walks list order.
type configSet struct {
	idx  map[string]struct{}
	list []config
}

func (s *configSet) add(c config) bool {
	k := c.key()
	if _, ok := s.idx[k]; ok {
		return false
	}
	if s.idx == nil {
		s.idx = map[string]struct{}{}
	}
	s.idx[k] = struct{}{}
	s.list = append(s.list, c)
	return true
}

func (s *configSet) configs() []config { return s.list }

// runner executes one SM over one graph.
type runner struct {
	sm      *SM
	g       *cfg.Graph
	reports []Report
	seen    map[string]bool

	// cov tallies rule/state/pattern/cond firings for this run;
	// ruleKeys and condKeys are the precomputed coverage keys.
	cov      *Coverage
	ruleKeys map[*Rule]string
	condKeys []string

	// plan is the compile-time rules-by-state partition; mi, when
	// non-nil, is the shared match index of a fused run (the runner then
	// matches through interned vocabulary alternatives and leaves visit
	// accounting to the index).
	plan *smPlan
	mi   *matchIndex

	// local metric shadows, flushed once by flushMetrics.
	nConfigs int
	nRules   int
	nPruned  int
	nPaths   int
	nVisits  int
	nEvals   int
}

func (r *runner) flushMetrics() {
	mRuns.Inc()
	mConfigs.Add(float64(r.nConfigs))
	mRules.Add(float64(r.nRules))
	mPruned.Add(float64(r.nPruned))
	mPaths.Add(float64(r.nPaths))
	mVisits.Add(float64(r.nVisits))
	mEvals.Add(float64(r.nEvals))
	mReports.Add(float64(len(r.reports)))
}

func (r *runner) report(rule string, pos token.Pos, state, msg string, tr *traceNode) {
	key := rule + "|" + pos.String() + "|" + msg
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	// The synthesized final step pins the witness to the report: its
	// position is the report position by construction.
	steps := append(tr.materialize(), TraceStep{
		Pos: pos, Rule: rule, From: state, To: state, Event: msg,
	})
	r.reports = append(r.reports, Report{
		SM: r.sm.Name, Rule: rule, Fn: r.g.Fn.Name,
		Pos: pos, State: state, Msg: msg, Trace: steps,
	})
}

// Run executes sm over g and returns its reports.
func Run(g *cfg.Graph, sm *SM) []Report {
	reports, _ := RunCov(g, sm)
	return reports
}

// newRunner builds a runner with its coverage bookkeeping in place:
// every runner carries a Coverage (pathmode and Sim discard theirs)
// and the precomputed rule/cond keys it is tallied under.
func newRunner(sm *SM, g *cfg.Graph) *runner {
	r := &runner{sm: sm, g: g, seen: map[string]bool{},
		cov: &Coverage{SM: sm.Name, Fn: g.Fn.Name}}
	r.ruleKeys = make(map[*Rule]string, len(sm.Rules))
	for i, rule := range sm.Rules {
		r.ruleKeys[rule] = RuleKey(sm, i)
	}
	r.condKeys = make([]string, len(sm.Cond))
	for i := range sm.Cond {
		r.condKeys[i] = CondKey(sm, i)
	}
	r.plan = buildPlan(sm)
	return r
}

// startState resolves the SM's start state for a function ("" skips).
func startState(sm *SM, fn *ast.FuncDecl) string {
	if sm.StartFor != nil {
		return sm.StartFor(fn)
	}
	return sm.Start
}

// RunCov is Run plus the run's dynamic coverage: which rules, states,
// pattern alternatives and branch refinements fired, and where the
// wall time went. The coverage is never nil (it is Empty when the SM
// skipped the function).
func RunCov(g *cfg.Graph, sm *SM) ([]Report, *Coverage) {
	cov := &Coverage{SM: sm.Name, Fn: g.Fn.Name}
	if startState(sm, g.Fn) == "" {
		return nil, cov
	}
	r := newRunner(sm, g)
	r.cov = cov
	r.runToFixpoint()
	return r.reports, cov
}

// runToFixpoint drives the worklist to a fixed point, runs the at-exit
// hooks, and flushes metrics. It is the shared body of RunCov and the
// per-member phase of Fused.RunCov; callers have already resolved a
// non-empty start state.
func (r *runner) runToFixpoint() {
	t0 := time.Now()
	g, sm, cov := r.g, r.sm, r.cov
	start := startState(sm, g.Fn)

	// out[n] = configurations holding immediately after n's event.
	out := make([]configSet, len(g.Nodes))
	for i := range out {
		out[i] = configSet{}
	}

	work := []*cfg.Node{g.Entry}
	inWork := make([]bool, len(g.Nodes))
	inWork[g.Entry.ID] = true

	// Seed: entry's transfer on the start configuration.
	seed := config{state: start, env: match.Env{}}
	for _, c := range r.transfer(g.Entry, seed) {
		if out[g.Entry.ID].add(c) {
			r.nConfigs++
			cov.hitState(c.state)
		}
	}
	inWork[g.Entry.ID] = false
	for _, e := range g.Entry.Succs {
		if !inWork[e.To.ID] {
			inWork[e.To.ID] = true
			work = append(work, e.To)
		}
	}

	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n.ID] = false
		if n == g.Entry {
			continue
		}
		// Gather input configs across incoming edges, applying branch
		// refinement when the predecessor is a branch node.
		in := configSet{}
		for _, e := range n.Preds {
			for _, c := range out[e.From.ID].configs() {
				rc, keep := r.refine(c, e)
				if keep {
					in.add(rc)
				}
			}
		}
		changed := false
		for _, c := range in.configs() {
			for _, nc := range r.transfer(n, c) {
				if out[n.ID].add(nc) {
					r.nConfigs++
					cov.hitState(nc.state)
					changed = true
				}
			}
		}
		if changed {
			for _, e := range n.Succs {
				if !inWork[e.To.ID] {
					inWork[e.To.ID] = true
					work = append(work, e.To)
				}
			}
		}
	}

	if sm.AtExit != nil {
		for _, c := range out[g.Exit.ID].configs() {
			ctx := &Ctx{Env: c.env, Node: g.Exit, MatchPos: g.Exit.Pos(),
				State: c.state, eng: r, ruleTag: "at-exit", trace: c.trace}
			sm.AtExit(ctx)
		}
	}
	r.flushMetrics()
	cov.Elapsed = time.Since(t0)
}

// refine applies branch-correlation pruning and CondRules to a
// configuration crossing edge e.
func (r *runner) refine(c config, e *cfg.Edge) (config, bool) {
	if e.From.Kind != cfg.KindBranch || (e.Label != cfg.True && e.Label != cfg.False) {
		return c, true
	}
	cond, negated := stripNot(e.From.Cond)
	if r.sm.CorrelateBranches {
		if id, ok := cond.(*ast.Ident); ok {
			outcome := (e.Label == cfg.True) != negated
			if prev, known := c.conds[id.Name]; known {
				if prev != outcome {
					r.nPruned++
					return c, false // contradictory branch: infeasible path
				}
			} else {
				c = c.withCond(id.Name, outcome)
			}
		}
	}
	ek := ""
	if r.mi != nil && len(r.sm.Cond) > 0 {
		ek = envKeyOf(c.env)
	}
	for ci, cr := range r.sm.Cond {
		if cr.State != c.state && cr.State != All {
			continue
		}
		var matched match.Env
		if r.mi != nil {
			env, _, ok := r.mi.eval(r.plan.condAlts[ci], e.From.ID, cond, c.env, ek)
			if !ok {
				continue
			}
			matched = env
		} else {
			r.nEvals++
			results := match.Find(cr.Pattern, cond, c.env)
			if len(results) == 0 {
				continue
			}
			matched = results[0].Env
		}
		r.cov.hitCond(r.condKeys[ci])
		isTrue := e.Label == cfg.True
		if negated {
			isTrue = !isTrue
		}
		target := cr.FalseTarget
		if isTrue {
			target = cr.TrueTarget
		}
		isTrueStr := "false"
		if isTrue {
			isTrueStr = "true"
		}
		switch target {
		case "":
			return c, true
		case Stop:
			return c, false
		default:
			env := r.sm.envFor(target, matched)
			tr := c.trace.push(TraceStep{
				Pos: e.From.Pos(), Rule: "cond", From: c.state, To: target,
				Event:    "branch " + ast.ExprString(cond) + " is " + isTrueStr,
				Bindings: bindingsText(env),
			})
			return config{state: target, env: env, conds: c.conds, trace: tr}, true
		}
	}
	return c, true
}

// stripNot removes parens and counts top-level logical negations, so
// CondRules treat "if (!freed(b))" as the negation of "if (freed(b))".
func stripNot(e ast.Expr) (ast.Expr, bool) {
	neg := false
	for {
		switch x := e.(type) {
		case *ast.Paren:
			e = x.X
		case *ast.Unary:
			if x.Op == token.Not && !x.Postfix {
				neg = !neg
				e = x.X
				continue
			}
			return e, neg
		default:
			return e, neg
		}
	}
}

// transfer processes node n's event for configuration c.
func (r *runner) transfer(n *cfg.Node, c config) []config {
	var event ast.Node
	switch n.Kind {
	case cfg.KindStmt:
		event = n.Stmt
	case cfg.KindBranch:
		event = n.Cond
	default:
		return []config{c}
	}

	// Writes to a variable whose branch outcome was recorded
	// invalidate the recorded fact.
	if len(c.conds) > 0 {
		ast.Inspect(event, func(x ast.Node) bool {
			switch a := x.(type) {
			case *ast.Assign:
				if id, ok := a.LHS.(*ast.Ident); ok {
					c = c.withoutCond(id.Name)
				}
			case *ast.Unary:
				if a.Op == token.Inc || a.Op == token.Dec {
					if id, ok := a.X.(*ast.Ident); ok {
						c = c.withoutCond(id.Name)
					}
				}
			case *ast.DeclStmt:
				c = c.withoutCond(a.Decl.Name)
			}
			return true
		})
	}

	// State-specific rules first, then all-state rules (paper §5).
	ek := ""
	if r.mi == nil {
		r.nVisits++
	} else {
		ek = envKeyOf(c.env)
		r.mi.visit(n.ID, ek)
	}
	t0 := time.Now()
	fire := func(rules []*Rule) ([]config, bool) {
		for _, rule := range rules {
			env, pos, alt, ok := r.matchRule(rule, n.ID, event, c.env, ek)
			if !ok {
				continue
			}
			r.nRules++
			key := r.ruleKeys[rule]
			r.cov.hitRule(key)
			r.cov.hitPattern(key, alt)
			defer func() { r.cov.addRuleSeconds(key, time.Since(t0)) }()
			to := rule.Target
			if to == "" {
				to = c.state
			}
			tr := c.trace.push(TraceStep{
				Pos: pos, Rule: rule.Tag, From: c.state, To: to,
				Event: eventText(event), Bindings: bindingsText(env),
			})
			ctx := &Ctx{Env: env, Node: n, MatchPos: pos, State: c.state,
				eng: r, ruleTag: rule.Tag, trace: tr}
			if rule.Action != nil {
				rule.Action(ctx)
			}
			switch rule.Target {
			case "":
				return []config{{state: c.state, env: r.sm.keepTracked(env), conds: c.conds, trace: tr}}, true
			case Stop:
				return nil, true
			default:
				return []config{{state: rule.Target, env: r.sm.envFor(rule.Target, env), conds: c.conds, trace: tr}}, true
			}
		}
		return nil, false
	}

	if out, fired := fire(r.plan.byState[c.state]); fired {
		return out
	}
	if out, fired := fire(r.plan.allRules); fired {
		return out
	}
	return []config{c}
}

// matchRule tries each alternative of a rule against the event. The
// int result is the index of the alternative that matched, for
// per-alternative coverage. In a fused run the evaluation is memoized
// in the shared match index, keyed by (node, interned alternative,
// environment render), so other members asking the same question get
// the cached answer.
func (r *runner) matchRule(rule *Rule, nodeID int, event ast.Node, env match.Env, ek string) (match.Env, token.Pos, int, bool) {
	if r.mi != nil {
		alts := r.plan.ruleAlts[rule]
		for i := range rule.Patterns {
			if env2, pos, ok := r.mi.eval(alts[i], nodeID, event, env, ek); ok {
				return env2, pos, i, true
			}
		}
		return nil, token.Pos{}, 0, false
	}
	for i, p := range rule.Patterns {
		r.nEvals++
		if env2, pos, ok := evalPattern(p, event, env); ok {
			return env2, pos, i, true
		}
	}
	return nil, token.Pos{}, 0, false
}

// evalPattern evaluates one rule-pattern alternative against an event.
func evalPattern(p Pattern, event ast.Node, env match.Env) (match.Env, token.Pos, bool) {
	if p.Stmt != nil {
		if s, ok := event.(ast.Stmt); ok {
			if got, ok2 := match.Stmt(p.Stmt, s, env); ok2 {
				return got, s.Pos(), true
			}
		}
		// Expression-statement patterns also match as
		// sub-expressions of any event.
		if es, ok := p.Stmt.(*ast.ExprStmt); ok {
			if results := match.Find(es.X, event, env); len(results) > 0 {
				return results[0].Env, results[0].Expr.Pos(), true
			}
		}
		return nil, token.Pos{}, false
	}
	if p.Expr != nil {
		if results := match.Find(p.Expr, event, env); len(results) > 0 {
			return results[0].Env, results[0].Expr.Pos(), true
		}
	}
	return nil, token.Pos{}, false
}

// Count returns how many sub-expressions across fn bodies match pat —
// the "Applied" columns of the paper's tables.
func Count(fns []*ast.FuncDecl, pat ast.Expr) int {
	total := 0
	for _, fn := range fns {
		total += len(match.Find(pat, fn, nil))
	}
	return total
}
