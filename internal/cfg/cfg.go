// Package cfg builds control-flow graphs for protocol-C functions.
// The graphs drive the metal state-machine engine (package engine),
// the Table 1 path statistics (package paths), and the
// inter-procedural lane analysis (package global).
//
// Node granularity is one statement or one branch condition. Branch
// out-edges carry True/False labels so checkers can be sensitive to
// the branched-on condition (the paper's "routines that return 0 or 1
// depending on whether they freed a buffer", §6).
package cfg

import (
	"fmt"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	KindEntry NodeKind = iota
	KindExit
	KindStmt   // one non-branching statement (Stmt field set)
	KindBranch // a decision point (Cond field set)
	KindJoin   // structural no-op merge point
)

func (k NodeKind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindStmt:
		return "stmt"
	case KindBranch:
		return "branch"
	case KindJoin:
		return "join"
	}
	return "?"
}

// EdgeLabel distinguishes branch outcomes.
type EdgeLabel int

// Edge labels.
const (
	Always EdgeLabel = iota
	True
	False
	CaseEq  // switch dispatch edge for one case value
	Default // switch default / implicit default edge
)

// Edge is one directed CFG edge.
type Edge struct {
	From, To *Node
	Label    EdgeLabel
	// CaseVal is the case expression for CaseEq edges.
	CaseVal ast.Expr
}

// Node is one CFG node.
type Node struct {
	ID   int
	Kind NodeKind
	Stmt ast.Stmt // KindStmt
	Cond ast.Expr // KindBranch
	P    token.Pos

	Succs []*Edge
	Preds []*Edge
}

// Pos returns the node's source position.
func (n *Node) Pos() token.Pos { return n.P }

func (n *Node) String() string {
	switch n.Kind {
	case KindStmt:
		return fmt.Sprintf("n%d %s", n.ID, ast.StmtString(n.Stmt))
	case KindBranch:
		return fmt.Sprintf("n%d if(%s)", n.ID, ast.ExprString(n.Cond))
	default:
		return fmt.Sprintf("n%d <%s>", n.ID, n.Kind)
	}
}

// Graph is the CFG of one function.
type Graph struct {
	Fn    *ast.FuncDecl
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// Build constructs the CFG for fn (which must have a body).
func Build(fn *ast.FuncDecl) *Graph {
	b := &builder{g: &Graph{Fn: fn}, labels: map[string]*Node{}}
	b.g.Entry = b.newNode(KindEntry, fn.Pos())
	b.g.Exit = b.newNode(KindExit, fn.EndPos)
	end := b.stmtSeq(b.g.Entry, fn.Body)
	if end != nil {
		b.connect(end, b.g.Exit, Always, nil)
	}
	// goto fixups
	for _, g := range b.gotos {
		target, ok := b.labels[g.label]
		if !ok {
			// Undefined label: route to exit so paths stay finite.
			target = b.g.Exit
		}
		b.connect(g.node, target, Always, nil)
	}
	return b.g
}

type pendingGoto struct {
	node  *Node
	label string
}

type builder struct {
	g           *Graph
	breakStack  []*Node
	continueStk []*Node
	labels      map[string]*Node
	gotos       []pendingGoto
}

func (b *builder) newNode(k NodeKind, pos token.Pos) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: k, P: pos}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) stmtNode(s ast.Stmt) *Node {
	n := b.newNode(KindStmt, s.Pos())
	n.Stmt = s
	return n
}

func (b *builder) join(pos token.Pos) *Node { return b.newNode(KindJoin, pos) }

func (b *builder) connect(from, to *Node, label EdgeLabel, caseVal ast.Expr) {
	if from == nil || to == nil {
		return
	}
	e := &Edge{From: from, To: to, Label: label, CaseVal: caseVal}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// labelNode returns (creating on demand) the join node for a label.
func (b *builder) labelNode(name string, pos token.Pos) *Node {
	if n, ok := b.labels[name]; ok {
		return n
	}
	n := b.join(pos)
	b.labels[name] = n
	return n
}

// stmtSeq wires statement s after node cur and returns the node from
// which execution continues, or nil if control never falls through
// (return/break/continue/goto on all arms). A nil cur means the
// statement is statically unreachable; its nodes are still built (so
// statistics see them) but receive no incoming edge.
func (b *builder) stmtSeq(cur *Node, s ast.Stmt) *Node {
	switch x := s.(type) {
	case nil:
		return cur
	case *ast.ExprStmt, *ast.DeclStmt, *ast.Empty:
		n := b.stmtNode(s)
		b.connect(cur, n, Always, nil)
		return n
	case *ast.Block:
		for _, st := range x.Stmts {
			cur = b.stmtSeq(cur, st)
		}
		return cur
	case *ast.If:
		br := b.newNode(KindBranch, x.Pos())
		br.Cond = x.Cond
		b.connect(cur, br, Always, nil)
		tEntry := b.join(x.Then.Pos())
		b.connect(br, tEntry, True, nil)
		tEnd := b.stmtSeq(tEntry, x.Then)
		var eEnd *Node
		if x.Else != nil {
			eEntry := b.join(x.Else.Pos())
			b.connect(br, eEntry, False, nil)
			eEnd = b.stmtSeq(eEntry, x.Else)
		} else {
			eEnd = b.join(x.Pos())
			b.connect(br, eEnd, False, nil)
		}
		if tEnd == nil && eEnd == nil {
			return nil
		}
		j := b.join(x.Pos())
		b.connect(tEnd, j, Always, nil)
		b.connect(eEnd, j, Always, nil)
		return j
	case *ast.While:
		head := b.join(x.Pos())
		b.connect(cur, head, Always, nil)
		br := b.newNode(KindBranch, x.Pos())
		br.Cond = x.Cond
		b.connect(head, br, Always, nil)
		bodyEntry := b.join(x.Body.Pos())
		b.connect(br, bodyEntry, True, nil)
		exit := b.join(x.Pos())
		b.connect(br, exit, False, nil)
		b.pushLoop(exit, head)
		bodyEnd := b.stmtSeq(bodyEntry, x.Body)
		b.popLoop()
		b.connect(bodyEnd, head, Always, nil) // back edge
		return exit
	case *ast.DoWhile:
		bodyEntry := b.join(x.Body.Pos())
		b.connect(cur, bodyEntry, Always, nil)
		br := b.newNode(KindBranch, x.Pos())
		br.Cond = x.Cond
		exit := b.join(x.Pos())
		b.pushLoop(exit, br)
		bodyEnd := b.stmtSeq(bodyEntry, x.Body)
		b.popLoop()
		b.connect(bodyEnd, br, Always, nil)
		b.connect(br, bodyEntry, True, nil) // back edge
		b.connect(br, exit, False, nil)
		return exit
	case *ast.For:
		cur = b.stmtSeq(cur, x.Init)
		head := b.join(x.Pos())
		b.connect(cur, head, Always, nil)
		exit := b.join(x.Pos())
		var bodyFrom *Node
		if x.Cond != nil {
			br := b.newNode(KindBranch, x.Pos())
			br.Cond = x.Cond
			b.connect(head, br, Always, nil)
			bodyEntry := b.join(x.Body.Pos())
			b.connect(br, bodyEntry, True, nil)
			b.connect(br, exit, False, nil)
			bodyFrom = bodyEntry
		} else {
			bodyFrom = head
		}
		var post *Node
		if x.Post != nil {
			ps := &ast.ExprStmt{X: x.Post}
			ps.P = x.Post.Pos()
			post = b.stmtNode(ps)
		} else {
			post = b.join(x.Pos())
		}
		b.pushLoop(exit, post)
		bodyEnd := b.stmtSeq(bodyFrom, x.Body)
		b.popLoop()
		b.connect(bodyEnd, post, Always, nil)
		b.connect(post, head, Always, nil) // back edge
		if x.Cond == nil && len(exit.Preds) == 0 {
			return nil // for(;;) with no break never falls through
		}
		return exit
	case *ast.Switch:
		br := b.newNode(KindBranch, x.Pos())
		br.Cond = x.Tag
		b.connect(cur, br, Always, nil)
		exit := b.join(x.Pos())
		b.breakStack = append(b.breakStack, exit)
		var flow *Node
		sawDefault := false
		for _, st := range x.Body.Stmts {
			if cs, ok := st.(*ast.Case); ok {
				entry := b.stmtNode(cs)
				if cs.Value == nil {
					sawDefault = true
					b.connect(br, entry, Default, nil)
				} else {
					b.connect(br, entry, CaseEq, cs.Value)
				}
				b.connect(flow, entry, Always, nil) // fallthrough
				flow = entry
				continue
			}
			flow = b.stmtSeq(flow, st)
		}
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		if !sawDefault {
			b.connect(br, exit, Default, nil)
		}
		b.connect(flow, exit, Always, nil)
		if len(exit.Preds) == 0 {
			return nil
		}
		return exit
	case *ast.Case:
		// Case outside switch body handling (shouldn't happen); treat
		// as a plain node.
		n := b.stmtNode(s)
		b.connect(cur, n, Always, nil)
		return n
	case *ast.Break:
		n := b.stmtNode(s)
		b.connect(cur, n, Always, nil)
		if len(b.breakStack) > 0 {
			b.connect(n, b.breakStack[len(b.breakStack)-1], Always, nil)
		} else {
			b.connect(n, b.g.Exit, Always, nil)
		}
		return nil
	case *ast.Continue:
		n := b.stmtNode(s)
		b.connect(cur, n, Always, nil)
		if len(b.continueStk) > 0 {
			b.connect(n, b.continueStk[len(b.continueStk)-1], Always, nil)
		} else {
			b.connect(n, b.g.Exit, Always, nil)
		}
		return nil
	case *ast.Return:
		n := b.stmtNode(s)
		b.connect(cur, n, Always, nil)
		b.connect(n, b.g.Exit, Always, nil)
		return nil
	case *ast.Goto:
		n := b.stmtNode(s)
		b.connect(cur, n, Always, nil)
		b.gotos = append(b.gotos, pendingGoto{n, x.Label})
		return nil
	case *ast.Labeled:
		ln := b.labelNode(x.Label, x.Pos())
		b.connect(cur, ln, Always, nil)
		return b.stmtSeq(ln, x.Stmt)
	default:
		n := b.stmtNode(s)
		b.connect(cur, n, Always, nil)
		return n
	}
}

func (b *builder) pushLoop(brk, cont *Node) {
	b.breakStack = append(b.breakStack, brk)
	b.continueStk = append(b.continueStk, cont)
}

func (b *builder) popLoop() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStk = b.continueStk[:len(b.continueStk)-1]
}

// BackEdges returns the set of edges that close cycles, identified by
// depth-first search from the entry node.
func (g *Graph) BackEdges() map[*Edge]bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Nodes))
	back := make(map[*Edge]bool)
	var dfs func(n *Node)
	dfs = func(n *Node) {
		color[n.ID] = grey
		for _, e := range n.Succs {
			switch color[e.To.ID] {
			case white:
				dfs(e.To)
			case grey:
				back[e] = true
			}
		}
		color[n.ID] = black
	}
	dfs(g.Entry)
	return back
}

// Reachable returns the nodes reachable from entry.
func (g *Graph) Reachable() map[*Node]bool {
	seen := map[*Node]bool{}
	stack := []*Node{g.Entry}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range n.Succs {
			if !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// Weight is the path-length contribution of a node: statements and
// branches count one source line, structural nodes count zero.
func (n *Node) Weight() int64 {
	switch n.Kind {
	case KindStmt, KindBranch:
		return 1
	}
	return 0
}
