package cfg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"flashmc/internal/cc/parser"
)

// genStmt emits one random statement at the given nesting depth.
func genStmt(rng *rand.Rand, b *strings.Builder, depth int) {
	if depth <= 0 {
		b.WriteString("x = x + 1;\n")
		return
	}
	switch rng.Intn(8) {
	case 0:
		b.WriteString("x = x ^ 3;\n")
	case 1:
		b.WriteString("if (x > 1) {\n")
		genStmt(rng, b, depth-1)
		b.WriteString("} else {\n")
		genStmt(rng, b, depth-1)
		b.WriteString("}\n")
	case 2:
		b.WriteString("while (x < 9) {\n")
		genStmt(rng, b, depth-1)
		b.WriteString("x++;\n}\n")
	case 3:
		b.WriteString("do {\n")
		genStmt(rng, b, depth-1)
		b.WriteString("} while (x & 1);\n")
	case 4:
		b.WriteString("switch (x & 3) {\ncase 0:\n")
		genStmt(rng, b, depth-1)
		b.WriteString("break;\ncase 1:\n")
		genStmt(rng, b, depth-1)
		b.WriteString("default:\n")
		genStmt(rng, b, depth-1)
		b.WriteString("}\n")
	case 5:
		b.WriteString("for (x = 0; x < 4; x++) {\n")
		genStmt(rng, b, depth-1)
		b.WriteString("}\n")
	case 6:
		b.WriteString("if (x == 7) { return; }\n")
	case 7:
		b.WriteString("if (x == 5) { break_guard(); }\n")
	}
}

func genRandomFn(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("void f(int x) {\n")
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		genStmt(rng, &b, 3)
	}
	b.WriteString("}\n")
	return b.String()
}

// TestCFGInvariantsProperty checks structural invariants over random
// functions: edges are mirrored in pred/succ lists, reachable non-exit
// nodes have successors, the exit has none, and back-edge removal
// leaves an acyclic graph.
func TestCFGInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genRandomFn(rng)
		file, errs := parser.ParseText("r.c", src)
		if len(errs) != 0 {
			t.Logf("parse errors in generated source:\n%s", src)
			return false
		}
		g := Build(file.Funcs()[0])

		// Mirrored adjacency.
		for _, n := range g.Nodes {
			for _, e := range n.Succs {
				if e.From != n {
					return false
				}
				found := false
				for _, p := range e.To.Preds {
					if p == e {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		// Exit is a sink; reachable non-exit nodes flow somewhere.
		if len(g.Exit.Succs) != 0 {
			return false
		}
		for n := range g.Reachable() {
			if n != g.Exit && len(n.Succs) == 0 {
				t.Logf("dead end %v in:\n%s", n, src)
				return false
			}
		}
		// Removing back edges yields a DAG (topological order exists).
		back := g.BackEdges()
		indeg := map[*Node]int{}
		for _, n := range g.Nodes {
			for _, e := range n.Succs {
				if !back[e] {
					indeg[e.To]++
				}
			}
		}
		queue := []*Node{}
		for _, n := range g.Nodes {
			if indeg[n] == 0 {
				queue = append(queue, n)
			}
		}
		visited := 0
		for len(queue) > 0 {
			n := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			visited++
			for _, e := range n.Succs {
				if back[e] {
					continue
				}
				indeg[e.To]--
				if indeg[e.To] == 0 {
					queue = append(queue, e.To)
				}
			}
		}
		return visited == len(g.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
