package cfg

import (
	"testing"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/parser"
)

// buildFn parses src and builds the CFG of its first function.
func buildFn(t *testing.T, src string) *Graph {
	t.Helper()
	f, errs := parser.ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	fns := f.Funcs()
	if len(fns) == 0 {
		t.Fatal("no function")
	}
	return Build(fns[0])
}

// countKind counts reachable nodes of a kind.
func countKind(g *Graph, k NodeKind) int {
	reach := g.Reachable()
	n := 0
	for node := range reach {
		if node.Kind == k {
			n++
		}
	}
	return n
}

func TestLinear(t *testing.T) {
	g := buildFn(t, `void f(void) { int a; a = 1; a = 2; }`)
	if got := countKind(g, KindStmt); got != 3 {
		t.Errorf("stmt nodes %d", got)
	}
	if got := countKind(g, KindBranch); got != 0 {
		t.Errorf("branch nodes %d", got)
	}
	if !g.Reachable()[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestIfElse(t *testing.T) {
	g := buildFn(t, `void f(int c) { if (c) { c = 1; } else { c = 2; } c = 3; }`)
	if got := countKind(g, KindBranch); got != 1 {
		t.Fatalf("branch nodes %d", got)
	}
	// Find the branch; it must have one True and one False edge.
	for _, n := range g.Nodes {
		if n.Kind != KindBranch {
			continue
		}
		var hasT, hasF bool
		for _, e := range n.Succs {
			switch e.Label {
			case True:
				hasT = true
			case False:
				hasF = true
			}
		}
		if !hasT || !hasF {
			t.Errorf("branch edges T=%v F=%v", hasT, hasF)
		}
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := buildFn(t, `void f(int c) { if (c) c = 1; c = 2; }`)
	if !g.Reachable()[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestWhileHasBackEdge(t *testing.T) {
	g := buildFn(t, `void f(int n) { while (n) { n--; } }`)
	if len(g.BackEdges()) != 1 {
		t.Errorf("back edges %d", len(g.BackEdges()))
	}
}

func TestDoWhile(t *testing.T) {
	g := buildFn(t, `void f(int n) { do { n--; } while (n); }`)
	if len(g.BackEdges()) != 1 {
		t.Errorf("back edges %d", len(g.BackEdges()))
	}
	if !g.Reachable()[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestForLoop(t *testing.T) {
	g := buildFn(t, `void f(void) { int i; for (i = 0; i < 4; i++) { i += 0; } }`)
	if len(g.BackEdges()) != 1 {
		t.Errorf("back edges %d", len(g.BackEdges()))
	}
}

func TestInfiniteForWithBreak(t *testing.T) {
	g := buildFn(t, `void f(int c) { for (;;) { if (c) break; } c = 1; }`)
	if !g.Reachable()[g.Exit] {
		t.Error("exit unreachable (break not wired)")
	}
}

func TestInfiniteForNoBreak(t *testing.T) {
	g := buildFn(t, `void f(void) { for (;;) { } }`)
	// Exit should be unreachable.
	if g.Reachable()[g.Exit] {
		t.Error("exit reachable from for(;;) without break")
	}
}

func TestContinueTargets(t *testing.T) {
	g := buildFn(t, `void f(int n) { while (n) { if (n == 2) continue; n--; } }`)
	// Graph must stay finite and exit reachable.
	if !g.Reachable()[g.Exit] {
		t.Error("exit unreachable")
	}
	if len(g.BackEdges()) < 1 {
		t.Error("no back edge")
	}
}

func TestSwitchEdges(t *testing.T) {
	g := buildFn(t, `
void f(int op) {
	switch (op) {
	case 1:
		op = 10;
		break;
	case 2:
	case 3:
		op = 20;
		break;
	default:
		op = 30;
	}
	op = 40;
}`)
	var sw *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			sw = n
		}
	}
	if sw == nil {
		t.Fatal("no switch branch node")
	}
	var caseEdges, defEdges int
	for _, e := range sw.Succs {
		switch e.Label {
		case CaseEq:
			caseEdges++
		case Default:
			defEdges++
		}
	}
	if caseEdges != 3 || defEdges != 1 {
		t.Errorf("case=%d default=%d", caseEdges, defEdges)
	}
}

func TestSwitchImplicitDefault(t *testing.T) {
	g := buildFn(t, `void f(int op) { switch (op) { case 1: op = 2; break; } op = 3; }`)
	var sw *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			sw = n
		}
	}
	var def int
	for _, e := range sw.Succs {
		if e.Label == Default {
			def++
		}
	}
	if def != 1 {
		t.Errorf("implicit default edges %d", def)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFn(t, `
void f(int op) {
	int x;
	switch (op) {
	case 1:
		x = 1;
	case 2:
		x = 2;
		break;
	}
}`)
	// Find "x = 1" node; its successor chain must reach "x = 2"
	// without passing through the switch branch again.
	var n1, n2 *Node
	for _, n := range g.Nodes {
		if n.Kind == KindStmt {
			s := ast.StmtString(n.Stmt)
			if s == "x = 1;" {
				n1 = n
			}
			if s == "x = 2;" {
				n2 = n
			}
		}
	}
	if n1 == nil || n2 == nil {
		t.Fatal("missing stmt nodes")
	}
	// BFS from n1.
	seen := map[*Node]bool{}
	q := []*Node{n1}
	found := false
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		if n == n2 {
			found = true
			break
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range n.Succs {
			q = append(q, e.To)
		}
	}
	if !found {
		t.Error("fallthrough edge missing")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := buildFn(t, `
void f(int c) {
	int x;
top:
	x = 1;
	if (c) goto done;
	goto top;
done:
	x = 2;
}`)
	if !g.Reachable()[g.Exit] {
		t.Error("exit unreachable")
	}
	if len(g.BackEdges()) < 1 {
		t.Error("backward goto produced no back edge")
	}
}

func TestReturnConnectsToExit(t *testing.T) {
	g := buildFn(t, `void f(int c) { if (c) return; c = 1; }`)
	// Two paths must reach exit.
	var returns int
	for _, n := range g.Nodes {
		if n.Kind == KindStmt {
			if _, ok := n.Stmt.(*ast.Return); ok {
				returns++
				hasExit := false
				for _, e := range n.Succs {
					if e.To == g.Exit {
						hasExit = true
					}
				}
				if !hasExit {
					t.Error("return not wired to exit")
				}
			}
		}
	}
	if returns != 1 {
		t.Errorf("returns %d", returns)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := buildFn(t, `void f(void) { return; f(); }`)
	reach := g.Reachable()
	for _, n := range g.Nodes {
		if n.Kind == KindStmt {
			if s, ok := n.Stmt.(*ast.ExprStmt); ok {
				if ast.ExprString(s.X) == "f()" && reach[n] {
					t.Error("code after return is reachable")
				}
			}
		}
	}
}

func TestEveryNonExitReachableNodeHasSucc(t *testing.T) {
	g := buildFn(t, `
void f(int a, int b) {
	if (a) { while (b) { b--; } } else { switch (a) { case 1: a = 2; break; default: a = 3; } }
	do { a++; } while (a < 10);
	return;
}`)
	for n := range g.Reachable() {
		if n != g.Exit && len(n.Succs) == 0 {
			t.Errorf("dead-end node %v", n)
		}
	}
}
