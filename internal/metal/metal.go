package metal

import (
	"fmt"
	"strings"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/cc/lexer"
	"flashmc/internal/cc/parser"
	"flashmc/internal/cc/types"
	"flashmc/internal/engine"
)

// Error is a metal compilation error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("metal:%d: %s", e.Line, e.Msg) }

// Options configures compilation.
type Options struct {
	// Include resolves files named by the prologue's #include lines.
	// Nil disables prologue processing (patterns then compile without
	// protocol typedefs).
	Include     cpp.Source
	IncludeDirs []string
}

// Program is a compiled metal checker.
type Program struct {
	Name string
	// SM is the executable state machine.
	SM *engine.SM
	// Decls maps wildcard variable names to their constraints.
	Decls map[string]string
	// PatternNames lists the named pats in declaration order.
	PatternNames []string
	// TrackVars lists wildcards whose bindings persist across rules.
	TrackVars []string
	// LOC is the non-comment line count of the source (Table 7).
	LOC int
	// Typedefs holds type names harvested from the prologue.
	Typedefs map[string]types.Type
	// EnumConsts holds enumerator values from the prologue.
	EnumConsts map[string]int64
}

// mparser walks a metal token stream.
type mparser struct {
	toks []mtok
	pos  int
}

func (p *mparser) peek() mtok { return p.toks[p.pos] }

func (p *mparser) peekKind(n int) tokKind {
	if p.pos+n >= len(p.toks) {
		return tEOF
	}
	return p.toks[p.pos+n].kind
}

func (p *mparser) next() mtok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *mparser) peekIdentIs(s string) bool {
	t := p.peek()
	return t.kind == tIdent && t.text == s
}

func (p *mparser) acceptIdent(s string) bool {
	if p.peekIdentIs(s) {
		p.next()
		return true
	}
	return false
}

func (p *mparser) errf(format string, args ...any) error {
	return &Error{p.peek().line, fmt.Sprintf(format, args...)}
}

// rawRule is a parsed but not yet compiled rule.
type rawRule struct {
	state   string
	pats    []patRef
	target  string
	actions []action
	line    int
}

// patRef is either a braced pattern (text) or a reference to a named
// pattern set.
type patRef struct {
	text string // raw C pattern text ("" when ref != "")
	ref  string
	line int
}

// rawCond is a parsed but not yet compiled cond rule.
type rawCond struct {
	state       string
	text        string
	trueTarget  string
	falseTarget string
	line        int
}

// action is one err()/warn() call.
type action struct {
	fn   string // "err" or "warn"
	msg  string // unquoted message text
	args []string
	line int
}

// Compile parses and compiles one metal program.
//
// Grammar (the subset exercised by the paper's Figures 2 and 3 plus
// multiple actions per rule):
//
//	program  = [prologue-block] "sm" IDENT "{" body "}"
//	body     = { decl | track | pat | cond | state }
//	decl     = "decl" "{" constraint "}" IDENT {"," IDENT} ";"
//	track    = "track" IDENT {"," IDENT} ";"
//	pat      = "pat" IDENT "=" alt {"|" alt} ";"
//	cond     = "cond" IDENT "{" C-expr "}" "==>" IDENT "," IDENT ";"
//	alt      = pattern-block | IDENT        (reference to earlier pat)
//	state    = IDENT ":" rule {"|" rule} ";"
//	rule     = alt "==>" [IDENT] [action-block]
//
// Pattern blocks contain protocol-C statement text compiled against
// the declared wildcards; action blocks contain err()/warn() calls.
//
// track and cond are extensions over the paper's figures: track makes
// a wildcard's binding persist across rules (per-object checking), and
// cond compiles to a branch-condition rule — "cond S { p } ==> T , F ;"
// moves a configuration in state S to T along the true edge and F
// along the false edge of any branch whose condition matches p (the
// paper's §6 value-sensitivity refinement, natively expressible).
func Compile(src string, opts Options) (*Program, error) {
	toks, err := scan(src)
	if err != nil {
		return nil, err
	}
	p := &mparser{toks: toks}

	prog := &Program{
		Decls:      map[string]string{},
		Typedefs:   map[string]types.Type{},
		EnumConsts: map[string]int64{},
		LOC:        LOC(src),
	}

	// Optional prologue block before 'sm'.
	if p.peek().kind == tBlock {
		if err := prog.loadPrologue(p.next().text, opts); err != nil {
			return nil, err
		}
	}

	if !p.acceptIdent("sm") {
		return nil, p.errf("expected 'sm'")
	}
	nameTok := p.next()
	if nameTok.kind != tIdent {
		return nil, p.errf("expected state machine name")
	}
	prog.Name = nameTok.text
	if p.peek().kind != tBlock {
		return nil, p.errf("expected '{' after sm name")
	}
	bodyTok := p.next()
	if p.peek().kind != tEOF {
		return nil, p.errf("unexpected tokens after sm body")
	}

	btoks, err := scan(bodyTok.text)
	if err != nil {
		return nil, err
	}
	// Adjust line numbers: block body lines are relative to the block.
	for i := range btoks {
		btoks[i].line += bodyTok.line - 1
	}
	bp := &mparser{toks: btoks}

	namedPats := map[string][]patRef{}
	var rules []rawRule
	var conds []rawCond
	var stateOrder []string

	for bp.peek().kind != tEOF {
		switch {
		case bp.peekIdentIs("decl") && bp.peekKind(1) == tBlock:
			bp.next()
			constraint := strings.TrimSpace(bp.next().text)
			for {
				nt := bp.next()
				if nt.kind != tIdent {
					return nil, bp.errf("expected wildcard name in decl")
				}
				prog.Decls[nt.text] = constraint
				if bp.peek().kind == tComma {
					bp.next()
					continue
				}
				break
			}
			if bp.next().kind != tSemi {
				return nil, bp.errf("expected ';' after decl")
			}
		case bp.peekIdentIs("track") && bp.peekKind(1) == tIdent:
			// Extension over the paper's figures: "track v;" makes v's
			// binding persist across rules (per-object checking, as the
			// allocation checker needs).
			bp.next()
			for {
				nt := bp.next()
				if nt.kind != tIdent {
					return nil, bp.errf("expected wildcard name in track")
				}
				prog.TrackVars = append(prog.TrackVars, nt.text)
				if bp.peek().kind == tComma {
					bp.next()
					continue
				}
				break
			}
			if bp.next().kind != tSemi {
				return nil, bp.errf("expected ';' after track")
			}
		case bp.peekIdentIs("cond") && bp.peekKind(1) == tIdent && bp.peekKind(2) == tBlock:
			bp.next()
			rc := rawCond{state: bp.next().text}
			pt := bp.next()
			rc.text, rc.line = pt.text, pt.line
			if bp.next().kind != tArrow {
				return nil, bp.errf("expected '==>' in cond rule")
			}
			tt := bp.next()
			if tt.kind != tIdent {
				return nil, bp.errf("expected true-target state in cond rule")
			}
			rc.trueTarget = tt.text
			if bp.next().kind != tComma {
				return nil, bp.errf("expected ',' between cond targets")
			}
			ft := bp.next()
			if ft.kind != tIdent {
				return nil, bp.errf("expected false-target state in cond rule")
			}
			rc.falseTarget = ft.text
			if bp.next().kind != tSemi {
				return nil, bp.errf("expected ';' after cond rule")
			}
			conds = append(conds, rc)
		case bp.peekIdentIs("pat") && bp.peekKind(1) == tIdent && bp.peekKind(2) == tEq:
			bp.next()
			nt := bp.next()
			bp.next() // '='
			var alts []patRef
			for {
				alt, err := bp.patAlt(namedPats)
				if err != nil {
					return nil, err
				}
				alts = append(alts, alt)
				if bp.peek().kind == tPipe {
					bp.next()
					continue
				}
				break
			}
			if bp.next().kind != tSemi {
				return nil, bp.errf("expected ';' after pat %s", nt.text)
			}
			namedPats[nt.text] = alts
			prog.PatternNames = append(prog.PatternNames, nt.text)
		case bp.peek().kind == tIdent && bp.peekKind(1) == tColon:
			state := bp.next().text
			bp.next() // ':'
			stateOrder = append(stateOrder, state)
			for {
				r, err := bp.rule(state, namedPats)
				if err != nil {
					return nil, err
				}
				rules = append(rules, r)
				if bp.peek().kind == tPipe {
					bp.next()
					continue
				}
				break
			}
			if bp.next().kind != tSemi {
				return nil, bp.errf("expected ';' terminating state %s", state)
			}
		default:
			return nil, bp.errf("unexpected %s in sm body", bp.peek().kind)
		}
	}

	if len(stateOrder) == 0 {
		return nil, &Error{nameTok.line, "state machine defines no states"}
	}

	// Expand named-pattern references to their texts.
	var expand func(prs []patRef) ([]patRef, error)
	expand = func(prs []patRef) ([]patRef, error) {
		var out []patRef
		for _, pr := range prs {
			if pr.ref == "" {
				out = append(out, pr)
				continue
			}
			sub, ok := namedPats[pr.ref]
			if !ok {
				return nil, &Error{pr.line, fmt.Sprintf("unknown pattern %q", pr.ref)}
			}
			ex, err := expand(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, ex...)
		}
		return out, nil
	}
	for i := range rules {
		ex, err := expand(rules[i].pats)
		if err != nil {
			return nil, err
		}
		rules[i].pats = ex
	}

	return prog.build(stateOrder, rules, conds)
}

// patAlt parses one pattern alternative: a block or a named reference.
func (p *mparser) patAlt(named map[string][]patRef) (patRef, error) {
	switch p.peek().kind {
	case tBlock:
		t := p.next()
		return patRef{text: t.text, line: t.line}, nil
	case tIdent:
		t := p.next()
		if _, ok := named[t.text]; !ok {
			return patRef{}, &Error{t.line, fmt.Sprintf("unknown pattern name %q", t.text)}
		}
		return patRef{ref: t.text, line: t.line}, nil
	default:
		return patRef{}, p.errf("expected pattern, found %s", p.peek().kind)
	}
}

// rule parses: alt ==> [target] [action-block].
func (p *mparser) rule(state string, named map[string][]patRef) (rawRule, error) {
	r := rawRule{state: state, line: p.peek().line}
	alt, err := p.patAlt(named)
	if err != nil {
		return r, err
	}
	r.pats = []patRef{alt}
	if p.peek().kind != tArrow {
		return r, p.errf("expected '==>' in rule")
	}
	p.next()
	if p.peek().kind == tIdent {
		r.target = p.next().text
	}
	if p.peek().kind == tBlock {
		at := p.next()
		acts, err := splitActions(at.text, at.line)
		if err != nil {
			return r, err
		}
		r.actions = acts
	}
	if r.target == "" && len(r.actions) == 0 {
		return r, p.errf("rule has neither target state nor action")
	}
	return r, nil
}

// loadPrologue preprocesses and parses the prologue C text, harvesting
// typedefs and enum constants for pattern compilation.
func (prog *Program) loadPrologue(text string, opts Options) error {
	if opts.Include == nil {
		return nil
	}
	pp := cpp.New(opts.Include, opts.IncludeDirs...)
	out := pp.ProcessText("<metal-prologue>", text)
	if len(pp.Errors()) > 0 {
		return fmt.Errorf("metal prologue: %w", pp.Errors()[0])
	}
	lx := lexer.New("<metal-prologue>", out)
	toks := lx.All()
	if len(lx.Errors()) > 0 {
		return fmt.Errorf("metal prologue: %w", lx.Errors()[0])
	}
	cp := parser.New(toks, parser.Config{})
	cp.File("<metal-prologue>")
	if errs := cp.Errors(); len(errs) > 0 {
		return fmt.Errorf("metal prologue: %w", errs[0])
	}
	for k, v := range cp.Typedefs() {
		prog.Typedefs[k] = v
	}
	for k, v := range cp.EnumConsts() {
		prog.EnumConsts[k] = v
	}
	return nil
}

// splitActions parses action text like
//
//	err("data send, zero len");
//	warn("odd length", addr);
//
// into action values. Extra identifier arguments name wildcards whose
// bound source text is appended to the report message.
func splitActions(text string, line int) ([]action, error) {
	var out []action
	i, n := 0, len(text)
	ln := line
	for i < n {
		c := text[i]
		switch {
		case c == '\n':
			ln++
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == ';':
			i++
		case c == '/' && i+1 < n && text[i+1] == '/':
			for i < n && text[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && text[i+1] == '*':
			i += 2
			for i < n && !(text[i] == '*' && i+1 < n && text[i+1] == '/') {
				if text[i] == '\n' {
					ln++
				}
				i++
			}
			i += 2
		case isMetalIdent(c):
			j := i
			for j < n && isMetalIdent(text[j]) {
				j++
			}
			name := text[i:j]
			if name != "err" && name != "warn" {
				return nil, &Error{ln, fmt.Sprintf("unsupported action %q (only err/warn)", name)}
			}
			i = j
			for i < n && (text[i] == ' ' || text[i] == '\t') {
				i++
			}
			if i >= n || text[i] != '(' {
				return nil, &Error{ln, "expected '(' after " + name}
			}
			i++
			a := action{fn: name, line: ln}
			for i < n && (text[i] == ' ' || text[i] == '\t') {
				i++
			}
			if i >= n || text[i] != '"' {
				return nil, &Error{ln, name + " requires a string literal message"}
			}
			j = i + 1
			for j < n && text[j] != '"' {
				if text[j] == '\\' {
					j++
				}
				j++
			}
			if j >= n {
				return nil, &Error{ln, "unterminated string in action"}
			}
			a.msg = unescape(text[i+1 : j])
			i = j + 1
			for {
				for i < n && (text[i] == ' ' || text[i] == '\t') {
					i++
				}
				if i < n && text[i] == ',' {
					i++
					for i < n && (text[i] == ' ' || text[i] == '\t') {
						i++
					}
					j = i
					for j < n && isMetalIdent(text[j]) {
						j++
					}
					if j == i {
						return nil, &Error{ln, "expected wildcard name after ','"}
					}
					a.args = append(a.args, text[i:j])
					i = j
					continue
				}
				break
			}
			if i >= n || text[i] != ')' {
				return nil, &Error{ln, "expected ')' closing " + a.fn}
			}
			i++
			out = append(out, a)
		default:
			return nil, &Error{ln, fmt.Sprintf("unexpected character %q in action", c)}
		}
	}
	return out, nil
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// build compiles raw rules into the executable SM.
func (prog *Program) build(stateOrder []string, rules []rawRule, conds []rawCond) (*Program, error) {
	sm := &engine.SM{Name: prog.Name, Start: stateOrder[0], Track: prog.TrackVars}
	ctx := parser.PatternContext{Wildcards: prog.Decls, Typedefs: prog.Typedefs}
	for _, rc := range conds {
		e, err := parser.ParseExprPattern(rc.text, ctx)
		if err != nil {
			return nil, &Error{rc.line, fmt.Sprintf("bad cond pattern %q: %v", strings.TrimSpace(rc.text), err)}
		}
		tt, ft := rc.trueTarget, rc.falseTarget
		// A target equal to the owning state means "stay".
		if tt == rc.state {
			tt = ""
		}
		if ft == rc.state {
			ft = ""
		}
		sm.Cond = append(sm.Cond, &engine.CondRule{
			State: rc.state, Pattern: e, TrueTarget: tt, FalseTarget: ft,
		})
	}
	for i, r := range rules {
		er := &engine.Rule{State: r.state, Target: r.target,
			Tag: fmt.Sprintf("%s#%d", prog.Name, i)}
		for _, pr := range r.pats {
			stmt, err := parser.ParseStmtPattern(pr.text, ctx)
			if err != nil {
				return nil, &Error{pr.line, fmt.Sprintf("bad pattern %q: %v", strings.TrimSpace(pr.text), err)}
			}
			er.Patterns = append(er.Patterns, engine.Pattern{Stmt: stmt})
		}
		if len(er.Patterns) == 0 {
			return nil, &Error{r.line, "rule compiled to no patterns"}
		}
		if len(r.actions) > 0 {
			acts := r.actions
			er.Action = func(c *engine.Ctx) {
				for _, a := range acts {
					msg := a.msg
					for _, arg := range a.args {
						msg += " " + c.Bound(arg)
					}
					if a.fn == "warn" {
						c.Report("warning: %s", msg)
					} else {
						c.Report("%s", msg)
					}
				}
			}
		}
		sm.Rules = append(sm.Rules, er)
	}
	prog.SM = sm
	return prog, nil
}
