// Package metal implements the metal checker language of the paper: a
// state-machine DSL whose patterns are written in the base language
// (protocol C). A metal program like Figure 2,
//
//	{ #include "flash-includes.h" }
//	sm wait_for_db {
//	    decl { scalar } addr, buf;
//	    start:
//	    { WAIT_FOR_DB_FULL(addr); } ==> stop
//	    | { MISCBUS_READ_DB(addr, buf); } ==>
//	        { err("Buffer not synchronized"); }
//	    ;
//	}
//
// compiles to an engine.SM that package engine applies down every path
// of every function.
package metal

import (
	"fmt"
	"strings"
)

// tokKind classifies metal tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString // "..." (kept with quotes)
	tBlock  // balanced { ... } captured raw, braces stripped
	tColon
	tSemi
	tPipe
	tComma
	tEq
	tArrow // ==>
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of file"
	case tIdent:
		return "identifier"
	case tString:
		return "string"
	case tBlock:
		return "{...} block"
	case tColon:
		return ":"
	case tSemi:
		return ";"
	case tPipe:
		return "|"
	case tComma:
		return ","
	case tEq:
		return "="
	case tArrow:
		return "==>"
	}
	return "?"
}

type mtok struct {
	kind tokKind
	text string
	line int
}

// scanError is a metal lexical error.
type scanError struct {
	line int
	msg  string
}

func (e *scanError) Error() string { return fmt.Sprintf("metal:%d: %s", e.line, e.msg) }

// scan tokenizes metal source. Braced blocks are captured raw
// (respecting nested braces, strings, chars, and comments) because
// their contents are C pattern text compiled separately.
func scan(src string) ([]mtok, error) {
	var toks []mtok
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i < n && !(src[i] == '*' && i+1 < n && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i >= n {
				return nil, &scanError{line, "unterminated comment"}
			}
			i += 2
		case c == '{':
			start := line
			body, next, endLine, err := captureBlock(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, mtok{tBlock, body, start})
			i = next
			line = endLine
		case c == ':':
			toks = append(toks, mtok{tColon, ":", line})
			i++
		case c == ';':
			toks = append(toks, mtok{tSemi, ";", line})
			i++
		case c == '|':
			toks = append(toks, mtok{tPipe, "|", line})
			i++
		case c == ',':
			toks = append(toks, mtok{tComma, ",", line})
			i++
		case c == '=':
			if i+2 < n && src[i+1] == '=' && src[i+2] == '>' {
				toks = append(toks, mtok{tArrow, "==>", line})
				i += 3
			} else {
				toks = append(toks, mtok{tEq, "=", line})
				i++
			}
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= n {
				return nil, &scanError{line, "unterminated string"}
			}
			toks = append(toks, mtok{tString, src[i : j+1], line})
			i = j + 1
		case isMetalIdent(c):
			j := i
			for j < n && isMetalIdent(src[j]) {
				j++
			}
			toks = append(toks, mtok{tIdent, src[i:j], line})
			i = j
		default:
			return nil, &scanError{line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, mtok{tEOF, "", line})
	return toks, nil
}

func isMetalIdent(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// captureBlock consumes a balanced {..} starting at src[i] == '{'. It
// returns the inner text, the index just past '}', and the line after.
func captureBlock(src string, i, line int) (body string, next, endLine int, err error) {
	depth := 0
	start := i + 1
	n := len(src)
	for i < n {
		c := src[i]
		switch c {
		case '\n':
			line++
			i++
		case '{':
			depth++
			i++
		case '}':
			depth--
			if depth == 0 {
				return src[start:i], i + 1, line, nil
			}
			i++
		case '"', '\'':
			quote := c
			i++
			for i < n && src[i] != quote && src[i] != '\n' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			if i < n {
				i++
			}
		case '/':
			if i+1 < n && src[i+1] == '/' {
				for i < n && src[i] != '\n' {
					i++
				}
			} else if i+1 < n && src[i+1] == '*' {
				i += 2
				for i < n && !(src[i] == '*' && i+1 < n && src[i+1] == '/') {
					if src[i] == '\n' {
						line++
					}
					i++
				}
				i += 2
			} else {
				i++
			}
		default:
			i++
		}
	}
	return "", i, line, &scanError{line, "unterminated { block"}
}

// LOC counts non-blank, non-comment-only lines of metal source; it
// feeds Table 7's checker-size column.
func LOC(src string) int {
	count := 0
	inBlock := false
	for _, ln := range strings.Split(src, "\n") {
		t := strings.TrimSpace(ln)
		if inBlock {
			if idx := strings.Index(t, "*/"); idx >= 0 {
				inBlock = false
				if strings.TrimSpace(t[idx+2:]) != "" {
					count++ // code after the comment closes
				}
			}
			continue
		}
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		if strings.HasPrefix(t, "/*") {
			if !strings.Contains(t, "*/") {
				inBlock = true
			}
			continue
		}
		count++
	}
	return count
}
