package metal

import "flashmc/internal/engine"

// CompileFused compiles several metal sources and fuses their state
// machines into one product automaton (engine.CompileFused), in source
// order. It is the metal-level entry to one-pass fused checking: a
// tool holding N ad-hoc checker sources can compile them into a single
// per-function walk while keeping each program's reports and coverage
// attributed individually.
func CompileFused(srcs []string, opts Options) (*engine.Fused, []*Program, error) {
	progs := make([]*Program, len(srcs))
	sms := make([]*engine.SM, len(srcs))
	for i, src := range srcs {
		p, err := Compile(src, opts)
		if err != nil {
			return nil, nil, err
		}
		progs[i] = p
		sms[i] = p.SM
	}
	return engine.CompileFused(sms...), progs, nil
}
