package metal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/flash"
)

// FuzzCompile drives the metal scanner, parser, and pattern compiler
// with mutated checker sources. The shipped checkers seed the corpus,
// so mutations start from realistic grammar. Compile may reject input
// with an error — the property under test is only that it never
// panics and that an accepted program has a usable state machine.
func FuzzCompile(f *testing.F) {
	dir := filepath.Join("..", "checkers", "metalsrc")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	seeded := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".metal") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
		seeded++
	}
	if seeded == 0 {
		f.Fatal("no .metal seeds found in ", dir)
	}
	// Degenerate shapes the checker sources don't cover.
	f.Add("sm x { }")
	f.Add("sm x { decl {scalar} a; s: {a = $a;} ==> stop; }")
	f.Add("sm x { cond c { $a & 1 } ==> t , f ; }")
	f.Add("{#include \"flash-includes.h\"} sm x { start: {NI_FREE(0);} ==> ; }")

	inc := cpp.Layered(cpp.OSSource{}, flash.HeaderSource())
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src, Options{Include: inc})
		if err != nil {
			return
		}
		if prog.SM == nil {
			t.Fatalf("Compile accepted %q but produced a nil state machine", src)
		}
	})
}
