package metal

import (
	"strings"
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/cc/parser"
	"flashmc/internal/cfg"
	"flashmc/internal/engine"
)

// fig2 is the checker from Figure 2 of the paper, verbatim in shape.
const fig2 = `
{ #include "flash-includes.h" }
sm wait_for_db {
	/* Declare two variables 'addr' and 'buf' that can
	 * match any integer expression. */
	decl { scalar } addr, buf;

	/* Checker begins in the first state (here 'start'). */
	start:
	{ WAIT_FOR_DB_FULL(addr); } ==> stop
	| { MISCBUS_READ_DB(addr, buf); } ==>
		{ err("Buffer not synchronized"); }
	;
}
`

// fig3 is the message-length checker from Figure 3.
const fig3 = `
{ #include "flash-includes.h" }
sm msglen_check {
	pat zero_assign =
		{ HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
	pat nonzero_assign =
		{ HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
	|	{ HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;

	decl { unsigned } keep, swap, wait, dec, null, type;
	pat send_data =
		{ PI_SEND(F_DATA, keep, swap, wait, dec, null) }
	|	{ IO_SEND(F_DATA, keep, swap, wait, dec, null) }
	|	{ NI_SEND(type, F_DATA, keep, wait, dec, null) } ;

	pat send_nodata =
		{ PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
	|	{ IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
	|	{ NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;

	all:
		zero_assign ==> zero_len
	|	nonzero_assign ==> nonzero_len
	;

	zero_len:
		send_data ==> { err("data send, zero len"); }
	;

	nonzero_len:
		send_nodata ==> { err("nodata send, nonzero len"); }
	;
}
`

const miniHeader = `
#ifndef FLASH_INCLUDES_H
#define FLASH_INCLUDES_H
typedef unsigned long nodeid_t;
enum lenval { LEN_TEST = 3 };
#endif
`

func includeSrc() cpp.MapSource {
	return cpp.MapSource{"flash-includes.h": miniHeader}
}

func compile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile(src, Options{Include: includeSrc()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func runOn(t *testing.T, prog *Program, csrc string) []engine.Report {
	t.Helper()
	f, errs := parser.ParseText("t.c", csrc)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	var out []engine.Report
	for _, fn := range f.Funcs() {
		out = append(out, engine.Run(cfg.Build(fn), prog.SM)...)
	}
	return out
}

func TestFig2Compiles(t *testing.T) {
	prog := compile(t, fig2)
	if prog.Name != "wait_for_db" {
		t.Errorf("name %q", prog.Name)
	}
	if prog.Decls["addr"] != "scalar" || prog.Decls["buf"] != "scalar" {
		t.Errorf("decls %v", prog.Decls)
	}
	if len(prog.SM.Rules) != 2 {
		t.Errorf("rules %d", len(prog.SM.Rules))
	}
	if prog.SM.Start != "start" {
		t.Errorf("start %q", prog.SM.Start)
	}
}

func TestFig2FindsRace(t *testing.T) {
	prog := compile(t, fig2)
	reports := runOn(t, prog, `
void handler(void) {
	int hdr;
	int val;
	MISCBUS_READ_DB(hdr, val);
}`)
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "Buffer not synchronized") {
		t.Fatalf("reports %v", reports)
	}
}

func TestFig2AcceptsSynchronized(t *testing.T) {
	prog := compile(t, fig2)
	reports := runOn(t, prog, `
void handler(void) {
	int hdr;
	int val;
	WAIT_FOR_DB_FULL(hdr);
	MISCBUS_READ_DB(hdr, val);
}`)
	if len(reports) != 0 {
		t.Fatalf("reports %v", reports)
	}
}

func TestFig2OnePathViolation(t *testing.T) {
	prog := compile(t, fig2)
	reports := runOn(t, prog, `
void handler(int c) {
	int hdr;
	int val;
	if (c) {
		WAIT_FOR_DB_FULL(hdr);
	}
	MISCBUS_READ_DB(hdr, val);
}`)
	if len(reports) != 1 {
		t.Fatalf("reports %v", reports)
	}
}

func TestFig3Compiles(t *testing.T) {
	prog := compile(t, fig3)
	if prog.Name != "msglen_check" {
		t.Errorf("name %q", prog.Name)
	}
	if prog.SM.Start != "all" {
		t.Errorf("start %q (the paper's checker starts in 'all')", prog.SM.Start)
	}
	if len(prog.PatternNames) != 4 {
		t.Errorf("pats %v", prog.PatternNames)
	}
	// all:2 rules + zero_len:1 + nonzero_len:1 = 4 rules; send pats
	// expand to 3 alternatives each.
	if len(prog.SM.Rules) != 4 {
		t.Errorf("rules %d", len(prog.SM.Rules))
	}
	for _, r := range prog.SM.Rules {
		if r.State == "zero_len" && len(r.Patterns) != 3 {
			t.Errorf("send_data expanded to %d patterns", len(r.Patterns))
		}
	}
}

func TestFig3Errors(t *testing.T) {
	prog := compile(t, fig3)
	reports := runOn(t, prog, `
void handler(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	NI_SEND(7, F_DATA, 1, 0, 1, 0);
}`)
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "data send, zero len") {
		t.Fatalf("reports %v", reports)
	}
	reports = runOn(t, prog, `
void handler(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
	IO_SEND(F_NODATA, 1, 0, 0, 1, 0);
}`)
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "nodata send, nonzero len") {
		t.Fatalf("reports %v", reports)
	}
}

func TestFig3CleanHandler(t *testing.T) {
	prog := compile(t, fig3)
	reports := runOn(t, prog, `
void handler(int c) {
	if (c) {
		HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
		PI_SEND(F_DATA, 1, 0, 0, 1, 0);
	} else {
		HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
		PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
	}
}`)
	if len(reports) != 0 {
		t.Fatalf("reports %v", reports)
	}
}

func TestFig3LengthSetOnOnePathOnly(t *testing.T) {
	// The paper's most common bug shape: length assigned hundreds of
	// lines from the send, and one path misses the assignment. Here
	// the then-path sets nonzero then both paths send nodata.
	prog := compile(t, fig3)
	reports := runOn(t, prog, `
void handler(int c) {
	if (c) {
		HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
	}
	PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
}`)
	if len(reports) != 1 {
		t.Fatalf("reports %v", reports)
	}
}

func TestPrologueTypedefsAvailable(t *testing.T) {
	prog := compile(t, fig2)
	if _, ok := prog.Typedefs["nodeid_t"]; !ok {
		t.Error("prologue typedef not harvested")
	}
	if prog.EnumConsts["LEN_TEST"] != 3 {
		t.Errorf("enum consts %v", prog.EnumConsts)
	}
}

func TestCompileWithoutInclude(t *testing.T) {
	if _, err := Compile(fig2, Options{}); err != nil {
		t.Fatalf("compile without includes must be lenient: %v", err)
	}
}

func TestLOCCount(t *testing.T) {
	src := "sm x {\n/* comment\nmore */\nstart:\n{ f(); } ==> stop\n;\n}\n\n// trailing\n"
	if got := LOC(src); got != 5 {
		t.Errorf("LOC %d", got)
	}
}

func TestErrorUnknownPattern(t *testing.T) {
	_, err := Compile(`sm x { start: nosuchpat ==> stop ; }`, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown pattern") {
		t.Fatalf("err %v", err)
	}
}

func TestErrorBadAction(t *testing.T) {
	_, err := Compile(`sm x { decl { scalar } a; start: { f(a); } ==> { explode("no"); } ; }`, Options{})
	if err == nil || !strings.Contains(err.Error(), "unsupported action") {
		t.Fatalf("err %v", err)
	}
}

func TestErrorRuleWithoutTargetOrAction(t *testing.T) {
	_, err := Compile(`sm x { start: { f(); } ==> ; }`, Options{})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestErrorNoStates(t *testing.T) {
	_, err := Compile(`sm x { decl { scalar } a; }`, Options{})
	if err == nil || !strings.Contains(err.Error(), "no states") {
		t.Fatalf("err %v", err)
	}
}

func TestErrorBadPatternText(t *testing.T) {
	_, err := Compile(`sm x { start: { f(((; } ==> stop ; }`, Options{})
	if err == nil || !strings.Contains(err.Error(), "bad pattern") {
		t.Fatalf("err %v", err)
	}
}

func TestWarnAction(t *testing.T) {
	prog := compile(t, `
sm w {
	decl { scalar } a;
	start:
	{ deprecated_op(a); } ==> { warn("deprecated operation", a); }
	;
}`)
	reports := runOn(t, prog, `void h(void) { int x; deprecated_op(x + 1); }`)
	if len(reports) != 1 {
		t.Fatalf("reports %v", reports)
	}
	if !strings.Contains(reports[0].Msg, "warning: deprecated operation x + 1") {
		t.Errorf("msg %q", reports[0].Msg)
	}
}

func TestPatReferencingPat(t *testing.T) {
	// Named pattern sets may reference earlier ones; alternatives
	// flatten transitively.
	prog := compile(t, `
sm chain {
	decl { scalar } a;
	pat base = { f(a) } | { g(a) } ;
	pat wide = base | { h(a) } ;
	start:
	wide ==> stop
	;
}`)
	if len(prog.SM.Rules) != 1 || len(prog.SM.Rules[0].Patterns) != 3 {
		t.Fatalf("rule patterns %d", len(prog.SM.Rules[0].Patterns))
	}
}

func TestTrackParsing(t *testing.T) {
	prog := compile(t, `
sm tr {
	decl { scalar } buf, x;
	track buf;
	start:
	{ buf = get(x); } ==> live
	;
	live:
	{ put(buf); } ==> start
	;
}`)
	if len(prog.TrackVars) != 1 || prog.TrackVars[0] != "buf" {
		t.Errorf("track vars %v", prog.TrackVars)
	}
	if len(prog.SM.Track) != 1 {
		t.Errorf("SM track %v", prog.SM.Track)
	}
}

// TestCondRuleSyntax exercises the cond extension: a pure-metal
// version of the paper's §6 value-sensitive conditional free.
func TestCondRuleSyntax(t *testing.T) {
	prog := compile(t, `
sm valsense {
	decl { scalar } x;
	cond has_buffer { maybe_free_buf(x) } ==> no_buffer , has_buffer ;
	has_buffer:
	{ DEC_DB_REF(x); } ==> no_buffer
	;
	no_buffer:
	{ DEC_DB_REF(x); } ==> { err("double free"); }
	;
}`)
	if len(prog.SM.Cond) != 1 {
		t.Fatalf("cond rules %d", len(prog.SM.Cond))
	}
	// True branch frees (so a second free reports); false branch keeps
	// the buffer (the free there is fine).
	reports := runOn(t, prog, `
void handler(void) {
	if (maybe_free_buf(0)) {
		DEC_DB_REF(0);
	} else {
		DEC_DB_REF(0);
	}
}`)
	if len(reports) != 1 {
		t.Fatalf("reports %v", reports)
	}
	if reports[0].Pos.Line != 4 {
		t.Errorf("wrong arm flagged: %v", reports[0].Pos)
	}
}

func TestCondRuleStaySemantics(t *testing.T) {
	// Naming the owning state as a target means "stay", including for
	// the negated branch.
	prog := compile(t, `
sm v2 {
	decl { scalar } x;
	cond start { is_ready(x) } ==> armed , start ;
	start:
	{ fire(x); } ==> { err("fired while unready"); }
	;
	armed:
	{ fire(x); } ==> stop
	;
}`)
	reports := runOn(t, prog, `
void handler(void) {
	if (is_ready(0)) {
		fire(0);
	}
	fire(0);
}`)
	// Inside the if: armed, fine. After the join the not-ready config
	// is still in start, so the second fire reports once.
	if len(reports) != 1 || reports[0].Pos.Line != 6 {
		t.Fatalf("reports %v", reports)
	}
}

func TestCondRuleErrors(t *testing.T) {
	if _, err := Compile(`sm x { cond s { f( } ==> a , b ; s: { g(); } ==> stop ; }`, Options{}); err == nil {
		t.Error("bad cond pattern accepted")
	}
	if _, err := Compile(`sm x { cond s { f(v) } ==> a ; s: { g(); } ==> stop ; }`, Options{}); err == nil {
		t.Error("cond without false target accepted")
	}
}

func TestErrorLineNumbers(t *testing.T) {
	src := "sm x {\n\tdecl { scalar } a;\n\tstart:\n\t{ f(a; } ==> stop\n\t;\n}"
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	me, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if me.Line != 4 {
		t.Errorf("error line %d, want 4 (%v)", me.Line, me)
	}
}

func TestSemicolonRequiredBetweenStates(t *testing.T) {
	_, err := Compile(`
sm x {
	decl { scalar } a;
	start:
	{ f(a); } ==> next
	next:
	{ g(a); } ==> stop
	;
}`, Options{})
	if err == nil {
		t.Fatal("missing ';' between states accepted")
	}
}

func TestActionWithComment(t *testing.T) {
	prog := compile(t, `
sm c {
	decl { scalar } a;
	start:
	{ f(a); } ==> {
		/* explain */
		err("found"); // trailing
	}
	;
}`)
	reports := runOn(t, prog, `void h(void) { f(1); }`)
	if len(reports) != 1 {
		t.Fatalf("reports %v", reports)
	}
}

func TestMultipleActionsPerRule(t *testing.T) {
	prog := compile(t, `
sm m {
	decl { scalar } a;
	start:
	{ f(a); } ==> done { err("first"); err("second"); }
	;
}`)
	reports := runOn(t, prog, `void h(void) { f(1); }`)
	if len(reports) != 2 {
		t.Fatalf("reports %v", reports)
	}
}
