package depot

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardPlacementDeterministic pins the id → shard mapping with
// golden values: the function is pure, so any change to it silently
// orphans every artifact in every existing sharded depot. If this
// test fails, the placement function changed — that requires a depot
// layout migration, not a golden update.
func TestShardPlacementDeterministic(t *testing.T) {
	golden := []struct {
		id     string
		shards int
		want   int
	}{
		{"00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffff", 4, 0},
		{"00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffff", 4, 1},
		{"0000000affffffffffffffffffffffffffffffffffffffffffffffffffffffff", 4, 2},
		{"ffffffff0000000000000000000000000000000000000000000000000000000000", 4, 3},
		{"deadbeef000000000000000000000000000000000000000000000000000000", 7, int(0xdeadbeef % 7)},
	}
	for _, g := range golden {
		if got := ShardIndexFor(g.id, g.shards); got != g.want {
			t.Errorf("shardIndex(%s, %d) = %d, want %d", g.id[:8], g.shards, got, g.want)
		}
	}
	// Every shard must be reachable and placement must be stable
	// across repeated evaluation (no hidden process state).
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		id := Key{Kind: "reports", Source: fmt.Sprint(i)}.ID()
		a, b := ShardIndexFor(id, 8), ShardIndexFor(id, 8)
		if a != b {
			t.Fatalf("placement of %s unstable: %d vs %d", id, a, b)
		}
		seen[a] = true
	}
	if len(seen) != 8 {
		t.Errorf("256 keys over 8 shards reached only %d shards", len(seen))
	}
}

// TestShardRoutingAcrossProcesses simulates two processes sharing a
// sharded depot: artifacts written through one Depot instance must be
// readable through a fresh instance opened on the same directory.
func TestShardRoutingAcrossProcesses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "depot")
	a, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 64)
	for i := range keys {
		keys[i] = Key{Kind: "reports", Source: fmt.Sprint(i)}
		if err := a.Put(keys[i], []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}

	b, err := OpenSharded(dir, 4) // second "process"
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		got, ok := b.Get(k)
		if !ok || string(got) != fmt.Sprint(i) {
			t.Fatalf("key %d: got %q ok=%v via second open", i, got, ok)
		}
	}
	// The shard fan-out actually happened: more than one shard root
	// holds artifacts.
	used := 0
	for _, root := range b.shardRoots() {
		ents, _ := os.ReadDir(root)
		for _, e := range ents {
			if e.IsDir() {
				used++
				break
			}
		}
	}
	if used < 2 {
		t.Fatalf("64 artifacts landed in %d of 4 shards", used)
	}
}

// TestShardCountMismatchRefused: reopening a depot with a different
// shard count must fail loudly (the placement function would split
// the key space), while shards == 0 adopts the on-disk layout.
func TestShardCountMismatchRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "depot")
	d, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Kind: "reports", Source: "s"}
	if err := d.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(dir, 2); err == nil {
		t.Fatal("OpenSharded(dir, 2) on a 4-shard depot succeeded")
	} else if !strings.Contains(err.Error(), "4-shard") {
		t.Fatalf("mismatch error does not name the on-disk layout: %v", err)
	}

	adopt, err := Open(dir) // shards == 0 adopts
	if err != nil {
		t.Fatal(err)
	}
	if adopt.ShardCount() != 4 {
		t.Fatalf("Open adopted %d shards, want 4", adopt.ShardCount())
	}
	if _, ok := adopt.Get(key); !ok {
		t.Fatal("adopted depot misses an existing artifact")
	}
}

// TestLegacyLayoutIsSingleShard: a depot created before the manifest
// existed (flat id-prefix fan-out, no DEPOT file) opens as one shard,
// keeps its artifacts readable, and refuses a multi-shard reopen.
func TestLegacyLayoutIsSingleShard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "depot")
	key := Key{Kind: "reports", Source: "legacy"}
	id := key.ID()
	if err := os.MkdirAll(filepath.Join(dir, id[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id[:2], id+".json"), []byte(`"old"`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(dir, 4); err == nil {
		t.Fatal("multi-shard open of a legacy depot succeeded")
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.ShardCount() != 1 {
		t.Fatalf("legacy depot opened with %d shards", d.ShardCount())
	}
	if b, ok := d.Get(key); !ok || string(b) != `"old"` {
		t.Fatalf("legacy artifact unreadable: %q ok=%v", b, ok)
	}
}

// TestShardedStats: per-shard stats must sum to the depot totals.
func TestShardedStats(t *testing.T) {
	d, err := OpenSharded(filepath.Join(t.TempDir(), "depot"), 3)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 30; i++ {
		blob := []byte(strings.Repeat("x", 10+i))
		want += int64(len(blob))
		if err := d.Put(Key{Kind: "reports", Source: fmt.Sprint(i)}, blob); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Entries != 30 || st.Bytes != want {
		t.Fatalf("stats %d entries / %d bytes, want 30 / %d", st.Entries, st.Bytes, want)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("got %d shard stats, want 3", len(st.Shards))
	}
	var entries int
	var bytes int64
	for _, ss := range st.Shards {
		entries += ss.Entries
		bytes += ss.Bytes
	}
	if entries != st.Entries || bytes != st.Bytes {
		t.Fatalf("shard stats sum %d/%d, total %d/%d", entries, bytes, st.Entries, st.Bytes)
	}
}
