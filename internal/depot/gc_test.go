package depot

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGCUnderConcurrentReaders hammers a disk depot with readers and
// writers while GC sweeps run concurrently. A read may miss (GC won)
// or hit (reader won), but a hit must never return a torn or foreign
// blob, and nothing may panic.
func TestGCUnderConcurrentReaders(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]Key, 32)
	blobs := make([][]byte, len(keys))
	for i := range keys {
		keys[i] = Key{Kind: "reports/v2", Source: fmt.Sprintf("src%d", i), Checker: "c"}
		blobs[i] = bytes.Repeat([]byte{byte(i)}, 4096+i)
		if err := d.Put(keys[i], blobs[i]); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// GC sweeps: maxAge <= 0 removes everything present at sweep time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.GC(0, 0); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()

	// Writers keep re-inserting the artifacts GC removes.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					if err := d.Put(keys[i], blobs[i]); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}
		}()
	}

	// Readers: every hit must be byte-exact.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					if b, ok := d.Get(keys[i]); ok && !bytes.Equal(b, blobs[i]) {
						t.Errorf("key %d: torn read: got %d bytes, want %d", i, len(b), len(blobs[i]))
						return
					}
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestGCSizeBudgetEvictsLRU: over a byte budget, GC must evict
// least-recently-used artifacts first, on disk and in memory alike.
func TestGCSizeBudgetEvictsLRU(t *testing.T) {
	for name, d := range backends(t) {
		keys := make([]Key, 4)
		for i := range keys {
			keys[i] = Key{Kind: "reports", Source: fmt.Sprintf("lru%d", i)}
			if err := d.Put(keys[i], bytes.Repeat([]byte{'x'}, 1000)); err != nil {
				t.Fatal(err)
			}
			// Strictly increasing access times, oldest first.
			if err := d.backdate(keys[i], time.Now().Add(time.Duration(i-10)*time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
		// Re-read key 0: it becomes the most recently used despite
		// being written first.
		if _, ok := d.Get(keys[0]); !ok {
			t.Fatalf("%s: key 0 missing before GC", name)
		}

		// Budget for two artifacts: keys 1 and 2 (now the two least
		// recently used) must go; 3 (freshest backdate) and 0 (just
		// read) must stay.
		removed, err := d.GC(0, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if removed != 2 {
			t.Fatalf("%s: GC removed %d, want 2", name, removed)
		}
		for i, want := range []bool{true, false, false, true} {
			if _, ok := d.Get(keys[i]); ok != want {
				t.Errorf("%s: key %d present=%v, want %v", name, i, ok, want)
			}
		}
		if st := d.Stats(); st.Bytes > 2000 {
			t.Errorf("%s: %d bytes remain over the 2000-byte budget", name, st.Bytes)
		}
	}
}

// TestGCAgeInMemory: age-based GC must behave identically in-memory
// and on disk — the in-memory depot tracks last-access times instead
// of silently no-oping (the old behavior returned 0 for maxAge > 0).
func TestGCAgeInMemory(t *testing.T) {
	d, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	old := Key{Kind: "reports", Source: "old"}
	fresh := Key{Kind: "reports", Source: "fresh"}
	for _, k := range []Key{old, fresh} {
		if err := d.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.backdate(old, time.Now().Add(-2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	removed, err := d.GC(time.Hour, 0)
	if err != nil || removed != 1 {
		t.Fatalf("in-memory GC(1h) removed %d, err %v (age GC must not no-op in memory)", removed, err)
	}
	if _, ok := d.Get(old); ok {
		t.Fatal("stale in-memory artifact survived age GC")
	}
	if _, ok := d.Get(fresh); !ok {
		t.Fatal("fresh in-memory artifact removed by age GC")
	}
	// A Get refreshes the access time: after touching the survivor,
	// an aggressive age bound must still keep it.
	if removed, err := d.GC(time.Minute, 0); err != nil || removed != 0 {
		t.Fatalf("GC(1m) after access removed %d, err %v", removed, err)
	}
}

// TestGCSweepsOrphanedTempFiles: a crashed writer leaves <id>.tmp*
// debris that the old GC could neither see (only *.json matched) nor
// Stats count. Stale temp files must be counted and reclaimed; young
// ones (a writer mid-Put) must survive.
func TestGCSweepsOrphanedTempFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "depot")
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Kind: "reports", Source: "s"}
	if err := d.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	id := key.ID()
	staleTmp := filepath.Join(dir, id[:2], id+".tmp123456")
	youngTmp := filepath.Join(dir, id[:2], id+".tmp654321")
	for _, p := range []string{staleTmp, youngTmp} {
		if err := os.WriteFile(p, []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-TempGrace - time.Hour)
	if err := os.Chtimes(staleTmp, old, old); err != nil {
		t.Fatal(err)
	}

	st := d.Stats()
	if st.TempFiles != 2 || st.TempBytes != 2*int64(len("partial write")) {
		t.Fatalf("stats do not count temp files: %+v", st)
	}
	if st.Entries != 1 {
		t.Fatalf("temp files counted as artifacts: %+v", st)
	}

	removed, err := d.GC(time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d files, want 1 (the stale temp)", removed)
	}
	if _, err := os.Stat(staleTmp); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived GC")
	}
	if _, err := os.Stat(youngTmp); err != nil {
		t.Fatal("young temp file (writer mid-Put) reclaimed by GC")
	}
	if _, ok := d.Get(key); !ok {
		t.Fatal("artifact lost during temp sweep")
	}
	if st := d.Stats(); st.TempFiles != 1 {
		t.Fatalf("stats after sweep: %+v", st)
	}
}

// TestGCDuringGetStress races Gets (whose recency bump can lose the
// file underneath) against clearing and budgeted GC sweeps plus
// re-Puts. Every hit must be byte-exact and nothing may panic — run
// under -race this is the regression test for the Get stats/Chtimes
// window.
func TestGCDuringGetStress(t *testing.T) {
	d, err := OpenSharded(filepath.Join(t.TempDir(), "depot"), 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 16)
	blobs := make([][]byte, len(keys))
	for i := range keys {
		keys[i] = Key{Kind: "reports", Source: fmt.Sprintf("g%d", i)}
		blobs[i] = bytes.Repeat([]byte{byte(i + 1)}, 2048)
		if err := d.Put(keys[i], blobs[i]); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // alternate clearing sweeps and tight byte budgets
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				_, err = d.GC(0, 0)
			} else {
				_, err = d.GC(0, 4096)
			}
			if err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // writer refills what GC drains
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range keys {
				if err := d.Put(keys[i], blobs[i]); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers: hits must be byte-exact
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					if b, ok := d.Get(keys[i]); ok && !bytes.Equal(b, blobs[i]) {
						t.Errorf("key %d: torn read under GC: %d bytes", i, len(b))
						return
					}
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
