package depot

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGCUnderConcurrentReaders hammers a disk depot with readers and
// writers while GC sweeps run concurrently. A read may miss (GC won)
// or hit (reader won), but a hit must never return a torn or foreign
// blob, and nothing may panic.
func TestGCUnderConcurrentReaders(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]Key, 32)
	blobs := make([][]byte, len(keys))
	for i := range keys {
		keys[i] = Key{Kind: "reports/v2", Source: fmt.Sprintf("src%d", i), Checker: "c"}
		blobs[i] = bytes.Repeat([]byte{byte(i)}, 4096+i)
		if err := d.Put(keys[i], blobs[i]); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// GC sweeps: maxAge <= 0 removes everything present at sweep time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.GC(0); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()

	// Writers keep re-inserting the artifacts GC removes.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					if err := d.Put(keys[i], blobs[i]); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}
		}()
	}

	// Readers: every hit must be byte-exact.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					if b, ok := d.Get(keys[i]); ok && !bytes.Equal(b, blobs[i]) {
						t.Errorf("key %d: torn read: got %d bytes, want %d", i, len(b), len(blobs[i]))
						return
					}
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
