package depot

// Artifact provenance. Every recomputed artifact can carry a compact
// sidecar record — stored as a normal depot artifact under a derived
// prov/v1 key — answering "who produced this, from what, and at what
// cost". Warm reads then explain themselves: mcheck -explain resolves
// a report back to the worker, checker version, input fingerprints
// and wall cost that produced it, which is the lineage substrate the
// ROADMAP's cross-version cache-aliasing item needs.
//
// The sidecar is deliberately a separate artifact rather than a field
// inside the payload: artifact bytes stay byte-identical between cold
// and warm runs (the CI gates cmp report streams), and provenance
// rides the existing sharding, atomic-write and GC machinery for
// free. A missing sidecar is not an error — artifacts written by
// older binaries, or evicted sidecars, simply have no explanation.

// ProvKind is the artifact kind provenance sidecars are stored under.
const ProvKind = "prov/v1"

// Provenance explains one artifact: the inputs it was derived from,
// the checker that produced it, who ran it, and what it cost.
type Provenance struct {
	// Key is the explained artifact's content address (Key.ID()).
	Key string `json:"key"`
	// Kind/Source/Checker/Version/Options mirror the artifact key's
	// fields so the record is self-describing offline.
	Kind    string `json:"kind"`
	Source  string `json:"source"`
	Checker string `json:"checker,omitempty"`
	Version string `json:"version,omitempty"`
	Options string `json:"options,omitempty"`
	// Deps are the key ids of artifacts consumed while producing this
	// one (a lanes task's function summaries, for example).
	Deps []string `json:"deps,omitempty"`
	// Producer identifies who computed the artifact: "pid:<n>" for a
	// local run, the worker address for a fleet run.
	Producer string `json:"producer,omitempty"`
	// TraceID is the request trace the computation ran under.
	TraceID string `json:"trace_id,omitempty"`
	// WallUS is the wall-clock cost of the computation in
	// microseconds; CPUUS the process CPU time if known.
	WallUS int64 `json:"wall_us"`
	CPUUS  int64 `json:"cpu_us,omitempty"`
}

// ProvKey derives the sidecar key for an artifact key. The sidecar is
// addressed by the artifact's content address, so Get(key) and
// GetProv(key) always agree on which artifact is being explained.
func ProvKey(key Key) Key {
	return Key{Kind: ProvKind, Source: key.ID()}
}

// PutProv stores the provenance sidecar for key, filling the record's
// key-mirror fields from the artifact key.
func (d *Depot) PutProv(key Key, p *Provenance) error {
	if p == nil {
		return nil
	}
	p.Key = key.ID()
	p.Kind, p.Source = key.Kind, key.Source
	p.Checker, p.Version, p.Options = key.Checker, key.Version, key.Options
	return d.PutJSON(ProvKey(key), p)
}

// GetProv round-trips the provenance sidecar for key. ok is false
// when no sidecar exists (pre-provenance artifact, or evicted).
func (d *Depot) GetProv(key Key) (*Provenance, bool) {
	var p Provenance
	if !d.GetJSON(ProvKey(key), &p) {
		return nil, false
	}
	return &p, true
}
