// Package depot is a content-addressed artifact store for incremental
// analysis. The paper's inter-procedural framework (§7) already
// persists per-function annotated flow graphs to files; the depot
// generalizes that file-based design into a cache every analysis
// artifact flows through: parsed-AST fingerprints, per-function
// CFG/summary blobs (internal/global's JSON format), and per-function
// checker reports.
//
// Artifacts are addressed by Key — hash(preprocessed source) ×
// checker-id × checker-version × engine-options — so a change to any
// input (the code, the checker, its version, or the options it ran
// under) misses the cache instead of serving a stale result. Writes
// are atomic (temp file + rename), so a depot directory can be shared
// by concurrent mcheck runs and a live mcheckd without torn reads.
package depot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"flashmc/internal/obs"
)

// Process-wide depot traffic, aggregated across all open depots (the
// per-Depot Stats counters stay per-instance).
var (
	mHits       = obs.NewCounter("depot_hits_total", "artifact cache hits")
	mMisses     = obs.NewCounter("depot_misses_total", "artifact cache misses")
	mPuts       = obs.NewCounter("depot_puts_total", "artifacts stored")
	mPutBytes   = obs.NewCounter("depot_put_bytes_total", "bytes of artifacts stored")
	mGCRuns     = obs.NewCounter("depot_gc_runs_total", "GC sweeps")
	mGCRemovals = obs.NewCounter("depot_gc_removed_total", "artifacts removed by GC")
)

// Key addresses one artifact. Every field participates in the
// content address; the zero value of unused fields is fine (summary
// blobs, for example, carry no checker id).
type Key struct {
	// Kind is the artifact class: "summary", "reports", "program", ...
	Kind string
	// Source is the content hash of the analyzed unit — a function's
	// parsed-AST fingerprint, or a whole-program fingerprint for
	// global passes. It transitively covers the preprocessed source:
	// the AST is built from it, and node positions pin the layout.
	Source string
	// Checker is the stable checker identifier ("" for summaries).
	Checker string
	// Version is the checker's semantic version; a bump is a miss.
	Version string
	// Options hashes everything else that shapes the result: the
	// protocol spec, engine options, checker source for ad-hoc metal
	// files.
	Options string
}

// ID returns the hex content address of the key.
func (k Key) ID() string {
	h := sha256.New()
	for _, f := range []string{k.Kind, k.Source, k.Checker, k.Version, k.Options} {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Depot is the store. A Depot with an empty directory lives in
// memory (useful for tests and for running without -cache); otherwise
// artifacts are files under dir, sharded by the first address byte.
type Depot struct {
	dir string

	mu  sync.Mutex
	mem map[string][]byte

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
}

// Open returns a depot rooted at dir, creating it if needed; an empty
// dir opens an in-memory depot.
func Open(dir string) (*Depot, error) {
	d := &Depot{dir: dir}
	if dir == "" {
		d.mem = map[string][]byte{}
		return d, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("depot: %w", err)
	}
	return d, nil
}

// path returns the on-disk location of an address.
func (d *Depot) path(id string) string {
	return filepath.Join(d.dir, id[:2], id+".json")
}

// Get returns the artifact stored under key, if present. Hits bump
// the entry's mtime so GC retains recently used artifacts.
func (d *Depot) Get(key Key) ([]byte, bool) {
	id := key.ID()
	if d.mem != nil {
		d.mu.Lock()
		b, ok := d.mem[id]
		d.mu.Unlock()
		d.count(ok)
		return b, ok
	}
	b, err := os.ReadFile(d.path(id))
	if err != nil {
		d.count(false)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(d.path(id), now, now) // best effort, for GC recency
	d.count(true)
	return b, true
}

func (d *Depot) count(hit bool) {
	if hit {
		d.hits.Add(1)
		mHits.Inc()
	} else {
		d.misses.Add(1)
		mMisses.Inc()
	}
}

// Put stores blob under key. On-disk writes go through a temp file in
// the destination directory and a rename, so readers never observe a
// partial artifact and concurrent writers of the same key converge.
func (d *Depot) Put(key Key, blob []byte) error {
	id := key.ID()
	d.puts.Add(1)
	mPuts.Inc()
	mPutBytes.Add(float64(len(blob)))
	if d.mem != nil {
		d.mu.Lock()
		d.mem[id] = append([]byte(nil), blob...)
		d.mu.Unlock()
		return nil
	}
	dst := d.path(id)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("depot: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), id+".tmp*")
	if err != nil {
		return fmt.Errorf("depot: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("depot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("depot: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("depot: %w", err)
	}
	return nil
}

// PutJSON marshals v and stores it under key.
func (d *Depot) PutJSON(key Key, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("depot: %w", err)
	}
	return d.Put(key, b)
}

// GetJSON loads the artifact under key into v; the bool reports
// whether the key was present and decoded.
func (d *Depot) GetJSON(key Key, v any) bool {
	b, ok := d.Get(key)
	if !ok {
		return false
	}
	if err := json.Unmarshal(b, v); err != nil {
		// A corrupt artifact is a miss; the caller recomputes and
		// overwrites it.
		return false
	}
	return true
}

// Stats describes the depot's contents and this process's traffic.
type Stats struct {
	// Entries and Bytes describe what is stored now.
	Entries int
	Bytes   int64
	// Hits, Misses and Puts count this process's Get/Put traffic.
	Hits   uint64
	Misses uint64
	Puts   uint64
}

// HitRate is hits/(hits+misses), 0 with no traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats walks the store and returns its current size plus traffic
// counters.
func (d *Depot) Stats() Stats {
	st := Stats{Hits: d.hits.Load(), Misses: d.misses.Load(), Puts: d.puts.Load()}
	if d.mem != nil {
		d.mu.Lock()
		st.Entries = len(d.mem)
		for _, b := range d.mem {
			st.Bytes += int64(len(b))
		}
		d.mu.Unlock()
		return st
	}
	filepath.WalkDir(d.dir, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		if info, err := e.Info(); err == nil {
			st.Entries++
			st.Bytes += info.Size()
		}
		return nil
	})
	return st
}

// GC removes artifacts not read or written within maxAge and returns
// how many were removed. The in-memory depot has no timestamps; GC
// with maxAge <= 0 clears it (and, on disk, removes everything).
func (d *Depot) GC(maxAge time.Duration) (int, error) {
	mGCRuns.Inc()
	if d.mem != nil {
		d.mu.Lock()
		defer d.mu.Unlock()
		if maxAge <= 0 {
			n := len(d.mem)
			d.mem = map[string][]byte{}
			mGCRemovals.Add(float64(n))
			return n, nil
		}
		return 0, nil
	}
	cutoff := time.Now().Add(-maxAge)
	removed := 0
	err := filepath.WalkDir(d.dir, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		info, err := e.Info()
		if err != nil {
			return nil
		}
		if maxAge <= 0 || info.ModTime().Before(cutoff) {
			if os.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	mGCRemovals.Add(float64(removed))
	return removed, err
}
