// Package depot is a content-addressed artifact store for incremental
// analysis. The paper's inter-procedural framework (§7) already
// persists per-function annotated flow graphs to files; the depot
// generalizes that file-based design into a cache every analysis
// artifact flows through: parsed-AST fingerprints, per-function
// CFG/summary blobs (internal/global's JSON format), per-function
// checker reports, and whole-program parse manifests.
//
// Artifacts are addressed by Key — hash(preprocessed source) ×
// checker-id × checker-version × engine-options — so a change to any
// input (the code, the checker, its version, or the options it ran
// under) misses the cache instead of serving a stale result. Writes
// are atomic (temp file + rename), so a depot directory can be shared
// by concurrent mcheck runs and a live mcheckd without torn reads.
//
// Storage scales out across N shard roots (OpenSharded): the key id
// deterministically selects a shard, each shard has its own lock
// domain, LRU index and stats, and a shard root can be a directory on
// its own volume. The shard count is pinned in a DEPOT manifest file;
// reopening with a different -cache-shards refuses rather than
// silently splitting the key space two ways.
//
// GC supports both an age bound and a byte budget: artifacts unused
// for maxAge go first, then least-recently-used artifacts are evicted
// until the depot fits maxBytes. Recency comes from a per-shard LRU
// index rebuilt from file mtimes on open (Get bumps mtimes, so the
// index survives restarts) and persisted to a per-shard lru.idx file
// on every sweep.
package depot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flashmc/internal/obs"
)

// Process-wide depot traffic, aggregated across all open depots (the
// per-Depot Stats counters stay per-instance).
var (
	mHits       = obs.NewCounter("depot_hits_total", "artifact cache hits")
	mMisses     = obs.NewCounter("depot_misses_total", "artifact cache misses")
	mPuts       = obs.NewCounter("depot_puts_total", "artifacts stored")
	mPutBytes   = obs.NewCounter("depot_put_bytes_total", "bytes of artifacts stored")
	mGCRuns     = obs.NewCounter("depot_gc_runs_total", "GC sweeps")
	mGCRemovals = obs.NewCounter("depot_gc_removed_total", "artifacts removed by GC")
	mGCEvicted  = obs.NewCounter("depot_gc_evicted_bytes_total", "bytes reclaimed by GC (age, budget, and temp sweeps)")
	mGCPressure = obs.NewCounter("depot_gc_pressure_sweeps_total", "GC sweeps triggered by Put write pressure")
)

// manifestTmpSeq disambiguates fresh-manifest temp files between
// goroutines of one process (the pid alone is not unique per call).
var manifestTmpSeq uint64

const (
	// manifestName pins the shard layout at the depot root. No .json
	// extension: artifact walks only consider *.json files.
	manifestName = "DEPOT"
	// indexName is the per-shard persisted LRU index.
	indexName = "lru.idx"
	// tempGrace is how old an orphaned Put temp file must be before a
	// GC sweep reclaims it. Live writers rename within milliseconds;
	// anything this stale belongs to a crashed writer.
	tempGrace = 15 * time.Minute
)

// Key addresses one artifact. Every field participates in the
// content address; the zero value of unused fields is fine (summary
// blobs, for example, carry no checker id).
type Key struct {
	// Kind is the artifact class: "summary", "reports/v3",
	// "programs/v1", ...
	Kind string
	// Source is the content hash of the analyzed unit — a function's
	// parsed-AST fingerprint, or a whole-program fingerprint for
	// global passes. It transitively covers the preprocessed source:
	// the AST is built from it, and node positions pin the layout.
	Source string
	// Checker is the stable checker identifier ("" for summaries).
	Checker string
	// Version is the checker's semantic version; a bump is a miss.
	Version string
	// Options hashes everything else that shapes the result: the
	// protocol spec, engine options, checker source for ad-hoc metal
	// files.
	Options string
}

// ID returns the hex content address of the key.
func (k Key) ID() string {
	h := sha256.New()
	for _, f := range []string{k.Kind, k.Source, k.Checker, k.Version, k.Options} {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// memEntry is one in-memory artifact plus the recency state that
// makes age- and budget-GC behave like the on-disk depot.
type memEntry struct {
	data  []byte
	atime time.Time
	seq   uint64
}

// shard is one storage root with its own lock domain. atimes is the
// shard's LRU index: last-access times, seeded from file mtimes (and
// the persisted lru.idx) on open and bumped by Get/Put. It is an
// overlay, not the source of truth — GC re-walks the shard so writes
// by other processes sharing the depot are seen too.
type shard struct {
	root string

	mu     sync.Mutex
	atimes map[string]time.Time
}

func (s *shard) touch(id string, at time.Time) {
	s.mu.Lock()
	if old, ok := s.atimes[id]; !ok || at.After(old) {
		s.atimes[id] = at
	}
	s.mu.Unlock()
}

// Depot is the store. A Depot with an empty directory lives in
// memory (useful for tests and for running without -cache); otherwise
// artifacts are files spread across shard roots under dir, fanned out
// by the first address byte within each shard.
type Depot struct {
	dir    string
	shards []*shard

	mu  sync.Mutex
	mem map[string]*memEntry
	seq uint64

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64

	// Put-pressure GC (SetGCPolicy): bytes written since the last
	// sweep, and the CAS flag serializing sweeps.
	gc       atomic.Pointer[gcPolicy]
	written  atomic.Int64
	sweeping atomic.Bool
}

// gcPolicy is the put-pressure GC configuration.
type gcPolicy struct {
	maxAge    time.Duration
	maxBytes  int64
	threshold int64
}

// manifest is the DEPOT file pinning the on-disk layout. Version 1
// recorded only the shard count (all roots under the depot dir);
// version 2 additionally pins each shard's absolute root path, so
// shards can live on separate volumes. Legacy v1 manifests keep
// opening with the default in-dir layout.
type manifest struct {
	Version int      `json:"version"`
	Shards  int      `json:"shards"`
	Paths   []string `json:"paths,omitempty"`
}

// defaultShardPaths is the in-dir layout v1 manifests imply: the
// depot dir itself for one shard, dir/shard-NNN beyond that.
func defaultShardPaths(dir string, n int) []string {
	if n <= 1 {
		return []string{dir}
	}
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
	}
	return paths
}

// Open returns a depot rooted at dir, creating it if needed; an empty
// dir opens an in-memory depot. The shard count is adopted from the
// directory's manifest (legacy depots without one are single-shard).
func Open(dir string) (*Depot, error) { return OpenSharded(dir, 0) }

// OpenSharded opens a depot with an explicit shard count. shards == 0
// adopts the existing layout (or 1 for a fresh directory); shards >= 1
// must match the layout already on disk — a mismatch is refused, since
// the id → shard mapping would otherwise split the key space.
func OpenSharded(dir string, shards int) (*Depot, error) {
	return openSharded(dir, shards, nil)
}

// OpenShardedAt opens a depot whose shard roots live at explicit
// absolute paths (one per shard, possibly on separate volumes). A
// fresh depot pins the paths in a v2 manifest; an existing depot's
// manifest must agree path-for-path — the first mismatched path is
// refused by name.
func OpenShardedAt(dir string, shardPaths []string) (*Depot, error) {
	if len(shardPaths) == 0 {
		return nil, fmt.Errorf("depot: no shard paths")
	}
	for _, p := range shardPaths {
		if !filepath.IsAbs(p) {
			return nil, fmt.Errorf("depot: shard path %s is not absolute", p)
		}
	}
	return openSharded(dir, len(shardPaths), shardPaths)
}

func openSharded(dir string, shards int, wantPaths []string) (*Depot, error) {
	if shards < 0 {
		return nil, fmt.Errorf("depot: shard count %d must be >= 0", shards)
	}
	d := &Depot{dir: dir}
	if dir == "" {
		d.mem = map[string]*memEntry{}
		return d, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("depot: %w", err)
	}

	existing := 0
	var existingPaths []string
	mf := filepath.Join(dir, manifestName)
	if raw, err := os.ReadFile(mf); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil || m.Shards < 1 {
			return nil, fmt.Errorf("depot: corrupt manifest %s", mf)
		}
		if len(m.Paths) > 0 && len(m.Paths) != m.Shards {
			return nil, fmt.Errorf("depot: corrupt manifest %s: %d shards but %d paths", mf, m.Shards, len(m.Paths))
		}
		existing = m.Shards
		existingPaths = m.Paths
	} else if hasSubdirs(dir) {
		// Legacy depots predate the manifest and used one flat root.
		existing = 1
	}
	if shards > 0 && existing > 0 && shards != existing {
		return nil, fmt.Errorf("depot: %s holds a %d-shard layout; refusing to open with %d shards (use -cache-shards %d or a fresh directory)",
			dir, existing, shards, existing)
	}
	n := shards
	if n == 0 {
		n = existing
	}
	if n == 0 {
		n = 1
	}
	if existing > 0 && len(existingPaths) == 0 {
		// v1 manifest (or legacy flat depot): the layout is in-dir.
		existingPaths = defaultShardPaths(dir, existing)
	}
	if wantPaths != nil && existingPaths != nil {
		for i, want := range wantPaths {
			if existingPaths[i] != want {
				return nil, fmt.Errorf("depot: %s pins shard %d at %s; refusing to open it at %s (fix -cache-shard-paths or use a fresh directory)",
					dir, i, existingPaths[i], want)
			}
		}
	}
	paths := wantPaths
	if paths == nil {
		paths = existingPaths
	}
	if paths == nil {
		paths = defaultShardPaths(dir, n)
	}
	if existing == 0 {
		// Fresh depots always write v2 manifests with absolute paths
		// so any process — on any mount of the same volumes — opens
		// the identical layout.
		abs := make([]string, len(paths))
		for i, p := range paths {
			a, err := filepath.Abs(p)
			if err != nil {
				return nil, fmt.Errorf("depot: shard path %s: %w", p, err)
			}
			abs[i] = a
		}
		paths = abs
		raw, _ := json.Marshal(manifest{Version: 2, Shards: n, Paths: paths})
		// Write-then-rename so a concurrent Open on the same fresh
		// directory never reads a truncated manifest. Two racing
		// creators write byte-identical content for the same layout,
		// so whichever rename lands last is harmless; a racing creator
		// with a DIFFERENT layout is caught by re-reading the winner.
		// The temp name must be unique per *call*, not per process:
		// two goroutines in one process racing Open on the same fresh
		// dir (a daemon's tests, a leader opening shared volumes)
		// would otherwise write one temp file and the loser's rename
		// would fail ENOENT after the winner renamed it away.
		tmp := fmt.Sprintf("%s.new.%d.%d", mf, os.Getpid(), atomic.AddUint64(&manifestTmpSeq, 1))
		if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("depot: %w", err)
		}
		if err := os.Rename(tmp, mf); err != nil {
			os.Remove(tmp)
			return nil, fmt.Errorf("depot: %w", err)
		}
		if won, err := os.ReadFile(mf); err == nil && !bytes.Equal(won, append(raw, '\n')) {
			var m manifest
			if json.Unmarshal(won, &m) != nil || m.Shards != n {
				return nil, fmt.Errorf("depot: %s: lost manifest race to an incompatible layout (reopen to adopt it)", dir)
			}
		}
	}

	for _, root := range paths {
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, fmt.Errorf("depot: shard root %s: %w", root, err)
		}
		sh := &shard{root: root, atimes: map[string]time.Time{}}
		sh.rebuildIndex()
		d.shards = append(d.shards, sh)
	}
	return d, nil
}

// Ping verifies the depot's storage is reachable: the manifest and
// every shard root still exist. In-memory depots always succeed. It
// backs readiness endpoints — a daemon whose cache volume unmounted
// should drain, not 500.
func (d *Depot) Ping() error {
	if d.mem != nil {
		return nil
	}
	if _, err := os.Stat(filepath.Join(d.dir, manifestName)); err != nil {
		return fmt.Errorf("depot: manifest: %w", err)
	}
	for _, sh := range d.shards {
		if _, err := os.Stat(sh.root); err != nil {
			return fmt.Errorf("depot: shard root: %w", err)
		}
	}
	return nil
}

// hasSubdirs reports whether dir already contains directories (the
// id-prefix fan-out of a legacy single-root depot).
func hasSubdirs(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() {
			return true
		}
	}
	return false
}

// ShardCount returns the number of shard roots (1 for in-memory).
func (d *Depot) ShardCount() int {
	if d.mem != nil {
		return 1
	}
	return len(d.shards)
}

// shardOf deterministically maps an address to a shard: the first
// four hex bytes of the id, modulo the shard count. It is a pure
// function of (id, shard count), so every process sharing a depot
// agrees on the placement.
func (d *Depot) shardOf(id string) *shard {
	return d.shards[shardIndex(id, len(d.shards))]
}

// shardIndex is the placement function, exported through tests: the
// same id must land on the same shard in every process.
func shardIndex(id string, n int) int {
	if n <= 1 {
		return 0
	}
	v, err := strconv.ParseUint(id[:8], 16, 64)
	if err != nil {
		// Non-hex ids cannot come from Key.ID; fold bytes instead.
		v = 0
		for i := 0; i < len(id); i++ {
			v = v*131 + uint64(id[i])
		}
	}
	return int(v % uint64(n))
}

// path returns the on-disk location of an address within its shard.
func (s *shard) path(id string) string {
	return filepath.Join(s.root, id[:2], id+".json")
}

// Get returns the artifact stored under key, if present. Hits bump
// the entry's recency (mtime plus the shard's LRU index) so GC
// retains recently used artifacts.
func (d *Depot) Get(key Key) ([]byte, bool) {
	id := key.ID()
	now := time.Now()
	if d.mem != nil {
		d.mu.Lock()
		e, ok := d.mem[id]
		var b []byte
		if ok {
			b = e.data
			e.atime = now
			d.seq++
			e.seq = d.seq
		}
		d.mu.Unlock()
		d.count(ok)
		return b, ok
	}
	sh := d.shardOf(id)
	b, err := os.ReadFile(sh.path(id))
	if err != nil {
		d.count(false)
		return nil, false
	}
	// Best-effort recency bump. GC may have removed the file between
	// the read and the bump (fs.ErrNotExist), or a concurrent Put may
	// have renamed a new generation into place so the bump lands on a
	// file that is already at least this fresh — both are harmless, so
	// every failure is tolerated. The shard index records the access
	// either way, keeping this process's LRU ordering exact.
	if err := os.Chtimes(sh.path(id), now, now); err != nil && !errors.Is(err, fs.ErrNotExist) {
		_ = err // permission/IO failures: recency falls back to the last good bump
	}
	sh.touch(id, now)
	d.count(true)
	return b, true
}

func (d *Depot) count(hit bool) {
	if hit {
		d.hits.Add(1)
		mHits.Inc()
	} else {
		d.misses.Add(1)
		mMisses.Inc()
	}
}

// Put stores blob under key. On-disk writes go through a temp file in
// the destination directory and a rename, so readers never observe a
// partial artifact and concurrent writers of the same key converge.
func (d *Depot) Put(key Key, blob []byte) error {
	id := key.ID()
	d.puts.Add(1)
	mPuts.Inc()
	mPutBytes.Add(float64(len(blob)))
	now := time.Now()
	if d.mem != nil {
		d.mu.Lock()
		d.seq++
		d.mem[id] = &memEntry{data: append([]byte(nil), blob...), atime: now, seq: d.seq}
		d.mu.Unlock()
		d.notePut(len(blob))
		return nil
	}
	sh := d.shardOf(id)
	dst := sh.path(id)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("depot: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), id+".tmp*")
	if err != nil {
		return fmt.Errorf("depot: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("depot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("depot: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("depot: %w", err)
	}
	sh.touch(id, now)
	d.notePut(len(blob))
	return nil
}

// IDs returns the content address of every artifact currently stored,
// in no particular order. It is a full scan — a recovery and audit
// primitive (the run ledger uses it to relist entries whose index slot
// a cross-process append race lost), not a fast path.
func (d *Depot) IDs() []string {
	if d.mem != nil {
		d.mu.Lock()
		ids := make([]string, 0, len(d.mem))
		for id := range d.mem {
			ids = append(ids, id)
		}
		d.mu.Unlock()
		return ids
	}
	var ids []string
	for _, sh := range d.shards {
		for _, f := range sh.scan() {
			if !f.temp {
				ids = append(ids, f.id)
			}
		}
	}
	return ids
}

// GetByID returns the artifact stored under a raw content address, for
// callers that discovered the id by scanning (IDs) rather than holding
// the Key. Reads do not bump recency: scans are audits, not cache use.
func (d *Depot) GetByID(id string) ([]byte, bool) {
	if d.mem != nil {
		d.mu.Lock()
		e, ok := d.mem[id]
		var b []byte
		if ok {
			b = e.data
		}
		d.mu.Unlock()
		return b, ok
	}
	if len(id) < 8 { // shard placement and fan-out need the hash prefix
		return nil, false
	}
	b, err := os.ReadFile(d.shardOf(id).path(id))
	if err != nil {
		return nil, false
	}
	return b, true
}

// SetGCPolicy arms put-pressure GC: once threshold bytes have been
// written since the last sweep, the Put that crosses the line runs
// GC(maxAge, maxBytes) inline before returning. Sweeping on write
// pressure instead of a fixed cadence means an idle depot is never
// walked and a hot one is swept exactly as often as it grows —
// threshold bytes of writes per sweep, whatever the traffic shape.
// A threshold <= 0 disarms the policy.
func (d *Depot) SetGCPolicy(maxAge time.Duration, maxBytes, threshold int64) {
	if threshold <= 0 {
		d.gc.Store(nil)
		return
	}
	d.gc.Store(&gcPolicy{maxAge: maxAge, maxBytes: maxBytes, threshold: threshold})
}

// notePut accounts freshly written bytes against the pressure
// threshold, sweeping synchronously on the crossing Put. Concurrent
// writers skip the sweep another has claimed (CAS) rather than queue
// behind it.
func (d *Depot) notePut(n int) {
	p := d.gc.Load()
	if p == nil {
		return
	}
	if d.written.Add(int64(n)) < p.threshold {
		return
	}
	if !d.sweeping.CompareAndSwap(false, true) {
		return
	}
	defer d.sweeping.Store(false)
	d.written.Store(0)
	mGCPressure.Inc()
	d.GC(p.maxAge, p.maxBytes)
}

// PutJSON marshals v and stores it under key.
func (d *Depot) PutJSON(key Key, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("depot: %w", err)
	}
	return d.Put(key, b)
}

// GetJSON loads the artifact under key into v; the bool reports
// whether the key was present and decoded.
func (d *Depot) GetJSON(key Key, v any) bool {
	b, ok := d.Get(key)
	if !ok {
		return false
	}
	if err := json.Unmarshal(b, v); err != nil {
		// A corrupt artifact is a miss; the caller recomputes and
		// overwrites it.
		return false
	}
	return true
}

// ShardStats describes one shard root's current contents.
type ShardStats struct {
	Root      string
	Entries   int
	Bytes     int64
	TempFiles int
	TempBytes int64
}

// Stats describes the depot's contents and this process's traffic.
type Stats struct {
	// Entries and Bytes describe the artifacts stored now.
	Entries int
	Bytes   int64
	// TempFiles and TempBytes count orphaned Put temp files — debris
	// from crashed writers, reclaimed by GC once they outlive the
	// grace period.
	TempFiles int
	TempBytes int64
	// Hits, Misses and Puts count this process's Get/Put traffic.
	Hits   uint64
	Misses uint64
	Puts   uint64
	// Shards breaks Entries/Bytes down per shard root (nil in-memory).
	Shards []ShardStats
}

// HitRate is hits/(hits+misses), 0 with no traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats walks the store and returns its current size plus traffic
// counters.
func (d *Depot) Stats() Stats {
	st := Stats{Hits: d.hits.Load(), Misses: d.misses.Load(), Puts: d.puts.Load()}
	if d.mem != nil {
		d.mu.Lock()
		st.Entries = len(d.mem)
		for _, e := range d.mem {
			st.Bytes += int64(len(e.data))
		}
		d.mu.Unlock()
		return st
	}
	for _, sh := range d.shards {
		ss := ShardStats{Root: sh.root}
		for _, f := range sh.scan() {
			if f.temp {
				ss.TempFiles++
				ss.TempBytes += f.size
			} else {
				ss.Entries++
				ss.Bytes += f.size
			}
		}
		st.Entries += ss.Entries
		st.Bytes += ss.Bytes
		st.TempFiles += ss.TempFiles
		st.TempBytes += ss.TempBytes
		st.Shards = append(st.Shards, ss)
	}
	return st
}

// scanFile is one file found by a shard walk.
type scanFile struct {
	path  string
	id    string // artifact id ("" for temp files)
	size  int64
	mtime time.Time
	temp  bool
}

// scan walks the shard root and returns its artifacts and temp files.
// The persisted index and manifest carry no .json extension and no
// ".tmp" infix, so they are invisible here.
func (s *shard) scan() []scanFile {
	var out []scanFile
	filepath.WalkDir(s.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return nil
		}
		name := e.Name()
		temp := strings.Contains(name, ".tmp")
		if !temp && filepath.Ext(name) != ".json" {
			return nil
		}
		info, err := e.Info()
		if err != nil {
			return nil
		}
		f := scanFile{path: path, size: info.Size(), mtime: info.ModTime(), temp: temp}
		if !temp {
			f.id = strings.TrimSuffix(name, ".json")
		}
		out = append(out, f)
		return nil
	})
	return out
}

// lruIndex is the persisted form of a shard's access order.
type lruIndex struct {
	Version int              `json:"version"`
	Atimes  map[string]int64 `json:"atimes"` // id -> last access, unix nanos
}

// rebuildIndex seeds the shard's LRU index from file mtimes (Get
// bumps them, so mtime is last access across restarts) merged with
// the finer-grained persisted index from the last GC sweep.
func (s *shard) rebuildIndex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.scan() {
		if f.temp {
			continue
		}
		s.atimes[f.id] = f.mtime
	}
	raw, err := os.ReadFile(filepath.Join(s.root, indexName))
	if err != nil {
		return
	}
	var idx lruIndex
	if json.Unmarshal(raw, &idx) != nil {
		return
	}
	for id, ns := range idx.Atimes {
		if mt, ok := s.atimes[id]; ok { // only files still on disk
			if at := time.Unix(0, ns); at.After(mt) {
				s.atimes[id] = at
			}
		}
	}
}

// writeIndex persists the shard's current access order (best effort:
// the index is an optimization over mtimes, not the source of truth).
func (s *shard) writeIndex() {
	s.mu.Lock()
	idx := lruIndex{Version: 1, Atimes: make(map[string]int64, len(s.atimes))}
	for id, at := range s.atimes {
		idx.Atimes[id] = at.UnixNano()
	}
	s.mu.Unlock()
	raw, err := json.Marshal(idx)
	if err != nil {
		return
	}
	dst := filepath.Join(s.root, indexName)
	tmp := dst + ".new"
	if os.WriteFile(tmp, raw, 0o644) == nil {
		os.Rename(tmp, dst)
	}
}

// GC reclaims space in two passes and returns how many files it
// removed. With maxAge > 0, artifacts unused for longer are removed
// (unused = not read or written, across every process sharing the
// depot). With maxBytes > 0, least-recently-used artifacts are then
// evicted until the stored bytes fit the budget. maxAge <= 0 &&
// maxBytes <= 0 clears the depot. Every sweep also reclaims orphaned
// Put temp files older than a grace period — debris from crashed
// writers that would otherwise be invisible and immortal.
func (d *Depot) GC(maxAge time.Duration, maxBytes int64) (int, error) {
	mGCRuns.Inc()
	if d.mem != nil {
		return d.gcMem(maxAge, maxBytes), nil
	}

	now := time.Now()
	clearAll := maxAge <= 0 && maxBytes <= 0
	removed := 0
	var evictedBytes int64

	// Scan every shard, reconcile each LRU index with what is on disk
	// (other processes may have added or dropped artifacts), sweep
	// stale temp files, and apply the age bound.
	type candidate struct {
		sh *shard
		scanFile
		atime time.Time
	}
	var survivors []candidate
	var total int64
	cutoff := now.Add(-maxAge)
	for _, sh := range d.shards {
		files := sh.scan()
		live := map[string]bool{}
		for _, f := range files {
			if f.temp {
				if now.Sub(f.mtime) > tempGrace {
					if os.Remove(f.path) == nil {
						removed++
						evictedBytes += f.size
					}
				}
				continue
			}
			live[f.id] = true
		}
		sh.mu.Lock()
		for id := range sh.atimes {
			if !live[id] {
				delete(sh.atimes, id) // removed by another process
			}
		}
		for _, f := range files {
			if f.temp {
				continue
			}
			at := f.mtime
			if known, ok := sh.atimes[f.id]; ok && known.After(at) {
				at = known
			} else {
				sh.atimes[f.id] = at
			}
			c := candidate{sh: sh, scanFile: f, atime: at}
			if clearAll || (maxAge > 0 && at.Before(cutoff)) {
				if os.Remove(f.path) == nil {
					removed++
					evictedBytes += f.size
					delete(sh.atimes, f.id)
				}
				continue
			}
			survivors = append(survivors, c)
			total += f.size
		}
		sh.mu.Unlock()
	}

	// Byte budget: evict globally least-recently-used first. A
	// survivor whose mtime advanced since the scan was re-put or read
	// concurrently; it is fresh again, so skip it.
	if maxBytes > 0 && total > maxBytes {
		sort.Slice(survivors, func(i, j int) bool { return survivors[i].atime.Before(survivors[j].atime) })
		for _, c := range survivors {
			if total <= maxBytes {
				break
			}
			if info, err := os.Stat(c.path); err != nil || info.ModTime().After(c.atime) {
				if err != nil {
					total -= c.size // already gone
				}
				continue
			}
			if os.Remove(c.path) == nil {
				removed++
				evictedBytes += c.size
				total -= c.size
				c.sh.mu.Lock()
				delete(c.sh.atimes, c.id)
				c.sh.mu.Unlock()
			}
		}
	}

	for _, sh := range d.shards {
		sh.writeIndex()
	}
	mGCRemovals.Add(float64(removed))
	mGCEvicted.Add(float64(evictedBytes))
	return removed, nil
}

// gcMem applies the same age/budget semantics to the in-memory depot:
// entries carry last-access times and an access sequence, so age-based
// GC and LRU eviction behave identically to the on-disk store.
func (d *Depot) gcMem(maxAge time.Duration, maxBytes int64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	removed := 0
	var evictedBytes int64
	if maxAge <= 0 && maxBytes <= 0 {
		removed = len(d.mem)
		for _, e := range d.mem {
			evictedBytes += int64(len(e.data))
		}
		d.mem = map[string]*memEntry{}
	} else {
		if maxAge > 0 {
			cutoff := time.Now().Add(-maxAge)
			for id, e := range d.mem {
				if e.atime.Before(cutoff) {
					removed++
					evictedBytes += int64(len(e.data))
					delete(d.mem, id)
				}
			}
		}
		if maxBytes > 0 {
			var total int64
			for _, e := range d.mem {
				total += int64(len(e.data))
			}
			if total > maxBytes {
				ids := make([]string, 0, len(d.mem))
				for id := range d.mem {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool {
					a, b := d.mem[ids[i]], d.mem[ids[j]]
					if !a.atime.Equal(b.atime) {
						return a.atime.Before(b.atime)
					}
					return a.seq < b.seq // same instant: access order decides
				})
				for _, id := range ids {
					if total <= maxBytes {
						break
					}
					n := int64(len(d.mem[id].data))
					delete(d.mem, id)
					removed++
					evictedBytes += n
					total -= n
				}
			}
		}
	}
	mGCRemovals.Add(float64(removed))
	mGCEvicted.Add(float64(evictedBytes))
	return removed
}
