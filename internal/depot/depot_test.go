package depot

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func backends(t *testing.T) map[string]*Depot {
	t.Helper()
	disk, err := Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Depot{"disk": disk, "mem": mem}
}

func TestRoundTrip(t *testing.T) {
	for name, d := range backends(t) {
		key := Key{Kind: "reports", Source: "abc", Checker: "msglen", Version: "1.1.0", Options: "opt"}
		if _, ok := d.Get(key); ok {
			t.Fatalf("%s: hit on empty depot", name)
		}
		if err := d.Put(key, []byte(`["r1"]`)); err != nil {
			t.Fatal(err)
		}
		b, ok := d.Get(key)
		if !ok || string(b) != `["r1"]` {
			t.Fatalf("%s: got %q ok=%v", name, b, ok)
		}
		st := d.Stats()
		if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
			t.Fatalf("%s: stats %+v", name, st)
		}
		if got := st.HitRate(); got != 0.5 {
			t.Fatalf("%s: hit rate %v", name, got)
		}
	}
}

// TestKeyFields checks that every key field participates in the
// address — in particular that a checker version bump is a cache miss
// (the satellite requirement for checkers.Version()).
func TestKeyFields(t *testing.T) {
	base := Key{Kind: "reports", Source: "s", Checker: "c", Version: "1.0.0", Options: "o"}
	variants := []Key{
		{Kind: "summary", Source: "s", Checker: "c", Version: "1.0.0", Options: "o"},
		{Kind: "reports", Source: "s2", Checker: "c", Version: "1.0.0", Options: "o"},
		{Kind: "reports", Source: "s", Checker: "c2", Version: "1.0.0", Options: "o"},
		{Kind: "reports", Source: "s", Checker: "c", Version: "1.1.0", Options: "o"},
		{Kind: "reports", Source: "s", Checker: "c", Version: "1.0.0", Options: "o2"},
	}
	for _, d := range backends(t) {
		if err := d.Put(base, []byte("x")); err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			if v.ID() == base.ID() {
				t.Fatalf("key %+v collides with base", v)
			}
			if _, ok := d.Get(v); ok {
				t.Fatalf("key %+v unexpectedly hit", v)
			}
		}
	}
	// Field boundaries must not be ambiguous under concatenation.
	a := Key{Kind: "ab", Source: "c"}
	b := Key{Kind: "a", Source: "bc"}
	if a.ID() == b.ID() {
		t.Fatal("field concatenation is ambiguous")
	}
}

func TestJSONHelpers(t *testing.T) {
	for name, d := range backends(t) {
		key := Key{Kind: "reports", Source: "s"}
		want := []string{"a", "b"}
		if err := d.PutJSON(key, want); err != nil {
			t.Fatal(err)
		}
		var got []string
		if !d.GetJSON(key, &got) {
			t.Fatalf("%s: miss", name)
		}
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Fatalf("%s: got %v", name, got)
		}
	}
}

// TestCorruptArtifactIsMiss: a truncated on-disk artifact must read
// as a miss, not an error, so the caller recomputes it.
func TestCorruptArtifactIsMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "depot")
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Kind: "reports", Source: "s"}
	if err := d.PutJSON(key, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.ID()[:2], key.ID()+".json")
	if err := os.WriteFile(path, []byte("[1,"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got []int
	if d.GetJSON(key, &got) {
		t.Fatal("corrupt artifact decoded")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	for name, d := range backends(t) {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := Key{Kind: "reports", Source: fmt.Sprint(i % 4)}
				blob := []byte(fmt.Sprintf(`"blob %d"`, i%4))
				for j := 0; j < 50; j++ {
					if err := d.Put(key, blob); err != nil {
						t.Error(err)
						return
					}
					if b, ok := d.Get(key); ok && string(b) != string(blob) {
						t.Errorf("%s: torn read: %q", name, b)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	}
}

func TestGC(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "depot")
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := Key{Kind: "reports", Source: "old"}
	fresh := Key{Kind: "reports", Source: "fresh"}
	for _, k := range []Key{old, fresh} {
		if err := d.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Age one artifact past the cutoff.
	stale := time.Now().Add(-2 * time.Hour)
	if err := d.backdate(old, stale); err != nil {
		t.Fatal(err)
	}
	removed, err := d.GC(time.Hour, 0)
	if err != nil || removed != 1 {
		t.Fatalf("GC removed %d, err %v", removed, err)
	}
	if _, ok := d.Get(old); ok {
		t.Fatal("stale artifact survived GC")
	}
	if _, ok := d.Get(fresh); !ok {
		t.Fatal("fresh artifact removed by GC")
	}
	if removed, err = d.GC(0, 0); err != nil || removed != 1 {
		t.Fatalf("GC(0) removed %d, err %v", removed, err)
	}
	if d.Stats().Entries != 0 {
		t.Fatal("GC(0) left entries")
	}
}
