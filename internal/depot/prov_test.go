package depot

import (
	"reflect"
	"testing"
)

// TestProvenanceRoundTrip: a provenance sidecar stored beside an
// artifact round-trips through PutProv/GetProv in both the in-memory
// and on-disk depots, mirrors the artifact key's fields, and is
// absent for artifacts that never wrote one.
func TestProvenanceRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		d, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		key := Key{Kind: "reports/v3", Source: "fp-src", Checker: "lock", Version: "3", Options: "opt-fp"}
		if err := d.Put(key, []byte(`{"reports":[]}`)); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.GetProv(key); ok {
			t.Fatal("provenance present before PutProv")
		}
		want := &Provenance{
			Deps:     []string{"dep-a", "dep-b"},
			Producer: "pid:42",
			TraceID:  "req-7",
			WallUS:   1500,
		}
		if err := d.PutProv(key, want); err != nil {
			t.Fatal(err)
		}
		got, ok := d.GetProv(key)
		if !ok {
			t.Fatal("provenance missing after PutProv")
		}
		if got.Key != key.ID() || got.Kind != key.Kind || got.Source != key.Source ||
			got.Checker != key.Checker || got.Version != key.Version || got.Options != key.Options {
			t.Fatalf("key-mirror fields wrong: %+v", got)
		}
		if !reflect.DeepEqual(got.Deps, want.Deps) || got.Producer != want.Producer ||
			got.TraceID != want.TraceID || got.WallUS != want.WallUS {
			t.Fatalf("payload fields wrong: got %+v want %+v", got, want)
		}
		// A different artifact key (version bump) has its own sidecar
		// address — the bumped artifact is unexplained until written.
		bumped := key
		bumped.Version = "4"
		if _, ok := d.GetProv(bumped); ok {
			t.Fatal("version-bumped key shares a sidecar")
		}
	}
}
