package depot

import (
	"os"
	"time"
)

// backdate ages an artifact for tests: on disk it moves both the file
// mtime and the shard's LRU index entry to at; in memory it rewrites
// the entry's access time and sequence so the entry sorts
// least-recently-used.
func (d *Depot) backdate(key Key, at time.Time) error {
	id := key.ID()
	if d.mem != nil {
		d.mu.Lock()
		defer d.mu.Unlock()
		if e, ok := d.mem[id]; ok {
			e.atime = at
			e.seq = 0
		}
		return nil
	}
	sh := d.shardOf(id)
	if err := os.Chtimes(sh.path(id), at, at); err != nil {
		return err
	}
	sh.mu.Lock()
	sh.atimes[id] = at
	sh.mu.Unlock()
	return nil
}

// shardRoots exposes the shard root directories for layout tests.
func (d *Depot) shardRoots() []string {
	var roots []string
	for _, sh := range d.shards {
		roots = append(roots, sh.root)
	}
	return roots
}

// ShardIndexFor exposes the placement function for determinism tests.
func ShardIndexFor(id string, n int) int { return shardIndex(id, n) }

// TempGrace exposes the orphaned-temp-file grace period to tests.
const TempGrace = tempGrace
