package depot

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func putN(t *testing.T, d *Depot, n int) []Key {
	t.Helper()
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{Kind: "reports/v3", Source: fmt.Sprintf("src-%03d", i),
			Checker: "c", Version: "v1", Options: "o"}
		if err := d.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func getAll(t *testing.T, d *Depot, keys []Key) {
	t.Helper()
	for i, k := range keys {
		if _, ok := d.Get(k); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

// TestOpenShardedAtSpansVolumes: explicit shard roots may live outside
// the depot directory (separate volumes); the manifest pins them and
// any later open — with or without the paths respelled — adopts the
// identical layout.
func TestOpenShardedAtSpansVolumes(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(t.TempDir(), "vol-a"), filepath.Join(t.TempDir(), "vol-b")}

	d, err := OpenShardedAt(dir, paths)
	if err != nil {
		t.Fatal(err)
	}
	keys := putN(t, d, 16)
	getAll(t, d, keys)

	// Both roots must actually hold artifacts — otherwise the "spans
	// volumes" claim is hollow.
	for _, p := range paths {
		ents, err := os.ReadDir(p)
		if err != nil || len(ents) == 0 {
			t.Fatalf("shard root %s is empty (err=%v)", p, err)
		}
	}

	// Reopen with the same pinned paths.
	d2, err := OpenShardedAt(dir, paths)
	if err != nil {
		t.Fatal(err)
	}
	getAll(t, d2, keys)

	// Reopen with no paths at all: the v2 manifest supplies them.
	d3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	getAll(t, d3, keys)

	// A mismatched path is refused, naming the offender.
	bad := []string{paths[0], filepath.Join(t.TempDir(), "vol-elsewhere")}
	if _, err := OpenShardedAt(dir, bad); err == nil {
		t.Fatal("mismatched shard path accepted")
	} else if !strings.Contains(err.Error(), paths[1]) || !strings.Contains(err.Error(), "pins shard") {
		t.Fatalf("refusal does not name the pinned path: %v", err)
	}
}

func TestOpenShardedAtRejectsRelativePaths(t *testing.T) {
	if _, err := OpenShardedAt(t.TempDir(), []string{"relative/shard"}); err == nil {
		t.Fatal("relative shard path accepted")
	}
	if _, err := OpenShardedAt(t.TempDir(), nil); err == nil {
		t.Fatal("empty shard path list accepted")
	}
}

// TestLegacyV1ManifestOpens: count-only manifests written before paths
// existed keep opening with the default in-dir layout.
func TestLegacyV1ManifestOpens(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "DEPOT"), []byte(`{"version":1,"shards":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenSharded(dir, 2)
	if err != nil {
		t.Fatalf("v1 manifest refused: %v", err)
	}
	keys := putN(t, d, 8)

	// shards=0 adopts the v1 layout too.
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	getAll(t, d2, keys)
	if got := len(d2.shards); got != 2 {
		t.Fatalf("adopted %d shards, want 2", got)
	}

	// The in-dir roots v1 implies.
	if _, err := os.Stat(filepath.Join(dir, "shard-001")); err != nil {
		t.Fatalf("v1 default shard root missing: %v", err)
	}
}

// TestCorruptManifestRefused: a manifest whose path list disagrees
// with its shard count cannot be trusted about anything.
func TestCorruptManifestRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "DEPOT"), []byte(`{"version":2,"shards":2,"paths":["/only-one"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	} else if !strings.Contains(err.Error(), "corrupt manifest") {
		t.Fatalf("err = %v", err)
	}
}

// TestPutPressureGC: with a policy armed, the Put crossing the byte
// threshold sweeps inline — and an idle depot (no further Puts) is
// never swept again.
func TestPutPressureGC(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Evict down to ~one artifact every 64 bytes written.
	d.SetGCPolicy(0, 16, 64)

	before := mGCPressure.Value()
	putN(t, d, 32) // ~10 bytes each: several threshold crossings
	sweeps := mGCPressure.Value() - before
	if sweeps < 1 {
		t.Fatal("no pressure sweep fired")
	}
	if got := d.Stats().Bytes; got > 64 {
		t.Fatalf("depot holds %d bytes after pressure sweeps; budget is 16", got)
	}

	// Disarm: writes stop sweeping.
	d.SetGCPolicy(0, 16, 0)
	before = mGCPressure.Value()
	putN(t, d, 32)
	if got := mGCPressure.Value() - before; got != 0 {
		t.Fatalf("disarmed policy swept %v times", got)
	}
}

// TestConcurrentFreshOpen: N goroutines racing Open on the same fresh
// directory must all succeed — a reader must never observe a
// truncated manifest mid-write (two mcheckworkers sharing one new
// depot volume start exactly this way).
func TestConcurrentFreshOpen(t *testing.T) {
	for round := 0; round < 20; round++ {
		dir := filepath.Join(t.TempDir(), "depot")
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			go func() {
				_, err := Open(dir)
				errs <- err
			}()
		}
		for g := 0; g < 8; g++ {
			if err := <-errs; err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
}
