package cover

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"flashmc/internal/engine"
)

func sampleCov(fn string) *engine.Coverage {
	return &engine.Coverage{
		SM: "wait_for_db", Fn: fn,
		Rules:    map[string]uint64{"race": 2, "start#0": 1},
		States:   map[string]uint64{"start": 3},
		Patterns: map[string]uint64{"race/alt0": 2},
		Conds:    map[string]uint64{"cond#0": 1},
		RuleSeconds: map[string]float64{
			"race": 0.001,
		},
		Elapsed: 2 * time.Millisecond,
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	s := NewSet()
	s.Record("buffer_race", sampleCov("h1"))
	s.Record("buffer_race", sampleCov("h2"))
	s.Record("buffer_race", &engine.Coverage{SM: "wait_for_db"}) // empty: dropped

	a := s.Snapshot()
	if a.Kind != Kind {
		t.Errorf("kind = %q", a.Kind)
	}
	c := a.Checkers["buffer_race"]
	if c == nil {
		t.Fatal("checker missing from snapshot")
	}
	if c.Runs != 2 || c.SM != "wait_for_db" {
		t.Errorf("runs/sm: %+v", c)
	}
	if c.Rules["race"] != 4 || c.States["start"] != 6 || c.Patterns["race/alt0"] != 4 || c.Conds["cond#0"] != 2 {
		t.Errorf("merged counts wrong: %+v", c)
	}

	// Snapshot is a deep copy.
	c.Rules["race"] = 99
	if s.Snapshot().Checkers["buffer_race"].Rules["race"] != 4 {
		t.Error("snapshot aliases internal state")
	}
}

func TestMergeOrderIndependence(t *testing.T) {
	// The same multiset of coverages must snapshot identically however
	// it is sharded across goroutines — the -j determinism property.
	covs := make([]*engine.Coverage, 40)
	rng := rand.New(rand.NewSource(7))
	for i := range covs {
		c := sampleCov("fn")
		c.Rules["race"] = uint64(rng.Intn(5) + 1)
		covs[i] = c
	}
	render := func(order []int, workers int) string {
		s := NewSet()
		var wg sync.WaitGroup
		per := (len(order) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > len(order) {
				hi = len(order)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(part []int) {
				defer wg.Done()
				for _, i := range part {
					s.Record("buffer_race", covs[i])
				}
			}(order[lo:hi])
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := s.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fwd := make([]int, len(covs))
	rev := make([]int, len(covs))
	for i := range covs {
		fwd[i] = i
		rev[i] = len(covs) - 1 - i
	}
	a := render(fwd, 1)
	b := render(rev, 8)
	if a != b {
		t.Errorf("snapshot depends on merge order:\n%s\nvs\n%s", a, b)
	}
}

func TestTimings(t *testing.T) {
	s := NewSet()
	slow := sampleCov("slow_fn")
	slow.Elapsed = 50 * time.Millisecond
	s.Record("buffer_race", sampleCov("h1"))
	s.Record("buffer_race", slow)
	s.Record("lock_check", sampleCov("h2"))

	ts := s.Timings()
	if len(ts) != 2 {
		t.Fatalf("timings: %+v", ts)
	}
	// Sorted by seconds descending: buffer_race saw the 50ms run.
	if ts[0].Checker != "buffer_race" {
		t.Errorf("order: %+v", ts)
	}
	if ts[0].SlowestFn != "slow_fn" || ts[0].SlowestSeconds < 0.05 {
		t.Errorf("slowest exemplar: %+v", ts[0])
	}
	if ts[0].Seconds <= 0 || ts[0].P95 <= 0 {
		t.Errorf("timing stats: %+v", ts[0])
	}
	rt, ok := ts[0].Rules["race"]
	if !ok || rt.Seconds <= 0 {
		t.Errorf("rule attribution: %+v", ts[0].Rules)
	}
}

func TestReplayedCoverageHasNoTiming(t *testing.T) {
	s := NewSet()
	cov := sampleCov("h1")
	cov.Elapsed = 0 // depot replay: counts only
	cov.RuleSeconds = nil
	s.Record("buffer_race", cov)
	ts := s.Timings()
	if len(ts) != 1 || ts[0].Seconds != 0 || ts[0].Runs != 1 {
		t.Errorf("replayed timing: %+v", ts)
	}
	if s.Snapshot().Checkers["buffer_race"].Rules["race"] != 2 {
		t.Error("replayed counts lost")
	}
}

func TestFired(t *testing.T) {
	s := NewSet()
	s.Record("buffer_race", sampleCov("h1"))
	got := s.Fired("buffer_race")
	if got["race"] != 2 || got["start#0"] != 1 {
		t.Errorf("fired: %v", got)
	}
	if s.Fired("nosuch") != nil {
		t.Error("unknown checker should return nil")
	}
	got["race"] = 99
	if s.Fired("buffer_race")["race"] != 2 {
		t.Error("Fired aliases internal state")
	}
}

func TestValidateRoundTrip(t *testing.T) {
	s := NewSet()
	s.Record("buffer_race", sampleCov("h1"))
	var buf bytes.Buffer
	if err := s.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := Validate(&buf)
	if err != nil {
		t.Fatalf("own artifact does not validate: %v", err)
	}
	if n != 1 {
		t.Errorf("checkers = %d", n)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"not json":    "garbage",
		"wrong kind":  `{"kind":"coverage/v9","checkers":{}}`,
		"null entry":  `{"kind":"coverage/v1","checkers":{"c":null}}`,
		"zero count":  `{"kind":"coverage/v1","checkers":{"c":{"runs":1,"rules":{"r":0}}}}`,
		"empty key":   `{"kind":"coverage/v1","checkers":{"c":{"runs":1,"rules":{"":1}}}}`,
		"orphan alt":  `{"kind":"coverage/v1","checkers":{"c":{"runs":1,"patterns":{"r/alt0":1}}}}`,
		"bad pattern": `{"kind":"coverage/v1","checkers":{"c":{"runs":1,"rules":{"r":1},"patterns":{"r":1}}}}`,
		"extra field": `{"kind":"coverage/v1","checkers":{},"when":"now"}`,
	}
	for name, input := range cases {
		if _, err := Validate(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Validate accepted %q", name, input)
		}
	}
}

func TestWriteTable(t *testing.T) {
	s := NewSet()
	s.Record("buffer_race", sampleCov("h1"))
	var buf bytes.Buffer
	s.Snapshot().WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"CHECKER", "buffer_race", "wait_for_db", "race=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestNilSetIsNoOp(t *testing.T) {
	var s *Set
	s.Record("c", sampleCov("h"))
	if s.Fired("c") != nil || s.Timings() != nil {
		t.Error("nil set leaked data")
	}
	if a := s.Snapshot(); a == nil || len(a.Checkers) != 0 {
		t.Errorf("nil snapshot: %+v", a)
	}
}
