// Package cover accumulates per-run engine.Coverage into per-checker
// totals: which rules, states, pattern alternatives and branch
// refinements of each checker ever fire, and where the wall time goes.
//
// The paper evaluates checkers by what they catch on the five FLASH
// protocols (Table 7); this package measures the complementary
// question — what each checker actually *exercises* — so a rule that
// lint considers live but that never fires anywhere can be flagged
// (the coverage-dead diagnostic in internal/lint) and slow checkers
// can be attributed to the rules that cost the time.
//
// A Set splits cleanly into two views. Snapshot() is the
// deterministic half: pure fire counts, byte-stable JSON (the
// "coverage/v1" artifact), identical across -j levels and warm/cold
// depot runs. Timings() is the live half: wall-time histograms with
// quantiles and a slowest-function exemplar per checker, never stored
// in artifacts because wall time is not reproducible.
package cover

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"flashmc/internal/engine"
	"flashmc/internal/obs"
)

// Kind identifies the coverage artifact schema.
const Kind = "coverage/v1"

// CheckerCov is one checker's merged dynamic coverage.
type CheckerCov struct {
	// SM is the state machine the checker runs (often but not always
	// the checker name — buffer_race runs wait_for_db).
	SM string `json:"sm,omitempty"`
	// Runs counts the non-empty per-function runs merged in.
	Runs uint64 `json:"runs"`
	// Rules, States, Patterns, Conds are summed fire counts keyed the
	// same way engine.Coverage keys them.
	Rules    map[string]uint64 `json:"rules,omitempty"`
	States   map[string]uint64 `json:"states,omitempty"`
	Patterns map[string]uint64 `json:"patterns,omitempty"`
	Conds    map[string]uint64 `json:"conds,omitempty"`
}

// Artifact is the serializable coverage snapshot. encoding/json sorts
// map keys, so marshaling an Artifact is deterministic for equal
// counts regardless of merge order.
type Artifact struct {
	Kind     string                 `json:"kind"`
	Checkers map[string]*CheckerCov `json:"checkers"`
}

// RuleTiming attributes wall time to one rule.
type RuleTiming struct {
	Seconds float64 `json:"seconds"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
}

// Timing is one checker's wall-time profile: where the analysis time
// went, and the single slowest function as a profiling entry point.
type Timing struct {
	Checker        string                `json:"checker"`
	Runs           uint64                `json:"runs"`
	Seconds        float64               `json:"seconds"`
	P50            float64               `json:"p50"`
	P95            float64               `json:"p95"`
	P99            float64               `json:"p99"`
	Rules          map[string]RuleTiming `json:"rules,omitempty"`
	SlowestFn      string                `json:"slowest_fn,omitempty"`
	SlowestSeconds float64               `json:"slowest_seconds,omitempty"`
}

// checkerAcc is the mutable accumulator behind one checker's entry.
type checkerAcc struct {
	cov       CheckerCov
	elapsed   *obs.Histogram // per-run wall time
	ruleHist  map[string]*obs.Histogram
	ruleSecs  map[string]float64
	slowFn    string
	slowSecs  float64
	anyTiming bool
}

// Set is a thread-safe coverage accumulator. The zero value is not
// usable; call NewSet.
type Set struct {
	mu       sync.Mutex
	checkers map[string]*checkerAcc
}

// NewSet returns an empty accumulator.
func NewSet() *Set {
	return &Set{checkers: map[string]*checkerAcc{}}
}

func addInto(dst *map[string]uint64, src map[string]uint64) {
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = map[string]uint64{}
	}
	for k, v := range src {
		(*dst)[k] += v
	}
}

// Record merges one run's coverage under the given checker id. Empty
// coverages are dropped entirely (they are also never stored in depot
// artifacts, which keeps warm and cold runs in lockstep). Counts
// merge additively, so the result is independent of recording order —
// the property the -j determinism gate tests.
func (s *Set) Record(checker string, cov *engine.Coverage) {
	if s == nil || cov.Empty() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	acc := s.checkers[checker]
	if acc == nil {
		acc = &checkerAcc{
			elapsed:  obs.MakeHistogram(nil),
			ruleHist: map[string]*obs.Histogram{},
			ruleSecs: map[string]float64{},
		}
		s.checkers[checker] = acc
	}
	if acc.cov.SM == "" {
		acc.cov.SM = cov.SM
	}
	acc.cov.Runs++
	addInto(&acc.cov.Rules, cov.Rules)
	addInto(&acc.cov.States, cov.States)
	addInto(&acc.cov.Patterns, cov.Patterns)
	addInto(&acc.cov.Conds, cov.Conds)

	// Timing is absent when the coverage was replayed from a depot
	// artifact; record only live measurements.
	if cov.Elapsed > 0 {
		acc.anyTiming = true
		secs := cov.Elapsed.Seconds()
		acc.elapsed.Observe(secs)
		if secs > acc.slowSecs {
			acc.slowSecs, acc.slowFn = secs, cov.Fn
		}
	}
	for rule, secs := range cov.RuleSeconds {
		acc.ruleSecs[rule] += secs
		h := acc.ruleHist[rule]
		if h == nil {
			h = obs.MakeHistogram(nil)
			acc.ruleHist[rule] = h
		}
		h.Observe(secs)
	}
}

// Snapshot returns the deterministic half of the set: merged fire
// counts per checker, as a coverage/v1 artifact. The maps are deep
// copies; the caller may mutate them.
func (s *Set) Snapshot() *Artifact {
	a := &Artifact{Kind: Kind, Checkers: map[string]*CheckerCov{}}
	if s == nil {
		return a
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, acc := range s.checkers {
		c := &CheckerCov{SM: acc.cov.SM, Runs: acc.cov.Runs}
		addInto(&c.Rules, acc.cov.Rules)
		addInto(&c.States, acc.cov.States)
		addInto(&c.Patterns, acc.cov.Patterns)
		addInto(&c.Conds, acc.cov.Conds)
		a.Checkers[name] = c
	}
	return a
}

// Fired returns a copy of the merged rule fire counts for one checker
// (nil when the checker never recorded anything). This is the join
// point for the lint coverage-dead cross-check.
func (s *Set) Fired(checker string) map[string]uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	acc := s.checkers[checker]
	if acc == nil {
		return nil
	}
	var out map[string]uint64
	addInto(&out, acc.cov.Rules)
	return out
}

// CondsFired is Fired for branch-condition rules.
func (s *Set) CondsFired(checker string) map[string]uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	acc := s.checkers[checker]
	if acc == nil {
		return nil
	}
	var out map[string]uint64
	addInto(&out, acc.cov.Conds)
	return out
}

// Timings returns the live half of the set: per-checker wall-time
// profiles sorted by total seconds descending (ties by name), rule
// attribution included. Checkers that only ever replayed depot
// coverage (no live timing) report zero seconds.
func (s *Set) Timings() []Timing {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Timing, 0, len(s.checkers))
	for name, acc := range s.checkers {
		t := Timing{
			Checker:        name,
			Runs:           acc.cov.Runs,
			SlowestFn:      acc.slowFn,
			SlowestSeconds: acc.slowSecs,
		}
		if acc.anyTiming {
			t.Seconds = acc.elapsed.Sum()
			t.P50 = acc.elapsed.Quantile(0.50)
			t.P95 = acc.elapsed.Quantile(0.95)
			t.P99 = acc.elapsed.Quantile(0.99)
		}
		if len(acc.ruleSecs) > 0 {
			t.Rules = map[string]RuleTiming{}
			for rule, secs := range acc.ruleSecs {
				h := acc.ruleHist[rule]
				t.Rules[rule] = RuleTiming{
					Seconds: secs,
					P50:     h.Quantile(0.50),
					P95:     h.Quantile(0.95),
					P99:     h.Quantile(0.99),
				}
			}
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Checker < out[j].Checker
	})
	return out
}

// WriteJSON writes the artifact as indented, deterministic JSON.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteTable renders the artifact as a human-readable coverage table:
// one line per checker, rules with fire counts sorted by key.
func (a *Artifact) WriteTable(w io.Writer) {
	names := make([]string, 0, len(a.Checkers))
	for n := range a.Checkers {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-16s %-14s %6s  %s\n", "CHECKER", "SM", "RUNS", "RULES FIRED")
	for _, n := range names {
		c := a.Checkers[n]
		rules := make([]string, 0, len(c.Rules))
		for r := range c.Rules {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		parts := make([]string, len(rules))
		for i, r := range rules {
			parts[i] = fmt.Sprintf("%s=%d", r, c.Rules[r])
		}
		fired := "-"
		if len(parts) > 0 {
			fired = ""
			for i, p := range parts {
				if i > 0 {
					fired += " "
				}
				fired += p
			}
		}
		sm := c.SM
		if sm == "" {
			sm = "-"
		}
		fmt.Fprintf(w, "%-16s %-14s %6d  %s\n", n, sm, c.Runs, fired)
	}
}

// Validate parses and checks a coverage artifact: the kind must be
// coverage/v1, every checker entry must have a non-empty name and
// positive counts, and every pattern alternative must belong to a
// fired rule. Returns the number of checker entries.
func Validate(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return 0, fmt.Errorf("coverage: %w", err)
	}
	if a.Kind != Kind {
		return 0, fmt.Errorf("coverage: kind %q, want %q", a.Kind, Kind)
	}
	for name, c := range a.Checkers {
		if name == "" {
			return 0, fmt.Errorf("coverage: empty checker name")
		}
		if c == nil {
			return 0, fmt.Errorf("coverage: checker %s: null entry", name)
		}
		for section, m := range map[string]map[string]uint64{
			"rules": c.Rules, "states": c.States,
			"patterns": c.Patterns, "conds": c.Conds,
		} {
			for k, v := range m {
				if k == "" {
					return 0, fmt.Errorf("coverage: checker %s: empty %s key", name, section)
				}
				if v == 0 {
					return 0, fmt.Errorf("coverage: checker %s: %s[%s] is zero (zero counts must be absent)", name, section, k)
				}
			}
		}
		for p := range c.Patterns {
			rule, ok := splitAlt(p)
			if !ok {
				return 0, fmt.Errorf("coverage: checker %s: malformed pattern key %q", name, p)
			}
			if c.Rules[rule] == 0 {
				return 0, fmt.Errorf("coverage: checker %s: pattern %q for unfired rule %q", name, p, rule)
			}
		}
	}
	return len(a.Checkers), nil
}

// splitAlt splits a "rule/altN" pattern key into its rule part.
func splitAlt(p string) (string, bool) {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			rest := p[i+1:]
			if len(rest) > 3 && rest[:3] == "alt" {
				return p[:i], true
			}
			return "", false
		}
	}
	return "", false
}
