package flash

import "flashmc/internal/cc/cpp"

// IncludesH is the flash-includes.h header every protocol file and
// metal prologue includes. It declares the MAGIC programming
// environment. Two deliberate choices mirror the paper's §11
// workarounds:
//
//   - message-length and has-data constants are extern const
//     *variables*, not #defines, so they survive to the AST where
//     patterns can see them ("we redefined the relevant macro
//     constants as variables");
//   - the handler macros are declared as function prototypes, so
//     invocations stay visible as calls instead of expanding.
const IncludesH = `#ifndef FLASH_INCLUDES_H
#define FLASH_INCLUDES_H

/* ---- basic protocol types ---- */
typedef unsigned long addr_t;
typedef unsigned long nodeid_t;

struct nh_s {
	unsigned len;
	unsigned type;
	unsigned dest;
	unsigned src;
};

struct header_s {
	struct nh_s nh;
	unsigned misc;
	unsigned swap;
};

extern struct header_s header;

/* Directory entry image loaded into MAGIC registers. */
struct dir_entry_s {
	unsigned state;
	unsigned vector;
	unsigned ptr;
	unsigned pending;
};

extern struct dir_entry_s dirent;

/* ---- message length / has-data constants (variables: see above) ---- */
extern const unsigned LEN_NODATA;
extern const unsigned LEN_WORD;
extern const unsigned LEN_CACHELINE;
extern const unsigned F_DATA;
extern const unsigned F_NODATA;
extern const unsigned MSG_NAK;
extern const unsigned BUFFER_ERROR;

/* ---- handler globals accessor ---- */
unsigned HANDLER_GLOBALS(unsigned field);

/* ---- data buffer interface ---- */
void WAIT_FOR_DB_FULL(unsigned addr);
unsigned MISCBUS_READ_DB(unsigned addr, unsigned buf);
unsigned OLD_MISCBUS_READ(unsigned addr);
unsigned MISCBUS_WRITE_DB(unsigned buf, unsigned val);
unsigned ALLOC_DB(void);
void DEC_DB_REF(unsigned buf);
void INC_DB_REF(unsigned buf); /* manual refcount bump: one legitimate
                                * use in all of FLASH (paper §11) */
void DEBUG_PRINT(unsigned val);

/* checker annotation functions (paper: has_buffer/no_free_needed) */
void has_buffer(void);
void no_free_needed(void);

/* ---- message sends ----
 * PI_SEND(hasdata, keep, swap, wait, dec, nofree)   lane 0
 * IO_SEND(hasdata, keep, swap, wait, dec, nofree)   lane 1
 * NI_SEND(type, hasdata, keep, wait, dec, nofree)   lane 2
 * NI_SEND_RPLY(type, hasdata, keep, wait, dec, nofree) lane 3
 */
void PI_SEND(unsigned hasdata, unsigned keep, unsigned swap,
             unsigned wait, unsigned dec, unsigned nofree);
void IO_SEND(unsigned hasdata, unsigned keep, unsigned swap,
             unsigned wait, unsigned dec, unsigned nofree);
void NI_SEND(unsigned type, unsigned hasdata, unsigned keep,
             unsigned wait, unsigned dec, unsigned nofree);
void NI_SEND_RPLY(unsigned type, unsigned hasdata, unsigned keep,
                  unsigned wait, unsigned dec, unsigned nofree);

/* lane space check: suspends until the lane has queue space */
void WAIT_FOR_SPACE(unsigned lane);

/* ---- send-wait pairing ---- */
void WAIT_FOR_PI_REPLY(void);
void WAIT_FOR_IO_REPLY(void);

/* ---- send-wait status registers (direct access breaks the
 * interface abstraction; the send-wait checker cannot see it) ---- */
extern volatile unsigned PI_STATUS_REG;
extern volatile unsigned IO_STATUS_REG;

/* ---- directory interface ---- */
extern unsigned dir_base; /* raw directory base: address arithmetic on
                           * it bypasses DIR_ADDR (abstraction error) */
unsigned DIR_ADDR(unsigned addr);
void DIR_LOAD(unsigned addr);
unsigned DIR_READ_STATE(void);
void DIR_SET_STATE(unsigned state);
void DIR_SET_VECTOR(unsigned vec);
void DIR_WRITEBACK(unsigned addr);

/* ---- simulation hooks and execution environment ---- */
void HANDLER_DEFS(void);
void HANDLER_PROLOGUE(unsigned id);
void SUBROUTINE_PROLOGUE(void);
void SET_STACKPTR(void);
void NO_STACK_DECL(void);

#endif /* FLASH_INCLUDES_H */
`

// HeaderSource returns a cpp.Source serving flash-includes.h, suitable
// for both metal prologues and protocol compilation.
func HeaderSource() cpp.MapSource {
	return cpp.MapSource{"flash-includes.h": IncludesH}
}
