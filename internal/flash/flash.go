// Package flash models the FLASH/MAGIC protocol-programming
// environment the checkers reason about: the macro vocabulary of the
// protocol code, handler classification, the four virtual network
// lanes, and the paper's published per-protocol results (as
// machine-readable expectations for the reproduction harness).
//
// The real FLASH sources are proprietary; package flashgen synthesizes
// protocol corpora against this vocabulary (see DESIGN.md §2 for the
// substitution argument).
package flash

// Protocol names in the order the paper's tables list them.
var ProtocolNames = []string{"bitvector", "dyn_ptr", "sci", "coma", "rac", "common"}

// Macro names of the FLASH programming environment. The checkers and
// the corpus generator share this vocabulary.
const (
	// Data-buffer synchronization (paper §4).
	MacroWaitForDBFull = "WAIT_FOR_DB_FULL"
	MacroMiscbusReadDB = "MISCBUS_READ_DB"

	// Message sends (paper §5). PI = processor interface, IO = I/O
	// subsystem, NI = network interface (request and reply lanes).
	MacroPISend     = "PI_SEND"
	MacroIOSend     = "IO_SEND"
	MacroNISend     = "NI_SEND"
	MacroNISendRply = "NI_SEND_RPLY"

	// Message-length constants (declared as extern const variables,
	// the paper's §11 workaround for constant folding).
	ConstLenNoData    = "LEN_NODATA"
	ConstLenWord      = "LEN_WORD"
	ConstLenCacheline = "LEN_CACHELINE"
	ConstFData        = "F_DATA"
	ConstFNoData      = "F_NODATA"

	// Buffer management (paper §6).
	MacroAllocDB        = "ALLOC_DB"
	MacroFreeDB         = "DEC_DB_REF"
	MacroIncDB          = "INC_DB_REF"
	MacroBufferError    = "BUFFER_ERROR"
	AnnotHasBuffer      = "has_buffer"
	AnnotNoFreeNeeded   = "no_free_needed"
	MacroHandlerGlobals = "HANDLER_GLOBALS"

	// Lane management (paper §7).
	MacroWaitForSpace = "WAIT_FOR_SPACE"

	// Send-wait pairing (paper §9).
	MacroWaitPIReply = "WAIT_FOR_PI_REPLY"
	MacroWaitIOReply = "WAIT_FOR_IO_REPLY"

	// Directory management (paper §9).
	MacroDirLoad      = "DIR_LOAD"
	MacroDirWriteback = "DIR_WRITEBACK"
	MacroDirSetState  = "DIR_SET_STATE"
	MacroDirSetVector = "DIR_SET_VECTOR"
	MacroDirRead      = "DIR_READ_STATE"
	ConstNakReply     = "MSG_NAK"

	// Execution restrictions (paper §8).
	MacroHandlerDefs     = "HANDLER_DEFS"
	MacroHandlerPrologue = "HANDLER_PROLOGUE"
	MacroSubrPrologue    = "SUBROUTINE_PROLOGUE"
	MacroSetStackPtr     = "SET_STACKPTR"
	MacroNoStackDecl     = "NO_STACK_DECL"
	MacroDeprecatedOp    = "OLD_MISCBUS_READ" // deprecated legacy macro
)

// NumLanes is the number of virtual network lanes (paper §7).
const NumLanes = 4

// LaneVector is a per-lane send count.
type LaneVector [NumLanes]int

// Add returns v with lane incremented.
func (v LaneVector) Add(lane int) LaneVector {
	v[lane]++
	return v
}

// Max returns the component-wise maximum of two vectors.
func (v LaneVector) Max(o LaneVector) LaneVector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Exceeds reports the first lane on which v exceeds the allowance, or
// -1 if none does.
func (v LaneVector) Exceeds(allow LaneVector) int {
	for i := range v {
		if v[i] > allow[i] {
			return i
		}
	}
	return -1
}

// LaneOfSend maps a send macro name to the lane it transmits on, or -1
// for non-send names. The mapping is the protocol convention used by
// the synthetic corpus: processor-interface sends use lane 0, I/O
// sends lane 1, network requests lane 2, network replies lane 3.
func LaneOfSend(macro string) int {
	switch macro {
	case MacroPISend:
		return 0
	case MacroIOSend:
		return 1
	case MacroNISend:
		return 2
	case MacroNISendRply:
		return 3
	}
	return -1
}

// SendMacros lists all message-send macro names.
var SendMacros = []string{MacroPISend, MacroIOSend, MacroNISend, MacroNISendRply}

// HandlerKind classifies protocol routines (paper §6: hardware
// handlers start owning a data buffer, software handlers start
// without one; everything else is a subroutine).
type HandlerKind int

// Handler kinds.
const (
	Subroutine HandlerKind = iota
	HardwareHandler
	SoftwareHandler
)

func (k HandlerKind) String() string {
	switch k {
	case HardwareHandler:
		return "hardware handler"
	case SoftwareHandler:
		return "software handler"
	}
	return "subroutine"
}

// ClassifyName implements the corpus naming convention: hardware
// handlers are named h_<...>, software handlers sw_<...>. The real
// FLASH build extracted the hardware list from the protocol
// specification; the spec-driven path is Spec.Classify.
func ClassifyName(fn string) HandlerKind {
	switch {
	case len(fn) > 2 && fn[:2] == "h_":
		return HardwareHandler
	case len(fn) > 3 && fn[:3] == "sw_":
		return SoftwareHandler
	}
	return Subroutine
}

// Spec is the protocol specification a FLASH protocol designer
// supplies: the handler inventory and per-handler lane allowances
// (paper §7: "a protocol-writer supplied list of each handler's lane
// allowances").
type Spec struct {
	Protocol string
	// Hardware and Software list handler names.
	Hardware []string
	Software []string
	// Allowance gives each handler's per-lane send quota.
	Allowance map[string]LaneVector
	// NoStack lists handlers that assert they run without a stack.
	NoStack map[string]bool
	// BufferFreeFns lists subroutines that consume (free) the current
	// buffer; BufferUseFns lists subroutines that require a live
	// buffer (paper §6's two tables).
	BufferFreeFns map[string]bool
	BufferUseFns  map[string]bool
	// CondFreeFns lists subroutines returning 1 when they freed the
	// buffer and 0 otherwise (paper §6's value-sensitivity list).
	CondFreeFns map[string]bool
	// DirWritebackFns lists subroutines that write back the directory
	// entry on behalf of their caller (paper §9).
	DirWritebackFns map[string]bool
}

// Classify returns fn's kind under this spec, falling back to the
// naming convention for routines the spec does not mention.
func (s *Spec) Classify(fn string) HandlerKind {
	for _, h := range s.Hardware {
		if h == fn {
			return HardwareHandler
		}
	}
	for _, h := range s.Software {
		if h == fn {
			return SoftwareHandler
		}
	}
	return ClassifyName(fn)
}

// IsHandler reports whether fn is any kind of handler under the spec.
func (s *Spec) IsHandler(fn string) bool {
	return s.Classify(fn) != Subroutine
}
