package flash

// This file transcribes the paper's published results (Tables 1-7 and
// the §7 lane-checker results) as machine-readable data. The corpus
// generator seeds defects to these counts and the reproduction harness
// asserts the checkers recover them exactly; EXPERIMENTS.md records
// paper-vs-measured for every row.

// Counts maps protocol name -> count.
type Counts map[string]int

// Total sums a Counts row.
func (c Counts) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// Table1Row holds one protocol's size statistics.
type Table1Row struct {
	LOC    int
	Paths  int
	AvgLen int
	MaxLen int
}

// Table1 is "Protocol size as measured by lines of code (LOC), the
// number of unique paths ... average length of all paths ... and the
// maximum length of any path."
var Table1 = map[string]Table1Row{
	"bitvector": {LOC: 10386, Paths: 486, AvgLen: 87, MaxLen: 563},
	"dyn_ptr":   {LOC: 18438, Paths: 2322, AvgLen: 135, MaxLen: 399},
	"sci":       {LOC: 11473, Paths: 1051, AvgLen: 73, MaxLen: 330},
	"coma":      {LOC: 17031, Paths: 1131, AvgLen: 135, MaxLen: 244},
	"rac":       {LOC: 14396, Paths: 1364, AvgLen: 133, MaxLen: 516},
	"common":    {LOC: 8783, Paths: 1165, AvgLen: 183, MaxLen: 461},
}

// CheckTable groups the three standard columns of a per-checker table.
type CheckTable struct {
	Errors   Counts
	FalsePos Counts
	Applied  Counts
}

// Table2 is the buffer fill race-condition checker (paper §4).
var Table2 = CheckTable{
	Errors:   Counts{"bitvector": 4, "dyn_ptr": 0, "sci": 0, "coma": 0, "rac": 0, "common": 0},
	FalsePos: Counts{"bitvector": 0, "dyn_ptr": 0, "sci": 0, "coma": 0, "rac": 0, "common": 1},
	Applied:  Counts{"bitvector": 14, "dyn_ptr": 16, "sci": 2, "coma": 0, "rac": 10, "common": 17},
}

// Table3 is the message-length consistency checker (paper §5).
var Table3 = CheckTable{
	Errors:   Counts{"bitvector": 3, "dyn_ptr": 7, "sci": 0, "coma": 0, "rac": 8, "common": 0},
	FalsePos: Counts{"bitvector": 0, "dyn_ptr": 0, "sci": 0, "coma": 2, "rac": 0, "common": 0},
	Applied:  Counts{"bitvector": 205, "dyn_ptr": 316, "sci": 308, "coma": 302, "rac": 346, "common": 73},
}

// Table4 is the buffer-management checker (paper §6). Minor counts
// abstraction errors / unreachable-handler bugs / harmless violations;
// Useful and Useless count annotations.
var Table4 = struct {
	Errors  Counts
	Minor   Counts
	Useful  Counts
	Useless Counts
}{
	Errors:  Counts{"dyn_ptr": 2, "bitvector": 2, "sci": 3, "coma": 0, "rac": 2, "common": 0},
	Minor:   Counts{"dyn_ptr": 2, "bitvector": 1, "sci": 2, "coma": 0, "rac": 0, "common": 1},
	Useful:  Counts{"dyn_ptr": 3, "bitvector": 0, "sci": 10, "coma": 0, "rac": 2, "common": 3},
	Useless: Counts{"dyn_ptr": 3, "bitvector": 1, "sci": 10, "coma": 0, "rac": 4, "common": 7},
}

// LanesResults is the §7 deadlock-lane checker: one serious bug each
// in dyn_ptr and bitvector, no false positives.
var LanesResults = struct {
	Errors   Counts
	FalsePos Counts
}{
	Errors:   Counts{"dyn_ptr": 1, "bitvector": 1, "sci": 0, "coma": 0, "rac": 0, "common": 0},
	FalsePos: Counts{"dyn_ptr": 0, "bitvector": 0, "sci": 0, "coma": 0, "rac": 0, "common": 0},
}

// Table5 is the execution-restriction checker (paper §8): violations
// are simulator-hook omissions; Handlers/Vars give the number of
// routines and variables examined.
var Table5 = struct {
	Violations Counts
	Handlers   Counts
	Vars       Counts
}{
	Violations: Counts{"dyn_ptr": 4, "bitvector": 2, "sci": 0, "coma": 3, "rac": 2, "common": 0},
	Handlers:   Counts{"dyn_ptr": 227, "bitvector": 168, "sci": 214, "coma": 193, "rac": 200, "common": 62},
	Vars:       Counts{"dyn_ptr": 768, "bitvector": 489, "sci": 794, "coma": 648, "rac": 668, "common": 398},
}

// Table6 covers the three less effective checks (paper §9).
var Table6 = struct {
	BufferAlloc CheckTable
	Directory   CheckTable
	SendWait    CheckTable
}{
	BufferAlloc: CheckTable{
		Errors:   Counts{"bitvector": 0, "dyn_ptr": 0, "sci": 0, "coma": 0, "rac": 0, "common": 0},
		FalsePos: Counts{"bitvector": 0, "dyn_ptr": 2, "sci": 0, "coma": 0, "rac": 0, "common": 0},
		Applied:  Counts{"bitvector": 17, "dyn_ptr": 19, "sci": 5, "coma": 32, "rac": 20, "common": 4},
	},
	Directory: CheckTable{
		// "The directory entry check found 1 bug in bitvector."
		Errors:   Counts{"bitvector": 1, "dyn_ptr": 0, "sci": 0, "coma": 0, "rac": 0, "common": 0},
		FalsePos: Counts{"bitvector": 3, "dyn_ptr": 13, "sci": 1, "coma": 5, "rac": 9, "common": 0},
		Applied:  Counts{"bitvector": 214, "dyn_ptr": 382, "sci": 88, "coma": 659, "rac": 424, "common": 1},
	},
	SendWait: CheckTable{
		Errors:   Counts{"bitvector": 0, "dyn_ptr": 0, "sci": 0, "coma": 0, "rac": 0, "common": 0},
		FalsePos: Counts{"bitvector": 2, "dyn_ptr": 2, "sci": 0, "coma": 0, "rac": 2, "common": 2},
		Applied:  Counts{"bitvector": 32, "dyn_ptr": 38, "sci": 11, "coma": 7, "rac": 35, "common": 2},
	},
}

// Table7Row is one summary line of Table 7.
type Table7Row struct {
	Checker  string
	LOC      int
	Err      int
	FalsePos int
}

// Table7 is the whole-paper summary.
var Table7 = []Table7Row{
	{"Buffer management", 94, 9, 25},
	{"Message length", 29, 18, 2},
	{"Lanes", 220, 2, 0},
	{"Buffer race", 12, 4, 1},
	{"Buffer allocation", 16, 0, 2},
	{"Directory management", 51, 1, 31},
	{"Send-wait", 40, 0, 8},
	{"Execution-restriction", 84, 0, 0},
	{"No-float", 7, 0, 0},
}

// Table7Totals are the published totals: 553 LOC of checkers, 34
// errors, 69 false positives.
var Table7Totals = Table7Row{"Total", 553, 34, 69}
