package flash

import (
	"testing"
	"testing/quick"
)

func TestLaneOfSend(t *testing.T) {
	cases := map[string]int{
		MacroPISend:     0,
		MacroIOSend:     1,
		MacroNISend:     2,
		MacroNISendRply: 3,
		"DEC_DB_REF":    -1,
		"not_a_send":    -1,
	}
	for macro, want := range cases {
		if got := LaneOfSend(macro); got != want {
			t.Errorf("LaneOfSend(%s) = %d want %d", macro, got, want)
		}
	}
	for _, m := range SendMacros {
		if LaneOfSend(m) < 0 {
			t.Errorf("send macro %s has no lane", m)
		}
	}
}

func TestLaneVectorOps(t *testing.T) {
	var v LaneVector
	v = v.Add(2).Add(2).Add(0)
	if v != (LaneVector{1, 0, 2, 0}) {
		t.Errorf("v = %v", v)
	}
	m := v.Max(LaneVector{0, 3, 1, 0})
	if m != (LaneVector{1, 3, 2, 0}) {
		t.Errorf("max = %v", m)
	}
	if lane := v.Exceeds(LaneVector{1, 0, 2, 0}); lane != -1 {
		t.Errorf("exceeds within allowance: lane %d", lane)
	}
	if lane := v.Exceeds(LaneVector{1, 0, 1, 0}); lane != 2 {
		t.Errorf("exceeds = %d want 2", lane)
	}
}

// Property: Max is commutative, idempotent, and bounds both inputs.
func TestLaneVectorMaxProperty(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint8) bool {
		a := LaneVector{int(a0 % 8), int(a1 % 8), int(a2 % 8), int(a3 % 8)}
		b := LaneVector{int(b0 % 8), int(b1 % 8), int(b2 % 8), int(b3 % 8)}
		m := a.Max(b)
		if m != b.Max(a) || m != m.Max(m) {
			return false
		}
		return a.Exceeds(m) == -1 && b.Exceeds(m) == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClassifyName(t *testing.T) {
	cases := map[string]HandlerKind{
		"h_local_get":    HardwareHandler,
		"sw_flush_task":  SoftwareHandler,
		"helper":         Subroutine,
		"h_":             Subroutine, // prefix alone is not a handler name
		"sw_":            Subroutine,
		"handle_message": Subroutine, // no underscore-delimited prefix
	}
	for name, want := range cases {
		if got := ClassifyName(name); got != want {
			t.Errorf("ClassifyName(%q) = %v want %v", name, got, want)
		}
	}
}

func TestSpecClassifyOverridesConvention(t *testing.T) {
	s := &Spec{
		Hardware: []string{"odd_name"},
		Software: []string{"another"},
	}
	if s.Classify("odd_name") != HardwareHandler {
		t.Error("spec hardware list ignored")
	}
	if s.Classify("another") != SoftwareHandler {
		t.Error("spec software list ignored")
	}
	if s.Classify("h_by_convention") != HardwareHandler {
		t.Error("convention fallback lost")
	}
	if !s.IsHandler("odd_name") || s.IsHandler("plain") {
		t.Error("IsHandler")
	}
}

func TestPaperTableTotals(t *testing.T) {
	// Internal consistency of the transcribed data against the paper's
	// published totals.
	if got := Table2.Errors.Total(); got != 4 {
		t.Errorf("Table2 errors total %d", got)
	}
	if got := Table2.Applied.Total(); got != 59 {
		t.Errorf("Table2 applied total %d", got)
	}
	if got := Table3.Errors.Total(); got != 18 {
		t.Errorf("Table3 errors total %d", got)
	}
	if got := Table3.Applied.Total(); got != 1550 {
		t.Errorf("Table3 applied total %d", got)
	}
	if got := Table4.Errors.Total(); got != 9 {
		t.Errorf("Table4 errors total %d", got)
	}
	if got := Table4.Useful.Total(); got != 18 {
		t.Errorf("Table4 useful total %d", got)
	}
	if got := Table4.Useless.Total(); got != 25 {
		t.Errorf("Table4 useless total %d", got)
	}
	if got := Table5.Violations.Total(); got != 11 {
		t.Errorf("Table5 violations total %d", got)
	}
	if got := Table5.Handlers.Total(); got != 1064 {
		t.Errorf("Table5 handlers total %d", got)
	}
	if got := Table5.Vars.Total(); got != 3765 {
		t.Errorf("Table5 vars total %d", got)
	}
	if got := Table6.BufferAlloc.Applied.Total(); got != 97 {
		t.Errorf("Table6 alloc applied total %d", got)
	}
	if got := Table6.Directory.Applied.Total(); got != 1768 {
		t.Errorf("Table6 directory applied total %d", got)
	}
	if got := Table6.SendWait.Applied.Total(); got != 125 {
		t.Errorf("Table6 send-wait applied total %d", got)
	}

	// Table 7 columns must sum to the published totals.
	var loc, errs, fps int
	for _, row := range Table7 {
		loc += row.LOC
		errs += row.Err
		fps += row.FalsePos
	}
	if loc != Table7Totals.LOC || errs != Table7Totals.Err || fps != Table7Totals.FalsePos {
		t.Errorf("Table7 sums %d/%d/%d vs published %d/%d/%d",
			loc, errs, fps, Table7Totals.LOC, Table7Totals.Err, Table7Totals.FalsePos)
	}

	// Cross-table: Table 7's per-checker error counts match the
	// per-protocol tables.
	if Table7[1].Err != Table3.Errors.Total() { // message length
		t.Error("Table7 vs Table3 mismatch")
	}
	if Table7[3].Err != Table2.Errors.Total() { // buffer race
		t.Error("Table7 vs Table2 mismatch")
	}
	if Table7[0].Err != Table4.Errors.Total() { // buffer management
		t.Error("Table7 vs Table4 mismatch")
	}
	if Table7[2].Err != LanesResults.Errors.Total() { // lanes
		t.Error("Table7 vs lanes mismatch")
	}
}

func TestProtocolNamesCoverAllTables(t *testing.T) {
	for _, name := range ProtocolNames {
		if _, ok := Table1[name]; !ok {
			t.Errorf("Table1 missing %s", name)
		}
		for _, c := range []Counts{Table2.Errors, Table3.Applied,
			Table4.Useless, Table5.Handlers, Table6.Directory.FalsePos} {
			if _, ok := c[name]; !ok {
				t.Errorf("a table is missing protocol %s", name)
			}
		}
	}
}
