// Package paper reproduces the evaluation of the paper: each table and
// figure has a driver that generates the synthetic corpus, runs the
// corresponding checker(s), joins the reports against the generator's
// ground-truth manifest, and renders a paper-vs-measured comparison.
//
// Scoring is strict by construction: every checker report must land on
// a seeded manifest site (same checker, file and line) and every
// seeded report-class site must be hit. Any unmatched report or missed
// site is surfaced in Score and fails the reproduction tests, so the
// published numbers cannot drift silently.
package paper

import (
	"fmt"

	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
)

// Corpus bundles the generated protocols with their loaded programs.
type Corpus struct {
	Gen      *flashgen.Corpus
	Programs map[string]*core.Program
}

// LoadCorpus generates and loads the whole corpus.
func LoadCorpus(opts flashgen.Options) (*Corpus, error) {
	gen := flashgen.Generate(opts)
	c := &Corpus{Gen: gen, Programs: map[string]*core.Program{}}
	for _, p := range gen.Protocols {
		prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", p.Name, err)
		}
		if len(prog.ParseErrors) > 0 {
			return nil, fmt.Errorf("load %s: %v", p.Name, prog.ParseErrors[0])
		}
		c.Programs[p.Name] = prog
	}
	return c, nil
}

// Score is the outcome of joining one checker's reports with one
// protocol's manifest.
type Score struct {
	Errors     int
	FalsePos   int
	Minor      int
	Violations int
	Warnings   int
	// Unmatched lists reports that hit no manifest site (reproduction
	// failures).
	Unmatched []engine.Report
	// Missed lists report-class sites no report landed on.
	Missed []flashgen.Site
}

// reportClasses are the manifest classes that correspond to checker
// reports (annotations, by contrast, suppress reports).
func isReportClass(c flashgen.Class) bool {
	switch c {
	case flashgen.ClassError, flashgen.ClassFalsePos, flashgen.ClassMinor,
		flashgen.ClassViolation, flashgen.ClassWarning:
		return true
	}
	return false
}

// ScoreChecker joins reports from one checker against the manifest.
func ScoreChecker(proto *flashgen.Protocol, checker string, reports []engine.Report) Score {
	type key struct {
		file string
		line int
	}
	sites := map[key]flashgen.Site{}
	for _, s := range proto.Manifest {
		if s.Checker == checker && isReportClass(s.Class) {
			sites[key{s.File, s.Line}] = s
		}
	}
	var sc Score
	hit := map[key]bool{}
	for _, r := range reports {
		k := key{r.Pos.File, r.Pos.Line}
		s, ok := sites[k]
		if !ok {
			sc.Unmatched = append(sc.Unmatched, r)
			continue
		}
		if hit[k] {
			continue // several configurations reporting one site count once
		}
		hit[k] = true
		switch s.Class {
		case flashgen.ClassError:
			sc.Errors++
		case flashgen.ClassFalsePos:
			sc.FalsePos++
		case flashgen.ClassMinor:
			sc.Minor++
		case flashgen.ClassViolation:
			sc.Violations++
		case flashgen.ClassWarning:
			sc.Warnings++
		}
	}
	for k, s := range sites {
		if !hit[k] {
			sc.Missed = append(sc.Missed, s)
		}
	}
	return sc
}

// AnnotationCount tallies manifest annotation sites of one class.
func AnnotationCount(proto *flashgen.Protocol, checker string, class flashgen.Class) int {
	n := 0
	for _, s := range proto.Manifest {
		if s.Checker == checker && s.Class == class {
			n++
		}
	}
	return n
}

// RunChecker executes one checker over one protocol.
func (c *Corpus) RunChecker(chk interface {
	Check(p *core.Program, spec *flash.Spec) []engine.Report
}, name string) map[string][]engine.Report {
	out := map[string][]engine.Report{}
	for _, p := range c.Gen.Protocols {
		out[p.Name] = chk.Check(c.Programs[p.Name], p.Spec)
	}
	return out
}
