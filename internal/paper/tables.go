package paper

import (
	"fmt"
	"sort"
	"strings"

	"flashmc/internal/checkers"
	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
	"flashmc/internal/paths"
)

// Row is one rendered comparison cell set: measured values per
// protocol for one metric.
type Row map[string]int

// CheckerResult captures one checker's per-protocol outcome.
type CheckerResult struct {
	Checker  string
	Errors   Row
	FalsePos Row
	Minor    Row
	Applied  Row
	Scores   map[string]Score
}

// runScored runs a checker across the corpus and scores it.
func (c *Corpus) runScored(chk checkers.Checker) CheckerResult {
	res := CheckerResult{
		Checker:  chk.Name(),
		Errors:   Row{},
		FalsePos: Row{},
		Minor:    Row{},
		Applied:  Row{},
		Scores:   map[string]Score{},
	}
	for _, p := range c.Gen.Protocols {
		prog := c.Programs[p.Name]
		reports := chk.Check(prog, p.Spec)
		sc := ScoreChecker(p, chk.Name(), reports)
		res.Scores[p.Name] = sc
		res.Errors[p.Name] = sc.Errors
		res.FalsePos[p.Name] = sc.FalsePos
		res.Minor[p.Name] = sc.Minor
		res.Applied[p.Name] = chk.Applied(prog)
	}
	return res
}

// Problems returns human-readable reproduction failures (unmatched
// reports or missed sites) across protocols.
func (r CheckerResult) Problems() []string {
	var out []string
	names := make([]string, 0, len(r.Scores))
	for n := range r.Scores {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sc := r.Scores[n]
		for _, u := range sc.Unmatched {
			out = append(out, fmt.Sprintf("%s: unmatched report %s", n, u))
		}
		for _, m := range sc.Missed {
			out = append(out, fmt.Sprintf("%s: missed site %s %s:%d (%s)", n, m.Checker, m.File, m.Line, m.Note))
		}
	}
	return out
}

// Table1Result holds measured protocol-size statistics.
type Table1Result struct {
	LOC    Row
	Paths  Row
	AvgLen Row
	MaxLen Row
}

// Table1 measures protocol sizes: LOC from the sources, path counts
// and lengths from the CFG dynamic program.
func (c *Corpus) Table1() Table1Result {
	res := Table1Result{LOC: Row{}, Paths: Row{}, AvgLen: Row{}, MaxLen: Row{}}
	for _, p := range c.Gen.Protocols {
		prog := c.Programs[p.Name]
		res.LOC[p.Name] = prog.SourceLOC
		var total, max int64
		var sumLen float64
		for _, g := range prog.Graphs {
			st := paths.Analyze(g)
			total += st.Count
			sumLen += st.AvgLen * float64(st.Count)
			if st.MaxLen > max {
				max = st.MaxLen
			}
		}
		res.Paths[p.Name] = int(total)
		if total > 0 {
			res.AvgLen[p.Name] = int(sumLen / float64(total))
		}
		res.MaxLen[p.Name] = int(max)
	}
	return res
}

// Table2 reproduces the buffer race checker results.
func (c *Corpus) Table2() CheckerResult { return c.runScored(checkers.NewBufferRace()) }

// Table3 reproduces the message length checker results.
func (c *Corpus) Table3() CheckerResult { return c.runScored(checkers.NewMsglen()) }

// Table4Result extends the buffer-management scoring with annotation
// counts.
type Table4Result struct {
	CheckerResult
	Useful  Row
	Useless Row
}

// Table4 reproduces the buffer management checker results.
func (c *Corpus) Table4() Table4Result {
	res := Table4Result{CheckerResult: c.runScored(checkers.NewBufferMgmt()),
		Useful: Row{}, Useless: Row{}}
	for _, p := range c.Gen.Protocols {
		res.Useful[p.Name] = AnnotationCount(p, "buffer_mgmt", flashgen.ClassUseful)
		res.Useless[p.Name] = AnnotationCount(p, "buffer_mgmt", flashgen.ClassUseless)
	}
	return res
}

// Lanes reproduces the §7 deadlock checker results.
func (c *Corpus) Lanes() CheckerResult { return c.runScored(checkers.NewLanes()) }

// Table5Result holds execution-restriction results.
type Table5Result struct {
	CheckerResult
	Handlers Row
	Vars     Row
}

// Table5 reproduces the execution-restriction results. Violations are
// the hook omissions; Handlers/Vars are the examined counts.
func (c *Corpus) Table5() Table5Result {
	res := Table5Result{CheckerResult: c.runScored(checkers.NewExecRestrict()),
		Handlers: Row{}, Vars: Row{}}
	for _, p := range c.Gen.Protocols {
		h, v := checkers.ExecStats(c.Programs[p.Name])
		res.Handlers[p.Name] = h
		res.Vars[p.Name] = v
	}
	return res
}

// Table6Result groups the three §9 checkers.
type Table6Result struct {
	BufferAlloc CheckerResult
	Directory   CheckerResult
	SendWait    CheckerResult
}

// Table6 reproduces the three less-effective checkers.
func (c *Corpus) Table6() Table6Result {
	return Table6Result{
		BufferAlloc: c.runScored(checkers.NewAllocCheck()),
		Directory:   c.runScored(checkers.NewDirectory()),
		SendWait:    c.runScored(checkers.NewSendWait()),
	}
}

// Table7Row is one line of the summary.
type Table7Row struct {
	Checker  string
	LOC      int
	Err      int
	FalsePos int
}

// Table7 reproduces the whole-paper summary by running every checker.
// The Err/FalsePos accounting follows the paper: Table 4's annotation
// counts are the buffer-management false positives, and exec/no-float
// contribute no errors (hook omissions are "violations").
func (c *Corpus) Table7() []Table7Row {
	t2 := c.Table2()
	t3 := c.Table3()
	t4 := c.Table4()
	lanes := c.Lanes()
	t6 := c.Table6()

	sum := func(r Row) int {
		t := 0
		for _, v := range r {
			t += v
		}
		return t
	}
	return []Table7Row{
		{"Buffer management", checkers.NewBufferMgmt().LOC(), sum(t4.Errors), sum(t4.Useless)},
		{"Message length", checkers.NewMsglen().LOC(), sum(t3.Errors), sum(t3.FalsePos)},
		{"Lanes", checkers.NewLanes().LOC(), sum(lanes.Errors), sum(lanes.FalsePos)},
		{"Buffer race", checkers.NewBufferRace().LOC(), sum(t2.Errors), sum(t2.FalsePos)},
		{"Buffer allocation", checkers.NewAllocCheck().LOC(), sum(t6.BufferAlloc.Errors), sum(t6.BufferAlloc.FalsePos)},
		{"Directory management", checkers.NewDirectory().LOC(), sum(t6.Directory.Errors), sum(t6.Directory.FalsePos)},
		{"Send-wait", checkers.NewSendWait().LOC(), sum(t6.SendWait.Errors), sum(t6.SendWait.FalsePos)},
		{"Execution-restriction", checkers.NewExecRestrict().LOC(), 0, 0},
		{"No-float", checkers.NewNoFloat().LOC(), 0, 0},
	}
}

// --- rendering ---

// order is the canonical protocol column order.
var order = flash.ProtocolNames

// RenderCompare renders a two-line paper-vs-measured block for one
// metric.
func RenderCompare(title string, paperRow flash.Counts, measured Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", title)
	for _, p := range order {
		fmt.Fprintf(&b, " %10s", p[:min(len(p), 10)])
	}
	b.WriteString("      total\n")
	fmt.Fprintf(&b, "%-28s", "  paper")
	tp := 0
	for _, p := range order {
		fmt.Fprintf(&b, " %10d", paperRow[p])
		tp += paperRow[p]
	}
	fmt.Fprintf(&b, " %10d\n", tp)
	fmt.Fprintf(&b, "%-28s", "  measured")
	tm := 0
	for _, p := range order {
		fmt.Fprintf(&b, " %10d", measured[p])
		tm += measured[p]
	}
	fmt.Fprintf(&b, " %10d\n", tm)
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
