package paper

import (
	"sync"
	"testing"

	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
)

var (
	corpusOnce sync.Once
	corpus     *Corpus
	corpusErr  error
)

func flashgenOpts(seed int64) flashgen.Options {
	return flashgen.Options{Seed: seed}
}

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		corpus, corpusErr = LoadCorpus(flashgen.Options{Seed: 1})
	})
	if corpusErr != nil {
		t.Fatalf("corpus: %v", corpusErr)
	}
	return corpus
}

// assertRow checks measured == paper for every protocol.
func assertRow(t *testing.T, what string, paperRow flash.Counts, measured Row) {
	t.Helper()
	for _, p := range flash.ProtocolNames {
		if measured[p] != paperRow[p] {
			t.Errorf("%s[%s]: measured %d, paper %d", what, p, measured[p], paperRow[p])
		}
	}
}

func assertClean(t *testing.T, res CheckerResult) {
	t.Helper()
	for _, pr := range res.Problems() {
		t.Errorf("%s: %s", res.Checker, pr)
	}
}

func TestTable1Shape(t *testing.T) {
	c := testCorpus(t)
	res := c.Table1()
	for _, p := range flash.ProtocolNames {
		want := flash.Table1[p]
		if res.LOC[p] < want.LOC*85/100 || res.LOC[p] > want.LOC*115/100 {
			t.Errorf("LOC[%s] = %d vs paper %d (>15%%)", p, res.LOC[p], want.LOC)
		}
		// Path statistics must land in the same order of magnitude as
		// the paper's; shape, not identity, is the claim here.
		if res.Paths[p] < want.Paths/4 || res.Paths[p] > want.Paths*4 {
			t.Errorf("Paths[%s] = %d vs paper %d (outside 4x band)", p, res.Paths[p], want.Paths)
		}
		if res.MaxLen[p] < want.MaxLen*60/100 {
			t.Errorf("MaxLen[%s] = %d vs paper %d", p, res.MaxLen[p], want.MaxLen)
		}
		if res.AvgLen[p] < want.AvgLen/4 || res.AvgLen[p] > want.AvgLen*4 {
			t.Errorf("AvgLen[%s] = %d vs paper %d (outside 4x band)", p, res.AvgLen[p], want.AvgLen)
		}
	}
}

func TestTable2(t *testing.T) {
	c := testCorpus(t)
	res := c.Table2()
	assertClean(t, res)
	assertRow(t, "race errors", flash.Table2.Errors, res.Errors)
	assertRow(t, "race false positives", flash.Table2.FalsePos, res.FalsePos)
	assertRow(t, "race applied", flash.Table2.Applied, res.Applied)
}

func TestTable3(t *testing.T) {
	c := testCorpus(t)
	res := c.Table3()
	assertClean(t, res)
	assertRow(t, "msglen errors", flash.Table3.Errors, res.Errors)
	assertRow(t, "msglen false positives", flash.Table3.FalsePos, res.FalsePos)
	assertRow(t, "msglen applied", flash.Table3.Applied, res.Applied)
}

func TestTable4(t *testing.T) {
	c := testCorpus(t)
	res := c.Table4()
	assertClean(t, res.CheckerResult)
	assertRow(t, "bufmgmt errors", flash.Table4.Errors, res.Errors)
	assertRow(t, "bufmgmt minor", flash.Table4.Minor, res.Minor)
	assertRow(t, "bufmgmt useful annotations", flash.Table4.Useful, res.Useful)
	assertRow(t, "bufmgmt useless annotations", flash.Table4.Useless, res.Useless)
}

// TestTable4AnnotationAblation verifies the annotations actually do
// the suppression the paper describes: stripping them yields exactly
// one extra report per annotation-backed site.
func TestTable4AnnotationAblation(t *testing.T) {
	stripped, err := LoadCorpus(flashgen.Options{Seed: 1, StripAnnotations: true})
	if err != nil {
		t.Fatal(err)
	}
	res := stripped.Table4()
	for _, p := range flash.ProtocolNames {
		sc := res.Scores[p]
		extra := len(sc.Unmatched)
		// Each dup-condition pair shares one function: its two
		// annotations suppress two reports (a double free and a leak);
		// single shapes suppress one leak each; useful shapes one leak
		// each. Extra reports must equal useful+useless.
		want := flash.Table4.Useful[p] + flash.Table4.Useless[p]
		if extra != want {
			t.Errorf("%s: stripping annotations exposed %d reports, want %d", p, extra, want)
			for _, u := range sc.Unmatched {
				t.Logf("  %s", u)
			}
		}
		// The seeded errors/minor must still be found.
		if sc.Errors != flash.Table4.Errors[p] || sc.Minor != flash.Table4.Minor[p] {
			t.Errorf("%s: errors/minor drifted without annotations: %d/%d", p, sc.Errors, sc.Minor)
		}
	}
}

func TestLanes(t *testing.T) {
	c := testCorpus(t)
	res := c.Lanes()
	assertClean(t, res)
	assertRow(t, "lane errors", flash.LanesResults.Errors, res.Errors)
	assertRow(t, "lane false positives", flash.LanesResults.FalsePos, res.FalsePos)
}

func TestTable5(t *testing.T) {
	c := testCorpus(t)
	res := c.Table5()
	// Warnings (deprecated macros) are expected; only violations and
	// unmatched/missed matter.
	for _, pr := range res.Problems() {
		t.Errorf("exec: %s", pr)
	}
	viol := Row{}
	for p, sc := range res.Scores {
		viol[p] = sc.Violations
	}
	assertRow(t, "exec violations", flash.Table5.Violations, viol)
	assertRow(t, "exec handlers", flash.Table5.Handlers, res.Handlers)
	assertRow(t, "exec vars", flash.Table5.Vars, res.Vars)
}

func TestTable6(t *testing.T) {
	c := testCorpus(t)
	res := c.Table6()
	assertClean(t, res.BufferAlloc)
	assertClean(t, res.Directory)
	assertClean(t, res.SendWait)

	assertRow(t, "alloc errors", flash.Table6.BufferAlloc.Errors, res.BufferAlloc.Errors)
	assertRow(t, "alloc false positives", flash.Table6.BufferAlloc.FalsePos, res.BufferAlloc.FalsePos)
	assertRow(t, "alloc applied", flash.Table6.BufferAlloc.Applied, res.BufferAlloc.Applied)

	assertRow(t, "directory errors", flash.Table6.Directory.Errors, res.Directory.Errors)
	assertRow(t, "directory false positives", flash.Table6.Directory.FalsePos, res.Directory.FalsePos)
	assertRow(t, "directory applied", flash.Table6.Directory.Applied, res.Directory.Applied)

	assertRow(t, "sendwait errors", flash.Table6.SendWait.Errors, res.SendWait.Errors)
	assertRow(t, "sendwait false positives", flash.Table6.SendWait.FalsePos, res.SendWait.FalsePos)
	assertRow(t, "sendwait applied", flash.Table6.SendWait.Applied, res.SendWait.Applied)
}

func TestTable7(t *testing.T) {
	c := testCorpus(t)
	rows := c.Table7()
	if len(rows) != len(flash.Table7) {
		t.Fatalf("rows %d", len(rows))
	}
	var errTotal, fpTotal int
	for i, row := range rows {
		want := flash.Table7[i]
		if row.Checker != want.Checker {
			t.Errorf("row %d: %s vs %s", i, row.Checker, want.Checker)
		}
		if row.Err != want.Err {
			t.Errorf("%s: errors %d, paper %d", row.Checker, row.Err, want.Err)
		}
		if row.FalsePos != want.FalsePos {
			t.Errorf("%s: false positives %d, paper %d", row.Checker, row.FalsePos, want.FalsePos)
		}
		errTotal += row.Err
		fpTotal += row.FalsePos
	}
	if errTotal != flash.Table7Totals.Err {
		t.Errorf("total errors %d, paper %d", errTotal, flash.Table7Totals.Err)
	}
	if fpTotal != flash.Table7Totals.FalsePos {
		t.Errorf("total false positives %d, paper %d", fpTotal, flash.Table7Totals.FalsePos)
	}
}

// TestCheckerSizesComparable asserts our checker implementations stay
// within the same small-size regime the paper reports ("usually 10-100
// lines"): within 3x of each published LOC.
func TestCheckerSizesComparable(t *testing.T) {
	c := testCorpus(t)
	_ = c
	for i, row := range corpus.Table7() {
		want := flash.Table7[i].LOC
		if row.LOC > want*3 || row.LOC < want/4 {
			t.Errorf("%s: checker core %d lines vs paper %d (outside band)", row.Checker, row.LOC, want)
		}
	}
}
