package paper

import (
	"reflect"
	"testing"

	"flashmc/internal/checkers"
	"flashmc/internal/depot"
	"flashmc/internal/sched"
)

// TestEveryCorpusReportHasWitness is the corpus-wide witness-trace
// acceptance gate: every report from every checker on every generated
// protocol must carry a non-empty trace whose final step lands exactly
// on the report position — the trace ends where the diagnostic points.
func TestEveryCorpusReportHasWitness(t *testing.T) {
	c := testCorpus(t)
	total := 0
	for _, chk := range checkers.All() {
		for proto, reports := range c.RunChecker(chk, chk.Name()) {
			for _, r := range reports {
				total++
				if len(r.Trace) == 0 {
					t.Errorf("%s/%s: report %q at %s has no witness trace",
						chk.Name(), proto, r.Msg, r.Pos)
					continue
				}
				last := r.Trace[len(r.Trace)-1]
				if last.Pos != r.Pos {
					t.Errorf("%s/%s: report at %s but witness ends at %s",
						chk.Name(), proto, r.Pos, last.Pos)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("corpus produced no reports; witness gate is vacuous")
	}
	t.Logf("verified witness traces on %d corpus reports", total)
}

// TestWitnessSurvivesDepotRoundTrip runs one protocol through the
// depot-backed scheduler twice: the warm run is served from cached
// JSON and must reproduce the cold run's reports, traces included.
func TestWitnessSurvivesDepotRoundTrip(t *testing.T) {
	c := testCorpus(t)
	p := c.Gen.Protocols[0]
	prog := c.Programs[p.Name]

	d, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := &sched.Analyzer{Depot: d}
	cold, err := a.Check(sched.Request{Prog: prog, Spec: p.Spec, Jobs: sched.FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Reports) == 0 {
		t.Fatalf("%s: no reports", p.Name)
	}
	traced := 0
	for _, r := range cold.Reports {
		if len(r.Trace) > 0 {
			traced++
		}
	}
	if traced != len(cold.Reports) {
		t.Fatalf("%s: only %d/%d scheduler reports carry traces", p.Name, traced, len(cold.Reports))
	}

	warm, err := a.Check(sched.Request{Prog: prog, Spec: p.Spec, Jobs: sched.FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed %d times", warm.Stats.CacheMisses)
	}
	if !reflect.DeepEqual(cold.Reports, warm.Reports) {
		t.Fatal("witness traces did not survive the depot JSON round trip")
	}
}
