package paper

import (
	"fmt"
	"io"
	"sort"

	"flashmc/internal/checkers"
	"flashmc/internal/cover"
	"flashmc/internal/lint"
)

// CoverageMatrix is the per-checker × per-protocol dynamic coverage of
// the corpus: for every built-in checker, which rules fired on which
// protocol, plus the merged totals used by the lint cross-check.
type CoverageMatrix struct {
	// Protocols in corpus (generation) order.
	Protocols []string
	// Checkers in checkers.All() order.
	Checkers []string
	// ByProto holds one coverage artifact per protocol.
	ByProto map[string]*cover.Artifact
	// Merged is the union across all protocols.
	Merged *cover.Artifact

	merged *cover.Set
}

// Coverage runs every built-in checker over every corpus protocol with
// coverage recording and returns the resulting matrix. All checkers
// implement checkers.CoverageProvider, so this also serves as the
// corpus-level acceptance run: a checker that records nothing anywhere
// shows up as an all-zero row.
func (c *Corpus) Coverage() *CoverageMatrix {
	m := &CoverageMatrix{ByProto: map[string]*cover.Artifact{}}
	for _, chk := range checkers.All() {
		m.Checkers = append(m.Checkers, chk.Name())
	}
	merged := cover.NewSet()
	for _, p := range c.Gen.Protocols {
		m.Protocols = append(m.Protocols, p.Name)
		set := cover.NewSet()
		for _, chk := range checkers.All() {
			prov, ok := chk.(checkers.CoverageProvider)
			if !ok {
				continue
			}
			_, covs := prov.CheckCov(c.Programs[p.Name], p.Spec)
			for _, cv := range covs {
				set.Record(chk.Name(), cv)
				merged.Record(chk.Name(), cv)
			}
		}
		m.ByProto[p.Name] = set.Snapshot()
	}
	m.Merged = merged.Snapshot()
	m.merged = merged
	return m
}

// Fires returns the total rule firings of one checker on one protocol
// (the matrix cell).
func (m *CoverageMatrix) Fires(checker, proto string) uint64 {
	a := m.ByProto[proto]
	if a == nil {
		return 0
	}
	c := a.Checkers[checker]
	if c == nil {
		return 0
	}
	var n uint64
	for _, v := range c.Rules {
		n += v
	}
	return n
}

// CoverageDead cross-checks the matrix against the static lint passes:
// for every SM-based checker it builds the SM under each protocol's
// spec and asks lint.CoverageDead which statically-live rules fired on
// *no* protocol (the merged counts). Diags are deduplicated by
// (SM, rule) across spec builds — a rule is reported once even when
// every protocol's spec compiles it — and a rule that exists only
// under some specs is still reported if it never fired anywhere.
func (c *Corpus) CoverageDead(m *CoverageMatrix) []lint.Diag {
	seen := map[string]bool{}
	var out []lint.Diag
	for _, p := range c.Gen.Protocols {
		for _, chk := range checkers.All() {
			prov, ok := chk.(checkers.SMProvider)
			if !ok {
				continue
			}
			sm, decls := prov.BuildSM(p.Spec)
			fired := m.merged.Fired(chk.Name())
			conds := m.merged.CondsFired(chk.Name())
			for _, d := range lint.CoverageDead(lint.Target{SM: sm, Decls: decls}, fired, conds) {
				key := d.SM + "\x00" + d.Rule
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SM != out[j].SM {
			return out[i].SM < out[j].SM
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// WriteTable renders the matrix as checkers × protocols, one cell per
// (checker, protocol) holding the total rule firings there.
func (m *CoverageMatrix) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-16s", "CHECKER")
	for _, p := range m.Protocols {
		fmt.Fprintf(w, " %10s", p)
	}
	fmt.Fprintln(w)
	for _, chk := range m.Checkers {
		fmt.Fprintf(w, "%-16s", chk)
		for _, p := range m.Protocols {
			fmt.Fprintf(w, " %10d", m.Fires(chk, p))
		}
		fmt.Fprintln(w)
	}
}
