package paper

import "testing"

// TestFusedMatchesSequential is the corpus-wide equivalence gate for
// one-pass fused checking: over every generated protocol, every
// checker's reports (rank order included), witness traces and coverage
// snapshots must be byte-identical between the fused product and the
// sequential engine, while the fused run performs strictly fewer node
// visits and pattern evaluations.
func TestFusedMatchesSequential(t *testing.T) {
	c := testCorpus(t)
	cmp, err := c.FusedVsSequential()
	if err != nil {
		t.Fatalf("fused comparison: %v", err)
	}
	for _, m := range cmp.Mismatches {
		t.Errorf("mismatch: %s", m)
	}
	if !cmp.Identical {
		t.Fatalf("fused output not byte-identical to sequential (%d mismatches)", len(cmp.Mismatches))
	}
	if cmp.FusedNodeVisits <= 0 || cmp.SeqNodeVisits <= 0 {
		t.Fatalf("visit counters did not move: seq=%v fused=%v", cmp.SeqNodeVisits, cmp.FusedNodeVisits)
	}
	if cmp.FusedNodeVisits >= cmp.SeqNodeVisits {
		t.Errorf("fused node visits (%v) not below sequential (%v)", cmp.FusedNodeVisits, cmp.SeqNodeVisits)
	}
	if cmp.FusedPatternEvals >= cmp.SeqPatternEvals {
		t.Errorf("fused pattern evals (%v) not below sequential (%v)", cmp.FusedPatternEvals, cmp.SeqPatternEvals)
	}
	if r := cmp.VisitRatio(); r < 3 {
		t.Errorf("visit ratio %.2f below the 3x target (seq=%v fused=%v)", r, cmp.SeqNodeVisits, cmp.FusedNodeVisits)
	}
	t.Logf("fused vs sequential: %d protocols, %d checkers, visit ratio %.2fx, eval ratio %.2fx",
		cmp.Protocols, cmp.Checkers, cmp.VisitRatio(), cmp.SeqPatternEvals/cmp.FusedPatternEvals)
}
