package paper

import (
	"fmt"
	"sort"
	"strings"

	"flashmc/internal/checkers"
	"flashmc/internal/flashgen"
	"flashmc/internal/flashsim"
)

// SDResult compares static checking against dynamic testing for one
// protocol: how many of the seeded real bugs each approach finds, and
// how long the simulator needed.
type SDResult struct {
	Protocol     string
	SeededErrors int
	StaticFound  int
	DynamicFound int
	Trials       int
	// FirstTrials lists, per dynamically found bug, the trial at which
	// it first surfaced (sorted ascending).
	FirstTrials []int
	// DynamicMissed lists seeded bugs the simulator never triggered.
	DynamicMissed []flashgen.Site
}

// MedianFirstTrial returns the median detection latency (0 if none).
func (r SDResult) MedianFirstTrial() int {
	if len(r.FirstTrials) == 0 {
		return 0
	}
	return r.FirstTrials[len(r.FirstTrials)/2]
}

func (r SDResult) String() string {
	return fmt.Sprintf("%-10s seeded %2d | static %2d | dynamic %2d/%d trials (median first hit %d)",
		r.Protocol, r.SeededErrors, r.StaticFound, r.DynamicFound, r.Trials, r.MedianFirstTrial())
}

// StaticVsDynamic reproduces the paper's §2/§11 claim: the corner-case
// bugs the checkers pinpoint statically surface only sporadically (or
// never) under randomized dynamic testing. It runs every error-finding
// checker and a fuzzing campaign of the given length over each
// protocol and scores both against the seeded ClassError sites.
func (c *Corpus) StaticVsDynamic(trials int, seed int64) []SDResult {
	suite := []checkers.Checker{
		checkers.NewBufferRace(),
		checkers.NewMsglen(),
		checkers.NewBufferMgmt(),
		checkers.NewLanes(),
		checkers.NewDirectory(),
	}
	var out []SDResult
	for _, p := range c.Gen.Protocols {
		prog := c.Programs[p.Name]
		res := SDResult{Protocol: p.Name, Trials: trials}

		// Seeded real bugs.
		type key struct {
			file string
			line int
		}
		seeded := map[key]flashgen.Site{}
		for _, s := range p.Manifest {
			if s.Class == flashgen.ClassError {
				seeded[key{s.File, s.Line}] = s
				res.SeededErrors++
			}
		}

		// Static pass.
		staticHit := map[key]bool{}
		for _, chk := range suite {
			for _, r := range chk.Check(prog, p.Spec) {
				k := key{r.Pos.File, r.Pos.Line}
				if _, ok := seeded[k]; ok {
					staticHit[k] = true
				}
			}
		}
		res.StaticFound = len(staticHit)

		// Dynamic pass.
		fz := flashsim.Fuzz(prog, p.Spec, trials, seed)
		byLine := fz.ByLine()
		for k, s := range seeded {
			if d, ok := byLine[fmt.Sprintf("%s:%d", k.file, k.line)]; ok {
				res.DynamicFound++
				res.FirstTrials = append(res.FirstTrials, d.FirstTrial)
			} else {
				res.DynamicMissed = append(res.DynamicMissed, s)
			}
		}
		sort.Ints(res.FirstTrials)
		sort.Slice(res.DynamicMissed, func(i, j int) bool {
			a, b := res.DynamicMissed[i], res.DynamicMissed[j]
			return a.File+fmt.Sprint(a.Line) < b.File+fmt.Sprint(b.Line)
		})
		out = append(out, res)
	}
	return out
}

// RenderStaticVsDynamic formats the experiment like the EXPERIMENTS.md
// entry.
func RenderStaticVsDynamic(results []SDResult) string {
	var b strings.Builder
	b.WriteString("static vs dynamic detection of the 34 seeded bugs\n")
	totalSeeded, totalStatic, totalDyn := 0, 0, 0
	for _, r := range results {
		fmt.Fprintf(&b, "  %s\n", r)
		totalSeeded += r.SeededErrors
		totalStatic += r.StaticFound
		totalDyn += r.DynamicFound
	}
	fmt.Fprintf(&b, "  total      seeded %2d | static %2d | dynamic %2d\n",
		totalSeeded, totalStatic, totalDyn)
	return b.String()
}
