package paper

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/metal"
	"flashmc/internal/paths"
)

// TestDataflowMatchesPathWalkOnCorpus differentially validates the
// engine: on every corpus function small enough to enumerate, the
// configuration-set executor must produce exactly the reports of the
// literal every-path walk for the Figure 2 checker.
func TestDataflowMatchesPathWalkOnCorpus(t *testing.T) {
	c := testCorpus(t)
	prog, err := metal.Compile(checkers.WaitForDBSource,
		metal.Options{Include: flash.HeaderSource()})
	if err != nil {
		t.Fatal(err)
	}
	const maxPaths = 2000
	checked := 0
	for _, name := range flash.ProtocolNames {
		p := c.Programs[name]
		for _, g := range p.Graphs {
			if paths.Analyze(g).Count > maxPaths {
				continue
			}
			a := engine.Run(g, prog.SM)
			b := engine.RunPaths(g, prog.SM, maxPaths*4)
			if !sameReports(a, b) {
				t.Errorf("%s/%s: dataflow %v != pathwalk %v", name, g.Fn.Name, a, b)
			}
			checked++
		}
	}
	if checked < 1000 {
		t.Errorf("only %d functions compared; corpus should provide 1000+", checked)
	}
}

func sameReports(a, b []engine.Report) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r engine.Report) string { return r.Pos.String() + "|" + r.Msg }
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestDiskRoundTrip writes the corpus to disk, reloads it through the
// OS file source (the cmd/mcheck path), and verifies a checker's
// results are identical to the in-memory load.
func TestDiskRoundTrip(t *testing.T) {
	c := testCorpus(t)
	p := c.Gen.Protocol("sci")
	dir := t.TempDir()

	if err := os.WriteFile(filepath.Join(dir, "flash-includes.h"),
		[]byte(flash.IncludesH), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, text := range p.Files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	disk, err := core.Load(p.Name, cpp.OSSource{Dir: dir}, p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk.ParseErrors) != 0 {
		t.Fatalf("parse errors from disk: %v", disk.ParseErrors[0])
	}

	mem := c.Programs["sci"]
	chk := checkers.NewBufferMgmt()
	a := chk.Check(mem, p.Spec)
	b := chk.Check(disk, p.Spec)
	if !sameReports(a, b) {
		t.Errorf("disk load diverges: %d vs %d reports", len(a), len(b))
	}
	if disk.SourceLOC != mem.SourceLOC {
		t.Errorf("LOC %d vs %d", disk.SourceLOC, mem.SourceLOC)
	}
}

// TestCorpusSeedIndependence verifies the reproduction is not an
// artifact of seed 1: a different seed reshuffles the clean code but
// every table still joins exactly.
func TestCorpusSeedIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus reload")
	}
	c2, err := LoadCorpus(flashgenOpts(99))
	if err != nil {
		t.Fatal(err)
	}
	t2 := c2.Table2()
	assertClean(t, t2)
	assertRow(t, "seed99 race errors", flash.Table2.Errors, t2.Errors)
	t4 := c2.Table4()
	assertClean(t, t4.CheckerResult)
	assertRow(t, "seed99 bufmgmt errors", flash.Table4.Errors, t4.Errors)
	lanes := c2.Lanes()
	assertClean(t, lanes)
	assertRow(t, "seed99 lanes", flash.LanesResults.Errors, lanes.Errors)
	t6 := c2.Table6()
	assertClean(t, t6.Directory)
	assertRow(t, "seed99 directory FPs", flash.Table6.Directory.FalsePos, t6.Directory.FalsePos)
}
