package paper

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"flashmc/internal/cover"
)

var (
	matrixOnce sync.Once
	matrix     *CoverageMatrix
)

// testMatrix builds the corpus coverage matrix once; running all nine
// checkers over six protocols is the expensive part of this file.
func testMatrix(t *testing.T) *CoverageMatrix {
	t.Helper()
	c := testCorpus(t)
	matrixOnce.Do(func() { matrix = c.Coverage() })
	return matrix
}

// Acceptance: every one of the checkers reports at least one
// dynamically-fired rule somewhere on the corpus.
func TestEveryCheckerFiresOnCorpus(t *testing.T) {
	m := testMatrix(t)
	if len(m.Checkers) == 0 || len(m.Protocols) == 0 {
		t.Fatalf("empty matrix: %d checkers, %d protocols", len(m.Checkers), len(m.Protocols))
	}
	for _, chk := range m.Checkers {
		c := m.Merged.Checkers[chk]
		if c == nil || len(c.Rules) == 0 {
			t.Errorf("checker %s fired no rules on any corpus protocol", chk)
		}
	}
}

// The merged artifact must be a valid coverage/v1 artifact.
func TestCorpusCoverageValidates(t *testing.T) {
	m := testMatrix(t)
	var buf bytes.Buffer
	if err := m.Merged.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := cover.Validate(&buf); err != nil {
		t.Fatalf("corpus coverage artifact invalid: %v", err)
	} else if n != len(m.Checkers) {
		t.Errorf("artifact has %d checkers, matrix has %d", n, len(m.Checkers))
	}
}

// Acceptance: coverage-dead is emitted only for rules that fired on no
// protocol — every diag's rule must have a zero merged count, and
// every merged-fired rule must be absent from the diags.
func TestCoverageDeadOnlyForUnfiredRules(t *testing.T) {
	c := testCorpus(t)
	m := testMatrix(t)
	diags := c.CoverageDead(m)
	for _, d := range diags {
		if d.Pass != "coverage-dead" {
			t.Errorf("unexpected pass %q in cross-check output", d.Pass)
		}
		for name, cc := range m.Merged.Checkers {
			if cc.SM != d.SM {
				continue
			}
			if cc.Rules[d.Rule] > 0 || cc.Conds[d.Rule] > 0 {
				t.Errorf("checker %s: rule %s reported coverage-dead but fired %d/%d times",
					name, d.Rule, cc.Rules[d.Rule], cc.Conds[d.Rule])
			}
		}
	}
	// Dedup must hold: one diag per (SM, rule).
	seen := map[string]bool{}
	for _, d := range diags {
		key := d.SM + "\x00" + d.Rule
		if seen[key] {
			t.Errorf("duplicate coverage-dead diag for %s/%s", d.SM, d.Rule)
		}
		seen[key] = true
	}
}

// The matrix cell accessor and the table rendering agree with the
// per-protocol artifacts.
func TestMatrixTable(t *testing.T) {
	m := testMatrix(t)
	var buf bytes.Buffer
	m.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "CHECKER") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, chk := range m.Checkers {
		if !strings.Contains(out, chk) {
			t.Errorf("checker %s missing from table:\n%s", chk, out)
		}
	}
	for _, p := range m.Protocols {
		if !strings.Contains(out, p) {
			t.Errorf("protocol %s missing from table:\n%s", p, out)
		}
	}
	// Spot-check one cell against the artifact.
	for _, chk := range m.Checkers {
		for _, p := range m.Protocols {
			var want uint64
			if a := m.ByProto[p]; a != nil && a.Checkers[chk] != nil {
				for _, v := range a.Checkers[chk].Rules {
					want += v
				}
			}
			if got := m.Fires(chk, p); got != want {
				t.Errorf("Fires(%s, %s) = %d, artifact sums to %d", chk, p, got, want)
			}
		}
	}
}
