package paper

import (
	"testing"

	"flashmc/internal/lint"
)

// TestFPTriage is the acceptance bar for the triage layer: across the
// stripped corpus it must demote at least 20 of the paper's 69 false
// positives to likely-fp while every one of the 34 seeded true errors
// keeps its certain rank. The demotable population is exactly the
// infeasible-path class the paper declined to prune globally (§6):
// the duplicated-condition useless annotations (buffer management)
// and the msglen variant pair; the directory, send-wait, allocation
// and race false positives stem from checker imprecision on feasible
// paths and must stay certain — demoting those would be lying about
// evidence.
func TestFPTriage(t *testing.T) {
	res, err := FPTriage()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	tot := res.Totals()

	if tot.PaperFPs != 69 {
		t.Errorf("paper FP budget drifted: %d, want 69", tot.PaperFPs)
	}
	if tot.Errors != 34 {
		t.Errorf("error sites reported: %d, want all 34 seeded errors", tot.Errors)
	}
	if tot.ErrorsCertain != tot.Errors {
		t.Errorf("triage demoted %d true errors — must be zero",
			tot.Errors-tot.ErrorsCertain)
	}
	if tot.Demoted < 20 {
		t.Errorf("triage demoted only %d of %d scored FPs; want >= 20",
			tot.Demoted, tot.ScoredFPs)
	}

	for _, row := range res.Rows {
		switch row.Checker {
		case "buffer_mgmt":
			// The 22 duplicated-condition annotations demote; the 3
			// value-correlated ones need symbolic reasoning slicing
			// does not have, so they stay under slice mode.
			if row.Demoted < 20 {
				t.Errorf("buffer_mgmt: demoted %d, want the dupcond class (>= 20)", row.Demoted)
			}
		case "msglen":
			if row.Demoted != 2 {
				t.Errorf("msglen: demoted %d, want the variant pair (2)", row.Demoted)
			}
		case "directory", "sendwait", "alloc", "buffer_race":
			if row.Demoted != 0 {
				t.Errorf("%s: demoted %d feasible-path FPs; want 0", row.Checker, row.Demoted)
			}
		}
	}
}

// TestFPTriageSym is the acceptance bar for the symbolic second rung:
// under -triage=sym the pipeline must demote strictly more sites than
// slicing alone (the three value-correlated buffer_mgmt shapes join
// the 24 slicing already catches) while every seeded true error still
// keeps its certain rank — undecidable paths must fall back to
// certain, never to a demotion.
func TestFPTriageSym(t *testing.T) {
	res, err := FPTriageMode(lint.ModeSym)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	tot := res.Totals()

	if tot.Errors != 34 {
		t.Errorf("error sites reported: %d, want all 34 seeded errors", tot.Errors)
	}
	if tot.ErrorsCertain != tot.Errors {
		t.Errorf("symbolic triage demoted %d true errors — must be zero",
			tot.Errors-tot.ErrorsCertain)
	}
	if tot.Demoted < 25 {
		t.Errorf("symbolic triage demoted %d sites; want strictly more than slicing's 24",
			tot.Demoted)
	}

	for _, row := range res.Rows {
		switch row.Checker {
		case "buffer_mgmt":
			// 22 dupcond + 3 value-correlated shapes.
			if row.Demoted < 23 {
				t.Errorf("buffer_mgmt: demoted %d, want dupcond plus the value-correlated class (>= 23)",
					row.Demoted)
			}
		case "directory", "sendwait", "alloc", "buffer_race":
			if row.Demoted != 0 {
				t.Errorf("%s: demoted %d feasible-path FPs; want 0", row.Checker, row.Demoted)
			}
		}
	}
}
