package paper

import "testing"

// TestFPTriage is the acceptance bar for the triage layer: across the
// stripped corpus it must demote at least 20 of the paper's 69 false
// positives to likely-fp while every one of the 34 seeded true errors
// keeps its certain rank. The demotable population is exactly the
// infeasible-path class the paper declined to prune globally (§6):
// the duplicated-condition useless annotations (buffer management)
// and the msglen variant pair; the directory, send-wait, allocation
// and race false positives stem from checker imprecision on feasible
// paths and must stay certain — demoting those would be lying about
// evidence.
func TestFPTriage(t *testing.T) {
	res, err := FPTriage()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	tot := res.Totals()

	if tot.PaperFPs != 69 {
		t.Errorf("paper FP budget drifted: %d, want 69", tot.PaperFPs)
	}
	if tot.Errors != 34 {
		t.Errorf("error sites reported: %d, want all 34 seeded errors", tot.Errors)
	}
	if tot.ErrorsCertain != tot.Errors {
		t.Errorf("triage demoted %d true errors — must be zero",
			tot.Errors-tot.ErrorsCertain)
	}
	if tot.Demoted < 20 {
		t.Errorf("triage demoted only %d of %d scored FPs; want >= 20",
			tot.Demoted, tot.ScoredFPs)
	}

	for _, row := range res.Rows {
		switch row.Checker {
		case "buffer_mgmt":
			// The 22 duplicated-condition annotations demote; the 3
			// data-dependent ones are feasible and stay.
			if row.Demoted < 20 {
				t.Errorf("buffer_mgmt: demoted %d, want the dupcond class (>= 20)", row.Demoted)
			}
		case "msglen":
			if row.Demoted != 2 {
				t.Errorf("msglen: demoted %d, want the variant pair (2)", row.Demoted)
			}
		case "directory", "sendwait", "alloc", "buffer_race":
			if row.Demoted != 0 {
				t.Errorf("%s: demoted %d feasible-path FPs; want 0", row.Checker, row.Demoted)
			}
		}
	}
}
