package paper

import (
	"encoding/json"
	"fmt"
	"time"

	"flashmc/internal/checkers"
	"flashmc/internal/engine"
	"flashmc/internal/obs"
)

// FusedComparison summarizes a fused-vs-sequential run of the full
// checker suite over the corpus. Identical is the headline contract:
// per-checker reports (order included), witness traces and coverage
// snapshots must survive a JSON round-trip byte-for-byte equal.
type FusedComparison struct {
	Protocols  int      `json:"protocols"`
	Checkers   int      `json:"checkers"`
	Identical  bool     `json:"identical"`
	Mismatches []string `json:"mismatches,omitempty"`

	SeqWallSeconds   float64 `json:"seq_wall_seconds"`
	FusedWallSeconds float64 `json:"fused_wall_seconds"`

	// Node visits: how many (node, configuration-environment) sweeps
	// the engine performed against a rule vocabulary. The sequential
	// engine sweeps once per checker per configuration per worklist
	// revisit; the fused engine once per distinct environment, whatever
	// the product's members ask.
	SeqNodeVisits   float64 `json:"seq_node_visits"`
	FusedNodeVisits float64 `json:"fused_node_visits"`

	// Pattern evaluations: actual pattern-match calls (fused runs serve
	// repeats from the shared index).
	SeqPatternEvals   float64 `json:"seq_pattern_evals"`
	FusedPatternEvals float64 `json:"fused_pattern_evals"`
}

// VisitRatio is the headline speedup proxy: sequential node visits per
// fused node visit (0 when the fused run recorded none).
func (c FusedComparison) VisitRatio() float64 {
	if c.FusedNodeVisits == 0 {
		return 0
	}
	return c.SeqNodeVisits / c.FusedNodeVisits
}

// renderChecker marshals one checker's reports and coverage to the
// canonical JSON the depot stores, so "equal here" means "equal
// artifacts everywhere downstream".
func renderChecker(reports []engine.Report, covs []*engine.Coverage) (string, error) {
	b, err := json.Marshal(struct {
		Reports  []engine.Report
		Coverage []*engine.Coverage
	}{reports, covs})
	return string(b), err
}

// FusedVsSequential runs the full built-in suite over every protocol
// twice — once per checker sequentially, once through the fused
// product — and compares the outputs checker by checker.
func (c *Corpus) FusedVsSequential() (FusedComparison, error) {
	out := FusedComparison{Protocols: len(c.Gen.Protocols)}

	type snap struct{ visits, evals float64 }
	take := func() snap {
		s := obs.Default.Snapshot()
		return snap{s["engine_node_visits_total"], s["engine_pattern_evals_total"]}
	}

	for _, p := range c.Gen.Protocols {
		prog := c.Programs[p.Name]
		suite := checkers.FusedSuite(p.Spec)
		out.Checkers = len(suite.Checkers)

		s0 := take()
		t0 := time.Now()
		seq := make([]string, len(suite.Checkers))
		for i, chk := range suite.Checkers {
			reports, covs := chk.(checkers.CoverageProvider).CheckCov(prog, p.Spec)
			r, err := renderChecker(reports, covs)
			if err != nil {
				return out, err
			}
			seq[i] = r
		}
		out.SeqWallSeconds += time.Since(t0).Seconds()
		s1 := take()

		t1 := time.Now()
		fusedReports, fusedCovs := suite.CheckCov(prog, p.Spec)
		out.FusedWallSeconds += time.Since(t1).Seconds()
		s2 := take()

		out.SeqNodeVisits += s1.visits - s0.visits
		out.SeqPatternEvals += s1.evals - s0.evals
		out.FusedNodeVisits += s2.visits - s1.visits
		out.FusedPatternEvals += s2.evals - s1.evals

		for i, chk := range suite.Checkers {
			r, err := renderChecker(fusedReports[i], fusedCovs[i])
			if err != nil {
				return out, err
			}
			if r != seq[i] {
				out.Mismatches = append(out.Mismatches,
					fmt.Sprintf("%s/%s: fused output differs from sequential", p.Name, chk.Name()))
			}
		}
	}
	out.Identical = len(out.Mismatches) == 0
	return out, nil
}
