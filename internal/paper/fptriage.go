package paper

import (
	"fmt"
	"sort"
	"strings"

	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/flashgen"
	"flashmc/internal/lint"
)

// FP triage scoring: run every checker over the stripped corpus (no
// suppressing annotations, so the §6 "useless annotation" sites
// surface as reports), rank each report with package lint's
// slicing-based feasibility triage, and join the ranked reports back
// to the ground-truth manifest. The resulting table states, per
// checker, how many of the paper's 69 false positives the triage
// layer demotes to likely-fp — and proves none of the 34 seeded
// errors lose their certain rank.

// FPTriageRow is one checker's line of the triage table.
type FPTriageRow struct {
	Checker string
	// PaperFPs is the checker's published Table 7 false-positive
	// count (useless annotations count as FPs, following the paper).
	PaperFPs int
	// ScoredFPs is how many manifest FP sites a triaged report landed
	// on in the stripped corpus.
	ScoredFPs int
	// Demoted is how many of those sites only attracted likely-fp
	// reports.
	Demoted int
	// Errors / ErrorsCertain count manifest error sites reported, and
	// those whose report kept the certain rank.
	Errors        int
	ErrorsCertain int
}

// FPTriageResult is the whole table plus totals.
type FPTriageResult struct {
	Rows []FPTriageRow
}

func (r FPTriageResult) Totals() FPTriageRow {
	t := FPTriageRow{Checker: "Total"}
	for _, row := range r.Rows {
		t.PaperFPs += row.PaperFPs
		t.ScoredFPs += row.ScoredFPs
		t.Demoted += row.Demoted
		t.Errors += row.Errors
		t.ErrorsCertain += row.ErrorsCertain
	}
	return t
}

// Render formats the table.
func (r FPTriageResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %9s %9s %9s %9s %9s\n",
		"checker", "paper-fp", "scored", "demoted", "errors", "certain")
	for _, row := range append(append([]FPTriageRow{}, r.Rows...), r.Totals()) {
		fmt.Fprintf(&b, "%-22s %9d %9d %9d %9d %9d\n",
			row.Checker, row.PaperFPs, row.ScoredFPs, row.Demoted,
			row.Errors, row.ErrorsCertain)
	}
	return b.String()
}

// paperFPByChecker maps manifest checker names to Table 7 FP budgets.
var paperFPByChecker = map[string]int{
	"buffer_mgmt": 25, "msglen": 2, "lanes": 0, "buffer_race": 1,
	"alloc": 2, "directory": 31, "sendwait": 8,
}

// FPTriage runs the slicing-based triage pipeline over the stripped
// corpus (the PR 1 baseline).
func FPTriage() (FPTriageResult, error) {
	return FPTriageMode(lint.ModeSlice)
}

// FPTriageMode runs the triage pipeline under the given mode, letting
// the table compare slicing alone against slicing plus the symbolic
// evaluator's second rung.
func FPTriageMode(mode lint.TriageMode) (FPTriageResult, error) {
	c, err := LoadCorpus(flashgen.Options{Seed: 1, StripAnnotations: true})
	if err != nil {
		return FPTriageResult{}, err
	}

	byChecker := map[string]*triageAgg{}
	get := func(name string) *triageAgg {
		if byChecker[name] == nil {
			byChecker[name] = &triageAgg{}
		}
		return byChecker[name]
	}

	suite := []checkers.Checker{
		checkers.NewBufferMgmt(),
		checkers.NewMsglen(),
		checkers.NewLanes(),
		checkers.NewBufferRace(),
		checkers.NewAllocCheck(),
		checkers.NewDirectory(),
		checkers.NewSendWait(),
	}

	for _, proto := range c.Gen.Protocols {
		prog := c.Programs[proto.Name]
		for _, ch := range suite {
			reports := ch.Check(prog, proto.Spec)
			var ranked []lint.RankedReport
			if prov, ok := ch.(checkers.SMProvider); ok {
				sm, _ := prov.BuildSM(proto.Spec)
				ranked = lint.TriageProgram(prog, sm, reports, lint.TriageOptions{Mode: mode})
			} else {
				// Global (non-SM) checkers have no path structure to
				// replay; their reports pass through as certain.
				ranked = lint.PassThrough(reports, lint.ReasonGlobalPass)
			}
			a := get(ch.Name())
			scoreTriaged(proto, prog, ch.Name(), ranked, a)
		}
	}

	var rows []FPTriageRow
	var names []string
	for n := range paperFPByChecker {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := get(n)
		rows = append(rows, FPTriageRow{
			Checker:  n,
			PaperFPs: paperFPByChecker[n], ScoredFPs: a.scoredFPs,
			Demoted: a.demoted, Errors: a.errors, ErrorsCertain: a.errorsCertain,
		})
	}
	return FPTriageResult{Rows: rows}, nil
}

// triageAgg accumulates the join results for one checker.
type triageAgg struct {
	scoredFPs, demoted, errors, errorsCertain int
}

// scoreTriaged joins one checker's ranked reports to the manifest.
// FP-class and error sites join by exact file:line (like
// ScoreChecker). Useless-annotation sites cannot: with the annotation
// stripped, the suppressed report surfaces at the free site or the
// function exit, not at the annotation's own line — so useless sites
// join per enclosing function, pairing the function's stripped
// reports with its annotation sites.
func scoreTriaged(proto *flashgen.Protocol, prog *core.Program, checker string, ranked []lint.RankedReport, a *triageAgg) {
	type key struct {
		file string
		line int
	}
	exact := map[key]flashgen.Class{}
	uselessPerFn := map[string]int{}
	for _, s := range proto.Manifest {
		if s.Checker != checker {
			continue
		}
		switch s.Class {
		case flashgen.ClassError, flashgen.ClassFalsePos:
			exact[key{s.File, s.Line}] = s.Class
		case flashgen.ClassUseless:
			if fn := enclosingFn(prog, s.File, s.Line); fn != "" {
				uselessPerFn[fn]++
			}
		}
	}

	type siteHits struct {
		reports, likelyFP, certain int
	}
	exactHits := map[key]*siteHits{}
	fnHits := map[string]*siteHits{}
	for _, rr := range ranked {
		k := key{rr.Pos.File, rr.Pos.Line}
		var h *siteHits
		if _, ok := exact[k]; ok {
			if exactHits[k] == nil {
				exactHits[k] = &siteHits{}
			}
			h = exactHits[k]
		} else if uselessPerFn[rr.Fn] > 0 {
			if fnHits[rr.Fn] == nil {
				fnHits[rr.Fn] = &siteHits{}
			}
			h = fnHits[rr.Fn]
		} else {
			continue // stray (e.g. a stripped useful annotation's report)
		}
		h.reports++
		if rr.Confidence.Rank() > 0 { // likely-fp or infeasible
			h.likelyFP++
		} else {
			h.certain++
		}
	}

	for k, h := range exactHits {
		switch exact[k] {
		case flashgen.ClassError:
			a.errors++
			if h.certain > 0 {
				a.errorsCertain++
			}
		case flashgen.ClassFalsePos:
			a.scoredFPs++
			if h.likelyFP > 0 && h.certain == 0 {
				a.demoted++
			}
		}
	}
	for fn, h := range fnHits {
		sites := uselessPerFn[fn]
		a.scoredFPs += min(sites, h.reports)
		a.demoted += min(sites, h.likelyFP)
	}
}

// enclosingFn maps a manifest line to the function containing it.
func enclosingFn(prog *core.Program, file string, line int) string {
	for _, fn := range prog.Fns {
		if fn.Pos().File == file && fn.Pos().Line <= line && line <= fn.EndPos.Line {
			return fn.Name
		}
	}
	return ""
}
