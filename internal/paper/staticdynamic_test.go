package paper

import (
	"testing"
)

func TestStaticVsDynamic(t *testing.T) {
	c := testCorpus(t)
	results := c.StaticVsDynamic(120, 11)

	totalSeeded, totalStatic, totalDynamic := 0, 0, 0
	lateDetections := 0
	for _, r := range results {
		totalSeeded += r.SeededErrors
		totalStatic += r.StaticFound
		totalDynamic += r.DynamicFound
		if r.StaticFound != r.SeededErrors {
			t.Errorf("%s: static found %d of %d seeded bugs", r.Protocol, r.StaticFound, r.SeededErrors)
		}
		for _, ft := range r.FirstTrials {
			if ft > 1 {
				lateDetections++
			}
		}
	}
	if totalSeeded != 34 {
		t.Fatalf("seeded errors %d, want the paper's 34", totalSeeded)
	}
	if totalStatic != 34 {
		t.Errorf("static checkers found %d of 34", totalStatic)
	}
	// Dynamic testing should find most bugs eventually over 120 random
	// trials per handler, but the detections must skew late (corner
	// cases), and it is acceptable for a few to be missed entirely.
	if totalDynamic < 34/2 {
		t.Errorf("dynamic found only %d of 34 — workload too narrow to be credible", totalDynamic)
	}
	if lateDetections == 0 {
		t.Errorf("every dynamic detection was on trial 1 — corner cases are not rare")
	}
	t.Logf("\n%s", RenderStaticVsDynamic(results))
}
