package paper

import (
	"testing"

	"flashmc/internal/checkers"
	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
)

// TestPruningRemovesUselessAnnotations reproduces the paper's §6
// observation quantitatively: the duplicated-condition class of
// useless annotations exists only because the engine (like xg++) does
// not prune simple impossible paths. With the correlated-branch pruner
// on and annotations stripped, exactly the duplicated-condition
// reports disappear while the data-dependent ones (and the real
// errors) remain.
func TestPruningRemovesUselessAnnotations(t *testing.T) {
	stripped, err := LoadCorpus(flashgen.Options{Seed: 1, StripAnnotations: true})
	if err != nil {
		t.Fatal(err)
	}

	// Count duplicated-condition annotation pairs per protocol: each
	// "h_dupcond" shape carries two useless annotations suppressing
	// two reports.
	dupAnnotations := map[string]int{}
	for _, p := range stripped.Gen.Protocols {
		for _, s := range p.Manifest {
			if s.Class == flashgen.ClassUseless && s.Note == "duplicated branch condition (impossible path)" {
				dupAnnotations[p.Name]++
			}
		}
	}

	naive := checkers.NewBufferMgmt()
	pruned := checkers.NewBufferMgmtPruned()
	totalRemoved := 0
	for _, p := range stripped.Gen.Protocols {
		prog := stripped.Programs[p.Name]
		before := ScoreChecker(p, "buffer_mgmt", naive.Check(prog, p.Spec))
		after := ScoreChecker(p, "buffer_mgmt", pruned.Check(prog, p.Spec))
		removed := len(before.Unmatched) - len(after.Unmatched)
		if removed != dupAnnotations[p.Name] {
			t.Errorf("%s: pruning removed %d reports, want %d (the duplicated-condition ones)",
				p.Name, removed, dupAnnotations[p.Name])
		}
		totalRemoved += removed
		// Errors and minor findings must be unaffected by pruning.
		if after.Errors != before.Errors || after.Minor != before.Minor {
			t.Errorf("%s: pruning changed real findings: errors %d->%d minor %d->%d",
				p.Name, before.Errors, after.Errors, before.Minor, after.Minor)
		}
	}
	// The paper: "We eliminated over twenty useless annotations by
	// adding twelve lines to the SM" (the value-sensitivity fix); our
	// pruner addresses the sibling cause with a comparable yield.
	if totalRemoved < 20 {
		t.Errorf("pruning removed only %d reports; expected the >20 regime", totalRemoved)
	}
	t.Logf("pruning removed %d duplicated-condition reports corpus-wide", totalRemoved)
}

// TestValueSensitivityAblation reproduces the paper's actual fix: the
// twelve SM lines that made the checker sensitive to routines
// returning 0/1 depending on whether they freed the buffer. Without
// the CondRule, every caller of maybe_free_buf() produces a cascade of
// spurious reports; with it, none do.
func TestValueSensitivityAblation(t *testing.T) {
	c := testCorpus(t)
	for _, p := range c.Gen.Protocols {
		prog := c.Programs[p.Name]

		// Degrade the spec: forget that maybe_free_buf is
		// value-sensitive (the naive extension's view).
		degraded := *p.Spec
		degraded.CondFreeFns = map[string]bool{}

		full := checkers.NewBufferMgmt().Check(prog, p.Spec)
		naive := checkers.NewBufferMgmt().Check(prog, &degraded)
		if len(naive) <= len(full) {
			t.Errorf("%s: value-sensitivity made no difference (%d vs %d reports) — the h_cond_free shape should cascade",
				p.Name, len(naive), len(full))
		}
	}
}

// TestLanesFixedPointAblation verifies the paper's cycle rule matters:
// the corpus's recursive spin() helper and send-free loops are
// accepted, which requires the fixed-point treatment rather than a
// crude "reject all cycles" rule.
func TestLanesFixedPointAblation(t *testing.T) {
	c := testCorpus(t)
	res := c.Lanes()
	for _, pr := range res.Problems() {
		t.Errorf("lanes: %s", pr)
	}
	// Exactly the two seeded bugs, nothing from recursion or loops.
	total := 0
	for _, p := range flash.ProtocolNames {
		total += res.Errors[p] + res.FalsePos[p]
	}
	if total != 2 {
		t.Errorf("lane findings %d, want exactly the 2 seeded bugs", total)
	}
}
