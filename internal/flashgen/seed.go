package flashgen

import (
	"flashmc/internal/flash"
)

// emitTableFns emits the spec-table subroutines every protocol shares:
// the buffer-freeing helper, the buffer-using forwarder, the
// conditional free (value-sensitivity target), and a recursive helper
// with no sends (the lanes fixed-point case).
func (g *protoGen) emitTableFns() {
	b := g.newFile("subs")

	// free_and_nak: consumes the caller's buffer (BufferFreeFns).
	f := g.fn(b, "free_and_nak", flash.Subroutine)
	f.open(false)
	f.stmt("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;")
	f.rawSend(flash.MacroNISendRply, "F_NODATA", false)
	f.close(true)

	// forward_data: requires a live buffer and keeps it (BufferUseFns).
	f = g.fn(b, "forward_data", flash.Subroutine)
	f.open(false)
	f.stmt("HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;")
	f.rawSend(flash.MacroNISend, "F_DATA", false)
	f.close(false)

	// maybe_free_buf: returns 1 when it freed the buffer (CondFreeFns).
	f = g.fn(b, "maybe_free_buf", flash.Subroutine)
	f.ret = "unsigned"
	f.open(false)
	f.stmt("if (header.misc & 1) {")
	f.stmt("\tDEC_DB_REF(0);")
	f.stmt("\treturn 1;")
	f.stmt("}")
	f.stmt("return 0;")
	f.close(false)

	// spin: recursion with no sends (lane fixed point).
	f = g.fn(b, "spin", flash.Subroutine, "unsigned n")
	f.open(false)
	f.stmt("if (n > 0) {")
	f.stmt("\tspin(n - 1);")
	f.stmt("}")
	f.close(false)
}

// emitSeededSites plants every defect, false positive, annotation and
// violation the paper's tables report for this protocol, one dedicated
// function per site (or per shape), recording the manifest.
func (g *protoGen) emitSeededSites() {
	b := g.newFile("seeded")
	name := g.name

	// ---- §4 buffer fill races (Table 2) ----
	for i := 0; i < flash.Table2.Errors[name]; i++ {
		f := g.fn(b, g.uniqueName("h_race"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		// Only the rare fast path reads before synchronization — the
		// paper's "only the first byte of the buffer was read" corner
		// case, invisible to most dynamic testing.
		f.stmt("if (t0 > 2) {")
		line := f.stmt("\tt0 = MISCBUS_READ_DB(t0, 0);")
		f.stmt("} else {")
		f.stmt("\tWAIT_FOR_DB_FULL(t0);")
		f.stmt("\tt0 = MISCBUS_READ_DB(t0, 0);")
		f.stmt("}")
		g.reads += 2
		g.site("buffer_race", ClassError, b.name, line, "read before WAIT_FOR_DB_FULL on fast path")
		f.close(true)
	}
	for i := 0; i < flash.Table2.FalsePos[name]; i++ {
		f := g.fn(b, g.uniqueName("dbg_dump"), flash.Subroutine)
		f.open(false)
		f.declScratch(1)
		line := f.stmt("t0 = MISCBUS_READ_DB(t0, 0);")
		g.reads++
		g.site("buffer_race", ClassFalsePos, b.name, line,
			"intentional unsynchronized read in debugging code")
		f.close(false)
	}

	// ---- §5 message length (Table 3) ----
	for i := 0; i < flash.Table3.Errors[name]; i++ {
		// The paper's shape: an uncached-read handler whose rarely
		// exercised queue-full path assumes the wrong length value.
		f := g.fn(b, g.uniqueName("h_uncached"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		var line int
		f.stmt("if (t0 > 2) {")
		if i%2 == 0 {
			f.stmt("\tHANDLER_GLOBALS(header.nh.len) = LEN_NODATA;")
			line = f.rawSend(flash.MacroNISend, "F_DATA", false)
		} else {
			f.stmt("\tHANDLER_GLOBALS(header.nh.len) = LEN_WORD;")
			line = f.rawSend(flash.MacroPISend, "F_NODATA", false)
		}
		f.stmt("} else {")
		f.stmt("\tHANDLER_GLOBALS(header.nh.len) = LEN_WORD;")
		f.rawSend(flash.MacroNISend, "F_DATA", false)
		f.stmt("}")
		g.site("msglen", ClassError, b.name, line, "length inconsistent with has-data flag on queue-full path")
		f.close(true)
	}
	if n := flash.Table3.FalsePos[name]; n > 0 {
		// The coma shape: both reports come from one function whose
		// send parameter is chosen by the same run-time condition as
		// the length (two infeasible static paths).
		f := g.fn(b, g.uniqueName("h_variant"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("if (t0 & 1) {")
		f.stmt("\tHANDLER_GLOBALS(header.nh.len) = LEN_WORD;")
		f.stmt("} else {")
		f.stmt("\tHANDLER_GLOBALS(header.nh.len) = LEN_NODATA;")
		f.stmt("}")
		f.stmt("if (t0 & 1) {")
		l1 := f.rawSend(flash.MacroPISend, "F_DATA", false)
		f.stmt("} else {")
		l2 := f.rawSend(flash.MacroPISend, "F_NODATA", false)
		f.stmt("}")
		g.site("msglen", ClassFalsePos, b.name, l1, "infeasible path: data send on zero-len path")
		g.site("msglen", ClassFalsePos, b.name, l2, "infeasible path: nodata send on nonzero-len path")
		if n != 2 {
			panic("msglen false-positive quota must be 0 or 2 (one paired shape)")
		}
		f.close(true)
	}

	// ---- §6 buffer management (Table 4) ----
	g.emitBufMgmtSites(b)

	// ---- §7 lanes ----
	g.emitLaneSites(b)

	// ---- §9 allocation failure (Table 6) ----
	for i := 0; i < flash.Table6.BufferAlloc.FalsePos[name]; i++ {
		f := g.fn(b, g.uniqueName("sw_fill"), flash.SoftwareHandler)
		f.open(false)
		line := f.alloc(true)
		g.site("alloc", ClassFalsePos, b.name, line, "debug print before error check")
		f.declScratch(1)
		f.stmt("MISCBUS_WRITE_DB(db, t0);")
		f.close(true)
	}

	// ---- §9 directory (Table 6) ----
	g.emitDirectorySites(b)

	// ---- §9 send-wait (Table 6) ----
	for i := 0; i < flash.Table6.SendWait.FalsePos[name]; i++ {
		f := g.fn(b, g.uniqueName("h_intervene"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;")
		if i%2 == 0 {
			f.rawSend(flash.MacroPISend, "F_NODATA", true)
			f.stmt("while (PI_STATUS_REG == 0) {")
		} else {
			f.rawSend(flash.MacroIOSend, "F_NODATA", true)
			f.stmt("while (IO_STATUS_REG == 0) {")
		}
		f.stmt("\tt0 = t0 + 1;")
		f.stmt("}")
		f.deferExitSite("sendwait", ClassFalsePos,
			"busy-waits on the status register instead of the interface macro")
		f.close(true)
	}

	// ---- §8 execution restrictions (Table 5 violations) ----
	for i := 0; i < flash.Table5.Violations[name]; i++ {
		f := g.fn(b, g.uniqueName("h_nohook"), flash.HardwareHandler)
		f.open(true) // omit the prologue hook
		g.site("exec", ClassViolation, b.name, f.declLine, "simulator hook omitted")
		f.declScratch(1)
		f.filler(3, 0)
		f.close(true)
	}

	// Deprecated-macro warnings live in common code only (advisory,
	// not Table 5 violations).
	if name == "common" {
		f := g.fn(b, g.uniqueName("legacy_peek"), flash.Subroutine)
		f.open(false)
		f.declScratch(1)
		f.stmt("WAIT_FOR_DB_FULL(t0);")
		for i := 0; i < 2; i++ {
			line := f.stmt("t0 = OLD_MISCBUS_READ(t0);")
			g.reads++
			g.site("exec", ClassWarning, b.name, line, "deprecated macro")
		}
		f.close(false)
	}

	// Handlers exercising the spec tables: free via subroutine, use
	// via subroutine.
	f := g.fn(b, g.uniqueName("h_reply_fwd"), flash.HardwareHandler)
	f.open(false)
	f.stmt("free_and_nak();")
	f.close(false)
	g.spec.Allowance[f.name] = flash.LaneVector{0, 0, 0, 1} // callee's NAK reply

	f = g.fn(b, g.uniqueName("h_data_fwd"), flash.HardwareHandler)
	f.open(false)
	f.stmt("forward_data();")
	f.close(true)
	g.spec.Allowance[f.name] = flash.LaneVector{0, 0, 1, 0} // callee's data send

	// A handler exercising the value-sensitive conditional free.
	f = g.fn(b, g.uniqueName("h_cond_free"), flash.HardwareHandler)
	f.open(false)
	f.stmt("if (maybe_free_buf()) {")
	f.stmt("\treturn;")
	f.stmt("}")
	f.close(true)
}

// emitBufMgmtSites seeds Table 4's errors, minor findings, and
// useful/useless annotations.
func (g *protoGen) emitBufMgmtSites(b *fileBuilder) {
	name := g.name

	doubleFree := func(fnName string, class Class, note string) {
		f := g.fn(b, fnName, flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("DEC_DB_REF(0);")
		f.stmt("if (t0 > 2) {")
		line := f.stmt("\tDEC_DB_REF(0);")
		f.stmt("}")
		g.site("buffer_mgmt", class, b.name, line, note)
		f.close(false)
	}
	leak := func(fnName string, class Class, note string) {
		f := g.fn(b, fnName, flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("if (!(t0 > 2)) {")
		f.stmt("\tDEC_DB_REF(0);")
		f.stmt("}")
		f.deferExitSite("buffer_mgmt", class, note)
		f.close(false)
	}

	nErr := flash.Table4.Errors[name]
	for i := 0; i < nErr; i++ {
		// sci's three errors include one leak (paper: "two double
		// frees and one leak").
		if name == "sci" && i == nErr-1 {
			leak(g.uniqueName("h_partial"), ClassError, "buffer leak in in-progress code")
			continue
		}
		doubleFree(g.uniqueName("h_legacy"), ClassError, "double free inherited from parent protocol")
	}
	for i := 0; i < flash.Table4.Minor[name]; i++ {
		doubleFree(g.uniqueName("h_unreachable"), ClassMinor,
			"double free in an unreachable/partial handler")
	}

	// Useful annotations: a path intentionally hands the buffer to a
	// subsequent handler.
	for i := 0; i < flash.Table4.Useful[name]; i++ {
		f := g.fn(b, g.uniqueName("h_handoff"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("if (t0 & 4) {")
		line := g.annotation(f, "no_free_needed()", "\t")
		f.stmt("\treturn;")
		f.stmt("}")
		g.site("buffer_mgmt", ClassUseful, b.name, line,
			"buffer intentionally kept for the next handler")
		f.close(true)
	}

	// Useless annotations: 2a + b decomposition (a duplicated-condition
	// shapes worth two annotations, b data-dependent shapes worth one).
	remaining := flash.Table4.Useless[name]
	for remaining >= 2 {
		f := g.fn(b, g.uniqueName("h_dupcond"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(2)
		f.stmt("t1 = t0 & 1;")
		f.stmt("if (t1) {")
		f.stmt("\tDEC_DB_REF(0);")
		f.stmt("}")
		f.stmt("t0 = t0 + 1;")
		f.stmt("if (!t1) {")
		a1 := g.annotation(f, "has_buffer()", "\t")
		f.stmt("\tDEC_DB_REF(0);")
		f.stmt("} else {")
		a2 := g.annotation(f, "no_free_needed()", "\t")
		f.stmt("}")
		g.site("buffer_mgmt", ClassUseless, b.name, a1, "duplicated branch condition (impossible path)")
		g.site("buffer_mgmt", ClassUseless, b.name, a2, "duplicated branch condition (impossible path)")
		f.close(false)
		remaining -= 2
	}
	for ; remaining > 0; remaining-- {
		f := g.fn(b, g.uniqueName("h_datadep"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("t0 = t0 | 2;")
		f.stmt("if (t0 & 2) {")
		f.stmt("\tDEC_DB_REF(0);")
		f.stmt("} else {")
		a := g.annotation(f, "no_free_needed()", "\t")
		f.stmt("}")
		g.site("buffer_mgmt", ClassUseless, b.name, a,
			"value-correlated impossible path (mask set above)")
		f.close(false)
	}
}

// emitLaneSites seeds the two §7 lane bugs: a workaround subroutine
// whose extra send overflows the caller's quota (dyn_ptr) and a typo
// duplicating a reply send (bitvector).
func (g *protoGen) emitLaneSites(b *fileBuilder) {
	switch g.name {
	case "dyn_ptr":
		sub := g.fn(b, "workaround_hw_bug", flash.Subroutine)
		sub.open(false)
		sub.stmt("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;")
		subLine := sub.rawSend(flash.MacroNISend, "F_NODATA", false)
		sub.close(false)

		f := g.fn(b, g.uniqueName("h_getx"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.send(flash.MacroNISend, false, false)
		f.stmt("if (t0 > 2) {")
		f.stmt("\tworkaround_hw_bug();")
		f.stmt("}")
		f.close(true)
		// The handler's declared allowance does not account for the
		// workaround's extra send.
		g.spec.Allowance[f.name] = flash.LaneVector{0, 0, 1, 0}
		g.site("lanes", ClassError, b.name, subLine,
			"workaround code sends beyond the handler's lane allowance")
	case "bitvector":
		f := g.fn(b, g.uniqueName("h_reply2"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.send(flash.MacroNISendRply, false, false)
		f.stmt("if (t0 > 2) {")
		line := f.send(flash.MacroNISendRply, false, false) // the typo: duplicated send
		f.stmt("}")
		f.close(true)
		g.spec.Allowance[f.name] = flash.LaneVector{0, 0, 0, 1}
		g.site("lanes", ClassError, b.name, line, "duplicated reply send (typo)")
	}
}

// emitDirectorySites seeds the §9 directory findings.
func (g *protoGen) emitDirectorySites(b *fileBuilder) {
	name := g.name

	// Per-protocol decomposition of Table 6's directory false
	// positives into the paper's three causes.
	subFP := map[string]int{"bitvector": 1, "dyn_ptr": 4, "coma": 5, "rac": 4}[name]
	specFP := map[string]int{"dyn_ptr": 1, "rac": 2}[name]
	explFP := flash.Table6.Directory.FalsePos[name] - subFP - specFP

	// Subroutines that modify the entry and rely on the caller to
	// write it back.
	for i := 0; i < subFP; i++ {
		f := g.fn(b, g.uniqueName("dir_update"), flash.Subroutine, "unsigned a")
		f.open(false)
		f.stmt("DIR_LOAD(DIR_ADDR(a));")
		f.stmt("DIR_SET_STATE(3);")
		g.dirOps += 2
		f.deferExitSite("directory", ClassFalsePos, "caller writes the entry back")
		f.close(false)
	}

	// Speculative handlers abandoning a modification without a NAK.
	for i := 0; i < specFP; i++ {
		f := g.fn(b, g.uniqueName("h_spec"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("DIR_LOAD(DIR_ADDR(t0));")
		f.stmt("DIR_SET_STATE(2);")
		f.stmt("if (t0 > 5) {")
		f.stmt("\tDEC_DB_REF(0);")
		f.stmt("\treturn;")
		f.stmt("}")
		f.stmt("DIR_WRITEBACK(DIR_ADDR(t0));")
		g.dirOps += 3
		f.deferExitSite("directory", ClassFalsePos, "speculative back-out without NAK pattern")
		f.close(true)
	}

	// Explicit address computation instead of DIR_ADDR.
	for i := 0; i < explFP; i++ {
		f := g.fn(b, g.uniqueName("h_rawaddr"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		line := f.stmt("DIR_LOAD(dir_base + (t0 << 4));")
		f.stmt("t0 = DIR_READ_STATE();")
		g.dirOps += 2
		g.site("directory", ClassFalsePos, b.name, line,
			"directory address computed explicitly")
		f.close(true)
	}

	// The one real directory bug (bitvector): a rare path modifies the
	// entry and forgets the writeback.
	for i := 0; i < flash.Table6.Directory.Errors[name]; i++ {
		f := g.fn(b, g.uniqueName("h_dirbug"), flash.HardwareHandler)
		f.open(false)
		f.declScratch(1)
		f.stmt("DIR_LOAD(DIR_ADDR(t0));")
		f.stmt("if (t0 > 2) {")
		f.stmt("\tDIR_SET_STATE(2);")
		f.stmt("} else {")
		f.stmt("\tDIR_SET_STATE(3);")
		f.stmt("\tDIR_WRITEBACK(DIR_ADDR(t0));")
		f.stmt("}")
		g.dirOps += 4
		f.deferExitSite("directory", ClassError, "modified entry not written back on rare path")
		f.close(true)
	}
}
