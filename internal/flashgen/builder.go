package flashgen

import (
	"fmt"
	"strings"

	"flashmc/internal/flash"
)

// fileBuilder accumulates one C source file, tracking line numbers so
// snippet emitters can record exact manifest positions.
type fileBuilder struct {
	name  string
	lines []string
}

// add appends one line and returns its 1-based line number.
func (b *fileBuilder) add(line string) int {
	b.lines = append(b.lines, line)
	return len(b.lines)
}

func (b *fileBuilder) addf(format string, args ...any) int {
	return b.add(fmt.Sprintf(format, args...))
}

func (b *fileBuilder) text() string { return strings.Join(b.lines, "\n") + "\n" }

// loc counts non-blank lines emitted so far.
func (b *fileBuilder) loc() int {
	n := 0
	for _, l := range b.lines {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// fnEmitter writes one function body, tracking the resource counters
// the protocol plan audits (sends per lane, reads, allocations,
// directory ops, declared variables).
type fnEmitter struct {
	g      *protoGen
	b      *fileBuilder
	name   string
	kind   flash.HandlerKind
	params []string // rendered parameter declarations
	ret    string   // return type; "" means void

	declLine int
	closed   bool

	lanes     flash.LaneVector // total sends per lane in this body
	scratch   int              // scratch variables declared (t0..tn)
	hasHooks  bool
	allocOpen bool // inside the alloc success branch

	// exitSites defers manifest entries whose report position is the
	// function's closing brace (AtExit reports).
	exitSites []Site
}

// open emits the function header and simulator hooks. omitHook skips
// the prologue hook (seeded Table 5 violations).
func (f *fnEmitter) open(omitHook bool) {
	f.b.add("")
	sig := f.ret
	if sig == "" {
		sig = "void"
	}
	f.declLine = f.b.addf("%s %s(%s)", sig, f.name, strings.Join(f.paramsOrVoid(), ", "))
	f.b.add("{")
	f.b.add("\tHANDLER_DEFS();")
	if !omitHook {
		switch f.kind {
		case flash.Subroutine:
			f.b.add("\tSUBROUTINE_PROLOGUE();")
		default:
			f.b.addf("\tHANDLER_PROLOGUE(%d);", f.g.nextHandlerID())
		}
	}
	f.hasHooks = !omitHook
	f.g.countFn(f)
}

func (f *fnEmitter) paramsOrVoid() []string {
	if len(f.params) == 0 {
		return []string{"void"}
	}
	return f.params
}

// declScratch declares n scratch unsigned locals (t<i>), counting them
// against the protocol's variable budget.
func (f *fnEmitter) declScratch(n int) {
	for i := 0; i < n; i++ {
		f.b.addf("\tunsigned t%d;", f.scratch)
		f.scratch++
		f.g.vars++
	}
}

// stmt emits one indented statement line and returns its line number.
func (f *fnEmitter) stmt(format string, args ...any) int {
	return f.b.addf("\t"+format, args...)
}

// send emits a message send with a consistent preceding length
// assignment. macro selects the interface; data selects F_DATA (with a
// nonzero length) or F_NODATA (zero length); wait sets the wait bit.
// Returns the send's line number.
func (f *fnEmitter) send(macro string, data bool, wait bool) int {
	lenConst, dataConst := "LEN_NODATA", "F_NODATA"
	if data {
		dataConst = "F_DATA"
		lenConst = "LEN_WORD"
		if f.g.rng.Intn(2) == 0 {
			lenConst = "LEN_CACHELINE"
		}
	}
	f.stmt("HANDLER_GLOBALS(header.nh.len) = %s;", lenConst)
	return f.rawSend(macro, dataConst, wait)
}

// rawSend emits the send call only (no length assignment).
func (f *fnEmitter) rawSend(macro, dataConst string, wait bool) int {
	w := 0
	if wait {
		w = 1
	}
	lane := flash.LaneOfSend(macro)
	f.lanes = f.lanes.Add(lane)
	f.g.sends++
	if wait {
		f.g.waitSends++
	}
	var line int
	switch macro {
	case flash.MacroNISend, flash.MacroNISendRply:
		line = f.stmt("%s(%d, %s, 1, %d, 1, 0);", macro, 2+f.g.rng.Intn(6), dataConst, w)
	default:
		line = f.stmt("%s(%s, 1, 0, %d, 1, 0);", macro, dataConst, w)
	}
	return line
}

// cleanSendMacro rotates through the send interfaces.
func (f *fnEmitter) cleanSendMacro() string {
	macros := flash.SendMacros
	return macros[f.g.rng.Intn(len(macros))]
}

// readBlock emits one synchronizing wait plus k data-buffer reads.
func (f *fnEmitter) readBlock(k int) {
	f.declScratch(1)
	v := f.scratch - 1
	f.stmt("WAIT_FOR_DB_FULL(t%d);", v)
	for i := 0; i < k; i++ {
		f.stmt("t%d = MISCBUS_READ_DB(t%d, %d);", v, v, i)
		f.g.reads++
	}
}

// dirLifecycle emits a full load/read/modify/writeback cycle (4 ops).
func (f *fnEmitter) dirLifecycle() {
	f.declScratch(1)
	v := f.scratch - 1
	f.stmt("DIR_LOAD(DIR_ADDR(t%d));", v)
	f.stmt("t%d = DIR_READ_STATE();", v)
	f.stmt("DIR_SET_STATE(t%d + 1);", v)
	f.stmt("DIR_WRITEBACK(DIR_ADDR(t%d));", v)
	f.g.dirOps += 4
}

// dirPair emits a read-only load+read (2 ops).
func (f *fnEmitter) dirPair() {
	f.declScratch(1)
	v := f.scratch - 1
	f.stmt("DIR_LOAD(DIR_ADDR(t%d));", v)
	f.stmt("t%d = DIR_READ_STATE();", v)
	f.g.dirOps += 2
}

// dirLone emits a bare load (1 op).
func (f *fnEmitter) dirLone() {
	f.declScratch(1)
	f.stmt("DIR_LOAD(DIR_ADDR(t%d));", f.scratch-1)
	f.g.dirOps++
}

// alloc emits the standard software-handler allocation prologue: the
// buffer is allocated, checked against BUFFER_ERROR, and the rest of
// the body runs inside the success branch (so the failure path holds
// no usable buffer yet still reaches the single free emitted by
// close). If debugBeforeCheck, a DEBUG_PRINT of the buffer precedes
// the check (the paper's §9 false positive); the returned line is the
// site the alloc checker reports (the debug print) or the alloc line.
func (f *fnEmitter) alloc(debugBeforeCheck bool) (siteLine int) {
	f.b.add("\tunsigned db;")
	f.g.vars++
	line := f.stmt("db = ALLOC_DB();")
	f.g.allocs++
	siteLine = line
	if debugBeforeCheck {
		siteLine = f.stmt("DEBUG_PRINT(db);")
	}
	f.stmt("if (db != BUFFER_ERROR) {")
	f.allocOpen = true
	return siteLine
}

// filler emits n lines of checker-neutral computation, inserting
// branchy blocks to shape path counts. branches is how many if/else
// blocks to include among the n lines.
func (f *fnEmitter) filler(n, branches int) {
	if f.scratch == 0 {
		f.declScratch(1)
		n--
	}
	v := func() int { return f.g.rng.Intn(f.scratch) }
	emitted := 0
	for b := 0; b < branches && emitted+5 <= n; b++ {
		a, c := v(), v()
		f.stmt("if (t%d > %d) {", a, f.g.rng.Intn(8))
		f.stmt("\tt%d = t%d + %d;", c, c, f.g.rng.Intn(16)+1)
		f.stmt("} else {")
		f.stmt("\tt%d = t%d ^ %d;", c, a, f.g.rng.Intn(16)+1)
		f.stmt("}")
		emitted += 5
	}
	ops := []string{"t%d = t%d + %d;", "t%d = t%d ^ %d;", "t%d = (t%d << 1) | %d;", "t%d = t%d & %d;"}
	for emitted < n {
		op := ops[f.g.rng.Intn(len(ops))]
		f.stmt(op, v(), v(), f.g.rng.Intn(32))
		emitted++
	}
}

// deferExitSite registers a manifest site whose line is this
// function's closing brace.
func (f *fnEmitter) deferExitSite(checker string, class Class, note string) {
	f.exitSites = append(f.exitSites, Site{Checker: checker, Class: class, Note: note})
}

// close terminates the function. With freeBuffer set, the current
// buffer is freed first (hardware handlers' incoming buffer, or the
// software handler's allocation; seeded leak shapes pass false and
// manage frees themselves).
func (f *fnEmitter) close(freeBuffer bool) {
	if f.allocOpen {
		f.stmt("}")
		f.allocOpen = false
		if freeBuffer {
			f.stmt("DEC_DB_REF(db);")
			freeBuffer = false
		}
	}
	if freeBuffer {
		f.stmt("DEC_DB_REF(0);")
	}
	closing := f.b.add("}")
	for _, s := range f.exitSites {
		s.File = f.b.name
		s.Line = closing
		f.g.manifest = append(f.g.manifest, s)
	}
	f.exitSites = nil
	f.closed = true
	f.g.recordAllowance(f)
}
