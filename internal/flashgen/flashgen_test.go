package flashgen

import (
	"strings"
	"testing"

	"flashmc/internal/core"
	"flashmc/internal/flash"
)

func generate(t *testing.T) *Corpus {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("generation panicked: %v", r)
		}
	}()
	return Generate(Options{Seed: 1})
}

func TestGenerateAllProtocols(t *testing.T) {
	c := generate(t)
	if len(c.Protocols) != len(flash.ProtocolNames) {
		t.Fatalf("protocols %d", len(c.Protocols))
	}
	for _, p := range c.Protocols {
		if len(p.Files) == 0 || len(p.RootFiles) == 0 {
			t.Errorf("%s: no files", p.Name)
		}
		if p.Spec == nil || len(p.Spec.Hardware) == 0 {
			t.Errorf("%s: empty spec", p.Name)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(Options{Seed: 42})
	b := Generate(Options{Seed: 42})
	for i, p := range a.Protocols {
		q := b.Protocols[i]
		for name, text := range p.Files {
			if q.Files[name] != text {
				t.Fatalf("%s/%s differs between runs", p.Name, name)
			}
		}
		if len(p.Manifest) != len(q.Manifest) {
			t.Fatalf("%s manifest differs", p.Name)
		}
	}
}

func TestSeedChangesShape(t *testing.T) {
	a := Generate(Options{Seed: 1})
	b := Generate(Options{Seed: 2})
	same := true
	for name, text := range a.Protocols[0].Files {
		if b.Protocols[0].Files[name] != text {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpus")
	}
}

func TestCorpusParsesClean(t *testing.T) {
	c := generate(t)
	for _, p := range c.Protocols {
		prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(prog.ParseErrors) != 0 {
			t.Fatalf("%s: parse errors: %v", p.Name, prog.ParseErrors[:min(3, len(prog.ParseErrors))])
		}
		if len(prog.Fns) != flash.Table5.Handlers[p.Name] {
			t.Errorf("%s: %d functions, want %d", p.Name, len(prog.Fns), flash.Table5.Handlers[p.Name])
		}
	}
}

func TestNoSemWarnings(t *testing.T) {
	c := generate(t)
	p := c.Protocol("bitvector")
	prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range prog.Warnings {
		if strings.Contains(w.Error(), "undeclared") {
			t.Errorf("undeclared identifier in corpus: %v", w)
		}
	}
}

func TestManifestCountsMatchTables(t *testing.T) {
	c := generate(t)
	for _, p := range c.Protocols {
		count := func(checker string, class Class) int {
			n := 0
			for _, s := range p.Manifest {
				if s.Checker == checker && s.Class == class {
					n++
				}
			}
			return n
		}
		name := p.Name
		if got := count("buffer_race", ClassError); got != flash.Table2.Errors[name] {
			t.Errorf("%s race errors %d", name, got)
		}
		if got := count("buffer_race", ClassFalsePos); got != flash.Table2.FalsePos[name] {
			t.Errorf("%s race FPs %d", name, got)
		}
		if got := count("msglen", ClassError); got != flash.Table3.Errors[name] {
			t.Errorf("%s msglen errors %d", name, got)
		}
		if got := count("msglen", ClassFalsePos); got != flash.Table3.FalsePos[name] {
			t.Errorf("%s msglen FPs %d", name, got)
		}
		if got := count("buffer_mgmt", ClassError); got != flash.Table4.Errors[name] {
			t.Errorf("%s bufmgmt errors %d", name, got)
		}
		if got := count("buffer_mgmt", ClassMinor); got != flash.Table4.Minor[name] {
			t.Errorf("%s bufmgmt minor %d", name, got)
		}
		if got := count("buffer_mgmt", ClassUseful); got != flash.Table4.Useful[name] {
			t.Errorf("%s bufmgmt useful %d", name, got)
		}
		if got := count("buffer_mgmt", ClassUseless); got != flash.Table4.Useless[name] {
			t.Errorf("%s bufmgmt useless %d", name, got)
		}
		if got := count("lanes", ClassError); got != flash.LanesResults.Errors[name] {
			t.Errorf("%s lanes errors %d", name, got)
		}
		if got := count("alloc", ClassFalsePos); got != flash.Table6.BufferAlloc.FalsePos[name] {
			t.Errorf("%s alloc FPs %d", name, got)
		}
		if got := count("directory", ClassError); got != flash.Table6.Directory.Errors[name] {
			t.Errorf("%s directory errors %d", name, got)
		}
		if got := count("directory", ClassFalsePos); got != flash.Table6.Directory.FalsePos[name] {
			t.Errorf("%s directory FPs %d", name, got)
		}
		if got := count("sendwait", ClassFalsePos); got != flash.Table6.SendWait.FalsePos[name] {
			t.Errorf("%s sendwait FPs %d", name, got)
		}
		if got := count("exec", ClassViolation); got != flash.Table5.Violations[name] {
			t.Errorf("%s exec violations %d", name, got)
		}
	}
}

func TestSpecTablesResolve(t *testing.T) {
	c := generate(t)
	for _, p := range c.Protocols {
		prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
		if err != nil {
			t.Fatal(err)
		}
		// Every handler and table function the spec names must exist.
		for _, h := range append(append([]string{}, p.Spec.Hardware...), p.Spec.Software...) {
			if prog.Fn(h) == nil {
				t.Errorf("%s: spec handler %s undefined", p.Name, h)
			}
		}
		for _, tbl := range []map[string]bool{p.Spec.BufferFreeFns,
			p.Spec.BufferUseFns, p.Spec.CondFreeFns} {
			for fn := range tbl {
				if prog.Fn(fn) == nil {
					t.Errorf("%s: spec table fn %s undefined", p.Name, fn)
				}
			}
		}
		for fn := range p.Spec.NoStack {
			if prog.Fn(fn) == nil {
				t.Errorf("%s: no-stack handler %s undefined", p.Name, fn)
			}
		}
		// Every handler has a lane allowance entry.
		for _, h := range p.Spec.Hardware {
			if _, ok := p.Spec.Allowance[h]; !ok {
				t.Errorf("%s: handler %s without allowance", p.Name, h)
			}
		}
	}
}

func TestHandlerPrologueIDsUnique(t *testing.T) {
	c := generate(t)
	for _, p := range c.Protocols {
		seen := map[string]bool{}
		for _, text := range p.Files {
			for _, line := range strings.Split(text, "\n") {
				idx := strings.Index(line, "HANDLER_PROLOGUE(")
				if idx < 0 {
					continue
				}
				arg := line[idx+len("HANDLER_PROLOGUE("):]
				if end := strings.Index(arg, ")"); end >= 0 {
					arg = arg[:end]
				}
				if seen[arg] {
					t.Errorf("%s: duplicate handler id %s", p.Name, arg)
				}
				seen[arg] = true
			}
		}
	}
}

func TestManifestSitesPointAtRealLines(t *testing.T) {
	c := generate(t)
	for _, p := range c.Protocols {
		for _, s := range p.Manifest {
			text, ok := p.Files[s.File]
			if !ok {
				t.Errorf("%s: manifest file %s missing", p.Name, s.File)
				continue
			}
			lines := strings.Split(text, "\n")
			if s.Line < 1 || s.Line > len(lines) {
				t.Errorf("%s: site %s:%d out of range", p.Name, s.File, s.Line)
			}
		}
	}
}

func TestLOCWithinTolerance(t *testing.T) {
	c := generate(t)
	for _, p := range c.Protocols {
		loc := 0
		for _, text := range p.Files {
			for _, ln := range strings.Split(text, "\n") {
				if strings.TrimSpace(ln) != "" {
					loc++
				}
			}
		}
		want := flash.Table1[p.Name].LOC
		if loc < want*85/100 || loc > want*115/100 {
			t.Errorf("%s: LOC %d vs target %d (>15%% off)", p.Name, loc, want)
		}
	}
}

func TestStripAnnotationsKeepsLineCounts(t *testing.T) {
	a := Generate(Options{Seed: 7})
	b := Generate(Options{Seed: 7, StripAnnotations: true})
	for i, p := range a.Protocols {
		q := b.Protocols[i]
		for name, text := range p.Files {
			if strings.Count(text, "\n") != strings.Count(q.Files[name], "\n") {
				t.Errorf("%s/%s: line counts diverge when stripping annotations", p.Name, name)
			}
		}
		if strings.Contains(allText(q), "no_free_needed()") ||
			strings.Contains(allText(q), "has_buffer()") {
			t.Errorf("%s: annotations survived stripping", p.Name)
		}
	}
}

func allText(p *Protocol) string {
	var b strings.Builder
	for _, t := range p.Files {
		b.WriteString(t)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
