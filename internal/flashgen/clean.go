package flashgen

import (
	"fmt"
	"math"

	"flashmc/internal/flash"
)

// workItem emits one quota-consuming code block into a carrier
// function.
type workItem func(f *fnEmitter)

// emitCleanCode fills the protocol out to its Table 1/5 size with
// correct handler code: the remaining Applied-column quotas are
// distributed across clean hardware handlers, software handlers and
// subroutines, padded with checker-neutral filler shaped to the
// protocol's path statistics.
func (g *protoGen) emitCleanCode() {
	remFns := g.q.fns - g.fnCount
	nSW := g.q.allocs - g.allocs
	if remFns < nSW || nSW < 0 {
		panic("flashgen: function quota too small for " + g.name)
	}
	nRest := remFns - nSW
	nHW := nRest * 3 / 5
	nSub := nRest - nHW

	// Build the outstanding work items.
	var items []workItem

	remReads := g.q.reads - g.reads
	for remReads > 0 {
		k := 1 + g.rng.Intn(3)
		if k > remReads {
			k = remReads
		}
		kk := k
		items = append(items, func(f *fnEmitter) { f.readBlock(kk) })
		remReads -= k
	}

	remWait := g.q.waitSends - g.waitSends
	for i := 0; i < remWait; i++ {
		pi := i%2 == 0
		items = append(items, func(f *fnEmitter) {
			if pi {
				f.send(flash.MacroPISend, false, true)
				f.stmt("WAIT_FOR_PI_REPLY();")
			} else {
				f.send(flash.MacroIOSend, false, true)
				f.stmt("WAIT_FOR_IO_REPLY();")
			}
		})
	}

	remDir := g.q.dirOps - g.dirOps
	if remDir < 0 {
		panic("flashgen: directory quota overshot for " + g.name)
	}
	lone := remDir % 2
	even := remDir - lone
	lifecycles := even / 4
	pairs := (even % 4) / 2
	for i := 0; i < lifecycles; i++ {
		items = append(items, func(f *fnEmitter) { f.dirLifecycle() })
	}
	for i := 0; i < pairs; i++ {
		items = append(items, func(f *fnEmitter) { f.dirPair() })
	}
	if lone == 1 {
		items = append(items, func(f *fnEmitter) { f.dirLone() })
	}

	remSends := g.q.sends - g.sends - remWait
	if remSends < 0 {
		panic("flashgen: send quota overshot for " + g.name)
	}
	for i := 0; i < remSends; i++ {
		items = append(items, func(f *fnEmitter) {
			f.send(f.cleanSendMacro(), g.rng.Intn(2) == 0, false)
		})
	}

	g.rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	// Per-function branch shaping toward Table 1's path counts.
	avgPaths := float64(flash.Table1[g.name].Paths) / float64(g.q.fns)
	baseBranches := int(math.Round(math.Log2(math.Max(avgPaths, 1))))

	// Carrier plan: nSW software handlers, nHW hardware handlers
	// (first one oversized to reproduce the max-path-length tail),
	// nSub subroutines. The last three hardware handlers are declared
	// no-stack (they carry no items and stay register-resident).
	type plan struct {
		kind    flash.HandlerKind
		noStack bool
		big     bool
	}
	var plans []plan
	for i := 0; i < nSW; i++ {
		plans = append(plans, plan{kind: flash.SoftwareHandler})
	}
	for i := 0; i < nHW; i++ {
		p := plan{kind: flash.HardwareHandler}
		if i == 0 {
			p.big = true
		}
		if i >= nHW-3 && nHW > 6 {
			p.noStack = true
		}
		plans = append(plans, p)
	}
	for i := 0; i < nSub; i++ {
		plans = append(plans, plan{kind: flash.Subroutine})
	}

	// Items go to carriers that can hold them (not no-stack: those
	// stay minimal).
	carriers := 0
	for _, p := range plans {
		if !p.noStack {
			carriers++
		}
	}
	perCarrier := 0
	if carriers > 0 {
		perCarrier = (len(items) + carriers - 1) / carriers
	}

	files := []*fileBuilder{g.newFile("handlers1")}
	fnsPerFile := 40

	itemIdx := 0
	emitted := 0
	for pi, pl := range plans {
		if emitted >= fnsPerFile {
			files = append(files, g.newFile(suffixFor(len(files)+1)))
			emitted = 0
		}
		b := files[len(files)-1]
		last := pi == len(plans)-1

		prefix := "sub"
		switch pl.kind {
		case flash.HardwareHandler:
			prefix = "h_miss"
		case flash.SoftwareHandler:
			prefix = "sw_task"
		}
		var params []string
		if pl.kind == flash.Subroutine && g.rng.Intn(2) == 0 {
			params = []string{"unsigned arg0"}
		}
		f := g.fn(b, g.uniqueName(prefix), pl.kind, params...)
		if pl.noStack {
			g.spec.NoStack[f.name] = true
		}
		f.open(false)
		if pl.noStack {
			f.stmt("NO_STACK_DECL();")
		}
		if pl.kind == flash.SoftwareHandler {
			f.alloc(false)
		}

		// Assign this carrier's items.
		if !pl.noStack {
			for n := 0; n < perCarrier && itemIdx < len(items); n++ {
				items[itemIdx](f)
				itemIdx++
			}
		}

		// Variable padding: aim for the per-function share; the last
		// function lands the budget exactly (after its filler, which
		// may declare a scratch variable of its own).
		fnsLeft := len(plans) - pi
		varShare := (g.q.vars - g.vars) / fnsLeft
		if pl.noStack && varShare > 8 {
			varShare = 8
		}
		if !last && varShare > 0 {
			f.declScratch(varShare)
		}

		// Filler sized toward the LOC target.
		locShare := (g.q.loc - g.locSoFar()) / fnsLeft
		if pl.big {
			locShare = flash.Table1[g.name].MaxLen + 20
		}
		branches := baseBranches
		if branches > 0 {
			branches += g.rng.Intn(2)
		}
		if pl.big {
			// The oversized handler carries many branches too, so its
			// long paths dominate the protocol's path-length average
			// the way the real corpus's monolithic handlers do.
			branches = baseBranches + 5
		}
		if pl.noStack {
			branches = 1
			locShare = 10
		}
		fill := locShare - 8 // approximate structural lines already used
		if fill < 2 {
			fill = 2
		}
		f.filler(fill, branches)

		if last {
			pad := g.q.vars - g.vars
			if pad < 0 {
				panic("flashgen: variable quota overshot for " + g.name)
			}
			f.declScratch(pad)
		}

		f.close(pl.kind != flash.Subroutine)
		emitted++
	}

	if itemIdx < len(items) {
		panic("flashgen: work items left unassigned for " + g.name)
	}
}

// locSoFar counts lines emitted across all files of the protocol.
func (g *protoGen) locSoFar() int {
	total := 0
	for _, b := range g.files {
		total += b.loc()
	}
	return total
}

func suffixFor(n int) string {
	return fmt.Sprintf("handlers%d", n)
}
