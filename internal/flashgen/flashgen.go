// Package flashgen synthesizes the FLASH protocol corpus the
// reproduction checks: five cache-coherence protocols plus common
// code, written in protocol C against the flash-includes.h programming
// environment. The real FLASH sources are proprietary; the generator
// reproduces the properties the checkers observe — the per-protocol
// macro-usage counts ("Applied" columns) and the exact defect and
// false-positive distribution of the paper's Tables 2-7 — inside
// realistically sized and shaped handler bodies (Table 1).
//
// Every seeded site is recorded in a ground-truth manifest
// (checker, class, file, line), which package paper joins against
// checker reports: a report with no site or a site with no report is a
// reproduction failure, so the tables cannot drift silently.
package flashgen

import (
	"fmt"
	"math/rand"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/flash"
)

// Class classifies a manifest site the way the paper's tables do.
type Class string

// Site classes.
const (
	ClassError     Class = "error"     // real bug (Err columns)
	ClassFalsePos  Class = "falsepos"  // reported but judged false
	ClassMinor     Class = "minor"     // Table 4 "Minor": reported, low impact
	ClassUseful    Class = "useful"    // useful annotation (suppresses a report)
	ClassUseless   Class = "useless"   // useless annotation (analysis imprecision)
	ClassViolation Class = "violation" // Table 5 execution-restriction violation
	ClassWarning   Class = "warning"   // advisory (deprecated macros)
)

// Site is one seeded ground-truth location.
type Site struct {
	Checker string
	Class   Class
	File    string
	Line    int
	Note    string
}

// Protocol is one generated protocol: its sources, spec, and manifest.
type Protocol struct {
	Name      string
	Files     map[string]string
	RootFiles []string
	Spec      *flash.Spec
	Manifest  []Site
}

// Source returns a cpp.Source serving the protocol files plus the
// flash header.
func (p *Protocol) Source() cpp.MapSource {
	m := cpp.MapSource{"flash-includes.h": flash.IncludesH}
	for k, v := range p.Files {
		m[k] = v
	}
	return m
}

// Corpus is the full generated code base.
type Corpus struct {
	Protocols []*Protocol
}

// Protocol returns the named protocol, or nil.
func (c *Corpus) Protocol(name string) *Protocol {
	for _, p := range c.Protocols {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Options configures generation.
type Options struct {
	// Seed drives all randomized shaping; the default 0 means seed 1.
	Seed int64
	// StripAnnotations replaces the has_buffer()/no_free_needed()
	// annotation calls with plain statements, for the ablation that
	// verifies annotations suppress exactly the useful+useless sites.
	StripAnnotations bool
}

// Generate produces the corpus for the five protocols and common code.
func Generate(opts Options) *Corpus {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Corpus{}
	for i, name := range flash.ProtocolNames {
		g := newProtoGen(name, seed+int64(i)*7919, opts)
		c.Protocols = append(c.Protocols, g.generate())
	}
	return c
}

// quotas are the per-protocol targets derived from the paper tables.
type quotas struct {
	fns       int // Table 5 Handlers
	vars      int // Table 5 Vars
	loc       int // Table 1 LOC (approximate target)
	reads     int // Table 2 Applied
	sends     int // Table 3 Applied
	allocs    int // Table 6 buffer-alloc Applied
	dirOps    int // Table 6 directory Applied
	waitSends int // Table 6 send-wait Applied
}

func quotasFor(name string) quotas {
	return quotas{
		fns:       flash.Table5.Handlers[name],
		vars:      flash.Table5.Vars[name],
		loc:       flash.Table1[name].LOC,
		reads:     flash.Table2.Applied[name],
		sends:     flash.Table3.Applied[name],
		allocs:    flash.Table6.BufferAlloc.Applied[name],
		dirOps:    flash.Table6.Directory.Applied[name],
		waitSends: flash.Table6.SendWait.Applied[name],
	}
}

// protoGen generates one protocol.
type protoGen struct {
	name string
	rng  *rand.Rand
	opts Options
	q    quotas

	files    []*fileBuilder
	manifest []Site
	spec     *flash.Spec

	// resource counters (audited against q at the end)
	fnCount   int
	vars      int
	reads     int
	sends     int
	allocs    int
	dirOps    int
	waitSends int

	handlerID int
	fnSeq     int
}

func newProtoGen(name string, seed int64, opts Options) *protoGen {
	return &protoGen{
		name: name,
		rng:  rand.New(rand.NewSource(seed)),
		opts: opts,
		q:    quotasFor(name),
		spec: &flash.Spec{
			Protocol:        name,
			Allowance:       map[string]flash.LaneVector{},
			NoStack:         map[string]bool{},
			BufferFreeFns:   map[string]bool{"free_and_nak": true},
			BufferUseFns:    map[string]bool{"forward_data": true},
			CondFreeFns:     map[string]bool{"maybe_free_buf": true},
			DirWritebackFns: map[string]bool{},
		},
	}
}

func (g *protoGen) nextHandlerID() int {
	g.handlerID++
	return g.handlerID
}

// countFn registers a newly opened function with the spec.
func (g *protoGen) countFn(f *fnEmitter) {
	g.fnCount++
	switch f.kind {
	case flash.HardwareHandler:
		g.spec.Hardware = append(g.spec.Hardware, f.name)
	case flash.SoftwareHandler:
		g.spec.Software = append(g.spec.Software, f.name)
	}
}

// recordAllowance sets the handler's lane allowance to the sends the
// generator emitted (the protocol designer's declared quota). Seeded
// lane bugs lower one lane afterwards.
func (g *protoGen) recordAllowance(f *fnEmitter) {
	if f.kind == flash.Subroutine {
		return
	}
	g.spec.Allowance[f.name] = f.lanes
}

// site records one manifest entry.
func (g *protoGen) site(checker string, class Class, file string, line int, note string) {
	g.manifest = append(g.manifest, Site{Checker: checker, Class: class,
		File: file, Line: line, Note: note})
}

// newFile opens a new source file for this protocol.
func (g *protoGen) newFile(suffix string) *fileBuilder {
	b := &fileBuilder{name: fmt.Sprintf("%s_%s.c", g.name, suffix)}
	b.add("/* Synthetic FLASH protocol code: " + g.name + " (" + suffix + ") */")
	b.add(`#include "flash-includes.h"`)
	g.files = append(g.files, b)
	return b
}

// fn opens a function emitter.
func (g *protoGen) fn(b *fileBuilder, name string, kind flash.HandlerKind, params ...string) *fnEmitter {
	f := &fnEmitter{g: g, b: b, name: name, kind: kind, params: params}
	g.vars += len(params)
	return f
}

// uniqueName generates a function name with the protocol prefix.
func (g *protoGen) uniqueName(prefix string) string {
	g.fnSeq++
	return fmt.Sprintf("%s_%s_%d", prefix, g.name, g.fnSeq)
}

// annotation emits an annotation call, or a neutral placeholder when
// annotations are stripped (line counts stay identical either way).
func (g *protoGen) annotation(f *fnEmitter, call string, indent string) int {
	if g.opts.StripAnnotations {
		return f.b.add("\t" + indent + "; /* annotation stripped */")
	}
	return f.b.add("\t" + indent + call + ";")
}

// generate builds all files of the protocol.
func (g *protoGen) generate() *Protocol {
	g.emitTableFns()
	g.emitSeededSites()
	g.emitCleanCode()
	g.audit()

	p := &Protocol{Name: g.name, Spec: g.spec, Manifest: g.manifest,
		Files: map[string]string{}}
	for _, b := range g.files {
		p.Files[b.name] = b.text()
		p.RootFiles = append(p.RootFiles, b.name)
	}
	return p
}

// audit panics if any quota was overshot or could not be met; the
// tables are configuration, and a mismatch is a generator bug.
func (g *protoGen) audit() {
	check := func(what string, got, want int) {
		if got != want {
			panic(fmt.Sprintf("flashgen %s: %s = %d, want %d", g.name, what, got, want))
		}
	}
	check("functions", g.fnCount, g.q.fns)
	check("vars", g.vars, g.q.vars)
	check("reads", g.reads, g.q.reads)
	check("sends", g.sends, g.q.sends)
	check("allocs", g.allocs, g.q.allocs)
	check("dirOps", g.dirOps, g.q.dirOps)
	check("waitSends", g.waitSends, g.q.waitSends)
}
