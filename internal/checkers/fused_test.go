package checkers

import (
	"bytes"
	"encoding/json"
	"testing"

	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flashgen"
)

// renderSM serializes one checker's reports and coverage for byte
// comparison (Coverage timing fields are excluded from JSON, so the
// rendering is deterministic).
func renderSM(t *testing.T, reports []engine.Report, covs []*engine.Coverage) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Reports  []engine.Report
		Coverage []*engine.Coverage
	}{reports, covs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzFusedSuite drives the product-automaton compiler with generated
// protocol programs: for any flashgen seed and protocol, the fused
// suite's per-member reports and coverage must be byte-identical to
// running each SM checker independently. The property under fuzz is
// the fused engine's whole contract — pattern interning, the shared
// match index's empty-environment pre-filter, and per-member schedule
// preservation can only be wrong in ways that show up here.
func FuzzFusedSuite(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(2), uint8(3))
	f.Add(int64(1787569708), uint8(5))
	f.Add(int64(-9000), uint8(250))
	f.Fuzz(func(t *testing.T, seed int64, protoIdx uint8) {
		gen := flashgen.Generate(flashgen.Options{Seed: seed})
		if len(gen.Protocols) == 0 {
			t.Skip("no protocols generated")
		}
		p := gen.Protocols[int(protoIdx)%len(gen.Protocols)]
		prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
		if err != nil || len(prog.ParseErrors) > 0 {
			t.Skip("generated protocol failed to load")
		}
		suite := FusedSuite(p.Spec)
		fusedReports, fusedCovs := prog.RunFusedCov(suite.Fused)
		for i, c := range suite.Checkers {
			m := suite.Member[i]
			if m < 0 {
				continue
			}
			wantReports, wantCovs := c.(CoverageProvider).CheckCov(prog, p.Spec)
			got := renderSM(t, fusedReports[m], fusedCovs[m])
			want := renderSM(t, wantReports, wantCovs)
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d proto %s checker %s: fused output diverged from sequential:\nfused: %s\nsequential: %s",
					seed, p.Name, c.Name(), got, want)
			}
		}
	})
}
