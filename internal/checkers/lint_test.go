package checkers

import (
	"testing"

	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
	"flashmc/internal/lint"
)

// specVocab is the lint vocabulary for a protocol spec: the FLASH
// header identifiers plus the spec's own function tables (the only
// non-header names checker patterns may anchor on).
func specVocab(spec *flash.Spec) *lint.Vocab {
	v := lint.FlashVocab()
	for _, tbl := range []map[string]bool{
		spec.BufferFreeFns, spec.BufferUseFns, spec.CondFreeFns, spec.DirWritebackFns,
	} {
		for fn := range tbl {
			v.Add(fn)
		}
	}
	return v
}

// TestShippedCheckersLintClean runs every shipped checker's state
// machine through the full SM lint suite and requires nothing at Warn
// severity or above — the acceptance bar for "metalint passes cleanly
// on the shipped checkers". Info-level findings are allowed: the
// directory checker deliberately uses specific-before-general rule
// order, which lint records as order-sensitive without condemning it.
func TestShippedCheckersLintClean(t *testing.T) {
	spec := flashgen.Generate(flashgen.Options{Seed: 1}).Protocols[0].Spec
	vocab := specVocab(spec)

	smBacked := 0
	for _, c := range append(All(), NewBufferMgmtPruned()) {
		prov, ok := c.(SMProvider)
		if !ok {
			continue
		}
		smBacked++
		sm, decls := prov.BuildSM(spec)
		diags := lint.CheckSM(lint.Target{SM: sm, Decls: decls, Vocab: vocab})
		for _, d := range diags {
			if d.Severity >= lint.Warn {
				t.Errorf("%s: %s", c.Name(), d)
			}
		}
	}
	// bufmgmt (plus its pruned variant), msglen, race, alloc,
	// directory, sendwait: everything except the three global passes.
	if smBacked != 7 {
		t.Errorf("expected 7 SM-backed checker instances, linted %d", smBacked)
	}
}

// TestDirectoryOrderSensitivityRecorded pins that the directory
// checker's DIR_LOAD(DIR_ADDR(x)) / DIR_LOAD(x) pair is visible to
// lint as an Info-level order-sensitivity note (and nothing worse).
func TestDirectoryOrderSensitivityRecorded(t *testing.T) {
	spec := flashgen.Generate(flashgen.Options{Seed: 1}).Protocols[0].Spec
	sm, _ := NewDirectory().(SMProvider).BuildSM(spec)
	diags := lint.CheckSM(lint.Target{SM: sm, Vocab: specVocab(spec)})
	found := false
	for _, d := range diags {
		if d.Pass == "rule-order" && d.Severity == lint.Info {
			found = true
		}
		if d.Severity >= lint.Warn {
			t.Errorf("unexpected: %s", d)
		}
	}
	if !found {
		t.Error("directory specific-before-general pair should produce an Info rule-order note")
	}
}
