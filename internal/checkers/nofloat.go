package checkers

import (
	_ "embed"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/types"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
)

//go:embed nofloat.go
var nofloatSource string

// noFloat is the §8 floating-point restriction: MAGIC's protocol
// processor has no FPU, so no expression in protocol code may have
// floating-point type. Like the paper's version it "registers a
// function ... invoked on every tree node and checks that no tree node
// has a floating point type" — seven lines of checker core.
type noFloat struct{}

// NewNoFloat returns the no-floating-point checker.
func NewNoFloat() Checker { return &noFloat{} }

func (*noFloat) Name() string { return "nofloat" }

func (*noFloat) Version() string { return "1.1.0" }

func (*noFloat) LOC() int { return coreLOC(nofloatSource) }

func (*noFloat) Applied(p *core.Program) int { return -1 }

// checker-core: begin

func (*noFloat) Check(p *core.Program, spec *flash.Spec) []engine.Report {
	var out []engine.Report
	for _, fn := range p.Fns {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && e.Type() != nil && types.IsFloat(e.Type()) {
				msg := "floating point operation in protocol code"
				out = append(out, engine.Report{SM: "nofloat", Rule: "float",
					Fn: fn.Name, Pos: e.Pos(), Msg: msg,
					Trace: engine.Witness(e.Pos(), "float", ast.ExprString(e))})
				return false // one report per float subtree
			}
			return true
		})
	}
	return out
}

// checker-core: end

// CheckCov runs Check and attributes coverage: "typecheck" counts
// every typed expression examined — the checker's real work on a clean
// protocol (seeded corpora have no float sites, so "float" alone would
// read as a dead checker) — and "float" counts the violations.
func (*noFloat) CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage) {
	out := (&noFloat{}).Check(p, spec)
	cov := &engine.Coverage{SM: "nofloat"}
	examined := uint64(0)
	for _, fn := range p.Fns {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && e.Type() != nil {
				examined++
			}
			return true
		})
	}
	if examined > 0 {
		cov.Rules = map[string]uint64{"typecheck": examined}
	}
	for _, r := range out {
		if cov.Rules == nil {
			cov.Rules = map[string]uint64{}
		}
		cov.Rules[r.Rule]++
	}
	return out, []*engine.Coverage{cov}
}
