package checkers

import (
	_ "embed"
	"fmt"
	"strconv"
	"strings"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/global"
)

//go:embed lanes.go
var lanesSource string

// lanes is the §7 deadlock-avoidance checker. FLASH divides the
// network into four virtual lanes; the hardware only dispatches a
// handler once that handler's declared lane allowance is free, so a
// handler whose worst-case path sends more than its allowance on any
// lane can deadlock the machine. The check is inter-procedural: a
// local pass annotates every send with its lane and emits per-function
// flow-graph summaries (package global); the global pass links them
// and walks the call graph computing the maximum sends per lane on any
// path. The paper's fixed-point rule handles loops and recursion:
// re-entering a function (or revisiting a node) with an unchanged lane
// vector is a fixed point and that path stops; with sends inside the
// cycle the count grows until it exceeds the allowance and is
// reported.
type lanes struct{}

// NewLanes returns the lane-allowance checker.
func NewLanes() Checker { return &lanes{} }

func (*lanes) Name() string { return "lanes" }

func (*lanes) Version() string { return "1.1.0" }

func (*lanes) LOC() int { return coreLOC(lanesSource) }

func (*lanes) Applied(p *core.Program) int {
	total := 0
	for _, pat := range sendPatterns() {
		total += p.Count(pat)
	}
	return total
}

// LaneAnnotator is the local pass: it labels each CFG node with the
// sends ("send:<lane>") and space checks ("space:<lane>") it contains.
func LaneAnnotator(n *cfg.Node) []string {
	var root ast.Node
	switch n.Kind {
	case cfg.KindStmt:
		root = n.Stmt
	case cfg.KindBranch:
		root = n.Cond
	default:
		return nil
	}
	var anns []string
	ast.Inspect(root, func(x ast.Node) bool {
		call, ok := x.(*ast.Call)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if lane := flash.LaneOfSend(id.Name); lane >= 0 {
			anns = append(anns, "send:"+strconv.Itoa(lane))
		}
		if id.Name == flash.MacroWaitForSpace && len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.IntLit); ok {
				anns = append(anns, "space:"+strconv.Itoa(int(lit.Value)))
			}
		}
		return true
	})
	return anns
}

// Summarize runs the local pass over a program.
func Summarize(p *core.Program) []*global.Summary {
	out := make([]*global.Summary, 0, len(p.Graphs))
	for _, g := range p.Graphs {
		out = append(out, global.FromCFG(g, LaneAnnotator))
	}
	return out
}

func (*lanes) Check(p *core.Program, spec *flash.Spec) []engine.Report {
	reports, _ := (&lanes{}).CheckCov(p, spec)
	return reports
}

func (*lanes) CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage) {
	prog, linkErrs := global.Link(Summarize(p))
	reports, cov := CheckLanesCov(prog, spec)
	for _, e := range linkErrs {
		reports = append(reports, engine.Report{SM: "lanes", Rule: "link", Msg: e.Error(),
			Trace: engine.Witness(token.Pos{}, "link", e.Error())})
	}
	cov = MergeLaneCoverage(cov, LinkCoverage(len(linkErrs)))
	if cov.Empty() {
		return reports, nil
	}
	return reports, []*engine.Coverage{cov}
}

// LinkCoverage synthesizes lane coverage for n link errors, so warm
// runs that replay cached link diagnostics count them identically.
func LinkCoverage(n int) *engine.Coverage {
	cov := &engine.Coverage{SM: "lanes"}
	if n > 0 {
		cov.Rules = map[string]uint64{"link": uint64(n)}
	}
	return cov
}

// MergeLaneCoverage sums b into a (both keyed for the lanes checker).
func MergeLaneCoverage(a, b *engine.Coverage) *engine.Coverage {
	if b == nil {
		return a
	}
	for k, v := range b.Rules {
		if a.Rules == nil {
			a.Rules = map[string]uint64{}
		}
		a.Rules[k] += v
	}
	return a
}

// checker-core: begin

// defaultAllowance is used for handlers the spec does not list.
var defaultAllowance = flash.LaneVector{1, 1, 1, 1}

// laneWalker carries the global traversal state for one handler.
type laneWalker struct {
	prog    *global.Program
	allow   flash.LaneVector
	handler string
	reports *[]engine.Report
	memo    map[string][]flash.LaneVector
	inProg  map[string]bool
	trace   []string
	warned  map[string]bool
}

// CheckLanes runs the global pass over a linked program.
func CheckLanes(prog *global.Program, spec *flash.Spec) []engine.Report {
	reports, _ := CheckLanesCov(prog, spec)
	return reports
}

// CheckLanesCov is CheckLanes plus the pass's dynamic coverage:
// "walk" counts handlers actually traversed (those with a linked
// summary), "exceed" counts allowance violations. The coverage is a
// single merged entry — the per-handler decomposition lives in the
// scheduler, which calls this once per handler.
func CheckLanesCov(prog *global.Program, spec *flash.Spec) ([]engine.Report, *engine.Coverage) {
	var reports []engine.Report
	cov := &engine.Coverage{SM: "lanes"}
	for _, h := range append(append([]string{}, spec.Hardware...), spec.Software...) {
		s := prog.Funcs[h]
		if s == nil {
			continue
		}
		if cov.Rules == nil {
			cov.Rules = map[string]uint64{}
		}
		cov.Rules["walk"]++
		allow, ok := spec.Allowance[h]
		if !ok {
			allow = defaultAllowance
		}
		w := &laneWalker{
			prog: prog, allow: allow, handler: h, reports: &reports,
			memo:   map[string][]flash.LaneVector{},
			inProg: map[string]bool{},
			warned: map[string]bool{},
		}
		w.fnExits(h, flash.LaneVector{})
	}
	for _, r := range reports {
		cov.Rules[r.Rule]++
	}
	return reports, cov
}

// fnExits returns the possible lane vectors at fn's exit when entered
// with vec. Re-entry with the same vector is the paper's fixed point.
func (w *laneWalker) fnExits(fn string, vec flash.LaneVector) []flash.LaneVector {
	s := w.prog.Funcs[fn]
	if s == nil {
		return []flash.LaneVector{vec} // external/macro: no sends
	}
	key := fmt.Sprintf("F|%s|%v", fn, vec)
	if w.inProg[key] {
		return nil // fixed point: cycle added no sends; stop this path
	}
	if m, ok := w.memo[key]; ok {
		return m
	}
	w.inProg[key] = true
	w.trace = append(w.trace, fn)
	exits := w.nodeExits(s, s.Entry, vec)
	w.trace = w.trace[:len(w.trace)-1]
	w.inProg[key] = false
	w.memo[key] = exits
	return exits
}

// nodeExits returns exit vectors reachable from node id of s with vec.
func (w *laneWalker) nodeExits(s *global.Summary, id int, vec flash.LaneVector) []flash.LaneVector {
	key := fmt.Sprintf("N|%s|%d|%v", s.Fn, id, vec)
	if w.inProg[key] {
		return nil // loop fixed point (no sends since last visit)
	}
	if m, ok := w.memo[key]; ok {
		return m
	}
	w.inProg[key] = true
	defer func() { w.inProg[key] = false }()

	n := &s.Nodes[id]
	// Apply this node's annotations in order.
	for _, ann := range n.Anns {
		switch {
		case strings.HasPrefix(ann, "send:"):
			lane, _ := strconv.Atoi(ann[len("send:"):])
			vec = vec.Add(lane)
			if vec[lane] > w.allow[lane] {
				w.reportExceed(s, n, lane, vec[lane])
				w.memo[key] = nil
				return nil // cap: stop exploring past the violation
			}
		case strings.HasPrefix(ann, "space:"):
			lane, _ := strconv.Atoi(ann[len("space:"):])
			vec[lane] = 0 // handler suspended until space is available
		}
	}
	// Descend into callees, composing their exit-vector sets.
	vecs := []flash.LaneVector{vec}
	for _, callee := range n.Calls {
		var next []flash.LaneVector
		for _, v := range vecs {
			next = append(next, w.fnExits(callee, v)...)
		}
		vecs = dedupVecs(next)
		if len(vecs) == 0 {
			w.memo[key] = nil
			return nil
		}
	}
	if id == s.Exit {
		w.memo[key] = vecs
		return vecs
	}
	var out []flash.LaneVector
	for i, succ := range n.Succs {
		_ = i
		for _, v := range vecs {
			out = append(out, w.nodeExits(s, succ, v)...)
		}
	}
	out = dedupVecs(out)
	w.memo[key] = out
	return out
}

// reportExceed emits one violation with an inter-procedural backtrace.
func (w *laneWalker) reportExceed(s *global.Summary, n *global.Node, lane, count int) {
	site := fmt.Sprintf("%s:%d", n.File, n.Line)
	if w.warned[site+w.handler] {
		return
	}
	w.warned[site+w.handler] = true
	bt := strings.Join(w.trace, " -> ")
	pos := token.Pos{File: n.File, Line: n.Line, Col: 1}
	msg := fmt.Sprintf("handler %s exceeds lane %d allowance (%d > %d) via %s",
		w.handler, lane, count, w.allow[lane], bt)
	// The witness mirrors the call chain the walker is inside, one
	// step per entered function, ending at the offending send.
	steps := make([]engine.TraceStep, 0, len(w.trace)+1)
	for _, fn := range w.trace {
		step := engine.TraceStep{Rule: "call", Event: "enter " + fn}
		if fs := w.prog.Funcs[fn]; fs != nil {
			en := &fs.Nodes[fs.Entry]
			step.Pos = token.Pos{File: en.File, Line: en.Line, Col: 1}
		}
		steps = append(steps, step)
	}
	steps = append(steps, engine.TraceStep{Pos: pos, Rule: "exceed", Event: msg})
	*w.reports = append(*w.reports, engine.Report{
		SM: "lanes", Rule: "exceed", Fn: w.handler,
		Pos: pos, Msg: msg, Trace: steps,
	})
}

// checker-core: end

// dedupVecs removes duplicate lane vectors.
func dedupVecs(in []flash.LaneVector) []flash.LaneVector {
	if len(in) <= 1 {
		return in
	}
	seen := map[flash.LaneVector]bool{}
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
