package checkers

import (
	_ "embed"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cc/types"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
)

//go:embed execrestrict.go
var execrestrictSource string

// execRestrict is the §8 execution-restriction checker. It enforces:
//
//   - handlers take no parameters and return no results;
//   - deprecated macros are not used (warning);
//   - simulator hooks open every routine: HANDLER_DEFS() first, then
//     HANDLER_PROLOGUE(id) in handlers or SUBROUTINE_PROLOGUE() in
//     ordinary subroutines — omissions are the Table 5 violations;
//   - "no stack" handlers declare NO_STACK_DECL() exactly once at the
//     top, take no local addresses, declare at most maxNoStackLocals
//     locals, none larger than 64 bits, and bracket every call to
//     another handler with SET_STACKPTR() (no spurious uses).
type execRestrict struct{}

// NewExecRestrict returns the execution-restriction checker.
func NewExecRestrict() Checker { return &execRestrict{} }

func (*execRestrict) Name() string { return "exec" }

func (*execRestrict) Version() string { return "1.1.0" }

func (*execRestrict) LOC() int { return coreLOC(execrestrictSource) }

func (*execRestrict) Applied(p *core.Program) int {
	h, _ := ExecStats(p)
	return h
}

// ExecStats returns Table 5's Handlers (routines examined) and Vars
// (local variables examined) columns.
func ExecStats(p *core.Program) (handlers, vars int) {
	handlers = len(p.Fns)
	for _, fn := range p.Fns {
		vars += len(fn.Params)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeclStmt); ok {
				vars++
			}
			return true
		})
	}
	return handlers, vars
}

// maxNoStackLocals is the "too many local variables" threshold for
// no-stack handlers (they must fit the register file).
const maxNoStackLocals = 16

func (e *execRestrict) CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage) {
	reports := e.Check(p, spec)
	cov := engine.ReportCoverage("exec", reports)
	if cov.Empty() {
		return reports, nil
	}
	return reports, []*engine.Coverage{cov}
}

// checker-core: begin

func (*execRestrict) Check(p *core.Program, spec *flash.Spec) []engine.Report {
	var out []engine.Report
	rep := func(tag string, pos token.Pos, fn, msg string) {
		out = append(out, engine.Report{SM: "exec", Rule: tag, Fn: fn, Pos: pos, Msg: msg,
			Trace: engine.Witness(pos, tag, msg)})
	}

	for _, fn := range p.Fns {
		kind := spec.Classify(fn.Name)

		// Handlers take no parameters and return no results.
		if kind != flash.Subroutine {
			if !types.IsVoid(fn.Ret) {
				rep("handler-sig", fn.Pos(), fn.Name, "handler returns a value")
			}
			if len(fn.Params) != 0 {
				rep("handler-sig", fn.Pos(), fn.Name, "handler takes parameters")
			}
		}

		// Deprecated macros (warnings, not Table 5 violations).
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.Call); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == flash.MacroDeprecatedOp {
					rep("deprecated", call.Pos(), fn.Name,
						"deprecated macro "+flash.MacroDeprecatedOp)
				}
			}
			return true
		})

		out = append(out, checkHooks(fn, kind)...)
		if spec.NoStack[fn.Name] {
			out = append(out, checkNoStack(fn, spec)...)
		}
	}
	return out
}

// checkHooks verifies the simulator hook discipline: HANDLER_DEFS()
// must be the first statement and the matching prologue the second.
func checkHooks(fn *ast.FuncDecl, kind flash.HandlerKind) []engine.Report {
	var out []engine.Report
	rep := func(msg string) {
		out = append(out, engine.Report{SM: "exec", Rule: "hook-missing",
			Fn: fn.Name, Pos: fn.Pos(), Msg: msg,
			Trace: engine.Witness(fn.Pos(), "hook-missing", msg)})
	}
	stmts := fn.Body.Stmts
	callee := func(i int) string {
		if i >= len(stmts) {
			return ""
		}
		es, ok := stmts[i].(*ast.ExprStmt)
		if !ok {
			return ""
		}
		call, ok := es.X.(*ast.Call)
		if !ok {
			return ""
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return ""
		}
		return id.Name
	}
	if callee(0) != flash.MacroHandlerDefs {
		rep("first statement must be HANDLER_DEFS()")
		return out
	}
	want := flash.MacroSubrPrologue
	if kind != flash.Subroutine {
		want = flash.MacroHandlerPrologue
	}
	if callee(1) != want {
		rep("second statement must be " + want + "()")
	}
	return out
}

// checkNoStack enforces the no-stack discipline on one handler.
func checkNoStack(fn *ast.FuncDecl, spec *flash.Spec) []engine.Report {
	var out []engine.Report
	rep := func(tag string, pos token.Pos, msg string) {
		out = append(out, engine.Report{SM: "exec", Rule: tag, Fn: fn.Name, Pos: pos, Msg: msg,
			Trace: engine.Witness(pos, tag, msg)})
	}

	// Exactly one NO_STACK_DECL, among the first three statements
	// (after the two simulator hooks).
	declCount := 0
	declEarly := false
	for i, s := range fn.Body.Stmts {
		if nameOfCallStmt(s) == flash.MacroNoStackDecl {
			declCount++
			if i <= 2 {
				declEarly = true
			}
		}
	}
	switch {
	case declCount == 0:
		rep("nostack-decl", fn.Pos(), "no-stack handler missing NO_STACK_DECL()")
	case declCount > 1:
		rep("nostack-decl", fn.Pos(), "duplicate NO_STACK_DECL()")
	case !declEarly:
		rep("nostack-decl", fn.Pos(), "NO_STACK_DECL() must open the handler")
	}

	// Locals: count, size, and address-taking.
	locals := map[string]bool{}
	nLocals := 0
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		nLocals++
		locals[ds.Decl.Name] = true
		t := types.Unwrap(ds.Decl.T)
		if _, isArr := t.(*types.Array); isArr {
			rep("nostack-size", ds.Pos(), "array local in no-stack handler")
		} else if sz := t.Size(); sz > 8 {
			rep("nostack-size", ds.Pos(), "local larger than 64 bits in no-stack handler")
		}
		return true
	})
	if nLocals > maxNoStackLocals {
		rep("nostack-count", fn.Pos(), "too many locals for a no-stack handler")
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		u, ok := n.(*ast.Unary)
		if !ok || u.Op != token.BitAnd || u.Postfix {
			return true
		}
		if id, ok := u.X.(*ast.Ident); ok && locals[id.Name] {
			rep("nostack-addr", u.Pos(), "address of local taken in no-stack handler")
		}
		return true
	})

	// SET_STACKPTR discipline over every statement sequence.
	var walkSeq func(stmts []ast.Stmt)
	walkSeq = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			if nameOfCallStmt(s) == flash.MacroSetStackPtr {
				next := ""
				if i+1 < len(stmts) {
					next = nameOfCallStmt(stmts[i+1])
				}
				if next == "" || spec.Classify(next) == flash.Subroutine {
					rep("stackptr-spurious", s.Pos(), "SET_STACKPTR() not followed by a handler call")
				}
				continue
			}
			if callee := nameOfCallStmt(s); callee != "" && spec.Classify(callee) != flash.Subroutine {
				prev := ""
				if i > 0 {
					prev = nameOfCallStmt(stmts[i-1])
				}
				if prev != flash.MacroSetStackPtr {
					rep("stackptr-missing", s.Pos(), "handler call without preceding SET_STACKPTR()")
				}
			}
		}
		// Recurse into nested blocks.
		for _, s := range stmts {
			switch x := s.(type) {
			case *ast.Block:
				walkSeq(x.Stmts)
			case *ast.If:
				walkBody(x.Then, walkSeq)
				walkBody(x.Else, walkSeq)
			case *ast.While:
				walkBody(x.Body, walkSeq)
			case *ast.DoWhile:
				walkBody(x.Body, walkSeq)
			case *ast.For:
				walkBody(x.Body, walkSeq)
			case *ast.Switch:
				walkSeq(x.Body.Stmts)
			case *ast.Labeled:
				walkBody(x.Stmt, walkSeq)
			}
		}
	}
	walkSeq(fn.Body.Stmts)
	return out
}

// checker-core: end

// walkBody applies f to a statement treated as a sequence.
func walkBody(s ast.Stmt, f func([]ast.Stmt)) {
	switch x := s.(type) {
	case nil:
	case *ast.Block:
		f(x.Stmts)
	default:
		f([]ast.Stmt{s})
	}
}

// nameOfCallStmt returns the callee name when s is exactly a call
// statement, else "".
func nameOfCallStmt(s ast.Stmt) string {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.Call)
	if !ok {
		return ""
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}
