package checkers

import (
	"strings"
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
)

// loadProto wraps one C body (after the flash include) as a protocol.
func loadProto(t *testing.T, body string) *core.Program {
	t.Helper()
	src := cpp.MapSource{
		"flash-includes.h": flash.IncludesH,
		"proto.c":          "#include \"flash-includes.h\"\n" + body,
	}
	p, err := core.Load("test", src, []string{"proto.c"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(p.ParseErrors) != 0 {
		t.Fatalf("parse errors: %v", p.ParseErrors)
	}
	return p
}

// testSpec is a small protocol spec fixture.
func testSpec() *flash.Spec {
	return &flash.Spec{
		Protocol: "test",
		Hardware: []string{"h_local_get", "h_remote_put", "h_nostack"},
		Software: []string{"sw_flush"},
		Allowance: map[string]flash.LaneVector{
			"h_local_get":  {1, 0, 1, 1},
			"h_remote_put": {1, 1, 1, 1},
			"sw_flush":     {1, 1, 2, 2},
		},
		NoStack:         map[string]bool{"h_nostack": true},
		BufferFreeFns:   map[string]bool{"free_and_nak": true},
		BufferUseFns:    map[string]bool{"forward_data": true},
		CondFreeFns:     map[string]bool{"maybe_free_buf": true},
		DirWritebackFns: map[string]bool{},
	}
}

func msgs(reports []engine.Report) string {
	var parts []string
	for _, r := range reports {
		parts = append(parts, r.Msg)
	}
	return strings.Join(parts, " || ")
}

// ---- buffer race (§4) ----

func TestBufferRaceChecker(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	unsigned a;
	unsigned b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
	MISCBUS_READ_DB(a, b);
}`)
	c := NewBufferRace()
	reports := c.Check(p, testSpec())
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	if got := c.Applied(p); got != 2 {
		t.Errorf("applied %d", got)
	}
}

func TestBufferRaceOldMacro(t *testing.T) {
	p := loadProto(t, `
void h_x(void) {
	unsigned a;
	OLD_MISCBUS_READ(a);
}`)
	reports := NewBufferRace().Check(p, testSpec())
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

// ---- message length (§5) ----

func TestMsglenChecker(t *testing.T) {
	p := loadProto(t, `
void h_uncached_read(int queue_full) {
	HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	if (queue_full) {
		NI_SEND(3, F_DATA, 1, 0, 1, 0);
	} else {
		NI_SEND(3, F_NODATA, 1, 0, 1, 0);
	}
}`)
	c := NewMsglen()
	reports := c.Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "data send, zero len") {
		t.Fatalf("reports: %v", reports)
	}
	if got := c.Applied(p); got != 2 {
		t.Errorf("applied %d", got)
	}
}

func TestMsglenRuntimeVariantFalsePositive(t *testing.T) {
	// The coma false-positive shape: send parameter chosen by the same
	// runtime condition as the length; two of four static paths are
	// infeasible, and the unpruned checker reports both (paper §5).
	p := loadProto(t, `
void h_coma_fp(int use_data) {
	if (use_data) {
		HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
	} else {
		HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
	}
	if (use_data) {
		PI_SEND(F_DATA, 1, 0, 0, 1, 0);
	} else {
		PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
	}
}`)
	reports := NewMsglen().Check(p, testSpec())
	if len(reports) != 2 {
		t.Fatalf("expected the 2 infeasible-path reports, got: %v", reports)
	}
}

// ---- buffer management (§6) ----

func TestBufMgmtDoubleFree(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int c) {
	DEC_DB_REF(0);
	if (c) {
		DEC_DB_REF(0);
	}
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "freed twice") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestBufMgmtLeakAtExit(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int c) {
	if (c) {
		DEC_DB_REF(0);
	}
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "not freed on exit") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestBufMgmtSoftwareHandlerMustAllocate(t *testing.T) {
	p := loadProto(t, `
void sw_flush(void) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "without a data buffer") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestBufMgmtCleanHardwareHandler(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int c) {
	unsigned b;
	if (c) {
		NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	}
	DEC_DB_REF(0);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestBufMgmtAllocAfterFree(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	unsigned b;
	DEC_DB_REF(0);
	b = ALLOC_DB();
	NI_SEND(2, F_DATA, 1, 0, 1, 0);
	DEC_DB_REF(b);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestBufMgmtAllocWhileHolding(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	unsigned b;
	b = ALLOC_DB();
	DEC_DB_REF(b);
	DEC_DB_REF(b);
}`)
	// hardware handler starts has_buffer; alloc while holding = leak,
	// then free, free = double free.
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 2 {
		t.Fatalf("reports: %v", msgs(reports))
	}
}

func TestBufMgmtFreeViaTableFn(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int c) {
	if (c) {
		free_and_nak();
		return;
	}
	DEC_DB_REF(0);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestBufMgmtAnnotationsSuppress(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int c) {
	if (c) {
		no_free_needed();
		return;
	}
	DEC_DB_REF(0);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("no_free_needed did not suppress: %v", reports)
	}
}

func TestBufMgmtValueSensitiveFree(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	if (maybe_free_buf()) {
		return;
	}
	DEC_DB_REF(0);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("value-sensitive free not honored: %v", reports)
	}
}

func TestBufMgmtValueSensitiveDoubleFree(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	if (maybe_free_buf()) {
		DEC_DB_REF(0);
	}
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	// true arm: freed then freed again = double free; false arm: leak
	// at exit.
	if len(reports) != 2 {
		t.Fatalf("reports: %v", msgs(reports))
	}
}

func TestBufMgmtUseFnConsistency(t *testing.T) {
	p := loadProto(t, `
void forward_data(void) {
	DEC_DB_REF(0);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "buffer-user freed") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestBufMgmtSubroutinesSkipped(t *testing.T) {
	p := loadProto(t, `
void plain_helper(void) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

// TestBufMgmtSection11Incident replays the paper's §11 war story: a
// handler manually double-incremented its buffer's reference count
// with a function "never" used elsewhere, making a later pair of
// DEC_DB_REFs look like a double free. The fixed extension flags the
// manual increment itself instead of silently misjudging the frees.
func TestBufMgmtSection11Incident(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	INC_DB_REF(0); /* handed to a second consumer; refcount now 2 */
	DEC_DB_REF(0);
	DEC_DB_REF(0); /* the "obvious double free" an implementor removed */
}`)
	reports := NewBufferMgmt().Check(p, testSpec())
	var manual, doubleFree int
	for _, r := range reports {
		switch r.Rule {
		case "manual-incref":
			manual++
		case "double-free":
			doubleFree++
		}
	}
	if manual != 1 {
		t.Errorf("manual INC_DB_REF not flagged: %v", msgs(reports))
	}
	// The two-state SM still cannot count, so the second free is still
	// reported — exactly the paper's situation. The difference is that
	// the audit-this-increment report now sits right above it, which is
	// what would have saved the day of debugging.
	if doubleFree != 1 {
		t.Errorf("expected the (humanly-falsifiable) double-free report alongside the audit flag: %v", msgs(reports))
	}
}

// ---- allocation failure (§9) ----

func TestAllocCheckUnchecked(t *testing.T) {
	p := loadProto(t, `
void sw_flush(void) {
	unsigned b;
	unsigned v;
	b = ALLOC_DB();
	MISCBUS_WRITE_DB(b, v);
}`)
	c := NewAllocCheck()
	reports := c.Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "before allocation error check") {
		t.Fatalf("reports: %v", reports)
	}
	if got := c.Applied(p); got != 1 {
		t.Errorf("applied %d", got)
	}
}

func TestAllocCheckChecked(t *testing.T) {
	p := loadProto(t, `
void sw_flush(void) {
	unsigned b;
	unsigned v;
	b = ALLOC_DB();
	if (b == BUFFER_ERROR) {
		return;
	}
	MISCBUS_WRITE_DB(b, v);
}`)
	reports := NewAllocCheck().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestAllocCheckDebugPrintFalsePositive(t *testing.T) {
	// The dyn_ptr FP shape: debugging code prints the buffer value
	// before the error check (paper §9.1).
	p := loadProto(t, `
void sw_flush(void) {
	unsigned b;
	b = ALLOC_DB();
	DEBUG_PRINT(b);
	if (b == BUFFER_ERROR) {
		return;
	}
}`)
	reports := NewAllocCheck().Check(p, testSpec())
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestAllocCheckSecondAllocTracksFresh(t *testing.T) {
	p := loadProto(t, `
void sw_flush(void) {
	unsigned b;
	unsigned c;
	unsigned v;
	b = ALLOC_DB();
	if (b == BUFFER_ERROR) { return; }
	c = ALLOC_DB();
	MISCBUS_WRITE_DB(c, v);
}`)
	reports := NewAllocCheck().Check(p, testSpec())
	if len(reports) != 1 {
		t.Fatalf("second allocation not tracked freshly: %v", reports)
	}
}

// ---- directory (§9) ----

func TestDirectoryMissingWriteback(t *testing.T) {
	p := loadProto(t, `
void h_local_get(unsigned a) {
	DIR_LOAD(DIR_ADDR(a));
	DIR_SET_STATE(2);
}`)
	reports := NewDirectory().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "not written back") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestDirectoryCleanLifecycle(t *testing.T) {
	p := loadProto(t, `
void h_local_get(unsigned a) {
	unsigned s;
	DIR_LOAD(DIR_ADDR(a));
	s = DIR_READ_STATE();
	DIR_SET_STATE(s + 1);
	DIR_WRITEBACK(DIR_ADDR(a));
}`)
	reports := NewDirectory().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestDirectoryNakExemption(t *testing.T) {
	p := loadProto(t, `
void h_speculative(unsigned a, int miss) {
	DIR_LOAD(DIR_ADDR(a));
	DIR_SET_STATE(3);
	if (miss) {
		NI_SEND_RPLY(MSG_NAK, F_NODATA, 1, 0, 1, 0);
		return;
	}
	DIR_WRITEBACK(DIR_ADDR(a));
}`)
	reports := NewDirectory().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("NAK exemption failed: %v", reports)
	}
}

func TestDirectoryUseBeforeLoad(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	unsigned s;
	s = DIR_READ_STATE();
}`)
	reports := NewDirectory().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "before DIR_LOAD") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestDirectoryExplicitAddress(t *testing.T) {
	p := loadProto(t, `
void h_local_get(unsigned a) {
	DIR_LOAD(a << 4);
}`)
	reports := NewDirectory().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "DIR_ADDR") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestDirectoryApplied(t *testing.T) {
	p := loadProto(t, `
void h_local_get(unsigned a) {
	unsigned s;
	DIR_LOAD(DIR_ADDR(a));
	s = DIR_READ_STATE();
	DIR_SET_STATE(s);
	DIR_WRITEBACK(DIR_ADDR(a));
}`)
	if got := NewDirectory().Applied(p); got != 4 {
		t.Errorf("applied %d", got)
	}
}

// ---- send-wait (§9) ----

func TestSendWaitMissing(t *testing.T) {
	p := loadProto(t, `
void h_intervention(void) {
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
}`)
	c := NewSendWait()
	reports := c.Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "never waits") {
		t.Fatalf("reports: %v", reports)
	}
	if got := c.Applied(p); got != 1 {
		t.Errorf("applied %d", got)
	}
}

func TestSendWaitCorrectPairing(t *testing.T) {
	p := loadProto(t, `
void h_intervention(void) {
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
	WAIT_FOR_PI_REPLY();
	IO_SEND(F_NODATA, 1, 0, 1, 1, 0);
	WAIT_FOR_IO_REPLY();
}`)
	reports := NewSendWait().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSendWaitWrongInterface(t *testing.T) {
	p := loadProto(t, `
void h_intervention(void) {
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
	WAIT_FOR_IO_REPLY();
}`)
	reports := NewSendWait().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "IO interface for a PI reply") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSendWaitSecondSendBeforeWait(t *testing.T) {
	p := loadProto(t, `
void h_intervention(void) {
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	WAIT_FOR_PI_REPLY();
}`)
	reports := NewSendWait().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "second send") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSendWaitNonWaitingSendIgnored(t *testing.T) {
	p := loadProto(t, `
void h_x(void) {
	PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
}`)
	reports := NewSendWait().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

// ---- execution restrictions (§8) ----

func TestExecHookOmissions(t *testing.T) {
	p := loadProto(t, `
void h_good(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(3);
}
void h_missing_defs(void) {
	HANDLER_PROLOGUE(4);
}
void h_missing_prologue(void) {
	HANDLER_DEFS();
	DEC_DB_REF(0);
}
void helper_good(void) {
	HANDLER_DEFS();
	SUBROUTINE_PROLOGUE();
}
void helper_wrong_prologue(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(1);
}`)
	spec := testSpec()
	spec.Hardware = append(spec.Hardware, "h_good", "h_missing_defs", "h_missing_prologue")
	var hookReports []engine.Report
	for _, r := range NewExecRestrict().Check(p, spec) {
		if r.Rule == "hook-missing" {
			hookReports = append(hookReports, r)
		}
	}
	if len(hookReports) != 3 {
		t.Fatalf("hook reports: %v", hookReports)
	}
}

func TestExecHandlerSignature(t *testing.T) {
	p := loadProto(t, `
int h_bad_ret(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(1);
	return 0;
}
void h_bad_params(int x) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(2);
}`)
	spec := testSpec()
	spec.Hardware = append(spec.Hardware, "h_bad_ret", "h_bad_params")
	var sig int
	for _, r := range NewExecRestrict().Check(p, spec) {
		if r.Rule == "handler-sig" {
			sig++
		}
	}
	if sig != 2 {
		t.Fatalf("signature reports %d", sig)
	}
}

func TestExecDeprecatedWarning(t *testing.T) {
	p := loadProto(t, `
void helper(void) {
	HANDLER_DEFS();
	SUBROUTINE_PROLOGUE();
	OLD_MISCBUS_READ(4);
}`)
	var dep int
	for _, r := range NewExecRestrict().Check(p, testSpec()) {
		if r.Rule == "deprecated" {
			dep++
		}
	}
	if dep != 1 {
		t.Fatalf("deprecated reports %d", dep)
	}
}

func TestExecNoStackRules(t *testing.T) {
	p := loadProto(t, `
void h_nostack(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(9);
	NO_STACK_DECL();
	unsigned ok;
	unsigned arr[4];
	struct dir_entry_s big;
	unsigned *pp;
	pp = &ok;
	SET_STACKPTR();
	h_local_get();
	h_local_get();
	SET_STACKPTR();
	DEC_DB_REF(0);
}`)
	spec := testSpec()
	counts := map[string]int{}
	for _, r := range NewExecRestrict().Check(p, spec) {
		counts[r.Rule]++
	}
	if counts["nostack-size"] != 2 { // array + big struct
		t.Errorf("nostack-size %d", counts["nostack-size"])
	}
	if counts["nostack-addr"] != 1 {
		t.Errorf("nostack-addr %d", counts["nostack-addr"])
	}
	if counts["stackptr-missing"] != 1 { // second h_local_get call
		t.Errorf("stackptr-missing %d", counts["stackptr-missing"])
	}
	if counts["stackptr-spurious"] != 1 { // SET_STACKPTR before DEC_DB_REF
		t.Errorf("stackptr-spurious %d", counts["stackptr-spurious"])
	}
}

func TestExecNoStackDeclMissing(t *testing.T) {
	p := loadProto(t, `
void h_nostack(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(9);
	DEC_DB_REF(0);
}`)
	var miss int
	for _, r := range NewExecRestrict().Check(p, testSpec()) {
		if r.Rule == "nostack-decl" {
			miss++
		}
	}
	if miss != 1 {
		t.Fatalf("nostack-decl reports %d", miss)
	}
}

func TestExecStats(t *testing.T) {
	p := loadProto(t, `
void a(int p1, int p2) {
	HANDLER_DEFS();
	SUBROUTINE_PROLOGUE();
	int x;
	int y;
}
void b(void) {
	HANDLER_DEFS();
	SUBROUTINE_PROLOGUE();
	unsigned z;
}`)
	h, v := ExecStats(p)
	if h != 2 || v != 5 {
		t.Errorf("handlers=%d vars=%d", h, v)
	}
}

// ---- no-float (§8) ----

func TestNoFloat(t *testing.T) {
	p := loadProto(t, `
void helper(void) {
	double d;
	int i;
	i = 1 + 2;
	d = 1.5;
}`)
	reports := NewNoFloat().Check(p, testSpec())
	if len(reports) == 0 {
		t.Fatal("float not detected")
	}
	for _, r := range reports {
		if !strings.Contains(r.Msg, "floating point") {
			t.Errorf("msg %q", r.Msg)
		}
	}
}

func TestNoFloatCleanCode(t *testing.T) {
	p := loadProto(t, `
void helper(void) {
	unsigned a;
	a = (a << 2) | 1;
}`)
	if reports := NewNoFloat().Check(p, testSpec()); len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

// ---- lanes (§7) ----

func TestLanesWithinAllowance(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	DEC_DB_REF(0);
}`)
	reports := NewLanes().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestLanesExceeded(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int c) {
	PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
	if (c) {
		PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
	}
}`)
	reports := NewLanes().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "exceeds lane 0") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestLanesInterprocedural(t *testing.T) {
	p := loadProto(t, `
void send_helper(void) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
}
void h_local_get(void) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	send_helper();
}`)
	reports := NewLanes().Check(p, testSpec())
	if len(reports) != 1 {
		t.Fatalf("reports: %v", reports)
	}
	if !strings.Contains(reports[0].Msg, "h_local_get -> send_helper") {
		t.Errorf("backtrace missing: %q", reports[0].Msg)
	}
}

func TestLanesSpaceCheckResets(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	WAIT_FOR_SPACE(2);
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
}`)
	reports := NewLanes().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("space check not honored: %v", reports)
	}
}

func TestLanesLoopWithoutSendsIsFixedPoint(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int n) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	while (n > 0) {
		n--;
	}
	DEC_DB_REF(0);
}`)
	reports := NewLanes().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("fixed-point loop flagged: %v", reports)
	}
}

func TestLanesRecursionWithoutSendsIsFixedPoint(t *testing.T) {
	p := loadProto(t, `
void spin(int n) {
	if (n > 0) {
		spin(n - 1);
	}
}
void h_local_get(void) {
	spin(5);
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	DEC_DB_REF(0);
}`)
	reports := NewLanes().Check(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("recursion fixed point failed: %v", reports)
	}
}

func TestLanesLoopWithSendsFlagged(t *testing.T) {
	p := loadProto(t, `
void h_local_get(int n) {
	while (n > 0) {
		NI_SEND(2, F_NODATA, 1, 0, 1, 0);
		n--;
	}
}`)
	reports := NewLanes().Check(p, testSpec())
	if len(reports) != 1 {
		t.Fatalf("loop with sends not flagged: %v", reports)
	}
}

// ---- suite ----

func TestAllSuiteShape(t *testing.T) {
	suite := All()
	if len(suite) != 9 {
		t.Fatalf("suite size %d", len(suite))
	}
	names := map[string]bool{}
	for _, c := range suite {
		if c.LOC() <= 0 {
			t.Errorf("%s: LOC %d", c.Name(), c.LOC())
		}
		if names[c.Name()] {
			t.Errorf("duplicate checker name %s", c.Name())
		}
		names[c.Name()] = true
	}
}
