/* Buffer allocation failure checker (paper §9): every ALLOC_DB result
 * must be checked against BUFFER_ERROR before it is used. The buffer
 * variable is tracked so the comparison and uses must name the same
 * object. */
{ #include "flash-includes.h" }
sm alloc_check {
	decl { scalar } buf, x;
	track buf;
	start:
	{ buf = ALLOC_DB(); } ==> unchecked
	;
	unchecked:
	{ buf == BUFFER_ERROR } ==> start
	| { buf != BUFFER_ERROR } ==> start
	| { MISCBUS_WRITE_DB(buf, x); } ==>
		{ err("buffer used before allocation error check"); }
	| { DEBUG_PRINT(buf); } ==>
		{ err("buffer used before allocation error check"); }
	;
}
