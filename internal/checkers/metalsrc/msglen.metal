/* Message length / has-data consistency checker (paper §5, Figure 3):
 * data sends need a non-zero length field, no-data sends a zero one.
 * Extended with the reply-lane network send macro. */
{ #include "flash-includes.h" }
sm msglen_check {
	pat zero_assign =
		{ HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
	pat nonzero_assign =
		{ HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
	| { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;
	decl { unsigned } keep, swap, wait, dec, null, type;
	pat send_data =
		{ PI_SEND(F_DATA, keep, swap, wait, dec, null) }
	| { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
	| { NI_SEND(type, F_DATA, keep, wait, dec, null) }
	| { NI_SEND_RPLY(type, F_DATA, keep, wait, dec, null) } ;
	pat send_nodata =
		{ PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
	| { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
	| { NI_SEND(type, F_NODATA, keep, wait, dec, null) }
	| { NI_SEND_RPLY(type, F_NODATA, keep, wait, dec, null) } ;
	all:
		zero_assign ==> zero_len
	| nonzero_assign ==> nonzero_len
	;
	zero_len:
		send_data ==> { err("data send, zero len"); }
	;
	nonzero_len:
		send_nodata ==> { err("nodata send, nonzero len"); }
	;
}
