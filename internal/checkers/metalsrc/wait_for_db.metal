/* Buffer fill race-condition checker (paper §4, Figure 2).
 * "WAIT_FOR_DB_FULL must come before MISCBUS_READ_DB."
 * The deployed version (used for Table 2) also recognizes the
 * older-style read macro. */
{ #include "flash-includes.h" }
sm wait_for_db {
	decl { scalar } addr, buf;
	start:
	{ WAIT_FOR_DB_FULL(addr); } ==> stop
	| { MISCBUS_READ_DB(addr, buf); } ==>
		{ err("Buffer not synchronized"); }
	| { OLD_MISCBUS_READ(addr); } ==>
		{ err("Buffer not synchronized"); }
	;
}
