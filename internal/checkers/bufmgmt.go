package checkers

import (
	_ "embed"
	"strings"

	"flashmc/internal/cc/ast"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
)

//go:embed bufmgmt.go
var bufmgmtSource string

// bufferMgmt is the §6 buffer-management checker. It transliterates
// the paper's four rules:
//
//  1. hardware handlers begin with a data buffer they must free;
//  2. software handlers begin without one and must allocate before
//     sending;
//  3. after a free, no send until another allocation;
//  4. once allocated, the buffer must be freed before another
//     allocation.
//
// Frees can be explicit (DEC_DB_REF) or implied by calling a routine
// in the spec's buffer-free table; uses are sends or calls to routines
// in the buffer-use table. has_buffer()/no_free_needed() annotation
// calls suppress warnings, and the spec's conditional-free routines
// get branch-sensitive treatment (the paper's 12-line refinement that
// removed over twenty useless annotations).
type bufferMgmt struct {
	correlate bool
}

// NewBufferMgmt returns the buffer-management checker with the
// paper's configuration (no infeasible-path pruning).
func NewBufferMgmt() Checker { return &bufferMgmt{} }

// NewBufferMgmtPruned returns the ablation variant with the engine's
// correlated-branch pruner enabled; it removes the duplicated-condition
// class of useless annotations (DESIGN.md §6.2).
func NewBufferMgmtPruned() Checker { return &bufferMgmt{correlate: true} }

func (*bufferMgmt) Name() string { return "buffer_mgmt" }

func (*bufferMgmt) Version() string { return "1.1.0" }

func (*bufferMgmt) Applied(p *core.Program) int { return -1 }

func (*bufferMgmt) LOC() int { return coreLOC(bufmgmtSource) }

// States of the buffer SM.
const (
	stHasBuf   = "has_buffer"
	stNoBuf    = "no_buffer"
	stHasBufNF = "has_buffer_nofree"
)

func (b *bufferMgmt) Check(p *core.Program, spec *flash.Spec) []engine.Report {
	sm, _ := b.BuildSM(spec)
	return p.RunSM(sm)
}

func (b *bufferMgmt) CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage) {
	sm, _ := b.BuildSM(spec)
	return p.RunSMCov(sm)
}

func (b *bufferMgmt) BuildSM(spec *flash.Spec) (*engine.SM, map[string]string) {
	sm := buildBufferSM(spec)
	sm.CorrelateBranches = b.correlate
	return sm, nil
}

// checker-core: begin

// buildBufferSM assembles the SM for one protocol spec.
func buildBufferSM(spec *flash.Spec) *engine.SM {
	one := map[string]string{"x": ""}

	freePats := []engine.Pattern{
		{Stmt: mustStmtPat("DEC_DB_REF(x);", one)},
	}
	for fn := range spec.BufferFreeFns {
		freePats = append(freePats,
			engine.Pattern{Stmt: mustStmtPat(fn+"();", nil)},
			engine.Pattern{Stmt: mustStmtPat(fn+"(x);", one)})
	}
	allocPats := []engine.Pattern{
		{Stmt: mustStmtPat("x = ALLOC_DB();", one)},
		{Stmt: mustStmtPat("ALLOC_DB();", nil)},
	}
	var usePats []engine.Pattern
	for _, s := range sendPatterns() {
		usePats = append(usePats, engine.Pattern{Expr: s})
	}
	for fn := range spec.BufferUseFns {
		usePats = append(usePats,
			engine.Pattern{Stmt: mustStmtPat(fn+"();", nil)},
			engine.Pattern{Stmt: mustStmtPat(fn+"(x);", one)})
	}
	hasBufAnn := []engine.Pattern{{Stmt: mustStmtPat("has_buffer();", nil)}}
	noFreeAnn := []engine.Pattern{{Stmt: mustStmtPat("no_free_needed();", nil)}}

	sm := &engine.SM{
		Name: "buffer_mgmt",
		// StartFor picks between these per function; Starts mirrors
		// them for static reachability (package lint).
		Starts: []string{stHasBuf, stNoBuf},
		StartFor: func(fn *ast.FuncDecl) string {
			switch spec.Classify(fn.Name) {
			case flash.HardwareHandler:
				return stHasBuf
			case flash.SoftwareHandler:
				return stNoBuf
			}
			if spec.BufferFreeFns[fn.Name] || spec.BufferUseFns[fn.Name] {
				return stHasBuf // consistency check of the tables
			}
			return "" // unlisted subroutines are not checked locally
		},
	}

	incPats := []engine.Pattern{{Stmt: mustStmtPat("INC_DB_REF(x);", one)}}

	sm.Rules = []*engine.Rule{
		// Annotations first so they win over conflicting patterns.
		{State: engine.All, Patterns: hasBufAnn, Target: stHasBuf, Tag: "ann-has-buffer"},
		{State: engine.All, Patterns: noFreeAnn, Target: stHasBufNF, Tag: "ann-no-free"},

		// The paper's §11 lesson: a manual reference-count increment
		// blinded the checker and cost a day of debugging, so the
		// extension now "aggressively objects to occurrences of this
		// call". The two-state SM still cannot count references — the
		// audit report is the remedy, placed next to any downstream
		// misjudged free.
		{State: engine.All, Patterns: incPats, Target: stHasBuf, Tag: "manual-incref",
			Action: func(c *engine.Ctx) {
				c.Report("manual INC_DB_REF: the checker cannot track hand-adjusted reference counts; audit this call")
			}},

		// Frees.
		{State: stHasBuf, Patterns: freePats, Target: stNoBuf, Tag: "free"},
		{State: stHasBufNF, Patterns: freePats, Target: stNoBuf, Tag: "free"},
		{State: stNoBuf, Patterns: freePats, Tag: "double-free",
			Action: func(c *engine.Ctx) {
				c.Report("buffer freed twice (no buffer held here)")
			}},

		// Allocations.
		{State: stNoBuf, Patterns: allocPats, Target: stHasBuf, Tag: "alloc"},
		{State: stHasBuf, Patterns: allocPats, Tag: "alloc-leak",
			Action: func(c *engine.Ctx) {
				c.Report("allocation overwrites a live buffer (leak)")
			}},
		{State: stHasBufNF, Patterns: allocPats, Tag: "alloc-leak",
			Action: func(c *engine.Ctx) {
				c.Report("allocation overwrites a live buffer (leak)")
			}},

		// Uses without a buffer.
		{State: stNoBuf, Patterns: usePats, Tag: "use-no-buffer",
			Action: func(c *engine.Ctx) {
				c.Report("send/use without a data buffer")
			}},
	}

	// Conditional frees: branch-sensitive (paper §6 refinement).
	for fn := range spec.CondFreeFns {
		for _, txt := range []string{fn + "()", fn + "(x)"} {
			sm.Cond = append(sm.Cond, &engine.CondRule{
				State:      stHasBuf,
				Pattern:    mustExprPat(txt, one),
				TrueTarget: stNoBuf,
			})
		}
	}

	sm.AtExit = func(c *engine.Ctx) {
		name := c.FnName()
		switch {
		case spec.BufferUseFns[name]:
			if c.State == stNoBuf {
				c.Report("routine listed as buffer-user freed its caller's buffer")
			}
		default:
			if c.State == stHasBuf {
				c.Report("buffer not freed on exit (leak)")
			}
		}
	}
	return sm
}

// checker-core: end

// coreLOC counts the non-blank, non-comment lines between the
// checker-core markers of an embedded Go source file, so Table 7's
// checker-size column reports measured sizes rather than guesses.
func coreLOC(src string) int {
	lines := strings.Split(src, "\n")
	in := false
	count := 0
	for _, ln := range lines {
		t := strings.TrimSpace(ln)
		switch {
		case strings.Contains(t, "checker-core: begin"):
			in = true
		case strings.Contains(t, "checker-core: end"):
			in = false
		case in && t != "" && !strings.HasPrefix(t, "//"):
			count++
		}
	}
	return count
}
