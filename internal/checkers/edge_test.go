package checkers

import (
	"strings"
	"testing"

	"flashmc/internal/engine"
)

func TestDirectorySpuriousWriteback(t *testing.T) {
	p := loadProto(t, `
void h_spurious(unsigned a) {
	DIR_WRITEBACK(DIR_ADDR(a));
}`)
	reports := NewDirectory().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "spurious") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestDirectoryWritebackAfterReloadIsQuiet(t *testing.T) {
	p := loadProto(t, `
void h_reload(unsigned a) {
	unsigned s;
	DIR_LOAD(DIR_ADDR(a));
	s = DIR_READ_STATE();
	DIR_LOAD(DIR_ADDR(a + 1));
	DIR_SET_STATE(s);
	DIR_WRITEBACK(DIR_ADDR(a + 1));
}`)
	if reports := NewDirectory().Check(p, testSpec()); len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSendWaitIONeverWaits(t *testing.T) {
	p := loadProto(t, `
void h_io(void) {
	IO_SEND(F_NODATA, 1, 0, 1, 1, 0);
}`)
	reports := NewSendWait().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "IO reply") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSendWaitSequentialPairs(t *testing.T) {
	// Back-to-back send/wait pairs are common in intervention
	// handlers; none may cross-contaminate.
	p := loadProto(t, `
void h_chain(void) {
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
	WAIT_FOR_PI_REPLY();
	PI_SEND(F_NODATA, 1, 0, 1, 1, 0);
	WAIT_FOR_PI_REPLY();
	IO_SEND(F_NODATA, 1, 0, 1, 1, 0);
	WAIT_FOR_IO_REPLY();
}`)
	if reports := NewSendWait().Check(p, testSpec()); len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestExecTooManyLocals(t *testing.T) {
	body := "void h_nostack(void) {\nHANDLER_DEFS();\nHANDLER_PROLOGUE(1);\nNO_STACK_DECL();\n"
	for i := 0; i < 20; i++ {
		body += "unsigned v" + string(rune('a'+i)) + ";\n"
	}
	body += "DEC_DB_REF(0);\n}\n"
	p := loadProto(t, body)
	var n int
	for _, r := range NewExecRestrict().Check(p, testSpec()) {
		if r.Rule == "nostack-count" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("nostack-count reports %d", n)
	}
}

func TestExecDuplicateNoStackDecl(t *testing.T) {
	p := loadProto(t, `
void h_nostack(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(1);
	NO_STACK_DECL();
	NO_STACK_DECL();
	DEC_DB_REF(0);
}`)
	var n int
	for _, r := range NewExecRestrict().Check(p, testSpec()) {
		if r.Rule == "nostack-decl" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("nostack-decl reports %d", n)
	}
}

func TestExecLateNoStackDecl(t *testing.T) {
	p := loadProto(t, `
void h_nostack(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(1);
	unsigned a;
	a = 1;
	a = 2;
	NO_STACK_DECL();
	DEC_DB_REF(0);
}`)
	found := false
	for _, r := range NewExecRestrict().Check(p, testSpec()) {
		if r.Rule == "nostack-decl" && strings.Contains(r.Msg, "open") {
			found = true
		}
	}
	if !found {
		t.Fatal("late NO_STACK_DECL not flagged")
	}
}

func TestAllocCheckNotEqualDirection(t *testing.T) {
	// Checking via != (success branch) also counts as checked.
	p := loadProto(t, `
void sw_flush(void) {
	unsigned b;
	unsigned v;
	b = ALLOC_DB();
	if (b != BUFFER_ERROR) {
		MISCBUS_WRITE_DB(b, v);
	}
}`)
	if reports := NewAllocCheck().Check(p, testSpec()); len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestMsglenReplyLane(t *testing.T) {
	p := loadProto(t, `
void h_rply(void) {
	HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
	NI_SEND_RPLY(5, F_NODATA, 1, 0, 1, 0);
}`)
	reports := NewMsglen().Check(p, testSpec())
	if len(reports) != 1 || !strings.Contains(reports[0].Msg, "nodata send, nonzero len") {
		t.Fatalf("reports: %v", reports)
	}
}

func TestNoFloatThroughTypedef(t *testing.T) {
	p := loadProto(t, `
typedef double real_t;
void helper(void) {
	real_t r;
	r = 1;
}`)
	if reports := NewNoFloat().Check(p, testSpec()); len(reports) == 0 {
		t.Fatal("typedef'd double escaped the no-float checker")
	}
}

func TestBufferRaceWaitInLoopHeader(t *testing.T) {
	// A wait inside a loop condition still synchronizes the path that
	// executed it.
	p := loadProto(t, `
void h_loop(int n) {
	unsigned a;
	unsigned b;
	WAIT_FOR_DB_FULL(a);
	while (n > 0) {
		b = MISCBUS_READ_DB(a, 0);
		n--;
	}
}`)
	if reports := NewBufferRace().Check(p, testSpec()); len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestLanesMultipleHandlersIndependent(t *testing.T) {
	// Two handlers sharing a sending subroutine are checked against
	// their own allowances.
	p := loadProto(t, `
void shared_send(void) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
}
void h_rich(void) {
	NI_SEND(2, F_NODATA, 1, 0, 1, 0);
	shared_send();
}
void h_poor(void) {
	shared_send();
}`)
	spec := testSpec()
	spec.Hardware = append(spec.Hardware, "h_rich", "h_poor")
	spec.Allowance["h_rich"] = [4]int{0, 0, 2, 0}
	spec.Allowance["h_poor"] = [4]int{0, 0, 1, 0}
	reports := NewLanes().Check(p, spec)
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
	// Now starve h_rich.
	spec.Allowance["h_rich"] = [4]int{0, 0, 1, 0}
	reports = NewLanes().Check(p, spec)
	if len(reports) != 1 || reports[0].Fn != "h_rich" {
		t.Fatalf("reports: %v", reports)
	}
}

func TestCheckersQuietOnEmptyProgram(t *testing.T) {
	p := loadProto(t, `int just_a_global;`)
	for _, chk := range All() {
		if reports := chk.Check(p, testSpec()); len(reports) != 0 {
			t.Errorf("%s reported on an empty program: %v", chk.Name(), reports)
		}
	}
}

func TestReportStringFormat(t *testing.T) {
	p := loadProto(t, `
void h_x(void) {
	unsigned a;
	a = MISCBUS_READ_DB(a, 0);
}`)
	reports := NewBufferRace().Check(p, testSpec())
	if len(reports) != 1 {
		t.Fatal("setup")
	}
	s := reports[0].String()
	for _, want := range []string{"proto.c:", "wait_for_db", "h_x"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string %q missing %q", s, want)
		}
	}
	var _ engine.Report = reports[0]
}
