package checkers

import (
	_ "embed"

	"flashmc/internal/cc/ast"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
)

//go:embed directory.go
var directorySource string

// directory is the §9 manual directory-entry update checker. Handlers
// must DIR_LOAD an entry before reading or modifying it, and a
// modified entry must be written back before the handler completes —
// unless the handler abandons its speculative modification by sending
// a NAK reply (the paper's false-positive eliminator). DIR_LOAD
// addresses must come from the DIR_ADDR address-calculation macro;
// explicitly computed addresses are the paper's "abstraction errors".
type directory struct{}

// NewDirectory returns the directory-management checker.
func NewDirectory() Checker { return &directory{} }

func (*directory) Name() string { return "directory" }

func (*directory) Version() string { return "1.1.0" }

func (*directory) LOC() int { return coreLOC(directorySource) }

// dirOpPatterns lists the directory operations whose occurrence count
// is the table's Applied column.
func dirOpPatterns() []ast.Expr {
	one := map[string]string{"x": ""}
	return []ast.Expr{
		mustExprPat("DIR_LOAD(x)", one),
		mustExprPat("DIR_READ_STATE()", nil),
		mustExprPat("DIR_SET_STATE(x)", one),
		mustExprPat("DIR_SET_VECTOR(x)", one),
		mustExprPat("DIR_WRITEBACK(x)", one),
	}
}

func (*directory) Applied(p *core.Program) int {
	total := 0
	for _, pat := range dirOpPatterns() {
		total += p.Count(pat)
	}
	return total
}

func (*directory) Check(p *core.Program, spec *flash.Spec) []engine.Report {
	return p.RunSM(buildDirectorySM(spec))
}

func (*directory) CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage) {
	return p.RunSMCov(buildDirectorySM(spec))
}

func (*directory) BuildSM(spec *flash.Spec) (*engine.SM, map[string]string) {
	return buildDirectorySM(spec), nil
}

// checker-core: begin

// Directory SM states.
const (
	stUnloaded = "unloaded"
	stLoaded   = "loaded"
	stModified = "modified"
)

func buildDirectorySM(spec *flash.Spec) *engine.SM {
	one := map[string]string{"x": ""}
	args := map[string]string{"x": "", "a1": "", "a2": "", "a3": "", "a4": "", "a5": ""}

	loadGood := []engine.Pattern{{Stmt: mustStmtPat("DIR_LOAD(DIR_ADDR(x));", one)}}
	loadAny := []engine.Pattern{{Stmt: mustStmtPat("DIR_LOAD(x);", one)}}
	reads := []engine.Pattern{{Expr: mustExprPat("DIR_READ_STATE()", nil)}}
	modifies := []engine.Pattern{
		{Stmt: mustStmtPat("DIR_SET_STATE(x);", one)},
		{Stmt: mustStmtPat("DIR_SET_VECTOR(x);", one)},
	}
	writeback := []engine.Pattern{{Stmt: mustStmtPat("DIR_WRITEBACK(x);", one)}}
	// A NAK reply abandons a speculative modification legitimately.
	naks := []engine.Pattern{
		{Expr: mustExprPat("NI_SEND_RPLY(MSG_NAK, a1, a2, a3, a4, a5)", args)},
		{Expr: mustExprPat("NI_SEND(MSG_NAK, a1, a2, a3, a4, a5)", args)},
	}

	sm := &engine.SM{
		Name:  "directory",
		Start: stUnloaded,
		StartFor: func(fn *ast.FuncDecl) string {
			// Every routine is checked; subroutines that modify on
			// their caller's behalf produce the paper's subroutine
			// false positives.
			return stUnloaded
		},
	}
	sm.Rules = []*engine.Rule{
		// Loads.
		{State: engine.All, Patterns: loadGood, Target: stLoaded, Tag: "load"},
		{State: engine.All, Patterns: loadAny, Target: stLoaded, Tag: "load-raw",
			Action: func(c *engine.Ctx) {
				c.Report("directory address computed explicitly (use DIR_ADDR)")
			}},

		// Uses before load.
		{State: stUnloaded, Patterns: reads, Target: stLoaded, Tag: "use-before-load",
			Action: func(c *engine.Ctx) {
				c.Report("directory entry read before DIR_LOAD")
			}},
		{State: stUnloaded, Patterns: modifies, Target: stModified, Tag: "mod-before-load",
			Action: func(c *engine.Ctx) {
				c.Report("directory entry modified before DIR_LOAD")
			}},
		{State: stUnloaded, Patterns: writeback, Target: stLoaded, Tag: "spurious-wb",
			Action: func(c *engine.Ctx) {
				c.Report("spurious directory writeback (nothing loaded)")
			}},

		// Normal lifecycle.
		{State: stLoaded, Patterns: modifies, Target: stModified, Tag: "modify"},
		{State: stModified, Patterns: writeback, Target: stLoaded, Tag: "writeback"},
		{State: stLoaded, Patterns: writeback, Tag: "wb-unmodified"}, // harmless
		{State: stModified, Patterns: naks, Target: stLoaded, Tag: "nak-abandon"},
	}
	sm.AtExit = func(c *engine.Ctx) {
		if c.State == stModified {
			c.Report("modified directory entry not written back")
		}
	}
	return sm
}

// checker-core: end
