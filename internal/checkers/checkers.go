// Package checkers implements the paper's eight FLASH checkers.
// Three are metal programs (buffer race §4, message length §5, buffer
// allocation §9) compiled and executed exactly as a user extension
// would be; the rest are Go-built state machines and AST passes
// against the same engine, mirroring the parts of the paper's tooling
// that used the xg++ API directly (inter-procedural lanes §7,
// execution restrictions §8) or needed checker tables (§6, §9).
package checkers

import (
	_ "embed"
	"fmt"
	"sync"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/parser"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/metal"
)

// Checker is one system-rule checker.
type Checker interface {
	// Name is the stable checker identifier used in manifests.
	Name() string
	// Version is the checker's semantic version. It participates in
	// the depot cache key, so bumping it when the checker's rules
	// change invalidates every cached result the old rules produced.
	Version() string
	// Check runs the checker over a loaded program under a protocol
	// spec and returns its reports.
	Check(p *core.Program, spec *flash.Spec) []engine.Report
	// Applied returns how many program points the check examined (the
	// tables' "Applied" columns); -1 if not meaningful.
	Applied(p *core.Program) int
	// LOC is the size of the checker (metal lines for metal checkers,
	// semantic-core lines for Go checkers) for Table 7.
	LOC() int
}

// SMProvider is implemented by checkers whose analysis is a single
// state machine. BuildSM returns the compiled SM for a protocol spec
// together with the metal wildcard declaration table when the checker
// is written in metal (nil for SMs assembled in Go). Package lint's
// SM passes and cmd/metalint consume it; global checkers (lanes,
// exec-restrict, no-float) have no SM and do not implement it.
type SMProvider interface {
	BuildSM(spec *flash.Spec) (*engine.SM, map[string]string)
}

// CoverageProvider is implemented by every built-in checker: CheckCov
// is Check plus the dynamic coverage the run produced — one
// engine.Coverage per analyzed function for SM checkers, a single
// synthesized coverage for AST and global passes. Empty coverages are
// omitted. internal/cover merges the results across checkers and
// protocols.
type CoverageProvider interface {
	CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage)
}

// Metal checker sources, embedded so the library is self-contained.
var (
	//go:embed metalsrc/wait_for_db.metal
	WaitForDBSource string
	//go:embed metalsrc/msglen.metal
	MsglenSource string
	//go:embed metalsrc/alloc_check.metal
	AllocCheckSource string
)

// compileMetal caches compiled metal programs (pattern compilation is
// pure given the flash header).
var compileMetal = func() func(src string) *metal.Program {
	var mu sync.Mutex
	cache := map[string]*metal.Program{}
	return func(src string) *metal.Program {
		mu.Lock()
		defer mu.Unlock()
		if p, ok := cache[src]; ok {
			return p
		}
		p, err := metal.Compile(src, metal.Options{Include: flash.HeaderSource()})
		if err != nil {
			panic(fmt.Sprintf("embedded metal checker failed to compile: %v", err))
		}
		cache[src] = p
		return p
	}
}()

// mustExprPat compiles an expression pattern with the given wildcard
// constraints, panicking on error (sources are compile-time constants).
func mustExprPat(src string, wild map[string]string) ast.Expr {
	e, err := parser.ParseExprPattern(src, parser.PatternContext{Wildcards: wild})
	if err != nil {
		panic(fmt.Sprintf("bad builtin pattern %q: %v", src, err))
	}
	return e
}

// mustStmtPat compiles a statement pattern.
func mustStmtPat(src string, wild map[string]string) ast.Stmt {
	s, err := parser.ParseStmtPattern(src, parser.PatternContext{Wildcards: wild})
	if err != nil {
		panic(fmt.Sprintf("bad builtin pattern %q: %v", src, err))
	}
	return s
}

// anyArgs builds the permissive wildcard set used for send patterns.
var anyArgs = map[string]string{
	"a1": "", "a2": "", "a3": "", "a4": "", "a5": "", "a6": "",
}

// metalChecker wraps a compiled metal program as a Checker.
type metalChecker struct {
	name    string
	version string
	src     string
	applied []ast.Expr // patterns whose occurrences count as "applied"
}

func (m *metalChecker) Name() string { return m.name }

func (m *metalChecker) Version() string { return m.version }

func (m *metalChecker) LOC() int { return compileMetal(m.src).LOC }

func (m *metalChecker) Check(p *core.Program, spec *flash.Spec) []engine.Report {
	return p.RunSM(compileMetal(m.src).SM)
}

func (m *metalChecker) CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage) {
	return p.RunSMCov(compileMetal(m.src).SM)
}

func (m *metalChecker) BuildSM(spec *flash.Spec) (*engine.SM, map[string]string) {
	prog := compileMetal(m.src)
	return prog.SM, prog.Decls
}

func (m *metalChecker) Applied(p *core.Program) int {
	total := 0
	for _, pat := range m.applied {
		total += p.Count(pat)
	}
	return total
}

// NewBufferRace returns the §4 buffer fill race checker (Figure 2).
// Applied counts data-buffer reads.
func NewBufferRace() Checker {
	return &metalChecker{
		name:    "buffer_race",
		version: "1.1.0",
		src:     WaitForDBSource,
		applied: []ast.Expr{
			mustExprPat("MISCBUS_READ_DB(a1, a2)", anyArgs),
			mustExprPat("OLD_MISCBUS_READ(a1)", anyArgs),
		},
	}
}

// sendPatterns lists all message-send expression patterns.
func sendPatterns() []ast.Expr {
	return []ast.Expr{
		mustExprPat("PI_SEND(a1, a2, a3, a4, a5, a6)", anyArgs),
		mustExprPat("IO_SEND(a1, a2, a3, a4, a5, a6)", anyArgs),
		mustExprPat("NI_SEND(a1, a2, a3, a4, a5, a6)", anyArgs),
		mustExprPat("NI_SEND_RPLY(a1, a2, a3, a4, a5, a6)", anyArgs),
	}
}

// NewMsglen returns the §5 message-length consistency checker
// (Figure 3). Applied counts message sends.
func NewMsglen() Checker {
	return &metalChecker{
		name:    "msglen",
		version: "1.1.0",
		src:     MsglenSource,
		applied: sendPatterns(),
	}
}

// NewAllocCheck returns the §9 allocation-failure checker. Applied
// counts buffer allocations.
func NewAllocCheck() Checker {
	return &metalChecker{
		name:    "alloc",
		version: "1.1.0",
		src:     AllocCheckSource,
		applied: []ast.Expr{
			mustExprPat("ALLOC_DB()", nil),
		},
	}
}

// All returns the full checker suite in Table 7 order.
func All() []Checker {
	return []Checker{
		NewBufferMgmt(),
		NewMsglen(),
		NewLanes(),
		NewBufferRace(),
		NewAllocCheck(),
		NewDirectory(),
		NewSendWait(),
		NewExecRestrict(),
		NewNoFloat(),
	}
}
