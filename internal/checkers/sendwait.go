package checkers

import (
	_ "embed"

	"flashmc/internal/cc/ast"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
)

//go:embed sendwait.go
var sendwaitSource string

// sendWait is the §9 send-wait pairing checker: a send whose wait bit
// is set must be followed by a wait on the matching hardware interface
// (WAIT_FOR_PI_REPLY / WAIT_FOR_IO_REPLY), with no other send in
// between; otherwise the machine deadlocks.
type sendWait struct{}

// NewSendWait returns the send-wait checker.
func NewSendWait() Checker { return &sendWait{} }

func (*sendWait) Name() string { return "sendwait" }

func (*sendWait) Version() string { return "1.1.0" }

func (*sendWait) LOC() int { return coreLOC(sendwaitSource) }

// waitingSendPatterns matches PI/IO sends whose wait argument is the
// literal 1.
func waitingSendPatterns() (pi, io []ast.Expr) {
	w := map[string]string{"a1": "", "a2": "", "a3": "", "a5": "", "a6": ""}
	pi = []ast.Expr{mustExprPat("PI_SEND(a1, a2, a3, 1, a5, a6)", w)}
	io = []ast.Expr{mustExprPat("IO_SEND(a1, a2, a3, 1, a5, a6)", w)}
	return pi, io
}

func (*sendWait) Applied(p *core.Program) int {
	pi, io := waitingSendPatterns()
	total := 0
	for _, pat := range append(pi, io...) {
		total += p.Count(pat)
	}
	return total
}

func (*sendWait) Check(p *core.Program, spec *flash.Spec) []engine.Report {
	return p.RunSM(buildSendWaitSM())
}

func (*sendWait) CheckCov(p *core.Program, spec *flash.Spec) ([]engine.Report, []*engine.Coverage) {
	return p.RunSMCov(buildSendWaitSM())
}

func (*sendWait) BuildSM(spec *flash.Spec) (*engine.SM, map[string]string) {
	return buildSendWaitSM(), nil
}

// checker-core: begin

// Send-wait SM states.
const (
	stIdle   = "idle"
	stWaitPI = "await_pi"
	stWaitIO = "await_io"
)

func buildSendWaitSM() *engine.SM {
	piPats, ioPats := waitingSendPatterns()
	var piSend, ioSend []engine.Pattern
	for _, e := range piPats {
		piSend = append(piSend, engine.Pattern{Expr: e})
	}
	for _, e := range ioPats {
		ioSend = append(ioSend, engine.Pattern{Expr: e})
	}
	var anySend []engine.Pattern
	for _, e := range sendPatterns() {
		anySend = append(anySend, engine.Pattern{Expr: e})
	}
	piWait := []engine.Pattern{{Stmt: mustStmtPat("WAIT_FOR_PI_REPLY();", nil)}}
	ioWait := []engine.Pattern{{Stmt: mustStmtPat("WAIT_FOR_IO_REPLY();", nil)}}

	sm := &engine.SM{Name: "sendwait", Start: stIdle}
	sm.Rules = []*engine.Rule{
		{State: stIdle, Patterns: piSend, Target: stWaitPI, Tag: "send-wait-pi"},
		{State: stIdle, Patterns: ioSend, Target: stWaitIO, Tag: "send-wait-io"},

		{State: stWaitPI, Patterns: piWait, Target: stIdle, Tag: "wait-pi"},
		{State: stWaitPI, Patterns: ioWait, Target: stIdle, Tag: "wrong-wait",
			Action: func(c *engine.Ctx) {
				c.Report("waiting on IO interface for a PI reply")
			}},
		{State: stWaitPI, Patterns: anySend, Tag: "send-before-wait",
			Action: func(c *engine.Ctx) {
				c.Report("second send before waiting for PI reply")
			}},

		{State: stWaitIO, Patterns: ioWait, Target: stIdle, Tag: "wait-io"},
		{State: stWaitIO, Patterns: piWait, Target: stIdle, Tag: "wrong-wait",
			Action: func(c *engine.Ctx) {
				c.Report("waiting on PI interface for an IO reply")
			}},
		{State: stWaitIO, Patterns: anySend, Tag: "send-before-wait",
			Action: func(c *engine.Ctx) {
				c.Report("second send before waiting for IO reply")
			}},
	}
	sm.AtExit = func(c *engine.Ctx) {
		switch c.State {
		case stWaitPI:
			c.Report("send with wait bit set never waits for PI reply")
		case stWaitIO:
			c.Report("send with wait bit set never waits for IO reply")
		}
	}
	return sm
}

// checker-core: end
