package checkers

import (
	"testing"

	"flashmc/internal/engine"
)

// Every built-in checker must report dynamic coverage: the corpus
// coverage matrix and the lint coverage-dead cross-check both depend
// on it.
func TestAllCheckersProvideCoverage(t *testing.T) {
	for _, chk := range All() {
		if _, ok := chk.(CoverageProvider); !ok {
			t.Errorf("checker %s does not implement CoverageProvider", chk.Name())
		}
	}
}

func TestCheckCovMatchesCheck(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	HANDLER_DEFS();
	HANDLER_PROLOGUE(1);
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
}`)
	spec := testSpec()
	for _, chk := range All() {
		prov := chk.(CoverageProvider)
		want := chk.Check(p, spec)
		got, covs := prov.CheckCov(p, spec)
		if msgs(want) != msgs(got) {
			t.Errorf("%s: CheckCov reports differ from Check:\n%s\nvs\n%s",
				chk.Name(), msgs(want), msgs(got))
		}
		for _, c := range covs {
			if c.Empty() {
				t.Errorf("%s: CheckCov returned an empty coverage", chk.Name())
			}
		}
	}
}

func TestBufferRaceCoverageFires(t *testing.T) {
	p := loadProto(t, `
void handler(void) {
	int a;
	int b;
	MISCBUS_READ_DB(a, b);
	WAIT_FOR_DB_FULL(a);
}`)
	_, covs := NewBufferRace().(CoverageProvider).CheckCov(p, testSpec())
	if len(covs) == 0 {
		t.Fatal("no coverage")
	}
	merged := map[string]uint64{}
	for _, c := range covs {
		if c.SM != "wait_for_db" {
			t.Errorf("SM = %q, want wait_for_db", c.SM)
		}
		for k, v := range c.Rules {
			merged[k] += v
		}
	}
	if len(merged) == 0 {
		t.Errorf("no rules fired: %+v", covs)
	}
}

func TestNoFloatCoverageOnCleanCode(t *testing.T) {
	p := loadProto(t, `
void handler(void) {
	int a;
	a = 1 + 2;
}`)
	reports, covs := NewNoFloat().(CoverageProvider).CheckCov(p, testSpec())
	if len(reports) != 0 {
		t.Fatalf("unexpected reports: %v", reports)
	}
	if len(covs) != 1 || covs[0].Rules["typecheck"] == 0 {
		t.Errorf("nofloat must count examined expressions on clean code: %+v", covs)
	}
}

func TestLanesCoverageWalksHandlers(t *testing.T) {
	p := loadProto(t, `
void h_local_get(void) {
	PI_SEND(1, 1, 1, 1, 1, 1);
}
void sw_flush(void) {
	NI_SEND(1, 1, 1, 1, 1, 1);
}`)
	_, covs := NewLanes().(CoverageProvider).CheckCov(p, testSpec())
	if len(covs) != 1 {
		t.Fatalf("coverage entries: %+v", covs)
	}
	// testSpec names four handlers but only two exist in the program.
	if covs[0].Rules["walk"] != 2 {
		t.Errorf("walk count: %+v", covs[0].Rules)
	}
	var _ []*engine.Coverage = covs
}
