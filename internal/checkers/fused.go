package checkers

import (
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
)

// Suite is the fused form of the built-in checker suite: every SM
// checker (the six whose analysis is one state machine) compiled into
// a single product automaton, the global and AST passes kept
// alongside. Running the suite walks each function once for all SM
// members through a shared match index instead of once per checker.
type Suite struct {
	Checkers []Checker     // All() order
	Fused    *engine.Fused // product over the SM members
	// Member maps a Checkers index to its member index in Fused
	// (-1 for checkers that are not a single SM: lanes, exec, nofloat).
	Member []int
}

// FusedSuite compiles the full built-in suite for a protocol spec.
func FusedSuite(spec *flash.Spec) *Suite {
	s := &Suite{Checkers: All()}
	s.Member = make([]int, len(s.Checkers))
	var sms []*engine.SM
	for i, c := range s.Checkers {
		s.Member[i] = -1
		if sp, ok := c.(SMProvider); ok {
			sm, _ := sp.BuildSM(spec)
			s.Member[i] = len(sms)
			sms = append(sms, sm)
		}
	}
	s.Fused = engine.CompileFused(sms...)
	return s
}

// CheckCov runs the whole suite over p — the SM members in one fused
// pass per function, the remaining passes as usual — and returns
// per-checker reports and coverage in All() order. Results are
// byte-identical to calling every checker's CheckCov one by one: for
// each SM checker that method is exactly RunSMCov(BuildSM(spec)),
// which the fused engine reproduces member by member.
func (s *Suite) CheckCov(p *core.Program, spec *flash.Spec) ([][]engine.Report, [][]*engine.Coverage) {
	fusedReports, fusedCovs := p.RunFusedCov(s.Fused)
	reports := make([][]engine.Report, len(s.Checkers))
	covs := make([][]*engine.Coverage, len(s.Checkers))
	for i, c := range s.Checkers {
		if m := s.Member[i]; m >= 0 {
			reports[i], covs[i] = fusedReports[m], fusedCovs[m]
			continue
		}
		reports[i], covs[i] = c.(CoverageProvider).CheckCov(p, spec)
	}
	return reports, covs
}
