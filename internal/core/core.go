// Package core is the meta-level compilation pipeline: it loads
// protocol-C translation units through the preprocessor, parser, and
// type checker, builds control-flow graphs, and applies compiled
// checkers (metal programs or Go-built state machines) to every
// function — the role xg++ plays in the paper.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/cpp"
	"flashmc/internal/cc/lexer"
	"flashmc/internal/cc/parser"
	"flashmc/internal/cc/sem"
	"flashmc/internal/cc/types"
	"flashmc/internal/cfg"
	"flashmc/internal/engine"
	"flashmc/internal/metal"
)

// Program is a loaded, type-checked set of translation units with
// control-flow graphs for every function definition.
type Program struct {
	Name  string
	Files []*ast.File
	// Fns lists all function definitions across files, source order.
	Fns []*ast.FuncDecl
	// Graphs holds one CFG per definition, parallel to Fns.
	Graphs []*cfg.Graph
	// Env is the accumulated symbol environment.
	Env *sem.Env
	// SourceLOC counts non-blank source lines across root files
	// (headers excluded), the paper's Table 1 LOC metric.
	SourceLOC int
	// ParseErrors and Warnings accumulate diagnostics; loading is
	// lenient and continues past recoverable problems.
	ParseErrors []error
	Warnings    []error

	byName map[string]int
	src    cpp.Source
	incs   []string
}

// Load preprocesses, parses, and checks rootFiles (each a separate
// translation unit) from src, sharing typedefs, enum constants and
// globals across units the way a protocol build does.
func Load(name string, src cpp.Source, rootFiles []string, includeDirs ...string) (*Program, error) {
	p := &Program{
		Name:   name,
		Env:    sem.NewEnv(),
		byName: map[string]int{},
		src:    src,
		incs:   includeDirs,
	}
	checker := sem.NewChecker(p.Env)

	// Typedefs and enum constants accumulate across units, as in a
	// protocol build where every unit includes the same headers.
	var carriedTypedefs map[string]types.Type

	for _, rf := range rootFiles {
		pp := cpp.New(src, includeDirs...)
		text := pp.Process(rf)
		for _, e := range pp.Errors() {
			p.ParseErrors = append(p.ParseErrors, e)
		}
		raw, err := src.ReadFile(rf)
		if err == nil {
			p.SourceLOC += countLOC(raw)
		}

		lx := lexer.New(rf, text)
		toks := lx.All()
		for _, e := range lx.Errors() {
			p.ParseErrors = append(p.ParseErrors, e)
		}
		cparser := parser.New(toks, parser.Config{Typedefs: carriedTypedefs})
		f := cparser.File(rf)
		for _, e := range cparser.Errors() {
			p.ParseErrors = append(p.ParseErrors, e)
		}
		carriedTypedefs = cparser.Typedefs()
		for k, v := range cparser.EnumConsts() {
			p.Env.EnumConsts[k] = v
		}
		checker.Check(f)
		p.Files = append(p.Files, f)
	}
	p.Warnings = checker.Warnings()

	for _, f := range p.Files {
		for _, fn := range f.Funcs() {
			p.byName[fn.Name] = len(p.Fns)
			p.Fns = append(p.Fns, fn)
			p.Graphs = append(p.Graphs, cfg.Build(fn))
		}
	}
	if len(p.Fns) == 0 && len(p.ParseErrors) > 0 {
		return p, fmt.Errorf("%s: no functions parsed (first error: %v)", name, p.ParseErrors[0])
	}
	return p, nil
}

// countLOC counts non-blank lines (the paper's LOC measure excludes
// only header files, which Load never feeds through this path).
func countLOC(src string) int {
	n := 0
	for _, ln := range strings.Split(src, "\n") {
		if strings.TrimSpace(ln) != "" {
			n++
		}
	}
	return n
}

// Graph returns the CFG of the named function, or nil.
func (p *Program) Graph(fn string) *cfg.Graph {
	if i, ok := p.byName[fn]; ok {
		return p.Graphs[i]
	}
	return nil
}

// Fn returns the named function definition, or nil.
func (p *Program) Fn(name string) *ast.FuncDecl {
	if i, ok := p.byName[name]; ok {
		return p.Fns[i]
	}
	return nil
}

// RunSM applies a state machine to every function and collects the
// reports in function order. Functions are independent, so they are
// checked concurrently; the result order is deterministic.
func (p *Program) RunSM(sm *engine.SM) []engine.Report {
	reports, _ := p.RunSMCov(sm)
	return reports
}

// RunSMCov is RunSM plus the per-function dynamic coverage, in
// function order with empty coverages (skipped functions) omitted.
// Coverage counts are single-run facts, so concurrency does not
// perturb them; only ordering could, and the function-order collection
// fixes that.
func (p *Program) RunSMCov(sm *engine.SM) ([]engine.Report, []*engine.Coverage) {
	perFn := make([][]engine.Report, len(p.Graphs))
	covs := make([]*engine.Coverage, len(p.Graphs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, g := range p.Graphs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, g *cfg.Graph) {
			defer wg.Done()
			defer func() { <-sem }()
			perFn[i], covs[i] = engine.RunCov(g, sm)
		}(i, g)
	}
	wg.Wait()
	var out []engine.Report
	for _, rs := range perFn {
		out = append(out, rs...)
	}
	kept := covs[:0]
	for _, c := range covs {
		if !c.Empty() {
			kept = append(kept, c)
		}
	}
	return out, kept
}

// RunFusedCov applies a fused product automaton to every function —
// one shared-match-index walk per function — and de-fuses the results:
// the m-th slices of the returns are exactly what RunSMCov of
// f.Members[m] alone would produce (same report order, same non-empty
// coverages in function order).
func (p *Program) RunFusedCov(f *engine.Fused) ([][]engine.Report, [][]*engine.Coverage) {
	perFn := make([][][]engine.Report, len(p.Graphs))
	covFn := make([][]*engine.Coverage, len(p.Graphs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, g := range p.Graphs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, g *cfg.Graph) {
			defer wg.Done()
			defer func() { <-sem }()
			perFn[i], covFn[i] = f.RunCov(g, nil)
		}(i, g)
	}
	wg.Wait()
	reports := make([][]engine.Report, len(f.Members))
	covs := make([][]*engine.Coverage, len(f.Members))
	for m := range f.Members {
		for i := range p.Graphs {
			reports[m] = append(reports[m], perFn[i][m]...)
			if c := covFn[i][m]; c != nil && !c.Empty() {
				covs[m] = append(covs[m], c)
			}
		}
	}
	return reports, covs
}

// Count returns the number of sub-expressions matching pat across all
// functions (the tables' "Applied" columns).
func (p *Program) Count(pat ast.Expr) int {
	return engine.Count(p.Fns, pat)
}

// CompileChecker compiles metal source against this program's include
// environment, so prologue #includes resolve to the same headers the
// protocol was built with.
func (p *Program) CompileChecker(src string) (*metal.Program, error) {
	return metal.Compile(src, metal.Options{Include: p.src, IncludeDirs: p.incs})
}
