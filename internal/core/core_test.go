package core

import (
	"strings"
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/cc/parser"
	"flashmc/internal/engine"
)

func TestLoadMultiUnit(t *testing.T) {
	src := cpp.MapSource{
		"defs.h": `
#ifndef DEFS_H
#define DEFS_H
typedef unsigned long word_t;
enum sizes { SMALL = 2, BIG = 8 };
extern word_t shared;
#endif
`,
		"a.c": `
#include "defs.h"
word_t shared;
void produce(void) { shared = BIG; }
`,
		"b.c": `
#include "defs.h"
void consume(void) {
	word_t local;
	local = shared + SMALL;
}
`,
	}
	p, err := Load("multi", src, []string{"a.c", "b.c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ParseErrors) != 0 {
		t.Fatalf("parse errors: %v", p.ParseErrors)
	}
	if len(p.Fns) != 2 {
		t.Fatalf("functions %d", len(p.Fns))
	}
	// Typedefs and enums from a.c's header must resolve in b.c, and
	// shared must type as word_t — no undeclared warnings.
	for _, w := range p.Warnings {
		if strings.Contains(w.Error(), "undeclared") {
			t.Errorf("cross-unit symbol lost: %v", w)
		}
	}
	if p.Fn("consume") == nil || p.Graph("consume") == nil {
		t.Error("lookup by name failed")
	}
	if p.Fn("nonexistent") != nil || p.Graph("nonexistent") != nil {
		t.Error("lookup invented a function")
	}
}

func TestSourceLOCCountsRootsOnly(t *testing.T) {
	src := cpp.MapSource{
		"big.h":  strings.Repeat("extern int x;\n", 100),
		"main.c": "#include \"big.h\"\nint y;\nvoid f(void) { y = x; }\n",
	}
	p, err := Load("loc", src, []string{"main.c"})
	if err != nil {
		t.Fatal(err)
	}
	if p.SourceLOC != 3 {
		t.Errorf("SourceLOC %d (headers must not count, per Table 1)", p.SourceLOC)
	}
}

func TestLoadReportsMissingFile(t *testing.T) {
	p, err := Load("missing", cpp.MapSource{}, []string{"nope.c"})
	if err == nil && len(p.ParseErrors) == 0 {
		t.Fatal("expected an error for a missing root file")
	}
}

func TestLoadLenientOnParseErrors(t *testing.T) {
	src := cpp.MapSource{
		"bad.c": "void ok(void) { }\nint @@@ broken\nvoid also_ok(void) { }\n",
	}
	p, _ := Load("bad", src, []string{"bad.c"})
	if len(p.ParseErrors) == 0 {
		t.Fatal("expected parse errors")
	}
	if p.Fn("ok") == nil {
		t.Error("recovery lost the first function")
	}
}

func TestRunSMAcrossFunctions(t *testing.T) {
	src := cpp.MapSource{
		"p.c": `
void f1(void) { MARKER(); }
void f2(void) { MARKER(); }
`,
	}
	p, err := Load("sm", src, []string{"p.c"})
	if err != nil {
		t.Fatal(err)
	}
	pat, err2 := parser.ParseStmtPattern("MARKER();", parser.PatternContext{})
	if err2 != nil {
		t.Fatal(err2)
	}
	sm := &engine.SM{Name: "m", Start: "s", Rules: []*engine.Rule{
		{State: "s", Patterns: []engine.Pattern{{Stmt: pat}},
			Action: func(c *engine.Ctx) { c.Report("marker") }},
	}}
	reports := p.RunSM(sm)
	if len(reports) != 2 {
		t.Fatalf("reports %d", len(reports))
	}
	if reports[0].Fn != "f1" || reports[1].Fn != "f2" {
		t.Errorf("function attribution: %v", reports)
	}
}

func TestCountAcrossFunctions(t *testing.T) {
	src := cpp.MapSource{"p.c": `
void a(void) { int x; x = PROBE(1) + PROBE(2); }
void b(void) { PROBE(3); }
`}
	p, err := Load("count", src, []string{"p.c"})
	if err != nil {
		t.Fatal(err)
	}
	pat, err2 := parser.ParseExprPattern("PROBE(v)", parser.PatternContext{
		Wildcards: map[string]string{"v": ""}})
	if err2 != nil {
		t.Fatal(err2)
	}
	if got := p.Count(pat); got != 3 {
		t.Errorf("count %d", got)
	}
}

func TestCompileCheckerUsesProgramIncludes(t *testing.T) {
	src := cpp.MapSource{
		"env.h": "typedef unsigned long token_t;\n",
		"p.c":   "#include \"env.h\"\nvoid f(void) { }\n",
	}
	p, err := Load("inc", src, []string{"p.c"})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := p.CompileChecker(`
{ #include "env.h" }
sm s {
	decl { scalar } a;
	start:
	{ use(a); } ==> stop
	;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mp.Typedefs["token_t"]; !ok {
		t.Error("checker prologue did not resolve the program's header")
	}
}
