package lint

import (
	"fmt"
	"sort"

	"flashmc/internal/cc/ast"
	"flashmc/internal/engine"
	"flashmc/internal/metal"
)

// Target bundles one state machine with the optional metadata the SM
// passes can exploit: metal wildcard declarations (for the
// unused-wildcard pass) and a protocol vocabulary (for the
// dead-pattern pass).
type Target struct {
	SM *engine.SM
	// Decls maps declared wildcard names to constraints, as recorded
	// by the metal compiler. Nil for SMs assembled in Go, which have
	// no declaration syntax to check.
	Decls map[string]string
	// Vocab enables the dead-pattern pass when non-nil.
	Vocab *Vocab
}

// CheckSM runs every SM-level pass over t and returns the findings,
// most severe first.
func CheckSM(t Target) []Diag {
	var diags []Diag
	diags = append(diags, checkReachability(t.SM)...)
	diags = append(diags, checkRuleOrder(t.SM)...)
	diags = append(diags, checkAbsorbing(t.SM)...)
	diags = append(diags, checkUnusedWildcards(t.SM, t.Decls)...)
	diags = append(diags, checkVocabulary(t.SM, t.Vocab)...)
	sortDiags(diags)
	return diags
}

// CheckMetal lints a compiled metal program: CheckSM plus the metal
// declaration table.
func CheckMetal(p *metal.Program, v *Vocab) []Diag {
	return CheckSM(Target{SM: p.SM, Decls: p.Decls, Vocab: v})
}

// ruleLabel names a rule in diagnostics.
func ruleLabel(sm *engine.SM, r *engine.Rule) string {
	if r.Tag != "" {
		return r.Tag
	}
	for i, cand := range sm.Rules {
		if cand == r {
			return fmt.Sprintf("%s#%d", r.State, i)
		}
	}
	return r.State + "#?"
}

// patText renders a pattern for diagnostics.
func patText(p engine.Pattern) string {
	if p.Expr != nil {
		return ast.ExprString(p.Expr)
	}
	return ast.StmtString(p.Stmt)
}

// startStates returns the set of possible initial states, and false
// when it cannot be determined statically (StartFor with no Starts
// hint).
func startStates(sm *engine.SM) ([]string, bool) {
	if len(sm.Starts) > 0 {
		return sm.Starts, true
	}
	if sm.StartFor != nil {
		return nil, false
	}
	if sm.Start != "" {
		return []string{sm.Start}, true
	}
	return nil, false
}

// checkReachability flags states owning rules that no chain of rule
// or branch-condition transitions can reach from any start state. A
// configuration can never be in such a state, so its rules are dead —
// the checker looks healthy and silently skips them (paper §11).
func checkReachability(sm *engine.SM) []Diag {
	starts, known := startStates(sm)
	if !known {
		return nil
	}

	// Successor states of s under every applicable rule.
	succs := func(s string) []string {
		var out []string
		step := func(owner, target string) {
			if owner != s && owner != engine.All {
				return
			}
			switch target {
			case "", engine.Stop:
			default:
				out = append(out, target)
			}
		}
		for _, r := range sm.Rules {
			step(r.State, r.Target)
		}
		for _, c := range sm.Cond {
			step(c.State, c.TrueTarget)
			step(c.State, c.FalseTarget)
		}
		return out
	}

	reach := map[string]bool{}
	work := append([]string(nil), starts...)
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if reach[s] {
			continue
		}
		reach[s] = true
		work = append(work, succs(s)...)
	}

	owners := map[string]bool{}
	for _, r := range sm.Rules {
		owners[r.State] = true
	}
	for _, c := range sm.Cond {
		owners[c.State] = true
	}
	var diags []Diag
	var names []string
	for s := range owners {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		if s == engine.All || s == engine.Stop || reach[s] {
			continue
		}
		diags = append(diags, Diag{
			Pass: "unreachable-state", Severity: Error,
			SM: sm.Name, State: s,
			Msg: fmt.Sprintf("state %q is unreachable from start state(s) %v; its rules can never fire", s, starts),
		})
	}
	return diags
}

// checkRuleOrder compares every pair of same-state rules. Within a
// state the engine fires the first matching rule (see package engine's
// TestSameStateRuleDeclarationOrder), so:
//
//   - an earlier rule subsuming a later one makes the later rule dead
//     (Error — it can never fire);
//   - a later rule subsuming an earlier one is the deliberate
//     specific-before-general idiom, but still order-sensitive (Info);
//   - plain overlap without subsumption means some events are decided
//     purely by declaration order (Warn).
func checkRuleOrder(sm *engine.SM) []Diag {
	byState := map[string][]*engine.Rule{}
	var states []string
	for _, r := range sm.Rules {
		if _, ok := byState[r.State]; !ok {
			states = append(states, r.State)
		}
		byState[r.State] = append(byState[r.State], r)
	}

	var diags []Diag
	for _, state := range states {
		rules := byState[state]
		for j := 1; j < len(rules); j++ {
			rj := rules[j]
			// shadowedBy[k] records which earlier rule (if any) makes
			// alternative k of rj dead.
			shadowedBy := make([]*engine.Rule, len(rj.Patterns))
			for i := 0; i < j; i++ {
				ri := rules[i]
				pairSeverity := -1 // none / 0 info / 1 warn
				for _, pi := range ri.Patterns {
					for k, pj := range rj.Patterns {
						switch {
						case subsumesPattern(pi, pj):
							if shadowedBy[k] == nil {
								shadowedBy[k] = ri
							}
						case subsumesPattern(pj, pi):
							if pairSeverity < 0 {
								pairSeverity = 0
							}
						case overlapsPattern(pi, pj):
							pairSeverity = 1
						}
					}
				}
				switch pairSeverity {
				case 0:
					diags = append(diags, Diag{
						Pass: "rule-order", Severity: Info,
						SM: sm.Name, State: state, Rule: ruleLabel(sm, rj),
						Msg: fmt.Sprintf("rule %s is more general than earlier rule %s: specific-before-general order is load-bearing (reordering changes which rule fires)",
							ruleLabel(sm, rj), ruleLabel(sm, ri)),
					})
				case 1:
					diags = append(diags, Diag{
						Pass: "rule-order", Severity: Warn,
						SM: sm.Name, State: state, Rule: ruleLabel(sm, rj),
						Msg: fmt.Sprintf("rules %s and %s overlap on common events; whichever is declared first wins",
							ruleLabel(sm, ri), ruleLabel(sm, rj)),
					})
				}
			}

			dead := len(rj.Patterns) > 0
			for k, by := range shadowedBy {
				if by == nil {
					dead = false
					continue
				}
				suffix := ""
				if by.Target == engine.Stop {
					suffix = " (which stops the configuration)"
				}
				diags = append(diags, Diag{
					Pass: "shadowed-rule", Severity: Warn,
					SM: sm.Name, State: state, Rule: ruleLabel(sm, rj),
					Msg: fmt.Sprintf("pattern %q of rule %s is shadowed by earlier rule %s%s",
						patText(rj.Patterns[k]), ruleLabel(sm, rj), ruleLabel(sm, by), suffix),
				})
			}
			if dead {
				diags = append(diags, Diag{
					Pass: "shadowed-rule", Severity: Error,
					SM: sm.Name, State: state, Rule: ruleLabel(sm, rj),
					Msg: fmt.Sprintf("rule %s is dead: every alternative is shadowed by an earlier rule in state %q, so it can never fire",
						ruleLabel(sm, rj), state),
				})
			}
		}
	}
	return diags
}

// checkAbsorbing flags target states that own no rules: a
// configuration entering one can never leave or fire anything again,
// which usually means a misspelled state name. Skipped when the SM has
// an at-exit hook, where a rule-less state is a legitimate terminal
// classification the hook inspects.
func checkAbsorbing(sm *engine.SM) []Diag {
	if sm.AtExit != nil {
		return nil
	}
	owners := map[string]bool{engine.Stop: true, engine.All: true, "": true}
	for _, r := range sm.Rules {
		owners[r.State] = true
	}
	for _, c := range sm.Cond {
		owners[c.State] = true
	}
	seen := map[string]bool{}
	var diags []Diag
	flag := func(target string) {
		if owners[target] || seen[target] {
			return
		}
		seen[target] = true
		diags = append(diags, Diag{
			Pass: "absorbing-state", Severity: Warn,
			SM: sm.Name, State: target,
			Msg: fmt.Sprintf("target state %q owns no rules: configurations entering it are stuck and the checker silently stops applying", target),
		})
	}
	for _, r := range sm.Rules {
		flag(r.Target)
	}
	for _, c := range sm.Cond {
		flag(c.TrueTarget)
		flag(c.FalseTarget)
	}
	return diags
}

// checkUnusedWildcards flags wildcards declared in a metal program
// but never bound by any pattern — usually the leftover of a renamed
// pattern variable.
func checkUnusedWildcards(sm *engine.SM, decls map[string]string) []Diag {
	if decls == nil {
		return nil
	}
	used := map[string]bool{}
	record := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if w, ok := x.(*ast.Wildcard); ok {
				used[w.Name] = true
			}
			return true
		})
	}
	for _, r := range sm.Rules {
		for _, p := range r.Patterns {
			if p.Expr != nil {
				record(p.Expr)
			} else {
				record(p.Stmt)
			}
		}
	}
	for _, c := range sm.Cond {
		record(c.Pattern)
	}

	var names []string
	for n := range decls {
		names = append(names, n)
	}
	sort.Strings(names)
	var diags []Diag
	for _, n := range names {
		if used[n] {
			continue
		}
		diags = append(diags, Diag{
			Pass: "unused-wildcard", Severity: Warn,
			SM: sm.Name,
			Msg: fmt.Sprintf("wildcard %q is declared but never bound by any pattern", n),
		})
	}
	return diags
}

// checkVocabulary flags patterns anchored on identifiers outside the
// protocol vocabulary. Such a pattern can never match real protocol
// code, so the rule is dead — exactly the §11 failure mode where a
// typo (or a vocabulary drift) blinds a checker without any visible
// symptom.
func checkVocabulary(sm *engine.SM, vocab *Vocab) []Diag {
	if vocab == nil || vocab.Len() == 0 {
		return nil
	}
	var diags []Diag
	check := func(rule, state, text string, n ast.Node) {
		seen := map[string]bool{}
		ast.Inspect(n, func(x ast.Node) bool {
			name := ""
			switch y := x.(type) {
			case *ast.Ident:
				name = y.Name
			case *ast.Member:
				name = y.Name
			}
			if name == "" || seen[name] || vocab.Has(name) {
				return true
			}
			seen[name] = true
			diags = append(diags, Diag{
				Pass: "dead-pattern", Severity: Error,
				SM: sm.Name, State: state, Rule: rule,
				Msg: fmt.Sprintf("pattern %q names %q, which is not in the protocol vocabulary: the pattern can never match, so the rule is silently dead", text, name),
			})
			return true
		})
	}
	for _, r := range sm.Rules {
		for _, p := range r.Patterns {
			if p.Expr != nil {
				check(ruleLabel(sm, r), r.State, patText(p), p.Expr)
			} else if p.Stmt != nil {
				check(ruleLabel(sm, r), r.State, patText(p), p.Stmt)
			}
		}
	}
	for _, c := range sm.Cond {
		check("cond", c.State, ast.ExprString(c.Pattern), c.Pattern)
	}
	return diags
}
