package lint

import (
	"fmt"

	"flashmc/internal/engine"
)

// CoverageDead cross-checks a state machine's static liveness against
// its dynamic coverage. rulesFired and condsFired are merged fire
// counts keyed the way engine.Coverage keys them (engine.RuleKey /
// engine.CondKey — the same labels this package's own diagnostics
// use), typically aggregated across every protocol in a corpus by
// internal/cover.
//
// A rule the static passes consider live but that fired nowhere is
// the paper's §11 failure measured instead of inferred: the checker
// looks healthy, lints clean, and silently checks nothing. Rules (and
// whole states) that CheckSM already flags Error are excluded — they
// are dead for a known static reason and diagnosed by the pass that
// found them.
//
// Coverage-dead findings are Warn, not Error: the rule may be live on
// protocols outside the corpus, so the finding is a prompt to extend
// the corpus or retire the rule, not proof of a broken checker.
func CoverageDead(t Target, rulesFired, condsFired map[string]uint64) []Diag {
	sm := t.SM
	deadRules := map[string]bool{}
	deadStates := map[string]bool{}
	for _, d := range Errors(CheckSM(t)) {
		switch d.Pass {
		case "shadowed-rule":
			deadRules[d.Rule] = true
		case "unreachable-state":
			deadStates[d.State] = true
		}
	}

	var diags []Diag
	for i, r := range sm.Rules {
		label := engine.RuleKey(sm, i)
		if deadRules[label] || deadStates[r.State] {
			continue
		}
		if rulesFired[label] > 0 {
			continue
		}
		diags = append(diags, Diag{
			Pass: "coverage-dead", Severity: Warn,
			SM: sm.Name, State: r.State, Rule: label,
			Msg: fmt.Sprintf("rule %s is lint-clean but fired on no protocol in the corpus: the checker may be silently blind here", label),
		})
	}
	for i, cr := range sm.Cond {
		key := engine.CondKey(sm, i)
		if deadStates[cr.State] {
			continue
		}
		if condsFired[key] > 0 {
			continue
		}
		diags = append(diags, Diag{
			Pass: "coverage-dead", Severity: Warn,
			SM: sm.Name, State: cr.State, Rule: key,
			Msg: fmt.Sprintf("branch-condition rule %s matched no branch on any protocol in the corpus", key),
		})
	}
	sortDiags(diags)
	return diags
}
