package lint

import (
	"fmt"
	"sort"
	"time"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/obs"
	"flashmc/internal/sym"
)

// The report-triage passes. The paper (§6) attributes most of the 69
// published false positives to infeasible paths the system chose not
// to prune globally; the engine's CorrelateBranches pruner attacks
// only the bare-identifier slice of them, inside the fixed point.
// Triage instead works per report, after the fact:
//
//  1. slice backward from the report site to the entry, keeping only
//     CFG nodes that can reach the site;
//  2. enumerate loop-bounded paths through the slice;
//  3. replay the checker's SM along each path (engine.Sim) while
//     tracking every branch condition by its normalized text — not
//     just bare identifiers — and invalidating recorded outcomes when
//     an operand is written;
//  4. rank the report Certain if it reproduces on some feasible path,
//     LikelyFP if it reproduces only on paths taking contradictory
//     outcomes of one condition, and Certain (conservatively) when
//     the path budget runs out or the site cannot be replayed.
//
// Demotion is evidence of infeasibility, never silence: LikelyFP
// reports are still reports.

// Confidence ranks a report.
type Confidence string

const (
	// Certain marks reports reproduced on a feasible path, plus
	// everything triage cannot analyze (conservative default).
	Certain Confidence = "certain"
	// LikelyFP marks reports that only arise on branch-correlated
	// infeasible paths.
	LikelyFP Confidence = "likely-fp"
	// Infeasible marks reports whose every firing path the symbolic
	// evaluator proved unsatisfiable — the strongest demotion the
	// triage ladder can issue. Still a report, never silence.
	Infeasible Confidence = "infeasible"
)

// Rank orders confidences for display: the stronger the demotion
// evidence, the later the report sorts.
func (c Confidence) Rank() int {
	switch c {
	case LikelyFP:
		return 1
	case Infeasible:
		return 2
	}
	return 0
}

// SortRanked orders a ranked stream for presentation: confidence
// rank first (certain above demoted), then position, then checker,
// rule, and message as tiebreakers. The comparison is a total order
// over every field that prints, so equal report sets render
// byte-identically regardless of input order, worker count, or cache
// temperature.
func SortRanked(rs []RankedReport) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if ar, br := a.Confidence.Rank(), b.Confidence.Rank(); ar != br {
			return ar < br
		}
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.SM != b.SM {
			return a.SM < b.SM
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// TriageMode selects the triage ladder height.
type TriageMode string

// Triage modes.
const (
	// ModeSlice (the default) is the PR 1 ladder: slicing plus
	// syntactic branch-outcome contradiction.
	ModeSlice TriageMode = "slice"
	// ModeSym adds the bounded symbolic evaluator: paths surviving
	// the syntactic rung are walked symbolically and the report is
	// demoted to Infeasible when every firing path is refuted.
	ModeSym TriageMode = "sym"
)

// TriageVersion names the triage algorithm revision; it keys depot
// artifacts so verdicts recompute when the ladder changes.
const TriageVersion = "1"

// RankedReport is an engine report plus a triage verdict.
type RankedReport struct {
	engine.Report
	Confidence Confidence
	Reason     string
}

// TriageOptions bounds the per-report path enumeration.
type TriageOptions struct {
	// MaxPaths caps enumerated paths per report (default 4096).
	MaxPaths int
	// MaxSteps caps DFS steps per report (default 200000).
	MaxSteps int
	// Mode selects the ladder height (default ModeSlice).
	Mode TriageMode
	// SymMaxSteps caps symbolic evaluation steps per path (default
	// package sym's own).
	SymMaxSteps int
}

func (o TriageOptions) withDefaults() TriageOptions {
	if o.MaxPaths <= 0 {
		o.MaxPaths = 4096
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200000
	}
	if o.Mode == "" {
		o.Mode = ModeSlice
	}
	return o
}

// Fingerprint renders the options canonically for cache keying: two
// runs with equal fingerprints produce identical verdicts.
func (o TriageOptions) Fingerprint() string {
	o = o.withDefaults()
	return fmt.Sprintf("mode=%s,paths=%d,steps=%d,symsteps=%d,alg=%s",
		o.Mode, o.MaxPaths, o.MaxSteps, o.SymMaxSteps, TriageVersion)
}

// Conservative-fallback and verdict reasons. Every RankedReport.Reason
// is one of these (pinned by the reason table test); tools may switch
// on them.
const (
	ReasonFnNotFound   = "function not found; not triaged"
	ReasonSiteNotFound = "report site not located in CFG; not triaged"
	ReasonBudget       = "path budget exhausted; kept conservatively"
	ReasonUnreachable  = "report site unreachable from function entry; kept conservatively"
	ReasonFeasible     = "reproduced on a feasible path"
	ReasonContradicted = "fires only on paths taking contradictory outcomes of a repeated branch condition"
	ReasonNotOnPath    = "not reproduced within path bounds; kept conservatively"
	ReasonSymUndecided = "fires on a path the symbolic evaluator cannot decide; kept conservatively"
	ReasonSymRefuted   = "every path the report fires on is provably unsatisfiable"
	ReasonSymMixed     = "fires only on symbolically refuted or branch-contradictory paths"
	ReasonGlobalPass   = "global pass; not path-triaged"
)

// Triage latency, per report (both modes).
var mTriageLatency = obs.NewHistogram("triage_report_seconds",
	"wall time spent ranking one report", obs.DefBuckets)

// PassThrough ranks every report Certain with the given reason; used
// for checkers that are not SM-based (global passes have no per-path
// replay to triage).
func PassThrough(reports []engine.Report, reason string) []RankedReport {
	out := make([]RankedReport, 0, len(reports))
	for _, r := range reports {
		out = append(out, RankedReport{Report: r, Confidence: Certain, Reason: reason})
	}
	return out
}

// TriageProgram triages sm's reports against the program they were
// produced from, grouping them by function.
func TriageProgram(p *core.Program, sm *engine.SM, reports []engine.Report, opt TriageOptions) []RankedReport {
	out := make([]RankedReport, 0, len(reports))
	for _, r := range reports {
		g := p.Graph(r.Fn)
		if g == nil {
			out = append(out, RankedReport{Report: r, Confidence: Certain,
				Reason: ReasonFnNotFound})
			continue
		}
		out = append(out, triageTimed(g, sm, r, opt.withDefaults()))
	}
	return out
}

// TriageSM triages reports known to come from one function's graph.
func TriageSM(g *cfg.Graph, sm *engine.SM, reports []engine.Report, opt TriageOptions) []RankedReport {
	out := make([]RankedReport, 0, len(reports))
	for _, r := range reports {
		out = append(out, triageTimed(g, sm, r, opt.withDefaults()))
	}
	return out
}

func triageTimed(g *cfg.Graph, sm *engine.SM, r engine.Report, opt TriageOptions) RankedReport {
	start := time.Now()
	rr := triageOne(g, sm, r, opt)
	mTriageLatency.ObserveDuration(time.Since(start))
	return rr
}

func triageOne(g *cfg.Graph, sm *engine.SM, r engine.Report, opt TriageOptions) RankedReport {
	targets := reportTargets(g, r)
	if len(targets) == 0 {
		return RankedReport{Report: r, Confidence: Certain,
			Reason: ReasonSiteNotFound}
	}

	paths, complete := enumeratePaths(g, targets, opt)
	if !complete {
		return RankedReport{Report: r, Confidence: Certain,
			Reason: ReasonBudget}
	}
	if len(paths) == 0 {
		// The site exists but no entry path reaches it (dead code
		// behind a return, or an orphaned label). Distinct from "not
		// reproduced": nothing was replayed at all.
		return RankedReport{Report: r, Confidence: Certain,
			Reason: ReasonUnreachable}
	}
	seedPaths(paths, r)

	// Second-rung evaluator, built lazily on the first path that
	// survives the syntactic rung.
	var ev *sym.Evaluator
	symEval := func(path []*cfg.Edge) sym.Verdict {
		if opt.Mode != ModeSym {
			return sym.Feasible // rung disabled: treat as unrefuted
		}
		if ev == nil {
			ev = sym.NewEvaluator(g, sym.Options{MaxSteps: opt.SymMaxSteps})
		}
		return ev.Path(path)
	}

	var fired, contradicted, refuted, undecided int
	for _, path := range paths {
		hit, contra := replayPath(g, sm, r, path)
		if !hit {
			continue
		}
		fired++
		v := symEval(path)
		switch {
		case v == sym.Infeasible:
			refuted++
		case contra:
			// The syntactic rung's evidence stands on its own.
			contradicted++
		case v == sym.Undecided:
			undecided++
		default:
			// Feasible as far as both rungs can tell: the report is
			// evidence. Short-circuit — no stronger demotion exists.
			return RankedReport{Report: r, Confidence: Certain,
				Reason: ReasonFeasible}
		}
	}

	switch {
	case fired == 0:
		// Fired in the fixed point but on no bounded path:
		// loop-carried state our bounded enumeration cannot
		// reconstruct. Keep it.
		return RankedReport{Report: r, Confidence: Certain,
			Reason: ReasonNotOnPath}
	case undecided > 0:
		return RankedReport{Report: r, Confidence: Certain,
			Reason: ReasonSymUndecided}
	case refuted == fired:
		return RankedReport{Report: r, Confidence: Infeasible,
			Reason: ReasonSymRefuted}
	case refuted > 0:
		return RankedReport{Report: r, Confidence: LikelyFP,
			Reason: ReasonSymMixed}
	default:
		return RankedReport{Report: r, Confidence: LikelyFP,
			Reason: ReasonContradicted}
	}
}

// seedPaths stably reorders the enumerated paths so the ones touching
// the report's witness-trace positions replay first: the common
// feasible case then short-circuits on path one instead of after the
// whole enumeration.
func seedPaths(paths [][]*cfg.Edge, r engine.Report) {
	witness := map[token.Pos]bool{}
	for _, pos := range r.TracePositions() {
		witness[pos] = true
	}
	if len(witness) == 0 {
		return
	}
	scores := make([]int, len(paths))
	for i, path := range paths {
		seen := map[token.Pos]bool{}
		for _, e := range path {
			p := e.To.Pos()
			if witness[p] && !seen[p] {
				seen[p] = true
				scores[i]++
			}
		}
	}
	order := make([]int, len(paths))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return scores[order[i]] > scores[order[j]]
	})
	reordered := make([][]*cfg.Edge, len(paths))
	for i, idx := range order {
		reordered[i] = paths[idx]
	}
	copy(paths, reordered)
}

// reportTargets locates the CFG nodes whose event contains the
// report position. At-exit reports target the exit node.
func reportTargets(g *cfg.Graph, r engine.Report) []*cfg.Node {
	if r.Rule == "at-exit" || r.Pos == g.Exit.Pos() {
		return []*cfg.Node{g.Exit}
	}
	var out []*cfg.Node
	for _, n := range g.Nodes {
		var ev ast.Node
		switch n.Kind {
		case cfg.KindStmt:
			ev = n.Stmt
		case cfg.KindBranch:
			ev = n.Cond
		default:
			continue
		}
		if containsPos(ev, r.Pos) {
			out = append(out, n)
		}
	}
	return out
}

func containsPos(ev ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(ev, func(x ast.Node) bool {
		if found {
			return false
		}
		if x != nil && x.Pos() == pos {
			found = true
		}
		return !found
	})
	return found
}

// enumeratePaths lists edge sequences from entry to any target node,
// restricted to the backward slice of the targets (nodes that can
// reach a target), visiting each edge at most twice per path so loops
// unroll once. complete is false when a budget was exhausted, in
// which case the caller must stay conservative.
func enumeratePaths(g *cfg.Graph, targets []*cfg.Node, opt TriageOptions) (paths [][]*cfg.Edge, complete bool) {
	// Backward slice: everything that reaches a target.
	slice := map[*cfg.Node]bool{}
	work := append([]*cfg.Node(nil), targets...)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if slice[n] {
			continue
		}
		slice[n] = true
		for _, e := range n.Preds {
			work = append(work, e.From)
		}
	}
	if !slice[g.Entry] {
		return nil, true // target unreachable from entry: no paths
	}

	isTarget := map[*cfg.Node]bool{}
	for _, t := range targets {
		isTarget[t] = true
	}

	steps := 0
	overBudget := false
	var cur []*cfg.Edge
	visits := map[*cfg.Edge]int{}
	var dfs func(n *cfg.Node)
	dfs = func(n *cfg.Node) {
		if overBudget {
			return
		}
		steps++
		if steps > opt.MaxSteps || len(paths) >= opt.MaxPaths {
			overBudget = true
			return
		}
		if isTarget[n] {
			paths = append(paths, append([]*cfg.Edge(nil), cur...))
			// The report fires when the target's event is processed;
			// extending past it cannot un-fire it, so stop here.
			return
		}
		for _, e := range n.Succs {
			if !slice[e.To] || visits[e] >= 2 {
				continue
			}
			visits[e]++
			cur = append(cur, e)
			dfs(e.To)
			cur = cur[:len(cur)-1]
			visits[e]--
		}
	}
	dfs(g.Entry)
	return paths, !overBudget
}

// condFact is one recorded branch outcome, keyed externally by the
// normalized condition text.
type condFact struct {
	outcome bool
	idents  []string
}

// replayPath replays sm along one path with a fresh Sim, tracking
// branch-condition outcomes by normalized expression text (a
// generalization of the engine pruner's bare-identifier key space).
// fired reports whether the replay produced r; infeasible whether the
// path took contradictory outcomes of one unwritten condition.
func replayPath(g *cfg.Graph, sm *engine.SM, r engine.Report, path []*cfg.Edge) (fired, infeasible bool) {
	sim := engine.NewSim(g, sm)
	c, ok := sim.Start()
	if !ok {
		return false, false
	}
	conds := map[string]condFact{}

	if c, ok = sim.Transfer(g.Entry, c); !ok {
		return firedIn(sim, r), false
	}
	var last *cfg.Node = g.Entry
	for _, e := range path {
		// Record the branch outcome this edge commits to.
		if e.From.Kind == cfg.KindBranch && (e.Label == cfg.True || e.Label == cfg.False) {
			cond, negated := engine.StripNegation(e.From.Cond)
			key := ast.ExprString(cond)
			outcome := (e.Label == cfg.True) != negated
			if prev, seen := conds[key]; seen && prev.outcome != outcome {
				infeasible = true
			}
			conds[key] = condFact{outcome: outcome, idents: identNames(cond)}
		}
		if c, ok = sim.Refine(e, c); !ok {
			return firedIn(sim, r), infeasible
		}
		n := e.To
		invalidateConds(conds, n)
		if c, ok = sim.Transfer(n, c); !ok {
			return firedIn(sim, r), infeasible
		}
		last = n
	}
	if last == g.Exit {
		sim.AtExit(c)
	}
	return firedIn(sim, r), infeasible
}

// invalidateConds drops recorded outcomes whose operands node n
// writes, mirroring the engine's own invalidation.
func invalidateConds(conds map[string]condFact, n *cfg.Node) {
	if len(conds) == 0 {
		return
	}
	var ev ast.Node
	switch n.Kind {
	case cfg.KindStmt:
		ev = n.Stmt
	case cfg.KindBranch:
		ev = n.Cond
	default:
		return
	}
	drop := func(name string) {
		for key, f := range conds {
			for _, id := range f.idents {
				if id == name {
					delete(conds, key)
					break
				}
			}
		}
	}
	ast.Inspect(ev, func(x ast.Node) bool {
		switch a := x.(type) {
		case *ast.Assign:
			if id, ok := a.LHS.(*ast.Ident); ok {
				drop(id.Name)
			}
		case *ast.Unary:
			if a.Op == token.Inc || a.Op == token.Dec {
				if id, ok := a.X.(*ast.Ident); ok {
					drop(id.Name)
				}
			}
		case *ast.DeclStmt:
			drop(a.Decl.Name)
		}
		return true
	})
}

func identNames(e ast.Expr) []string {
	var out []string
	seen := map[string]bool{}
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

func firedIn(sim *engine.Sim, r engine.Report) bool {
	for _, got := range sim.Reports() {
		if got.Rule == r.Rule && got.Pos == r.Pos && got.Msg == r.Msg {
			return true
		}
	}
	return false
}
