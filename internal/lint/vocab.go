package lint

import (
	"flashmc/internal/cc/lexer"
	"flashmc/internal/cc/token"
	"flashmc/internal/flash"
)

// Vocab is the set of identifiers a checker pattern may legitimately
// anchor on: the protocol macro and accessor vocabulary plus any
// protocol-specific function names. The dead-pattern pass flags any
// pattern naming an identifier outside the vocabulary — a typo there
// reproduces the paper's §11 failure, a checker that silently never
// fires.
type Vocab struct {
	names map[string]bool
}

// NewVocab builds a vocabulary from explicit names.
func NewVocab(names ...string) *Vocab {
	v := &Vocab{names: map[string]bool{}}
	v.Add(names...)
	return v
}

// FlashVocab lexes flash-includes.h and returns every identifier in
// it: macros, annotation markers, typedef names, struct members and
// constants. Anything a FLASH checker pattern can anchor on appears
// in the header; anything else can never match protocol code.
func FlashVocab() *Vocab {
	v := NewVocab()
	l := lexer.New("flash-includes.h", flash.IncludesH)
	for _, tok := range l.All() {
		if tok.Kind == token.Ident {
			v.names[tok.Text] = true
		}
	}
	return v
}

// Add extends the vocabulary (e.g. with a spec's buffer-free and
// buffer-use function tables, or the program's own function names).
func (v *Vocab) Add(names ...string) {
	for _, n := range names {
		if n != "" {
			v.names[n] = true
		}
	}
}

// Has reports whether name is in the vocabulary.
func (v *Vocab) Has(name string) bool { return v.names[name] }

// Len returns the vocabulary size.
func (v *Vocab) Len() int { return len(v.names) }
