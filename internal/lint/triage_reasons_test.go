package lint

import (
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
	"flashmc/internal/core"
	"flashmc/internal/engine"
)

// The reason table test: every conservative fallback and verdict in
// the triage ladder must surface its own pinned Reason string, so
// downstream tools (and the EXPERIMENTS tables) can attribute
// verdicts without parsing prose. Each scenario below manufactures
// exactly one ladder outcome.
func TestTriageReasonTable(t *testing.T) {
	sm := freeSM(t)

	// Locate the statement node on a given source line so fabricated
	// reports land on a real CFG node.
	stmtPosAtLine := func(g *cfg.Graph, line int) token.Pos {
		for _, n := range g.Nodes {
			if n.Kind == cfg.KindStmt && n.Stmt != nil && n.Pos().Line == line {
				return n.Pos()
			}
		}
		t.Fatalf("no stmt node on line %d", line)
		return token.Pos{}
	}

	type scenario struct {
		name   string
		src    string
		mode   TriageMode
		opt    TriageOptions
		report func(g *cfg.Graph) engine.Report
		run    func(g *cfg.Graph, r engine.Report, opt TriageOptions) RankedReport
		conf   Confidence
		reason string
	}

	// A leak report at function exit, the shape most scenarios rank.
	leakAt := func(g *cfg.Graph) engine.Report {
		return engine.Report{SM: "free", Rule: "at-exit", Fn: "h",
			Pos: g.Exit.Pos(), Msg: "leak: buffer never freed",
			Trace: engine.Witness(g.Exit.Pos(), "at-exit", "exit")}
	}
	viaSM := func(g *cfg.Graph, r engine.Report, opt TriageOptions) RankedReport {
		return TriageSM(g, sm, []engine.Report{r}, opt)[0]
	}

	scenarios := []scenario{
		{
			name: "site-not-found",
			src:  `void h(void) { DEC_DB_REF(0); }`,
			report: func(g *cfg.Graph) engine.Report {
				return engine.Report{SM: "free", Rule: "double-free", Fn: "h",
					Pos:   token.Pos{File: "elsewhere.c", Line: 999},
					Msg:   "double free",
					Trace: engine.Witness(token.Pos{File: "elsewhere.c", Line: 999}, "double-free", "?")}
			},
			run: viaSM, conf: Certain, reason: ReasonSiteNotFound,
		},
		{
			name: "budget-exhausted",
			src:  `void h(void) { unsigned t0; if (t0) { ; } if (t0) { ; } }`,
			opt:  TriageOptions{MaxSteps: 1},
			report: func(g *cfg.Graph) engine.Report {
				return leakAt(g)
			},
			run: viaSM, conf: Certain, reason: ReasonBudget,
		},
		{
			name: "unreachable-site",
			src: `void h(void) {
	return;
	DEC_DB_REF(0);
}`,
			report: func(g *cfg.Graph) engine.Report {
				pos := stmtPosAtLine(g, 3)
				return engine.Report{SM: "free", Rule: "double-free", Fn: "h",
					Pos: pos, Msg: "double free",
					Trace: engine.Witness(pos, "double-free", "DEC_DB_REF(0)")}
			},
			run: viaSM, conf: Certain, reason: ReasonUnreachable,
		},
		{
			name: "feasible",
			src:  `void h(void) { ; }`,
			report: func(g *cfg.Graph) engine.Report {
				return leakAt(g)
			},
			run: viaSM, conf: Certain, reason: ReasonFeasible,
		},
		{
			name: "not-reproduced",
			src:  `void h(void) { DEC_DB_REF(0); }`,
			report: func(g *cfg.Graph) engine.Report {
				// A leak report although every path frees: never
				// replays, kept conservatively.
				return leakAt(g)
			},
			run: viaSM, conf: Certain, reason: ReasonNotOnPath,
		},
		{
			name: "contradicted",
			src: `void h(void) {
	unsigned m;
	if (m) { DEC_DB_REF(0); }
	if (m) { ; } else { DEC_DB_REF(0); }
}`,
			report: func(g *cfg.Graph) engine.Report {
				// The double free needs m both true and false; replay
				// the real engine report so positions line up.
				for _, r := range engine.Run(g, sm) {
					if r.Rule == "double-free" {
						return r
					}
				}
				t.Fatal("engine did not fire the double free")
				return engine.Report{}
			},
			run: viaSM, conf: LikelyFP, reason: ReasonContradicted,
		},
		{
			name: "sym-refuted",
			src: `void h(void) {
	unsigned t0;
	t0 = t0 | 2;
	if (t0 & 2) { DEC_DB_REF(0); }
}`,
			mode: ModeSym,
			report: func(g *cfg.Graph) engine.Report {
				// The leak fires only on the mask-contradicted else
				// path: provably unsatisfiable.
				return leakAt(g)
			},
			run: viaSM, conf: Infeasible, reason: ReasonSymRefuted,
		},
		{
			name: "sym-undecided",
			src: `void h(void) {
	unsigned i;
	i = 0;
	while (i < 1) { i = i + 1; }
}`,
			mode: ModeSym,
			report: func(g *cfg.Graph) engine.Report {
				// The leak fires on every exit path; the zero-iteration
				// path is refuted (0 < 1 must hold) but the loop paths
				// cross a back edge, which the evaluator will not judge.
				return leakAt(g)
			},
			run: viaSM, conf: Certain, reason: ReasonSymUndecided,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			g := buildGraph(t, sc.src)
			opt := sc.opt
			if sc.mode != "" {
				opt.Mode = sc.mode
			}
			rr := sc.run(g, sc.report(g), opt)
			if rr.Confidence != sc.conf {
				t.Errorf("confidence %q, want %q (reason %q)", rr.Confidence, sc.conf, rr.Reason)
			}
			if rr.Reason != sc.reason {
				t.Errorf("reason %q, want %q", rr.Reason, sc.reason)
			}
		})
	}

	// The function-not-found fallback needs the program-level entry
	// point; a report naming an unknown function must not be triaged.
	t.Run("fn-not-found", func(t *testing.T) {
		prog, err := core.Load("t", cpp.MapSource{"p.c": "void h(void) { ; }\n"}, []string{"p.c"})
		if err != nil {
			t.Fatal(err)
		}
		rr := TriageProgram(prog, sm, []engine.Report{{SM: "free", Fn: "ghost"}}, TriageOptions{})[0]
		if rr.Confidence != Certain || rr.Reason != ReasonFnNotFound {
			t.Errorf("got %q/%q", rr.Confidence, rr.Reason)
		}
	})
}