package lint

import (
	"strings"
	"testing"

	"flashmc/internal/engine"
)

// covSM builds a small SM: two live rules plus one rule whose only
// pattern is shadowed by an earlier rule (statically dead).
func covSM(t *testing.T) *engine.SM {
	w := map[string]string{"x": ""}
	read := stmtPat(t, "read(x);", w)
	return &engine.SM{
		Name:  "covsm",
		Start: "start",
		Rules: []*engine.Rule{
			{State: "start", Tag: "open", Patterns: []engine.Pattern{stmtPat(t, "open(x);", w)}, Target: "opened"},
			{State: "opened", Tag: "read", Patterns: []engine.Pattern{read}},
			{State: "opened", Tag: "read-again", Patterns: []engine.Pattern{read}},
		},
		Cond: []*engine.CondRule{
			{State: "opened", Pattern: exprPat(t, "is_ok(x)", w).Expr, TrueTarget: "start"},
		},
	}
}

func TestCoverageDeadFlagsUnfiredLiveRule(t *testing.T) {
	sm := covSM(t)
	// "open" fired, "read" did not; "read-again" is statically dead
	// (shadowed) and must NOT be reported by coverage-dead.
	fired := map[string]uint64{"open": 3}
	conds := map[string]uint64{"cond#0": 1}
	diags := CoverageDead(Target{SM: sm}, fired, conds)
	var rules []string
	for _, d := range diags {
		if d.Pass != "coverage-dead" {
			t.Errorf("unexpected pass %q", d.Pass)
		}
		if d.Severity != Warn {
			t.Errorf("severity %v, want Warn", d.Severity)
		}
		rules = append(rules, d.Rule)
	}
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, "read") {
		t.Errorf("unfired live rule not flagged: %v", rules)
	}
	if strings.Contains(joined, "read-again") {
		t.Errorf("statically dead rule double-reported: %v", rules)
	}
	if strings.Contains(joined, "open") {
		t.Errorf("fired rule flagged dead: %v", rules)
	}
}

func TestCoverageDeadAllFired(t *testing.T) {
	sm := covSM(t)
	fired := map[string]uint64{"open": 1, "read": 2}
	conds := map[string]uint64{"cond#0": 1}
	if diags := CoverageDead(Target{SM: sm}, fired, conds); len(diags) != 0 {
		t.Errorf("fully covered SM produced diags: %v", diags)
	}
}

func TestCoverageDeadCondRule(t *testing.T) {
	sm := covSM(t)
	fired := map[string]uint64{"open": 1, "read": 2}
	diags := CoverageDead(Target{SM: sm}, fired, nil)
	found := false
	for _, d := range diags {
		if d.Rule == "cond#0" {
			found = true
		}
	}
	if !found {
		t.Errorf("unfired cond rule not flagged: %v", diags)
	}
}

func TestCoverageDeadSkipsUnreachableState(t *testing.T) {
	w := map[string]string{"x": ""}
	sm := &engine.SM{
		Name:  "unreach",
		Start: "start",
		Rules: []*engine.Rule{
			{State: "start", Tag: "go", Patterns: []engine.Pattern{stmtPat(t, "go_on(x);", w)}},
			// "island" is unreachable: CheckSM flags it Error, so its
			// unfired rule is not coverage-dead.
			{State: "island", Tag: "lost", Patterns: []engine.Pattern{stmtPat(t, "lost(x);", w)}},
		},
	}
	diags := CoverageDead(Target{SM: sm}, map[string]uint64{"go": 1}, nil)
	for _, d := range diags {
		if d.Rule == "lost" {
			t.Errorf("rule in unreachable state reported coverage-dead: %v", d)
		}
	}
}

// The coverage keys engine produces and the labels lint uses must
// agree, or the cross-check silently flags everything.
func TestCoverageKeysMatchRuleLabels(t *testing.T) {
	sm := covSM(t)
	for i, r := range sm.Rules {
		if got, want := engine.RuleKey(sm, i), ruleLabel(sm, r); got != want {
			t.Errorf("rule %d: engine key %q != lint label %q", i, got, want)
		}
	}
}
