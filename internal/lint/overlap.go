package lint

import (
	"flashmc/internal/cc/ast"
	"flashmc/internal/engine"
	"flashmc/internal/match"
)

// Pattern unification and subsumption for the shadowed-rule pass.
//
// Both relations are decided on the pattern trees alone, mirroring
// package match's permissive semantics on untyped subjects: the
// type-based wildcard constraints (scalar, unsigned, ptr, ...) accept
// any untyped expression there, so they accept anything here too. The
// relations are deliberately approximate in two documented ways:
//
//   - sub-expression positions under a wildcard are not explored, so
//     an overlap that only exists when an event nests one pattern's
//     match inside another's wildcard binding is not reported (it is
//     almost never intended and would otherwise drown the signal);
//   - subsumption treats a repeated wildcard (x used twice, forcing
//     equal subtrees) as restrictive: a pattern repeating a wildcard
//     never subsumes one that does not repeat it the same way.

// subsumesPattern reports whether pattern a matches every event that
// pattern b matches — i.e. a declared-earlier a makes b dead, and a
// declared-later a makes the pair a specific-before-general idiom.
func subsumesPattern(a, b engine.Pattern) bool {
	ar, aExpr := patRoot(a)
	br, bExpr := patRoot(b)
	if aExpr && bExpr {
		if exprSubsumes(exprOf(ar), exprOf(br), map[string]ast.Expr{}) {
			return true
		}
		// a also fires on b's events when a matches some concrete
		// sub-expression every instance of b must contain.
		for _, sub := range concreteSubtrees(exprOf(br)) {
			if exprSubsumes(exprOf(ar), sub, map[string]ast.Expr{}) {
				return true
			}
		}
		return false
	}
	if aExpr || bExpr {
		if aExpr {
			// An expression pattern matches sub-expressions of any
			// event, so it can subsume a non-expression statement
			// pattern through the expressions that pattern pins down.
			for _, sub := range concreteSubtrees(br) {
				if exprSubsumes(exprOf(ar), sub, map[string]ast.Expr{}) {
					return true
				}
			}
		}
		return false
	}
	return stmtSubsumes(ar.(ast.Stmt), br.(ast.Stmt))
}

// overlapsPattern reports whether some event matches both patterns —
// the precondition for rule order in one state being load-bearing.
func overlapsPattern(a, b engine.Pattern) bool {
	ar, aExpr := patRoot(a)
	br, bExpr := patRoot(b)
	if aExpr && bExpr {
		if exprUnify(exprOf(ar), exprOf(br)) {
			return true
		}
		for _, sub := range concreteSubtrees(exprOf(br)) {
			if exprUnify(exprOf(ar), sub) {
				return true
			}
		}
		for _, sub := range concreteSubtrees(exprOf(ar)) {
			if exprUnify(sub, exprOf(br)) {
				return true
			}
		}
		return false
	}
	if aExpr != bExpr {
		// Expression pattern vs. non-expression statement pattern:
		// the expression can still fire on the statement's event as a
		// sub-expression match.
		e, s := ar, br
		if bExpr {
			e, s = br, ar
		}
		for _, sub := range concreteSubtrees(s) {
			if exprUnify(exprOf(e), sub) {
				return true
			}
		}
		return false
	}
	return stmtUnify(ar.(ast.Stmt), br.(ast.Stmt))
}

// patRoot normalizes a pattern to its root node. exprRooted is true
// for expression patterns and expression-statement patterns, which
// share the sub-expression matching semantics of matchRule.
func patRoot(p engine.Pattern) (root ast.Node, exprRooted bool) {
	if p.Expr != nil {
		return stripParens(p.Expr), true
	}
	if es, ok := p.Stmt.(*ast.ExprStmt); ok {
		return stripParens(es.X), true
	}
	return p.Stmt, false
}

func exprOf(n ast.Node) ast.Expr { return n.(ast.Expr) }

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}

// concreteSubtrees collects the proper sub-expressions of a pattern
// whose roots are not wildcards (wildcard-rooted positions bind
// arbitrary expressions and are excluded by design, see above).
func concreteSubtrees(n ast.Node) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.Wildcard); ok {
			return false
		}
		if e, ok := x.(ast.Expr); ok {
			if ast.Node(e) != n {
				out = append(out, stripParens(e))
			}
		}
		return true
	})
	return out
}

// permissiveConstraint reports whether wildcard constraint c accepts
// any untyped pattern expression (mirrors match.constraintOK, which
// falls back to accepting when the subject has no type).
func permissiveConstraint(c string) bool {
	switch c {
	case "const", "id", "float":
		return false
	}
	return true
}

// constraintAccepts mirrors match.constraintOK on a pattern subtree.
func constraintAccepts(c string, e ast.Expr) bool {
	switch c {
	case "const":
		switch e.(type) {
		case *ast.IntLit, *ast.FloatLit, *ast.CharLit, *ast.StringLit:
			return true
		}
		return false
	case "id":
		_, ok := e.(*ast.Ident)
		return ok
	case "float":
		// Needs a typed float subject; undecidable on pattern trees,
		// so never claim subsumption through it.
		return false
	}
	return true
}

// exprSubsumes reports whether pattern a matches every expression b
// matches. binds tracks a's wildcard bindings so repeated wildcards
// in a stay restrictive.
func exprSubsumes(a, b ast.Expr, binds map[string]ast.Expr) bool {
	a, b = stripParens(a), stripParens(b)
	if w, ok := a.(*ast.Wildcard); ok {
		if bw, ok := b.(*ast.Wildcard); ok {
			if !permissiveConstraint(w.Constraint) && w.Constraint != bw.Constraint {
				return false
			}
		} else if !constraintAccepts(w.Constraint, b) {
			return false
		}
		if w.Name == "" || w.Name == "_" {
			return true
		}
		if prev, ok := binds[w.Name]; ok {
			// a repeats the wildcard: b only stays subsumed when it
			// pins the same subtree at both positions.
			return match.EqualExpr(prev, b)
		}
		binds[w.Name] = b
		return true
	}
	if _, ok := b.(*ast.Wildcard); ok {
		return false // b is strictly more general at this position
	}
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.IntLit:
		y, ok := b.(*ast.IntLit)
		return ok && x.Value == y.Value
	case *ast.FloatLit:
		y, ok := b.(*ast.FloatLit)
		return ok && x.Value == y.Value
	case *ast.CharLit:
		y, ok := b.(*ast.CharLit)
		return ok && x.Value == y.Value
	case *ast.StringLit:
		y, ok := b.(*ast.StringLit)
		return ok && x.Value == y.Value
	case *ast.Unary:
		y, ok := b.(*ast.Unary)
		return ok && x.Op == y.Op && x.Postfix == y.Postfix &&
			exprSubsumes(x.X, y.X, binds)
	case *ast.Binary:
		y, ok := b.(*ast.Binary)
		return ok && x.Op == y.Op &&
			exprSubsumes(x.X, y.X, binds) && exprSubsumes(x.Y, y.Y, binds)
	case *ast.Assign:
		y, ok := b.(*ast.Assign)
		return ok && x.Op == y.Op &&
			exprSubsumes(x.LHS, y.LHS, binds) && exprSubsumes(x.RHS, y.RHS, binds)
	case *ast.Cond:
		y, ok := b.(*ast.Cond)
		return ok && exprSubsumes(x.C, y.C, binds) &&
			exprSubsumes(x.Then, y.Then, binds) && exprSubsumes(x.Else, y.Else, binds)
	case *ast.Call:
		y, ok := b.(*ast.Call)
		if !ok || len(x.Args) != len(y.Args) || !exprSubsumes(x.Fun, y.Fun, binds) {
			return false
		}
		for i := range x.Args {
			if !exprSubsumes(x.Args[i], y.Args[i], binds) {
				return false
			}
		}
		return true
	case *ast.Index:
		y, ok := b.(*ast.Index)
		return ok && exprSubsumes(x.X, y.X, binds) && exprSubsumes(x.Idx, y.Idx, binds)
	case *ast.Member:
		y, ok := b.(*ast.Member)
		return ok && x.Name == y.Name && x.Arrow == y.Arrow &&
			exprSubsumes(x.X, y.X, binds)
	case *ast.SizeofExpr:
		y, ok := b.(*ast.SizeofExpr)
		return ok && exprSubsumes(x.X, y.X, binds)
	}
	// Casts, sizeof(T), initializer lists: compare conservatively.
	return false
}

// exprUnify reports whether some concrete expression matches both
// patterns. Wildcards unify with anything (repeated-wildcard equality
// is ignored here — a deliberate over-approximation biased toward
// reporting the overlap).
func exprUnify(a, b ast.Expr) bool {
	a, b = stripParens(a), stripParens(b)
	if _, ok := a.(*ast.Wildcard); ok {
		return true
	}
	if _, ok := b.(*ast.Wildcard); ok {
		return true
	}
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.IntLit:
		y, ok := b.(*ast.IntLit)
		return ok && x.Value == y.Value
	case *ast.FloatLit:
		y, ok := b.(*ast.FloatLit)
		return ok && x.Value == y.Value
	case *ast.CharLit:
		y, ok := b.(*ast.CharLit)
		return ok && x.Value == y.Value
	case *ast.StringLit:
		y, ok := b.(*ast.StringLit)
		return ok && x.Value == y.Value
	case *ast.Unary:
		y, ok := b.(*ast.Unary)
		return ok && x.Op == y.Op && x.Postfix == y.Postfix && exprUnify(x.X, y.X)
	case *ast.Binary:
		y, ok := b.(*ast.Binary)
		return ok && x.Op == y.Op && exprUnify(x.X, y.X) && exprUnify(x.Y, y.Y)
	case *ast.Assign:
		y, ok := b.(*ast.Assign)
		return ok && x.Op == y.Op && exprUnify(x.LHS, y.LHS) && exprUnify(x.RHS, y.RHS)
	case *ast.Cond:
		y, ok := b.(*ast.Cond)
		return ok && exprUnify(x.C, y.C) && exprUnify(x.Then, y.Then) && exprUnify(x.Else, y.Else)
	case *ast.Call:
		y, ok := b.(*ast.Call)
		if !ok || len(x.Args) != len(y.Args) || !exprUnify(x.Fun, y.Fun) {
			return false
		}
		for i := range x.Args {
			if !exprUnify(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *ast.Index:
		y, ok := b.(*ast.Index)
		return ok && exprUnify(x.X, y.X) && exprUnify(x.Idx, y.Idx)
	case *ast.Member:
		y, ok := b.(*ast.Member)
		return ok && x.Name == y.Name && x.Arrow == y.Arrow && exprUnify(x.X, y.X)
	case *ast.SizeofExpr:
		y, ok := b.(*ast.SizeofExpr)
		return ok && exprUnify(x.X, y.X)
	}
	return false
}

// stmtSubsumes handles the non-expression statement pattern kinds.
// Checkers almost exclusively use expression(-statement) patterns;
// the remaining kinds compare by shape.
func stmtSubsumes(a, b ast.Stmt) bool {
	switch x := a.(type) {
	case *ast.Return:
		y, ok := b.(*ast.Return)
		if !ok {
			return false
		}
		if x.X == nil || y.X == nil {
			return x.X == nil && y.X == nil
		}
		return exprSubsumes(x.X, y.X, map[string]ast.Expr{})
	case *ast.Break:
		_, ok := b.(*ast.Break)
		return ok
	case *ast.Continue:
		_, ok := b.(*ast.Continue)
		return ok
	case *ast.Empty:
		_, ok := b.(*ast.Empty)
		return ok
	}
	return false
}

func stmtUnify(a, b ast.Stmt) bool {
	switch x := a.(type) {
	case *ast.Return:
		y, ok := b.(*ast.Return)
		if !ok {
			return false
		}
		if x.X == nil || y.X == nil {
			return x.X == nil && y.X == nil
		}
		return exprUnify(x.X, y.X)
	case *ast.Break:
		_, ok := b.(*ast.Break)
		return ok
	case *ast.Continue:
		_, ok := b.(*ast.Continue)
		return ok
	case *ast.Empty:
		_, ok := b.(*ast.Empty)
		return ok
	}
	return false
}
