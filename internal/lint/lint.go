// Package lint is a static-analysis pass suite for the metal checkers
// themselves. The paper's §11 "betrayal incident" — a hand-written
// INC_DB_REF that silently blinded the buffer checker — showed that
// the analyses need analyzing: a checker whose state machine has an
// unreachable state, a shadowed rule, or a pattern outside the
// protocol vocabulary reports nothing and looks exactly like a clean
// run.
//
// The package has two pass families:
//
//   - SM-level passes (CheckSM, CheckMetal) over compiled engine.SMs
//     and metal programs: unreachable states, shadowed and overlapping
//     rules, wildcards declared but never bound, dead patterns that
//     can never match the FLASH vocabulary, and absorbing states.
//   - Report-triage passes (TriageProgram, TriageSM) over cfg graphs
//     and engine reports: a backward slice from each report site, a
//     correlated-branch feasibility replay along the sliced paths, and
//     a certain / likely-FP confidence rank per report.
package lint

import (
	"fmt"
	"sort"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info marks deliberate-looking but order-sensitive constructs,
	// e.g. a specific rule declared before a more general one.
	Info Severity = iota
	// Warn marks constructs that are probably mistakes but do not by
	// themselves disable a checker.
	Warn
	// Error marks constructs that make part of a checker dead: it can
	// never fire, so it fails in the paper's worst mode — silently.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Diag is one lint finding.
type Diag struct {
	Pass     string // which pass produced it
	Severity Severity
	SM       string // state machine name, "" for graph-level passes
	State    string // owning state, when meaningful
	Rule     string // rule tag, when meaningful
	Msg      string
}

func (d Diag) String() string {
	loc := d.SM
	if d.State != "" {
		loc += "/" + d.State
	}
	if d.Rule != "" {
		loc += "/" + d.Rule
	}
	if loc != "" {
		loc = " " + loc
	}
	return fmt.Sprintf("%s [%s]%s: %s", d.Severity, d.Pass, loc, d.Msg)
}

// Errors filters diags down to Error severity.
func Errors(diags []Diag) []Diag {
	var out []Diag
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// MaxSeverity returns the highest severity present, and false when
// diags is empty.
func MaxSeverity(diags []Diag) (Severity, bool) {
	if len(diags) == 0 {
		return 0, false
	}
	max := diags[0].Severity
	for _, d := range diags[1:] {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// sortDiags orders diagnostics most severe first, then by text, so
// output is stable across runs.
func sortDiags(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity > diags[j].Severity
		}
		return diags[i].String() < diags[j].String()
	})
}
