package lint

import (
	"os"
	"strings"
	"testing"

	"flashmc/internal/cc/parser"
	"flashmc/internal/cfg"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/metal"
)

func compileMetalFile(t *testing.T, path string) *metal.Program {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	p, err := metal.Compile(string(src), metal.Options{Include: flash.HeaderSource()})
	if err != nil {
		t.Fatalf("compile %s: %v", path, err)
	}
	return p
}

func hasDiag(diags []Diag, pass string, sev Severity, substr string) bool {
	for _, d := range diags {
		if d.Pass == pass && d.Severity == sev && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

// TestBrokenFixtureFlagged is the acceptance fixture: a checker with
// an unreachable state, a shadowed rule, a dead (typo) pattern and an
// unused wildcard must light up every corresponding pass.
func TestBrokenFixtureFlagged(t *testing.T) {
	prog := compileMetalFile(t, "testdata/broken.metal")
	diags := CheckMetal(prog, FlashVocab())

	if !hasDiag(diags, "unreachable-state", Error, `"orphan"`) {
		t.Errorf("missing unreachable-state error for orphan:\n%v", diags)
	}
	if !hasDiag(diags, "shadowed-rule", Error, "every alternative is shadowed") {
		t.Errorf("missing dead shadowed-rule error:\n%v", diags)
	}
	if !hasDiag(diags, "shadowed-rule", Warn, "stops the configuration") {
		t.Errorf("missing stop-rule shadow note:\n%v", diags)
	}
	if !hasDiag(diags, "dead-pattern", Error, "MISCBUS_REED_DB") {
		t.Errorf("missing dead-pattern error for the typo:\n%v", diags)
	}
	if !hasDiag(diags, "unused-wildcard", Warn, `"ghost"`) {
		t.Errorf("missing unused-wildcard warning for ghost:\n%v", diags)
	}
}

// TestShippedMetalSourcesClean pins that the three embedded metal
// checkers lint clean (nothing at Warn or above).
func TestShippedMetalSourcesClean(t *testing.T) {
	vocab := FlashVocab()
	for _, path := range []string{
		"../checkers/metalsrc/wait_for_db.metal",
		"../checkers/metalsrc/msglen.metal",
		"../checkers/metalsrc/alloc_check.metal",
	} {
		prog := compileMetalFile(t, path)
		diags := CheckMetal(prog, vocab)
		if sev, any := MaxSeverity(diags); any && sev >= Warn {
			t.Errorf("%s: unexpected findings:\n%v", path, diags)
		}
	}
}

func stmtPat(t *testing.T, src string, wild map[string]string) engine.Pattern {
	t.Helper()
	s, err := parser.ParseStmtPattern(src, parser.PatternContext{Wildcards: wild})
	if err != nil {
		t.Fatalf("pattern %q: %v", src, err)
	}
	return engine.Pattern{Stmt: s}
}

func exprPat(t *testing.T, src string, wild map[string]string) engine.Pattern {
	t.Helper()
	e, err := parser.ParseExprPattern(src, parser.PatternContext{Wildcards: wild})
	if err != nil {
		t.Fatalf("pattern %q: %v", src, err)
	}
	return engine.Pattern{Expr: e}
}

func TestSubsumptionAndOverlap(t *testing.T) {
	one := map[string]string{"x": ""}
	specific := stmtPat(t, "DIR_LOAD(DIR_ADDR(x));", one)
	general := stmtPat(t, "DIR_LOAD(x);", one)
	other := stmtPat(t, "DIR_WRITEBACK(x);", one)
	alloc := stmtPat(t, "x = ALLOC_DB();", one)
	allocBare := stmtPat(t, "ALLOC_DB();", nil)
	eq := exprPat(t, "x == BUFFER_ERROR", one)
	neq := exprPat(t, "x != BUFFER_ERROR", one)

	if !subsumesPattern(general, specific) {
		t.Error("DIR_LOAD(x) should subsume DIR_LOAD(DIR_ADDR(x))")
	}
	if subsumesPattern(specific, general) {
		t.Error("DIR_LOAD(DIR_ADDR(x)) must not subsume DIR_LOAD(x)")
	}
	if !overlapsPattern(general, specific) || !overlapsPattern(specific, general) {
		t.Error("specific/general must overlap")
	}
	if overlapsPattern(general, other) {
		t.Error("DIR_LOAD vs DIR_WRITEBACK must not overlap")
	}
	// An expression-statement pattern matches sub-expressions, so the
	// bare-call form subsumes (and overlaps) the assignment form.
	if !subsumesPattern(allocBare, alloc) {
		t.Error("ALLOC_DB(); should subsume x = ALLOC_DB(); via sub-expression matching")
	}
	if subsumesPattern(alloc, allocBare) {
		t.Error("x = ALLOC_DB(); must not subsume ALLOC_DB();")
	}
	if overlapsPattern(eq, neq) {
		t.Error("== and != comparisons must not overlap")
	}
	if !subsumesPattern(eq, eq) {
		t.Error("a pattern must subsume itself")
	}
}

// TestSpecificBeforeGeneralIsInfo pins the severity split the
// directory checker relies on: declaring the more specific rule first
// is the supported idiom (Info), while the reverse order makes the
// specific rule dead (Error). The engine-side ground truth is
// TestSameStateRuleDeclarationOrder in package engine.
func TestSpecificBeforeGeneralIsInfo(t *testing.T) {
	one := map[string]string{"x": ""}
	specific := stmtPat(t, "DIR_LOAD(DIR_ADDR(x));", one)
	general := stmtPat(t, "DIR_LOAD(x);", one)

	sm := &engine.SM{Name: "dir", Start: "s", Rules: []*engine.Rule{
		{State: "s", Patterns: []engine.Pattern{specific}, Tag: "specific"},
		{State: "s", Patterns: []engine.Pattern{general}, Tag: "general"},
	}}
	diags := CheckSM(Target{SM: sm})
	if sev, any := MaxSeverity(diags); !any || sev != Info {
		t.Fatalf("specific-first: want only Info, got:\n%v", diags)
	}

	sm.Rules[0], sm.Rules[1] = sm.Rules[1], sm.Rules[0]
	diags = CheckSM(Target{SM: sm})
	if !hasDiag(diags, "shadowed-rule", Error, "dead") {
		t.Fatalf("general-first: want dead-rule error, got:\n%v", diags)
	}
}

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	f, errs := parser.ParseText("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return cfg.Build(f.Funcs()[0])
}

// TestUncorrelatedBranchesDiag covers the satellite fix for the
// engine pruner's silent key-space bound: repeated non-identifier
// conditions become a visible diagnostic.
func TestUncorrelatedBranchesDiag(t *testing.T) {
	g := buildGraph(t, `
void h(int m) {
	if (m > 2) {
		DEC_DB_REF(0);
	}
	if (m > 2) {
		;
	} else {
		DEC_DB_REF(0);
	}
}`)
	diags := CheckGraph(g)
	if !hasDiag(diags, "uncorrelated-branches", Warn, `"m > 2"`) {
		t.Fatalf("want uncorrelated-branches warning, got:\n%v", diags)
	}

	// Bare identifiers are the pruner's own territory: no diagnostic.
	g = buildGraph(t, `
void h(int m) {
	if (m) { DEC_DB_REF(0); }
	if (m) { ; } else { DEC_DB_REF(0); }
}`)
	if diags := CheckGraph(g); len(diags) != 0 {
		t.Fatalf("bare identifier conditions must not be flagged:\n%v", diags)
	}

	// A write between occurrences makes re-testing legitimate.
	g = buildGraph(t, `
void h(int m) {
	if (m > 2) { DEC_DB_REF(0); }
	m = m + 1;
	if (m > 2) { ; } else { DEC_DB_REF(0); }
}`)
	if diags := CheckGraph(g); len(diags) != 0 {
		t.Fatalf("written condition operands must not be flagged:\n%v", diags)
	}

	// A write *before* the first occurrence (the initializing
	// assignment — the msglen variant shape) does not break the
	// correlation: only writes between tests are a barrier.
	g = buildGraph(t, `
void h(void) {
	long t0;
	t0 = MISCBUS_READ_DB(0);
	if (t0 & 1) { DEC_DB_REF(0); }
	if (t0 & 1) { ; } else { DEC_DB_REF(0); }
}`)
	if !hasDiag(CheckGraph(g), "uncorrelated-branches", Warn, `"t0 & 1"`) {
		t.Fatalf("initialized-then-tested-twice condition must be flagged:\n%v", CheckGraph(g))
	}
}

// freeSM is a minimal has/no buffer machine with an at-exit leak
// check, the shape behind the paper's bufmgmt false positives.
func freeSM(t *testing.T) *engine.SM {
	dec := stmtPat(t, "DEC_DB_REF(x);", map[string]string{"x": ""})
	return &engine.SM{
		Name:  "free",
		Start: "has",
		Rules: []*engine.Rule{
			{State: "has", Patterns: []engine.Pattern{dec}, Target: "no", Tag: "free"},
			{State: "no", Patterns: []engine.Pattern{dec}, Tag: "double-free",
				Action: func(c *engine.Ctx) { c.Report("double free") }},
		},
		AtExit: func(c *engine.Ctx) {
			if c.State == "has" {
				c.Report("leak: buffer never freed")
			}
		},
	}
}

// TestTriageDemotesInfeasiblePaths is the package-level version of
// the paper §6 claim: reports that only arise when one condition is
// taken both ways demote to likely-fp, while genuinely feasible
// reports stay certain.
func TestTriageDemotesInfeasiblePaths(t *testing.T) {
	sm := freeSM(t)
	g := buildGraph(t, `
void h(int m) {
	if (m > 2) {
		DEC_DB_REF(0);
	}
	if (m > 2) {
		;
	} else {
		DEC_DB_REF(0);
	}
}`)
	reports := engine.Run(g, sm)
	if len(reports) != 2 {
		t.Fatalf("fixed point: want double-free + leak, got %v", reports)
	}
	ranked := TriageSM(g, sm, reports, TriageOptions{})
	for _, rr := range ranked {
		if rr.Confidence != LikelyFP {
			t.Errorf("%s: want likely-fp (infeasible arm combination), got %s (%s)",
				rr.Msg, rr.Confidence, rr.Reason)
		}
	}

	// The same machine over straight-line code: both reports are
	// real and must stay certain.
	g = buildGraph(t, `
void h(void) {
	DEC_DB_REF(0);
	DEC_DB_REF(0);
}`)
	reports = engine.Run(g, sm)
	if len(reports) != 1 {
		t.Fatalf("want the double-free report, got %v", reports)
	}
	ranked = TriageSM(g, sm, reports, TriageOptions{})
	if ranked[0].Confidence != Certain {
		t.Fatalf("feasible double free demoted: %+v", ranked[0])
	}

	// A genuine leak on a feasible path also stays certain, even
	// with branches around.
	g = buildGraph(t, `
void h(int m) {
	if (m > 2) {
		DEC_DB_REF(0);
	}
}`)
	reports = engine.Run(g, sm)
	ranked = TriageSM(g, sm, reports, TriageOptions{})
	if len(ranked) != 1 || ranked[0].Confidence != Certain {
		t.Fatalf("feasible leak must stay certain: %+v", ranked)
	}
}

// TestTriageInvalidation: writing a condition operand between the two
// tests makes the contradictory path feasible again — no demotion.
func TestTriageInvalidation(t *testing.T) {
	sm := freeSM(t)
	g := buildGraph(t, `
void h(int m) {
	if (m > 2) {
		DEC_DB_REF(0);
	}
	m = m + 1;
	if (m > 2) {
		;
	} else {
		DEC_DB_REF(0);
	}
}`)
	reports := engine.Run(g, sm)
	ranked := TriageSM(g, sm, reports, TriageOptions{})
	for _, rr := range ranked {
		if rr.Confidence != Certain {
			t.Errorf("%s: invalidated condition must stay certain, got %s", rr.Msg, rr.Confidence)
		}
	}
}
