/* Deliberately broken checker exercising every way a metal SM fails
 * silently (paper §11): a rule shadowed into deadness, a pattern
 * whose macro name is a typo outside the protocol vocabulary, an
 * unreachable state and an unused wildcard declaration. metalint must
 * flag all four; the engine runs this checker without complaint and
 * simply never reports. */
{ #include "flash-includes.h" }
sm broken {
	decl { scalar } addr, buf, ghost;
	start:
	{ WAIT_FOR_DB_FULL(addr); } ==> stop
	| { WAIT_FOR_DB_FULL(addr); } ==>
		{ err("never fires: shadowed by the stop rule above"); }
	| { MISCBUS_REED_DB(addr, buf); } ==>
		{ err("never fires: MISCBUS_REED_DB is a typo"); }
	;
	orphan:
	{ MISCBUS_READ_DB(addr, buf); } ==>
		{ err("never fires: no rule targets state orphan"); }
	;
}
