package lint

import (
	"fmt"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/token"
	"flashmc/internal/cfg"
	"flashmc/internal/engine"
)

// CheckGraph surfaces the engine pruner's silent imprecision: the
// CorrelateBranches pruner only correlates *bare identifier* branch
// conditions (a deliberate key-space bound — see the engine's
// TestPruningIgnoresComplexConditions). When the same non-identifier
// condition guards two branches on one path and nothing in between
// writes its operands, the pruner still explores the contradictory
// arm combinations, and any report there is an infeasible-path false
// positive the engine cannot remove. This pass reports each such
// condition so the imprecision is visible instead of silent; the
// triage passes in this package additionally handle it per report.
func CheckGraph(g *cfg.Graph) []Diag {
	type site struct {
		nodes []*cfg.Node
	}
	groups := map[string]*site{}
	var order []string
	for _, n := range g.Nodes {
		if n.Kind != cfg.KindBranch || n.Cond == nil {
			continue
		}
		cond, _ := engine.StripNegation(n.Cond)
		if _, bare := cond.(*ast.Ident); bare {
			continue // the pruner handles these
		}
		key := ast.ExprString(cond)
		if groups[key] == nil {
			groups[key] = &site{}
			order = append(order, key)
		}
		groups[key].nodes = append(groups[key].nodes, n)
	}

	var diags []Diag
	for _, key := range order {
		s := groups[key]
		if len(s.nodes) < 2 {
			continue
		}
		// The repeated condition only defeats the pruner when one
		// occurrence reaches another with no intervening write to the
		// condition's operands: a write between the tests makes the
		// re-test legitimate, but writes before the first test (the
		// initializing assignment) do not.
		cond, _ := engine.StripNegation(s.nodes[0].Cond)
		if !anyReaches(g, s.nodes, condIdents(cond)) {
			continue
		}
		diags = append(diags, Diag{
			Pass: "uncorrelated-branches", Severity: Warn,
			Msg: fmt.Sprintf("%s: condition %q guards %d branches of %s but is not a bare identifier, so the correlated-branch pruner ignores it (key-space bound); reports on its contradictory arm combinations are infeasible-path false positives",
				posOf(s.nodes[0]), key, len(s.nodes), g.Fn.Name),
		})
	}
	return diags
}

func posOf(n *cfg.Node) token.Pos { return n.Pos() }

// condIdents collects the identifiers a condition reads.
func condIdents(cond ast.Expr) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(cond, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// nodeWrites reports whether n's event assigns, increments,
// decrements or declares any of the identifiers — the same write set
// the engine uses to invalidate recorded branch outcomes.
func nodeWrites(n *cfg.Node, idents map[string]bool) bool {
	var ev ast.Node
	switch n.Kind {
	case cfg.KindStmt:
		ev = n.Stmt
	case cfg.KindBranch:
		ev = n.Cond
	default:
		return false
	}
	hit := false
	ast.Inspect(ev, func(x ast.Node) bool {
		switch a := x.(type) {
		case *ast.Assign:
			if id, ok := a.LHS.(*ast.Ident); ok && idents[id.Name] {
				hit = true
			}
		case *ast.Unary:
			if a.Op == token.Inc || a.Op == token.Dec {
				if id, ok := a.X.(*ast.Ident); ok && idents[id.Name] {
					hit = true
				}
			}
		case *ast.DeclStmt:
			if idents[a.Decl.Name] {
				hit = true
			}
		}
		return !hit
	})
	return hit
}

// anyReaches reports whether some node in the group can reach another
// group member through CFG edges without crossing a node that writes
// one of the condition's operands (such a write node is a barrier: the
// re-test after it is legitimate).
func anyReaches(g *cfg.Graph, nodes []*cfg.Node, idents map[string]bool) bool {
	in := map[*cfg.Node]bool{}
	for _, n := range nodes {
		in[n] = true
	}
	for _, src := range nodes {
		seen := map[*cfg.Node]bool{src: true}
		work := []*cfg.Node{src}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			for _, e := range n.Succs {
				if seen[e.To] {
					continue
				}
				seen[e.To] = true
				if nodeWrites(e.To, idents) {
					continue // barrier: value changes before any re-test
				}
				if in[e.To] {
					return true
				}
				work = append(work, e.To)
			}
		}
	}
	return false
}
