package sched

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flashgen"
	"flashmc/internal/global"
)

// testProto is small enough to load quickly but exercises every
// checker and the inter-procedural lane pass.
const testProto = "bitvector"

func loadProto(t testing.TB, mutate func(files map[string]string)) (*flashgen.Protocol, *core.Program) {
	t.Helper()
	gen := flashgen.Generate(flashgen.Options{Seed: 1})
	p := gen.Protocol(testProto)
	if p == nil {
		t.Fatalf("protocol %s not generated", testProto)
	}
	if mutate != nil {
		mutate(p.Files)
	}
	prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ParseErrors) > 0 {
		t.Fatalf("parse errors: %v", prog.ParseErrors[0])
	}
	return p, prog
}

// render serializes reports the way cmd/mcheck prints them, for
// byte-level comparison.
func render(reports []engine.Report) []byte {
	rs := append([]engine.Report(nil), reports...)
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		return a.Pos.Line < b.Pos.Line
	})
	var buf bytes.Buffer
	for _, r := range rs {
		fmt.Fprintf(&buf, "%s: [%s] %s\n", r.Pos, r.SM, r.Msg)
	}
	return buf.Bytes()
}

func TestWarmColdByteIdentical(t *testing.T) {
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: d}

	p, prog := loadProto(t, nil)
	cold, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheMisses == 0 || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold stats: %+v", cold.Stats)
	}
	if len(cold.Reports) == 0 {
		t.Fatal("cold run found no reports; the corpus seeds defects")
	}

	// A separate parse of the same sources must hit on everything.
	p2, prog2 := loadProto(t, nil)
	warm, err := a.Check(Request{Prog: prog2, Spec: p2.Spec, Jobs: FlashJobs(p2.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed %d times (reanalyzed %v)", warm.Stats.CacheMisses, warm.Stats.Reanalyzed)
	}
	if len(warm.Stats.Reanalyzed) != 0 || warm.Stats.GlobalReruns != 0 {
		t.Fatalf("warm run recomputed: %+v", warm.Stats)
	}
	if !reflect.DeepEqual(cold.Reports, warm.Reports) {
		t.Fatal("warm reports differ structurally from cold reports")
	}
	if !bytes.Equal(render(cold.Reports), render(warm.Reports)) {
		t.Fatal("warm rendering differs from cold rendering")
	}
}

// TestPipelineMatchesDirectExecution pins the pipeline's report
// stream to what running every checker directly produces.
func TestPipelineMatchesDirectExecution(t *testing.T) {
	p, prog := loadProto(t, nil)
	a := &Analyzer{} // private in-memory depot
	got, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	var want []engine.Report
	for _, chk := range checkers.All() {
		want = append(want, chk.Check(prog, p.Spec)...)
	}
	if !bytes.Equal(render(got.Reports), render(want)) {
		t.Fatalf("pipeline reports differ from direct execution:\npipeline %d reports, direct %d",
			len(got.Reports), len(want))
	}
}

// mutateOneHandler appends an empty statement to a statement line
// inside one handler's body, preserving the file's line count so no
// other function's positions move. It returns the handler's name.
func mutateOneHandler(t *testing.T, p *flashgen.Protocol, prog *core.Program) string {
	t.Helper()
	handlers := append(append([]string{}, p.Spec.Hardware...), p.Spec.Software...)
	for _, h := range handlers {
		fn := prog.Fn(h)
		if fn == nil || fn.Body == nil || fn.EndPos.Line-fn.Pos().Line < 4 {
			continue
		}
		file := fn.Pos().File
		text, ok := p.Files[file]
		if !ok {
			continue
		}
		lines := strings.Split(text, "\n")
		// Strictly inside the body: after the signature line, before
		// the closing brace.
		for i := fn.Pos().Line; i < fn.EndPos.Line-1 && i < len(lines); i++ {
			trimmed := strings.TrimSpace(lines[i])
			if strings.HasSuffix(trimmed, ";") && !strings.Contains(trimmed, "for") &&
				!strings.HasPrefix(trimmed, "//") && !strings.HasPrefix(trimmed, "*") {
				lines[i] += " ;"
				p.Files[file] = strings.Join(lines, "\n")
				return h
			}
		}
	}
	t.Fatal("no mutatable handler found")
	return ""
}

func TestInvalidationIsCallGraphPrecise(t *testing.T) {
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: d}

	// Cold run over the pristine corpus.
	p, prog := loadProto(t, nil)
	cold, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}

	// Mutate one handler (same line count) and re-check warm.
	var mutated string
	p2, prog2 := loadProto(t, func(files map[string]string) {
		// Need a loaded pristine program to locate the handler; reuse
		// the one above (same seed, same layout).
		pp := &flashgen.Protocol{Files: files, Spec: p.Spec}
		mutated = mutateOneHandler(t, pp, prog)
	})
	warm, err := a.Check(Request{Prog: prog2, Spec: p2.Spec, Jobs: FlashJobs(p2.Spec)})
	if err != nil {
		t.Fatal(err)
	}

	// Expected re-analysis set: the mutated handler plus every
	// handler whose call graph reaches it.
	linked, _ := global.Link(checkers.Summarize(prog2))
	allowed := map[string]bool{mutated: true}
	for _, h := range append(append([]string{}, p2.Spec.Hardware...), p2.Spec.Software...) {
		if linked.Reachable([]string{h})[mutated] {
			allowed[h] = true
		}
	}
	for _, fn := range warm.Stats.Reanalyzed {
		if !allowed[fn] {
			t.Errorf("function %s re-analyzed but is not the mutation or a call-graph dependent", fn)
		}
	}
	found := false
	for _, fn := range warm.Stats.Reanalyzed {
		if fn == mutated {
			found = true
		}
	}
	if !found {
		t.Fatalf("mutated handler %s not re-analyzed (reanalyzed: %v)", mutated, warm.Stats.Reanalyzed)
	}
	// The acceptance bound: a single-handler edit re-analyzes < 10%
	// of functions.
	if frac := float64(len(warm.Stats.Reanalyzed)) / float64(warm.Stats.Functions); frac >= 0.10 {
		t.Errorf("edit re-analyzed %.1f%% of %d functions: %v",
			frac*100, warm.Stats.Functions, warm.Stats.Reanalyzed)
	}

	// Warm results on the mutated corpus must be byte-identical to a
	// from-scratch cold run on the same mutated corpus.
	fresh := &Analyzer{}
	coldMutated, err := fresh.Check(Request{Prog: prog2, Spec: p2.Spec, Jobs: FlashJobs(p2.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(warm.Reports), render(coldMutated.Reports)) {
		t.Fatal("incremental result differs from from-scratch result on mutated corpus")
	}
	// And the pristine cold run must still differ-or-match only via
	// the mutation (sanity: the mutation is semantically inert, so
	// reports should in fact be unchanged).
	if !bytes.Equal(render(cold.Reports), render(warm.Reports)) {
		t.Log("note: inert mutation changed reports (acceptable, but unexpected)")
	}
}

// TestVersionBumpMisses: bumping one checker's version invalidates
// exactly that checker's cached artifacts.
func TestVersionBumpMisses(t *testing.T) {
	d, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: d}
	p, prog := loadProto(t, nil)
	jobs := FlashJobs(p.Spec)
	if _, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: jobs}); err != nil {
		t.Fatal(err)
	}

	// Find an SM job and bump it.
	bumped := -1
	for i := range jobs {
		if jobs[i].SM != nil {
			jobs[i].Version = "99.0.0"
			bumped = i
			break
		}
	}
	if bumped < 0 {
		t.Fatal("no SM job")
	}
	res, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheMisses != res.Stats.Functions {
		t.Fatalf("version bump missed %d times, want one per function (%d)",
			res.Stats.CacheMisses, res.Stats.Functions)
	}
}

// TestCorpusSummariesMarshalDeterministic is the satellite golden
// check at corpus scale: generating and loading the corpus twice and
// marshaling the lane summaries must produce identical bytes, or
// depot content hashes would churn across runs.
func TestCorpusSummariesMarshalDeterministic(t *testing.T) {
	_, prog1 := loadProto(t, nil)
	_, prog2 := loadProto(t, nil)
	b1, err := global.Marshal(checkers.Summarize(prog1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := global.Marshal(checkers.Summarize(prog2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("summary marshal differs across identical corpus loads")
	}
	l1, _ := global.Link(checkers.Summarize(prog1))
	l2, _ := global.Link(checkers.Summarize(prog2))
	pb1, err := l1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pb2, err := l2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb1, pb2) {
		t.Fatal("linked program marshal differs across identical corpus loads")
	}
}

// TestFingerprintSensitivity: a one-character edit inside a function
// changes that function's fingerprint and nothing else's.
func TestFingerprintSensitivity(t *testing.T) {
	_, prog := loadProto(t, nil)
	before := Fingerprints(prog)

	p2, prog2 := loadProto(t, nil)
	var mutated string
	pp := &flashgen.Protocol{Files: p2.Files, Spec: p2.Spec}
	mutated = mutateOneHandler(t, pp, prog2)
	_, prog3 := loadProtoFromFiles(t, p2)
	after := Fingerprints(prog3)

	if len(before) != len(after) {
		t.Fatalf("function count changed: %d vs %d", len(before), len(after))
	}
	changed := 0
	for i := range before {
		if before[i] != after[i] {
			changed++
			if prog.Fns[i].Name != mutated {
				t.Errorf("unmutated function %s changed fingerprint", prog.Fns[i].Name)
			}
		}
	}
	if changed != 1 {
		t.Errorf("%d fingerprints changed, want 1", changed)
	}
}

func loadProtoFromFiles(t *testing.T, p *flashgen.Protocol) (*flashgen.Protocol, *core.Program) {
	t.Helper()
	prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ParseErrors) > 0 {
		t.Fatalf("parse errors: %v", prog.ParseErrors[0])
	}
	return p, prog
}
