package sched

// The run ledger: a persistent, append-only record of every check
// run, stored in the depot under runs/v1. Tables 2–7 of the paper are
// snapshots of a run's report stream; the ledger keeps those
// snapshots so any two runs can be compared after the fact — which
// reports appeared, which disappeared (with their witness traces),
// and how the cache and the clock behaved. mcheck -runs/-diff read it
// offline; mcheckd serves it at /debug/runs.
//
// Entries are ordinary depot artifacts (Key{Kind: "runs/v1", Source:
// <run id>}) plus a small index artifact listing the ids in append
// order. The index is read-modify-written under a process-wide mutex,
// so two *processes* appending concurrently can still lose an index
// slot (the entry itself survives and stays addressable by id) — the
// alternative is a lock file the depot deliberately avoids. ListRuns
// therefore treats the index as a hint, not the truth: it merges the
// index with a scan of the stored entries, so an orphaned entry is
// relisted instead of silently vanishing from every listing and diff.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flashmc/internal/cover"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
)

// runsKind is the artifact kind of ledger entries and their index.
const runsKind = "runs/v1"

// runIndexSource is the reserved Source of the index artifact.
const runIndexSource = "index"

// RunEntry is one check run's ledger record.
type RunEntry struct {
	// ID names the run; assigned by AppendRun (time-ordered prefix +
	// content suffix, so listings sort chronologically).
	ID string `json:"id"`
	// Unix is the run's completion time (seconds since epoch).
	Unix int64 `json:"unix"`
	// Producer is who ran the check: "pid:<n>" or a daemon address.
	Producer string `json:"producer,omitempty"`
	// TraceID is the request's trace identity, when traced.
	TraceID string `json:"trace_id,omitempty"`
	// RequestFP fingerprints the request: the program fingerprint and
	// every job's name/version/options. Two runs with equal
	// RequestFP analyzed the same inputs with the same checkers.
	RequestFP string `json:"request_fp"`
	// ProgramFP is the analyzed program's fingerprint.
	ProgramFP string `json:"program_fp"`
	// ReportHash is the hash of the marshaled report stream; equal
	// hashes mean byte-identical reports.
	ReportHash string `json:"report_hash"`
	// Reports is the full ranked report stream, kept so a diff can
	// print appeared/disappeared reports with their witness traces.
	Reports []engine.Report `json:"reports"`

	Functions int `json:"functions"`
	Tasks     int `json:"tasks"`
	// ElapsedUS/TaskUS are the run's wall time and summed task time.
	ElapsedUS int64 `json:"elapsed_us"`
	TaskUS    int64 `json:"task_us"`
	// TaskP50US/P95/P99 are per-task wall-time quantiles.
	TaskP50US int64 `json:"task_p50_us"`
	TaskP95US int64 `json:"task_p95_us"`
	TaskP99US int64 `json:"task_p99_us"`
	// Hits/Misses and Decisions are the cache breakdown (Decisions
	// keys are the Decision* reasons).
	Hits      int            `json:"hits"`
	Misses    int            `json:"misses"`
	Decisions map[string]int `json:"decisions,omitempty"`
	// Coverage is the run's per-checker coverage snapshot, when
	// coverage collection was on.
	Coverage *cover.Artifact `json:"coverage,omitempty"`
}

// DecisionLine renders the entry's cache breakdown in a fixed,
// greppable order: "hit=H new=N vb=V oc=O dep=D ev=E rem=R".
func (e *RunEntry) DecisionLine() string {
	short := map[string]string{
		DecisionHit: "hit", DecisionNew: "new", DecisionVersionBump: "vb",
		DecisionOptionsChanged: "oc", DecisionDepInvalidated: "dep", DecisionEvicted: "ev",
		DecisionRemote: "rem",
	}
	parts := make([]string, 0, len(DecisionReasons))
	for _, r := range DecisionReasons {
		parts = append(parts, fmt.Sprintf("%s=%d", short[r], e.Decisions[r]))
	}
	return strings.Join(parts, " ")
}

// NewRunEntry builds a ledger entry from one Check call's request and
// result (cov may be nil). The ID is left empty; AppendRun assigns it.
func NewRunEntry(req *Request, res *Result, cov *cover.Set) *RunEntry {
	jobParts := []string{req.ProgramFP}
	for _, j := range req.Jobs {
		jobParts = append(jobParts, j.Name, j.Version, j.Options)
	}
	raw, _ := json.Marshal(res.Reports)
	h := sha256.Sum256(raw)
	e := &RunEntry{
		Unix:       time.Now().Unix(),
		Producer:   localProducer,
		TraceID:    req.TraceID,
		RequestFP:  hashStrings(jobParts...),
		ProgramFP:  req.ProgramFP,
		ReportHash: hex.EncodeToString(h[:]),
		Reports:    res.Reports,
		Functions:  res.Stats.Functions,
		Tasks:      res.Stats.Tasks,
		ElapsedUS:  res.Stats.Elapsed.Microseconds(),
		TaskUS:     res.Stats.TaskTime.Microseconds(),
		Hits:       res.Stats.CacheHits,
		Misses:     res.Stats.CacheMisses,
		Decisions:  res.Stats.Decisions,
	}
	if n := len(res.Stats.TaskDurations); n > 0 {
		durs := make([]time.Duration, n)
		copy(durs, res.Stats.TaskDurations)
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		q := func(p float64) int64 {
			i := int(p * float64(n-1))
			return durs[i].Microseconds()
		}
		e.TaskP50US, e.TaskP95US, e.TaskP99US = q(0.50), q(0.95), q(0.99)
	}
	if cov != nil {
		e.Coverage = cov.Snapshot()
	}
	return e
}

// ledgerMu serializes index read-modify-write within this process.
var ledgerMu sync.Mutex

func runKey(id string) depot.Key { return depot.Key{Kind: runsKind, Source: id} }

// AppendRun assigns e an ID (if empty), stores the entry, and appends
// its id to the ledger index.
func AppendRun(d *depot.Depot, e *RunEntry) error {
	if e.ID == "" {
		suffix := hashStrings(e.RequestFP, e.ReportHash, localProducer,
			fmt.Sprintf("%d-%d", e.Unix, time.Now().UnixNano()))
		e.ID = fmt.Sprintf("%s-%s", time.Unix(e.Unix, 0).UTC().Format("20060102T150405Z"), suffix[:12])
	}
	ledgerMu.Lock()
	defer ledgerMu.Unlock()
	if err := d.PutJSON(runKey(e.ID), e); err != nil {
		return err
	}
	var ids []string
	d.GetJSON(runKey(runIndexSource), &ids)
	ids = append(ids, e.ID)
	return d.PutJSON(runKey(runIndexSource), ids)
}

// ListRuns returns the ledger's run ids. The index supplies the fast
// path and fixes append order; it is merged with a scan of the stored
// runs/v1 entries so an entry whose index slot was lost to a
// cross-process append race (see the package comment) is still
// listed. With no orphans the index order is returned untouched;
// otherwise the union is sorted by id, which AppendRun makes
// chronological by construction (ids are prefixed with the UTC
// completion time).
func ListRuns(d *depot.Depot) []string {
	var ids []string
	d.GetJSON(runKey(runIndexSource), &ids)
	indexed := make(map[string]bool, len(ids))
	for _, id := range ids {
		indexed[id] = true
	}
	orphans := false
	for _, fid := range d.IDs() {
		raw, ok := d.GetByID(fid)
		if !ok || !bytes.Contains(raw, []byte(`"report_hash"`)) {
			continue
		}
		var e struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(raw, &e) != nil || e.ID == "" || indexed[e.ID] {
			continue
		}
		// A ledger entry is stored under the address of its own id; any
		// other payload that mentions report_hash is not one.
		if runKey(e.ID).ID() != fid {
			continue
		}
		ids = append(ids, e.ID)
		indexed[e.ID] = true
		orphans = true
	}
	if orphans {
		sort.Strings(ids)
	}
	return ids
}

// GetRun loads one ledger entry by id.
func GetRun(d *depot.Depot, id string) (*RunEntry, bool) {
	var e RunEntry
	if !d.GetJSON(runKey(id), &e) {
		return nil, false
	}
	return &e, true
}

// RunDiff is the comparison of two ledger entries: the report-stream
// delta plus perf deltas. Empty Appeared+Disappeared with equal
// report hashes means the runs printed byte-identical reports.
type RunDiff struct {
	A string `json:"a"`
	B string `json:"b"`
	// SameRequest is true when both runs analyzed the same inputs
	// with the same checkers (equal RequestFP).
	SameRequest bool `json:"same_request"`
	// Identical is true when the report streams hash equal.
	Identical bool `json:"identical"`
	// Appeared are reports in B but not A; Disappeared the reverse.
	Appeared    []engine.Report `json:"appeared,omitempty"`
	Disappeared []engine.Report `json:"disappeared,omitempty"`
	// Deltas (B minus A).
	ElapsedDeltaUS int64 `json:"elapsed_delta_us"`
	TaskDeltaUS    int64 `json:"task_delta_us"`
	HitDelta       int   `json:"hit_delta"`
	MissDelta      int   `json:"miss_delta"`
}

// reportKey identifies a report across runs: checker, rule, position
// and message (witness traces excluded — a report whose path changed
// but whose finding did not is the same report).
func reportKey(r engine.Report) string {
	return hashStrings(r.SM, r.Rule, r.Fn, r.Pos.String(), r.State, r.Msg)
}

// DiffRuns compares two ledger entries.
func DiffRuns(a, b *RunEntry) *RunDiff {
	diff := &RunDiff{
		A: a.ID, B: b.ID,
		SameRequest:    a.RequestFP == b.RequestFP,
		Identical:      a.ReportHash == b.ReportHash,
		ElapsedDeltaUS: b.ElapsedUS - a.ElapsedUS,
		TaskDeltaUS:    b.TaskUS - a.TaskUS,
		HitDelta:       b.Hits - a.Hits,
		MissDelta:      b.Misses - a.Misses,
	}
	inA := map[string]int{}
	for _, r := range a.Reports {
		inA[reportKey(r)]++
	}
	inB := map[string]int{}
	for _, r := range b.Reports {
		inB[reportKey(r)]++
	}
	for _, r := range b.Reports {
		k := reportKey(r)
		if inB[k] > inA[k] {
			diff.Appeared = append(diff.Appeared, r)
			inB[k]--
		}
	}
	for _, r := range a.Reports {
		k := reportKey(r)
		if inA[k] > inB[k] {
			diff.Disappeared = append(diff.Disappeared, r)
			inA[k]--
		}
	}
	return diff
}
