package sched

import (
	"flashmc/internal/cc/token"
	"flashmc/internal/core"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/lint"
	"flashmc/internal/obs"
)

// triageKind versions the depot's triage-verdict artifact format.
// Bumping it retires every cached verdict at once; per-algorithm
// invalidation goes through lint.TriageVersion instead.
const triageKind = "triage/v1"

var (
	mTriageHits = obs.NewCounter("sched_triage_cache_hits_total",
		"triage verdict groups served from the depot")
	mTriageMisses = obs.NewCounter("sched_triage_cache_misses_total",
		"triage verdict groups recomputed (path replay + symbolic evaluation)")
)

// triageVerdict is one cached report ranking. The identity fields
// restate the report the verdict was computed for, so a warm join can
// prove it is applying verdicts to the same report stream before
// trusting them.
type triageVerdict struct {
	Rule       string          `json:"rule,omitempty"`
	Fn         string          `json:"fn,omitempty"`
	Pos        token.Pos       `json:"pos"`
	Msg        string          `json:"msg"`
	Confidence lint.Confidence `json:"confidence"`
	Reason     string          `json:"reason"`
}

// triageArtifact is the depot payload for one checker's verdicts over
// one program under one options fingerprint.
type triageArtifact struct {
	Verdicts []triageVerdict `json:"verdicts"`
}

// TriageRequest asks for a ranked report stream.
type TriageRequest struct {
	Prog *core.Program
	// ProgramFP, when set, must equal ProgramFingerprint of Prog (a
	// ProgramCache hit supplies it); left empty, it is computed.
	ProgramFP string
	// SMs maps Report.SM names to the machines that produced them.
	// Reports whose machine is absent pass through certain (global
	// passes have no per-path replay to triage).
	SMs map[string]*engine.SM
	// Versions maps Report.SM names to the producing checker's
	// semantic version for cache keying; an absent entry keys on the
	// empty version.
	Versions map[string]string
	// Reports is the combined stream, in assembly order.
	Reports []engine.Report
	Options lint.TriageOptions
}

// TriageStats counts one call's depot traffic, one lookup per
// checker group.
type TriageStats struct {
	CacheHits, CacheMisses int
}

// TriageReports ranks a report stream with lint's path-feasibility
// triage, caching verdicts in the depot keyed by program fingerprint
// × checker × triage version × options fingerprint. A warm call skips
// path enumeration and symbolic replay entirely. Reports keep
// first-appearance checker order and, within a checker, input order,
// so warm and cold runs assemble identical streams.
func (a *Analyzer) TriageReports(req TriageRequest) ([]lint.RankedReport, TriageStats) {
	return a.triageReports(req, lint.TriageVersion)
}

// triageReports is TriageReports with the algorithm version as an
// input, so tests can prove a version bump recomputes verdicts.
func (a *Analyzer) triageReports(req TriageRequest, version string) ([]lint.RankedReport, TriageStats) {
	d := a.Depot
	if d == nil {
		d, _ = depot.Open("")
	}
	progFP := req.ProgramFP
	if progFP == "" {
		progFP = ProgramFingerprint(req.Prog, Fingerprints(req.Prog))
	}

	// Group by checker in first-appearance order: TriageProgram sees
	// each machine's reports together, and the order is a pure
	// function of the input stream (no map iteration).
	var order []string
	byChecker := map[string][]engine.Report{}
	for _, r := range req.Reports {
		if _, ok := byChecker[r.SM]; !ok {
			order = append(order, r.SM)
		}
		byChecker[r.SM] = append(byChecker[r.SM], r)
	}

	out := make([]lint.RankedReport, 0, len(req.Reports))
	var st TriageStats
	for _, name := range order {
		group := byChecker[name]
		sm := req.SMs[name]
		if sm == nil {
			out = append(out, lint.PassThrough(group, lint.ReasonGlobalPass)...)
			continue
		}
		key := depot.Key{Kind: triageKind, Source: progFP, Checker: name,
			Version: hashStrings(req.Versions[name], version),
			Options: req.Options.Fingerprint()}
		var art triageArtifact
		if d.GetJSON(key, &art) && verdictsMatch(art.Verdicts, group) {
			st.CacheHits++
			mTriageHits.Inc()
			for i, r := range group {
				out = append(out, lint.RankedReport{Report: r,
					Confidence: art.Verdicts[i].Confidence,
					Reason:     art.Verdicts[i].Reason})
			}
			continue
		}
		st.CacheMisses++
		mTriageMisses.Inc()
		ranked := lint.TriageProgram(req.Prog, sm, group, req.Options)
		art.Verdicts = art.Verdicts[:0]
		for _, rr := range ranked {
			art.Verdicts = append(art.Verdicts, triageVerdict{Rule: rr.Rule,
				Fn: rr.Fn, Pos: rr.Pos, Msg: rr.Msg,
				Confidence: rr.Confidence, Reason: rr.Reason})
		}
		// A failed cache write costs the next run a recompute, nothing
		// more; the verdicts themselves are already in hand.
		_ = d.PutJSON(key, art)
		out = append(out, ranked...)
	}
	return out, st
}

// verdictsMatch proves a cached artifact describes exactly this
// report group (defense against key collisions and stale layouts):
// same length, same report identity at every index.
func verdictsMatch(vs []triageVerdict, group []engine.Report) bool {
	if len(vs) != len(group) {
		return false
	}
	for i, r := range group {
		v := vs[i]
		if v.Rule != r.Rule || v.Fn != r.Fn || v.Pos != r.Pos || v.Msg != r.Msg {
			return false
		}
	}
	return true
}
