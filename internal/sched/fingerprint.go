package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"

	"flashmc/internal/cc/ast"
	"flashmc/internal/cc/types"
	"flashmc/internal/core"
)

// FnFingerprint content-addresses one function definition for the
// depot. It hashes the parsed AST — every node's kind, position, leaf
// payload (identifier names, literal texts, operators, declared and
// computed types) — so it covers exactly what the checkers can
// observe:
//
//   - any textual edit to the function changes tokens or positions;
//   - a macro change in a shared header changes the expansion, hence
//     the AST;
//   - a line shift from an edit earlier in the file changes node
//     positions, which matter because reports carry them;
//   - a type change in another translation unit (protocol builds
//     share globals) changes the computed expression types.
//
// Functions elsewhere in the file that the edit does not move are
// untouched, which is what makes per-function invalidation precise.
func FnFingerprint(fn *ast.FuncDecl) string {
	h := sha256.New()
	hashNode(h, fn)
	return hex.EncodeToString(h.Sum(nil))
}

func hashType(h hash.Hash, t types.Type) {
	if t != nil {
		io.WriteString(h, t.String())
	}
	io.WriteString(h, ";")
}

func hashNode(h hash.Hash, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		p := n.Pos()
		fmt.Fprintf(h, "%T@%s:%d:%d|", n, p.File, p.Line, p.Col)
		switch x := n.(type) {
		case *ast.Ident:
			io.WriteString(h, x.Name)
		case *ast.IntLit:
			io.WriteString(h, x.Text)
		case *ast.FloatLit:
			io.WriteString(h, x.Text)
		case *ast.CharLit:
			io.WriteString(h, x.Text)
		case *ast.StringLit:
			io.WriteString(h, x.Text)
		case *ast.Unary:
			fmt.Fprintf(h, "%s%v", x.Op, x.Postfix)
		case *ast.Binary:
			io.WriteString(h, x.Op.String())
		case *ast.Assign:
			io.WriteString(h, x.Op.String())
		case *ast.Member:
			fmt.Fprintf(h, "%s%v", x.Name, x.Arrow)
		case *ast.Cast:
			hashType(h, x.To)
		case *ast.SizeofType:
			hashType(h, x.Of)
		case *ast.VarDecl:
			fmt.Fprintf(h, "%s%d%v", x.Name, x.Storage, x.Const)
			hashType(h, x.T)
		case *ast.FuncDecl:
			fmt.Fprintf(h, "%s%v%d%v@%d", x.Name, x.Variadic, x.Storage, x.Inline, x.EndPos.Line)
			hashType(h, x.Ret)
			for _, prm := range x.Params {
				io.WriteString(h, prm.Name)
				hashType(h, prm.T)
			}
		}
		if e, ok := n.(ast.Expr); ok {
			hashType(h, e.Type())
		}
		io.WriteString(h, "\x00")
		return true
	})
}

// ProgramFingerprint content-addresses a whole loaded program: the
// ordered set of function fingerprints. Whole-program passes (exec
// restrictions, no-float, and the linked lane program) key on it.
// fps must be parallel to p.Fns (see Fingerprints).
func ProgramFingerprint(p *core.Program, fps []string) string {
	h := sha256.New()
	for i, fn := range p.Fns {
		io.WriteString(h, fn.Name)
		io.WriteString(h, "\x00")
		io.WriteString(h, fps[i])
		io.WriteString(h, "\x00")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprints computes every function's fingerprint, parallel to
// p.Fns.
func Fingerprints(p *core.Program) []string {
	out := make([]string, len(p.Fns))
	for i, fn := range p.Fns {
		out[i] = FnFingerprint(fn)
	}
	return out
}

// reachFingerprint content-addresses the inputs of one handler's
// inter-procedural lane pass: the fingerprints of every function its
// call graph can reach (itself included). Editing any function in
// that cone changes the address; editing anything outside it does
// not — this is the call-graph-precise invalidation rule.
func reachFingerprint(handler string, reach map[string]bool, fpByFn map[string]string) string {
	fns := make([]string, 0, len(reach))
	for fn := range reach {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	h := sha256.New()
	io.WriteString(h, handler)
	io.WriteString(h, "\x00")
	for _, fn := range fns {
		io.WriteString(h, fn)
		io.WriteString(h, "\x00")
		io.WriteString(h, fpByFn[fn])
		io.WriteString(h, "\x00")
	}
	return hex.EncodeToString(h.Sum(nil))
}
