package sched

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/core"
	"flashmc/internal/depot"
	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
	"flashmc/internal/fleet"
	"flashmc/internal/obs"
)

// execRemote runs descriptors straight through a worker Executor —
// the fleet path minus HTTP, so remote-vs-local comparisons isolate
// the serialize/recompute/cross-check logic.
type execRemote struct{ ex *Executor }

func (r execRemote) Do(ctx context.Context, d *fleet.Descriptor, tr *obs.Tracer) ([]byte, error) {
	return r.ex.Execute(ctx, d, tr)
}

// corruptRemote answers every task with bytes no artifact decoder
// accepts, forcing the local-fallback path.
type corruptRemote struct{}

func (corruptRemote) Do(ctx context.Context, d *fleet.Descriptor, tr *obs.Tracer) ([]byte, error) {
	return []byte("}} definitely not an artifact {{"), nil
}

// loadRemoteProto loads the test protocol through the exact frontend
// stack workers use (map source layered over the flash header), so
// dispatcher- and worker-side fingerprints must agree.
func loadRemoteProto(t testing.TB) (files map[string]string, roots []string, prog *core.Program) {
	t.Helper()
	gen := flashgen.Generate(flashgen.Options{Seed: 1})
	p := gen.Protocol(testProto)
	if p == nil {
		t.Fatalf("protocol %s not generated", testProto)
	}
	files = p.Files
	roots = append([]string(nil), p.RootFiles...)
	prog, err := core.Load(p.Name, cpp.Layered(cpp.MapSource(files), flash.HeaderSource()), roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ParseErrors) > 0 {
		t.Fatalf("parse errors: %v", prog.ParseErrors[0])
	}
	return files, roots, prog
}

// checkRemote runs one fleet-dispatched Check over a fresh shared
// depot and returns the rendered reports.
func checkRemote(t *testing.T, r Remote, files map[string]string, roots []string, prog *core.Program, spec *flash.Spec) []byte {
	t.Helper()
	shared, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srcHash := SourceHash(files, roots)
	if err := PutBundle(shared, srcHash, files, roots, spec); err != nil {
		t.Fatal(err)
	}
	if r == nil {
		r = execRemote{NewExecutor(shared)}
	}
	a := &Analyzer{Depot: shared, Workers: 4, Remote: r}
	res, err := a.Check(Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec), SrcHash: srcHash})
	if err != nil {
		t.Fatal(err)
	}
	return render(res.Reports)
}

// TestRemoteCheckMatchesLocal is the core fleet guarantee: a Check
// whose cache misses all execute on a remote worker produces the
// byte-identical report stream a purely local run does — and not via
// fallback: every task's cross-checks must pass on the worker.
func TestRemoteCheckMatchesLocal(t *testing.T) {
	files, roots, prog := loadRemoteProto(t)
	spec := ConventionSpec(prog)

	localDepot, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	la := &Analyzer{Depot: localDepot, Workers: 4}
	localRes, err := la.Check(Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec)})
	if err != nil {
		t.Fatal(err)
	}
	local := render(localRes.Reports)
	if len(localRes.Reports) == 0 {
		t.Fatal("protocol produced no reports; comparison is vacuous")
	}

	fallbackBefore := obs.Default.Snapshot()["fleet_tasks_fallback_total"]
	remote := checkRemote(t, nil, files, roots, prog, spec)
	if !bytes.Equal(local, remote) {
		t.Fatalf("remote reports differ from local:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
	if d := obs.Default.Snapshot()["fleet_tasks_fallback_total"] - fallbackBefore; d != 0 {
		t.Fatalf("%v tasks fell back to local execution; a clean fleet run must dispatch everything", d)
	}
}

// TestRemoteWarmCheck: after a remote cold run, a second Check over
// the same shared depot is served from cache, byte-identically.
func TestRemoteWarmCheck(t *testing.T) {
	files, roots, prog := loadRemoteProto(t)
	spec := ConventionSpec(prog)
	shared, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srcHash := SourceHash(files, roots)
	if err := PutBundle(shared, srcHash, files, roots, spec); err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: shared, Workers: 4, Remote: execRemote{NewExecutor(shared)}}
	req := Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec), SrcHash: srcHash}
	cold, err := a.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := a.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(cold.Reports), render(warm.Reports)) {
		t.Fatal("warm reports differ from cold")
	}
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed the cache %d times (workers did not populate the shared depot)", warm.Stats.CacheMisses)
	}
}

// TestRemoteCorruptFallsBack: a fleet that answers garbage degrades
// to local execution with identical reports — never worse than -j N.
func TestRemoteCorruptFallsBack(t *testing.T) {
	files, roots, prog := loadRemoteProto(t)
	spec := ConventionSpec(prog)

	localDepot, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	la := &Analyzer{Depot: localDepot, Workers: 4}
	localRes, err := la.Check(Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec)})
	if err != nil {
		t.Fatal(err)
	}

	fallbackBefore := obs.Default.Snapshot()["fleet_tasks_fallback_total"]
	remote := checkRemote(t, corruptRemote{}, files, roots, prog, spec)
	if !bytes.Equal(render(localRes.Reports), remote) {
		t.Fatal("fallback reports differ from local")
	}
	if d := obs.Default.Snapshot()["fleet_tasks_fallback_total"] - fallbackBefore; d == 0 {
		t.Fatal("fallback counter unchanged; the corrupt remote was never consulted")
	}
}

// twoWorkerRemote alternates descriptors across two worker Executors
// sharing one depot — the smallest pipeline whose work provably ran
// on more than one worker.
type twoWorkerRemote struct {
	mu      sync.Mutex
	n       int
	workers [2]*Executor
	served  [2]int
}

func (r *twoWorkerRemote) Do(ctx context.Context, d *fleet.Descriptor, tr *obs.Tracer) ([]byte, error) {
	r.mu.Lock()
	w := r.n % 2
	r.n++
	r.served[w]++
	r.mu.Unlock()
	return r.workers[w].Execute(ctx, d, tr)
}

// TestRemoteDecisionAttribution: a cold fleet run whose misses all
// execute on workers must count every one of them under the explicit
// "remote" reason — before the fix the leader counted its local
// best-effort classification ("new", "evicted", ...) even though the
// recompute never ran there, so sched_cache_decisions_total lied
// about where work happened.
func TestRemoteDecisionAttribution(t *testing.T) {
	files, roots, prog := loadRemoteProto(t)
	spec := ConventionSpec(prog)
	shared, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srcHash := SourceHash(files, roots)
	if err := PutBundle(shared, srcHash, files, roots, spec); err != nil {
		t.Fatal(err)
	}
	rem := &twoWorkerRemote{workers: [2]*Executor{NewExecutor(shared), NewExecutor(shared)}}
	a := &Analyzer{Depot: shared, Workers: 4, Remote: rem}
	res, err := a.Check(Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec), SrcHash: srcHash})
	if err != nil {
		t.Fatal(err)
	}
	if rem.served[0] == 0 || rem.served[1] == 0 {
		t.Fatalf("not a two-worker run: served %v", rem.served)
	}
	dec := res.Stats.Decisions
	if res.Stats.CacheMisses == 0 {
		t.Fatal("cold run missed nothing; attribution is vacuous")
	}
	if dec[DecisionRemote] != res.Stats.CacheMisses {
		t.Fatalf("remote decisions %d != misses %d (breakdown %v)", dec[DecisionRemote], res.Stats.CacheMisses, dec)
	}
	for _, r := range DecisionReasons {
		if r == DecisionHit || r == DecisionRemote {
			continue
		}
		if dec[r] != 0 {
			t.Fatalf("local reason %q counted %d times on an all-remote run (breakdown %v)", r, dec[r], dec)
		}
	}
	total := 0
	for _, n := range dec {
		total += n
	}
	if total != res.Stats.CacheHits+res.Stats.CacheMisses {
		t.Fatalf("decisions sum %d != hits %d + misses %d", total, res.Stats.CacheHits, res.Stats.CacheMisses)
	}
	// The run's artifact refs agree: a ref either replays a cached
	// artifact or names the worker-computed one.
	for _, ref := range res.Artifacts {
		if ref.Decision != DecisionHit && ref.Decision != DecisionRemote {
			t.Fatalf("artifact %s carries local decision %q on an all-remote run", ref.Task, ref.Decision)
		}
	}
}

// TestExecutorRejectsSkew: every identity cross-check failure is a
// terminal fleet.ErrReject (version skew retried on a same-version
// worker would fail identically), while a missing bundle is transient.
func TestExecutorRejectsSkew(t *testing.T) {
	files, roots, prog := loadRemoteProto(t)
	spec := ConventionSpec(prog)
	shared, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srcHash := SourceHash(files, roots)
	specOpt := SpecHash(spec)
	if err := PutBundle(shared, srcHash, files, roots, spec); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(shared)
	lanesVersion := registryChecker("lanes").Version()

	base := func(kind string) *fleet.Descriptor {
		return &fleet.Descriptor{
			Format: fleet.DescFormat, Kind: kind,
			SrcHash: srcHash, SpecOpt: specOpt,
		}
	}

	// Missing bundle: transient (the depot may not have synced yet) —
	// anything but a reject, so the dispatcher retries elsewhere.
	d := base(fleet.KindGlobal)
	d.SrcHash = "0000000000000000"
	d.Checker, d.CheckerVersion = "lanes", lanesVersion
	d.Output = depot.Key{Kind: "reports/v3", Source: "x", Checker: "lanes", Version: lanesVersion, Options: specOpt}
	if _, err := ex.Execute(context.Background(), d, nil); err == nil || errors.Is(err, fleet.ErrReject) {
		t.Fatalf("missing bundle: err = %v, want transient non-reject", err)
	}

	// Wrong function name for the index: the worker's parse disagrees
	// with the descriptor — reject.
	d = base(fleet.KindSummary)
	d.Checker, d.CheckerVersion = "lanes", lanesVersion
	d.FnIndex, d.Fn = 0, "no_such_function"
	d.Output = depot.Key{Kind: "summary", Source: "x", Checker: "lanes", Version: lanesVersion, Options: specOpt}
	if _, err := ex.Execute(context.Background(), d, nil); !errors.Is(err, fleet.ErrReject) {
		t.Fatalf("wrong fn name: err = %v, want ErrReject", err)
	}

	// Checker version skew on a lane task — reject.
	d = base(fleet.KindLanes)
	d.Checker, d.CheckerVersion = "lanes", "v0-ancient"
	d.Handler = prog.Fns[0].Name
	d.Output = depot.Key{Kind: "lanes", Source: "x", Checker: "lanes", Version: "v0-ancient", Options: specOpt}
	if _, err := ex.Execute(context.Background(), d, nil); !errors.Is(err, fleet.ErrReject) {
		t.Fatalf("version skew: err = %v, want ErrReject", err)
	}

	// Unknown whole-program checker — reject.
	d = base(fleet.KindGlobal)
	d.Checker, d.CheckerVersion = "no_such_checker", "v1"
	d.Output = depot.Key{Kind: "reports/v3", Source: "x", Checker: "no_such_checker", Version: "v1", Options: specOpt}
	if _, err := ex.Execute(context.Background(), d, nil); !errors.Is(err, fleet.ErrReject) {
		t.Fatalf("unknown checker: err = %v, want ErrReject", err)
	}

	// A bundle whose spec hash does not match the descriptor's — the
	// depot the worker sees diverged from the dispatcher's — reject.
	if err := shared.PutJSON(fleet.BundleKey(srcHash, "bogus-spec"), fleet.Bundle{Files: files, Roots: roots, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	d = base(fleet.KindGlobal)
	d.SpecOpt = "bogus-spec"
	d.Checker, d.CheckerVersion = "lanes", lanesVersion
	d.Output = depot.Key{Kind: "reports/v3", Source: "x", Checker: "lanes", Version: lanesVersion, Options: "bogus-spec"}
	if _, err := ex.Execute(context.Background(), d, nil); !errors.Is(err, fleet.ErrReject) {
		t.Fatalf("spec hash mismatch: err = %v, want ErrReject", err)
	}
}
