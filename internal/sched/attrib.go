package sched

// Cache-decision attribution. Counting hits and misses (PR 2) says
// *how much* was recomputed; it cannot say *why*. This file
// classifies every depot lookup the pipeline makes into one of six
// reasons, so "the checker version bumped" and "the cache evicted it"
// stop looking identical in a run's stats — the distinction the
// ROADMAP's warm-cache-across-checker-upgrades item turns on.
//
// Classification works from a tiny per-task marker artifact
// (tasklast/v1) recording the key the task last computed under.
// Markers are written only when a task actually recomputes, so a
// fully-warm run writes nothing and the warm==cold byte-identity
// gates are untouched. On a miss the old marker (if any) is compared
// field-by-field against the new key:
//
//	no marker                → "new"            (never computed here)
//	same key id              → "evicted"        (was cached, GC took it)
//	version differs          → "checker-version-bump"
//	options differ           → "options-changed"
//	source differs           → "dep-invalidated" (the code changed)
//
// Markers are keyed by stable task identity (checker × "sm:<fn>" /
// "sum:<fn>" / "lanes:<handler>" / "glob"), not by content, so they
// survive exactly the input changes they exist to attribute. In a
// depot shared across different programs the identities can collide,
// so attribution is best-effort there — counts, not invariants.
//
// The decision is counted only once a task's resolution is known
// (runState.countDecision): a hit counts as "hit", a local recompute
// counts under its classified miss reason, and a miss whose artifact a
// fleet worker computed counts under the explicit "remote" reason —
// the leader never guesses which local reason a worker's recompute
// would have had, so sched_cache_decisions_total never lies about
// where work ran.

import (
	"fmt"
	"os"
	"sort"

	"flashmc/internal/depot"
	"flashmc/internal/obs"
)

// Cache-decision reasons, exported as sched_cache_decisions_total
// label values and ledger keys.
const (
	DecisionHit            = "hit"
	DecisionNew            = "new"
	DecisionVersionBump    = "checker-version-bump"
	DecisionOptionsChanged = "options-changed"
	DecisionDepInvalidated = "dep-invalidated"
	DecisionEvicted        = "evicted"
	// DecisionRemote marks a cache miss whose artifact was computed by
	// a fleet worker. The classified local reason is discarded on the
	// leader: the work did not run here, and pretending it did would
	// misattribute every fleet recompute.
	DecisionRemote = "remote"
)

// DecisionReasons lists every reason in display order (ledger lines,
// diff output).
var DecisionReasons = []string{
	DecisionHit, DecisionNew, DecisionVersionBump,
	DecisionOptionsChanged, DecisionDepInvalidated, DecisionEvicted,
	DecisionRemote,
}

var decisionCounts = obs.NewCounterVec("sched_cache_decisions_total",
	"scheduler cache decisions by reason", "reason")

// taskLastKind is the artifact kind of per-task recomputation markers.
const taskLastKind = "tasklast/v1"

// taskMarker records the key a task last recomputed under.
type taskMarker struct {
	Source  string `json:"source"`
	Version string `json:"version"`
	Options string `json:"options"`
	KeyID   string `json:"key_id"`
}

// markerKey addresses a task's marker by its stable identity: the
// checker and a task name that survives input changes.
func markerKey(checker, identity string) depot.Key {
	return depot.Key{Kind: taskLastKind, Checker: checker, Options: identity}
}

// classifyMiss attributes one cache miss for the task identified by
// (checker, identity) about to recompute under key.
func classifyMiss(d *depot.Depot, checker, identity string, key depot.Key) string {
	var m taskMarker
	if !d.GetJSON(markerKey(checker, identity), &m) {
		return DecisionNew
	}
	switch {
	case m.KeyID == key.ID():
		return DecisionEvicted
	case m.Version != key.Version:
		return DecisionVersionBump
	case m.Options != key.Options:
		return DecisionOptionsChanged
	case m.Source != key.Source:
		return DecisionDepInvalidated
	}
	// Same identity, same key fields, different id cannot happen (the
	// id is a pure function of the fields); evicted is the safe read.
	return DecisionEvicted
}

// writeMarker records that the task is recomputing under key, so the
// next run's miss (if any) can be attributed.
func writeMarker(d *depot.Depot, checker, identity string, key depot.Key) {
	_ = d.PutJSON(markerKey(checker, identity), taskMarker{
		Source: key.Source, Version: key.Version, Options: key.Options, KeyID: key.ID(),
	})
}

// localProducer identifies this process in provenance records; fleet
// workers use their listen address instead.
var localProducer = fmt.Sprintf("pid:%d", os.Getpid())

// summaryDepKeys returns the sorted depot key ids of the per-function
// summary artifacts a handler's lane traversal consumed — its
// provenance dep list. Shared by the local pipeline and the worker
// executor so both sides record identical lineage.
func summaryDepKeys(reach map[string]bool, fpByFn map[string]string, version, options string) []string {
	var deps []string
	for fn := range reach {
		fp, ok := fpByFn[fn]
		if !ok {
			continue
		}
		deps = append(deps, depot.Key{Kind: "summary", Source: fp, Checker: "lanes",
			Version: version, Options: options}.ID())
	}
	sort.Strings(deps)
	return deps
}
