package sched

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"flashmc/internal/cc/token"
	"flashmc/internal/checkers"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/lint"
	"flashmc/internal/obs"
)

// triageSMs builds the Report.SM → machine and version maps for the
// built-in suite under a spec, keyed the way reports name their
// producer (sm.Name, which can differ from the registry name).
func triageSMs(spec *flash.Spec) (map[string]*engine.SM, map[string]string) {
	sms := map[string]*engine.SM{}
	versions := map[string]string{}
	for _, chk := range checkers.All() {
		if prov, ok := chk.(checkers.SMProvider); ok {
			sm, _ := prov.BuildSM(spec)
			sms[sm.Name] = sm
			versions[sm.Name] = chk.Version()
		}
	}
	return sms, versions
}

// renderRanked serializes a ranked stream for byte-level comparison
// in presentation order.
func renderRanked(ranked []lint.RankedReport) []byte {
	rs := append([]lint.RankedReport(nil), ranked...)
	lint.SortRanked(rs)
	var buf bytes.Buffer
	for _, r := range rs {
		fmt.Fprintf(&buf, "%s: [%s] %s confidence=%s reason=%s\n",
			r.Pos, r.SM, r.Msg, r.Confidence, r.Reason)
	}
	return buf.Bytes()
}

// TestTriageArtifactRoundTrip pins the triage/v1 depot format: the
// marshaled artifact survives Put → Get byte-identically, and
// re-marshaling the decoded value reproduces the stored bytes, so the
// payload is safe to content-address and diff.
func TestTriageArtifactRoundTrip(t *testing.T) {
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	art := triageArtifact{Verdicts: []triageVerdict{
		{Rule: "at-exit", Fn: "h_datadep_1",
			Pos:        token.Pos{File: "p.c", Line: 12, Col: 3},
			Msg:        "leak: buffer never freed",
			Confidence: lint.Infeasible, Reason: lint.ReasonSymRefuted},
		{Rule: "double-free", Fn: "h_legacy_1",
			Pos:        token.Pos{File: "p.c", Line: 40, Col: 5},
			Msg:        "double free",
			Confidence: lint.Certain, Reason: lint.ReasonFeasible},
	}}
	want, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	key := depot.Key{Kind: triageKind, Source: "fp0", Checker: "free",
		Version: "v1", Options: lint.TriageOptions{}.Fingerprint()}
	if err := d.PutJSON(key, art); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok {
		t.Fatal("artifact not found under its own key")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stored bytes differ from marshaled artifact:\n%s\n%s", got, want)
	}
	var dec triageArtifact
	if err := json.Unmarshal(got, &dec); err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, got) {
		t.Fatalf("re-marshaled artifact differs from stored bytes:\n%s\n%s", re, got)
	}
}

// TestTriageWarmServesFromDepot is the cache contract: a cold triage
// computes and stores every verdict group, a warm one serves them all
// from the depot (counter-gated, so "warm" provably means no path
// replay) and renders byte-identically.
func TestTriageWarmServesFromDepot(t *testing.T) {
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: d}
	p, prog := loadProto(t, nil)
	res, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	sms, versions := triageSMs(p.Spec)
	req := TriageRequest{Prog: prog, SMs: sms, Versions: versions,
		Reports: res.Reports, Options: lint.TriageOptions{Mode: lint.ModeSym}}

	before := obs.Default.Snapshot()
	cold, coldStats := a.TriageReports(req)
	if coldStats.CacheMisses == 0 || coldStats.CacheHits != 0 {
		t.Fatalf("cold triage stats: %+v", coldStats)
	}

	warm, warmStats := a.TriageReports(req)
	if warmStats.CacheMisses != 0 || warmStats.CacheHits != coldStats.CacheMisses {
		t.Fatalf("warm triage stats: %+v (cold %+v)", warmStats, coldStats)
	}
	after := obs.Default.Snapshot()
	if hits := after["sched_triage_cache_hits_total"] - before["sched_triage_cache_hits_total"]; hits != float64(warmStats.CacheHits) {
		t.Errorf("sched_triage_cache_hits_total advanced by %v, want %d", hits, warmStats.CacheHits)
	}
	if misses := after["sched_triage_cache_misses_total"] - before["sched_triage_cache_misses_total"]; misses != float64(coldStats.CacheMisses) {
		t.Errorf("sched_triage_cache_misses_total advanced by %v, want %d", misses, coldStats.CacheMisses)
	}

	if !bytes.Equal(renderRanked(cold), renderRanked(warm)) {
		t.Error("warm triage renders differently from cold")
	}
}

// TestTriageVersionBumpInvalidates proves the invalidation boundary:
// bumping the triage algorithm version recomputes every verdict group
// while the checkers' own report artifacts stay warm (the two tiers
// key independently).
func TestTriageVersionBumpInvalidates(t *testing.T) {
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: d}
	p, prog := loadProto(t, nil)
	res, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	sms, versions := triageSMs(p.Spec)
	req := TriageRequest{Prog: prog, SMs: sms, Versions: versions,
		Reports: res.Reports, Options: lint.TriageOptions{Mode: lint.ModeSym}}

	v1, v1Stats := a.triageReports(req, "1")
	if v1Stats.CacheMisses == 0 {
		t.Fatalf("first run must compute: %+v", v1Stats)
	}
	v2, v2Stats := a.triageReports(req, "2")
	if v2Stats.CacheHits != 0 || v2Stats.CacheMisses != v1Stats.CacheMisses {
		t.Fatalf("version bump must recompute every group: %+v (v1 %+v)", v2Stats, v1Stats)
	}
	// Same algorithm, so the recomputed verdicts agree.
	if !bytes.Equal(renderRanked(v1), renderRanked(v2)) {
		t.Error("version bump changed verdicts under an unchanged algorithm")
	}

	// The checker tier is untouched: a re-check of the same program is
	// fully warm.
	warm, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("triage-version bump invalidated checker artifacts: %+v", warm.Stats)
	}
}

// TestTriageRankDeterminism is the satellite determinism gate: the
// ranked stream renders byte-identically across worker counts and
// cache temperatures under -triage=sym.
func TestTriageRankDeterminism(t *testing.T) {
	var renders [][]byte
	for _, workers := range []int{1, 8} {
		d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
		if err != nil {
			t.Fatal(err)
		}
		a := &Analyzer{Depot: d, Workers: workers}
		p, prog := loadProto(t, nil)
		res, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
		if err != nil {
			t.Fatal(err)
		}
		sms, versions := triageSMs(p.Spec)
		req := TriageRequest{Prog: prog, SMs: sms, Versions: versions,
			Reports: res.Reports, Options: lint.TriageOptions{Mode: lint.ModeSym}}
		cold, _ := a.TriageReports(req)
		warm, _ := a.TriageReports(req)
		if !bytes.Equal(renderRanked(cold), renderRanked(warm)) {
			t.Errorf("-j %d: warm render differs from cold", workers)
		}
		renders = append(renders, renderRanked(cold))
	}
	if !bytes.Equal(renders[0], renders[1]) {
		t.Error("-j 1 and -j 8 render different ranked streams")
	}
}
