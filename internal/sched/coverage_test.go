package sched

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"

	"flashmc/internal/cover"
	"flashmc/internal/depot"
)

// renderCoverage serializes a coverage set's deterministic snapshot
// for byte comparison.
func renderCoverage(t *testing.T, s *cover.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkWithCoverage runs the full FLASH suite over the test protocol
// with the given worker count and depot, returning the coverage bytes.
func checkWithCoverage(t *testing.T, d *depot.Depot, workers int) []byte {
	t.Helper()
	p, prog := loadProto(t, nil)
	set := cover.NewSet()
	a := &Analyzer{Depot: d, Workers: workers, Coverage: set}
	if _, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)}); err != nil {
		t.Fatal(err)
	}
	return renderCoverage(t, set)
}

// Acceptance: the coverage matrix is identical at -j 1 and
// -j GOMAXPROCS, counts included.
func TestCoverageIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := checkWithCoverage(t, nil, 1)
	parallel := checkWithCoverage(t, nil, runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("coverage differs between -j 1 and -j %d:\n%s\nvs\n%s",
			runtime.GOMAXPROCS(0), serial, parallel)
	}
	if len(serial) < 10 {
		t.Fatalf("suspiciously empty coverage: %s", serial)
	}
}

// Acceptance: a warm (all cache hits) run replays exactly the
// coverage the cold run measured.
func TestCoverageIdenticalWarmCold(t *testing.T) {
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	cold := checkWithCoverage(t, d, 0)

	// Second run over a fresh parse of the same sources: pure hits.
	p, prog := loadProto(t, nil)
	set := cover.NewSet()
	a := &Analyzer{Depot: d, Coverage: set}
	warmRes, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed %d times", warmRes.Stats.CacheMisses)
	}
	warm := renderCoverage(t, set)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm coverage differs from cold:\n%s\nvs\n%s", cold, warm)
	}
}

// Every FLASH job records some coverage on the corpus protocol.
func TestEveryJobRecordsCoverage(t *testing.T) {
	p, prog := loadProto(t, nil)
	set := cover.NewSet()
	a := &Analyzer{Coverage: set}
	if _, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)}); err != nil {
		t.Fatal(err)
	}
	snap := set.Snapshot()
	for _, job := range FlashJobs(p.Spec) {
		c := snap.Checkers[job.Name]
		if c == nil {
			t.Errorf("job %s recorded no coverage", job.Name)
			continue
		}
		if len(c.Rules)+len(c.States) == 0 {
			t.Errorf("job %s: empty coverage entry: %+v", job.Name, c)
		}
	}
	// The snapshot must validate as a coverage/v1 artifact.
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := cover.Validate(&buf); err != nil {
		t.Fatalf("pipeline coverage artifact invalid: %v", err)
	}
}

// A nil Coverage set keeps the pipeline working (coverage is opt-in).
func TestNilCoverageSetOK(t *testing.T) {
	p, prog := loadProto(t, nil)
	a := &Analyzer{}
	res, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("no reports")
	}
}
